(* Angular correlation of sky catalogs — the tpacf workload of the
   paper's section 4.4, written exactly in the shape of its Figure 6.

   Run with:  dune exec examples/correlation.exe

   Three histogram computations share one [correlation] function; a
   triangular nested comprehension builds the unique pairs of a
   catalog; [par] distributes random sets across nodes while [localpar]
   spreads each set's pairs over the node's cores. *)

open Triolet
open Triolet_kernels
module Cluster = Triolet_runtime.Cluster

let bins = 16

let () =
  Exec.set_ambient (Exec.make ~nodes:(3) ~cores_per_node:(2) ());
  let data = Dataset.tpacf ~seed:7 ~points:300 ~random_sets:4 in

  let { Tpacf.dd; dr; rr } = Tpacf.run_triolet ~bins data in

  (* The Landy–Szalay estimator per bin, with each histogram normalized
     by its total pair count. *)
  let sets = float_of_int (Array.length data.Dataset.randoms) in
  let n = float_of_int (Dataset.catalog_size data.Dataset.observed) in
  let dd_pairs = n *. (n -. 1.0) /. 2.0 in
  let dr_pairs = sets *. n *. n in
  let rr_pairs = sets *. n *. (n -. 1.0) /. 2.0 in
  print_endline "bin |      DD |      DR |      RR | Landy-Szalay w(bin)";
  Array.iteri
    (fun b ndd ->
      let fdd = float_of_int ndd /. dd_pairs in
      let fdr = float_of_int dr.(b) /. dr_pairs in
      let frr = float_of_int rr.(b) /. rr_pairs in
      let w = if frr > 0.0 then (fdd -. (2.0 *. fdr) +. frr) /. frr else 0.0 in
      Printf.printf "%3d | %7d | %7d | %7d | %+.4f\n" b ndd dr.(b) rr.(b) w)
    dd;

  (* Cross-check against the imperative reference. *)
  let reference = Tpacf.run_c ~bins data in
  Printf.printf "\nmatches imperative reference: %b\n"
    (Tpacf.agrees reference { Tpacf.dd; dr; rr })
