(* Electrostatic potential on a grid — the cutcp workload of the
   paper's sections 1 and 4.5.

   Run with:  dune exec examples/potential_grid.exe

   The computation is the paper's motivating floating-point histogram:

     floatHist [f a r | a <- atoms, r <- gridPts a]

   i.e. a parallel loop over atoms, an irregular inner loop over the
   grid points near each atom, and a scatter-add of the contributions.
   The hybrid iterator keeps the atom loop partitionable while the
   inner loops stay fused. *)

open Triolet
open Triolet_kernels
module Cluster = Triolet_runtime.Cluster

let () =
  Exec.set_ambient (Exec.make ~nodes:(4) ~cores_per_node:(2) ());
  let box =
    Dataset.cutcp ~seed:99 ~atoms:400 ~nx:24 ~ny:24 ~nz:24 ~spacing:0.5
      ~cutoff:2.5
  in

  let grid = Cutcp.run_triolet ~hint:Iter.par box in

  (* Print a slice of the potential through the box's midplane. *)
  let mid = box.Dataset.nz / 2 in
  Printf.printf "potential at z = %d (every 2nd point):\n" mid;
  for y = 0 to box.Dataset.ny - 1 do
    if y mod 2 = 0 then begin
      for x = 0 to box.Dataset.nx - 1 do
        if x mod 2 = 0 then begin
          let v =
            Float.Array.get grid
              ((((mid * box.Dataset.ny) + y) * box.Dataset.nx) + x)
          in
          print_char
            (if v > 1.0 then '#'
             else if v > 0.2 then '+'
             else if v > -0.2 then '.'
             else if v > -1.0 then '-'
             else '=')
        end
      done;
      print_newline ()
    end
  done;

  let reference = Cutcp.run_c box in
  Printf.printf "\nmatches imperative reference: %b\n"
    (Cutcp.agrees ~eps:1e-9 reference grid);
  let total = Float.Array.fold_left ( +. ) 0.0 grid in
  Printf.printf "total potential over the grid: %.4f\n" total
