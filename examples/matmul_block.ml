(* Distributed matrix multiplication in two lines (paper, section 2).

   Run with:  dune exec examples/matmul_block.exe

   The 2-D block decomposition — each node receives only the rows of A
   and B^T that its output block needs — is not written by hand: it
   falls out of [rows] + [outer_product], whose payloads are row
   slices.  The byte counters prove it. *)

open Triolet
module Cluster = Triolet_runtime.Cluster
module Stats = Triolet_runtime.Stats

let () =
  Exec.set_ambient (Exec.make ~nodes:(4) ~cores_per_node:(2) ());
  let n = 128 in
  let rng = Triolet_base.Rng.create 2024 in
  let a = Matrix.random rng n n (-1.0) 1.0 in
  let b = Matrix.random rng n n (-1.0) 1.0 in
  let bt = Matrix.transpose_par (Triolet_runtime.Pool.default ()) b in

  (* The paper's two lines:
       zipped_AB = outerproduct(rows(A), rows(BT))
       AB = [dot(u, v) for (u, v) in par(zipped_AB)]              *)
  Stats.reset ();
  let ab, delta =
    Stats.measure (fun () ->
        let zipped_ab = Iter2.outer_product (Iter2.rows a) (Iter2.rows bt) in
        Iter2.build
          (Iter2.par (Iter2.map (fun (u, v) -> Matrix.view_dot u v) zipped_ab)))
  in

  (* Verify against the straightforward triple loop. *)
  let reference = Matrix.mul_ref ~alpha:1.0 a bt in
  Printf.printf "result matches reference: %b\n"
    (Matrix.equal_eps ~eps:1e-9 reference ab);

  let matrix_bytes = 8 * n * n in
  Printf.printf "one matrix is %d bytes\n" matrix_bytes;
  Printf.printf "bytes shipped (sliced 2-D blocks): %d (%.1f matrices)\n"
    delta.Stats.bytes_sent
    (float_of_int delta.Stats.bytes_sent /. float_of_int matrix_bytes);
  Printf.printf
    "a naive whole-input distribution would ship %d (%.1f matrices)\n"
    (4 * 2 * matrix_bytes) 8.0;
  Printf.printf "messages: %d\n" delta.Stats.messages
