(* A tour of the execution machinery under one fixed computation.

   Run with:  dune exec examples/cluster_tour.exe

   The same fused pipeline — a filtered, mapped reduction over a large
   float array — runs sequentially, over the work-stealing pool, and on
   in-process clusters of several shapes (two-level and flat).  The
   result never changes; the message/byte/chunk counters show what each
   strategy does. *)

open Triolet
module Cluster = Triolet_runtime.Cluster
module Stats = Triolet_runtime.Stats
module Table = struct
  let row name result d =
    Printf.printf "%-28s %14.4f %9d %12d %8d %7d\n" name result
      d.Stats.messages d.Stats.bytes_sent d.Stats.chunks_run d.Stats.steals
end

let n = 2_000_000

let xs = Float.Array.init n (fun i -> float_of_int (i mod 997) /. 997.0)

let pipeline hint =
  Iter.of_floatarray xs
  |> hint
  |> Iter.filter (fun x -> x > 0.5)
  |> Iter.map (fun x -> (x -. 0.5) *. 2.0)
  |> Iter.sum

let run name hint =
  Stats.reset ();
  let result, d = Stats.measure (fun () -> pipeline hint) in
  Table.row name result d

let () =
  Printf.printf "%-28s %14s %9s %12s %8s %7s\n" "strategy" "result" "messages"
    "bytes" "chunks" "steals";
  run "sequential" Iter.sequential;
  run "localpar (work stealing)" Iter.localpar;
  List.iter
    (fun (nodes, cores, flat) ->
      Exec.set_ambient
        (Exec.make ~nodes ~cores_per_node:cores
           ~backend:(if flat then Cluster.Flat else (Exec.default ()).Exec.backend)
           ());
      let name =
        Printf.sprintf "par %dx%d %s" nodes cores
          (if flat then "flat" else "two-level")
      in
      run name Iter.par)
    [ (2, 4, false); (4, 2, false); (8, 1, false); (2, 4, true); (4, 2, true) ];
  print_newline ();
  print_endline
    "two-level clusters send one sliced message per node; flat clusters send\n\
     one per core — more messages for the same bytes of payload, which is\n\
     the communication pattern Eden pays for (paper, sections 1 and 3.4)."
