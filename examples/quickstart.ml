(* Quickstart: the iterator API in five small computations.

   Run with:  dune exec examples/quickstart.exe

   A Triolet loop is a pipeline of iterator transformations ending in a
   consumer.  Nothing is materialized between stages, and the [par] /
   [localpar] hints pick the execution strategy without changing the
   code. *)

open Triolet
module Cluster = Triolet_runtime.Cluster

let () =
  (* Configure the simulated cluster the [par] hint runs on. *)
  Exec.set_ambient (Exec.make ~nodes:(4) ~cores_per_node:(2) ())

(* 1. Dot product — the paper's introductory example:
       def dot(xs, ys):
         return sum(x*y for (x, y) in par(zip(xs, ys)))          *)
let dot xs ys =
  Iter.sum
    (Iter.map (fun (x, y) -> x *. y)
       (Iter.par (Iter.zip (Iter.of_floatarray xs) (Iter.of_floatarray ys))))

(* 2. Sum of filtered values — fused: the filter never builds a list. *)
let sum_positive xs =
  Iter.sum (Iter.filter (fun x -> x > 0.0) (Iter.localpar (Iter.of_floatarray xs)))

(* 3. Nested, irregular loop — one output per divisor. *)
let divisor_count_histogram n =
  Iter.range 1 n
  |> Iter.par
  |> Iter.concat_map (fun k ->
         (* inner loop: divisors of k *)
         Seq_iter.filter (fun d -> k mod d = 0) (Seq_iter.range 1 (k + 1)))
  |> Iter.map (fun d -> d mod 10)
  |> Iter.histogram ~bins:10

(* 4. Scatter-add: a floating-point histogram, as in cutcp. *)
let weighted_grid n =
  Iter.range 0 n
  |> Iter.localpar
  |> Iter.map (fun i -> (i mod 16, 1.0 /. float_of_int (i + 1)))
  |> Iter.scatter_add ~size:16

let () =
  let n = 100_000 in
  let xs = Float.Array.init n (fun i -> sin (float_of_int i)) in
  let ys = Float.Array.init n (fun i -> cos (float_of_int i)) in

  Printf.printf "dot xs ys                = %.6f\n" (dot xs ys);
  Printf.printf "sum of positive elements = %.6f\n" (sum_positive xs);

  let hist = divisor_count_histogram 2000 in
  print_string "divisors mod 10 histogram:";
  Array.iter (Printf.printf " %d") hist;
  print_newline ();

  let grid = weighted_grid 100_000 in
  Printf.printf "scatter_add bin 0        = %.6f\n" (Float.Array.get grid 0);

  (* The same pipeline gives identical results under every hint. *)
  let pipeline hint =
    Iter.range 0 10_000
    |> hint
    |> Iter.filter (fun x -> x mod 3 = 0)
    |> Iter.map (fun x -> float_of_int (x * x))
    |> Iter.sum
  in
  Printf.printf "pipeline: seq %.0f = localpar %.0f = par %.0f\n"
    (pipeline Iter.sequential) (pipeline Iter.localpar) (pipeline Iter.par)
