(* Comprehension-style nested loops with Let_syntax.

   Run with:  dune exec examples/comprehensions.exe

   The paper writes irregular loops as list comprehensions:

       floatHist [f a r | a <- atoms, r <- gridPts a]

   In this library, [let*] on Seq_iter is concat_map, so the same nest
   reads almost identically — and because each binder adds an Idx_nest
   level over a random-access outer loop, the whole comprehension is
   still partitionable by the parallel consumers. *)

open Triolet
open Seq_iter.Let_syntax
module Cluster = Triolet_runtime.Cluster

let () =
  Exec.set_ambient (Exec.make ~nodes:(4) ~cores_per_node:(2) ())

(* Pythagorean triples with hypotenuse < n, as a triangular triple nest:
   [ (a,b,c) | c <- [1..n), b <- [1..c], a <- [1..b], a^2+b^2 = c^2 ] *)
let triples n =
  Iter.range 1 n
  |> Iter.par
  |> Iter.concat_map (fun c ->
         let* b = Seq_iter.range 1 (c + 1) in
         let* a = Seq_iter.range 1 (b + 1) in
         if (a * a) + (b * b) = c * c then return (a, b, c) else Seq_iter.empty)

(* A histogram over an irregular comprehension: for every sample point,
   bin every divisor-pair product — irregular inner loops, one parallel
   histogram at the end. *)
let divisor_products n bins =
  Iter.range 1 n
  |> Iter.par
  |> Iter.concat_map (fun k ->
         let* d = Seq_iter.range 1 (k + 1) in
         if k mod d = 0 then return (d * (k / d) mod bins) else Seq_iter.empty)
  |> Iter.histogram ~bins

let () =
  let ts = Iter.to_list (triples 60) in
  Printf.printf "Pythagorean triples below 60 (%d found):\n" (List.length ts);
  List.iter (fun (a, b, c) -> Printf.printf "  %2d^2 + %2d^2 = %2d^2\n" a b c) ts;

  (* Count them in parallel without materializing: same comprehension,
     different consumer. *)
  Printf.printf "parallel count agrees: %b\n"
    (Iter.count (triples 60) = List.length ts);

  let h = divisor_products 500 8 in
  print_string "divisor-product histogram mod 8:";
  Array.iter (Printf.printf " %d") h;
  print_newline ()
