(* Benchmark harness: micro-benchmarks (Bechamel) for the paper's
   per-mechanism claims, then the full figure harness (Figure 3
   measured; Figures 4, 5, 7, 8 simulated from calibrated costs).

   Benchmarks are grouped into named families; each family runs with
   tracing enabled and writes BENCH_<family>.json (rows + per-phase
   span aggregates + runtime counter deltas) for the regression gate
   [triolet bench --compare old.json new.json].

   Run with:  dune exec bench/main.exe            (full: a few minutes)
              dune exec bench/main.exe -- quick   (reduced calibration)
              dune exec bench/main.exe -- --list  (family names)
              dune exec bench/main.exe -- --filter dot --out-dir results
              dune exec bench/main.exe -- --json all.json
   Unknown arguments are an error (exit 2), not silently ignored.      *)

open Bechamel
open Toolkit
open Triolet
module Kern = Triolet_kernels
module E = Triolet_baselines.Eden_list
module Codec = Triolet_base.Codec

let () = Triolet_runtime.Pool.set_default_width 2

let () =
  Exec.set_ambient (Exec.make ~nodes:(4) ~cores_per_node:(2) ())

(* ------------------------------------------------------------------ *)
(* Micro-benchmark definitions                                         *)

let n_dot = 50_000

let xs = Float.Array.init n_dot (fun i -> float_of_int (i mod 91) /. 91.0)
let ys = Float.Array.init n_dot (fun i -> float_of_int (i mod 53) /. 53.0)

(* Section 2's dot product: the fused iterator pipeline vs materializing
   every intermediate vs the hand-written loop. *)
let bench_dot =
  let fused () =
    Iter.sum
      (Iter.map (fun (x, y) -> x *. y)
         (Iter.zip (Iter.of_floatarray xs) (Iter.of_floatarray ys)))
  in
  let materialized () =
    (* what zip/map would cost if each skeleton produced an array *)
    let zipped =
      Array.init n_dot (fun i -> (Float.Array.get xs i, Float.Array.get ys i))
    in
    let products = Array.map (fun (x, y) -> x *. y) zipped in
    Array.fold_left ( +. ) 0.0 products
  in
  let imperative () =
    let acc = ref 0.0 in
    for i = 0 to n_dot - 1 do
      acc := !acc +. (Float.Array.unsafe_get xs i *. Float.Array.unsafe_get ys i)
    done;
    !acc
  in
  Test.make_grouped ~name:"dot"
    [
      Test.make ~name:"iterators-fused" (Staged.stage fused);
      Test.make ~name:"materialized" (Staged.stage materialized);
      Test.make ~name:"imperative" (Staged.stage imperative);
    ]

(* Figure 1's "slow" cell: nested traversal through steppers vs folds vs
   a plain loop nest. *)
let bench_nested =
  let n = 300 in
  let stepper () =
    Stepper.sum_int
      (Stepper.concat_map (fun k -> Stepper.range 0 k) (Stepper.range 0 n))
  in
  let folder () =
    Folder.sum_int
      (Folder.concat_map (fun k -> Folder.range 0 k) (Folder.range 0 n))
  in
  let loop () =
    let acc = ref 0 in
    for k = 0 to n - 1 do
      for i = 0 to k - 1 do
        acc := !acc + i
      done
    done;
    !acc
  in
  Test.make_grouped ~name:"nested-traversal"
    [
      Test.make ~name:"stepper" (Staged.stage stepper);
      Test.make ~name:"fold" (Staged.stage folder);
      Test.make ~name:"loop" (Staged.stage loop);
    ]

(* Section 3.4's block-copy serialization of pointer-free arrays vs
   per-element encoding of boxed structures. *)
let bench_serialize =
  let fa = Float.Array.make 8192 3.14 in
  let boxed = Array.init 8192 (fun i -> (i, 3.14)) in
  let block () = Codec.to_bytes Codec.floatarray fa in
  let element () =
    Codec.to_bytes (Codec.array (Codec.pair Codec.int Codec.float)) boxed
  in
  Test.make_grouped ~name:"serialize-64KiB"
    [
      Test.make ~name:"floatarray-block" (Staged.stage block);
      Test.make ~name:"boxed-elementwise" (Staged.stage element);
    ]

(* Histogramming through a collector (per-task private mutation) vs a
   boxed list pipeline. *)
let bench_histogram =
  let n = 20_000 in
  let coll () =
    Iter.histogram ~bins:64 (Iter.map (fun i -> i * 7 mod 64) (Iter.range 0 n))
  in
  let list () =
    E.histogram ~bins:64 (E.map (fun i -> i * 7 mod 64) (List.init n Fun.id))
  in
  Test.make_grouped ~name:"histogram"
    [
      Test.make ~name:"iter-collector" (Staged.stage coll);
      Test.make ~name:"eden-list" (Staged.stage list);
    ]

(* Figure 3 in micro form: the three styles of each kernel on tiny
   registry instances (the measured full-size table is printed below).
   Iterating the registry keeps this list in lockstep with the CLI and
   the analyzer — a kernel registered once shows up everywhere. *)
let bench_kernels =
  Test.make_grouped ~name:"kernels"
    (List.map
       (fun (module K : Kern.Kernel.S) ->
         let inst = K.instance ~size:"tiny" () in
         Test.make_grouped ~name:K.name
           [
             Test.make ~name:"c" (Staged.stage inst.Kern.Kernel.run_ref);
             Test.make ~name:"triolet" (Staged.stage inst.Kern.Kernel.run_seq);
             Test.make ~name:"eden" (Staged.stage inst.Kern.Kernel.run_eden);
           ])
       (Kern.Kernel.all ()))

(* Zip fusion: the zip3 pipeline against hand-zipped loops. *)
let bench_zip =
  let n = 20_000 in
  let a = Float.Array.init n (fun i -> float_of_int i) in
  let b = Float.Array.init n (fun i -> float_of_int (i * 2)) in
  let c = Float.Array.init n (fun i -> float_of_int (i * 3)) in
  let fused () =
    Iter.sum
      (Iter.map
         (fun (x, y, z) -> x +. (y *. z))
         (Iter.zip3 (Iter.of_floatarray a) (Iter.of_floatarray b)
            (Iter.of_floatarray c)))
  in
  let manual () =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc :=
        !acc
        +. Float.Array.unsafe_get a i
        +. (Float.Array.unsafe_get b i *. Float.Array.unsafe_get c i)
    done;
    !acc
  in
  Test.make_grouped ~name:"zip3"
    [
      Test.make ~name:"iterators" (Staged.stage fused);
      Test.make ~name:"manual-loop" (Staged.stage manual);
    ]

(* cutcp formulated as scatter (paper's CPU code) vs gather (the
   GPU-style Dim3 variant). *)
let bench_cutcp_direction =
  let box =
    Kern.Dataset.cutcp ~seed:9 ~atoms:64 ~nx:12 ~ny:12 ~nz:12 ~spacing:0.5
      ~cutoff:1.8
  in
  Test.make_grouped ~name:"cutcp-direction"
    [
      Test.make ~name:"scatter"
        (Staged.stage (fun () ->
             Kern.Cutcp.run_triolet ~hint:Iter.sequential box));
      Test.make ~name:"gather-3d"
        (Staged.stage (fun () ->
             Kern.Cutcp.run_gather ~hint:Iter3.sequential box));
      Test.make ~name:"scatter-c" (Staged.stage (fun () -> Kern.Cutcp.run_c box));
    ]

(* Payload shipping: the end-to-end cost of moving a slice across a
   node boundary (serialize + copy + decode). *)
let bench_payload =
  let small = [ Triolet_base.Payload.Floats (Float.Array.make 512 1.0) ] in
  let large = [ Triolet_base.Payload.Floats (Float.Array.make 65536 1.0) ] in
  Test.make_grouped ~name:"payload-ship"
    [
      Test.make ~name:"4KiB"
        (Staged.stage (fun () -> Triolet_base.Payload.ship small));
      Test.make ~name:"512KiB"
        (Staged.stage (fun () -> Triolet_base.Payload.ship large));
    ]

(* ------------------------------------------------------------------ *)
(* Iterator fusion gap: each kernel's sequential inner pattern as the
   fused iterator pipeline vs the hand-written imperative loop the
   paper's compiler closes the gap to.  Besides the raw ns rows, the
   family emits one dimensionless "iter/<pattern>-gap" row per pattern
   (pipeline ns / imperative ns): that ratio is what the enforcing CI
   compare gates, because it cancels the speed of the machine the
   baseline was recorded on. *)

module Vec = Triolet_base.Vec

let iter_sgemm_mats = lazy (Kern.Dataset.sgemm_matrices ~seed:12 ~m:32 ~k:32 ~n:32)

let iter_cutcp_box =
  lazy
    (Kern.Dataset.cutcp ~seed:13 ~atoms:48 ~nx:12 ~ny:12 ~nz:12 ~spacing:0.5
       ~cutoff:1.8)

let iter_tpacf_cat =
  lazy (Kern.Dataset.tpacf ~seed:14 ~points:128 ~random_sets:1)

let iter_patterns = [ "dot"; "sgemm-tile"; "cutcp"; "tpacf-hist" ]

let bench_iter =
  (* dot / map-reduce: zip two arrays, multiply, sum. *)
  let dot_pipeline () =
    Iter.sum
      (Iter.map (fun (x, y) -> x *. y)
         (Iter.zip (Iter.of_floatarray xs) (Iter.of_floatarray ys)))
  in
  let dot_imperative () =
    let acc = ref 0.0 in
    for i = 0 to n_dot - 1 do
      acc := !acc +. (Float.Array.unsafe_get xs i *. Float.Array.unsafe_get ys i)
    done;
    !acc
  in
  (* sgemm tile: every (i, j) row-dot of a 32x32 tile through Seq_iter
     vs the triple loop over the same views. *)
  let si_of_view v =
    Seq_iter.of_indexer
      (Indexer.make (Shape.seq (Matrix.view_len v)) (Matrix.view_get v))
  in
  let sgemm_pipeline () =
    let a, b = Lazy.force iter_sgemm_mats in
    let bt = Matrix.transpose b in
    let dot u v =
      Seq_iter.sum_float (Seq_iter.zip_with ( *. ) (si_of_view u) (si_of_view v))
    in
    Seq_iter.sum_float
      (Seq_iter.concat_map
         (fun i ->
           Seq_iter.map
             (fun j -> dot (Matrix.row a i) (Matrix.row bt j))
             (Seq_iter.range 0 (Matrix.rows bt)))
         (Seq_iter.range 0 (Matrix.rows a)))
  in
  let sgemm_imperative () =
    let a, b = Lazy.force iter_sgemm_mats in
    let bt = Matrix.transpose b in
    let acc = ref 0.0 in
    for i = 0 to Matrix.rows a - 1 do
      let u = Matrix.row a i in
      for j = 0 to Matrix.rows bt - 1 do
        let v = Matrix.row bt j in
        let d = ref 0.0 in
        for l = 0 to Matrix.view_len u - 1 do
          d := !d +. (Matrix.view_get u l *. Matrix.view_get v l)
        done;
        acc := !acc +. !d
      done
    done;
    !acc
  in
  (* cutcp gather: the full scatter pipeline (atoms -> nearby grid
     points -> conditional scatter-add), sequential, vs run_c. *)
  let cutcp_pipeline () =
    Kern.Cutcp.run_triolet ~hint:Iter.sequential (Lazy.force iter_cutcp_box)
  in
  let cutcp_imperative () = Kern.Cutcp.run_c (Lazy.force iter_cutcp_box) in
  (* tpacf histogram: the DD triangular pair loop into a histogram vs
     the imperative double loop with direct bin updates. *)
  let tpacf_bins = 32 in
  let tpacf_pipeline () =
    Iter.histogram ~bins:tpacf_bins
      (Iter.sequential
         (Kern.Tpacf.dd_pipeline ~bins:tpacf_bins (Lazy.force iter_tpacf_cat)))
  in
  let tpacf_imperative () =
    let d = Lazy.force iter_tpacf_cat in
    let c = d.Kern.Dataset.observed in
    let n = Float.Array.length c.Kern.Dataset.cx in
    let h = Array.make tpacf_bins 0 in
    for i = 0 to n - 1 do
      let xi = Vec.fget c.Kern.Dataset.cx i
      and yi = Vec.fget c.Kern.Dataset.cy i
      and zi = Vec.fget c.Kern.Dataset.cz i in
      for j = i + 1 to n - 1 do
        let dot =
          (xi *. Vec.fget c.Kern.Dataset.cx j)
          +. (yi *. Vec.fget c.Kern.Dataset.cy j)
          +. (zi *. Vec.fget c.Kern.Dataset.cz j)
        in
        let b = Kern.Tpacf.bin_of_dot ~bins:tpacf_bins dot in
        h.(b) <- h.(b) + 1
      done
    done;
    h
  in
  Test.make_grouped ~name:"iter"
    [
      Test.make_grouped ~name:"dot"
        [
          Test.make ~name:"pipeline" (Staged.stage dot_pipeline);
          Test.make ~name:"imperative" (Staged.stage dot_imperative);
        ];
      Test.make_grouped ~name:"sgemm-tile"
        [
          Test.make ~name:"pipeline" (Staged.stage sgemm_pipeline);
          Test.make ~name:"imperative" (Staged.stage sgemm_imperative);
        ];
      Test.make_grouped ~name:"cutcp"
        [
          Test.make ~name:"pipeline" (Staged.stage cutcp_pipeline);
          Test.make ~name:"imperative" (Staged.stage cutcp_imperative);
        ];
      Test.make_grouped ~name:"tpacf-hist"
        [
          Test.make ~name:"pipeline" (Staged.stage tpacf_pipeline);
          Test.make ~name:"imperative" (Staged.stage tpacf_imperative);
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Scheduler: static chunk preload vs adaptive lazy splitting on
   uniform and Zipf-skewed per-element work, pushed through the same
   filter/concat_map pipeline shape that produces irregular loop nests
   in the kernels.  Wall times go through Bechamel below; this section
   also reports per-worker busy times from [Stats], whose max is the
   makespan the schedule would have on dedicated cores — the
   load-balance signal survives even when the host timeshares the
   workers on fewer physical cores. *)

module Pool = Triolet_runtime.Pool
module Partition = Triolet_runtime.Partition
module Stats = Triolet_runtime.Stats

let sched_workers = 4
let sched_n = 4096
let sched_pool = lazy (Pool.create ~workers:sched_workers ())

(* Outer loop of [sched_n] elements; [cost i] inner iterations each,
   behind a filter so the scheduler sees the paper's filter/concat_map
   nest, not a plain map. *)
let sched_pipeline cost =
  Iter.range 0 sched_n
  |> Iter.filter (fun i -> i land 3 <> 3)
  |> Iter.concat_map (fun i -> Seq_iter.range 0 (cost i))
  |> Iter.map (fun j -> j land 1023)

(* Inner-loop counts are sized so per-element cost dwarfs the fixed
   per-element pipeline overhead (~0.3 µs of stepper transitions);
   otherwise that uniform overhead dilutes the skew the family is
   meant to exercise. *)
let sched_uniform = sched_pipeline (fun _ -> 512)

(* Zipf-ish skew: element i costs ~1/(i+1), so the first static chunk
   holds ~70% of the total work. *)
let sched_zipf = sched_pipeline (fun i -> 1 + (262_144 / (i + 1)))

(* Hot band: a dense region (one static chunk wide, several grains
   long) carries nearly all the work — the adversarial case for static
   chunking, which cannot subdivide the hot chunk, while lazy splitting
   keeps halving it until every worker holds a piece. *)
let sched_spike =
  sched_pipeline (fun i -> if i >= 1024 && i < 1280 then 16_384 else 64)

let sched_chunk it off len = Iter.fold ( + ) 0 (Iter.sub ~off ~len it)

(* Baseline: the pre-PR schedule — over-decomposed blocks preloaded
   onto the deques, chunks never subdivided. *)
let sched_static it () =
  let pool = Lazy.force sched_pool in
  let chunks =
    Partition.blocks
      ~parts:(Partition.chunk_count ~workers:(Pool.size pool) sched_n)
      sched_n
  in
  Pool.parallel_chunks pool ~chunks ~f:(sched_chunk it) ~merge:( + ) ~init:0

let sched_adaptive it () =
  let pool = Lazy.force sched_pool in
  Pool.parallel_range pool ~lo:0 ~hi:sched_n ~f:(sched_chunk it) ~merge:( + )
    ~init:0 ()

let bench_scheduler =
  Test.make_grouped ~name:"scheduler-4w"
    [
      Test.make ~name:"uniform-static" (Staged.stage (sched_static sched_uniform));
      Test.make ~name:"uniform-adaptive"
        (Staged.stage (sched_adaptive sched_uniform));
      Test.make ~name:"zipf-static" (Staged.stage (sched_static sched_zipf));
      Test.make ~name:"zipf-adaptive" (Staged.stage (sched_adaptive sched_zipf));
      Test.make ~name:"spike-static" (Staged.stage (sched_static sched_spike));
      Test.make ~name:"spike-adaptive"
        (Staged.stage (sched_adaptive sched_spike));
    ]

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)

module Obs = Triolet_obs.Obs
module Json = Triolet_obs.Json
module Clock = Triolet_runtime.Clock

(* Rows of the family currently running (for its BENCH file) and of the
   whole run (for the aggregate [--json] dump). *)
let family_rows : (string * float * float option) list ref = ref []
let all_rows : (string * float * float option) list ref = ref []

let add_row ?speedup name ns =
  family_rows := (name, ns, speedup) :: !family_rows;
  all_rows := (name, ns, speedup) :: !all_rows

(* [stabilize] compacts the heap before each test: families that mix
   allocation-free imperative baselines with allocating pipelines (the
   iter fusion-gap family) need it so one test's garbage doesn't tax
   its neighbour's measurement. *)
let run_group ?(quota = 0.5) ?(stabilize = false) test =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~kde:None ~stabilize
      ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        let ns =
          match Analyze.OLS.estimates o with Some (x :: _) -> x | _ -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square o) in
        (name, ns, r2) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns, r2) ->
      add_row name ns;
      Printf.printf "  %-36s %14.1f ns/run   (r2 %.3f)\n" name ns r2)
    rows

(* Measure several runs under [Stats.measure] and keep the fastest:
   when the host timeshares the workers on fewer physical cores,
   preemption inflates individual runs and the minimum is the least
   contaminated sample of the schedule itself. *)
let sched_measure ?(reps = 5) run =
  ignore (run ());
  (* warm: pool up, code compiled *)
  let best = ref None in
  for _ = 1 to reps do
    (* Monotonic, not wall clock: an NTP step mid-run must not poison
       the best-of-N minimum with a negative or tiny sample. *)
    let t0 = Clock.monotonic_ns () in
    let _, s = Stats.measure (fun () -> ignore (run ())) in
    let wall_ns = float_of_int (Clock.monotonic_ns () - t0) in
    match !best with
    | Some (w, _) when w <= wall_ns -> ()
    | _ -> best := Some (wall_ns, s)
  done;
  let wall_ns, s = Option.get !best in
  let makespan =
    Array.fold_left
      (fun m (w : Stats.worker_snapshot) -> max m w.w_busy_ns)
      0 s.Stats.per_worker
  in
  (wall_ns, float_of_int makespan, s)

let sched_report () =
  print_endline
    "\n-- scheduler load balance (4 workers, busy-time makespan) --";
  Printf.printf "  %-10s %-10s %12s %12s %10s %8s %8s\n" "workload"
    "scheduler" "wall(ms)" "makespan(ms)" "imbalance" "splits" "steals";
  let variants =
    [
      ("uniform", sched_uniform); ("zipf", sched_zipf);
      ("spike", sched_spike);
    ]
  in
  List.iter
    (fun (wname, it) ->
      let report sname run =
        let wall_ns, makespan_ns, s = sched_measure run in
        Printf.printf "  %-10s %-10s %12.3f %12.3f %10.2f %8d %8d\n" wname
          sname (wall_ns /. 1e6) (makespan_ns /. 1e6) (Stats.imbalance s)
          s.Stats.splits s.Stats.steals;
        (wall_ns, makespan_ns)
      in
      let st_wall, st_mk = report "static" (sched_static it) in
      let ad_wall, ad_mk = report "adaptive" (sched_adaptive it) in
      let projected = st_mk /. ad_mk in
      Printf.printf
        "  %-10s projected makespan speedup (static/adaptive): %.2fx\n" wname
        projected;
      add_row (Printf.sprintf "sched-balance/%s-static" wname) st_wall
        ~speedup:1.0;
      add_row
        (Printf.sprintf "sched-balance/%s-adaptive" wname)
        ad_wall ~speedup:projected)
    variants

(* ------------------------------------------------------------------ *)
(* Families and JSON output                                             *)

let row_json (name, ns, speedup) =
  let base =
    [
      ("name", Json.Str name);
      ("ns_per_run", Json.Num (if Float.is_finite ns then ns else -1.0));
    ]
  in
  match speedup with
  | Some x when Float.is_finite x -> Json.Obj (base @ [ ("speedup", Json.Num x) ])
  | _ -> Json.Obj base

let counters_json (s : Stats.snapshot) =
  let num i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ("messages", num s.Stats.messages);
      ("bytes_sent", num s.Stats.bytes_sent);
      ("chunks_run", num s.Stats.chunks_run);
      ("splits", num s.Stats.splits);
      ("steals", num s.Stats.steals);
      ("failed_steals", num s.Stats.failed_steals);
      ("tasks_spawned", num s.Stats.tasks_spawned);
      ("retries", num s.Stats.retries);
      ("recovery_ns", num s.Stats.recovery_ns);
    ]

(* Gap rows, computed from the raw rows of this family's run: the
   fused-pipeline-vs-imperative ratio per pattern. *)
let iter_gap_rows () =
  let ns name =
    List.find_map
      (fun (n, v, _) -> if n = name then Some v else None)
      !family_rows
  in
  List.iter
    (fun pat ->
      match
        ( ns (Printf.sprintf "iter/%s/pipeline" pat),
          ns (Printf.sprintf "iter/%s/imperative" pat) )
      with
      | Some p, Some i when i > 0.0 && Float.is_finite p ->
          let gap = p /. i in
          Printf.printf "  %-36s %14.2fx pipeline/imperative\n"
            (Printf.sprintf "iter/%s-gap" pat)
            gap;
          add_row (Printf.sprintf "iter/%s-gap" pat) gap
      | _ -> ())
    iter_patterns

(* ------------------------------------------------------------------ *)
(* Service: open-loop load against the long-lived supervised service
   (fork-per-node fabric, heartbeats, admission control).  Each arrival
   rate gets p50/p99 latency rows plus a dimensionless shed-rate row.
   The service forks, and OCaml forbids fork once any domain has been
   spawned, so this family must run before any pool-backed family; it
   is listed first and skips itself (loudly) if domains already exist. *)

module Service = Triolet_runtime.Service

(* Per-slice compute cost: enough work (~0.1 ms of integer arithmetic)
   that the top arrival rate genuinely exceeds service capacity — the
   sweep must drive the admission queue into shedding, not just measure
   dispatch overhead. *)
let service_spin = 200_000

let service_double ~node:_ ~pool:_ payload =
  match payload with
  | [ Triolet_base.Payload.Ints a ] ->
      let s = ref 0 in
      for k = 1 to service_spin do
        s := !s + (k land 7)
      done;
      ignore !s;
      [ Triolet_base.Payload.Ints (Array.map (fun x -> (2 * x) + 1) a) ]
  | _ -> failwith "bench service: bad payload"

(* One rate point: [total] arrivals at [rate]/s pushed by [clients]
   threads; arrival i is due at start + i/rate regardless of service
   state (open loop), so queueing shows up as latency and shedding, not
   as a slower generator. *)
let service_rate_point t ~rate ~total ~clients =
  let lock = Mutex.create () in
  let next = ref 0 in
  let shed = ref 0 in
  let failures = ref 0 in
  let lats = ref [] in
  let start = Clock.monotonic_ns () in
  let client () =
    let rec loop () =
      Mutex.lock lock;
      let i = !next in
      if i >= total then Mutex.unlock lock
      else begin
        incr next;
        Mutex.unlock lock;
        let due = start + int_of_float (float_of_int i /. rate *. 1e9) in
        let now = Clock.monotonic_ns () in
        if due > now then Unix.sleepf (float_of_int (due - now) /. 1e9);
        let payloads =
          Array.init 4 (fun s ->
              [ Triolet_base.Payload.Ints
                  (Array.init 8 (fun j -> i + (s * 100) + j)) ])
        in
        let t0 = Clock.monotonic_ns () in
        (match Service.submit t payloads with
        | Ok _ ->
            let dt = float_of_int (Clock.monotonic_ns () - t0) in
            Mutex.lock lock;
            lats := dt :: !lats;
            Mutex.unlock lock
        | Error Service.Overloaded ->
            Mutex.lock lock;
            incr shed;
            Mutex.unlock lock
        | Error _ ->
            Mutex.lock lock;
            incr failures;
            Mutex.unlock lock);
        loop ()
      end
    in
    loop ()
  in
  let threads = List.init clients (fun _ -> Thread.create client ()) in
  List.iter Thread.join threads;
  let sorted = Array.of_list !lats in
  Array.sort compare sorted;
  let pct p =
    let n = Array.length sorted in
    if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  ( pct 0.50,
    pct 0.99,
    float_of_int !shed /. float_of_int (max 1 total),
    !failures )

let run_service_family ~quick =
  if Pool.domains_ever_spawned () then
    print_endline
      "(skipping family 'service': the service fabric forks one process \
       per node, which OCaml forbids once a worker domain has been \
       spawned; run with --filter service to measure it)"
  else begin
    let cfg =
      {
        Service.default_config with
        Service.nodes = 4;
        cores_per_node = 1;
        queue_bound = 4;
        heartbeat_interval = 0.02;
      }
    in
    let t = Service.create ~cfg ~work:service_double () in
    Fun.protect
      ~finally:(fun () -> Service.shutdown ~grace:2.0 t)
      (fun () ->
        let dur = if quick then 0.3 else 1.0 in
        List.iter
          (fun rate ->
            let total = int_of_float (rate *. dur) in
            let p50, p99, shed_rate, failures =
              service_rate_point t ~rate ~total ~clients:8
            in
            let tag = Printf.sprintf "service/r%.0f" rate in
            Printf.printf
              "  %-24s p50 %10.1f ns  p99 %10.1f ns  shed %5.1f%%%s\n" tag
              p50 p99 (100.0 *. shed_rate)
              (if failures > 0 then
                 Printf.sprintf "  (%d FAILED)" failures
               else "");
            add_row (tag ^ "/p50") p50;
            add_row (tag ^ "/p99") p99;
            add_row (tag ^ "/shed-rate") shed_rate)
          [ 200.0; 800.0; 3200.0 ];
        Printf.printf
          "  %-24s respawns %d  heartbeat misses %d  live nodes %d\n"
          "service/supervision" (Service.respawns t)
          (Service.heartbeat_misses t)
          (List.length (Service.live_nodes t)))
  end

(* ------------------------------------------------------------------ *)
(* Darray: persistent distributed arrays — per-round scatter bytes and
   latency, cold (first round ships every segment) vs warm (unchanged
   segments ship as key-only reuses).  Like the service family this
   forks per-node children, so it must run before any domain spawns;
   it is listed right after "service" and skips itself loudly
   otherwise. *)

let run_darray_family ~quick =
  if Pool.domains_ever_spawned () then
    print_endline
      "(skipping family 'darray': the resident fabric forks one process \
       per node, which OCaml forbids once a worker domain has been \
       spawned; run with --filter darray to measure it)"
  else begin
    let module D = Kern.Dataset in
    let module Cluster = Triolet_runtime.Cluster in
    let ctx =
      Exec.make ~nodes:4 ~cores_per_node:1 ~backend:Cluster.Process ()
    in
    let rounds = if quick then 3 else 8 in
    (* Iterated sgemm: A resident and much larger than the per-round
       B, the geometry where residency pays. *)
    let m, k, n = if quick then (96, 96, 6) else (256, 256, 6) in
    let a, b = D.sgemm_matrices ~seed:11 ~m ~k ~n in
    let r = Kern.Sgemm.Resident.create ~ctx a in
    let cold_bytes, cold_ns, warm_bytes, warm_ns =
      Fun.protect
        ~finally:(fun () -> Kern.Sgemm.Resident.close r)
        (fun () ->
          let t0 = Clock.monotonic_ns () in
          let _, rep = Kern.Sgemm.Resident.multiply r b in
          let cold_ns = float_of_int (Clock.monotonic_ns () - t0) in
          let bytes = ref 0 in
          let t1 = Clock.monotonic_ns () in
          for _ = 1 to rounds do
            let _, rep = Kern.Sgemm.Resident.multiply r b in
            bytes := !bytes + rep.Cluster.scatter_bytes
          done;
          let warm_ns =
            float_of_int (Clock.monotonic_ns () - t1) /. float_of_int rounds
          in
          ( float_of_int rep.Cluster.scatter_bytes,
            cold_ns,
            float_of_int !bytes /. float_of_int rounds,
            warm_ns ))
    in
    Printf.printf
      "  %-28s cold %10.0f B %10.1f ns   warm %8.0f B %10.1f ns\n"
      "darray/sgemm" cold_bytes cold_ns warm_bytes warm_ns;
    add_row "darray/sgemm/cold-bytes" cold_bytes;
    add_row "darray/sgemm/warm-bytes" warm_bytes;
    add_row "darray/sgemm/byte-ratio" (warm_bytes /. cold_bytes);
    add_row "darray/sgemm/cold-ns" cold_ns;
    add_row "darray/sgemm/warm-ns" warm_ns;
    (* cutcp halo: one atom moves per round; only the touched slab and
       changed halos re-ship. *)
    let atoms = if quick then 60 else 160 in
    let c =
      D.cutcp ~seed:12 ~atoms ~nx:12 ~ny:12 ~nz:32 ~spacing:0.5 ~cutoff:1.5
    in
    let u = Kern.Cutcp.Resident.create ~ctx c in
    Fun.protect
      ~finally:(fun () -> Kern.Cutcp.Resident.close u)
      (fun () ->
        let _, rep_cold = Kern.Cutcp.Resident.potential u in
        let bytes = ref 0 in
        for i = 1 to rounds do
          Kern.Cutcp.Resident.displace u ~atom:(i mod atoms) ~dx:0.02
            ~dy:0.0 ~dz:0.03;
          ignore (Kern.Cutcp.Resident.resync u);
          let _, rep = Kern.Cutcp.Resident.potential u in
          bytes := !bytes + rep.Cluster.scatter_bytes
        done;
        let halo_warm = float_of_int !bytes /. float_of_int rounds in
        let halo_cold = float_of_int rep_cold.Cluster.scatter_bytes in
        Printf.printf "  %-28s cold %10.0f B   moving-atom warm %8.0f B\n"
          "darray/cutcp-halo" halo_cold halo_warm;
        add_row "darray/cutcp-halo/cold-bytes" halo_cold;
        add_row "darray/cutcp-halo/warm-bytes" halo_warm;
        add_row "darray/cutcp-halo/byte-ratio" (halo_warm /. halo_cold))
  end

let families : (string * string * (quick:bool -> unit)) list =
  [
    ( "service",
      "long-lived service: open-loop arrival sweep, tail latency and \
       overload shedding",
      fun ~quick -> run_service_family ~quick );
    ( "darray",
      "persistent distributed arrays: cold vs warm per-round scatter \
       bytes (resident segments, halo exchange)",
      fun ~quick -> run_darray_family ~quick );
    ( "dot",
      "loop fusion: dot product (paper section 2)",
      fun ~quick:_ -> run_group bench_dot );
    ( "iter",
      "iterator fusion gap: fused pipeline vs imperative loop per kernel \
       inner pattern",
      fun ~quick:_ ->
        run_group ~quota:2.0 ~stabilize:true bench_iter;
        iter_gap_rows () );
    ( "nested",
      "nested traversal encodings (Figure 1 'slow' cell)",
      fun ~quick:_ -> run_group bench_nested );
    ( "serialize",
      "serialization: block copy vs element-wise (section 3.4)",
      fun ~quick:_ -> run_group bench_serialize );
    ( "histogram",
      "histogramming: collector vs boxed list",
      fun ~quick:_ -> run_group bench_histogram );
    ("zip3", "zip fusion", fun ~quick:_ -> run_group bench_zip);
    ( "cutcp-direction",
      "cutcp scatter vs gather (Dim3)",
      fun ~quick:_ -> run_group bench_cutcp_direction );
    ( "payload",
      "payload shipping (serialize + copy + decode)",
      fun ~quick:_ -> run_group bench_payload );
    ( "scheduler",
      "scheduler: static preload vs adaptive lazy splitting",
      fun ~quick:_ ->
        run_group bench_scheduler;
        sched_report () );
    ( "kernels",
      "kernel styles on micro instances (Figure 3 in miniature)",
      fun ~quick:_ -> run_group bench_kernels );
    ( "figures",
      "figures (Figure 3 measured; 4, 5, 7, 8 simulated)",
      fun ~quick ->
        let scale = if quick then 0.25 else 1.0 in
        ignore (Triolet_harness.Figures.all ~scale ()) );
  ]

let family_names = List.map (fun (n, _, _) -> n) families

(* Each family runs with tracing on and freshly baselined counters, so
   its BENCH file carries the phase breakdown and counter deltas of
   exactly that family's runs. *)
let run_family ~quick ~out_dir ~suffix (name, desc, body) =
  Printf.printf "\n-- %s --\n%!" desc;
  family_rows := [];
  Obs.reset ();
  Obs.enable ();
  Stats.reset ();
  let t0 = Clock.monotonic_ns () in
  body ~quick;
  let wall_ns = Clock.monotonic_ns () - t0 in
  Obs.disable ();
  let stats = Stats.snapshot () in
  let doc =
    Json.Obj
      [
        ("family", Json.Str name);
        ("wall_ns", Json.Num (float_of_int wall_ns));
        ("rows", Json.Arr (List.rev_map row_json !family_rows));
        ("phases", Obs.aggregates_json ());
        ("counters", counters_json stats);
        ("dropped_spans", Json.Num (float_of_int (Obs.dropped_spans ())));
      ]
  in
  let path = Filename.concat out_dir ("BENCH_" ^ name ^ suffix ^ ".json") in
  Json.to_file path doc;
  Printf.printf "  [%d rows, wall %.1f ms -> %s]\n%!"
    (List.length !family_rows)
    (float_of_int wall_ns /. 1e6)
    path

let write_json file =
  let rows = List.rev !all_rows in
  Json.to_file file (Json.Arr (List.map row_json rows));
  Printf.printf "\nwrote %d benchmark rows to %s\n" (List.length rows) file

(* ------------------------------------------------------------------ *)
(* Argument parsing: the full argv is scanned and anything unknown is
   an error — a typoed flag must not silently run the 10-minute full
   suite with the flag ignored. *)

type opts = {
  quick : bool;
  filter : string option;
  json : string option;
  out_dir : string;
  list : bool;
  backend : [ `Inprocess | `Process ];
}

let usage_msg =
  "usage: bench/main.exe [quick|--quick] [--list] [--filter FAMILY]\n\
  \       [--json FILE] [--out-dir DIR] [--backend inprocess|process]\n\
   families: "
  ^ String.concat ", " family_names
  ^ "\n"

let argv_error msg =
  prerr_string ("bench: " ^ msg ^ "\n" ^ usage_msg);
  exit 2

let parse_argv () =
  let rec go o = function
    | [] -> o
    | ("quick" | "--quick") :: tl -> go { o with quick = true } tl
    | "--list" :: tl -> go { o with list = true } tl
    | "--filter" :: f :: tl ->
        if List.mem f family_names then go { o with filter = Some f } tl
        else argv_error (Printf.sprintf "unknown family %S" f)
    | [ "--filter" ] -> argv_error "--filter requires a family name"
    | "--json" :: f :: tl -> go { o with json = Some f } tl
    | [ "--json" ] -> argv_error "--json requires a file name"
    | "--out-dir" :: d :: tl -> go { o with out_dir = d } tl
    | [ "--out-dir" ] -> argv_error "--out-dir requires a directory"
    | "--backend" :: "inprocess" :: tl -> go { o with backend = `Inprocess } tl
    | "--backend" :: "process" :: tl -> go { o with backend = `Process } tl
    | "--backend" :: b :: _ ->
        argv_error (Printf.sprintf "unknown backend %S" b)
    | [ "--backend" ] -> argv_error "--backend requires inprocess or process"
    | a :: _ -> argv_error (Printf.sprintf "unknown argument %S" a)
  in
  go
    {
      quick = false;
      filter = None;
      json = None;
      out_dir = ".";
      list = false;
      backend = `Inprocess;
    }
    (List.tl (Array.to_list Sys.argv))

let () =
  let o = parse_argv () in
  if o.list then List.iter print_endline family_names
  else begin
    if o.out_dir <> "." && not (Sys.file_exists o.out_dir) then
      Sys.mkdir o.out_dir 0o755;
    (* Results are written per backend: the in-process transport keeps
       the historical BENCH_<family>.json names (so existing baselines
       stay comparable), the process transport writes
       BENCH_<family>.process.json. *)
    let suffix =
      match o.backend with `Inprocess -> "" | `Process -> ".process"
    in
    (match o.backend with
    | `Inprocess -> ()
    | `Process ->
        (* Must run before any pool exists: forking requires that no
           domain was ever spawned in this process. *)
        Unix.putenv "TRIOLET_BACKEND" "process";
        Triolet.Exec.set_ambient
          {
            (Triolet.Exec.current ()) with
            Triolet.Exec.backend = Triolet_runtime.Cluster.Process;
          });
    print_endline "== Micro-benchmarks (Bechamel, monotonic clock) ==";
    let selected =
      match o.filter with
      | None -> families
      | Some f -> List.filter (fun (n, _, _) -> n = f) families
    in
    (* The scheduler family spawns a 4-worker domain pool in this
       process, which permanently disables fork — incompatible with the
       process transport, so it is skipped (not silently: say so). *)
    let selected =
      match o.backend with
      | `Inprocess -> selected
      | `Process ->
          List.filter
            (fun (n, _, _) ->
              if n = "scheduler" then begin
                print_endline
                  "(skipping family 'scheduler': it spawns worker domains, \
                   which the process backend's fork requirement forbids)";
                false
              end
              else true)
            selected
    in
    List.iter (run_family ~quick:o.quick ~out_dir:o.out_dir ~suffix) selected;
    Option.iter write_json o.json
  end
