(** Reified execution plans.

    [of_iter]/[of_iter2] interrogate an iterator pipeline *without
    running a consumer* and produce a [t]: the loop-nest shape the tasks
    will execute, the partition strategy the skeleton dispatch would
    choose under the ambient {!Triolet.Exec} cluster geometry, the
    per-task index slices, and a summary of each task's serialized
    payload.  The verification passes in {!Passes} then audit the plan
    instead of the opaque closures. *)

open Triolet

type space = Space_1d of int | Space_2d of { rows : int; cols : int }

type slice =
  | Slice_1d of { off : int; len : int }
  | Slice_2d of { r0 : int; nr : int; c0 : int; nc : int }

type buf_summary =
  | Floats_buf of int  (** pointer-free float buffer, element count *)
  | Ints_buf of int  (** pointer-free int buffer, element count *)
  | Raw_buf of int  (** opaque pre-encoded bytes (boxed source), length *)

type task = {
  slice : slice;
  payload : (buf_summary list, string) result option;
      (** [None] when the task runs in place (no payload extracted);
          [Some (Error msg)] when slicing raised — e.g. a boxed source
          with no codec asked for distributed execution. *)
  aliased : bool;
      (** the extracted payload physically shares a buffer with the
          sender's memory instead of copying the slice.  Such a payload
          only "decodes" in-process, where the receiver is handed the
          sender's pointer; over a real transport (the process backend)
          the receiver gets bytes, and any in-place mutation or
          identity assumption breaks.  Detected by extracting twice and
          comparing buffers for physical equality. *)
}

type partition =
  | Whole  (** one task over the whole space (sequential execution) *)
  | Dynamic_ranges of { grain : int; overridden : bool }
      (** lazy-splitting scheduler over contiguous ranges; [grain] is
          the effective grain size, [overridden] when it came from the
          ambient context's [grain] rather than
          {!Triolet_runtime.Partition.grain} *)
  | Static_blocks of (int * int) array
      (** pre-cut 1-D (offset, length) node blocks *)
  | Static_grid of {
      row_parts : int;
      col_parts : int;
      blocks : (int * int * int * int) array;
    }  (** 2-D (row0, nrows, col0, ncols) node block grid *)

type t = {
  name : string;
  hint : Iter.hint;
  space : space;
  shape : Seq_iter.shape option;
      (** loop-nest shape of a probe slice; [None] for 2-D pipelines
          (always [IdxFlat] over a [Dim2] domain) or an empty space *)
  partition : partition;
  workers : int;  (** worker count the partition targets *)
  tasks : task list;
}

let hint_to_string = function
  | Iter.Sequential -> "sequential"
  | Iter.Local -> "local"
  | Iter.Distributed -> "distributed"

let space_size = function
  | Space_1d n -> n
  | Space_2d { rows; cols } -> rows * cols

let buf_summary_of = function
  | Triolet_base.Payload.Floats a -> Floats_buf (Float.Array.length a)
  | Triolet_base.Payload.Ints a -> Ints_buf (Array.length a)
  | Triolet_base.Payload.Raw s -> Raw_buf (String.length s)

(* Two extractions of a *copying* [payload_of] yield physically distinct
   buffers; physically equal non-empty buffers mean the extractor handed
   out the sender's own array.  (Zero-length arrays and strings are
   excluded: OCaml interns those, so sharing proves nothing.) *)
let phys_alias b1 b2 =
  match (b1, b2) with
  | Triolet_base.Payload.Floats a, Triolet_base.Payload.Floats b ->
      Float.Array.length a > 0 && a == b
  | Triolet_base.Payload.Ints a, Triolet_base.Payload.Ints b ->
      Array.length a > 0 && a == b
  | Triolet_base.Payload.Raw s, Triolet_base.Payload.Raw r ->
      String.length s > 0 && s == r
  | _ -> false

let probe_payload extract =
  match extract () with
  | p ->
      let aliased =
        match extract () with
        | p2 -> List.length p = List.length p2 && List.exists2 phys_alias p p2
        | exception _ -> false
      in
      (Some (Ok (List.map buf_summary_of p)), aliased)
  | exception e -> (Some (Error (Printexc.to_string e)), false)

let local_workers () =
  Triolet_runtime.Pool.size (Triolet_runtime.Pool.default ())

let distributed_workers () = Exec.worker_count (Exec.current ())

let effective_grain ~workers n =
  match (Exec.current ()).Exec.grain with
  | Some g -> (g, true)
  | None -> (Triolet_runtime.Partition.grain ~workers n, false)

(** Reify a 1-D pipeline.  Mirrors the dispatch in [Iter]'s consumers:
    sequential → one in-place task; local → lazy-splitting dynamic
    ranges; distributed → [Partition.blocks] over the skeleton's worker
    count, one payload per block. *)
let of_iter ~name (it : 'a Iter.t) : t =
  let len = Iter.length it in
  let shape =
    if len = 0 then None
    else Some (Seq_iter.shape_of (it.Iter.local 0 (min len 4)))
  in
  let hint = Iter.hint it in
  let partition, workers, tasks =
    match hint with
    | Iter.Sequential ->
        ( Whole,
          1,
          [
            { slice = Slice_1d { off = 0; len }; payload = None;
              aliased = false };
          ] )
    | Iter.Local ->
        let workers = local_workers () in
        let grain, overridden = effective_grain ~workers len in
        ( Dynamic_ranges { grain; overridden },
          workers,
          [
            { slice = Slice_1d { off = 0; len }; payload = None;
              aliased = false };
          ] )
    | Iter.Distributed ->
        let workers = distributed_workers () in
        let blocks = Triolet_runtime.Partition.blocks ~parts:workers len in
        let tasks =
          Array.to_list blocks
          |> List.map (fun (off, n) ->
                 let payload, aliased =
                   probe_payload (fun () -> it.Iter.payload_of off n)
                 in
                 { slice = Slice_1d { off; len = n }; payload; aliased })
        in
        (Static_blocks blocks, workers, tasks)
  in
  { name; hint; space = Space_1d len; shape; partition; workers; tasks }

(** Reify a 2-D pipeline.  Mirrors [Iter2.build]/[Iter2.sum]:
    sequential → whole; local → dynamic row bands; distributed → a
    near-square [Partition.grid] of node blocks sliced with
    [Iter2.payload_slice]. *)
let of_iter2 ~name (it : 'a Iter2.t) : t =
  let rows = Iter2.row_count it and cols = Iter2.col_count it in
  let hint = Iter2.hint it in
  let whole =
    {
      slice = Slice_2d { r0 = 0; nr = rows; c0 = 0; nc = cols };
      payload = None;
      aliased = false;
    }
  in
  let partition, workers, tasks =
    match hint with
    | Iter.Sequential -> (Whole, 1, [ whole ])
    | Iter.Local ->
        let workers = local_workers () in
        let grain, overridden = effective_grain ~workers rows in
        (Dynamic_ranges { grain; overridden }, workers, [ whole ])
    | Iter.Distributed ->
        let workers = distributed_workers () in
        let nodes = (Exec.current ()).Exec.nodes in
        let rp, cp = Triolet_runtime.Partition.square_factors nodes in
        let blocks =
          Triolet_runtime.Partition.grid ~row_parts:rp ~col_parts:cp ~rows
            ~cols
        in
        let tasks =
          Array.to_list blocks
          |> List.map (fun (r0, nr, c0, nc) ->
                 let payload, aliased =
                   probe_payload (fun () ->
                       Iter2.payload_slice it ~r0 ~nr ~c0 ~nc)
                 in
                 { slice = Slice_2d { r0; nr; c0; nc }; payload; aliased })
        in
        (Static_grid { row_parts = rp; col_parts = cp; blocks }, workers, tasks)
  in
  {
    name;
    hint;
    space = Space_2d { rows; cols };
    shape = None;
    partition;
    workers;
    tasks;
  }

let payload_bytes t =
  List.fold_left
    (fun acc task ->
      match task.payload with
      | Some (Ok bufs) ->
          List.fold_left
            (fun acc b ->
              acc
              + match b with
                | Floats_buf n -> n * 8
                | Ints_buf n -> n * 8
                | Raw_buf n -> n)
            acc bufs
      | _ -> acc)
    0 t.tasks

let to_string t =
  let b = Buffer.create 256 in
  let space_str =
    match t.space with
    | Space_1d n -> Printf.sprintf "[0, %d)" n
    | Space_2d { rows; cols } -> Printf.sprintf "%d x %d" rows cols
  in
  Buffer.add_string b
    (Printf.sprintf "plan %-10s %-11s space %-12s" t.name
       (hint_to_string t.hint) space_str);
  (match t.shape with
  | Some s ->
      Buffer.add_string b
        (Printf.sprintf " nest %s" (Seq_iter.shape_to_string s))
  | None -> ());
  (match t.partition with
  | Whole -> Buffer.add_string b "\n  one task, in place"
  | Dynamic_ranges { grain; overridden } ->
      Buffer.add_string b
        (Printf.sprintf "\n  dynamic ranges over %d workers, grain %d%s"
           t.workers grain
           (if overridden then " (override)" else " (auto)"))
  | Static_blocks blocks ->
      Buffer.add_string b
        (Printf.sprintf "\n  %d static blocks over %d workers, %d payload bytes"
           (Array.length blocks) t.workers (payload_bytes t))
  | Static_grid { row_parts; col_parts; blocks } ->
      Buffer.add_string b
        (Printf.sprintf
           "\n  %dx%d block grid (%d blocks) over %d workers, %d payload bytes"
           row_parts col_parts (Array.length blocks) t.workers
           (payload_bytes t)));
  Buffer.contents b
