(** Verification passes over reified plans.

    - [coverage]: static block/grid partitions must tile the index
      space exactly once (the {!Coverage} oracle, with exact-block
      witnesses) — [Error] on violation;
    - [fusion]: a parallel pipeline whose outer loop nest degenerated
      to a stepper has lost random access and cannot be partitioned —
      [Warning]; an [IdxNest] shape gets an [Info] noting the
      irregularity is isolated;
    - [serialization]: distributed tasks whose payload extraction
      raises (boxed source without a codec) — [Error]; element-encoded
      [Raw] payloads — [Info];
    - [grain_advisory]: an ambient-context grain override coarse enough
      to starve the pool — [Warning]; auto grains never warn. *)

type severity = Info | Warning | Error

type finding = {
  pass : string;
  plan : string;
  severity : severity;
  message : string;
}

val severity_to_string : severity -> string
val to_string : finding -> string

val has_errors : finding list -> bool
(** True iff any finding is an [Error] — the analyze exit criterion. *)

val coverage : Plan.t -> finding list
val fusion : Plan.t -> finding list
val serialization : Plan.t -> finding list
val grain_advisory : Plan.t -> finding list

val run_plan : Plan.t -> finding list
(** All passes over one plan. *)

val run_all : Plan.t list -> finding list
(** All passes over every plan, in order. *)
