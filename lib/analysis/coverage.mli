(** Coverage/disjointness oracle for block decompositions.

    Proves that a set of blocks tiles an index space exactly once —
    every index covered, none covered twice, no block empty or out of
    bounds — and, on failure, names the exact offending block(s) with a
    witness index.  Shared between the plan analyzer's coverage pass and
    the test suite's qcheck properties, so the tests and the CI gate
    check the same property with the same code. *)

type violation =
  | Empty_block of { block : int; detail : string }
      (** block [block] covers no index *)
  | Out_of_bounds of { block : int; detail : string }
      (** block [block] reaches outside the index space *)
  | Overlap of { block_a : int; block_b : int; detail : string }
      (** blocks [block_a] and [block_b] both cover some index *)
  | Gap of { detail : string }  (** some index is covered by no block *)

val violation_to_string : violation -> string

val check_blocks : n:int -> (int * int) array -> violation list
(** [check_blocks ~n blocks] checks that the [(offset, length)] blocks
    tile [\[0, n)] exactly once.  Returns [[]] iff they do.  Block
    indices in violations refer to positions in [blocks].  An empty
    array tiles an empty space ([n = 0]). *)

val check_grid :
  rows:int -> cols:int -> (int * int * int * int) array -> violation list
(** [check_grid ~rows ~cols blocks] checks that the
    [(row0, nrows, col0, ncols)] blocks tile the [rows * cols] space
    exactly once.  Violations carry a witness cell. *)

val covers_exactly_once : n:int -> (int * int) array -> bool
(** [check_blocks] as a boolean, for property tests. *)

val grid_covers_exactly_once :
  rows:int -> cols:int -> (int * int * int * int) array -> bool
(** [check_grid] as a boolean, for property tests. *)
