(** Coverage/disjointness oracle for block decompositions.

    A decomposition is correct iff its blocks tile the index space
    exactly once: every index covered, no index covered twice, no block
    empty or out of bounds.  A wrong decomposition (a broken [rows] x
    [outerproduct] grid, an off-by-one in a boundary) silently produces
    wrong numbers at run time; this checker proves the property
    statically and, when it fails, names the exact offending block.

    The same functions serve as the oracle for the qcheck properties in
    the test suite and for the plan analyzer's coverage pass, so the
    property the tests state and the property CI gates on are one
    piece of code. *)

type violation =
  | Empty_block of { block : int; detail : string }
      (** block [block] covers no index *)
  | Out_of_bounds of { block : int; detail : string }
      (** block [block] reaches outside the index space *)
  | Overlap of { block_a : int; block_b : int; detail : string }
      (** blocks [block_a] and [block_b] both cover some index *)
  | Gap of { detail : string }  (** some index is covered by no block *)

let violation_to_string = function
  | Empty_block { block; detail } ->
      Printf.sprintf "empty block #%d %s" block detail
  | Out_of_bounds { block; detail } ->
      Printf.sprintf "out-of-bounds block #%d %s" block detail
  | Overlap { block_a; block_b; detail } ->
      Printf.sprintf "overlap between blocks #%d and #%d %s" block_a block_b
        detail
  | Gap { detail } -> Printf.sprintf "gap: %s" detail

(* Shared 1-D sweep: blocks as (id, offset, length), assumed individually
   valid (nonempty, in bounds).  [describe] renders an index for the
   violation message — 2-D checks use it to add the row context. *)
let sweep_1d ~n ~describe blocks =
  let sorted =
    List.sort
      (fun (_, o1, _) (_, o2, _) -> compare (o1 : int) o2)
      blocks
  in
  let viols = ref [] in
  let add v = viols := v :: !viols in
  let cur = ref 0 and owner = ref (-1) in
  List.iter
    (fun (id, off, len) ->
      if off > !cur then
        add (Gap { detail = Printf.sprintf "%s uncovered" (describe !cur off) });
      if off < !cur && !owner >= 0 then
        add
          (Overlap
             {
               block_a = !owner;
               block_b = id;
               detail =
                 Printf.sprintf "both cover %s"
                   (describe off (min !cur (off + len)));
             });
      if off + len > !cur then begin
        cur := off + len;
        owner := id
      end)
    sorted;
  if !cur < n then
    add (Gap { detail = Printf.sprintf "%s uncovered" (describe !cur n) });
  List.rev !viols

(** [check_blocks ~n blocks] verifies that the (offset, length) blocks
    tile [0, n) exactly once.  Empty input tiles an empty space. *)
let check_blocks ~n (blocks : (int * int) array) =
  let viols = ref [] in
  let add v = viols := v :: !viols in
  let valid = ref [] in
  Array.iteri
    (fun i (off, len) ->
      if len <= 0 then
        add
          (Empty_block
             { block = i; detail = Printf.sprintf "(off=%d, len=%d)" off len })
      else if off < 0 || off + len > n then
        add
          (Out_of_bounds
             {
               block = i;
               detail = Printf.sprintf "(off=%d, len=%d) vs [0, %d)" off len n;
             })
      else valid := (i, off, len) :: !valid)
    blocks;
  let describe lo hi =
    if hi = lo + 1 then Printf.sprintf "index %d" lo
    else Printf.sprintf "indices [%d, %d)" lo hi
  in
  List.rev !viols @ sweep_1d ~n ~describe (List.rev !valid)

(** [check_grid ~rows ~cols blocks] verifies that the (row0, nrows,
    col0, ncols) blocks tile the [rows] x [cols] space exactly once.
    The space is swept in elementary row strips (no block boundary
    strictly inside a strip), and each strip's column intervals must
    tile [0, cols) exactly — so a violation is reported with both the
    offending block(s) and a witness cell. *)
let check_grid ~rows ~cols (blocks : (int * int * int * int) array) =
  let viols = ref [] in
  let add v = viols := v :: !viols in
  let valid = ref [] in
  Array.iteri
    (fun i (r0, nr, c0, nc) ->
      if nr <= 0 || nc <= 0 then
        add
          (Empty_block
             {
               block = i;
               detail = Printf.sprintf "(r0=%d, nr=%d, c0=%d, nc=%d)" r0 nr c0 nc;
             })
      else if r0 < 0 || r0 + nr > rows || c0 < 0 || c0 + nc > cols then
        add
          (Out_of_bounds
             {
               block = i;
               detail =
                 Printf.sprintf "(r0=%d, nr=%d, c0=%d, nc=%d) vs %dx%d" r0 nr
                   c0 nc rows cols;
             })
      else valid := (i, r0, nr, c0, nc) :: !valid)
    blocks;
  let valid = List.rev !valid in
  let strip_viols =
    if rows = 0 || cols = 0 then []
    else begin
      (* Elementary row strips from every block boundary. *)
      let bounds =
        List.concat_map (fun (_, r0, nr, _, _) -> [ r0; r0 + nr ]) valid
        @ [ 0; rows ]
      in
      let bounds = List.sort_uniq compare bounds in
      let rec strips acc = function
        | y0 :: (y1 :: _ as rest) ->
            let acc =
              if y1 > y0 && y0 >= 0 && y1 <= rows then (y0, y1) :: acc
              else acc
            in
            strips acc rest
        | _ -> List.rev acc
      in
      List.concat_map
        (fun (y0, y1) ->
          let cols_of_strip =
            List.filter_map
              (fun (i, r0, nr, c0, nc) ->
                if r0 <= y0 && r0 + nr >= y1 then Some (i, c0, nc) else None)
              valid
          in
          let describe lo hi =
            if hi = lo + 1 then Printf.sprintf "cell (%d, %d)" y0 lo
            else Printf.sprintf "cells (%d, [%d, %d))" y0 lo hi
          in
          sweep_1d ~n:cols ~describe cols_of_strip)
        (strips [] bounds)
    end
  in
  List.rev !viols @ strip_viols

(** Exact tiling as a boolean, for property tests. *)
let covers_exactly_once ~n blocks = check_blocks ~n blocks = []

let grid_covers_exactly_once ~rows ~cols blocks =
  check_grid ~rows ~cols blocks = []
