(** Reified execution plans for skeleton pipelines.

    A plan is the inspectable image of what a consumer *would* execute:
    loop-nest shape, partition strategy under the current cluster
    geometry, per-task index slices, and per-task payload summaries.
    Reification never runs the pipeline's element functions beyond a
    small shape probe, and never runs a consumer. *)

open Triolet

type space = Space_1d of int | Space_2d of { rows : int; cols : int }

type slice =
  | Slice_1d of { off : int; len : int }
  | Slice_2d of { r0 : int; nr : int; c0 : int; nc : int }

type buf_summary =
  | Floats_buf of int  (** pointer-free float buffer, element count *)
  | Ints_buf of int  (** pointer-free int buffer, element count *)
  | Raw_buf of int  (** opaque pre-encoded bytes (boxed source), length *)

type task = {
  slice : slice;
  payload : (buf_summary list, string) result option;
      (** [None]: in-place task; [Some (Error _)]: slicing raised. *)
  aliased : bool;
      (** the payload physically shares a non-empty buffer with the
          sender's memory (detected by extracting twice and comparing
          with [==]); such a payload only decodes in-process and is a
          hard error under a real transport. *)
}

type partition =
  | Whole
  | Dynamic_ranges of { grain : int; overridden : bool }
  | Static_blocks of (int * int) array
  | Static_grid of {
      row_parts : int;
      col_parts : int;
      blocks : (int * int * int * int) array;
    }

type t = {
  name : string;
  hint : Iter.hint;
  space : space;
  shape : Seq_iter.shape option;
      (** [None] for 2-D pipelines and empty spaces *)
  partition : partition;
  workers : int;
  tasks : task list;
}

val of_iter : name:string -> 'a Iter.t -> t
(** Reify a 1-D pipeline, mirroring the consumer dispatch: sequential →
    one in-place task; local → lazy-splitting dynamic ranges;
    distributed → [Partition.blocks] static blocks with one probed
    payload per block. *)

val of_iter2 : name:string -> 'a Iter2.t -> t
(** Reify a 2-D pipeline, mirroring [Iter2.build]/[Iter2.sum]:
    distributed → near-square [Partition.grid] of node blocks sliced
    with [Iter2.payload_slice]. *)

val space_size : space -> int
val hint_to_string : Iter.hint -> string

val payload_bytes : t -> int
(** Total bytes across all successfully probed task payloads (floats
    and ints counted at 8 bytes per element). *)

val to_string : t -> string
(** Two-line human-readable rendering for [triolet analyze]. *)
