(** Unsafe-access ratchet.

    Counts unchecked array/bytes accesses ([Array.unsafe_*] and
    [Bytes.unsafe_*], which includes the [Float.Array] variants) across
    the source tree and compares against a per-file whitelist of
    audited sites.
    A file above its allowance — or any unsafe access in a file not on
    the list — is an [Error]: new unsafe accesses must either go
    through a checked accessor ({!Triolet_base.Vec.fget}/[fset]) or be
    audited and added here with the count.  A file *below* its
    allowance is an [Info]: the ratchet can be tightened.

    The scan is textual by design: it runs with no build artifacts and
    flags commented-out code too, which is what a lint gate wants. *)

(* Needles are assembled by concatenation so this file does not match
   its own scan. *)
let patterns =
  List.concat_map
    (fun m -> [ m ^ "unsafe_get"; m ^ "unsafe_set" ])
    [ "Array."; "Bytes." ]

(* Audited allowance per file (paths relative to the repo root).
   - vec.ml: the checked fget/fset accessors themselves plus the
     hot memset loop;
   - rw.ml: the byte-level codec primitives (bounds carried by the
     cursor invariant);
   - matrix.ml / grid3.ml / stepper.ml: inner loops whose indices are
     produced by the module's own shape arithmetic;
   - mriq.ml / sgemm.ml / bench: measured inner loops where the bounds
     are the enclosing for-loop's.
   tpacf.ml and cutcp.ml are deliberately absent: they were migrated to
   Vec.fget/fset, so any unsafe access reappearing there fails. *)
let whitelist =
  [
    ("lib/base/rw.ml", 5);
    ("lib/base/vec.ml", 5);
    ("lib/core/grid3.ml", 4);
    ("lib/core/matrix.ml", 13);
    ("lib/core/stepper.ml", 4);
    ("lib/kernels/mriq.ml", 13);
    (* sgemm's 3 extra sites are Resident.work's child-side block
       product: same bounds-by-enclosing-for-loop shape as run_c. *)
    ("lib/kernels/sgemm.ml", 8);
    ("bench/main.ml", 7);
  ]

let scan_dirs = [ "lib"; "bin"; "bench"; "examples" ]

(* Wall-clock ratchet: durations and deadlines must be computed on the
   monotonic clock ({!Triolet_runtime.Clock.monotonic_ns}) — the wall
   clock steps under NTP adjustment, which once produced spurious
   mailbox timeouts and skewed recovery timing.  Any qualified call in
   a timing-sensitive tree is an error with no allowance.  (Needle
   assembled by concatenation so this file passes its own scan.) *)
let wallclock_needle = "Unix." ^ "gettimeofday"
let wallclock_dirs = [ "lib/runtime/"; "lib/harness/"; "lib/kernels/"; "bench/" ]

(* Fused-path ratchet: the push-based stream encoding gets its speed
   from keeping pipelines allocation-free, so the files on the fused hot
   path are held to two extra rules.  [Obj] tricks are banned outright —
   an [Obj.magic] "optimization" sneaking into the stream core is how
   fusion rewrites rot.  Mutable cells are ratcheted per file: the
   audited allowance covers the unboxed float accumulators and the
   per-invocation state cells of restartable push faces; a new [ref] in
   a fused file means a closure captured mutable state, which defeats
   unboxing and must be audited here.  (Needles assembled by
   concatenation so this file passes its own scan.) *)
let obj_needle = "Obj" ^ "."
let ref_needle = "ref" ^ " "

let fusion_whitelist =
  [
    ("lib/core/stepper.ml", 4);
    ("lib/core/folder.ml", 0);
    ("lib/core/indexer.ml", 1);
    ("lib/core/seq_iter.ml", 0);
    ("lib/core/shape.ml", 0);
  ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let count_occurrences ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go from acc =
    if from + nl > hl then acc
    else
      match String.index_from_opt haystack from needle.[0] with
      | None -> acc
      | Some i ->
          if i + nl <= hl && String.sub haystack i nl = needle then
            go (i + nl) (acc + 1)
          else go (i + 1) acc
  in
  go 0 0

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let count_file path =
  let s = read_file path in
  List.fold_left (fun acc p -> acc + count_occurrences ~needle:p s) 0 patterns

let rec walk dir acc =
  match Sys.readdir dir with
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc name ->
          if name = "_build" || name = "" || name.[0] = '.' then acc
          else
            let path = Filename.concat dir name in
            if Sys.is_directory path then walk path acc
            else if Filename.check_suffix name ".ml" then path :: acc
            else acc)
        acc entries
  | exception Sys_error _ -> acc

(** [run ~root ()] scans the tree under [root] (default ["."]) and
    returns findings in {!Passes} form, plan field ["<tree>"]. *)
let run ?(root = ".") () : Passes.finding list =
  let files =
    List.concat_map
      (fun d ->
        let dir = Filename.concat root d in
        if Sys.file_exists dir && Sys.is_directory dir then walk dir []
        else [])
      scan_dirs
    |> List.sort compare
  in
  let strip path =
    (* report paths relative to [root] so the whitelist is portable *)
    let prefix = if root = "." then "./" else Filename.concat root "" in
    let pl = String.length prefix and l = String.length path in
    if l >= pl && String.sub path 0 pl = prefix then
      String.sub path pl (l - pl)
    else path
  in
  let wallclock_findings =
    List.filter_map
      (fun path ->
        let rel = strip path in
        if not (List.exists (fun d -> starts_with ~prefix:d rel) wallclock_dirs)
        then None
        else
          let count =
            count_occurrences ~needle:wallclock_needle (read_file path)
          in
          if count = 0 then None
          else
            Some
              {
                Passes.pass = "wallclock";
                plan = rel;
                severity = Passes.Error;
                message =
                  Printf.sprintf
                    "%d wall-clock timing call(s) in a timing path: use \
                     Clock.monotonic_ns (NTP steps make wall-clock \
                     deadlines and durations wrong)"
                    count;
              })
      files
  in
  let fusion_findings =
    List.filter_map
      (fun (rel, allowed_refs) ->
        let path = Filename.concat root rel in
        if not (Sys.file_exists path) then None
        else
          let s = read_file path in
          let objs = count_occurrences ~needle:obj_needle s in
          let refs = count_occurrences ~needle:ref_needle s in
          if objs > 0 then
            Some
              {
                Passes.pass = "fusion";
                plan = rel;
                severity = Passes.Error;
                message =
                  Printf.sprintf
                    "%d Obj use(s) on the fused stream path: no unsafe \
                     representation tricks in the stream core"
                    objs;
              }
          else if refs > allowed_refs then
            Some
              {
                Passes.pass = "fusion";
                plan = rel;
                severity = Passes.Error;
                message =
                  Printf.sprintf
                    "%d mutable cell(s) on the fused stream path, %d \
                     audited: captured refs defeat unboxing — thread the \
                     accumulator or audit the site and raise the allowance"
                    refs allowed_refs;
              }
          else if refs < allowed_refs then
            Some
              {
                Passes.pass = "fusion";
                plan = rel;
                severity = Passes.Info;
                message =
                  Printf.sprintf
                    "%d mutable cell(s), %d audited: allowance can be \
                     lowered"
                    refs allowed_refs;
              }
          else None)
      fusion_whitelist
  in
  wallclock_findings @ fusion_findings
  @ List.filter_map
    (fun path ->
      let rel = strip path in
      let count = count_file path in
      let allowed =
        match List.assoc_opt rel whitelist with Some n -> n | None -> 0
      in
      if count > allowed then
        Some
          {
            Passes.pass = "unsafe";
            plan = rel;
            severity = Passes.Error;
            message =
              Printf.sprintf
                "%d unchecked unsafe access(es), %d audited: use \
                 Vec.fget/fset or audit the new site and raise the \
                 allowance"
                count allowed;
          }
      else if count < allowed then
        Some
          {
            Passes.pass = "unsafe";
            plan = rel;
            severity = Passes.Info;
            message =
              Printf.sprintf
                "%d unsafe access(es), %d audited: allowance can be \
                 lowered"
                count allowed;
          }
      else None)
    files
