(** Wire-protocol conformance lint.

    Two checks tie the reified {!Triolet_runtime.Protocol.spec} to the
    code that speaks it:

    - {b spec audit}: [Protocol.check] on the live spec — every frame
      kind any peer can send must have a rule in every state of the
      receiving role, every [Goto] target must exist, no state may
      have two rules for one event.  A spec hole is an [Error]: it is
      exactly the class of bug where a new frame kind is added to the
      sender but one receiver state silently drops or crashes on it.
    - {b sent-kind scan}: parse [lib/runtime/] and [lib/core/] and
      collect every [~kind:K] argument whose value is one of the frame
      constructors.  Each kind actually sent by the code must be
      sendable by {e some} role in the spec; a kind the spec does not
      know about means code and spec have drifted — [Error]. *)

module Protocol = Triolet_runtime.Protocol

let kind_constructors =
  [
    ("Data", Protocol.Data);
    ("Err", Protocol.Err);
    ("Nack", Protocol.Nack);
    ("Ping", Protocol.Ping);
    ("Pong", Protocol.Pong);
    ("Seg_put", Protocol.Seg_put);
    ("Seg_reuse", Protocol.Seg_reuse);
    ("Seg_free", Protocol.Seg_free);
  ]

(* Findings for an arbitrary spec — exposed so tests can seed a spec
   with a missing rule and watch it get caught. *)
let check_spec ?(name = "Protocol.spec") spec =
  List.map
    (fun issue ->
      {
        Passes.pass = "protocol";
        plan = name;
        severity = Passes.Error;
        message = Protocol.issue_to_string issue;
      })
    (Protocol.check spec)

(* Every [~kind:K] construct argument in one parsed file, with its
   line. *)
let sent_kinds_of ast =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_apply (_, args) ->
              List.iter
                (fun (lbl, (a : Parsetree.expression)) ->
                  match (lbl, a.pexp_desc) with
                  | ( Asttypes.Labelled "kind",
                      Pexp_construct ({ txt; _ }, None) ) -> (
                      let last = Longident.last txt in
                      match List.assoc_opt last kind_constructors with
                      | Some k ->
                          out := (last, k, a.pexp_loc.loc_start.pos_lnum) :: !out
                      | None -> ())
                  | _ -> ())
                args
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it ast;
  List.rev !out

let sendable_by_someone spec k =
  Protocol.sendable spec Protocol.Parent k
  || Protocol.sendable spec Protocol.Child k

let run ?(root = ".") () =
  let spec_findings = check_spec Protocol.spec in
  let scan_findings =
    List.concat_map
      (fun (rel, abs) ->
        match
          let ic = open_in_bin abs in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let lb =
                Lexing.from_string
                  (really_input_string ic (in_channel_length ic))
              in
              Lexing.set_filename lb abs;
              Parse.implementation lb)
        with
        | ast ->
            List.filter_map
              (fun (name, k, line) ->
                if sendable_by_someone Protocol.spec k then None
                else
                  Some
                    {
                      Passes.pass = "protocol";
                      plan = Printf.sprintf "%s:%d" rel line;
                      severity = Passes.Error;
                      message =
                        Printf.sprintf
                          "frame kind %s is sent here but no role may send \
                           it in Protocol.spec: code and spec have drifted"
                          name;
                    })
              (sent_kinds_of ast)
        | exception _ -> [])
      (List.concat_map
         (fun dir ->
           let abs = Filename.concat root dir in
           if Sys.file_exists abs && Sys.is_directory abs then
             Sys.readdir abs |> Array.to_list |> List.sort compare
             |> List.filter (fun f -> Filename.check_suffix f ".ml")
             |> List.map (fun f -> (dir ^ "/" ^ f, Filename.concat abs f))
           else [])
         Lockcheck.scan_roots)
  in
  spec_findings @ scan_findings
