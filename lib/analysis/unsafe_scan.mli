(** Unsafe-access ratchet: textual scan for [*.unsafe_get]/[set] sites
    against a per-file allowance of audited uses.  Part of the
    [triolet analyze] lint gate. *)

val whitelist : (string * int) list
(** Audited (file, allowed count) pairs, paths relative to the repo
    root. *)

val run : ?root:string -> unit -> Passes.finding list
(** Scan [lib/], [bin/], [bench/] and [examples/] under [root]
    (default ["."], skipping [_build] and dotfiles).  A file over its
    allowance is an [Error]; under it, an [Info]; at it, silent.

    Also runs the wall-clock pass: any [Unix]-qualified [gettimeofday]
    in [lib/runtime/], [lib/harness/], [lib/kernels/] or [bench/] is an
    [Error] with no allowance — timing paths must use the monotonic
    clock. *)
