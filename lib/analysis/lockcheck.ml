(** Concurrency lint over the runtime's Mutex discipline.

    The runtime's safety argument leans on hand-rolled locking — the
    pool's condition-variable protocol, the mailbox's poison-on-close,
    the process fabric's teardown serialization, the service
    dispatcher's client queue.  [Unsafe_scan] is grep-shaped and cannot
    see any of it.  This pass parses the runtime sources with
    [compiler-libs] (no new dependency: the parser ships with the
    compiler) and runs a small flow-sensitive walker over every
    top-level function:

    - {b lock-acquisition graph}: every [Mutex.lock] reached while
      another lock is held adds an edge [held → acquired] (including
      locks acquired inside callees, via per-function summaries closed
      transitively over the call graph).  A cycle in that graph is a
      lock-order inversion — two threads taking the same pair of locks
      in opposite orders can deadlock — and is an [Error].  The graph
      is exportable as DOT for the CI artifact.
    - {b blocking under a lock}: a call to a blocking primitive
      ([Unix.read]/[select]/[sleepf]…, [Mailbox.recv], [Thread.join],
      [Domain.join], the transport receive family) while any lock is
      held stalls every thread that wants that lock — [Error].
    - {b condition-wait shape}: [Condition.wait] must name a mutex the
      walker knows is held, must sit inside a loop (a [while]/[for]
      body or a recursive binding — the wait-loop idiom that absorbs
      spurious wakeups), and must not be nested under any {e other}
      lock (the wait releases only its own mutex) — each an [Error].
    - {b lock ratchet}: raw [Mutex.create]/[Atomic.make] introductions
      are counted per file against {!whitelist}, like the unsafe-access
      ratchet: over the audited allowance is an [Error], under it an
      [Info] asking for the allowance to be lowered.

    The walker threads a held-lock stack through sequencing, lets,
    branches (joining by intersection, ignoring diverging branches so
    the [lock; if bad then (unlock; raise …)] idiom keeps its facts),
    [Fun.protect] (body first, then [~finally]), and loops.  Local
    [let]-bound functions are inlined at their call sites with the
    caller's lock state — the dispatcher's idiom of a local helper
    that unlocks the caller's mutex before blocking is analyzed as
    written, not guessed at — with a guard that stops recursive
    inlining.  Cross-function effects travel only through summaries of
    {e lock acquisition}; blocking-ness deliberately does not
    propagate (a callee that blocks under its own discipline, like a
    bounded queue's wait loop, is not an error at every call site). *)

type edge = {
  from_lock : string;  (** held when… *)
  to_lock : string;  (** …this one was acquired *)
  file : string;
  line : int;
  via : string option;  (** callee whose summary supplied the edge *)
}

(** Audited (file, allowed [Mutex.create] + [Atomic.make] count)
    pairs, paths relative to the repo root.  Grow a file's allowance
    only with a comment in the reviewed change explaining the new
    primitive's discipline; shrink it when one is retired. *)
let whitelist =
  [
    ("lib/core/skeletons.ml", 1);
    ("lib/runtime/fault.ml", 1);
    ("lib/runtime/mailbox.ml", 1);
    ("lib/runtime/pool.ml", 7);
    ("lib/runtime/protocol.ml", 1);
    ("lib/runtime/service.ml", 1);
    (* stats.ml's 26th atomic is the standalone payload-encode counter:
       a monotone count bumped only inside scatter serialization spans,
       read only by tests and reports — no ordering discipline needed. *)
    ("lib/runtime/stats.ml", 26);
    ("lib/runtime/transport.ml", 1);
    ("lib/runtime/wsdeque.ml", 2);
  ]

let scan_roots = [ "lib/runtime"; "lib/core" ]

(* Calls that can park the calling thread for unbounded (or scheduled)
   time.  Matched on the dotted path as written at the call site. *)
let blocking_calls =
  [
    "Unix.read";
    "Unix.write";
    "Unix.select";
    "Unix.sleep";
    "Unix.sleepf";
    "Unix.recv";
    "Unix.send";
    "Unix.waitpid";
    "Unix.accept";
    "Unix.connect";
    "Thread.join";
    "Thread.delay";
    "Domain.join";
    "Mailbox.recv";
    "Mailbox.recv_timeout";
    "Transport.Socket.recv";
    "Transport.Socket.recv_timeout";
    "Transport.Proc.recv_any";
  ]

(* ------------------------------------------------------------------ *)
(* Parsetree helpers.                                                  *)

let rec flat = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> flat p @ [ s ]
  | Longident.Lapply (a, b) -> flat a @ flat b

let path_str p = String.concat "." p

let fn_path (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flat txt)
  | _ -> None

let line_of (e : Parsetree.expression) = e.pexp_loc.loc_start.pos_lnum

(* The lock's identity: a bare name or record field collapses to
   <module path>.<name> (every [t.lock] of one module is the same lock
   for ordering purposes); an already-qualified name is used as
   written. *)
let lock_name modpath (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Lident x; _ } -> path_str (modpath @ [ x ])
  | Pexp_ident { txt; _ } -> path_str (flat txt)
  | Pexp_field (_, { txt; _ }) ->
      path_str (modpath @ [ Longident.last txt ])
  | _ -> path_str (modpath @ [ "<expr>" ])

(* Does evaluation of [e] always end in an exception?  Branches that
   diverge are excluded from lock-state joins, so the
   [lock; if bad then (unlock; raise …); …] idiom does not poison the
   main path's held set. *)
let rec diverges (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match path_str (flat txt) with
      | "raise" | "raise_notrace" | "failwith" | "invalid_arg" -> true
      | _ -> false)
  | Pexp_assert
      { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ } ->
      true
  | Pexp_sequence (_, e) | Pexp_let (_, _, e) -> diverges e
  | Pexp_ifthenelse (_, t, Some e) -> diverges t && diverges e
  | Pexp_match (_, cases) ->
      cases <> [] && List.for_all (fun c -> diverges c.Parsetree.pc_rhs) cases
  | _ -> false

let rec strip_fun (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> strip_fun body
  | Pexp_newtype (_, body) -> strip_fun body
  | _ -> e

let is_fun (e : Parsetree.expression) =
  match (strip_fun e).pexp_desc with
  | Pexp_function _ -> true
  | _ -> ( match e.pexp_desc with Pexp_fun _ | Pexp_newtype _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Per-function summaries: which locks a top-level function (or
   anything it calls, transitively) may acquire.                       *)

module S = Set.Make (String)

type summary = { mutable acquires : S.t; calls : (string list * string list) list }
(* calls: (caller module path, callee dotted path) — the module path is
   needed to resolve bare or partially qualified callee names. *)

let summaries : (string, summary) Hashtbl.t = Hashtbl.create 64

(* Resolve a callee path against the summary table: try it qualified
   under every prefix of the caller's module path, longest first, then
   as written.  [Socket.recv] inside module Transport resolves to
   "Transport.Socket.recv"; [Supervisor.tick] anywhere resolves to
   itself. *)
let resolve_call modpath callee =
  let rec prefixes = function
    | [] -> [ [] ]
    | _ :: _ as p -> p :: prefixes (List.rev (List.tl (List.rev p)))
  in
  List.find_map
    (fun pre ->
      let key = path_str (pre @ callee) in
      if Hashtbl.mem summaries key then Some key else None)
    (prefixes modpath)

let summary_acquires modpath callee =
  match resolve_call modpath callee with
  | Some key -> Some (key, (Hashtbl.find summaries key).acquires)
  | None -> None

(* ------------------------------------------------------------------ *)
(* The flow-sensitive walker.                                          *)

type ctx = {
  file : string;  (** repo-relative path, for findings *)
  modpath : string list;
  locals : (string * (Parsetree.expression * bool)) list;
      (** let-bound local functions in scope (body, is-recursive) *)
  findings : Passes.finding list ref;
  edges : edge list ref;
}

type env = {
  held : string list;  (** innermost-first lock stack *)
  in_loop : bool;
  inlining : string list;  (** local functions currently being inlined *)
}

let err ctx line message =
  ctx.findings :=
    {
      Passes.pass = "locks";
      plan = Printf.sprintf "%s:%d" ctx.file line;
      severity = Passes.Error;
      message;
    }
    :: !(ctx.findings)

let add_edge ctx line ?via from_lock to_lock =
  if
    not
      (List.exists
         (fun e -> e.from_lock = from_lock && e.to_lock = to_lock)
         !(ctx.edges))
  then
    ctx.edges :=
      { from_lock; to_lock; file = ctx.file; line; via } :: !(ctx.edges)

let join entry results =
  let live = List.filter (fun (_, d) -> not d) results in
  match live with
  | [] -> entry
  | (e0, _) :: rest ->
      {
        entry with
        held =
          List.filter
            (fun l -> List.for_all (fun (e, _) -> List.mem l e.held) rest)
            e0.held;
      }

let rec walk ctx env (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply (fn, args) -> walk_apply ctx env e fn args
  | Pexp_sequence (a, b) ->
      let env = walk ctx env a in
      walk ctx env b
  | Pexp_let (rf, vbs, body) ->
      let is_rec = rf = Asttypes.Recursive in
      let locals =
        List.fold_left
          (fun acc (vb : Parsetree.value_binding) ->
            match (vb.pvb_pat.ppat_desc, is_fun vb.pvb_expr) with
            | Ppat_var { txt; _ }, true -> (txt, (vb.pvb_expr, is_rec)) :: acc
            | _ -> acc)
          ctx.locals vbs
      in
      (* Non-function bindings execute now; function bodies are
         analyzed when (and if) the local is called. *)
      let env =
        List.fold_left
          (fun env (vb : Parsetree.value_binding) ->
            if is_fun vb.pvb_expr then env else walk ctx env vb.pvb_expr)
          env vbs
      in
      walk { ctx with locals } env body
  | Pexp_ifthenelse (c, t, eo) ->
      let env = walk ctx env c in
      let rt = walk ctx env t in
      let results =
        (rt, diverges t)
        ::
        (match eo with
        | Some el -> [ (walk ctx env el, diverges el) ]
        | None -> [ (env, false) ])
      in
      join env results
  | Pexp_match (scr, cases) ->
      let env = walk ctx env scr in
      walk_cases ctx env cases
  | Pexp_try (body, cases) ->
      let envb = walk ctx env body in
      let envc = walk_cases ctx env cases in
      join env [ (envb, diverges body); (envc, false) ]
  | Pexp_while (c, b) ->
      let env' = walk ctx env c in
      ignore (walk ctx { env' with in_loop = true } b);
      env'
  | Pexp_for (_, lo, hi, _, b) ->
      let env' = walk ctx (walk ctx env lo) hi in
      ignore (walk ctx { env' with in_loop = true } b);
      env'
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) ->
      (* A lambda literal: its body runs with the lock state at the
         point it appears (the callback / thunk idiom); defining it
         changes nothing for the definer. *)
      ignore (walk ctx env body);
      env
  | Pexp_function cases ->
      ignore (walk_cases ctx env cases);
      env
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> walk ctx env e
  | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> walk ctx env e
  | Pexp_tuple es | Pexp_array es -> List.fold_left (walk ctx) env es
  | Pexp_record (fields, base) ->
      let env =
        match base with Some b -> walk ctx env b | None -> env
      in
      List.fold_left (fun env (_, e) -> walk ctx env e) env fields
  | Pexp_field (e, _) -> walk ctx env e
  | Pexp_setfield (a, _, b) -> walk ctx (walk ctx env a) b
  | Pexp_assert e | Pexp_lazy e ->
      ignore (walk ctx env e);
      env
  | Pexp_open (_, e) | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e) ->
      walk ctx env e
  | _ -> env

and walk_cases ctx env cases =
  let results =
    List.map
      (fun (c : Parsetree.case) ->
        (match c.pc_guard with Some g -> ignore (walk ctx env g) | None -> ());
        (walk ctx env c.pc_rhs, diverges c.pc_rhs))
      cases
  in
  join env results

and walk_apply ctx env e fn args =
  let line = line_of e in
  match fn_path fn with
  | Some [ "Mutex"; "lock" ] -> (
      match args with
      | (_, arg) :: _ ->
          let l = lock_name ctx.modpath arg in
          (match env.held with
          | outer :: _ when outer = l ->
              err ctx line
                (Printf.sprintf "relock of %s while already held" l)
          | outer :: _ -> add_edge ctx line outer l
          | [] -> ());
          { env with held = l :: env.held }
      | [] -> env)
  | Some [ "Mutex"; "unlock" ] -> (
      match args with
      | (_, arg) :: _ ->
          let l = lock_name ctx.modpath arg in
          { env with held = List.filter (fun h -> h <> l) env.held }
      | [] -> env)
  | Some [ "Condition"; "wait" ] ->
      (match args with
      | [ (_, _cond); (_, m) ] ->
          let l = lock_name ctx.modpath m in
          if not (List.mem l env.held) then
            err ctx line
              (Printf.sprintf
                 "Condition.wait on %s without that mutex held" l)
          else if List.exists (fun h -> h <> l) env.held then
            err ctx line
              (Printf.sprintf
                 "Condition.wait on %s while also holding %s: the wait \
                  releases only its own mutex"
                 l
                 (String.concat ", "
                    (List.filter (fun h -> h <> l) env.held)));
          if not env.in_loop then
            err ctx line
              (Printf.sprintf
                 "Condition.wait on %s outside a wait-loop: spurious \
                  wakeups require re-checking the predicate in a loop"
                 l)
      | _ -> ());
      env
  | Some [ "Fun"; "protect" ] ->
      (* Body thunk first, then ~finally, threading the lock state —
         the runtime's lock/protect/unlock idiom. *)
      let body =
        List.find_map
          (function Asttypes.Nolabel, a -> Some a | _ -> None)
          args
      in
      let fin =
        List.find_map
          (function Asttypes.Labelled "finally", a -> Some a | _ -> None)
          args
      in
      let env =
        match body with
        | Some b -> walk ctx env (strip_fun b)
        | None -> env
      in
      let env =
        match fin with
        | Some f -> walk ctx env (strip_fun f)
        | None -> env
      in
      env
  | Some path -> (
      (* Arguments evaluate (and lambda arguments are read) with the
         current lock state. *)
      let env = List.fold_left (fun env (_, a) -> walk ctx env a) env args in
      match path with
      | [ name ] when List.mem_assoc name ctx.locals ->
          if List.mem name env.inlining then env
          else
            let body, is_rec = List.assoc name ctx.locals in
            let env' =
              walk ctx
                {
                  env with
                  inlining = name :: env.inlining;
                  in_loop = env.in_loop || is_rec;
                }
                (strip_fun body)
            in
            { env' with inlining = env.inlining; in_loop = env.in_loop }
      | _ ->
          let dotted = path_str path in
          if env.held <> [] && List.mem dotted blocking_calls then
            err ctx line
              (Printf.sprintf "blocking call %s while holding %s" dotted
                 (String.concat ", " env.held))
          else if env.held <> [] then begin
            match summary_acquires ctx.modpath path with
            | Some (key, acq) ->
                S.iter
                  (fun l ->
                    if not (List.mem l env.held) then
                      add_edge ctx line ~via:key (List.hd env.held) l)
                  acq
            | None -> ()
          end;
          env)
  | None ->
      let env = walk ctx env fn in
      List.fold_left (fun env (_, a) -> walk ctx env a) env args

(* ------------------------------------------------------------------ *)
(* Summary collection (pass A).                                        *)

let collect_summaries ~file:_ modpath (vb : Parsetree.value_binding) =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt = name; _ } ->
      let acquires = ref S.empty and calls = ref [] in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_apply (fn, args) -> (
                  match fn_path fn with
                  | Some [ "Mutex"; "lock" ] -> (
                      match args with
                      | (_, a) :: _ ->
                          acquires :=
                            S.add (lock_name modpath a) !acquires
                      | [] -> ())
                  | Some p -> calls := (modpath, p) :: !calls
                  | None -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      it.expr it vb.pvb_expr;
      Hashtbl.replace summaries
        (path_str (modpath @ [ name ]))
        { acquires = !acquires; calls = !calls }
  | _ -> ()

(* Close acquisition sets over the call graph: a function that calls
   (however deeply) something that locks L "may acquire L". *)
let close_summaries () =
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ s ->
        List.iter
          (fun (modpath, callee) ->
            match summary_acquires modpath callee with
            | Some (_, acq) ->
                let merged = S.union s.acquires acq in
                if not (S.equal merged s.acquires) then begin
                  s.acquires <- merged;
                  changed := true
                end
            | None -> ())
          s.calls)
      summaries
  done

(* ------------------------------------------------------------------ *)
(* Structure traversal shared by both passes.                          *)

let rec iter_structure f modpath (items : Parsetree.structure) =
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (rf, vbs) -> List.iter (f modpath rf) vbs
      | Pstr_module mb -> iter_module_binding f modpath mb
      | Pstr_recmodule mbs -> List.iter (iter_module_binding f modpath) mbs
      | _ -> ())
    items

and iter_module_binding f modpath (mb : Parsetree.module_binding) =
  let name = match mb.pmb_name.txt with Some n -> [ n ] | None -> [] in
  iter_module_expr f (modpath @ name) mb.pmb_expr

and iter_module_expr f modpath (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_structure items -> iter_structure f modpath items
  | Pmod_constraint (me, _) -> iter_module_expr f modpath me
  | Pmod_functor (_, me) -> iter_module_expr f modpath me
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* File plumbing.                                                      *)

let module_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  let lb = Lexing.from_string (read_file path) in
  Lexing.set_filename lb path;
  Parse.implementation lb

let source_files root =
  List.concat_map
    (fun dir ->
      let abs = Filename.concat root dir in
      if Sys.file_exists abs && Sys.is_directory abs then
        Sys.readdir abs |> Array.to_list |> List.sort compare
        |> List.filter (fun f -> Filename.check_suffix f ".ml")
        |> List.map (fun f -> (dir ^ "/" ^ f, Filename.concat abs f))
      else [])
    scan_roots

(* ------------------------------------------------------------------ *)
(* Ratchet: raw lock/atomic introductions per file.                    *)

let count_creations ast =
  let n = ref 0 in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match path_str (flat txt) with
              | "Mutex.create" | "Atomic.make" -> incr n
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it ast;
  !n

let ratchet_findings parsed =
  List.filter_map
    (fun (rel, _abs, ast) ->
      let n = count_creations ast in
      let allowed =
        match List.assoc_opt rel whitelist with Some a -> a | None -> 0
      in
      if n > allowed then
        Some
          {
            Passes.pass = "lock-ratchet";
            plan = rel;
            severity = Passes.Error;
            message =
              Printf.sprintf
                "%d Mutex.create/Atomic.make site(s), %d audited: review \
                 the new primitive's discipline and raise the allowance in \
                 Lockcheck.whitelist"
                n allowed;
          }
      else if n < allowed then
        Some
          {
            Passes.pass = "lock-ratchet";
            plan = rel;
            severity = Passes.Info;
            message =
              Printf.sprintf
                "%d site(s) under the audited %d: lower the allowance" n
                allowed;
          }
      else None)
    parsed

(* ------------------------------------------------------------------ *)
(* Cycle detection over the lock graph.                                *)

let find_cycles edges =
  let adj = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace adj e.from_lock
        (e :: (Option.value ~default:[] (Hashtbl.find_opt adj e.from_lock))))
    edges;
  let nodes =
    List.sort_uniq compare
      (List.concat_map (fun e -> [ e.from_lock; e.to_lock ]) edges)
  in
  let cycles = ref [] in
  let color = Hashtbl.create 16 in
  (* 0 = white, 1 = on stack, 2 = done *)
  let rec dfs path n =
    match Hashtbl.find_opt color n with
    | Some 1 ->
        (* back edge: the suffix of [path] from [n] is a cycle *)
        let rec suffix = function
          | [] -> []
          | e :: rest ->
              if e.from_lock = n then [ e ] else e :: suffix rest
        in
        cycles := List.rev (suffix path) :: !cycles
    | Some 2 -> ()
    | _ ->
        Hashtbl.replace color n 1;
        List.iter
          (fun e -> dfs (e :: path) e.to_lock)
          (Option.value ~default:[] (Hashtbl.find_opt adj n));
        Hashtbl.replace color n 2
  in
  List.iter (fun n -> if not (Hashtbl.mem color n) then dfs [] n) nodes;
  !cycles

let cycle_findings edges =
  List.map
    (fun cycle ->
      let path =
        String.concat " -> "
          (List.map (fun e -> e.from_lock) cycle
          @ [ (List.hd cycle).from_lock ])
      in
      let sites =
        String.concat ", "
          (List.map
             (fun (e : edge) -> Printf.sprintf "%s:%d" e.file e.line)
             cycle)
      in
      {
        Passes.pass = "locks";
        plan = (List.hd cycle).file;
        severity = Passes.Error;
        message =
          Printf.sprintf "lock-order inversion: %s (acquisitions at %s)" path
            sites;
      })
    (find_cycles edges)

(* ------------------------------------------------------------------ *)
(* DOT export for the CI artifact.                                     *)

let dot_of_edges edges =
  let b = Buffer.create 256 in
  Buffer.add_string b "digraph lock_order {\n";
  Buffer.add_string b "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  let nodes =
    List.sort_uniq compare
      (List.concat_map (fun e -> [ e.from_lock; e.to_lock ]) edges)
  in
  List.iter (fun n -> Buffer.add_string b (Printf.sprintf "  %S;\n" n)) nodes;
  List.iter
    (fun e ->
      let label =
        match e.via with
        | Some v -> Printf.sprintf "%s:%d (via %s)" e.file e.line v
        | None -> Printf.sprintf "%s:%d" e.file e.line
      in
      Buffer.add_string b
        (Printf.sprintf "  %S -> %S [label=%S];\n" e.from_lock e.to_lock label))
    (List.rev edges);
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)

let run ?(root = ".") () =
  Hashtbl.reset summaries;
  let findings = ref [] and edges = ref [] in
  let parsed =
    List.filter_map
      (fun (rel, abs) ->
        match parse_file abs with
        | ast -> Some (rel, abs, ast)
        | exception e ->
            findings :=
              {
                Passes.pass = "locks";
                plan = rel;
                severity = Passes.Warning;
                message = "parse failed: " ^ Printexc.to_string e;
              }
              :: !findings;
            None)
      (source_files root)
  in
  (* Pass A: summaries for every top-level binding, then transitive
     closure of acquisition sets over the call graph. *)
  List.iter
    (fun (rel, _abs, ast) ->
      iter_structure
        (fun modpath _rf vb -> collect_summaries ~file:rel modpath vb)
        [ module_of_file rel ] ast)
    parsed;
  close_summaries ();
  (* Pass B: the flow walk. *)
  List.iter
    (fun (rel, _abs, ast) ->
      iter_structure
        (fun modpath rf (vb : Parsetree.value_binding) ->
          let ctx = { file = rel; modpath; locals = []; findings; edges } in
          let env =
            {
              held = [];
              in_loop = rf = Asttypes.Recursive;
              inlining = [];
            }
          in
          ignore (walk ctx env (strip_fun vb.pvb_expr)))
        [ module_of_file rel ] ast)
    parsed;
  let findings =
    List.rev !findings @ cycle_findings !edges @ ratchet_findings parsed
  in
  (findings, List.rev !edges)
