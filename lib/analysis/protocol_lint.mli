(** Wire-protocol conformance lint: audits the reified
    {!Triolet_runtime.Protocol.spec} for completeness (every sendable
    frame kind handled in every receiving state, declared [Goto]
    targets, determinism) and cross-checks the kinds the runtime
    sources actually send against the spec.  Part of the
    [triolet analyze] lint gate. *)

val check_spec :
  ?name:string -> Triolet_runtime.Protocol.spec -> Passes.finding list
(** [Protocol.check] issues for an arbitrary spec as [Error] findings
    under pass ["protocol"] — used by tests to prove a seeded
    unhandled-frame-kind is caught. *)

val run : ?root:string -> unit -> Passes.finding list
(** Audit the live spec, then scan {!Lockcheck.scan_roots} under
    [root] (default ["."]) for [~kind:K] frame sends whose kind no
    role may send per the spec. *)
