(** Concurrency lint over the runtime's Mutex discipline: a
    flow-sensitive walk of the [compiler-libs] parsetree of
    [lib/runtime/] and [lib/core/] that builds the lock-acquisition
    graph (flagging lock-order inversions as cycles), flags blocking
    calls made while a lock is held, checks [Condition.wait] for the
    held-mutex / wait-loop / no-other-lock shape, and ratchets raw
    [Mutex.create]/[Atomic.make] introductions against a per-file
    audited allowance.  Part of the [triolet analyze] lint gate. *)

type edge = {
  from_lock : string;  (** held when… *)
  to_lock : string;  (** …this one was acquired *)
  file : string;  (** repo-relative acquisition site *)
  line : int;
  via : string option;
      (** callee whose transitive summary supplied the edge, if the
          acquisition is not syntactically at [file:line] *)
}

val whitelist : (string * int) list
(** Audited (file, allowed [Mutex.create] + [Atomic.make] count)
    pairs, paths relative to the repo root.  Grow an allowance only
    alongside a review of the new primitive's discipline. *)

val scan_roots : string list
(** Directories scanned, relative to the root ([lib/runtime],
    [lib/core]). *)

val run : ?root:string -> unit -> Passes.finding list * edge list
(** Parse and analyze every [.ml] under {!scan_roots} below [root]
    (default ["."]).  Returns the findings — pass ["locks"] for
    order/blocking/wait-shape problems ([Error]), pass ["lock-ratchet"]
    for allowance drift ([Error] over, [Info] under) — together with
    the full lock-acquisition edge list for reporting or DOT export.
    A file that fails to parse is a [Warning], not a crash. *)

val dot_of_edges : edge list -> string
(** Graphviz rendering of the lock-acquisition graph, edges labeled
    with their acquisition site (and summary callee when indirect). *)
