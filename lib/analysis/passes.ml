(** Verification passes over reified plans.

    Each pass audits one property a correct plan must have and emits
    findings.  [Error] findings make [triolet analyze] (and the CI lint
    gate) fail; [Warning]s flag performance hazards; [Info]s record
    facts worth seeing in the report but expected on a clean tree. *)

type severity = Info | Warning | Error

type finding = {
  pass : string;
  plan : string;  (** plan name the finding is about *)
  severity : severity;
  message : string;
}

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let to_string f =
  Printf.sprintf "%-7s %-14s %-10s %s"
    (severity_to_string f.severity)
    f.pass f.plan f.message

let has_errors findings = List.exists (fun f -> f.severity = Error) findings

(* ------------------------------------------------------------------ *)
(* Coverage: static partitions must tile the index space exactly once. *)

let coverage (p : Plan.t) : finding list =
  let mk v =
    {
      pass = "coverage";
      plan = p.Plan.name;
      severity = Error;
      message = Coverage.violation_to_string v;
    }
  in
  match (p.Plan.partition, p.Plan.space) with
  | Plan.Static_blocks blocks, Plan.Space_1d n ->
      List.map mk (Coverage.check_blocks ~n blocks)
  | Plan.Static_grid { blocks; _ }, Plan.Space_2d { rows; cols } ->
      List.map mk (Coverage.check_grid ~rows ~cols blocks)
  | Plan.Static_blocks _, Plan.Space_2d _
  | Plan.Static_grid _, Plan.Space_1d _ ->
      [
        {
          pass = "coverage";
          plan = p.Plan.name;
          severity = Error;
          message = "partition dimensionality does not match the space";
        };
      ]
  | (Plan.Whole | Plan.Dynamic_ranges _), _ ->
      (* Dynamic ranges are carved by the scheduler at run time; the
         scheduler's own tests cover them. *)
      []

(* ------------------------------------------------------------------ *)
(* Fusion: a parallel pipeline whose outer loop nest starts with a
   stepper has lost random access, so it cannot be partitioned — the
   paper's motivating diagnostic (sections 3.2 and 3.4). *)

let fusion (p : Plan.t) : finding list =
  let mk severity message =
    [ { pass = "fusion"; plan = p.Plan.name; severity; message } ]
  in
  match p.Plan.shape with
  | None -> []
  | Some shape -> (
      let rendered = Triolet.Seq_iter.shape_to_string shape in
      match shape with
      | Triolet.Seq_iter.Shape_step_flat | Triolet.Seq_iter.Shape_step_nest _
        when p.Plan.hint <> Triolet.Iter.Sequential ->
          mk Warning
            (Printf.sprintf
               "outer loop is a stepper (%s): random access lost, tasks \
                cannot be partitioned — zip of a non-flat operand, append, \
                or a sequential source upstream"
               rendered)
      | Triolet.Seq_iter.Shape_step_flat | Triolet.Seq_iter.Shape_step_nest _
        ->
          []
      | Triolet.Seq_iter.Shape_idx_nest _ ->
          mk Info
            (Printf.sprintf
               "nested shape %s: inner irregularity isolated, outer loop \
                stays partitionable"
               rendered)
      | Triolet.Seq_iter.Shape_idx_flat _ -> [])

(* ------------------------------------------------------------------ *)
(* Serialization: distributed tasks must be able to extract their
   payload, pointer-free payloads ship as block copies, and no payload
   may alias the sender's memory — an aliased payload only "decodes"
   in-process because the receiver was handed the sender's pointer; over
   a real transport (the process backend) it is a silent correctness
   bug, so it is a hard error here. *)

let slice_to_string = function
  | Plan.Slice_1d { off; len } -> Printf.sprintf "slice [%d, %d)" off (off + len)
  | Plan.Slice_2d { r0; nr; c0; nc } ->
      Printf.sprintf "block (r %d+%d, c %d+%d)" r0 nr c0 nc

let serialization (p : Plan.t) : finding list =
  let findings = ref [] in
  let add severity message =
    findings :=
      { pass = "serialization"; plan = p.Plan.name; severity; message }
      :: !findings
  in
  let raw_bytes = ref 0 and raw_tasks = ref 0 in
  List.iter
    (fun (t : Plan.task) ->
      let where = slice_to_string t.Plan.slice in
      (match t.Plan.payload with
      | None | Some (Ok []) -> ()
      | Some (Error msg) ->
          add Error
            (Printf.sprintf
               "payload extraction failed for %s: %s — a boxed source \
                needs a codec to run distributed"
               where msg)
      | Some (Ok bufs) ->
          if
            List.exists
              (function Plan.Raw_buf _ -> true | _ -> false)
              bufs
          then begin
            incr raw_tasks;
            List.iter
              (function
                | Plan.Raw_buf n -> raw_bytes := !raw_bytes + n | _ -> ())
              bufs
          end);
      if t.Plan.aliased then
        add Error
          (Printf.sprintf
             "payload for %s aliases sender memory: the extractor returns \
              the source buffer instead of a copy, so it only decodes \
              in-process — over a real transport (--backend=process) the \
              receiver gets serialized bytes and the sharing assumption \
              breaks"
             where))
    p.Plan.tasks;
  if !raw_tasks > 0 then
    add Info
      (Printf.sprintf
         "%d task payload(s) carry element-encoded (Raw) buffers, %d \
          bytes total: serializable but not block-copyable"
         !raw_tasks !raw_bytes);
  List.rev !findings

(* ------------------------------------------------------------------ *)
(* Grain advisory: a grain-size override large enough to starve the
   pool defeats the lazy-splitting scheduler.  Auto grains never warn
   (Partition.grain already accounts for pool width). *)

let grain_advisory (p : Plan.t) : finding list =
  match p.Plan.partition with
  | Plan.Dynamic_ranges { grain; overridden = true }
    when grain > 0
         && Plan.space_size p.Plan.space >= p.Plan.workers
         && Plan.space_size p.Plan.space / grain < p.Plan.workers ->
      [
        {
          pass = "grain";
          plan = p.Plan.name;
          severity = Warning;
          message =
            Printf.sprintf
              "grain override %d yields %d chunk(s) for %d workers over \
               %d iterations: some workers will starve"
              grain
              (Plan.space_size p.Plan.space / grain)
              p.Plan.workers
              (Plan.space_size p.Plan.space);
        };
      ]
  | _ -> []

(* ------------------------------------------------------------------ *)

let all_passes = [ coverage; fusion; serialization; grain_advisory ]

let run_plan (p : Plan.t) : finding list =
  List.concat_map (fun pass -> pass p) all_passes

let run_all (plans : Plan.t list) : finding list =
  List.concat_map run_plan plans
