(** Structured tracing and metrics.

    The evaluation attributes distributed performance to where wall
    time goes — serialization, shipping, node compute, receive/retry,
    merge — so the runtime wraps those phases in *spans*: named
    intervals with monotonic start/stop timestamps.  Spans record into
    per-domain ring buffers (single writer each, no locks on the hot
    path) and per-domain aggregate tables (count/total/max per name),
    flushed on demand into a Chrome [trace_event]-format JSON file and
    a flat per-phase table the bench harness embeds in its
    [BENCH_*.json] outputs.

    Disabled (the default) a {!span} costs one atomic load and a
    branch, so instrumentation can stay in hot paths permanently.
    Enabled, a span costs two monotonic clock reads and one ring slot.
    When a ring fills, the *oldest* events are overwritten and counted
    in {!dropped_spans} — tracing never crashes and never blocks the
    traced code.

    Timestamps come from [CLOCK_MONOTONIC] ({!monotonic_ns}), which is
    immune to NTP steps and wall-clock adjustments; durations are
    therefore always non-negative.  The runtime's timeout and recovery
    paths use the same clock (see [Triolet_runtime.Clock]). *)

external monotonic_ns : unit -> int = "triolet_obs_monotonic_ns" [@@noalloc]

type event = {
  ev_name : string;
  ev_tid : int;  (** numeric id of the recording domain *)
  ev_start_ns : int;  (** monotonic *)
  ev_dur_ns : int;  (** 0-duration events are instants *)
  ev_depth : int;  (** span nesting depth within the domain *)
  ev_attrs : (string * string) list;
}

type agg = {
  agg_count : int;
  agg_total_ns : int;
  agg_max_ns : int;
}

(* Mutable per-name cell of a per-domain aggregate table. *)
type acc = {
  mutable c_count : int;
  mutable c_total_ns : int;
  mutable c_max_ns : int;
}

(* One recording context per (domain, generation).  Only the owning
   domain writes; readers ([events]/[aggregates]/[write_trace]) observe
   plain fields racily, which is benign for the monitoring use: flush
   when the traced region is quiescent for exact numbers. *)
type ring = {
  tid : int;
  gen : int;
  buf : event option array;
  mutable head : int;  (** total events ever pushed; next slot is [head mod cap] *)
  mutable depth : int;
  aggs : (string, acc) Hashtbl.t;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

let default_capacity = 65_536
let capacity = Atomic.make default_capacity

let set_ring_capacity n =
  if n <= 0 then invalid_arg "Obs.set_ring_capacity";
  Atomic.set capacity n

(* Registry of every live ring, so the flusher can reach rings owned by
   pool worker domains.  [generation] invalidates rings across a
   {!reset}: a domain whose cached ring predates the reset lazily
   re-registers a fresh one on its next record. *)
let registry : ring list ref = ref []
let registry_lock = Mutex.create ()
let generation = Atomic.make 0

let ring_key : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let fresh_ring () =
  {
    tid = (Domain.self () :> int);
    gen = Atomic.get generation;
    buf = Array.make (Atomic.get capacity) None;
    head = 0;
    depth = 0;
    aggs = Hashtbl.create 32;
  }

let get_ring () =
  let slot = Domain.DLS.get ring_key in
  match !slot with
  | Some r when r.gen = Atomic.get generation -> r
  | _ ->
      let r = fresh_ring () in
      Mutex.lock registry_lock;
      registry := r :: !registry;
      Mutex.unlock registry_lock;
      slot := Some r;
      r

let reset () =
  Atomic.incr generation;
  Mutex.lock registry_lock;
  registry := [];
  Mutex.unlock registry_lock

let push r ev =
  let cap = Array.length r.buf in
  r.buf.(r.head mod cap) <- Some ev;
  r.head <- r.head + 1

let bump_agg r name dur =
  match Hashtbl.find_opt r.aggs name with
  | Some c ->
      c.c_count <- c.c_count + 1;
      c.c_total_ns <- c.c_total_ns + dur;
      if dur > c.c_max_ns then c.c_max_ns <- dur
  | None ->
      Hashtbl.add r.aggs name { c_count = 1; c_total_ns = dur; c_max_ns = dur }

let span ~name ?(attrs = []) f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let r = get_ring () in
    let depth = r.depth in
    r.depth <- depth + 1;
    let t0 = monotonic_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = monotonic_ns () - t0 in
        r.depth <- depth;
        push r
          {
            ev_name = name;
            ev_tid = r.tid;
            ev_start_ns = t0;
            ev_dur_ns = dur;
            ev_depth = depth;
            ev_attrs = attrs;
          };
        bump_agg r name dur)
      f
  end

let instant ~name ?(attrs = []) () =
  if Atomic.get enabled_flag then begin
    let r = get_ring () in
    push r
      {
        ev_name = name;
        ev_tid = r.tid;
        ev_start_ns = monotonic_ns ();
        ev_dur_ns = 0;
        ev_depth = r.depth;
        ev_attrs = attrs;
      };
    bump_agg r name 0
  end

(* ------------------------------------------------------------------ *)
(* Flushing *)

let rings () =
  Mutex.lock registry_lock;
  let rs = !registry in
  Mutex.unlock registry_lock;
  rs

let ring_events r =
  let cap = Array.length r.buf in
  let head = r.head in
  let n = min head cap in
  let first = head - n in
  List.filter_map
    (fun i -> r.buf.((first + i) mod cap))
    (List.init n Fun.id)

let events () =
  List.concat_map ring_events (rings ())
  |> List.sort (fun a b -> compare a.ev_start_ns b.ev_start_ns)

let dropped_spans () =
  List.fold_left
    (fun acc r -> acc + max 0 (r.head - Array.length r.buf))
    0 (rings ())

let aggregates () =
  let merged : (string, acc) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun r ->
      Hashtbl.iter
        (fun name c ->
          match Hashtbl.find_opt merged name with
          | Some m ->
              m.c_count <- m.c_count + c.c_count;
              m.c_total_ns <- m.c_total_ns + c.c_total_ns;
              if c.c_max_ns > m.c_max_ns then m.c_max_ns <- c.c_max_ns
          | None ->
              Hashtbl.add merged name
                {
                  c_count = c.c_count;
                  c_total_ns = c.c_total_ns;
                  c_max_ns = c.c_max_ns;
                })
        r.aggs)
    (rings ());
  Hashtbl.fold
    (fun name c acc ->
      ( name,
        {
          agg_count = c.c_count;
          agg_total_ns = c.c_total_ns;
          agg_max_ns = c.c_max_ns;
        } )
      :: acc)
    merged []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let agg_total name =
  match List.assoc_opt name (aggregates ()) with
  | Some a -> a.agg_total_ns
  | None -> 0

let pp_aggregates fmt aggs =
  Format.fprintf fmt "%-28s %10s %14s %14s@\n" "phase" "count" "total(ms)"
    "max(ms)";
  List.iter
    (fun (name, a) ->
      Format.fprintf fmt "%-28s %10d %14.3f %14.3f@\n" name a.agg_count
        (float_of_int a.agg_total_ns /. 1e6)
        (float_of_int a.agg_max_ns /. 1e6))
    aggs

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export *)

let trace_json () =
  let evs = events () in
  let event_json e =
    let base =
      [
        ("name", Json.Str e.ev_name);
        ("cat", Json.Str "triolet");
        ("ph", Json.Str (if e.ev_dur_ns = 0 then "i" else "X"));
        ("ts", Json.Num (float_of_int e.ev_start_ns /. 1e3));
        ("pid", Json.Num 1.0);
        ("tid", Json.Num (float_of_int e.ev_tid));
      ]
    in
    let dur =
      if e.ev_dur_ns = 0 then [ ("s", Json.Str "t") ]
      else [ ("dur", Json.Num (float_of_int e.ev_dur_ns /. 1e3)) ]
    in
    let args =
      let attrs =
        ("depth", Json.Num (float_of_int e.ev_depth))
        :: List.map (fun (k, v) -> (k, Json.Str v)) e.ev_attrs
      in
      [ ("args", Json.Obj attrs) ]
    in
    Json.Obj (base @ dur @ args)
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (List.map event_json evs));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj [ ("dropped_spans", Json.Num (float_of_int (dropped_spans ()))) ]);
    ]

let write_trace path = Json.to_file path (trace_json ())

let aggregates_json () =
  Json.Arr
    (List.map
       (fun (name, a) ->
         Json.Obj
           [
             ("name", Json.Str name);
             ("count", Json.Num (float_of_int a.agg_count));
             ("total_ns", Json.Num (float_of_int a.agg_total_ns));
             ("max_ns", Json.Num (float_of_int a.agg_max_ns));
           ])
       (aggregates ()))
