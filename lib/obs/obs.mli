(** Low-overhead structured tracing + metrics.

    {!span} wraps a phase of execution in a named interval with
    monotonic timestamps, recorded into per-domain ring buffers and
    per-phase aggregates.  Tracing is globally disabled by default: a
    disabled span costs one atomic load and a branch, so call sites
    stay in hot paths permanently.  See DESIGN.md, "Observability". *)

external monotonic_ns : unit -> int = "triolet_obs_monotonic_ns" [@@noalloc]
(** [CLOCK_MONOTONIC] in nanoseconds: never steps with NTP or
    wall-clock changes, so differences are always non-negative.  All
    span timestamps and runtime deadline arithmetic use this clock. *)

type event = {
  ev_name : string;
  ev_tid : int;  (** numeric id of the recording domain *)
  ev_start_ns : int;  (** monotonic *)
  ev_dur_ns : int;  (** 0 for instants *)
  ev_depth : int;  (** nesting depth within the recording domain *)
  ev_attrs : (string * string) list;
}

type agg = {
  agg_count : int;
  agg_total_ns : int;
  agg_max_ns : int;
}

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val set_ring_capacity : int -> unit
(** Capacity (events) of rings created after this call; existing rings
    keep theirs until the next {!reset}.  Default 65536. *)

val reset : unit -> unit
(** Discard all recorded events, aggregates and drop counts.  Call
    between runs while the traced region is quiescent. *)

val span : name:string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
(** [span ~name f] runs [f], recording a completed interval around it
    (exception-safe: the interval closes even if [f] raises).  No-op
    beyond one atomic load when tracing is disabled. *)

val instant : name:string -> ?attrs:(string * string) list -> unit -> unit
(** Zero-duration marker event (steals, splits, retries). *)

val events : unit -> event list
(** Every retained event across all domains, oldest first.  Rings drop
    their oldest events on overflow — see {!dropped_spans}. *)

val dropped_spans : unit -> int
(** Events overwritten by ring wraparound since the last {!reset}. *)

val aggregates : unit -> (string * agg) list
(** Per-phase totals (sorted by name), merged across domains.  Unlike
    {!events} these are complete: wraparound never loses aggregate
    counts. *)

val agg_total : string -> int
(** Total nanoseconds recorded under one phase name; 0 if absent. *)

val pp_aggregates : Format.formatter -> (string * agg) list -> unit

val trace_json : unit -> Json.t
(** The retained events as a Chrome [trace_event] document
    ([chrome://tracing] / Perfetto loadable): complete "X" events with
    microsecond timestamps, one [tid] per domain. *)

val write_trace : string -> unit

val aggregates_json : unit -> Json.t
(** The per-phase table as a JSON array of
    [{name, count, total_ns, max_ns}] rows. *)
