/* Monotonic clock for span timestamps.
 *
 * CLOCK_MONOTONIC never steps backwards or jumps with NTP/wall-clock
 * adjustments, so span durations and deadline arithmetic computed from
 * it are always non-negative — the property the tracing layer and the
 * runtime's timeout paths rely on (Unix.gettimeofday has neither). */

#include <time.h>
#include <caml/mlvalues.h>

CAMLprim value triolet_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
