(** Minimal JSON value type, printer and parser for the observability
    layer: trace files, [BENCH_*.json] outputs, and the
    [bench --compare] reader.  No external JSON library exists in the
    sealed toolchain, so this is self-contained. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string}/{!of_file} with a message and offset. *)

val to_string : t -> string
(** Compact rendering (no insignificant whitespace).  Non-finite
    numbers render as [null]. *)

val to_file : string -> t -> unit
(** {!to_string} plus a trailing newline, written atomically enough for
    our purposes (single [output_string]). *)

val of_string : string -> t
(** Parse a complete JSON document; trailing non-whitespace is a
    {!Parse_error}. *)

val of_file : string -> t

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)

val to_list : t -> t list
(** Elements of an [Arr]; [[]] on non-arrays. *)

val to_float_opt : t -> float option
val to_string_opt : t -> string option
