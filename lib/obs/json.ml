(** Minimal JSON: the subset the observability layer needs.

    The bench harness and the trace writer emit JSON files, and the
    [bench --compare] subcommand plus the trace round-trip tests read
    them back.  The sealed toolchain carries no JSON library, so this
    module implements a small recursive-descent parser and a printer
    for the standard value type.  It accepts all of RFC 8259 except
    that [\uXXXX] escapes outside the Basic Multilingual Plane
    (surrogate pairs) are decoded pairwise only when well-formed;
    a lone surrogate is a parse error. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* JSON has no NaN/Infinity; a non-finite measurement serializes as
   null so the file stays parseable everywhere. *)
let string_of_num x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x -> Buffer.add_string b (string_of_num x)
  | Str s -> escape_string b s
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parsing *)

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

(* Encode a Unicode code point as UTF-8 bytes. *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail st "bad \\u escape"
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    match peek st with
    | Some c ->
        v := (!v * 16) + digit c;
        advance st
    | None -> fail st "truncated \\u escape"
  done;
  !v

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char b '"'; advance st
        | Some '\\' -> Buffer.add_char b '\\'; advance st
        | Some '/' -> Buffer.add_char b '/'; advance st
        | Some 'b' -> Buffer.add_char b '\b'; advance st
        | Some 'f' -> Buffer.add_char b '\012'; advance st
        | Some 'n' -> Buffer.add_char b '\n'; advance st
        | Some 'r' -> Buffer.add_char b '\r'; advance st
        | Some 't' -> Buffer.add_char b '\t'; advance st
        | Some 'u' ->
            advance st;
            let cp = hex4 st in
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              (* high surrogate: a low surrogate must follow *)
              expect st '\\';
              expect st 'u';
              let lo = hex4 st in
              if lo < 0xDC00 || lo > 0xDFFF then fail st "lone surrogate"
              else
                add_utf8 b
                  (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then fail st "lone surrogate"
            else add_utf8 b cp
        | _ -> fail st "bad escape");
        go ())
    | Some c ->
        Buffer.add_char b c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let consume_while p =
    let rec go () =
      match peek st with Some c when p c -> advance st; go () | _ -> ()
    in
    go ()
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  consume_while (function '0' .. '9' -> true | _ -> false);
  (match peek st with
  | Some '.' ->
      advance st;
      consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some x -> Num x
  | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        Arr (items [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing characters";
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr items -> items | _ -> []

let to_float_opt = function
  | Num x -> Some x
  | _ -> None

let to_string_opt = function
  | Str s -> Some s
  | _ -> None
