(** mri-q: non-uniform 3-D inverse Fourier transform (paper, section
    4.2).  Q(r) = sum over samples k of |phi(k)|^2 exp(2 pi i k.r). *)

type result = { qr : floatarray; qi : floatarray }

val run_c : Dataset.mriq -> result
(** The "sequential C" stand-in: plain nested loops over unboxed
    arrays; the normalization baseline of every figure. *)

val run_triolet :
  ?ctx:Triolet.Exec.t ->
  ?hint:
    ((float * float * float) Triolet.Iter.t ->
     (float * float * float) Triolet.Iter.t) ->
  Dataset.mriq ->
  result
(** The paper's two-liner: a parallel map over voxels of a sequential
    sum over samples.  [hint] defaults to [Iter.par]; [ctx] selects the
    execution context (geometry, transport backend, faults). *)

val pipeline :
  ?hint:
    ((float * float * float) Triolet.Iter.t ->
     (float * float * float) Triolet.Iter.t) ->
  Dataset.mriq ->
  (float * float) Triolet.Iter.t
(** Plan-reification hook: the fused per-voxel (real, imaginary)
    pipeline {!run_triolet} collects. *)

val run_eden : Dataset.mriq -> result
(** Eden-style boxed-list code. *)

val agrees : ?eps:float -> result -> result -> bool
