(** cutcp: cutoff Coulombic potential on a 3-D grid (paper, sections 1
    and 4.5) — the motivating floating-point histogram: a parallel loop
    over atoms, an irregular inner loop over nearby grid points, and a
    scatter-add of contributions q * (1/r - 1/c). *)

val grid_index : Dataset.cutcp -> int -> int -> int -> int
(** Linear index of grid point (ix, iy, iz). *)

val run_c : Dataset.cutcp -> floatarray
(** Nested loops and conditionals over unboxed arrays. *)

val run_triolet :
  ?ctx:Triolet.Exec.t ->
  ?hint:
    ((float * float * float * float) Triolet.Iter.t ->
     (float * float * float * float) Triolet.Iter.t) ->
  Dataset.cutcp ->
  floatarray
(** atoms |> par |> concat_map gridPts |> scatter_add — the paper's
    [floatHist [f a r | a <- atoms, r <- gridPts a]].  [hint] defaults
    to [Iter.par]. *)

val pipeline :
  ?hint:
    ((float * float * float * float) Triolet.Iter.t ->
     (float * float * float * float) Triolet.Iter.t) ->
  Dataset.cutcp ->
  (int * float) Triolet.Iter.t
(** Plan-reification hook: the fused (index, weight) pipeline
    {!run_triolet}'s scatter-add consumes. *)

val run_eden : Dataset.cutcp -> floatarray

val agrees : ?eps:float -> floatarray -> floatarray -> bool

val run_gather :
  ?hint:(float Triolet.Iter3.t -> float Triolet.Iter3.t) ->
  Dataset.cutcp ->
  floatarray
(** Gather formulation over a 3-D iterator (one sum per grid point, the
    GPU-style variant), distributed in z-slabs.  Agrees with {!run_c}
    up to floating-point rounding. *)
