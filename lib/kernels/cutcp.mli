(** cutcp: cutoff Coulombic potential on a 3-D grid (paper, sections 1
    and 4.5) — the motivating floating-point histogram: a parallel loop
    over atoms, an irregular inner loop over nearby grid points, and a
    scatter-add of contributions q * (1/r - 1/c). *)

val grid_index : Dataset.cutcp -> int -> int -> int -> int
(** Linear index of grid point (ix, iy, iz). *)

val run_c : Dataset.cutcp -> floatarray
(** Nested loops and conditionals over unboxed arrays. *)

val run_triolet :
  ?ctx:Triolet.Exec.t ->
  ?hint:
    ((float * float * float * float) Triolet.Iter.t ->
     (float * float * float * float) Triolet.Iter.t) ->
  Dataset.cutcp ->
  floatarray
(** atoms |> par |> concat_map gridPts |> scatter_add — the paper's
    [floatHist [f a r | a <- atoms, r <- gridPts a]].  [hint] defaults
    to [Iter.par]. *)

val pipeline :
  ?hint:
    ((float * float * float * float) Triolet.Iter.t ->
     (float * float * float * float) Triolet.Iter.t) ->
  Dataset.cutcp ->
  (int * float) Triolet.Iter.t
(** Plan-reification hook: the fused (index, weight) pipeline
    {!run_triolet}'s scatter-add consumes. *)

val run_eden : Dataset.cutcp -> floatarray

val agrees : ?eps:float -> floatarray -> floatarray -> bool

val run_gather :
  ?hint:(float Triolet.Iter3.t -> float Triolet.Iter3.t) ->
  Dataset.cutcp ->
  floatarray
(** Gather formulation over a 3-D iterator (one sum per grid point, the
    GPU-style variant), distributed in z-slabs.  Agrees with {!run_c}
    up to floating-point rounding. *)

(** {1 Resident z-slabs with halo exchange}

    Grid z-slabs one per node; each slab's atoms install once as a
    resident segment, and the foreign atoms within cutoff of the
    slab's z extent ride as its ghost (the halo).  {!Resident.displace}
    + {!Resident.resync} re-ship only the slabs and halos whose
    contents changed, so a local perturbation costs a handful of atom
    records per round instead of the whole atom set. *)
module Resident : sig
  type t

  val create : ?ctx:Triolet.Exec.t -> Dataset.cutcp -> t

  val potential : t -> floatarray * Triolet_runtime.Cluster.report
  (** One round: every slab computes from resident atoms + halo; slabs
      reassemble into the full grid.  Agrees with {!run_c} up to
      floating-point rounding (per-point summation order differs). *)

  val displace : t -> atom:int -> dx:float -> dy:float -> dz:float -> unit
  (** Move one atom in the parent-side state; nothing ships until
      {!resync}. *)

  val resync : t -> int * int
  (** Re-derive slab contents and halos; only changed ones re-ship.
      Returns (changed slabs, changed halos). *)

  val close : t -> unit
end
