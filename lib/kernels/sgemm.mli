(** sgemm: scaled dense matrix product C = alpha * A * B (paper, section
    4.3), with B transposed first so inner loops run over contiguous
    memory. *)

val run_c : ?alpha:float -> Triolet.Matrix.t -> Triolet.Matrix.t -> Triolet.Matrix.t
(** Imperative loop nest over unboxed arrays. *)

val run_triolet :
  ?ctx:Triolet.Exec.t ->
  ?alpha:float ->
  ?hint:(float Triolet.Iter2.t -> float Triolet.Iter2.t) ->
  Triolet.Matrix.t ->
  Triolet.Matrix.t ->
  Triolet.Matrix.t
(** The paper's two-line rows/outerproduct version; transposition runs
    [localpar] over shared memory.  [hint] defaults to [Iter2.par]. *)

val pipeline :
  ?alpha:float ->
  ?hint:(float Triolet.Iter2.t -> float Triolet.Iter2.t) ->
  Triolet.Matrix.t ->
  Triolet.Matrix.t ->
  float Triolet.Iter2.t
(** Plan-reification hook: the 2-D dot-product iterator
    {!run_triolet}'s build consumes (B already transposed). *)

val run_eden : ?alpha:float -> Triolet.Matrix.t -> Triolet.Matrix.t -> Triolet.Matrix.t
(** The paper's Eden style: boxed lists of unboxed row vectors
    ("chunked form"), sequential boxed transposition. *)

val agrees : ?eps:float -> Triolet.Matrix.t -> Triolet.Matrix.t -> bool
