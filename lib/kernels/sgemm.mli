(** sgemm: scaled dense matrix product C = alpha * A * B (paper, section
    4.3), with B transposed first so inner loops run over contiguous
    memory. *)

val run_c : ?alpha:float -> Triolet.Matrix.t -> Triolet.Matrix.t -> Triolet.Matrix.t
(** Imperative loop nest over unboxed arrays. *)

val run_triolet :
  ?ctx:Triolet.Exec.t ->
  ?alpha:float ->
  ?hint:(float Triolet.Iter2.t -> float Triolet.Iter2.t) ->
  Triolet.Matrix.t ->
  Triolet.Matrix.t ->
  Triolet.Matrix.t
(** The paper's two-line rows/outerproduct version; transposition runs
    [localpar] over shared memory.  [hint] defaults to [Iter2.par]. *)

val pipeline :
  ?alpha:float ->
  ?hint:(float Triolet.Iter2.t -> float Triolet.Iter2.t) ->
  Triolet.Matrix.t ->
  Triolet.Matrix.t ->
  float Triolet.Iter2.t
(** Plan-reification hook: the 2-D dot-product iterator
    {!run_triolet}'s build consumes (B already transposed). *)

val run_eden : ?alpha:float -> Triolet.Matrix.t -> Triolet.Matrix.t -> Triolet.Matrix.t
(** The paper's Eden style: boxed lists of unboxed row vectors
    ("chunked form"), sequential boxed transposition. *)

val agrees : ?eps:float -> Triolet.Matrix.t -> Triolet.Matrix.t -> bool

(** Resident iterative variant for [C_r = alpha * A * B_r] loops: A's
    row blocks install once in a {!Triolet_runtime.Darray} session and
    every {!Resident.multiply} ships only B (transposed) plus key-sized
    reuse envelopes — when A dwarfs B, per-round scatter bytes
    collapse.  Under the [Process] backend create before any domain is
    spawned. *)
module Resident : sig
  type t

  val create : ?ctx:Triolet.Exec.t -> ?alpha:float -> Triolet.Matrix.t -> t

  val multiply :
    t -> Triolet.Matrix.t -> Triolet.Matrix.t * Triolet_runtime.Cluster.report
  (** One round: ship B, compute row blocks against resident A, gather
      C.  The first call's report counts A's [Seg_put]s; later calls
      count only reuses plus B. *)

  val update_a : t -> Triolet.Matrix.t -> int
  (** Replace A (same shape); returns how many row blocks actually
      changed — exactly those re-ship on the next multiply. *)

  val close : t -> unit
end
