(** tpacf: two-point angular correlation function (paper, section 4.4).

    Three histogram computations over angular separations of sky-point
    pairs: DD (observed set against itself), DR (observed against each
    random set), and RR (each random set against itself).  The
    separation of a pair is binned by angle; we bin uniformly in
    cos(angle), which preserves the computation's shape (dot product,
    compare, histogram update) with a simpler bin function than
    Parboil's logarithmic bins.

    [run_triolet] mirrors the code of the paper's Figure 6: a shared
    [correlation] maps a score function over a pair iterator into a
    histogram; [random_sets_correlation] runs a parallel reduction over
    random sets; self-correlation builds the triangular pair loop with
    a nested comprehension. *)

open Triolet
module D = Dataset
module Vec = Triolet_base.Vec

type result = { dd : int array; dr : int array; rr : int array }

(* Bin of one pair: uniform in dot = cos(angle), mapped to [0, bins). *)
let bin_of_dot ~bins dot =
  let d = Float.max (-1.0) (Float.min 1.0 dot) in
  let b = int_of_float ((d +. 1.0) /. 2.0 *. float_of_int bins) in
  if b >= bins then bins - 1 else b

let point (c : D.catalog) i =
  (Vec.fget c.D.cx i, Vec.fget c.D.cy i, Vec.fget c.D.cz i)

let score ~bins (x1, y1, z1) (x2, y2, z2) =
  bin_of_dot ~bins ((x1 *. x2) +. (y1 *. y2) +. (z1 *. z2))

(* ------------------------------------------------------------------ *)

let run_c ~bins (d : D.tpacf) : result =
  let self_hist (c : D.catalog) =
    let n = D.catalog_size c in
    let h = Array.make bins 0 in
    for i = 0 to n - 1 do
      let pi = point c i in
      for j = i + 1 to n - 1 do
        let b = score ~bins pi (point c j) in
        h.(b) <- h.(b) + 1
      done
    done;
    h
  in
  let cross_hist (c1 : D.catalog) (c2 : D.catalog) =
    let n1 = D.catalog_size c1 and n2 = D.catalog_size c2 in
    let h = Array.make bins 0 in
    for i = 0 to n1 - 1 do
      let pi = point c1 i in
      for j = 0 to n2 - 1 do
        let b = score ~bins pi (point c2 j) in
        h.(b) <- h.(b) + 1
      done
    done;
    h
  in
  let add a b = Array.mapi (fun i x -> x + b.(i)) a in
  let dd = self_hist d.D.observed in
  let dr =
    Array.fold_left
      (fun acc r -> add acc (cross_hist d.D.observed r))
      (Array.make bins 0) d.D.randoms
  in
  let rr =
    Array.fold_left
      (fun acc r -> add acc (self_hist r))
      (Array.make bins 0) d.D.randoms
  in
  { dd; dr; rr }

(* ------------------------------------------------------------------ *)
(* Triolet version, following Figure 6 of the paper.                   *)

(* correlation(size, pairs) = histogram(size, (score(u,v) for (u,v) in
   pairs)) — the common code of all three loops (Figure 6, lines 1-4).
   [pairs] is an iterator with a localpar hint set by the caller.
   [score_pipeline] is the fused iterator the histogram consumes,
   split out as a plan-reification hook. *)
let score_pipeline ~bins pairs = Iter.map (fun (u, v) -> score ~bins u v) pairs

let correlation ?ctx ~bins pairs =
  Iter.histogram ?ctx ~bins (score_pipeline ~bins pairs)

(* Triangular pair loop over one catalog:
     indexed = zip(indices(domain(rand)), rand)
     pairs = localpar((u,v) for (i,u) in indexed for v in rand[i+1:])
   (Figure 6, lines 14-18). *)
let self_pairs (c : D.catalog) =
  let n = D.catalog_size c in
  let points =
    Iter.zip3
      (Iter.of_floatarray c.D.cx)
      (Iter.of_floatarray c.D.cy)
      (Iter.of_floatarray c.D.cz)
  in
  Iter.localpar
    (Iter.concat_map
       (fun (i, u) ->
         Seq_iter.map
           (fun j -> (u, point c j))
           (Seq_iter.range (i + 1) n))
       (Iter.enumerate points))

let cross_pairs (c1 : D.catalog) (c2 : D.catalog) =
  let n2 = D.catalog_size c2 in
  let points1 =
    Iter.zip3
      (Iter.of_floatarray c1.D.cx)
      (Iter.of_floatarray c1.D.cy)
      (Iter.of_floatarray c1.D.cz)
  in
  Iter.localpar
    (Iter.concat_map
       (fun u -> Seq_iter.map (fun j -> (u, point c2 j)) (Seq_iter.range 0 n2))
       points1)

let catalog_codec =
  Triolet_base.Codec.map
    ~inj:(fun (cx, cy, cz) -> { D.cx; cy; cz })
    ~proj:(fun c -> (c.D.cx, c.D.cy, c.D.cz))
    (Triolet_base.Codec.triple Triolet_base.Codec.floatarray
       Triolet_base.Codec.floatarray Triolet_base.Codec.floatarray)

(* The distributed pipeline of randomSetsCorrelation, pre-reduction:
   one histogram per random set, computed where the set is shipped.
   Exposed as a plan-reification hook. *)
let random_sets_pipeline corr1 (rands : D.catalog array) =
  Iter.map corr1 (Iter.par (Iter.of_array ~codec:catalog_codec rands))

(* randomSetsCorrelation: a parallel reduction over the random sets that
   sums their histograms (Figure 6, lines 6-11). *)
let random_sets_correlation ?ctx ~bins corr1 (rands : D.catalog array) =
  let add h1 h2 = Array.mapi (fun i x -> x + h2.(i)) h1 in
  Iter.reduce ?ctx ~codec:Triolet_base.Codec.int_array ~merge:add
    ~init:(Array.make bins 0)
    (random_sets_pipeline corr1 rands)

(* Plan-reification hooks for [triolet analyze]: the exact fused
   pipelines run_triolet's consumers execute — DD's shared-memory
   triangular pair loop and RR's distributed reduction over random
   sets. *)
let dd_pipeline ~bins (d : D.tpacf) =
  score_pipeline ~bins (self_pairs d.D.observed)

let rr_pipeline ~bins (d : D.tpacf) =
  random_sets_pipeline (fun r -> correlation ~bins (self_pairs r)) d.D.randoms

(* Size taxonomy shared with the auto-mapper: one point-pair score is
   the work unit (DD does n^2/2 pairs, each of the [sets] DR and RR
   passes n^2 and n^2/2). *)
let size_class (d : D.tpacf) =
  let n = D.catalog_size d.D.observed and sets = Array.length d.D.randoms in
  Mapping.size_class_of_work (n * n * ((2 * sets) + 1) / 2)

let run_triolet ?ctx ~bins (d : D.tpacf) : result =
  let ctx = Exec.for_kernel ?ctx ~kernel:"tpacf" ~size:(size_class d) () in
  let module Obs = Triolet_obs.Obs in
  (* One span per pipeline stage: DD is the shared-memory triangular
     loop; DR and RR are distributed reductions over random sets.  The
     per-set correlations inside the distributed reductions run on the
     node's own pool and must not re-enter the distributed context, so
     they take no [?ctx]. *)
  let dd =
    Obs.span ~name:"kernel.tpacf.dd" (fun () ->
        correlation ~ctx ~bins (self_pairs d.D.observed))
  in
  let dr =
    Obs.span ~name:"kernel.tpacf.dr" (fun () ->
        random_sets_correlation ~ctx ~bins
          (fun r -> correlation ~bins (cross_pairs d.D.observed r))
          d.D.randoms)
  in
  let rr =
    Obs.span ~name:"kernel.tpacf.rr" (fun () ->
        random_sets_correlation ~ctx ~bins
          (fun r -> correlation ~bins (self_pairs r))
          d.D.randoms)
  in
  { dd; dr; rr }

(* ------------------------------------------------------------------ *)

let run_eden ~bins (d : D.tpacf) : result =
  let module E = Triolet_baselines.Eden_list in
  let to_points (c : D.catalog) =
    List.init (D.catalog_size c) (point c)
  in
  let self_hist c =
    let pts = to_points c in
    let rec pairs = function
      | [] -> []
      | p :: rest -> E.map (fun q -> (p, q)) rest :: pairs rest
    in
    E.histogram ~bins
      (E.map (fun (u, v) -> score ~bins u v) (List.concat (pairs pts)))
  in
  let cross_hist c1 c2 =
    let p2 = to_points c2 in
    E.histogram ~bins
      (E.concat_map
         (fun u -> E.map (fun v -> score ~bins u v) p2)
         (to_points c1))
  in
  let add a b = Array.mapi (fun i x -> x + b.(i)) a in
  {
    dd = self_hist d.D.observed;
    dr =
      Array.fold_left
        (fun acc r -> add acc (cross_hist d.D.observed r))
        (Array.make bins 0) d.D.randoms;
    rr =
      Array.fold_left
        (fun acc r -> add acc (self_hist r))
        (Array.make bins 0) d.D.randoms;
  }

let agrees r1 r2 = r1.dd = r2.dd && r1.dr = r2.dr && r1.rr = r2.rr

(* ------------------------------------------------------------------ *)
(* Resident multi-round variant: observed points stay on the nodes.    *)

module Darray = Triolet_runtime.Darray
module Payload = Triolet_base.Payload

(** The DR loop re-visits the observed catalog once per random set; the
    resident variant installs the observed points' blocks in the warm
    fabric once, then each round ships only one random set.  Histograms
    are integer counts and every observed point lands in exactly one
    block, so {!Resident.dr} equals {!run_c}'s DR exactly. *)
module Resident = struct
  type t = { session : Darray.session; arr : Darray.t; bins : int }

  let catalog_payload (c : D.catalog) off n =
    [
      Payload.Floats (Float.Array.sub c.D.cx off n);
      Payload.Floats (Float.Array.sub c.D.cy off n);
      Payload.Floats (Float.Array.sub c.D.cz off n);
    ]

  let catalog_of_payload = function
    | [ x; y; z ] ->
        {
          D.cx = Payload.floats_exn x;
          cy = Payload.floats_exn y;
          cz = Payload.floats_exn z;
        }
    | _ -> invalid_arg "Tpacf.Resident: bad catalog payload"

  (* Child-side compute: cross-histogram of this node's observed block
     against the round's random set. *)
  let work ~bins ~node:_ ~resident ~arg =
    let obs = catalog_of_payload resident in
    let rand = catalog_of_payload arg in
    let n1 = D.catalog_size obs and n2 = D.catalog_size rand in
    let h = Array.make bins 0 in
    for i = 0 to n1 - 1 do
      let pi = point obs i in
      for j = 0 to n2 - 1 do
        let b = score ~bins pi (point rand j) in
        h.(b) <- h.(b) + 1
      done
    done;
    [ Payload.Ints h ]

  let create ?ctx ~bins (observed : D.catalog) =
    let session = Skeletons.resident_session ?ctx ~work:(work ~bins) () in
    let segments =
      Skeletons.resident_segments ?ctx ~len:(D.catalog_size observed)
        ~payload_of:(catalog_payload observed) ()
    in
    let arr = Darray.create session ~segments in
    { session; arr; bins }

  (* One round: observed (resident) against one random set. *)
  let cross t (rand : D.catalog) =
    let argp = catalog_payload rand 0 (D.catalog_size rand) in
    Darray.run1 t.arr
      ~arg:(fun _ -> argp)
      ~merge:(fun acc reply ->
        match reply with
        | [ h ] ->
            Array.iteri (fun i c -> acc.(i) <- acc.(i) + c)
              (Payload.ints_exn h);
            acc
        | _ -> invalid_arg "Tpacf.Resident: bad reply")
      ~init:(Array.make t.bins 0)

  (* The full DR histogram: one warm round per random set; reports are
     returned per round so callers can see the byte collapse. *)
  let dr t (randoms : D.catalog array) =
    let hist = Array.make t.bins 0 in
    let reports =
      Array.map
        (fun r ->
          let h, report = cross t r in
          Array.iteri (fun i c -> hist.(i) <- hist.(i) + c) h;
          report)
        randoms
    in
    (hist, reports)

  let close t = Darray.close_session t.session
end
