(** mri-q: non-uniform 3-D inverse Fourier transform (paper, section
    4.2).

    For every voxel r, sum the contributions of every k-space sample:
    Q(r) = sum_k |phi(k)|^2 * exp(2*pi*i * k.r), yielding a real and an
    imaginary accumulator per voxel.  Three implementations:

    - [run_c]: the "sequential C" stand-in — plain nested loops over
      unboxed arrays, the normalization baseline of every figure;
    - [run_triolet]: the paper's two-line version — a parallel map over
      voxels of a sequential sum over samples;
    - [run_eden]: Eden-style boxed-list code. *)

open Triolet
module D = Dataset

type result = { qr : floatarray; qi : floatarray }

let two_pi = 8.0 *. atan 1.0

(* |phi|^2 for each sample, precomputed once as in the Parboil code. *)
let magnitudes (d : D.mriq) =
  let k = Float.Array.length d.D.phi_r in
  Float.Array.init k (fun i ->
      let r = Float.Array.get d.D.phi_r i and im = Float.Array.get d.D.phi_i i in
      (r *. r) +. (im *. im))

(* ------------------------------------------------------------------ *)

let run_c (d : D.mriq) : result =
  let k = Float.Array.length d.D.kx in
  let n = Float.Array.length d.D.x in
  let mu = magnitudes d in
  let qr = Float.Array.make n 0.0 and qi = Float.Array.make n 0.0 in
  for v = 0 to n - 1 do
    let x = Float.Array.unsafe_get d.D.x v
    and y = Float.Array.unsafe_get d.D.y v
    and z = Float.Array.unsafe_get d.D.z v in
    let sr = ref 0.0 and si = ref 0.0 in
    for s = 0 to k - 1 do
      let phase =
        two_pi
        *. ((Float.Array.unsafe_get d.D.kx s *. x)
           +. (Float.Array.unsafe_get d.D.ky s *. y)
           +. (Float.Array.unsafe_get d.D.kz s *. z))
      in
      let m = Float.Array.unsafe_get mu s in
      sr := !sr +. (m *. cos phase);
      si := !si +. (m *. sin phase)
    done;
    Float.Array.unsafe_set qr v !sr;
    Float.Array.unsafe_set qi v !si
  done;
  { qr; qi }

(* ------------------------------------------------------------------ *)

(* The paper's Triolet code:
     [sum(ftcoeff(k, r) for k in ks) for r in par(zip3(x, y, z))]
   ftcoeff yields a complex contribution; the inner sum is sequential,
   the outer map over voxels is the parallel loop.  [pipeline] is the
   fused iterator collect_float_pairs consumes, exposed as a
   plan-reification hook for [triolet analyze]. *)
let pipeline ?(hint = Iter.par) (d : D.mriq) =
  let mu = magnitudes d in
  let k = Float.Array.length d.D.kx in
  let voxel_sum (x, y, z) =
    let sr = ref 0.0 and si = ref 0.0 in
    for s = 0 to k - 1 do
      let phase =
        two_pi
        *. ((Float.Array.unsafe_get d.D.kx s *. x)
           +. (Float.Array.unsafe_get d.D.ky s *. y)
           +. (Float.Array.unsafe_get d.D.kz s *. z))
      in
      let m = Float.Array.unsafe_get mu s in
      sr := !sr +. (m *. cos phase);
      si := !si +. (m *. sin phase)
    done;
    (!sr, !si)
  in
  let voxels =
    Iter.zip3
      (Iter.of_floatarray d.D.x)
      (Iter.of_floatarray d.D.y)
      (Iter.of_floatarray d.D.z)
  in
  Iter.map voxel_sum (hint voxels)

(* Size taxonomy shared with the auto-mapper: one (voxel, sample)
   contribution is the work unit. *)
let size_class (d : D.mriq) =
  Mapping.size_class_of_work
    (Float.Array.length d.D.x * Float.Array.length d.D.kx)

let run_triolet ?ctx ?hint (d : D.mriq) : result =
  let ctx = Exec.for_kernel ?ctx ~kernel:"mri-q" ~size:(size_class d) () in
  Triolet_obs.Obs.span ~name:"kernel.mriq" (fun () ->
      let qr, qi = Iter.collect_float_pairs ~ctx (pipeline ?hint d) in
      { qr; qi })

(* ------------------------------------------------------------------ *)

(* Eden-style: the voxel list and the sample list are boxed lists of
   tuples; the inner sum traverses a list per voxel. *)
let run_eden (d : D.mriq) : result =
  let module E = Triolet_baselines.Eden_list in
  let mu = magnitudes d in
  let to_list a = List.init (Float.Array.length a) (Float.Array.get a) in
  let samples =
    E.zip3 (to_list d.D.kx) (to_list d.D.ky) (to_list d.D.kz)
    |> List.mapi (fun s (kx, ky, kz) -> (kx, ky, kz, Float.Array.get mu s))
  in
  let voxels = E.zip3 (to_list d.D.x) (to_list d.D.y) (to_list d.D.z) in
  let results =
    E.map
      (fun (x, y, z) ->
        E.fold
          (fun (sr, si) (kx, ky, kz, m) ->
            let phase = two_pi *. ((kx *. x) +. (ky *. y) +. (kz *. z)) in
            (sr +. (m *. cos phase), si +. (m *. sin phase)))
          (0.0, 0.0) samples)
      voxels
  in
  {
    qr = Float.Array.of_list (List.map fst results);
    qi = Float.Array.of_list (List.map snd results);
  }

(* ------------------------------------------------------------------ *)

let max_abs_diff a b =
  let d = ref 0.0 in
  for i = 0 to Float.Array.length a - 1 do
    d := Float.max !d (Float.abs (Float.Array.get a i -. Float.Array.get b i))
  done;
  !d

(** Agreement check between two results (used by tests and the bench
    harness's self-check). *)
let agrees ?(eps = 1e-9) r1 r2 =
  Float.Array.length r1.qr = Float.Array.length r2.qr
  && max_abs_diff r1.qr r2.qr <= eps
  && max_abs_diff r1.qi r2.qi <= eps
