(* First-class kernel registry.  See kernel.mli for the contract.

   The four paper kernels are defined here rather than self-registering
   from their own modules: archive linking only pulls modules something
   references, so side-effect registration is a reliability trap — an
   explicit seed list is the robust OCaml idiom. *)

open Triolet

type pipeline =
  | Pipe_1d : 'a Iter.t -> pipeline
  | Pipe_2d : 'a Iter2.t -> pipeline

type instance = {
  kernel : string;
  size : string;
  work_units : int;
  run_ref : unit -> unit;
  run_eden : unit -> unit;
  run_triolet : ?ctx:Exec.t -> unit -> unit;
  run_seq : unit -> unit;
  check : ?ctx:Exec.t -> unit -> bool;
  pipelines : unit -> (string * pipeline) list;
  model : ?rates:Models.rates -> unit -> Triolet_sim.App_model.t;
}

module type S = sig
  val name : string
  val size_classes : string list
  val default_size : string
  val instance : ?seed:int -> size:string -> unit -> instance
end

let standard_sizes = [ "tiny"; "small"; "paper" ]

let unknown_size kernel size valid =
  invalid_arg
    (Printf.sprintf "Kernel %s: unknown size %S (valid: %s)" kernel size
       (String.concat ", " valid))

(* The first Triolet run's result becomes the reference; later [check]
   calls re-run and compare.  Forcing the first call before perturbing
   the ambient context (faults, odd geometry) pins a clean reference. *)
let checker ~agree run =
  let reference = ref None in
  fun ?ctx () ->
    let r = run ?ctx () in
    match !reference with
    | None ->
        reference := Some r;
        true
    | Some r0 -> agree r0 r

(* ------------------------------------------------------------------ *)

module Mriq_k = struct
  let name = "mri-q"
  let size_classes = standard_sizes
  let default_size = "small"

  let dims = function
    | "tiny" -> (64, 192)
    | "small" -> (1024, 4096)
    | "paper" -> (4096, 262144)
    | s -> unknown_size name s size_classes

  let instance ?(seed = 11) ~size () =
    let samples, voxels = dims size in
    let d = lazy (Dataset.mriq ~seed ~samples ~voxels) in
    let run ?ctx () = Mriq.run_triolet ?ctx (Lazy.force d) in
    {
      kernel = name;
      size;
      work_units = samples * voxels;
      run_ref = (fun () -> ignore (Mriq.run_c (Lazy.force d)));
      run_eden = (fun () -> ignore (Mriq.run_eden (Lazy.force d)));
      run_triolet = (fun ?ctx () -> ignore (run ?ctx ()));
      run_seq =
        (fun () ->
          ignore (Mriq.run_triolet ~hint:Iter.sequential (Lazy.force d)));
      check = checker ~agree:(Mriq.agrees ~eps:1e-9) run;
      pipelines =
        (fun () -> [ (name, Pipe_1d (Mriq.pipeline (Lazy.force d))) ]);
      model =
        (fun ?rates () -> Models.mriq_model_sized ?rates ~voxels ~samples ());
    }
end

module Sgemm_k = struct
  let name = "sgemm"
  let size_classes = standard_sizes
  let default_size = "small"

  let dims = function
    | "tiny" -> (24, 18, 20)
    | "small" -> (256, 256, 256)
    | "paper" -> (4096, 4096, 4096)
    | s -> unknown_size name s size_classes

  let instance ?(seed = 12) ~size () =
    let m, k, n = dims size in
    let ab = lazy (Dataset.sgemm_matrices ~seed ~m ~k ~n) in
    let run ?ctx () =
      let a, b = Lazy.force ab in
      Sgemm.run_triolet ?ctx a b
    in
    {
      kernel = name;
      size;
      work_units = m * k * n;
      run_ref =
        (fun () ->
          let a, b = Lazy.force ab in
          ignore (Sgemm.run_c a b));
      run_eden =
        (fun () ->
          let a, b = Lazy.force ab in
          ignore (Sgemm.run_eden a b));
      run_triolet = (fun ?ctx () -> ignore (run ?ctx ()));
      run_seq =
        (fun () ->
          let a, b = Lazy.force ab in
          ignore (Sgemm.run_triolet ~hint:Iter2.sequential a b));
      check = checker ~agree:(Sgemm.agrees ~eps:1e-9) run;
      pipelines =
        (fun () ->
          let a, b = Lazy.force ab in
          [ (name, Pipe_2d (Sgemm.pipeline a b)) ]);
      model = (fun ?rates () -> Models.sgemm_model_sized ?rates ~m ~k ~n ());
    }
end

module Tpacf_k = struct
  let name = "tpacf"
  let size_classes = standard_sizes
  let default_size = "small"

  let dims = function
    | "tiny" -> (48, 4, 16)
    | "small" -> (768, 4, 32)
    | "paper" -> (8192, 64, 64)
    | s -> unknown_size name s size_classes

  let instance ?(seed = 13) ~size () =
    let points, sets, bins = dims size in
    let d = lazy (Dataset.tpacf ~seed ~points ~random_sets:sets) in
    let run ?ctx () = Tpacf.run_triolet ?ctx ~bins (Lazy.force d) in
    {
      kernel = name;
      size;
      work_units = points * points * ((2 * sets) + 1) / 2;
      run_ref = (fun () -> ignore (Tpacf.run_c ~bins (Lazy.force d)));
      run_eden = (fun () -> ignore (Tpacf.run_eden ~bins (Lazy.force d)));
      run_triolet = (fun ?ctx () -> ignore (run ?ctx ()));
      run_seq =
        (fun () ->
          (* No sequential hint hook: force one node x one core. *)
          ignore
            (Tpacf.run_triolet
               ~ctx:(Exec.make ~nodes:1 ~cores_per_node:1 ())
               ~bins (Lazy.force d)));
      check = checker ~agree:Tpacf.agrees run;
      pipelines =
        (fun () ->
          [
            (name ^ "-dd", Pipe_1d (Tpacf.dd_pipeline ~bins (Lazy.force d)));
            (name ^ "-rr", Pipe_1d (Tpacf.rr_pipeline ~bins (Lazy.force d)));
          ]);
      model =
        (fun ?rates () -> Models.tpacf_model_sized ?rates ~points ~sets ~bins ());
    }
end

module Cutcp_k = struct
  let name = "cutcp"
  let size_classes = standard_sizes
  let default_size = "small"

  let dims = function
    | "tiny" -> (48, 10, 0.5, 1.5)
    | "small" -> (2048, 32, 0.5, 3.0)
    | "paper" -> (600_000, 192, 0.5, 6.0)
    | s -> unknown_size name s size_classes

  let instance ?(seed = 14) ~size () =
    let atoms, g, spacing, cutoff = dims size in
    let d =
      lazy (Dataset.cutcp ~seed ~atoms ~nx:g ~ny:g ~nz:g ~spacing ~cutoff)
    in
    let box = int_of_float ((2.0 *. cutoff /. spacing) +. 1.0) in
    let run ?ctx () = Cutcp.run_triolet ?ctx (Lazy.force d) in
    {
      kernel = name;
      size;
      work_units = atoms * box * box * box;
      run_ref = (fun () -> ignore (Cutcp.run_c (Lazy.force d)));
      run_eden = (fun () -> ignore (Cutcp.run_eden (Lazy.force d)));
      run_triolet = (fun ?ctx () -> ignore (run ?ctx ()));
      run_seq =
        (fun () ->
          ignore (Cutcp.run_triolet ~hint:Iter.sequential (Lazy.force d)));
      check = checker ~agree:(Cutcp.agrees ~eps:1e-9) run;
      pipelines =
        (fun () -> [ (name, Pipe_1d (Cutcp.pipeline (Lazy.force d))) ]);
      model =
        (fun ?rates () ->
          Models.cutcp_model_sized ?rates ~atoms ~nx:g ~ny:g ~nz:g ~spacing
            ~cutoff ());
    }
end

(* ------------------------------------------------------------------ *)

let registry : (module S) list ref =
  ref
    [
      (module Mriq_k : S);
      (module Sgemm_k : S);
      (module Tpacf_k : S);
      (module Cutcp_k : S);
    ]

let name_of (module K : S) = K.name

let register (module K : S) =
  registry :=
    List.filter (fun k -> name_of k <> K.name) !registry @ [ (module K : S) ]

let all () = !registry
let find name = List.find_opt (fun k -> name_of k = name) !registry
let names () = List.map name_of !registry
