(** sgemm: scaled dense matrix product C = alpha * A * B (paper,
    section 4.3).

    All versions transpose B first so the inner loop runs over
    contiguous memory, then use a 2-D block decomposition that sends
    each worker only the input rows it needs.

    - [run_c]: imperative loop nest over unboxed arrays;
    - [run_triolet]: the paper's two-line rows/outerproduct version;
    - [run_eden]: boxed list-of-rows representation with list dots. *)

open Triolet

let run_c ?(alpha = 1.0) (a : Matrix.t) (b : Matrix.t) : Matrix.t =
  if Matrix.cols a <> Matrix.rows b then invalid_arg "Sgemm.run_c";
  let bt = Matrix.transpose b in
  let m = Matrix.rows a and n = Matrix.cols b and k = Matrix.cols a in
  let da = Matrix.data a and dbt = Matrix.data bt in
  let c = Matrix.create m n in
  let dc = Matrix.data c in
  for i = 0 to m - 1 do
    let ai = i * k in
    for j = 0 to n - 1 do
      let bj = j * k in
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc :=
          !acc
          +. Float.Array.unsafe_get da (ai + l)
             *. Float.Array.unsafe_get dbt (bj + l)
      done;
      Float.Array.unsafe_set dc ((i * n) + j) (alpha *. !acc)
    done
  done;
  c

(* The paper's code (section 2):
     zipped_AB = outerproduct(rows(A), rows(BT))
     AB = [dot(u, v) for (u, v) in par(zipped_AB)]
   Transposition itself is parallelized over shared memory only
   (localpar), being too cheap to distribute (section 4.3). *)
(* The 2-D dot-product iterator the build consumes — including B's
   transposition — exposed as a plan-reification hook for
   [triolet analyze]. *)
let pipeline ?(alpha = 1.0) ?(hint = Iter2.par) (a : Matrix.t) (b : Matrix.t)
    =
  if Matrix.cols a <> Matrix.rows b then invalid_arg "Sgemm.run_triolet";
  let bt = Matrix.transpose_par (Triolet_runtime.Pool.default ()) b in
  let zipped_ab = Iter2.outer_product (Iter2.rows a) (Iter2.rows bt) in
  hint (Iter2.map (fun (u, v) -> alpha *. Matrix.view_dot u v) zipped_ab)

(* Size taxonomy shared with the auto-mapper: one multiply-accumulate
   is the work unit. *)
let size_class (a : Matrix.t) (b : Matrix.t) =
  Mapping.size_class_of_work (Matrix.rows a * Matrix.cols a * Matrix.cols b)

let run_triolet ?ctx ?alpha ?hint (a : Matrix.t) (b : Matrix.t) : Matrix.t =
  let ctx = Exec.for_kernel ?ctx ~kernel:"sgemm" ~size:(size_class a b) () in
  Triolet_obs.Obs.span ~name:"kernel.sgemm" (fun () ->
      Iter2.build ~ctx (pipeline ?alpha ?hint a b))

(* Eden-style, following the paper's Eden code: arrays are kept "in
   chunked form" — boxed lists of unboxed row vectors — so tasks can be
   distributed while array traversal stays efficient (section 4.1), and
   the output assembly performs the random-access writes they had to
   drop to mutable arrays for (section 4.1).  Transposition is the
   boxed, sequential bottleneck of section 4.3. *)
let run_eden ?(alpha = 1.0) (a : Matrix.t) (b : Matrix.t) : Matrix.t =
  let module E = Triolet_baselines.Eden_list in
  if Matrix.cols a <> Matrix.rows b then invalid_arg "Sgemm.run_eden";
  let to_rows m =
    List.init (Matrix.rows m) (fun i ->
        Float.Array.init (Matrix.cols m) (fun j -> Matrix.unsafe_get m i j))
  in
  (* transpose over the boxed row list: one fresh vector per output
     row, gathering element j of every input row *)
  let transpose rows cols =
    let arr = Array.of_list rows in
    List.init cols (fun j ->
        Float.Array.init (Array.length arr) (fun i ->
            Float.Array.get arr.(i) j))
  in
  let dot (u : floatarray) (v : floatarray) =
    let acc = ref 0.0 in
    for i = 0 to Float.Array.length u - 1 do
      acc := !acc +. (Float.Array.unsafe_get u i *. Float.Array.unsafe_get v i)
    done;
    !acc
  in
  let bt = transpose (to_rows b) (Matrix.cols b) in
  let c_rows =
    E.map
      (fun u ->
        Float.Array.of_list (E.map (fun v -> alpha *. dot u v) bt))
      (to_rows a)
  in
  let m = Matrix.rows a and n = Matrix.cols b in
  let c = Matrix.create m n in
  List.iteri
    (fun i row ->
      Float.Array.iteri (fun j v -> Matrix.unsafe_set c i j v) row)
    c_rows;
  c

let agrees ?(eps = 1e-9) c1 c2 = Matrix.equal_eps ~eps c1 c2

(* ------------------------------------------------------------------ *)
(* Resident iterative variant: A's row blocks stay on the nodes.       *)

module Darray = Triolet_runtime.Darray
module Payload = Triolet_base.Payload

(** Iterated products against a fixed left operand — the shape of
    power iteration or any [C_r = alpha * A * B_r] loop.  A's row
    blocks install once in the resident fabric; each {!Resident.multiply}
    ships only B (transposed) plus key-sized reuse envelopes, so when A
    is much larger than B the per-round scatter bytes collapse.
    {!Resident.update_a} re-ships exactly the row blocks that changed. *)
module Resident = struct
  type t = {
    session : Darray.session;
    arr : Darray.t;
    blocks : (int * int) array;  (* (row offset, rows) per segment *)
    mutable a_segments : Payload.t array;  (* current payloads, to diff *)
    m : int;
    k : int;
  }

  (* Child-side compute: resident = this node's A row block, arg = all
     of B already transposed; reply = the C row block, in the same
     header-plus-data shape as the segments. *)
  let work ~alpha ~node:_ ~resident ~arg =
    let ablk = Iter2.matrix_of_segment resident in
    let bt = Iter2.matrix_of_segment arg in
    let mb = Matrix.rows ablk and n = Matrix.rows bt and k = Matrix.cols ablk in
    if Matrix.cols bt <> k then
      invalid_arg "Sgemm.Resident: A/B dimension mismatch";
    let da = Matrix.data ablk and dbt = Matrix.data bt in
    let out = Float.Array.make (mb * n) 0.0 in
    for i = 0 to mb - 1 do
      let ai = i * k in
      for j = 0 to n - 1 do
        let bj = j * k in
        let acc = ref 0.0 in
        for l = 0 to k - 1 do
          acc :=
            !acc
            +. Float.Array.unsafe_get da (ai + l)
               *. Float.Array.unsafe_get dbt (bj + l)
        done;
        Float.Array.unsafe_set out ((i * n) + j) (alpha *. !acc)
      done
    done;
    [ Payload.Ints [| mb; n |]; Payload.Floats out ]

  let segment_of (a : Matrix.t) (off, n) =
    [
      Payload.Ints [| n; Matrix.cols a |];
      Payload.Floats (Matrix.data (Matrix.copy_rows a off n));
    ]

  let create ?ctx ?(alpha = 1.0) (a : Matrix.t) =
    let session = Skeletons.resident_session ?ctx ~work:(work ~alpha) () in
    let blocks = Skeletons.resident_blocks ?ctx ~len:(Matrix.rows a) () in
    let a_segments = Array.map (segment_of a) blocks in
    let arr = Darray.create session ~segments:a_segments in
    { session; arr; blocks; a_segments; m = Matrix.rows a; k = Matrix.cols a }

  let multiply t (b : Matrix.t) =
    if Matrix.rows b <> t.k then invalid_arg "Sgemm.Resident.multiply";
    let bt = Matrix.transpose b in
    let argp =
      [
        Payload.Ints [| Matrix.rows bt; Matrix.cols bt |];
        Payload.Floats (Matrix.data bt);
      ]
    in
    let c = Matrix.create t.m (Matrix.cols b) in
    let row0 = ref 0 in
    let (), report =
      Darray.run1 t.arr
        ~arg:(fun _ -> argp)
        ~merge:(fun () reply ->
          (* Replies merge in node order = row-block order. *)
          let blk = Iter2.matrix_of_segment reply in
          Matrix.blit_block ~src:blk ~dst:c ~r0:!row0 ~c0:0;
          row0 := !row0 + Matrix.rows blk)
        ~init:()
    in
    (c, report)

  (* Replace A; only row blocks whose bytes differ re-ship. *)
  let update_a t (a : Matrix.t) =
    if Matrix.rows a <> t.m || Matrix.cols a <> t.k then
      invalid_arg "Sgemm.Resident.update_a: geometry change";
    let changed = ref 0 in
    Array.iteri
      (fun i blk ->
        let p = segment_of a blk in
        if p <> t.a_segments.(i) then begin
          t.a_segments.(i) <- p;
          Darray.update t.arr i p;
          incr changed
        end)
      t.blocks;
    !changed

  let close t = Darray.close_session t.session
end
