(** cutcp: cutoff Coulombic potential on a 3-D grid (paper, section
    4.5).

    For each charged atom, visit every grid point within cutoff distance
    c and add the atom's contribution q * (1/r - 1/c); points beyond the
    cutoff are skipped.  The computation is a floating-point histogram:
    a nested, irregular loop (atoms -> nearby grid points -> conditional
    update) that conventional fusion frameworks cannot fuse, and the
    motivating example of the paper's introduction.

    - [run_c]: nested loops and conditionals over unboxed arrays;
    - [run_triolet]: atoms |> par |> concat_map (grid points near the
      atom) |> scatter_add — the list-comprehension structure
      [floatHist [f a r | a <- atoms, r <- gridPts a]];
    - [run_eden]: the boxed-list equivalent. *)

open Triolet
module D = Dataset
module Vec = Triolet_base.Vec

let grid_index (c : D.cutcp) ix iy iz =
  ((iz * c.D.ny) + iy) * c.D.nx + ix

(* Neighborhood box of an atom: inclusive index bounds clipped to the
   grid. *)
let bounds (c : D.cutcp) x lo_n =
  let lo = int_of_float (ceil ((x -. c.D.cutoff) /. c.D.spacing)) in
  let hi = int_of_float (floor ((x +. c.D.cutoff) /. c.D.spacing)) in
  (max 0 lo, min (lo_n - 1) hi)

let contribution (c : D.cutcp) ~x ~y ~z ~q ix iy iz =
  let gx = float_of_int ix *. c.D.spacing in
  let gy = float_of_int iy *. c.D.spacing in
  let gz = float_of_int iz *. c.D.spacing in
  let dx = gx -. x and dy = gy -. y and dz = gz -. z in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
  if r2 > 0.0 && r2 < c.D.cutoff *. c.D.cutoff then
    let r = sqrt r2 in
    Some (q *. ((1.0 /. r) -. (1.0 /. c.D.cutoff)))
  else None

(* ------------------------------------------------------------------ *)

let run_c (c : D.cutcp) : floatarray =
  let grid = Float.Array.make (D.grid_points c) 0.0 in
  let atoms = Float.Array.length c.D.ax in
  for a = 0 to atoms - 1 do
    let x = Vec.fget c.D.ax a
    and y = Vec.fget c.D.ay a
    and z = Vec.fget c.D.az a
    and q = Vec.fget c.D.aq a in
    let x0, x1 = bounds c x c.D.nx in
    let y0, y1 = bounds c y c.D.ny in
    let z0, z1 = bounds c z c.D.nz in
    for iz = z0 to z1 do
      for iy = y0 to y1 do
        for ix = x0 to x1 do
          match contribution c ~x ~y ~z ~q ix iy iz with
          | Some v ->
              let g = grid_index c ix iy iz in
              Vec.fset grid g (Vec.fget grid g +. v)
          | None -> ()
        done
      done
    done
  done;
  grid

(* ------------------------------------------------------------------ *)

(* Grid points near one atom, as a fusible nested loop: three nested
   ranges with a filter — irregularity stays in inner steppers while
   the atom loop remains partitionable. *)
let grid_pts (c : D.cutcp) (x, y, z, q) =
  let x0, x1 = bounds c x c.D.nx in
  let y0, y1 = bounds c y c.D.ny in
  let z0, z1 = bounds c z c.D.nz in
  Seq_iter.range z0 (z1 + 1)
  |> Seq_iter.concat_map (fun iz ->
         Seq_iter.range y0 (y1 + 1)
         |> Seq_iter.concat_map (fun iy ->
                Seq_iter.range x0 (x1 + 1)
                |> Seq_iter.filter_map (fun ix ->
                       match contribution c ~x ~y ~z ~q ix iy iz with
                       | Some v -> Some (grid_index c ix iy iz, v)
                       | None -> None)))

(* The fused (index, weight) pipeline scatter_add consumes, exposed as
   a plan-reification hook for [triolet analyze]. *)
let pipeline ?(hint = Iter.par) (c : D.cutcp) =
  let atoms =
    Iter.zip_with
      (fun (x, y, z) q -> (x, y, z, q))
      (Iter.zip3
         (Iter.of_floatarray c.D.ax)
         (Iter.of_floatarray c.D.ay)
         (Iter.of_floatarray c.D.az))
      (Iter.of_floatarray c.D.aq)
  in
  Iter.concat_map (grid_pts c) (hint atoms)

(* Size taxonomy shared with the auto-mapper: one candidate grid-point
   visit is the work unit. *)
let size_class (c : D.cutcp) =
  let box = int_of_float ((2.0 *. c.D.cutoff /. c.D.spacing) +. 1.0) in
  Mapping.size_class_of_work (Float.Array.length c.D.ax * box * box * box)

let run_triolet ?ctx ?hint (c : D.cutcp) : floatarray =
  let ctx = Exec.for_kernel ?ctx ~kernel:"cutcp" ~size:(size_class c) () in
  Triolet_obs.Obs.span ~name:"kernel.cutcp" (fun () ->
      Iter.scatter_add ~ctx ~size:(D.grid_points c) (pipeline ?hint c))

(* ------------------------------------------------------------------ *)

let run_eden (c : D.cutcp) : floatarray =
  let module E = Triolet_baselines.Eden_list in
  let to_list a = List.init (Float.Array.length a) (Float.Array.get a) in
  let atoms =
    E.zip (E.zip3 (to_list c.D.ax) (to_list c.D.ay) (to_list c.D.az))
      (to_list c.D.aq)
  in
  let updates =
    E.concat_map
      (fun ((x, y, z), q) ->
        let x0, x1 = bounds c x c.D.nx in
        let y0, y1 = bounds c y c.D.ny in
        let z0, z1 = bounds c z c.D.nz in
        List.concat_map
          (fun iz ->
            List.concat_map
              (fun iy ->
                List.filter_map
                  (fun ix ->
                    match contribution c ~x ~y ~z ~q ix iy iz with
                    | Some v -> Some (grid_index c ix iy iz, v)
                    | None -> None)
                  (List.init (x1 - x0 + 1) (fun k -> x0 + k)))
              (List.init (y1 - y0 + 1) (fun k -> y0 + k)))
          (List.init (z1 - z0 + 1) (fun k -> z0 + k)))
      atoms
  in
  E.weighted_histogram ~bins:(D.grid_points c) updates

(* ------------------------------------------------------------------ *)

let agrees ?(eps = 1e-9) g1 g2 =
  Float.Array.length g1 = Float.Array.length g2
  &&
  let ok = ref true in
  for i = 0 to Float.Array.length g1 - 1 do
    let a = Float.Array.get g1 i and b = Float.Array.get g2 i in
    let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    if Float.abs (a -. b) > eps *. scale then ok := false
  done;
  !ok

(* ------------------------------------------------------------------ *)

(* Resident z-slab variant with halo exchange: the grid is decomposed
   into z-slabs, one per node, and the atoms are distributed to the
   slab their z coordinate falls in.  A slab's potential needs its own
   atoms plus the atoms of other slabs within cutoff of its z extent —
   a boundary-plane halo that rides as the slab segment's ghost.  Each
   round ships only what moved: an unchanged slab's atoms are a
   key-sized reuse, an unchanged halo likewise (ghost versions bump
   only on content change), so local perturbations re-ship only the
   affected slab and its neighbours' halos. *)

module Darray = Triolet_runtime.Darray
module Payload = Triolet_base.Payload

module Resident = struct
  (* Scalar geometry only — the closure forks into the children, and
     capturing the atom arrays would let results bypass the shipped
     segments. *)
  type geom = {
    nx : int;
    ny : int;
    nz : int;
    spacing : float;
    cutoff : float;
    zblocks : (int * int) array;  (* (z0, planes) per slab/node *)
  }

  type t = {
    session : Darray.session;
    arr : Darray.t;
    g : geom;
    (* Parent-side atom state, mutable under {!displace}. *)
    ax : floatarray;
    ay : floatarray;
    az : floatarray;
    aq : floatarray;
    mutable own_payloads : Payload.t array;  (* shipped state, to diff *)
    mutable round : int;
  }

  let quad_payload (sel : int list) ax ay az aq =
    let pick a = Float.Array.of_list (List.map (Vec.fget a) sel) in
    [
      Payload.Floats (pick ax);
      Payload.Floats (pick ay);
      Payload.Floats (pick az);
      Payload.Floats (pick aq);
    ]

  let slab_of_z g z =
    let iz = int_of_float (Float.floor (z /. g.spacing)) in
    let iz = max 0 (min (g.nz - 1) iz) in
    let s = ref 0 in
    Array.iteri
      (fun i (z0, n) -> if n > 0 && iz >= z0 && iz < z0 + n then s := i)
      g.zblocks;
    !s

  (* Atoms owned by slab [s]: z falls inside the slab's plane range. *)
  let own_payload_of g ax ay az aq s =
    let sel = ref [] in
    for a = Float.Array.length ax - 1 downto 0 do
      if slab_of_z g (Vec.fget az a) = s then sel := a :: !sel
    done;
    quad_payload !sel ax ay az aq

  (* Halo of slab [s]: atoms of other slabs within cutoff of the
     slab's z extent — the only foreign atoms whose contribution can
     reach a grid point of the slab. *)
  let halo_payload_of g ax ay az aq s =
    let z0, n = g.zblocks.(s) in
    if n = 0 then quad_payload [] ax ay az aq
    else begin
      let zlo = (float_of_int z0 *. g.spacing) -. g.cutoff in
      let zhi = (float_of_int (z0 + n - 1) *. g.spacing) +. g.cutoff in
      let sel = ref [] in
      for a = Float.Array.length ax - 1 downto 0 do
        let z = Vec.fget az a in
        if slab_of_z g z <> s && z >= zlo && z <= zhi then sel := a :: !sel
      done;
      quad_payload !sel ax ay az aq
    end

  let own_payload t s = own_payload_of t.g t.ax t.ay t.az t.aq s
  let halo_payload t s = halo_payload_of t.g t.ax t.ay t.az t.aq s

  (* Child-side compute: resident = own atoms (4 planes) then halo
     atoms (4 planes); the reply is the slab's grid. *)
  let work (g : geom) ~node ~resident ~arg:_ =
    let z0, nzs = g.zblocks.(node) in
    let grid = Float.Array.make (nzs * g.ny * g.nx) 0.0 in
    let fa = function
      | Payload.Floats f -> f
      | _ -> invalid_arg "Cutcp.Resident: bad atom plane"
    in
    let groups =
      match resident with
      | [ ax; ay; az; aq ] -> [ (fa ax, fa ay, fa az, fa aq) ]
      | [ ax; ay; az; aq; gx; gy; gz; gq ] ->
          [ (fa ax, fa ay, fa az, fa aq); (fa gx, fa gy, fa gz, fa gq) ]
      | _ -> invalid_arg "Cutcp.Resident: bad resident payload"
    in
    if nzs > 0 then
      List.iter
        (fun (ax, ay, az, aq) ->
          for a = 0 to Float.Array.length ax - 1 do
            let x = Vec.fget ax a
            and y = Vec.fget ay a
            and z = Vec.fget az a
            and q = Vec.fget aq a in
            let x0 =
              max 0 (int_of_float (ceil ((x -. g.cutoff) /. g.spacing)))
            and x1 =
              min (g.nx - 1)
                (int_of_float (floor ((x +. g.cutoff) /. g.spacing)))
            in
            let y0 =
              max 0 (int_of_float (ceil ((y -. g.cutoff) /. g.spacing)))
            and y1 =
              min (g.ny - 1)
                (int_of_float (floor ((y +. g.cutoff) /. g.spacing)))
            in
            let z0' =
              max z0 (int_of_float (ceil ((z -. g.cutoff) /. g.spacing)))
            and z1' =
              min
                (z0 + nzs - 1)
                (int_of_float (floor ((z +. g.cutoff) /. g.spacing)))
            in
            for iz = z0' to z1' do
              for iy = y0 to y1 do
                for ix = x0 to x1 do
                  let gx = float_of_int ix *. g.spacing in
                  let gy = float_of_int iy *. g.spacing in
                  let gz = float_of_int iz *. g.spacing in
                  let dx = gx -. x and dy = gy -. y and dz = gz -. z in
                  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
                  if r2 > 0.0 && r2 < g.cutoff *. g.cutoff then begin
                    let i = ((((iz - z0) * g.ny) + iy) * g.nx) + ix in
                    Vec.fset grid i
                      (Vec.fget grid i
                      +. (q *. ((1.0 /. sqrt r2) -. (1.0 /. g.cutoff))))
                  end
                done
              done
            done
          done)
        groups;
    [ Payload.Floats grid ]

  let create ?ctx (c : D.cutcp) =
    let zblocks = Skeletons.resident_blocks ?ctx ~len:c.D.nz () in
    let g =
      {
        nx = c.D.nx;
        ny = c.D.ny;
        nz = c.D.nz;
        spacing = c.D.spacing;
        cutoff = c.D.cutoff;
        zblocks;
      }
    in
    let session = Skeletons.resident_session ?ctx ~work:(work g) () in
    let ax = Float.Array.copy c.D.ax
    and ay = Float.Array.copy c.D.ay
    and az = Float.Array.copy c.D.az
    and aq = Float.Array.copy c.D.aq in
    let own =
      Array.init (Array.length zblocks) (own_payload_of g ax ay az aq)
    in
    let arr = Darray.create session ~segments:own in
    let t = { session; arr; g; ax; ay; az; aq; own_payloads = own; round = 0 }
    in
    ignore (Darray.exchange_halo t.arr ~compute:(halo_payload t));
    t

  (* Move one atom (parent-side state only; {!resync} ships deltas). *)
  let displace t ~atom ~dx ~dy ~dz =
    Vec.fset t.ax atom (Vec.fget t.ax atom +. dx);
    Vec.fset t.ay atom (Vec.fget t.ay atom +. dy);
    Vec.fset t.az atom (Vec.fget t.az atom +. dz)

  (* Re-derive slab contents and halos from the current atom state;
     only slabs and halos whose bytes changed re-ship.  Returns
     (changed slabs, changed halos). *)
  let resync t =
    let slabs = ref 0 in
    Array.iteri
      (fun i old ->
        let p = own_payload t i in
        if p <> old then begin
          t.own_payloads.(i) <- p;
          Darray.update t.arr i p;
          incr slabs
        end)
      t.own_payloads;
    let halos = Darray.exchange_halo t.arr ~compute:(halo_payload t) in
    (!slabs, halos)

  (* One round: compute every slab against its resident atoms + halo
     and reassemble the full grid (slabs are contiguous z ranges, so
     node-order replies concatenate). *)
  let potential t =
    t.round <- t.round + 1;
    let out = Float.Array.make (t.g.nx * t.g.ny * t.g.nz) 0.0 in
    let node = ref 0 in
    let (), report =
      Darray.run1 t.arr
        ~arg:(fun _ -> [ Payload.Ints [| t.round |] ])
        ~merge:(fun () reply ->
          let slab =
            match reply with
            | [ Payload.Floats f ] -> f
            | _ -> invalid_arg "Cutcp.Resident: bad reply"
          in
          let z0, _ = t.g.zblocks.(!node) in
          Float.Array.blit slab 0 out
            (z0 * t.g.ny * t.g.nx)
            (Float.Array.length slab);
          incr node)
        ~init:()
    in
    (out, report)

  let close t = Darray.close_session t.session
end

(* Gather formulation over a 3-D iterator: for each grid point, sum the
   contributions of every atom within the cutoff.  This is the
   inverse-direction variant GPU implementations of cutcp use (the
   scatter version above matches the paper's CPU code); it exercises
   the Dim3 domain of section 3.3 with z-slab distribution.  O(points x
   atoms) without a spatial index, so it suits small boxes. *)
let run_gather ?(hint = Triolet.Iter3.par) (c : D.cutcp) : floatarray =
  let atoms = Float.Array.length c.D.ax in
  let cut2 = c.D.cutoff *. c.D.cutoff in
  let potential x y z =
    let gx = float_of_int x *. c.D.spacing in
    let gy = float_of_int y *. c.D.spacing in
    let gz = float_of_int z *. c.D.spacing in
    let acc = ref 0.0 in
    for a = 0 to atoms - 1 do
      let dx = gx -. Vec.fget c.D.ax a in
      let dy = gy -. Vec.fget c.D.ay a in
      let dz = gz -. Vec.fget c.D.az a in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
      if r2 > 0.0 && r2 < cut2 then
        acc :=
          !acc
          +. Vec.fget c.D.aq a
             *. ((1.0 /. sqrt r2) -. (1.0 /. c.D.cutoff))
    done;
    !acc
  in
  let it =
    Triolet.Iter3.init ~nx:c.D.nx ~ny:c.D.ny ~nz:c.D.nz potential
  in
  Triolet.Grid3.data (Triolet.Iter3.build (hint it))
