(** cutcp: cutoff Coulombic potential on a 3-D grid (paper, section
    4.5).

    For each charged atom, visit every grid point within cutoff distance
    c and add the atom's contribution q * (1/r - 1/c); points beyond the
    cutoff are skipped.  The computation is a floating-point histogram:
    a nested, irregular loop (atoms -> nearby grid points -> conditional
    update) that conventional fusion frameworks cannot fuse, and the
    motivating example of the paper's introduction.

    - [run_c]: nested loops and conditionals over unboxed arrays;
    - [run_triolet]: atoms |> par |> concat_map (grid points near the
      atom) |> scatter_add — the list-comprehension structure
      [floatHist [f a r | a <- atoms, r <- gridPts a]];
    - [run_eden]: the boxed-list equivalent. *)

open Triolet
module D = Dataset
module Vec = Triolet_base.Vec

let grid_index (c : D.cutcp) ix iy iz =
  ((iz * c.D.ny) + iy) * c.D.nx + ix

(* Neighborhood box of an atom: inclusive index bounds clipped to the
   grid. *)
let bounds (c : D.cutcp) x lo_n =
  let lo = int_of_float (ceil ((x -. c.D.cutoff) /. c.D.spacing)) in
  let hi = int_of_float (floor ((x +. c.D.cutoff) /. c.D.spacing)) in
  (max 0 lo, min (lo_n - 1) hi)

let contribution (c : D.cutcp) ~x ~y ~z ~q ix iy iz =
  let gx = float_of_int ix *. c.D.spacing in
  let gy = float_of_int iy *. c.D.spacing in
  let gz = float_of_int iz *. c.D.spacing in
  let dx = gx -. x and dy = gy -. y and dz = gz -. z in
  let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
  if r2 > 0.0 && r2 < c.D.cutoff *. c.D.cutoff then
    let r = sqrt r2 in
    Some (q *. ((1.0 /. r) -. (1.0 /. c.D.cutoff)))
  else None

(* ------------------------------------------------------------------ *)

let run_c (c : D.cutcp) : floatarray =
  let grid = Float.Array.make (D.grid_points c) 0.0 in
  let atoms = Float.Array.length c.D.ax in
  for a = 0 to atoms - 1 do
    let x = Vec.fget c.D.ax a
    and y = Vec.fget c.D.ay a
    and z = Vec.fget c.D.az a
    and q = Vec.fget c.D.aq a in
    let x0, x1 = bounds c x c.D.nx in
    let y0, y1 = bounds c y c.D.ny in
    let z0, z1 = bounds c z c.D.nz in
    for iz = z0 to z1 do
      for iy = y0 to y1 do
        for ix = x0 to x1 do
          match contribution c ~x ~y ~z ~q ix iy iz with
          | Some v ->
              let g = grid_index c ix iy iz in
              Vec.fset grid g (Vec.fget grid g +. v)
          | None -> ()
        done
      done
    done
  done;
  grid

(* ------------------------------------------------------------------ *)

(* Grid points near one atom, as a fusible nested loop: three nested
   ranges with a filter — irregularity stays in inner steppers while
   the atom loop remains partitionable. *)
let grid_pts (c : D.cutcp) (x, y, z, q) =
  let x0, x1 = bounds c x c.D.nx in
  let y0, y1 = bounds c y c.D.ny in
  let z0, z1 = bounds c z c.D.nz in
  Seq_iter.range z0 (z1 + 1)
  |> Seq_iter.concat_map (fun iz ->
         Seq_iter.range y0 (y1 + 1)
         |> Seq_iter.concat_map (fun iy ->
                Seq_iter.range x0 (x1 + 1)
                |> Seq_iter.filter_map (fun ix ->
                       match contribution c ~x ~y ~z ~q ix iy iz with
                       | Some v -> Some (grid_index c ix iy iz, v)
                       | None -> None)))

(* The fused (index, weight) pipeline scatter_add consumes, exposed as
   a plan-reification hook for [triolet analyze]. *)
let pipeline ?(hint = Iter.par) (c : D.cutcp) =
  let atoms =
    Iter.zip_with
      (fun (x, y, z) q -> (x, y, z, q))
      (Iter.zip3
         (Iter.of_floatarray c.D.ax)
         (Iter.of_floatarray c.D.ay)
         (Iter.of_floatarray c.D.az))
      (Iter.of_floatarray c.D.aq)
  in
  Iter.concat_map (grid_pts c) (hint atoms)

let run_triolet ?ctx ?hint (c : D.cutcp) : floatarray =
  Triolet_obs.Obs.span ~name:"kernel.cutcp" (fun () ->
      Iter.scatter_add ?ctx ~size:(D.grid_points c) (pipeline ?hint c))

(* ------------------------------------------------------------------ *)

let run_eden (c : D.cutcp) : floatarray =
  let module E = Triolet_baselines.Eden_list in
  let to_list a = List.init (Float.Array.length a) (Float.Array.get a) in
  let atoms =
    E.zip (E.zip3 (to_list c.D.ax) (to_list c.D.ay) (to_list c.D.az))
      (to_list c.D.aq)
  in
  let updates =
    E.concat_map
      (fun ((x, y, z), q) ->
        let x0, x1 = bounds c x c.D.nx in
        let y0, y1 = bounds c y c.D.ny in
        let z0, z1 = bounds c z c.D.nz in
        List.concat_map
          (fun iz ->
            List.concat_map
              (fun iy ->
                List.filter_map
                  (fun ix ->
                    match contribution c ~x ~y ~z ~q ix iy iz with
                    | Some v -> Some (grid_index c ix iy iz, v)
                    | None -> None)
                  (List.init (x1 - x0 + 1) (fun k -> x0 + k)))
              (List.init (y1 - y0 + 1) (fun k -> y0 + k)))
          (List.init (z1 - z0 + 1) (fun k -> z0 + k)))
      atoms
  in
  E.weighted_histogram ~bins:(D.grid_points c) updates

(* ------------------------------------------------------------------ *)

let agrees ?(eps = 1e-9) g1 g2 =
  Float.Array.length g1 = Float.Array.length g2
  &&
  let ok = ref true in
  for i = 0 to Float.Array.length g1 - 1 do
    let a = Float.Array.get g1 i and b = Float.Array.get g2 i in
    let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
    if Float.abs (a -. b) > eps *. scale then ok := false
  done;
  !ok

(* ------------------------------------------------------------------ *)

(* Gather formulation over a 3-D iterator: for each grid point, sum the
   contributions of every atom within the cutoff.  This is the
   inverse-direction variant GPU implementations of cutcp use (the
   scatter version above matches the paper's CPU code); it exercises
   the Dim3 domain of section 3.3 with z-slab distribution.  O(points x
   atoms) without a spatial index, so it suits small boxes. *)
let run_gather ?(hint = Triolet.Iter3.par) (c : D.cutcp) : floatarray =
  let atoms = Float.Array.length c.D.ax in
  let cut2 = c.D.cutoff *. c.D.cutoff in
  let potential x y z =
    let gx = float_of_int x *. c.D.spacing in
    let gy = float_of_int y *. c.D.spacing in
    let gz = float_of_int z *. c.D.spacing in
    let acc = ref 0.0 in
    for a = 0 to atoms - 1 do
      let dx = gx -. Vec.fget c.D.ax a in
      let dy = gy -. Vec.fget c.D.ay a in
      let dz = gz -. Vec.fget c.D.az a in
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
      if r2 > 0.0 && r2 < cut2 then
        acc :=
          !acc
          +. Vec.fget c.D.aq a
             *. ((1.0 /. sqrt r2) -. (1.0 /. c.D.cutoff))
    done;
    !acc
  in
  let it =
    Triolet.Iter3.init ~nx:c.D.nx ~ny:c.D.ny ~nz:c.D.nz potential
  in
  Triolet.Grid3.data (Triolet.Iter3.build (hint it))
