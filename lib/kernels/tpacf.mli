(** tpacf: two-point angular correlation function (paper, section 4.4):
    DD, DR and RR histograms over angular separations of point pairs,
    binned uniformly in cos(angle). *)

type result = { dd : int array; dr : int array; rr : int array }

val bin_of_dot : bins:int -> float -> int
(** Bin of a pair with the given dot product; clamps to the valid
    range. *)

val run_c : bins:int -> Dataset.tpacf -> result
(** Imperative nested loops with direct histogram updates. *)

val run_triolet : ?ctx:Triolet.Exec.t -> bins:int -> Dataset.tpacf -> result
(** Follows the paper's Figure 6: a shared [correlation] over a pair
    iterator; a triangular nested comprehension for self-correlation;
    [par] over random sets with [localpar] pair loops inside. *)

val run_eden : bins:int -> Dataset.tpacf -> result

val agrees : result -> result -> bool

(** {1 Plan-reification hooks}

    The exact fused pipelines {!run_triolet}'s consumers execute,
    exposed so [triolet analyze] can reify and verify their plans. *)

val dd_pipeline : bins:int -> Dataset.tpacf -> int Triolet.Iter.t
(** DD's shared-memory triangular pair loop, mapped to bin indices. *)

val rr_pipeline : bins:int -> Dataset.tpacf -> int array Triolet.Iter.t
(** RR's distributed reduction over random sets, pre-merge: one
    histogram per shipped set. *)
