(** tpacf: two-point angular correlation function (paper, section 4.4):
    DD, DR and RR histograms over angular separations of point pairs,
    binned uniformly in cos(angle). *)

type result = { dd : int array; dr : int array; rr : int array }

val bin_of_dot : bins:int -> float -> int
(** Bin of a pair with the given dot product; clamps to the valid
    range. *)

val run_c : bins:int -> Dataset.tpacf -> result
(** Imperative nested loops with direct histogram updates. *)

val run_triolet : ?ctx:Triolet.Exec.t -> bins:int -> Dataset.tpacf -> result
(** Follows the paper's Figure 6: a shared [correlation] over a pair
    iterator; a triangular nested comprehension for self-correlation;
    [par] over random sets with [localpar] pair loops inside. *)

val run_eden : bins:int -> Dataset.tpacf -> result

val agrees : result -> result -> bool

(** {1 Plan-reification hooks}

    The exact fused pipelines {!run_triolet}'s consumers execute,
    exposed so [triolet analyze] can reify and verify their plans. *)

val dd_pipeline : bins:int -> Dataset.tpacf -> int Triolet.Iter.t
(** DD's shared-memory triangular pair loop, mapped to bin indices. *)

val rr_pipeline : bins:int -> Dataset.tpacf -> int array Triolet.Iter.t
(** RR's distributed reduction over random sets, pre-merge: one
    histogram per shipped set. *)

(** {1 Resident multi-round DR}

    The observed catalog's blocks install once in a
    {!Triolet_runtime.Darray} session; each round ships one random set
    only.  Integer histograms with each observed point in exactly one
    block, so {!Resident.dr} equals {!run_c}'s DR exactly. *)
module Resident : sig
  type t

  val create : ?ctx:Triolet.Exec.t -> bins:int -> Dataset.catalog -> t

  val cross :
    t -> Dataset.catalog -> int array * Triolet_runtime.Cluster.report
  (** One warm round: resident observed blocks against one random
      set. *)

  val dr :
    t ->
    Dataset.catalog array ->
    int array * Triolet_runtime.Cluster.report array
  (** Sum of {!cross} over all sets, with the per-round reports (round
      0 pays the observed [Seg_put]s; later rounds ship reuses plus
      one random set). *)

  val close : t -> unit
end
