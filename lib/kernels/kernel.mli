(** First-class kernel registry.

    Each benchmark kernel is a {!S} module: a name, its size classes,
    and an {!instance} constructor bundling every way the toolchain
    consumes a kernel — reference/Eden/Triolet runners, a sequential
    calibration runner, a correctness check, plan-reification pipelines
    for the analyzer, and a simulator model of the instance.  The CLI,
    bench harness, analyzer driver and auto-mapper enumerate kernels
    through {!all} instead of hand-written per-kernel match arms, so a
    new kernel registers once and appears everywhere. *)

(** An analyzer hook: the fused pipeline a kernel's consumer executes,
    existentially packed so the registry needs no dependency on the
    analysis library (which reifies these with [Plan.of_iter] /
    [Plan.of_iter2]). *)
type pipeline =
  | Pipe_1d : 'a Triolet.Iter.t -> pipeline
  | Pipe_2d : 'a Triolet.Iter2.t -> pipeline

type instance = {
  kernel : string;  (** registry name *)
  size : string;  (** size class this instance realizes *)
  work_units : int;  (** inner work units ({!Triolet.Mapping} taxonomy) *)
  run_ref : unit -> unit;  (** the sequential-C reference *)
  run_eden : unit -> unit;  (** the Eden-style baseline *)
  run_triolet : ?ctx:Triolet.Exec.t -> unit -> unit;
  run_seq : unit -> unit;
      (** the Triolet pipeline forced sequential — what the auto-mapper
          calibrates per-unit costs from *)
  check : ?ctx:Triolet.Exec.t -> unit -> bool;
      (** runs the Triolet version and compares against the first run's
          result (computed on first call — call once up front to pin
          the reference before perturbing the ambient context) *)
  pipelines : unit -> (string * pipeline) list;
      (** named plan-reification hooks for the analyzer *)
  model : ?rates:Models.rates -> unit -> Triolet_sim.App_model.t;
      (** simulator model of exactly this instance *)
}

module type S = sig
  val name : string
  val size_classes : string list
  (** valid [~size] arguments, smallest first; each equals the
      {!Triolet.Mapping.size_class_of_work} class of the instance it
      names, so runtime mapping lookups hit tuned entries *)

  val default_size : string
  (** the class [autotune] tunes by default *)

  val instance : ?seed:int -> size:string -> unit -> instance
  (** Datasets are derived deterministically from [seed] and built
      lazily on first use.  Raises [Invalid_argument] on an unknown
      [size], listing the valid classes. *)
end

val register : (module S) -> unit
(** Later registrations of an existing name shadow earlier ones. *)

val all : unit -> (module S) list
(** Registration order; pre-seeded with mri-q, sgemm, tpacf, cutcp. *)

val find : string -> (module S) option
val names : unit -> string list
