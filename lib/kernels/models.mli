(** Calibrated simulator models of the four benchmarks at the paper's
    problem sizes: per-unit compute costs from rates measured on this
    machine, communication volumes from the same slice-size formulas the
    real iterator runtime uses. *)

type rates = {
  mriq_pair_s : float;  (** one (voxel, sample) contribution, C style *)
  sgemm_mac_s : float;  (** one multiply-accumulate *)
  tpacf_pair_s : float;  (** one pair score + histogram update *)
  cutcp_point_s : float;  (** one candidate grid-point visit *)
}

val default_rates : rates
(** Typical one-core rates of the paper's hardware era, used when
    calibration is skipped. *)

val measure_rates : unit -> rates
(** Times the real reference kernels on small instances. *)

(** {1 Size-parameterized models}

    The same cost formulas at arbitrary instance sizes — what the
    auto-mapper scores candidate contexts against.  The paper-scale
    functions below are fixed-size instantiations of these. *)

val mriq_model_sized :
  ?rates:rates -> voxels:int -> samples:int -> unit -> Triolet_sim.App_model.t

val sgemm_model_sized :
  ?rates:rates -> m:int -> k:int -> n:int -> unit -> Triolet_sim.App_model.t

val tpacf_model_sized :
  ?rates:rates ->
  points:int ->
  sets:int ->
  bins:int ->
  unit ->
  Triolet_sim.App_model.t

val cutcp_model_sized :
  ?rates:rates ->
  atoms:int ->
  nx:int ->
  ny:int ->
  nz:int ->
  spacing:float ->
  cutoff:float ->
  unit ->
  Triolet_sim.App_model.t

val mriq_model : ?rates:rates -> unit -> Triolet_sim.App_model.t
val sgemm_model : ?rates:rates -> unit -> Triolet_sim.App_model.t
val tpacf_model : ?rates:rates -> unit -> Triolet_sim.App_model.t
val cutcp_model : ?rates:rates -> unit -> Triolet_sim.App_model.t

val all : ?rates:rates -> unit -> Triolet_sim.App_model.t list
