(** Calibrated simulator models of the four benchmarks.

    The scalability figures replay the paper's problem sizes through the
    discrete-event simulator.  Per-unit compute costs come from *rates
    measured on this machine* by running the real reference kernels on
    small instances ({!measure_rates}); communication volumes are
    computed from the same formulas the real iterator runtime uses
    (slices, broadcast data, per-node bands, result arrays).

    Problem sizes follow section 4: datasets chosen so the sequential C
    time lands in the paper's 20–200 s window. *)

module App = Triolet_sim.App_model

type rates = {
  mriq_pair_s : float;  (** one (voxel, sample) contribution, C style *)
  sgemm_mac_s : float;  (** one multiply-accumulate, C style *)
  tpacf_pair_s : float;  (** one point-pair score + histogram update *)
  cutcp_point_s : float;  (** one candidate grid-point visit *)
}

(** Rates typical of one core of the paper's Xeon E5-2670 era hardware;
    used when calibration is skipped. *)
let default_rates =
  {
    mriq_pair_s = 25e-9;
    sgemm_mac_s = 1.5e-9;
    tpacf_pair_s = 12e-9;
    cutcp_point_s = 6e-9;
  }

(* Monotonic durations: calibration rates must never go negative or get
   skewed by an NTP step mid-measurement. *)
let time f = Triolet_runtime.Clock.duration f

(** Measure real per-operation rates by timing the reference kernels on
    small instances. *)
let measure_rates () =
  let mriq_pair_s =
    let d = Dataset.mriq ~seed:1 ~samples:256 ~voxels:512 in
    let _, t = time (fun () -> Mriq.run_c d) in
    t /. float_of_int (256 * 512)
  in
  let sgemm_mac_s =
    let n = 128 in
    let a, b = Dataset.sgemm_matrices ~seed:2 ~m:n ~k:n ~n in
    let _, t = time (fun () -> Sgemm.run_c a b) in
    t /. float_of_int (n * n * n)
  in
  let tpacf_pair_s =
    let d = Dataset.tpacf ~seed:3 ~points:512 ~random_sets:1 in
    let _, t = time (fun () -> Tpacf.run_c ~bins:32 d) in
    let n = 512.0 in
    (* DD + DR + RR pair counts for one random set *)
    let pairs = (n *. n /. 2.0) +. (n *. n) +. (n *. n /. 2.0) in
    t /. pairs
  in
  let cutcp_point_s =
    let c =
      Dataset.cutcp ~seed:4 ~atoms:512 ~nx:32 ~ny:32 ~nz:32 ~spacing:0.5
        ~cutoff:4.0
    in
    let _, t = time (fun () -> Cutcp.run_c c) in
    let box = (2.0 *. c.Dataset.cutoff /. c.Dataset.spacing) +. 1.0 in
    t /. (float_of_int 512 *. (box ** 3.0))
  in
  { mriq_pair_s; sgemm_mac_s; tpacf_pair_s; cutcp_point_s }

(* ------------------------------------------------------------------ *)
(* mri-q: parallel map over voxel chunks of a sequential sum over
   samples; paper scale is 64^3 voxels x 4096 samples, chunked 64
   voxels per unit.  Smaller instances shrink the chunk so the unit
   count stays high enough to decompose. *)

let mriq_model_sized ?(rates = default_rates) ~voxels ~samples () =
  let chunk = max 1 (min 64 (voxels / 64)) in
  let tasks = max 1 (voxels / chunk) in
  App.make ~name:"mri-q" ~tasks
    ~task_cost:(fun _ ->
      float_of_int (chunk * samples) *. rates.mriq_pair_s)
      (* each unit ships its voxel coordinates and returns Qr/Qi *)
    ~task_in_bytes:(fun _ -> 3 * 8 * chunk)
    ~broadcast_bytes:(5 * 8 * samples)
    ~whole_in_bytes:((3 * 8 * voxels) + (5 * 8 * samples))
    ~task_out_bytes:(fun _ -> 2 * 8 * chunk)
    ()

let mriq_model ?rates () =
  mriq_model_sized ?rates ~voxels:(64 * 64 * 64) ~samples:4096 ()

(* ------------------------------------------------------------------ *)
(* sgemm: units are output row bands; the 2-D block decomposition's
   communication appears as a per-node band of A and B^T whose size
   depends on the grid shape.  Paper scale is 4k x 4k matrices.        *)

let sgemm_model_sized ?(rates = default_rates) ~m ~k ~n () =
  let tasks = m in
  (* one unit = one output row *)
  let a_bytes = 8 * m * k and b_bytes = 8 * k * n in
  App.make ~name:"sgemm" ~tasks
    ~task_cost:(fun _ -> float_of_int (k * n) *. rates.sgemm_mac_s)
    ~node_extra_in_bytes:(fun nodes ->
      let rp, cp = Triolet_runtime.Partition.square_factors nodes in
      (a_bytes / rp) + (b_bytes / cp))
    ~whole_in_bytes:(a_bytes + b_bytes)
    ~task_out_bytes:(fun _ -> 8 * n)
      (* building the outgoing block messages allocates them afresh in a
         GC'd runtime (the paper attributes 40% of Triolet's overhead at
         8 nodes to exactly this, section 4.3) *)
    ~task_alloc_bytes:(fun _ -> 2 * 8 * n)
    ~seq_setup_time:(float_of_int (k * n) *. 8.0 *. rates.sgemm_mac_s)
    ~setup_shared_mem_ok:true ()

let sgemm_model ?rates () = sgemm_model_sized ?rates ~m:4096 ~k:4096 ~n:4096 ()

(* ------------------------------------------------------------------ *)
(* tpacf: units are (catalog, slice) pieces of the DD/DR/RR loops;
   paper scale is one observed + 64 random catalogs of 8192 points.    *)

let tpacf_model_sized ?(rates = default_rates) ~points ~sets ~bins () =
  let n = points in
  let slices = 16 in
  (* Unit kinds: DD slices, then per set DR slices and RR slices.  Self
     correlations do half the pairs of cross correlations, giving the
     irregular unit costs that reward over-decomposed scheduling. *)
  let nf = float_of_int n in
  let sf = float_of_int slices in
  (* A self-correlation's outer loop is triangular: slice s of the
     i-range does sum_{i in slice} (n - i) pairs, a linear ramp from
     ~2x the mean down to ~0 — the irregularity that static thread
     schedules leave unbalanced. *)
  let self_cost s =
    let mean = nf *. nf /. 2.0 /. sf in
    let weight = 2.0 *. (1.0 -. ((float_of_int s +. 0.5) /. sf)) in
    mean *. weight *. rates.tpacf_pair_s
  in
  let cross_cost = nf *. nf /. sf *. rates.tpacf_pair_s in
  let tasks = slices * ((2 * sets) + 1) in
  let catalog_bytes = 3 * 8 * n in
  App.make ~name:"tpacf" ~tasks
    ~task_cost:(fun i ->
      let group = i / slices and s = i mod slices in
      if group = 0 then self_cost s (* DD *)
      else if (group - 1) mod 2 = 0 then cross_cost (* DR *)
      else self_cost s (* RR *))
    ~task_in_bytes:(fun _ -> catalog_bytes / slices)
    ~broadcast_bytes:catalog_bytes (* the observed set, everywhere *)
    ~whole_in_bytes:((sets + 1) * catalog_bytes)
    ~node_out_bytes:(8 * bins) ()

let tpacf_model ?rates () =
  tpacf_model_sized ?rates ~points:8192 ~sets:64 ~bins:64 ()

(* ------------------------------------------------------------------ *)
(* cutcp: units are atom chunks; every worker returns a full copy of
   the potential grid that the main process must receive and sum — the
   output-reduction bottleneck that saturates Figure 8 (section 4.5).
   Paper scale is 600k atoms over a 192^3 grid.                        *)

let cutcp_model_sized ?(rates = default_rates) ~atoms ~nx ~ny ~nz ~spacing
    ~cutoff () =
  let grid_bytes = 8 * nx * ny * nz in
  let chunk = max 1 (min 256 (atoms / 16)) in
  let tasks = max 1 (atoms / chunk) in
  let box = (2.0 *. cutoff /. spacing) +. 1.0 in
  let points_per_atom = box *. box *. box in
  App.make ~name:"cutcp" ~tasks
    ~task_cost:(fun _ ->
      float_of_int chunk *. points_per_atom *. rates.cutcp_point_s)
    ~task_in_bytes:(fun _ -> 4 * 8 * chunk)
    ~whole_in_bytes:(4 * 8 * atoms)
    ~node_out_bytes:grid_bytes
      (* each produced (index, value) update is a short-lived boxed
         tuple (two boxes plus a pair, ~5 words) in a GC'd runtime: the
         allocation overhead
         that costs Triolet ~60% of its execution time at 8 nodes
         (section 4.5) *)
    ~task_alloc_bytes:(fun _ ->
      int_of_float (float_of_int chunk *. points_per_atom *. 40.0))
    ()

let cutcp_model ?rates () =
  cutcp_model_sized ?rates ~atoms:600_000 ~nx:192 ~ny:192 ~nz:192 ~spacing:0.5
    ~cutoff:6.0 ()

let all ?rates () =
  [
    mriq_model ?rates ();
    sgemm_model ?rates ();
    tpacf_model ?rates ();
    cutcp_model ?rates ();
  ]
