(** Calibration runs: real measured timings that anchor the simulator.

    Two kinds of measurement, both on scaled-down instances of the
    Parboil-shaped workloads (full paper sizes take 20–200 s *per
    style*, which the sealed 1-core box cannot afford per figure):

    - {!fig3}: wall time of the three implementation styles (C-style
      imperative, Triolet iterators, Eden boxed lists) of each kernel —
      the data behind Figure 3 and the sequential-efficiency ratios the
      simulator profiles consume;
    - {!Triolet_kernels.Models.measure_rates}: per-operation rates of
      the reference kernels that set the simulated task costs. *)

open Triolet_kernels

type style_times = {
  kernel : string;
  c_time : float;
  triolet_time : float;
  eden_time : float;
}

(* Best-of-3 wall time: single-shot timings on a shared 1-core box are
   noisy; the minimum is the standard robust estimator for compute-bound
   kernels. *)
let time f =
  let once () = Triolet_runtime.Clock.duration f in
  let r, t1 = once () in
  let _, t2 = once () in
  let _, t3 = once () in
  (r, Float.min t1 (Float.min t2 t3))

(** Triolet-style runs are measured with sequential hints: Figure 3
    compares single-thread code quality, not parallel dispatch. *)
let run_fig3 ?(scale = 1.0) () =
  let s x = max 1 (int_of_float (float_of_int x *. scale)) in
  let checkf name ok = if not ok then failwith (name ^ ": styles disagree") in
  (* mri-q *)
  let mriq =
    let d = Dataset.mriq ~seed:101 ~samples:(s 1024) ~voxels:(s 3072) in
    let rc, c_time = time (fun () -> Mriq.run_c d) in
    let rt, triolet_time =
      time (fun () -> Mriq.run_triolet ~hint:Triolet.Iter.sequential d)
    in
    let re, eden_time = time (fun () -> Mriq.run_eden d) in
    checkf "mri-q/triolet" (Mriq.agrees ~eps:1e-6 rc rt);
    checkf "mri-q/eden" (Mriq.agrees ~eps:1e-6 rc re);
    { kernel = "mri-q"; c_time; triolet_time; eden_time }
  in
  (* sgemm *)
  let sgemm =
    let n = s 224 in
    let a, b = Dataset.sgemm_matrices ~seed:102 ~m:n ~k:n ~n in
    let rc, c_time = time (fun () -> Sgemm.run_c a b) in
    let rt, triolet_time =
      time (fun () -> Sgemm.run_triolet ~hint:Triolet.Iter2.sequential a b)
    in
    let re, eden_time = time (fun () -> Sgemm.run_eden a b) in
    checkf "sgemm/triolet" (Sgemm.agrees ~eps:1e-6 rc rt);
    checkf "sgemm/eden" (Sgemm.agrees ~eps:1e-6 rc re);
    { kernel = "sgemm"; c_time; triolet_time; eden_time }
  in
  (* tpacf *)
  let tpacf =
    let d = Dataset.tpacf ~seed:103 ~points:(s 896) ~random_sets:2 in
    let bins = 32 in
    let rc, c_time = time (fun () -> Tpacf.run_c ~bins d) in
    let rt, triolet_time =
      time (fun () ->
          Triolet.Exec.with_context
            (Triolet.Exec.make ~nodes:1 ~cores_per_node:1 ())
            (fun () -> Tpacf.run_triolet ~bins d))
    in
    let re, eden_time = time (fun () -> Tpacf.run_eden ~bins d) in
    checkf "tpacf/triolet" (Tpacf.agrees rc rt);
    checkf "tpacf/eden" (Tpacf.agrees rc re);
    { kernel = "tpacf"; c_time; triolet_time; eden_time }
  in
  (* cutcp *)
  let cutcp =
    let d =
      Dataset.cutcp ~seed:104 ~atoms:(s 2048) ~nx:32 ~ny:32 ~nz:32
        ~spacing:0.5 ~cutoff:3.0
    in
    let rc, c_time = time (fun () -> Cutcp.run_c d) in
    let rt, triolet_time =
      time (fun () -> Cutcp.run_triolet ~hint:Triolet.Iter.sequential d)
    in
    let re, eden_time = time (fun () -> Cutcp.run_eden d) in
    checkf "cutcp/triolet" (Cutcp.agrees ~eps:1e-6 rc rt);
    checkf "cutcp/eden" (Cutcp.agrees ~eps:1e-6 rc re);
    { kernel = "cutcp"; c_time; triolet_time; eden_time }
  in
  [ mriq; sgemm; tpacf; cutcp ]

(** Sequential efficiencies (fraction of C-style speed) per kernel and
    system, derived from a {!run_fig3} measurement.  Clamped away from
    zero so a degenerate measurement cannot break the simulator. *)
let efficiencies times =
  let clamp e = Float.max 0.02 (Float.min 1.5 e) in
  let eff t = function
    | "Triolet" -> clamp (t.c_time /. t.triolet_time)
    | "Eden" -> clamp (t.c_time /. t.eden_time)
    | _ -> 1.0
  in
  fun system kernel ->
    match List.find_opt (fun t -> t.kernel = kernel) times with
    | Some t -> eff t system
    | None -> 1.0
