(** Comparison of two bench result files for the regression gate. *)

type row = { name : string; ns_per_run : float }

type delta = {
  d_name : string;
  old_ns : float;
  new_ns : float;
  ratio : float;  (** new / old; > 1.0 is a slowdown *)
}

type report = {
  deltas : delta list;
  only_old : string list;
  only_new : string list;
  regressions : delta list;
}

val rows_of_json : Triolet_obs.Json.t -> row list
(** Rows of a bench file: either a [BENCH_<family>.json] object with a
    ["rows"] array or a legacy top-level array of rows.  Entries without
    a [name]/[ns_per_run] pair are skipped. *)

val load_rows : string -> row list
(** [load_rows path] parses [path] and extracts its rows.
    @raise Triolet_obs.Json.Parse_error on malformed JSON. *)

val compare_rows : ?threshold:float -> row list -> row list -> report
(** Match rows by name and compute slowdown ratios.  [threshold]
    (default 0.15) sets the regression cutoff: ratio > 1 + threshold. *)

val compare_files : ?threshold:float -> string -> string -> report

val pp_report : ?threshold:float -> Format.formatter -> report -> unit
