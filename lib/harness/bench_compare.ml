(** Comparison of two bench result files for the regression gate.

    [triolet bench --compare old.json new.json] loads two files written
    by the bench harness (per-family [BENCH_<family>.json] objects with
    a ["rows"] array, or a legacy top-level array of row objects),
    matches rows by name, and flags every row whose [ns_per_run] grew by
    more than the threshold.  Rows present in only one file are reported
    but are not regressions — families and benchmarks come and go. *)

module Json = Triolet_obs.Json

type row = { name : string; ns_per_run : float }

type delta = {
  d_name : string;
  old_ns : float;
  new_ns : float;
  ratio : float;  (** new / old; > 1.0 is a slowdown *)
}

type report = {
  deltas : delta list;  (** rows present in both files, by name *)
  only_old : string list;
  only_new : string list;
      (** rows with no usable baseline — absent from the old file, or
          matched against a non-positive old value.  Reported as
          "added", never a regression and never a failure: a new bench
          family's first run always lands here. *)
  regressions : delta list;  (** deltas with ratio > 1 + threshold *)
}

let row_of_json j =
  let field f conv = Option.bind (Json.member f j) conv in
  match (field "name" Json.to_string_opt, field "ns_per_run" Json.to_float_opt)
  with
  | Some name, Some ns_per_run -> Some { name; ns_per_run }
  | _ -> None

(* Accept either shape: {"family":..,"rows":[...]} or a bare [...]
   array of rows. *)
let rows_of_json j =
  let arr =
    match j with
    | Json.Arr _ -> Json.to_list j
    | Json.Obj _ -> (
        match Json.member "rows" j with
        | Some (Json.Arr _ as rows) -> Json.to_list rows
        | _ -> [])
    | _ -> []
  in
  List.filter_map row_of_json arr

let load_rows path = rows_of_json (Json.of_file path)

let compare_rows ?(threshold = 0.15) old_rows new_rows =
  let find rows n = List.find_opt (fun r -> r.name = n) rows in
  let deltas =
    List.filter_map
      (fun o ->
        match find new_rows o.name with
        | Some n when o.ns_per_run > 0.0 ->
            Some
              {
                d_name = o.name;
                old_ns = o.ns_per_run;
                new_ns = n.ns_per_run;
                ratio = n.ns_per_run /. o.ns_per_run;
              }
        | _ -> None)
      old_rows
  in
  let only_in a b =
    List.filter_map
      (fun r -> if find b r.name = None then Some r.name else None)
      a
  in
  (* A new row whose baseline is absent — or present but non-positive,
     so no ratio can be formed — is "added", not an error. *)
  let added =
    List.filter_map
      (fun r ->
        match find old_rows r.name with
        | None -> Some r.name
        | Some o when o.ns_per_run <= 0.0 -> Some r.name
        | Some _ -> None)
      new_rows
  in
  {
    deltas;
    only_old = only_in old_rows new_rows;
    only_new = added;
    regressions =
      List.filter (fun d -> d.ratio > 1.0 +. threshold) deltas;
  }

let compare_files ?threshold old_path new_path =
  compare_rows ?threshold (load_rows old_path) (load_rows new_path)

let pp_report ?(threshold = 0.15) ppf r =
  let pct d = (d.ratio -. 1.0) *. 100.0 in
  Format.fprintf ppf "%-32s %12s %12s %8s@."
    "benchmark" "old ns/run" "new ns/run" "delta";
  List.iter
    (fun d ->
      Format.fprintf ppf "%-32s %12.1f %12.1f %+7.1f%%%s@."
        d.d_name d.old_ns d.new_ns (pct d)
        (if d.ratio > 1.0 +. threshold then "  REGRESSION" else ""))
    r.deltas;
  List.iter
    (fun n -> Format.fprintf ppf "%-32s (only in old file)@." n)
    r.only_old;
  List.iter
    (fun n -> Format.fprintf ppf "%-32s (added — no baseline row)@." n)
    r.only_new;
  if r.regressions = [] then
    Format.fprintf ppf "no regressions beyond %.0f%%@."
      (threshold *. 100.0)
  else
    Format.fprintf ppf "%d regression(s) beyond %.0f%%@."
      (List.length r.regressions)
      (threshold *. 100.0)
