(** Global execution configuration for skeleton consumers: the cluster
    geometry that [par] runs on, like the MPI launch configuration of a
    real deployment. *)

val set_cluster : Triolet_runtime.Cluster.config -> unit
val get_cluster : unit -> Triolet_runtime.Cluster.config

val with_cluster : Triolet_runtime.Cluster.config -> (unit -> 'a) -> 'a
(** Runs the thunk under the given configuration, restoring the previous
    one afterwards (exception-safe). *)

val faults : Triolet_runtime.Fault.spec option ref
(** Ambient fault-injection plan: when set, distributed skeletons pass
    it to [Cluster.run], so kernels execute under deterministic
    injected failures with recovery. *)

val set_faults : Triolet_runtime.Fault.spec option -> unit
val get_faults : unit -> Triolet_runtime.Fault.spec option

val with_faults : Triolet_runtime.Fault.spec -> (unit -> 'a) -> 'a
(** Runs the thunk under the given fault plan, restoring the previous
    one afterwards (exception-safe). *)

val chunk_multiplier : int ref
(** Over-decomposition multiplier for local loops pre-partitioned into
    explicit blocks. *)

val grain_size : int option ref
(** Grain-size override for the adaptive lazy-splitting scheduler;
    [None] derives the grain from range length and pool width. *)
