(** Deprecated global-configuration facade over {!Exec}.

    The execution configuration is the immutable {!Exec.t} context;
    everything here reads or replaces the *ambient* context and exists
    so historical call sites keep compiling.  New code should thread
    [?ctx] or use {!Exec.with_context}. *)

val set_cluster : Triolet_runtime.Cluster.config -> unit
(** [flat = true] selects the [Flat] backend; [flat = false] keeps the
    ambient non-flat backend (e.g. an environment-selected process
    transport). *)

val get_cluster : unit -> Triolet_runtime.Cluster.config

val with_cluster : Triolet_runtime.Cluster.config -> (unit -> 'a) -> 'a
(** Runs the thunk under the given configuration, restoring the previous
    one afterwards (exception-safe). *)

val set_faults : Triolet_runtime.Fault.spec option -> unit
(** Ambient fault-injection plan: when set, distributed skeletons pass
    it to the cluster runtime, so kernels execute under deterministic
    injected failures with recovery. *)

val get_faults : unit -> Triolet_runtime.Fault.spec option

val with_faults : Triolet_runtime.Fault.spec -> (unit -> 'a) -> 'a
(** Runs the thunk under the given fault plan, restoring the previous
    one afterwards (exception-safe). *)

val chunk_multiplier : unit -> int
(** Over-decomposition multiplier for local loops pre-partitioned into
    explicit blocks (from the ambient context). *)

val grain_size : unit -> int option
(** Grain-size override for the adaptive lazy-splitting scheduler;
    [None] derives the grain from range length and pool width (from the
    ambient context). *)

val set_grain_size : int option -> unit
