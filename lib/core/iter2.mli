(** Two-dimensional iterators (paper, section 3.3).

    Only flat indexers generalize to multiple dimensions, so a 2-D
    iterator is an [IdxFlat] over a [Dim2] domain plus 2-D *block*
    slicing: a block of the iteration space maps to the data slice its
    tasks touch — how the two-line sgemm ships each node only the rows
    it needs. *)

type 'a t

val row_count : 'a t -> int
val col_count : 'a t -> int
val hint : 'a t -> Iter.hint

val width : 'a t -> int
(** Number of payload buffers a block's slice contributes. *)

val payload_slice :
  'a t -> r0:int -> nr:int -> c0:int -> nc:int -> Triolet_base.Payload.t
(** Plan-reification hook: the data slice block (r0, nr, c0, nc) would
    ship, without running a consumer.  Used by the static plan
    analyzer to audit 2-D decompositions. *)

val make :
  rows:int ->
  cols:int ->
  local:(int -> int -> int -> int -> int -> int -> 'a) ->
  width:int ->
  payload_of:(int -> int -> int -> int -> Triolet_base.Payload.t) ->
  rebuild:(Triolet_base.Payload.t -> 'a t) ->
  'a t
(** [local r0 nr c0 nc i j] is the element at block-relative (i, j) of
    block (r0, nr, c0, nc); [payload_of] extracts the block's data
    slice; [rebuild] reconstructs a block-sized iterator from it. *)

val init : rows:int -> cols:int -> (int -> int -> 'a) -> 'a t
(** From an element function (the paper's [arrayRange] comprehension).
    No serializable source: sequential and local execution only. *)

val of_matrix : Matrix.t -> float t

val outer_product : 'a Iter.t -> 'b Iter.t -> ('a * 'b) t
(** The paper's [outerproduct]: block (r0, nr, c0, nc) needs elements
    [r0, r0+nr) of [a] and [c0, c0+nc) of [b] — exactly what its
    payload carries. *)

val map : ('a -> 'b) -> 'a t -> 'b t

val par : 'a t -> 'a t
val localpar : 'a t -> 'a t
val sequential : 'a t -> 'a t

val build : ?ctx:Exec.t -> float t -> Matrix.t
(** Materialize: sequential fill, row-band parallelism on the pool, or a
    near-square grid of node blocks, each shipped only its input slice
    and blitted back into place. *)

val rows : Matrix.t -> Matrix.view Iter.t
(** The paper's [rows]: a matrix as a 1-D iterator over row views.  Rows
    are contiguous, so a slice's payload is one block copy. *)

val row_segments :
  ?ctx:Exec.t -> Matrix.t -> Triolet_base.Payload.t array
(** Per-node row-block segments of a matrix for residency
    ({!Skeletons.resident_segments} over {!rows}'s slice payloads):
    one segment per cluster worker, in the shape
    {!matrix_of_segment} decodes. *)

val matrix_of_segment : Triolet_base.Payload.t -> Matrix.t
(** Decode one {!row_segments} segment back to a matrix (child-side). *)

val transpose_iter : Matrix.t -> float t
(** Transposition as a 2-D iterator:
    [[A[x,y] for (y,x) in arrayRange((0,0),(h,w))]]. *)

val sum : ?ctx:Exec.t -> float t -> float
(** Reduce to a scalar, distributed over the same block grid as
    {!build}. *)

val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
(** Pointwise combination over the intersection of extents. *)
