(** The stepper encoding: a fusible stream with two faces (paper,
    section 3.1, "Steppers"; push face after the indexed-stream-fusion
    rewrite).

    The {e pull} face is classic Coutts/Leshchinskiy/Stewart stream
    fusion: a suspended loop state plus a step function returning
    [Yield]/[Skip]/[Done].  It is the only face that can interleave two
    streams, so [zip], [take], [find], [equal] and the [Seq] interop
    live on it.  Its cost is one [Yield] block (and often a rebuilt
    state tuple) allocated per element per combinator.

    The {e push} face is the state-machine encoding: a polymorphic fold
    that {e runs} the whole loop, composed once per combinator.  [map]
    becomes a call in the worker, [filter] a branch, [concat_map] a
    nested loop — no step constructors, no per-element state, which is
    what lets the compiler turn a fused pipeline into the loop nest a
    hand-written baseline would contain.  All one-pass consumers
    ([fold], [iter], [to_list], the sums) run on the push face.

    Every combinator maintains both faces, so either consumer style
    works on any stream; combinators that inherently need early exit
    ([zip], [take], [take_while], [of_seq]) derive their push face from
    their own pull face and keep the pull costs. *)

module Fcell = Triolet_base.Fcell

type ('a, 's) step = Yield of 'a * 's | Skip of 's | Done

type 'a push = { push : 'acc. ('acc -> 'a -> 'acc) -> 'acc -> 'acc }
[@@unboxed]

type 'a t = Stepper : 's * ('s -> ('a, 's) step) * 'a push -> 'a t

(* Derive a push face by driving a pull face to exhaustion: the
   fallback for streams whose producer is inherently demand-driven. *)
let push_of_pull s0 next =
  {
    push =
      (fun f init ->
        let rec go acc s =
          match next s with
          | Yield (x, s') -> go (f acc x) s'
          | Skip s' -> go acc s'
          | Done -> acc
        in
        go init s0);
  }

let make s0 next push = Stepper (s0, next, push)

let unfold seed next = Stepper (seed, next, push_of_pull seed next)

let empty =
  Stepper ((), (fun () -> Done), { push = (fun _ init -> init) })

(** One-element stepper: [unitStep] in the paper's filter equation. *)
let singleton x =
  Stepper
    ( false,
      (function false -> Yield (x, true) | true -> Done),
      { push = (fun f init -> f init x) } )

(** [guard p x]: the fused [filterStep (unitStep x)] of the paper's
    filter equation in one object — the 0-or-1-element inner stream
    hybrid iterators hang under each outer index of a filtered flat
    indexer. *)
let guard p x =
  Stepper
    ( false,
      (function
      | false -> if p x then Yield (x, true) else Done
      | true -> Done),
      { push = (fun f init -> if p x then f init x else init) } )

let range lo hi =
  Stepper
    ( lo,
      (fun i -> if i >= hi then Done else Yield (i, i + 1)),
      {
        push =
          (fun f init ->
            let rec go acc i = if i >= hi then acc else go (f acc i) (i + 1) in
            go init lo);
      } )

let of_array a =
  let n = Array.length a in
  Stepper
    ( 0,
      (fun i -> if i >= n then Done else Yield (Array.unsafe_get a i, i + 1)),
      {
        push =
          (fun f init ->
            let rec go acc i =
              if i >= n then acc else go (f acc (Array.unsafe_get a i)) (i + 1)
            in
            go init 0);
      } )

let of_floatarray (a : floatarray) =
  let n = Float.Array.length a in
  Stepper
    ( 0,
      (fun i ->
        if i >= n then Done else Yield (Float.Array.unsafe_get a i, i + 1)),
      {
        push =
          (fun f init ->
            let rec go acc i =
              if i >= n then acc
              else go (f acc (Float.Array.unsafe_get a i)) (i + 1)
            in
            go init 0);
      } )

let of_list l =
  Stepper
    ( l,
      (function [] -> Done | x :: rest -> Yield (x, rest)),
      { push = (fun f init -> List.fold_left f init l) } )

let map g (Stepper (s0, next, p)) =
  let step s =
    match next s with
    | Yield (x, s') -> Yield (g x, s')
    | Skip s' -> Skip s'
    | Done -> Done
  in
  Stepper
    (s0, step, { push = (fun f init -> p.push (fun acc x -> f acc (g x)) init) })

(** [filterStep] of the paper: on the pull face dropped elements become
    [Skip]s; on the push face they are a branch in the worker. *)
let filter p (Stepper (s0, next, pu)) =
  let step s =
    match next s with
    | Yield (x, s') -> if p x then Yield (x, s') else Skip s'
    | Skip s' -> Skip s'
    | Done -> Done
  in
  Stepper
    ( s0,
      step,
      {
        push =
          (fun f init ->
            pu.push (fun acc x -> if p x then f acc x else acc) init);
      } )

let filter_map g (Stepper (s0, next, pu)) =
  let step s =
    match next s with
    | Yield (x, s') -> (
        match g x with Some y -> Yield (y, s') | None -> Skip s')
    | Skip s' -> Skip s'
    | Done -> Done
  in
  Stepper
    ( s0,
      step,
      {
        push =
          (fun f init ->
            pu.push
              (fun acc x ->
                match g x with Some y -> f acc y | None -> acc)
              init);
      } )

(** Zip is inherently pull: it proceeds by holding at most one pending
    element from the left stream while the right stream catches up.
    [zip_with] applies [f] directly to the pair of pending elements, so
    no intermediate tuple is built. *)
let zip_with f (Stepper (sa0, na, _)) (Stepper (sb0, nb, _)) =
  let step (sa, sb, pending) =
    match pending with
    | None -> (
        match na sa with
        | Yield (a, sa') -> Skip (sa', sb, Some a)
        | Skip sa' -> Skip (sa', sb, None)
        | Done -> Done)
    | Some a -> (
        match nb sb with
        | Yield (b, sb') -> Yield (f a b, (sa, sb', None))
        | Skip sb' -> Skip (sa, sb', Some a)
        | Done -> Done)
  in
  let s0 = (sa0, sb0, None) in
  Stepper (s0, step, push_of_pull s0 step)

let zip a b = zip_with (fun x y -> (x, y)) a b

let enumerate (Stepper (s0, next, pu)) =
  let step (i, s) =
    match next s with
    | Yield (x, s') -> Yield ((i, x), (i + 1, s'))
    | Skip s' -> Skip (i, s')
    | Done -> Done
  in
  Stepper
    ( (0, s0),
      step,
      {
        push =
          (fun f init ->
            let i = ref (-1) in
            pu.push
              (fun acc x ->
                incr i;
                f acc (!i, x))
              init);
      } )

let append (Stepper (sa0, na, pa)) (Stepper (sb0, nb, pb)) =
  let step = function
    | `Left (sa, sb) -> (
        match na sa with
        | Yield (x, sa') -> Yield (x, `Left (sa', sb))
        | Skip sa' -> Skip (`Left (sa', sb))
        | Done -> Skip (`Right sb))
    | `Right sb -> (
        match nb sb with
        | Yield (x, sb') -> Yield (x, `Right sb')
        | Skip sb' -> Skip (`Right sb')
        | Done -> Done)
  in
  Stepper
    ( `Left (sa0, sb0),
      step,
      { push = (fun f init -> pb.push f (pa.push f init)) } )

(** Nested traversal.  Pull face: the state carries the suspended inner
    stepper.  Push face: the inner stream's own push loop runs inside
    the outer worker — a clean nested loop, the encoding's whole
    point. *)
let concat_map g (Stepper (s0, next, pu)) =
  let step (s, inner) =
    match inner with
    | Some (Stepper (is, inext, ipush)) -> (
        match inext is with
        | Yield (x, is') -> Yield (x, (s, Some (Stepper (is', inext, ipush))))
        | Skip is' -> Skip (s, Some (Stepper (is', inext, ipush)))
        | Done -> Skip (s, None))
    | None -> (
        match next s with
        | Yield (x, s') -> Skip (s', Some (g x))
        | Skip s' -> Skip (s', None)
        | Done -> Done)
  in
  Stepper
    ( (s0, None),
      step,
      {
        push =
          (fun f init ->
            pu.push
              (fun acc x ->
                let (Stepper (_, _, ip)) = g x in
                ip.push f acc)
              init);
      } )

let concat ss = concat_map (fun s -> s) ss

let take n (Stepper (s0, next, _)) =
  let step (k, s) =
    if k >= n then Done
    else
      match next s with
      | Yield (x, s') -> Yield (x, (k + 1, s'))
      | Skip s' -> Skip (k, s')
      | Done -> Done
  in
  let t0 = (0, s0) in
  Stepper (t0, step, push_of_pull t0 step)

let drop n (Stepper (s0, next, pu)) =
  let step (k, s) =
    match next s with
    | Yield (x, s') -> if k < n then Skip (k + 1, s') else Yield (x, (k, s'))
    | Skip s' -> Skip (k, s')
    | Done -> Done
  in
  Stepper
    ( (0, s0),
      step,
      {
        push =
          (fun f init ->
            let k = ref 0 in
            pu.push
              (fun acc x ->
                if !k < n then begin
                  incr k;
                  acc
                end
                else f acc x)
              init);
      } )

let fold f init (Stepper (_, _, p)) = p.push f init

let iter f (Stepper (_, _, p)) = p.push (fun () x -> f x) ()

let length st = fold (fun n _ -> n + 1) 0 st

let to_list st = List.rev (fold (fun acc x -> x :: acc) [] st)

let to_vec dummy st =
  let v = Triolet_base.Vec.create dummy in
  iter (Triolet_base.Vec.push v) st;
  v

(* Reductions whose accumulator is a float use an {!Fcell}: its field
   is unboxed storage, so the running value never round trips through
   the heap the way a polymorphic fold accumulator does. *)
let sum_float st =
  let acc = Fcell.make 0.0 in
  iter (fun x -> acc.Fcell.v <- acc.Fcell.v +. x) st;
  acc.Fcell.v

let sum_int st = fold (fun acc x -> acc + x) 0 st

let take_while p (Stepper (s0, next, _)) =
  let step s =
    match next s with
    | Yield (x, s') -> if p x then Yield (x, s') else Done
    | Skip s' -> Skip s'
    | Done -> Done
  in
  Stepper (s0, step, push_of_pull s0 step)

let drop_while p (Stepper (s0, next, pu)) =
  let step (dropping, s) =
    match next s with
    | Yield (x, s') ->
        if dropping && p x then Skip (true, s') else Yield (x, (false, s'))
    | Skip s' -> Skip (dropping, s')
    | Done -> Done
  in
  Stepper
    ( (true, s0),
      step,
      {
        push =
          (fun f init ->
            let dropping = ref true in
            pu.push
              (fun acc x ->
                if !dropping && p x then acc
                else begin
                  dropping := false;
                  f acc x
                end)
              init);
      } )

(** Prefix sums: yields the running accumulator after each element. *)
let scan f init (Stepper (s0, next, pu)) =
  let step (acc, s) =
    match next s with
    | Yield (x, s') ->
        let acc' = f acc x in
        Yield (acc', (acc', s'))
    | Skip s' -> Skip (acc, s')
    | Done -> Done
  in
  Stepper
    ( (init, s0),
      step,
      {
        push =
          (fun f2 init2 ->
            let cur = ref init in
            pu.push
              (fun acc x ->
                cur := f !cur x;
                f2 acc !cur)
              init2);
      } )

let exists p st = fold (fun found x -> found || p x) false st

let for_all p st = fold (fun ok x -> ok && p x) true st

let find p (Stepper (s0, next, _)) =
  let rec loop s =
    match next s with
    | Yield (x, s') -> if p x then Some x else loop s'
    | Skip s' -> loop s'
    | Done -> None
  in
  loop s0

let min_float st =
  let m = Fcell.make Float.infinity in
  iter (fun x -> if x < m.Fcell.v then m.Fcell.v <- x) st;
  m.Fcell.v

let max_float st =
  let m = Fcell.make Float.neg_infinity in
  iter (fun x -> if x > m.Fcell.v then m.Fcell.v <- x) st;
  m.Fcell.v

let equal eq a b =
  let rec loop (Stepper (sa, na, pa)) (Stepper (sb, nb, pb)) =
    let rec advance s next =
      match next s with
      | Yield (x, s') -> Some (x, s')
      | Skip s' -> advance s' next
      | Done -> None
    in
    match (advance sa na, advance sb nb) with
    | None, None -> true
    | Some (x, sa'), Some (y, sb') ->
        eq x y && loop (Stepper (sa', na, pa)) (Stepper (sb', nb, pb))
    | None, Some _ | Some _, None -> false
  in
  loop a b

(** Interop with the standard library's [Seq]: a stepper steps an
    on-demand [Seq.t] node by node. *)
let of_seq (seq : 'a Seq.t) =
  let step s =
    match s () with Seq.Nil -> Done | Seq.Cons (x, rest) -> Yield (x, rest)
  in
  Stepper (seq, step, push_of_pull seq step)

let to_seq (Stepper (s0, next, _)) =
  let rec walk s () =
    match next s with
    | Yield (x, s') -> Seq.Cons (x, walk s')
    | Skip s' -> walk s' ()
    | Done -> Seq.Nil
  in
  walk s0
