(** User-facing Triolet iterators.

    An ['a t] represents a lazily evaluated parallel loop: a count of
    outer tasks, a way to build the loop nest for any outer sub-range
    *in place* (zero copy, used for sequential and shared-memory
    execution), and a way to *extract and rebuild* the data slice any
    sub-range needs (used for distributed execution — paper, section
    3.5).  Transformations compose both paths, so arbitrary pipelines
    of [map]/[filter]/[concat_map]/[zip] stay fused and partitionable.

    Consumers ([sum], [reduce], [histogram], [scatter_add],
    [collect_floats], ...) inspect the iterator's parallelism hint, set
    by [par] and [localpar], and dispatch to sequential loops, the
    work-stealing pool, or the two-level cluster runtime. *)

module Payload = Triolet_base.Payload
module Codec = Triolet_base.Codec

type hint = Sequential | Local | Distributed

type 'a t = {
  hint : hint;
  len : int;  (** number of outer tasks *)
  local : int -> int -> 'a Seq_iter.t;
      (** [local off n] : in-place loop nest for outer range [off, off+n) *)
  width : int;  (** number of payload buffers this iterator contributes *)
  payload_of : int -> int -> Payload.t;
      (** [payload_of off n] : extracted data slice for that range *)
  rebuild : Payload.t -> 'a t;
      (** rebuild an iterator over a shipped slice (always [Local]) *)
}

let hint t = t.hint
let length t = t.len

(** Escape hatch for substrate libraries ([Matrix.rows], [Iter2]) that
    define their own sliceable sources. *)
let make ~len ~local ~width ~payload_of ~rebuild =
  { hint = Sequential; len; local; width; payload_of; rebuild }

let no_payload name _ _ =
  invalid_arg
    (Printf.sprintf
       "Iter: %s has no serializable source; distributed execution needs one"
       name)

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)

let rec of_floatarray (a : floatarray) =
  {
    hint = Sequential;
    len = Float.Array.length a;
    local =
      (fun off n ->
        Seq_iter.of_indexer (Indexer.slice (Indexer.of_floatarray a) off n));
    width = 1;
    payload_of = (fun off n -> [ Payload.Floats (Float.Array.sub a off n) ]);
    rebuild =
      (fun p ->
        match p with
        | [ b ] -> { (of_floatarray (Payload.floats_exn b)) with hint = Local }
        | _ -> invalid_arg "Iter.of_floatarray: bad payload");
  }

let rec of_int_array (a : int array) =
  {
    hint = Sequential;
    len = Array.length a;
    local =
      (fun off n ->
        Seq_iter.of_indexer (Indexer.slice (Indexer.of_array a) off n));
    width = 1;
    payload_of = (fun off n -> [ Payload.Ints (Array.sub a off n) ]);
    rebuild =
      (fun p ->
        match p with
        | [ b ] -> { (of_int_array (Payload.ints_exn b)) with hint = Local }
        | _ -> invalid_arg "Iter.of_int_array: bad payload");
  }

(** Generic boxed array.  A [codec] is required only if the iterator is
    consumed with distributed parallelism. *)
let of_array ?codec (a : 'a array) =
  let rec build (a : 'a array) =
    {
      hint = Sequential;
      len = Array.length a;
      local =
        (fun off n ->
          Seq_iter.of_indexer (Indexer.slice (Indexer.of_array a) off n));
      width = 1;
      payload_of =
        (fun off n ->
          match codec with
          | None -> no_payload "of_array (no codec)" off n
          | Some c ->
              [
                Payload.Raw
                  (Bytes.unsafe_to_string
                     (Codec.to_bytes (Codec.array c) (Array.sub a off n)));
              ]);
      rebuild =
        (fun p ->
          match (p, codec) with
          | [ b ], Some c ->
              let sub =
                Codec.of_bytes (Codec.array c)
                  (Bytes.unsafe_of_string (Payload.raw_exn b))
              in
              { (build sub) with hint = Local }
          | _ -> invalid_arg "Iter.of_array: bad payload");
    }
  in
  build a

(** Boxed list source: materialized to an array once (lists have no
    random access), then behaves like {!of_array}. *)
let of_list ?codec l = of_array ?codec (Array.of_list l)

(** Iterator over the integers [lo, hi). *)
let rec range lo hi =
  if hi < lo then invalid_arg "Iter.range";
  {
    hint = Sequential;
    len = hi - lo;
    local = (fun off n -> Seq_iter.range (lo + off) (lo + off + n));
    width = 1;
    payload_of = (fun off n -> [ Payload.Ints [| lo + off; lo + off + n |] ]);
    rebuild =
      (fun p ->
        match p with
        | [ b ] ->
            let bounds = Payload.ints_exn b in
            { (range bounds.(0) bounds.(1)) with hint = Local }
        | _ -> invalid_arg "Iter.range: bad payload");
  }

(** [indices it] are the outer indices of [it]: the paper's
    [indices(domain(rand))]. *)
let indices t = range 0 t.len

(* ------------------------------------------------------------------ *)
(* Transformations (fused: nothing is materialized)                    *)

let rec map f t =
  {
    t with
    local = (fun off n -> Seq_iter.map f (t.local off n));
    rebuild = (fun p -> map f (t.rebuild p));
  }

let rec filter p t =
  {
    t with
    local = (fun off n -> Seq_iter.filter p (t.local off n));
    rebuild = (fun pl -> filter p (t.rebuild pl));
  }

(** Nested traversal: [f] produces the inner loop for each element as a
    {!Seq_iter.t}; the result is irregular but the outer loop stays
    partitionable. *)
let rec concat_map f t =
  {
    hint = t.hint;
    len = t.len;
    local = (fun off n -> Seq_iter.concat_map f (t.local off n));
    width = t.width;
    payload_of = t.payload_of;
    rebuild = (fun p -> concat_map f (t.rebuild p));
  }

let split_payload w p =
  let rec take k l =
    if k = 0 then ([], l)
    else
      match l with
      | [] -> invalid_arg "Iter: payload too short"
      | x :: rest ->
          let a, b = take (k - 1) rest in
          (x :: a, b)
  in
  take w p

let rec zip a b =
  let len = min a.len b.len in
  {
    hint =
      (match (a.hint, b.hint) with
      | Distributed, _ | _, Distributed -> Distributed
      | Local, _ | _, Local -> Local
      | Sequential, Sequential -> Sequential);
    len;
    local = (fun off n -> Seq_iter.zip (a.local off n) (b.local off n));
    width = a.width + b.width;
    payload_of = (fun off n -> a.payload_of off n @ b.payload_of off n);
    rebuild =
      (fun p ->
        let pa, pb = split_payload a.width p in
        zip (a.rebuild pa) (b.rebuild pb));
  }

(** Like [zip] but applies [f] directly to the paired elements, so no
    intermediate tuple is allocated per element on the hot path. *)
let rec zip_with f a b =
  let len = min a.len b.len in
  {
    hint =
      (match (a.hint, b.hint) with
      | Distributed, _ | _, Distributed -> Distributed
      | Local, _ | _, Local -> Local
      | Sequential, Sequential -> Sequential);
    len;
    local = (fun off n -> Seq_iter.zip_with f (a.local off n) (b.local off n));
    width = a.width + b.width;
    payload_of = (fun off n -> a.payload_of off n @ b.payload_of off n);
    rebuild =
      (fun p ->
        let pa, pb = split_payload a.width p in
        zip_with f (a.rebuild pa) (b.rebuild pb));
  }

let zip3 a b c = zip_with (fun x (y, z) -> (x, y, z)) a (zip b c)

let enumerate t = zip (indices t) t

(* ------------------------------------------------------------------ *)
(* Parallelism hints                                                   *)

(** Use all available parallelism: distribute across nodes, then across
    cores within each node. *)
let par t = { t with hint = Distributed }

(** Shared-memory parallelism on a single node only. *)
let localpar t = { t with hint = Local }

let sequential t = { t with hint = Sequential }

(* ------------------------------------------------------------------ *)
(* Consumers                                                           *)

(* Generic reduction skeleton: dispatch on the hint.  The execution
   context is resolved once here and passed explicitly below; the
   [node_work] closure captures it by value, so it crosses a [fork]
   intact under the process backend. *)
let run_reduce ?ctx ~result_codec ~of_chunk ~merge ~init t =
  let ctx = Exec.resolve ctx in
  match t.hint with
  | Sequential -> if t.len = 0 then init else merge init (of_chunk (t.local 0 t.len))
  | Local ->
      Skeletons.local_reduce ~ctx ~len:t.len
        ~chunk:(fun off n -> of_chunk (t.local off n))
        ~merge ~init ()
  | Distributed ->
      Skeletons.distributed_reduce ~ctx ~len:t.len ~payload_of:t.payload_of
        ~node_work:(fun ~pool payload ->
          let sub = t.rebuild payload in
          Skeletons.local_reduce_with ~ctx pool ~len:sub.len
            ~chunk:(fun off n -> of_chunk (sub.local off n))
            ~merge ~init)
        ~result_codec ~merge ~init ()

let sum ?ctx (t : float t) =
  run_reduce ?ctx ~result_codec:Codec.float ~of_chunk:Seq_iter.sum_float
    ~merge:( +. ) ~init:0.0 t

let sum_int ?ctx (t : int t) =
  run_reduce ?ctx ~result_codec:Codec.int ~of_chunk:Seq_iter.sum_int
    ~merge:( + ) ~init:0 t

let count ?ctx t =
  run_reduce ?ctx ~result_codec:Codec.int ~of_chunk:Seq_iter.length
    ~merge:( + ) ~init:0 t

(** General reduction.  [codec] is only exercised under distributed
    execution (results cross a node boundary). *)
let reduce ?ctx ~codec ~merge ~init t =
  run_reduce ?ctx ~result_codec:codec
    ~of_chunk:(fun si -> Seq_iter.fold merge init si)
    ~merge ~init t

let array_add a b =
  if Array.length a <> Array.length b then invalid_arg "Iter: histogram merge";
  Array.mapi (fun i x -> x + b.(i)) a

let floatarray_add a b =
  if Float.Array.length a <> Float.Array.length b then
    invalid_arg "Iter: scatter merge";
  Float.Array.mapi (fun i x -> x +. Float.Array.get b i) a

(** Counting histogram of bin indices: each task builds a private
    histogram; histograms are added within each node and once more
    across nodes — the paper's distributed histogram strategy. *)
let histogram ?ctx ~bins (t : int t) =
  run_reduce ?ctx ~result_codec:Codec.int_array
    ~of_chunk:(fun si -> Collector.histogram ~bins (Seq_iter.collect si))
    ~merge:array_add ~init:(Array.make bins 0) t

(** Floating-point scatter-add over (index, weight) pairs: cutcp's
    "floating-point histogram". *)
let scatter_add ?ctx ~size (t : (int * float) t) =
  run_reduce ?ctx ~result_codec:Codec.floatarray
    ~of_chunk:(fun si ->
      Collector.weighted_histogram ~bins:size (Seq_iter.collect si))
    ~merge:floatarray_add
    ~init:(Float.Array.make size 0.0) t

let floatarray_concat parts =
  let total = Array.fold_left (fun n a -> n + Float.Array.length a) 0 parts in
  let out = Float.Array.make total 0.0 in
  let pos = ref 0 in
  Array.iter
    (fun a ->
      Float.Array.blit a 0 out !pos (Float.Array.length a);
      pos := !pos + Float.Array.length a)
    parts;
  out

(** Pack the (possibly variable-length) float results into a contiguous
    array, preserving iteration order. *)
let collect_floats ?ctx (t : float t) =
  let ctx = Exec.resolve ctx in
  match t.hint with
  | Sequential -> Seq_iter.to_floatarray (t.local 0 t.len)
  | Local ->
      floatarray_concat
        (Skeletons.local_map_chunks ~ctx ~len:t.len
           ~chunk:(fun off n -> Seq_iter.to_floatarray (t.local off n))
           ())
  | Distributed ->
      let parts =
        Skeletons.distributed_map_blocks ~ctx
          ~blocks:
            (Triolet_runtime.Partition.blocks ~parts:ctx.Exec.nodes t.len)
          ~payload_of:(fun (off, n) -> t.payload_of off n)
          ~node_work:(fun ~pool payload ->
            let sub = t.rebuild payload in
            floatarray_concat
              (Skeletons.local_map_chunks_with ~ctx pool ~len:sub.len
                 ~chunk:(fun off n -> Seq_iter.to_floatarray (sub.local off n))))
          ~result_codec:Codec.floatarray ()
      in
      floatarray_concat parts

(** Like {!collect_floats} for (float, float) element pairs, packing the
    two components into separate arrays (e.g. the real and imaginary
    sums of mri-q). *)
let collect_float_pairs ?ctx (t : (float * float) t) =
  let ctx = Exec.resolve ctx in
  let chunk_to_pair si =
    let a = Triolet_base.Vec.create 0.0 and b = Triolet_base.Vec.create 0.0 in
    Seq_iter.iter
      (fun (x, y) ->
        Triolet_base.Vec.push a x;
        Triolet_base.Vec.push b y)
      si;
    let pack v =
      Float.Array.init (Triolet_base.Vec.length v) (Triolet_base.Vec.get v)
    in
    (pack a, pack b)
  in
  let concat_pairs parts =
    ( floatarray_concat (Array.map fst parts),
      floatarray_concat (Array.map snd parts) )
  in
  match t.hint with
  | Sequential -> chunk_to_pair (t.local 0 t.len)
  | Local ->
      concat_pairs
        (Skeletons.local_map_chunks ~ctx ~len:t.len
           ~chunk:(fun off n -> chunk_to_pair (t.local off n))
           ())
  | Distributed ->
      let parts =
        Skeletons.distributed_map_blocks ~ctx
          ~blocks:
            (Triolet_runtime.Partition.blocks ~parts:ctx.Exec.nodes t.len)
          ~payload_of:(fun (off, n) -> t.payload_of off n)
          ~node_work:(fun ~pool payload ->
            let sub = t.rebuild payload in
            concat_pairs
              (Skeletons.local_map_chunks_with ~ctx pool ~len:sub.len
                 ~chunk:(fun off n -> chunk_to_pair (sub.local off n))))
          ~result_codec:(Codec.pair Codec.floatarray Codec.floatarray) ()
      in
      concat_pairs parts

(* Sequential-only conveniences. *)

let to_seq_iter t = t.local 0 t.len

let to_list t = Seq_iter.to_list (to_seq_iter t)

let iter f t = Seq_iter.iter f (to_seq_iter t)

let fold f init t = Seq_iter.fold f init (to_seq_iter t)

(* ------------------------------------------------------------------ *)
(* Extended transformations and consumers                              *)

(** [sub ~off ~len t]: the outer sub-range [off, off+len) of [t] as an
    iterator in its own right — data slicing composes, so a sub-range
    of a sliceable iterator is still sliceable. *)
let sub ~off ~len t =
  if off < 0 || len < 0 || off + len > t.len then invalid_arg "Iter.sub";
  {
    t with
    len;
    local = (fun o n -> t.local (off + o) n);
    payload_of = (fun o n -> t.payload_of (off + o) n);
  }

let rec filter_map f t =
  {
    hint = t.hint;
    len = t.len;
    local = (fun off n -> Seq_iter.filter_map f (t.local off n));
    width = t.width;
    payload_of = t.payload_of;
    rebuild = (fun p -> filter_map f (t.rebuild p));
  }

let min_float ?ctx t =
  run_reduce ?ctx ~result_codec:Codec.float ~of_chunk:Seq_iter.min_float
    ~merge:Float.min ~init:Float.infinity t

let max_float ?ctx t =
  run_reduce ?ctx ~result_codec:Codec.float ~of_chunk:Seq_iter.max_float
    ~merge:Float.max ~init:Float.neg_infinity t

(** Arithmetic mean; [nan] on empty input. *)
let mean ?ctx t =
  let sum, n =
    run_reduce ?ctx
      ~result_codec:(Codec.pair Codec.float Codec.int)
      ~of_chunk:(fun si ->
        Seq_iter.fold (fun (s, n) x -> (s +. x, n + 1)) (0.0, 0) si)
      ~merge:(fun (s1, n1) (s2, n2) -> (s1 +. s2, n1 + n2))
      ~init:(0.0, 0) t
  in
  if n = 0 then Float.nan else sum /. float_of_int n

let exists ?ctx p t =
  run_reduce ?ctx ~result_codec:Codec.bool
    ~of_chunk:(fun si -> Seq_iter.exists p si)
    ~merge:( || ) ~init:false t

let for_all ?ctx p t =
  run_reduce ?ctx ~result_codec:Codec.bool
    ~of_chunk:(fun si -> Seq_iter.for_all p si)
    ~merge:( && ) ~init:true t
