(** Hybrid iterators: the paper's core representation (section 3.2).

    An iterator is a loop nest with an indexer or stepper at each
    nesting level:

    - [Idx_flat]  — flat random-access loop (parallelizable);
    - [Step_flat] — flat sequential stream;
    - [Idx_nest]  — random-access outer loop of inner iterators
                    (parallelizable outer, irregular inner);
    - [Step_nest] — sequential outer loop of inner iterators.

    [filter] and [concat_map] on an [Idx_flat] produce an [Idx_nest]
    rather than reassigning indices: each input index yields a short
    (possibly empty) inner stream, so irregularity is isolated in inner
    loops while the outer loop stays partitionable — exactly the
    sum-of-filter strategy of section 3.2.  Every function below is one
    of the equations in Figure 2 of the paper (plus [map], [fold] and
    friends in the same style). *)

module Fcell = Triolet_base.Fcell

type 'a t =
  | Idx_flat of (int, 'a) Indexer.t
  | Step_flat of 'a Stepper.t
  | Idx_nest of (int, 'a t) Indexer.t
  | Step_nest of 'a t Stepper.t

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let empty = Step_flat Stepper.empty

let singleton x = Step_flat (Stepper.singleton x)

let of_indexer ix = Idx_flat ix

let of_stepper st = Step_flat st

let of_array a = Idx_flat (Indexer.of_array a)

let of_floatarray a = Idx_flat (Indexer.of_floatarray a)

let of_list l = Step_flat (Stepper.of_list l)

let range lo hi = Idx_flat (Indexer.range lo hi)

(* ------------------------------------------------------------------ *)
(* Figure 2 equations                                                  *)

(** [toStep]: demote any iterator to a flat sequential stream. *)
let rec to_stepper : 'a. 'a t -> 'a Stepper.t = function
  | Idx_flat xs -> Indexer.to_stepper xs
  | Step_flat xs -> xs
  | Idx_nest xss ->
      Stepper.concat_map to_stepper (Indexer.to_stepper xss)
  | Step_nest xss -> Stepper.concat_map to_stepper xss

(** [zip]: two flat indexers zip by index, preserving parallelism; any
    other combination involves variable-length output and must be
    zipped sequentially through steppers. *)
let zip a b =
  match (a, b) with
  | Idx_flat xs, Idx_flat ys -> Idx_flat (Indexer.zip xs ys)
  | _ -> Step_flat (Stepper.zip (to_stepper a) (to_stepper b))

let zip_with f a b =
  match (a, b) with
  | Idx_flat xs, Idx_flat ys -> Idx_flat (Indexer.zip_with f xs ys)
  | _ -> Step_flat (Stepper.zip_with f (to_stepper a) (to_stepper b))

let rec map : 'a 'b. ('a -> 'b) -> 'a t -> 'b t =
 fun f -> function
  | Idx_flat xs -> Idx_flat (Indexer.map f xs)
  | Step_flat xs -> Step_flat (Stepper.map f xs)
  | Idx_nest xss -> Idx_nest (Indexer.map (map f) xss)
  | Step_nest xss -> Step_nest (Stepper.map (map f) xss)

(** [filter]: on a flat indexer, each element becomes a 0-or-1-element
    stepper under an unchanged outer index — variable-length output
    without index reassignment. *)
let rec filter : 'a. ('a -> bool) -> 'a t -> 'a t =
 fun p -> function
  | Idx_flat xs ->
      Idx_nest (Indexer.map (fun x -> Step_flat (Stepper.guard p x)) xs)
  | Step_flat xs -> Step_flat (Stepper.filter p xs)
  | Idx_nest xss -> Idx_nest (Indexer.map (filter p) xss)
  | Step_nest xss -> Step_nest (Stepper.map (filter p) xss)

(** [concatMap]: adds one level of nesting, keeping the outer loop's
    encoding (and hence its parallelizability). *)
let rec concat_map : 'a 'b. ('a -> 'b t) -> 'a t -> 'b t =
 fun f -> function
  | Idx_flat xs -> Idx_nest (Indexer.map f xs)
  | Step_flat xs -> Step_nest (Stepper.map f xs)
  | Idx_nest xss -> Idx_nest (Indexer.map (concat_map f) xss)
  | Step_nest xss -> Step_nest (Stepper.map (concat_map f) xss)

(** [fold] in the style of Figure 2's [sum]: each level of nesting turns
    into one loop. *)
let rec fold : 'a 'acc. ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc =
 fun f init -> function
  | Idx_flat xs -> Indexer.fold f init xs
  | Step_flat xs -> Stepper.fold f init xs
  | Idx_nest xss -> Indexer.fold (fun acc it -> fold f acc it) init xss
  | Step_nest xss -> Stepper.fold (fun acc it -> fold f acc it) init xss

let sum_int it = fold ( + ) 0 it

(** Side-effecting traversal gets its own recursion rather than a
    unit-accumulator [fold]: it is the consumer under every
    [collect]-routed kernel.  The unit-fold wrappers are allocated once
    per traversal and reused at every level — a filtered flat indexer
    holds one [Step_flat] leaf per outer index, so building a wrapper
    per leaf (as [Stepper.iter] would) costs an allocation per element
    of the original loop. *)
let iter : 'a. ('a -> unit) -> 'a t -> unit =
 fun f t ->
  let pf () x = f x in
  let rec go = function
    | Idx_flat xs -> Indexer.iter f xs
    | Step_flat xs -> Stepper.fold pf () xs
    | Idx_nest xss -> Indexer.iter go xss
    | Step_nest xss -> Stepper.fold go_u () xss
  and go_u () it = go it in
  go t

(* Float reductions accumulate through an {!Fcell} (unboxed float
   field) so the running value never touches the heap, no matter how
   deep the nest; the flat random-access leaf — the hot inner loop of
   every dot-product-shaped reduction — runs as a direct counted loop
   over the lookup function. *)
let sum_float it =
  let acc = Fcell.make 0.0 in
  let add () x = acc.Fcell.v <- acc.Fcell.v +. x in
  let rec go : float t -> unit = function
    | Idx_flat ix -> (
        match ix.Indexer.shape with
        | Shape.Seq n ->
            let get = ix.Indexer.get in
            for i = 0 to n - 1 do
              acc.Fcell.v <- acc.Fcell.v +. get i
            done)
    | Step_flat xs -> Stepper.fold add () xs
    | Idx_nest xss -> Indexer.iter go xss
    | Step_nest xss -> Stepper.fold go_u () xss
  and go_u () it = go it in
  go it;
  acc.Fcell.v

(** [collect]: one side-effecting loop nest driven entirely by the push
    faces — a single collector object regardless of nesting depth. *)
let collect it = { Collector.run = (fun k -> iter k it) }

let length it = fold (fun n _ -> n + 1) 0 it

let to_list it = List.rev (fold (fun acc x -> x :: acc) [] it)

let to_vec dummy it =
  let v = Triolet_base.Vec.create dummy in
  iter (Triolet_base.Vec.push v) it;
  v

let to_array dummy it = Triolet_base.Vec.to_array (to_vec dummy it)

let to_floatarray (it : float t) =
  let v = to_vec 0.0 it in
  Float.Array.init (Triolet_base.Vec.length v) (Triolet_base.Vec.get v)

(** First element, if any. *)
let reduce f it =
  fold
    (fun acc x -> match acc with None -> Some x | Some a -> Some (f a x))
    None it

(* ------------------------------------------------------------------ *)
(* Outer-loop structure: what the parallel layer needs to know          *)

(** Number of outer tasks when the outermost level is random-access. *)
let outer_length = function
  | Idx_flat ix -> Some (Indexer.size ix)
  | Idx_nest ix -> Some (Indexer.size ix)
  | Step_flat _ | Step_nest _ -> None

(** Sub-range of the outer loop; only defined for random-access outer
    levels.  This is the work-distribution half of partitioning. *)
let slice_outer it off len =
  match it with
  | Idx_flat ix -> Idx_flat (Indexer.slice ix off len)
  | Idx_nest ix -> Idx_nest (Indexer.slice ix off len)
  | Step_flat _ | Step_nest _ ->
      invalid_arg "Seq_iter.slice_outer: outer loop is not random-access"

let rec filter_map : 'a 'b. ('a -> 'b option) -> 'a t -> 'b t =
 fun f -> function
  | Idx_flat xs ->
      Idx_nest
        (Indexer.map
           (fun x ->
             match f x with Some y -> singleton y | None -> empty)
           xs)
  | Step_flat xs -> Step_flat (Stepper.filter_map f xs)
  | Idx_nest xss -> Idx_nest (Indexer.map (filter_map f) xss)
  | Step_nest xss -> Step_nest (Stepper.map (filter_map f) xss)

(** Concatenation: sequential (stepper-headed), since the combined
    outer loop no longer has a single random-access domain. *)
let append a b =
  Step_nest (Stepper.of_list [ a; b ])

let exists p it = fold (fun found x -> found || p x) false it

let for_all p it = fold (fun ok x -> ok && p x) true it

let find p it = Stepper.find p (to_stepper it)

let min_float it =
  let m = Fcell.make Float.infinity in
  iter (fun x -> if x < m.Fcell.v then m.Fcell.v <- x) it;
  m.Fcell.v

let max_float it =
  let m = Fcell.make Float.neg_infinity in
  iter (fun x -> if x > m.Fcell.v then m.Fcell.v <- x) it;
  m.Fcell.v

(** Monadic syntax: [let*] is [concat_map], so nested comprehensions
    read like the paper's Python/Haskell examples:

    {[
      let open Seq_iter.Let_syntax in
      let* a = Seq_iter.of_array atoms in
      let* r = grid_points a in
      return (f a r)
    ]} *)
module Let_syntax = struct
  let return = singleton
  let ( let* ) it f = concat_map f it
  let ( and* ) a b = zip a b
  let ( let+ ) it f = map f it
  let ( and+ ) a b = zip a b
end

(** Reified loop-nest structure: the plan-level image of an iterator,
    with the element type erased.  The inner structure of a nest is
    sampled from its first outer element (nests may be heterogeneous;
    the first element is representative for library-built iterators).
    This is the reification hook the static plan analyzer builds on:
    it tells the analyzer which levels of a fused pipeline kept
    random access (partitionable) and which degraded to sequential
    streams. *)
type shape =
  | Shape_idx_flat of int
  | Shape_step_flat
  | Shape_idx_nest of int * shape option
  | Shape_step_nest of shape option

let rec shape_of : 'a. 'a t -> shape = function
  | Idx_flat ix -> Shape_idx_flat (Indexer.size ix)
  | Step_flat _ -> Shape_step_flat
  | Idx_nest ix ->
      let inner =
        if Indexer.size ix > 0 then Some (shape_of (Indexer.get ix 0))
        else None
      in
      Shape_idx_nest (Indexer.size ix, inner)
  | Step_nest xss -> (
      match Stepper.find (fun _ -> true) xss with
      | Some first -> Shape_step_nest (Some (shape_of first))
      | None -> Shape_step_nest None)

let rec shape_to_string = function
  | Shape_idx_flat n -> Printf.sprintf "IdxFlat[%d]" n
  | Shape_step_flat -> "StepFlat"
  | Shape_idx_nest (n, inner) ->
      Printf.sprintf "IdxNest[%d](%s)" n
        (match inner with Some s -> shape_to_string s | None -> "empty")
  | Shape_step_nest inner ->
      Printf.sprintf "StepNest(%s)"
        (match inner with Some s -> shape_to_string s | None -> "empty")

(** Human-readable description of the loop-nest structure, e.g.
    ["IdxNest[6](StepFlat)"] for a filtered flat indexer. *)
let describe it = shape_to_string (shape_of it)

let of_seq seq = Step_flat (Stepper.of_seq seq)

let to_seq it = Stepper.to_seq (to_stepper it)
