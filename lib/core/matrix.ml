(** Dense row-major matrices over unboxed float arrays.

    The paper's kernels store data in flat unboxed arrays and get
    slices of whole rows shipped to tasks; a row of a row-major matrix
    is a contiguous run of the backing [floatarray], so extracting a
    block of rows is one block copy. *)

type t = { rows : int; cols : int; data : floatarray }

(** Lightweight window into a row (or any contiguous run). *)
type view = { vdata : floatarray; voff : int; vlen : int }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.create";
  { rows; cols; data = Float.Array.make (rows * cols) 0.0 }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      Float.Array.unsafe_set m.data ((i * cols) + j) (f i j)
    done
  done;
  m

let of_floatarray ~rows ~cols data =
  if Float.Array.length data <> rows * cols then
    invalid_arg "Matrix.of_floatarray: size mismatch";
  { rows; cols; data }

let rows m = m.rows
let cols m = m.cols
let data m = m.data

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.get";
  Float.Array.unsafe_get m.data ((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Matrix.set";
  Float.Array.unsafe_set m.data ((i * m.cols) + j) v

let unsafe_get m i j = Float.Array.unsafe_get m.data ((i * m.cols) + j)
let unsafe_set m i j v = Float.Array.unsafe_set m.data ((i * m.cols) + j) v

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.row";
  { vdata = m.data; voff = i * m.cols; vlen = m.cols }

let view_get v i =
  if i < 0 || i >= v.vlen then invalid_arg "Matrix.view_get";
  Float.Array.unsafe_get v.vdata (v.voff + i)

let view_len v = v.vlen

let view_unsafe_get v i = Float.Array.unsafe_get v.vdata (v.voff + i)

(** Dot product of two views: the sequential inner kernel of sgemm. *)
let view_dot u v =
  if u.vlen <> v.vlen then invalid_arg "Matrix.view_dot";
  let acc = ref 0.0 in
  for i = 0 to u.vlen - 1 do
    acc :=
      !acc
      +. Float.Array.unsafe_get u.vdata (u.voff + i)
         *. Float.Array.unsafe_get v.vdata (v.voff + i)
  done;
  !acc

(** Contiguous block copy of rows [r0, r0+nr): one blit, as in the
    paper's block-copy serialization of subarrays. *)
let copy_rows m r0 nr =
  if r0 < 0 || nr < 0 || r0 + nr > m.rows then invalid_arg "Matrix.copy_rows";
  let out = Float.Array.make (nr * m.cols) 0.0 in
  Float.Array.blit m.data (r0 * m.cols) out 0 (nr * m.cols);
  { rows = nr; cols = m.cols; data = out }

(** Write block [src] into [dst] at (r0, c0). *)
let blit_block ~src ~dst ~r0 ~c0 =
  if r0 + src.rows > dst.rows || c0 + src.cols > dst.cols then
    invalid_arg "Matrix.blit_block";
  for i = 0 to src.rows - 1 do
    Float.Array.blit src.data (i * src.cols) dst.data
      (((r0 + i) * dst.cols) + c0)
      src.cols
  done

(** Sequential transpose. *)
let transpose m =
  let out = create m.cols m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      Float.Array.unsafe_set out.data ((j * m.rows) + i)
        (Float.Array.unsafe_get m.data ((i * m.cols) + j))
    done
  done;
  out

(** Transpose parallelized over shared memory — the paper parallelizes
    sgemm's transposition with [localpar] because it does too little
    work per byte to profit from distribution (section 4.3). *)
let transpose_par pool m =
  let out = create m.cols m.rows in
  Triolet_runtime.Pool.parallel_range pool ~lo:0 ~hi:m.rows
    ~f:(fun r0 nr ->
      for i = r0 to r0 + nr - 1 do
        for j = 0 to m.cols - 1 do
          Float.Array.unsafe_set out.data ((j * m.rows) + i)
            (Float.Array.unsafe_get m.data ((i * m.cols) + j))
        done
      done)
    ~merge:(fun () () -> ())
    ~init:() ();
  out

let equal_eps ~eps a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for k = 0 to Float.Array.length a.data - 1 do
    let x = Float.Array.get a.data k and y = Float.Array.get b.data k in
    let scale = max 1.0 (max (Float.abs x) (Float.abs y)) in
    if Float.abs (x -. y) > eps *. scale then ok := false
  done;
  !ok

(** Reference triple-loop product (with transposed [bt]). *)
let mul_ref ~alpha a bt =
  if cols a <> cols bt then invalid_arg "Matrix.mul_ref";
  init (rows a) (rows bt) (fun i j -> alpha *. view_dot (row a i) (row bt j))

let random rng rows cols lo hi =
  init rows cols (fun _ _ -> Triolet_base.Rng.float_range rng lo hi)
