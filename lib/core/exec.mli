(** Immutable execution contexts: where and how skeletons run.

    One record carries cluster geometry, transport
    {!Triolet_runtime.Cluster.backend}, fault plan and grain policy.
    Iterator consumers and skeletons take it as [?ctx]; omitted, they
    use the ambient context.  Kernel entry points resolve through
    {!for_kernel}, which also consults the checked-in auto-mapping file
    ({!Mapping}) — precedence [?ctx] > explicit ambient > environment >
    mapping > {!default}. *)

type t = {
  nodes : int;  (** simulated cluster nodes *)
  cores_per_node : int;  (** cores (pool width) within each node *)
  backend : Triolet_runtime.Cluster.backend;
      (** transport realizing the geometry *)
  faults : Triolet_runtime.Fault.spec option;
      (** fault-injection plan, if any *)
  grain : int option;  (** scheduler grain override *)
  chunk_multiplier : int;
      (** over-decomposition for pre-chunked local loops *)
  deadline : float option;
      (** per-request compute budget in seconds for the long-lived
          service ({!Triolet_runtime.Service}); [None] = no deadline *)
  queue_bound : int;
      (** service admission-queue high-water mark; requests beyond it
          are rejected [Overloaded] instead of queueing unboundedly *)
  poll_interval : float;
      (** process-backend drain / service event-loop poll in seconds
          (clamped to the fault spec's base timeout where one applies) *)
}

val default : unit -> t
(** 4 nodes x 2 cores, no faults, automatic grain, multiplier 4, no
    deadline, queue bound 64, 10 ms poll.  The backend honours the
    [TRIOLET_BACKEND] environment variable (["inprocess"] | ["flat"] |
    ["process"]); any other non-empty value raises [Invalid_argument]
    naming the valid choices. *)

val make :
  ?nodes:int ->
  ?cores_per_node:int ->
  ?backend:Triolet_runtime.Cluster.backend ->
  ?faults:Triolet_runtime.Fault.spec option ->
  ?grain:int option ->
  ?chunk_multiplier:int ->
  ?deadline:float option ->
  ?queue_bound:int ->
  ?poll_interval:float ->
  unit ->
  t
(** A context derived from {!current}, overriding the given fields.
    Raises [Invalid_argument] on [queue_bound < 1] or a non-positive
    [poll_interval]. *)

val current : unit -> t
(** The ambient context (created from {!default} on first use). *)

val set_ambient : t -> unit
(** Replace the ambient context.  This marks the ambient as explicitly
    chosen, so {!for_kernel} stops consulting the mapping file. *)

val with_context : t -> (unit -> 'a) -> 'a
(** Run the thunk with the given ambient context, restoring the previous
    one (and its explicitness) afterwards — exception-safe, nestable. *)

val resolve : t option -> t
(** [resolve ctx] is [ctx]'s value, or {!current} when [None] — the
    one-liner every [?ctx] consumer starts with. *)

val for_kernel : ?ctx:t -> kernel:string -> size:string -> unit -> t
(** The context a kernel's [run_triolet] should execute under.  An
    explicit [?ctx] wins; otherwise an explicitly installed ambient
    ({!set_ambient} / {!with_context}) wins; otherwise the checked-in
    mapping entry for [(kernel, size)] — with [TRIOLET_BACKEND] still
    overriding the mapped backend — overlaid on {!default}; otherwise
    just {!current}. *)

val topology : t -> Triolet_runtime.Cluster.topology
(** The geometry + backend a [Cluster.run_topology] call needs. *)

val worker_count : t -> int
(** Logical distributed workers this context fans out to. *)

val env_backend : unit -> Triolet_runtime.Cluster.backend option
(** The backend selected by [TRIOLET_BACKEND]; [None] when unset or
    empty.  Raises [Invalid_argument] (listing the valid values) on an
    unrecognized value — a typo must not silently run in-process. *)
