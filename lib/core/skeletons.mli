(** Low-level skeletons: the glue between iterator consumers and the
    runtime (paper, section 3.4).  These know nothing about iterators;
    they distribute abstract chunk ranges and payloads.  [Iter] and
    [Iter2] instantiate them with chunk bodies built from iterators.

    All take an optional {!Exec.t} execution context; omitted, the
    ambient context applies. *)

val seq_pool : unit -> Triolet_runtime.Pool.t
(** Shared 1-wide pool for flat (process-per-core) node execution.
    Thread-safe lazy creation. *)

val local_reduce_with :
  ?ctx:Exec.t ->
  Triolet_runtime.Pool.t ->
  len:int ->
  chunk:(int -> int -> 'r) ->
  merge:('r -> 'r -> 'r) ->
  init:'r ->
  'r
(** Shared-memory parallel reduction over [len] outer iterations on the
    adaptive lazy-splitting scheduler (ranges split on demand, grain
    from the context or auto); per-worker local merging first. *)

val local_reduce :
  ?ctx:Exec.t ->
  len:int ->
  chunk:(int -> int -> 'r) ->
  merge:('r -> 'r -> 'r) ->
  init:'r ->
  unit ->
  'r
(** {!local_reduce_with} on the default pool. *)

val local_map_chunks_with :
  ?ctx:Exec.t ->
  Triolet_runtime.Pool.t ->
  len:int ->
  chunk:(int -> int -> 'r) ->
  'r array
(** Order-preserving chunked map: per-block results in block order, for
    consumers that pack variable-length output. *)

val local_map_chunks :
  ?ctx:Exec.t -> len:int -> chunk:(int -> int -> 'r) -> unit -> 'r array

val distributed_reduce :
  ?ctx:Exec.t ->
  len:int ->
  payload_of:(int -> int -> Triolet_base.Payload.t) ->
  node_work:(pool:Triolet_runtime.Pool.t -> Triolet_base.Payload.t -> 'r) ->
  result_codec:'r Triolet_base.Codec.t ->
  merge:('r -> 'r -> 'r) ->
  init:'r ->
  unit ->
  'r
(** Partition [len] outer iterations across the context's cluster, ship
    each worker its serialized payload slice, run [node_work] against
    the decoded payload with intra-node parallelism, merge the
    serialized replies.  The context's backend chooses the transport;
    under [Process], [node_work] executes in a forked child on the
    child's own pool. *)

val distributed_map_blocks :
  ?ctx:Exec.t ->
  blocks:'blk array ->
  payload_of:('blk -> Triolet_base.Payload.t) ->
  node_work:(pool:Triolet_runtime.Pool.t -> Triolet_base.Payload.t -> 'r) ->
  result_codec:'r Triolet_base.Codec.t ->
  unit ->
  'r array
(** One worker per block; results returned in block order. *)
