(** Low-level skeletons: the glue between iterator consumers and the
    runtime (paper, section 3.4).  These know nothing about iterators;
    they distribute abstract chunk ranges and payloads.  [Iter] and
    [Iter2] instantiate them with chunk bodies built from iterators.

    All take an optional {!Exec.t} execution context; omitted, the
    ambient context applies. *)

val seq_pool : unit -> Triolet_runtime.Pool.t
(** Shared 1-wide pool for flat (process-per-core) node execution.
    Thread-safe lazy creation. *)

val local_reduce_with :
  ?ctx:Exec.t ->
  Triolet_runtime.Pool.t ->
  len:int ->
  chunk:(int -> int -> 'r) ->
  merge:('r -> 'r -> 'r) ->
  init:'r ->
  'r
(** Shared-memory parallel reduction over [len] outer iterations on the
    adaptive lazy-splitting scheduler (ranges split on demand, grain
    from the context or auto); per-worker local merging first. *)

val local_reduce :
  ?ctx:Exec.t ->
  len:int ->
  chunk:(int -> int -> 'r) ->
  merge:('r -> 'r -> 'r) ->
  init:'r ->
  unit ->
  'r
(** {!local_reduce_with} on the default pool. *)

val local_map_chunks_with :
  ?ctx:Exec.t ->
  Triolet_runtime.Pool.t ->
  len:int ->
  chunk:(int -> int -> 'r) ->
  'r array
(** Order-preserving chunked map: per-block results in block order, for
    consumers that pack variable-length output. *)

val local_map_chunks :
  ?ctx:Exec.t -> len:int -> chunk:(int -> int -> 'r) -> unit -> 'r array

val distributed_reduce :
  ?ctx:Exec.t ->
  len:int ->
  payload_of:(int -> int -> Triolet_base.Payload.t) ->
  node_work:(pool:Triolet_runtime.Pool.t -> Triolet_base.Payload.t -> 'r) ->
  result_codec:'r Triolet_base.Codec.t ->
  merge:('r -> 'r -> 'r) ->
  init:'r ->
  unit ->
  'r
(** Partition [len] outer iterations across the context's cluster, ship
    each worker its serialized payload slice, run [node_work] against
    the decoded payload with intra-node parallelism, merge the
    serialized replies.  The context's backend chooses the transport;
    under [Process], [node_work] executes in a forked child on the
    child's own pool. *)

val distributed_map_blocks :
  ?ctx:Exec.t ->
  blocks:'blk array ->
  payload_of:('blk -> Triolet_base.Payload.t) ->
  node_work:(pool:Triolet_runtime.Pool.t -> Triolet_base.Payload.t -> 'r) ->
  result_codec:'r Triolet_base.Codec.t ->
  unit ->
  'r array
(** One worker per block; results returned in block order. *)

(** {1 Resident (persistent) distributed state}

    Iterative skeletons that re-visit the same data every round keep it
    resident in warm per-node children via {!Triolet_runtime.Darray}
    instead of re-shipping it; these wrappers derive the session and
    segment geometry from the execution context so kernels stay on the
    [?ctx] API. *)

val resident_session :
  ?ctx:Exec.t ->
  ?hb_interval:float ->
  ?miss_threshold:int ->
  work:Triolet_runtime.Darray.work ->
  unit ->
  Triolet_runtime.Darray.session
(** Warm resident fabric with topology from the context.  Under the
    [Process] backend this forks the node children — create it before
    any domain is spawned. *)

val resident_blocks : ?ctx:Exec.t -> len:int -> unit -> (int * int) array
(** The [(offset, length)] blocks {!resident_segments} materializes:
    one per resident node, in owner order. *)

val resident_segments :
  ?ctx:Exec.t ->
  len:int ->
  payload_of:(int -> int -> Triolet_base.Payload.t) ->
  unit ->
  Triolet_base.Payload.t array
(** Block [len] one-per-resident-node and materialize each block's
    payload as a {!Triolet_runtime.Darray.create} segment: segment [i]
    is owned by node [i], so replies merge back in segment order. *)

val resident_round :
  Triolet_runtime.Darray.view ->
  arg:(int -> Triolet_base.Payload.t) ->
  merge:('a -> Triolet_base.Payload.t -> 'a) ->
  init:'a ->
  'a * Triolet_runtime.Cluster.report
(** One round over a resident view ({!Triolet_runtime.Darray.run})
    under an observability span. *)
