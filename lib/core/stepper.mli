(** The stepper encoding: a fusible stream with two faces (paper,
    section 3.1, "Steppers").

    The pull face is classic stream fusion in the style of Coutts et
    al.: a suspended loop state plus a step function yielding one
    element per resumption.  Steppers are inherently sequential: only
    the "next" element is reachable, so they cannot be partitioned
    (Figure 1: Parallel = no), but [Skip] makes variable-length
    producers like [filter] fusible.

    Since the indexed-stream-fusion rewrite each stepper also carries a
    push face — a polymorphic fold that runs the whole loop — which
    every one-pass consumer uses.  Pushed pipelines compose into plain
    nested loops with no per-element step constructors; only genuinely
    demand-driven consumers ([zip], [take], [find], [equal], [Seq]
    interop) pay pull-face costs. *)

type ('a, 's) step =
  | Yield of 'a * 's  (** an element and the next state *)
  | Skip of 's  (** no element this step (a filtered-out iteration) *)
  | Done

type 'a push = { push : 'acc. ('acc -> 'a -> 'acc) -> 'acc -> 'acc }
[@@unboxed]
(** The push face: a total fold over the stream's elements.  Must be
    restartable — invoking [push] twice folds the same sequence
    twice. *)

type 'a t
(** A stream carrying both faces. *)

(** {1 Construction} *)

val empty : 'a t
val singleton : 'a -> 'a t
(** One element: [unitStep] in the paper's filter equation. *)

val guard : ('a -> bool) -> 'a -> 'a t
(** [guard p x] is [filter p (singleton x)] fused into one object: the
    0-or-1-element inner stream hybrid iterators hang under each outer
    index of a filtered flat indexer. *)

val make : 's -> ('s -> ('a, 's) step) -> 'a push -> 'a t
(** Build from both faces.  The push face must fold exactly the
    sequence the pull face yields. *)

val unfold : 's -> ('s -> ('a, 's) step) -> 'a t
(** Build from a pull face alone; the push face is derived by driving
    the step function to exhaustion. *)

val range : int -> int -> int t
(** [range lo hi] yields [lo], ..., [hi - 1]. *)

val of_array : 'a array -> 'a t
val of_floatarray : floatarray -> float t
val of_list : 'a list -> 'a t

(** {1 Fusible transformations} *)

val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val filter_map : ('a -> 'b option) -> 'a t -> 'b t

val zip : 'a t -> 'b t -> ('a * 'b) t
(** Holds at most one pending left element while the right stream
    catches up; skips compose.  Inherently pull-driven. *)

val zip_with : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
(** Like [zip] but applies [f] to the pending pair directly — no
    intermediate tuple is built. *)

val enumerate : 'a t -> (int * 'a) t
val append : 'a t -> 'a t -> 'a t

val concat_map : ('a -> 'b t) -> 'a t -> 'b t
(** Nested traversal.  On the pull face the state carries the suspended
    inner stepper (Figure 1's "slow" cell); on the push face the inner
    stream's loop runs inside the outer worker — a clean nested loop. *)

val concat : 'a t t -> 'a t
val take : int -> 'a t -> 'a t
val drop : int -> 'a t -> 'a t

(** {1 Consumers} *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
(** Runs on the push face. *)

val iter : ('a -> unit) -> 'a t -> unit
val length : 'a t -> int
val to_list : 'a t -> 'a list
val to_vec : 'a -> 'a t -> 'a Triolet_base.Vec.t

val sum_float : float t -> float
(** Accumulates through a single mutable float cell so the running sum
    stays unboxed. *)

val sum_int : int t -> int

(** {1 Extended operations} *)

val take_while : ('a -> bool) -> 'a t -> 'a t
val drop_while : ('a -> bool) -> 'a t -> 'a t

val scan : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b t
(** Prefix accumulation: yields the running accumulator after each
    element (a fusible sequential scan). *)

val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool

val find : ('a -> bool) -> 'a t -> 'a option
(** First matching element; stops stepping early (pull face). *)

val min_float : float t -> float
(** [infinity] on empty input. *)

val max_float : float t -> float

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** Elementwise comparison of the yielded sequences (pull face). *)

val of_seq : 'a Seq.t -> 'a t
(** Interop with the standard library's on-demand sequences. *)

val to_seq : 'a t -> 'a Seq.t
