(** User-facing Triolet iterators: lazily evaluated parallel loops.

    An ['a t] couples a count of outer tasks with two ways to realize
    any outer sub-range: *in place* (zero copy, for sequential and
    shared-memory execution) and *extracted as a payload* plus a rebuild
    function (for distributed execution — the sliceable data sources of
    section 3.5).  Transformations compose both paths, so pipelines of
    [map]/[filter]/[concat_map]/[zip] stay fused and partitionable.

    Consumers dispatch on the parallelism hint set by {!par} and
    {!localpar}: sequential loop, work-stealing pool, or the two-level
    cluster runtime. *)

type hint = Sequential | Local | Distributed

type 'a t = {
  hint : hint;
  len : int;  (** number of outer tasks *)
  local : int -> int -> 'a Seq_iter.t;
      (** [local off n]: in-place loop nest for outer range [off, off+n) *)
  width : int;  (** number of payload buffers this iterator contributes *)
  payload_of : int -> int -> Triolet_base.Payload.t;
      (** [payload_of off n]: extracted data slice for that range *)
  rebuild : Triolet_base.Payload.t -> 'a t;
      (** rebuild an iterator over a shipped slice (always [Local]) *)
}
(** The representation is exposed so substrate libraries (matrices,
    2-D iterators, user data sources) can define their own sliceable
    iterators; application code should not need it. *)

val hint : 'a t -> hint
val length : 'a t -> int

val make :
  len:int ->
  local:(int -> int -> 'a Seq_iter.t) ->
  width:int ->
  payload_of:(int -> int -> Triolet_base.Payload.t) ->
  rebuild:(Triolet_base.Payload.t -> 'a t) ->
  'a t
(** Custom sliceable source (hint [Sequential]). *)

val split_payload :
  int -> Triolet_base.Payload.t -> Triolet_base.Payload.t * Triolet_base.Payload.t
(** [split_payload w p]: first [w] buffers and the rest; used by
    composite rebuilds. *)

(** {1 Sources} *)

val of_floatarray : floatarray -> float t
val of_int_array : int array -> int t

val of_array : ?codec:'a Triolet_base.Codec.t -> 'a array -> 'a t
(** Generic boxed array; [codec] is required only when the iterator is
    consumed with distributed parallelism. *)

val of_list : ?codec:'a Triolet_base.Codec.t -> 'a list -> 'a t
(** Materializes the list to an array once, then behaves like
    {!of_array}. *)

val range : int -> int -> int t
(** The integers [lo, hi). *)

val indices : 'a t -> int t
(** Outer indices of an iterator: the paper's [indices(domain(...))]. *)

(** {1 Fused transformations} *)

val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t

val concat_map : ('a -> 'b Seq_iter.t) -> 'a t -> 'b t
(** Nested traversal: [f] gives each element's inner loop; the result is
    irregular but the outer loop stays partitionable. *)

val zip : 'a t -> 'b t -> ('a * 'b) t
(** Truncates to the shorter input; the stronger hint wins. *)

val zip3 : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val zip_with : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val enumerate : 'a t -> (int * 'a) t

(** {1 Parallelism hints} *)

val par : 'a t -> 'a t
(** Use all available parallelism: nodes, then cores within nodes. *)

val localpar : 'a t -> 'a t
(** Shared-memory parallelism on a single node. *)

val sequential : 'a t -> 'a t

(** {1 Consumers}

    All reduction-shaped consumers require [merge] to be associative
    with identity [init]; combination order is unspecified under
    parallel execution. *)

val sum : ?ctx:Exec.t -> float t -> float
val sum_int : ?ctx:Exec.t -> int t -> int
val count : ?ctx:Exec.t -> 'a t -> int

val reduce :
  ?ctx:Exec.t ->
  codec:'a Triolet_base.Codec.t ->
  merge:('a -> 'a -> 'a) ->
  init:'a ->
  'a t ->
  'a
(** [codec] is exercised only under distributed execution (results cross
    node boundaries). *)

val histogram : ?ctx:Exec.t -> bins:int -> int t -> int array
(** Private per-task histograms, added within each node and once more
    across nodes — the paper's distributed histogram strategy. *)

val scatter_add : ?ctx:Exec.t -> size:int -> (int * float) t -> floatarray
(** Floating-point scatter-add over (index, weight) pairs: cutcp's
    "floating-point histogram". *)

val collect_floats : ?ctx:Exec.t -> float t -> floatarray
(** Packs (possibly variable-length) float results contiguously,
    preserving iteration order. *)

val collect_float_pairs :
  ?ctx:Exec.t -> (float * float) t -> floatarray * floatarray
(** Like {!collect_floats} with the pair components packed into separate
    arrays (mri-q's real/imaginary sums). *)

(** {1 Sequential conveniences} *)

val to_seq_iter : 'a t -> 'a Seq_iter.t
val to_list : 'a t -> 'a list
val iter : ('a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

(** {1 Extended operations} *)

val filter_map : ('a -> 'b option) -> 'a t -> 'b t
(** Fused map + filter. *)

val sub : off:int -> len:int -> 'a t -> 'a t
(** Outer sub-range as an iterator in its own right; stays sliceable. *)

val min_float : ?ctx:Exec.t -> float t -> float
(** [infinity] on empty input. *)

val max_float : ?ctx:Exec.t -> float t -> float
(** [neg_infinity] on empty input. *)

val mean : ?ctx:Exec.t -> float t -> float
(** Arithmetic mean; [nan] on empty input. *)

val exists : ?ctx:Exec.t -> ('a -> bool) -> 'a t -> bool
val for_all : ?ctx:Exec.t -> ('a -> bool) -> 'a t -> bool
