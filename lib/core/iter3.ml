(** Three-dimensional iterators over [Dim3] domains (paper, section
    3.3: the [Domain] class covers arbitrary dimensionality; only flat
    indexers generalize).

    Work and data are distributed in contiguous *z-slabs*: slabs of an
    x-fastest grid are contiguous memory, so a slab's payload is one
    block copy, and within a node the slab's planes parallelize over
    cores.  This is the standard decomposition of hand-written MPI grid
    codes and the 3-D analogue of [Iter2]'s row bands. *)

module Payload = Triolet_base.Payload
module Codec = Triolet_base.Codec
module Partition = Triolet_runtime.Partition
module Cluster = Triolet_runtime.Cluster

type 'a t = {
  hint : Iter.hint;
  nx : int;
  ny : int;
  nz : int;
  local : int -> int -> int -> int -> int -> 'a;
      (** [local z0 n x y z] : element at slab-relative (x, y, z) of
          slab [z0, z0+n), reading input in place *)
  width : int;
  payload_of : int -> int -> Payload.t;  (** data slice for a slab *)
  rebuild : Payload.t -> 'a t;  (** slab-sized iterator from a slice *)
}

let dims t = (t.nx, t.ny, t.nz)
let hint t = t.hint

let make ~nx ~ny ~nz ~local ~width ~payload_of ~rebuild =
  { hint = Iter.Sequential; nx; ny; nz; local; width; payload_of; rebuild }

(** From an element function [f x y z].  The slab payload encodes only
    the slab bounds; the function itself travels as a closure (as all
    task code does in this in-process runtime — see DESIGN.md), so
    unlike {!Iter2.init} this supports distribution. *)
let init ~nx ~ny ~nz f =
  let rec build z_base nz' =
    {
      hint = Iter.Sequential;
      nx;
      ny;
      nz = nz';
      local = (fun z0 _ x y z -> f x y (z_base + z0 + z));
      width = 1;
      payload_of =
        (fun z0 n -> [ Payload.Ints [| z_base + z0; n |] ]);
      rebuild =
        (fun p ->
          match p with
          | [ b ] ->
              let bounds = Payload.ints_exn b in
              { (build bounds.(0) bounds.(1)) with hint = Iter.Local }
          | _ -> invalid_arg "Iter3.init: bad payload");
    }
  in
  build 0 nz

(** A grid's elements; slab payloads are single block copies. *)
let of_grid (g : Grid3.t) =
  let rec build (g : Grid3.t) =
    let nx, ny, nz = Grid3.dims g in
    {
      hint = Iter.Sequential;
      nx;
      ny;
      nz;
      local = (fun z0 _ x y z -> Grid3.unsafe_get g x y (z0 + z));
      width = 2;
      payload_of =
        (fun z0 n ->
          [
            Payload.Ints [| nx; ny; n |];
            Payload.Floats (Grid3.data (Grid3.copy_slab g z0 n));
          ]);
      rebuild =
        (fun p ->
          match p with
          | [ hdr; fl ] ->
              let hdr = Payload.ints_exn hdr in
              let sub =
                Grid3.of_floatarray ~nx:hdr.(0) ~ny:hdr.(1) ~nz:hdr.(2)
                  (Payload.floats_exn fl)
              in
              { (build sub) with hint = Iter.Local }
          | _ -> invalid_arg "Iter3.of_grid: bad payload");
    }
  in
  build g

let rec map f t =
  {
    hint = t.hint;
    nx = t.nx;
    ny = t.ny;
    nz = t.nz;
    local =
      (fun z0 n ->
        let get = t.local z0 n in
        fun x y z -> f (get x y z));
    width = t.width;
    payload_of = t.payload_of;
    rebuild = (fun p -> map f (t.rebuild p));
  }

let rec map2 f a b =
  let nx = min a.nx b.nx and ny = min a.ny b.ny and nz = min a.nz b.nz in
  {
    hint =
      (match (a.hint, b.hint) with
      | Iter.Distributed, _ | _, Iter.Distributed -> Iter.Distributed
      | Iter.Local, _ | _, Iter.Local -> Iter.Local
      | Iter.Sequential, Iter.Sequential -> Iter.Sequential);
    nx;
    ny;
    nz;
    local =
      (fun z0 n ->
        let ga = a.local z0 n and gb = b.local z0 n in
        fun x y z -> f (ga x y z) (gb x y z));
    width = a.width + b.width;
    payload_of = (fun z0 n -> a.payload_of z0 n @ b.payload_of z0 n);
    rebuild =
      (fun p ->
        let pa, pb = Iter.split_payload a.width p in
        map2 f (a.rebuild pa) (b.rebuild pb));
  }

let par t = { t with hint = Iter.Distributed }
let localpar t = { t with hint = Iter.Local }
let sequential t = { t with hint = Iter.Sequential }

(* ------------------------------------------------------------------ *)
(* Consumers                                                           *)

let fill_slab (t : float t) (out : Grid3.t) ~z0 ~n ~out_z0 =
  let get = t.local z0 n in
  for z = 0 to n - 1 do
    for y = 0 to t.ny - 1 do
      for x = 0 to t.nx - 1 do
        Grid3.unsafe_set out x y (out_z0 + z) (get x y z)
      done
    done
  done

let node_slabs ctx nz = Partition.blocks ~parts:ctx.Exec.nodes nz

(** Materialize a 3-D float iterator as a grid: sequential fill, z-plane
    parallelism on the pool, or node slabs shipped as sliced payloads
    and blitted back into place. *)
let build ?ctx (t : float t) =
  let ctx = Exec.resolve ctx in
  let out = Grid3.create t.nx t.ny t.nz in
  (match t.hint with
  | Iter.Sequential -> fill_slab t out ~z0:0 ~n:t.nz ~out_z0:0
  | Iter.Local ->
      (* z-slab extents come from the adaptive scheduler: contiguous
         plane ranges, split on demand when some planes cost more. *)
      let pool = Triolet_runtime.Pool.default () in
      Triolet_runtime.Pool.parallel_range pool ?grain:ctx.Exec.grain ~lo:0
        ~hi:t.nz
        ~f:(fun z0 n -> fill_slab t out ~z0 ~n ~out_z0:z0)
        ~merge:(fun () () -> ())
        ~init:() ()
  | Iter.Distributed ->
      let slabs = node_slabs ctx t.nz in
      let grain = ctx.Exec.grain in
      let results =
        Skeletons.distributed_map_blocks ~ctx ~blocks:slabs
          ~payload_of:(fun (z0, n) -> t.payload_of z0 n)
          ~node_work:(fun ~pool payload ->
            let sub = t.rebuild payload in
            let slab = Grid3.create sub.nx sub.ny sub.nz in
            Triolet_runtime.Pool.parallel_range pool ?grain ~lo:0 ~hi:sub.nz
              ~f:(fun z0 n -> fill_slab sub slab ~z0 ~n ~out_z0:z0)
              ~merge:(fun () () -> ())
              ~init:() ();
            Grid3.data slab)
          ~result_codec:Codec.floatarray ()
      in
      Array.iteri
        (fun k data ->
          let z0, n = slabs.(k) in
          let src = Grid3.of_floatarray ~nx:t.nx ~ny:t.ny ~nz:n data in
          Grid3.blit_slab ~src ~dst:out ~z0)
        results);
  out

(** Reduce a 3-D float iterator to a scalar over node slabs. *)
let sum ?ctx (t : float t) =
  let ctx = Exec.resolve ctx in
  let slab_sum z0 n =
    let get = t.local z0 n in
    let acc = ref 0.0 in
    for z = 0 to n - 1 do
      for y = 0 to t.ny - 1 do
        for x = 0 to t.nx - 1 do
          acc := !acc +. get x y z
        done
      done
    done;
    !acc
  in
  match t.hint with
  | Iter.Sequential -> slab_sum 0 t.nz
  | Iter.Local ->
      Skeletons.local_reduce ~ctx ~len:t.nz ~chunk:slab_sum ~merge:( +. )
        ~init:0.0 ()
  | Iter.Distributed ->
      Skeletons.distributed_reduce ~ctx ~len:t.nz ~payload_of:t.payload_of
        ~node_work:(fun ~pool payload ->
          let sub = t.rebuild payload in
          Skeletons.local_reduce_with ~ctx pool ~len:sub.nz
            ~chunk:(fun z0 n ->
              let get = sub.local z0 n in
              let acc = ref 0.0 in
              for z = 0 to n - 1 do
                for y = 0 to sub.ny - 1 do
                  for x = 0 to sub.nx - 1 do
                    acc := !acc +. get x y z
                  done
                done
              done;
              !acc)
            ~merge:( +. ) ~init:0.0)
        ~result_codec:Codec.float ~merge:( +. ) ~init:0.0 ()
