(** Three-dimensional iterators over [Dim3] domains (paper, section
    3.3).  Distribution uses contiguous z-slabs of x-fastest grids —
    one block copy per slab, plane parallelism within a node; the 3-D
    analogue of {!Iter2}'s row bands. *)

type 'a t

val dims : 'a t -> int * int * int
(** (nx, ny, nz). *)

val hint : 'a t -> Iter.hint

val make :
  nx:int ->
  ny:int ->
  nz:int ->
  local:(int -> int -> int -> int -> int -> 'a) ->
  width:int ->
  payload_of:(int -> int -> Triolet_base.Payload.t) ->
  rebuild:(Triolet_base.Payload.t -> 'a t) ->
  'a t
(** [local z0 n x y z] is the element at slab-relative (x, y, z) of slab
    [z0, z0+n). *)

val init : nx:int -> ny:int -> nz:int -> (int -> int -> int -> 'a) -> 'a t
(** From an element function [f x y z].  The slab payload carries only
    the bounds; the function travels as a closure, so — unlike
    {!Iter2.init} — this supports distributed execution. *)

val of_grid : Grid3.t -> float t
(** Slab payloads are single block copies. *)

val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

val par : 'a t -> 'a t
val localpar : 'a t -> 'a t
val sequential : 'a t -> 'a t

val build : ?ctx:Exec.t -> float t -> Grid3.t
(** Materialize; distributed slabs are shipped back and blitted into
    place. *)

val sum : ?ctx:Exec.t -> float t -> float
