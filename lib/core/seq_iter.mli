(** Hybrid iterators: the paper's core representation (section 3.2,
    Figure 2).

    A loop nest with an indexer or stepper at each nesting level.
    [filter] and [concat_map] on a flat indexer produce an [Idx_nest]
    rather than reassigning indices: each input index yields a short
    (possibly empty) inner stream, so irregularity is isolated in inner
    loops while the outer loop stays random-access and partitionable. *)

type 'a t =
  | Idx_flat of (int, 'a) Indexer.t  (** flat, random access *)
  | Step_flat of 'a Stepper.t  (** flat, sequential *)
  | Idx_nest of (int, 'a t) Indexer.t  (** random-access outer loop *)
  | Step_nest of 'a t Stepper.t  (** sequential outer loop *)

(** {1 Construction} *)

val empty : 'a t
val singleton : 'a -> 'a t
val of_indexer : (int, 'a) Indexer.t -> 'a t
val of_stepper : 'a Stepper.t -> 'a t
val of_array : 'a array -> 'a t
val of_floatarray : floatarray -> float t
val of_list : 'a list -> 'a t
val range : int -> int -> int t

(** {1 The Figure 2 equations} *)

val to_stepper : 'a t -> 'a Stepper.t
(** [toStep]: demote to a flat sequential stream. *)

val zip : 'a t -> 'b t -> ('a * 'b) t
(** Two flat indexers zip by index (parallelism survives); any other
    combination zips sequentially through steppers. *)

val zip_with : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val map : ('a -> 'b) -> 'a t -> 'b t

val filter : ('a -> bool) -> 'a t -> 'a t
(** On a flat indexer: each element becomes a 0-or-1-element stepper
    under an unchanged outer index. *)

val concat_map : ('a -> 'b t) -> 'a t -> 'b t
(** Adds one nesting level, keeping the outer loop's encoding. *)

val collect : 'a t -> 'a Collector.t
(** Every nesting level becomes a sequential side-effecting loop. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** {1 Derived consumers} *)

val sum_float : float t -> float
val sum_int : int t -> int
val iter : ('a -> unit) -> 'a t -> unit
val length : 'a t -> int
val to_list : 'a t -> 'a list
val to_vec : 'a -> 'a t -> 'a Triolet_base.Vec.t
val to_array : 'a -> 'a t -> 'a array
val to_floatarray : float t -> floatarray
val reduce : ('a -> 'a -> 'a) -> 'a t -> 'a option

(** {1 Outer-loop structure (what the parallel layer needs)} *)

val outer_length : 'a t -> int option
(** Number of outer tasks when the outermost level is random-access. *)

val slice_outer : 'a t -> int -> int -> 'a t
(** Sub-range of a random-access outer loop; raises [Invalid_argument]
    on stepper-headed iterators. *)

(** {1 Extended operations} *)

val filter_map : ('a -> 'b option) -> 'a t -> 'b t
(** Fused map + filter; preserves a random-access outer loop like
    {!filter}. *)

val append : 'a t -> 'a t -> 'a t
(** Sequential concatenation (stepper-headed: the combined outer loop
    has no single random-access domain). *)

val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val find : ('a -> bool) -> 'a t -> 'a option
val min_float : float t -> float
val max_float : float t -> float

(** Monadic syntax: [let*] is {!concat_map}, [let+] is {!map}, so nested
    comprehensions read like the paper's examples. *)
module Let_syntax : sig
  val return : 'a -> 'a t
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( and* ) : 'a t -> 'b t -> ('a * 'b) t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( and+ ) : 'a t -> 'b t -> ('a * 'b) t
end

(** {1 Plan reification}

    The element-erased image of an iterator's loop nest, sampled from
    its first outer element where nests are heterogeneous.  This is the
    hook the static plan analyzer ({!Triolet_analysis.Plan}) uses to
    reason about which levels of a fused pipeline kept random access. *)

type shape =
  | Shape_idx_flat of int  (** flat random-access level of that size *)
  | Shape_step_flat  (** flat sequential stream *)
  | Shape_idx_nest of int * shape option
      (** random-access outer level; sampled inner shape ([None] when
          the outer level is empty) *)
  | Shape_step_nest of shape option  (** sequential outer level *)

val shape_of : 'a t -> shape
val shape_to_string : shape -> string

val describe : 'a t -> string
(** [shape_to_string (shape_of it)], e.g. ["IdxNest[6](StepFlat)"].
    For inspection and tests. *)

val of_seq : 'a Seq.t -> 'a t
(** Stdlib [Seq] interop (sequential: a [Seq] has no random access). *)

val to_seq : 'a t -> 'a Seq.t
