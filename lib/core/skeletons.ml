(** Low-level skeletons: the glue between iterator consumers and the
    runtime (paper, section 3.4: "A skeleton in the library consists of
    code that, depending on the input iterator's parallelism hint,
    invokes low-level skeletons for distributing work across nodes,
    cores within a node, and/or sequential loop iterations in a task").

    These functions know nothing about iterators; they distribute
    abstract chunk ranges and payloads.  The [Iter]/[Iter2] consumers
    instantiate them with chunk bodies built from the iterator. *)

module Pool = Triolet_runtime.Pool
module Cluster = Triolet_runtime.Cluster
module Partition = Triolet_runtime.Partition
module Payload = Triolet_base.Payload
module Codec = Triolet_base.Codec
module Obs = Triolet_obs.Obs

(* A single-threaded pool for flat (Eden-model) node execution. *)
let seq_pool_ref : Pool.t option ref = ref None

let seq_pool () =
  match !seq_pool_ref with
  | Some p -> p
  | None ->
      let p = Pool.create ~workers:1 () in
      seq_pool_ref := Some p;
      p

(** Shared-memory parallel reduction over [len] outer iterations on the
    work-stealing pool's adaptive lazy-splitting scheduler.  [chunk off n]
    computes the partial result for outer range [off, off+n) — the
    scheduler chooses the [n]s, splitting ranges on demand so skewed
    per-iteration cost (filtered or nested loops) rebalances across
    workers; per-worker partials are merged locally first. *)
let local_reduce_with pool ~len ~chunk ~merge ~init =
  Obs.span ~name:"skel.local_reduce" (fun () ->
      Pool.parallel_range pool ?grain:!Config.grain_size ~lo:0 ~hi:len ~f:chunk
        ~merge ~init ())

let local_reduce ~len ~chunk ~merge ~init =
  local_reduce_with (Pool.default ()) ~len ~chunk ~merge ~init

(** Order-preserving chunked map: runs [chunk] over each block of
    [len] on the pool and returns the per-block results in block order.
    Used by consumers that pack variable-length output, where
    concatenation order matters. *)
let local_map_chunks_with pool ~len ~chunk =
  if len <= 0 then [||]
  else
    Obs.span ~name:"skel.local_map_chunks" (fun () ->
        let parts =
          Partition.chunk_count ~multiplier:!Config.chunk_multiplier
            ~workers:(Pool.size pool) len
        in
        let blocks = Partition.blocks ~parts len in
        let out = Array.make (Array.length blocks) None in
        Pool.parallel_for pool ~lo:0 ~hi:(Array.length blocks) (fun k ->
            let off, n = blocks.(k) in
            out.(k) <- Some (chunk off n));
        Array.map Option.get out)

let local_map_chunks ~len ~chunk =
  local_map_chunks_with (Pool.default ()) ~len ~chunk

(** Distributed reduction: partition [len] outer iterations across the
    configured cluster, ship each node its payload (serialized), run
    [node_work] against the decoded payload with intra-node parallelism,
    and merge the nodes' serialized replies.  In flat mode the work
    units are single-core processes. *)
let distributed_reduce ~len ~payload_of ~node_work ~result_codec ~merge ~init
    =
  Obs.span ~name:"skel.distributed_reduce" (fun () ->
  let cfg = Config.get_cluster () in
  let workers =
    if cfg.Cluster.flat then cfg.Cluster.nodes * cfg.Cluster.cores_per_node
    else cfg.Cluster.nodes
  in
  let blocks = Partition.blocks ~parts:workers len in
  let nblocks = Array.length blocks in
  let pool = if cfg.Cluster.flat then seq_pool () else Pool.default () in
  let result, _report =
    Cluster.run ~pool ?faults:(Config.get_faults ()) cfg
      ~scatter:(fun node ->
        if node < nblocks then
          let off, n = blocks.(node) in
          payload_of off n
        else Payload.empty)
      ~work:(fun ~node ~pool payload ->
        if node < nblocks then Some (node_work ~pool payload) else None)
      ~result_codec:(Codec.option result_codec)
      ~merge:(fun acc r ->
        match r with None -> acc | Some v -> merge acc v)
      ~init
  in
  result)

(** Distributed map in block order: like {!distributed_reduce} but
    returns the per-node results as an array indexed by block. *)
let distributed_map_blocks ~blocks ~payload_of ~node_work ~result_codec =
  Obs.span ~name:"skel.distributed_map_blocks" (fun () ->
  let cfg = Config.get_cluster () in
  let nblocks = Array.length blocks in
  let pool = if cfg.Cluster.flat then seq_pool () else Pool.default () in
  let results = ref [] in
  let (), _report =
    Cluster.run ~pool ?faults:(Config.get_faults ())
      { cfg with Cluster.nodes = nblocks; flat = false }
      ~scatter:(fun node -> payload_of blocks.(node))
      ~work:(fun ~node ~pool payload -> (node, node_work ~pool payload))
      ~result_codec:(Codec.pair Codec.int result_codec)
      ~merge:(fun () (node, r) -> results := (node, r) :: !results)
      ~init:()
  in
  let out = Array.make nblocks None in
  List.iter (fun (node, r) -> out.(node) <- Some r) !results;
  Array.map Option.get out)
