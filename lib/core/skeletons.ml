(** Low-level skeletons: the glue between iterator consumers and the
    runtime (paper, section 3.4: "A skeleton in the library consists of
    code that, depending on the input iterator's parallelism hint,
    invokes low-level skeletons for distributing work across nodes,
    cores within a node, and/or sequential loop iterations in a task").

    These functions know nothing about iterators; they distribute
    abstract chunk ranges and payloads.  The [Iter]/[Iter2] consumers
    instantiate them with chunk bodies built from the iterator.

    Every skeleton takes an optional execution context [?ctx]
    ({!Exec.t}): geometry, transport backend, fault plan and grain
    policy.  Omitted, the ambient context applies. *)

module Pool = Triolet_runtime.Pool
module Cluster = Triolet_runtime.Cluster
module Partition = Triolet_runtime.Partition
module Darray = Triolet_runtime.Darray
module Payload = Triolet_base.Payload
module Codec = Triolet_base.Codec
module Obs = Triolet_obs.Obs

(* A single-threaded pool for flat (Eden-model) node execution.  Lazily
   created under a lock: two domains racing here used to create (and
   leak) two pools. *)
let seq_pool_lock = Mutex.create ()
let seq_pool_ref : Pool.t option ref = ref None

let seq_pool () =
  Mutex.lock seq_pool_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock seq_pool_lock)
    (fun () ->
      match !seq_pool_ref with
      | Some p -> p
      | None ->
          let p = Pool.create ~workers:1 () in
          seq_pool_ref := Some p;
          p)

(* Pool selection for the distributed skeletons.  Under the process
   backend the parent supplies no pool at all: each forked node builds
   its own, and merely touching [Pool.default] here could spawn domains
   and make the fork impossible. *)
let node_pool (topo : Cluster.topology) =
  match topo.Cluster.backend with
  | Cluster.Flat -> Some (seq_pool ())
  | Cluster.Inprocess -> Some (Pool.default ())
  | Cluster.Process -> None

(** Shared-memory parallel reduction over [len] outer iterations on the
    work-stealing pool's adaptive lazy-splitting scheduler.  [chunk off n]
    computes the partial result for outer range [off, off+n) — the
    scheduler chooses the [n]s, splitting ranges on demand so skewed
    per-iteration cost (filtered or nested loops) rebalances across
    workers; per-worker partials are merged locally first. *)
let local_reduce_with ?ctx pool ~len ~chunk ~merge ~init =
  let ctx = Exec.resolve ctx in
  Obs.span ~name:"skel.local_reduce" (fun () ->
      Pool.parallel_range pool ?grain:ctx.Exec.grain ~lo:0 ~hi:len ~f:chunk
        ~merge ~init ())

let local_reduce ?ctx ~len ~chunk ~merge ~init () =
  local_reduce_with ?ctx (Pool.default ()) ~len ~chunk ~merge ~init

(** Order-preserving chunked map: runs [chunk] over each block of
    [len] on the pool and returns the per-block results in block order.
    Used by consumers that pack variable-length output, where
    concatenation order matters. *)
let local_map_chunks_with ?ctx pool ~len ~chunk =
  let ctx = Exec.resolve ctx in
  if len <= 0 then [||]
  else
    Obs.span ~name:"skel.local_map_chunks" (fun () ->
        let parts =
          Partition.chunk_count ~multiplier:ctx.Exec.chunk_multiplier
            ~workers:(Pool.size pool) len
        in
        let blocks = Partition.blocks ~parts len in
        let out = Array.make (Array.length blocks) None in
        Pool.parallel_for pool ~lo:0 ~hi:(Array.length blocks) (fun k ->
            let off, n = blocks.(k) in
            out.(k) <- Some (chunk off n));
        Array.map Option.get out)

let local_map_chunks ?ctx ~len ~chunk () =
  local_map_chunks_with ?ctx (Pool.default ()) ~len ~chunk

(** Distributed reduction: partition [len] outer iterations across the
    context's cluster, ship each node its payload (serialized), run
    [node_work] against the decoded payload with intra-node parallelism,
    and merge the nodes' serialized replies.  In flat mode the work
    units are single-core processes; under the process backend each
    node is a forked OS process with a private pool. *)
let distributed_reduce ?ctx ~len ~payload_of ~node_work ~result_codec ~merge
    ~init () =
  let ctx = Exec.resolve ctx in
  Obs.span ~name:"skel.distributed_reduce" (fun () ->
      let topo = Exec.topology ctx in
      let workers = Cluster.topology_workers topo in
      let blocks = Partition.blocks ~parts:workers len in
      let nblocks = Array.length blocks in
      let result, _report =
        Cluster.run_topology ?pool:(node_pool topo) ?faults:ctx.Exec.faults
          ~poll_interval:ctx.Exec.poll_interval topo
          ~scatter:(fun node ->
            if node < nblocks then
              let off, n = blocks.(node) in
              payload_of off n
            else Payload.empty)
          ~work:(fun ~node ~pool payload ->
            if node < nblocks then Some (node_work ~pool payload) else None)
          ~result_codec:(Codec.option result_codec)
          ~merge:(fun acc r -> match r with None -> acc | Some v -> merge acc v)
          ~init
      in
      result)

(** Distributed map in block order: like {!distributed_reduce} but
    returns the per-node results as an array indexed by block. *)
let distributed_map_blocks ?ctx ~blocks ~payload_of ~node_work ~result_codec ()
    =
  let ctx = Exec.resolve ctx in
  Obs.span ~name:"skel.distributed_map_blocks" (fun () ->
      let base = Exec.topology ctx in
      let nblocks = Array.length blocks in
      (* One node per block.  Flat mode degrades to in-process
         single-core nodes here (the historical [flat = false] override
         with a sequential pool); the other backends keep their
         transport. *)
      let topo =
        {
          base with
          Cluster.nodes = nblocks;
          backend =
            (match base.Cluster.backend with
            | Cluster.Flat -> Cluster.Inprocess
            | b -> b);
        }
      in
      let pool =
        match base.Cluster.backend with
        | Cluster.Flat -> Some (seq_pool ())
        | _ -> node_pool topo
      in
      let results = ref [] in
      let (), _report =
        Cluster.run_topology ?pool ?faults:ctx.Exec.faults
          ~poll_interval:ctx.Exec.poll_interval topo
          ~scatter:(fun node -> payload_of blocks.(node))
          ~work:(fun ~node ~pool payload -> (node, node_work ~pool payload))
          ~result_codec:(Codec.pair Codec.int result_codec)
          ~merge:(fun () (node, r) -> results := (node, r) :: !results)
          ~init:()
      in
      let out = Array.make nblocks None in
      List.iter (fun (node, r) -> out.(node) <- Some r) !results;
      Array.map Option.get out)

(* ------------------------------------------------------------------ *)
(* Resident (persistent) distributed state                             *)

(** Warm resident fabric for iterative skeletons, geometry and backend
    from the context like every other skeleton here.  Under the
    [Process] backend this forks the per-node children, so call it
    before any domain is spawned (in particular before [Pool.default]
    is first touched). *)
let resident_session ?ctx ?hb_interval ?miss_threshold ~work () =
  let ctx = Exec.resolve ctx in
  Obs.span ~name:"skel.resident_session" (fun () ->
      Darray.create_session
        ~topology:(Exec.topology ctx)
        ?hb_interval ?miss_threshold ~work ())

(** Block boundaries {!resident_segments} uses: one block per resident
    node (a Darray session holds one segment table per topology node,
    regardless of cores), in {!Partition.blocks} order so segment [i]
    is owned by node [i]. *)
let resident_blocks ?ctx ~len () =
  let ctx = Exec.resolve ctx in
  let nodes = (Exec.topology ctx).Cluster.nodes in
  Partition.blocks ~parts:nodes len

(** Partition [len] outer iterations one block per resident node and
    materialize each block's payload, yielding the segments of a
    {!Darray.create}: with one segment per node, segment [i] lands on
    node [i] and replies merge back in segment order. *)
let resident_segments ?ctx ~len ~payload_of () =
  Array.map
    (fun (off, n) -> payload_of off n)
    (resident_blocks ?ctx ~len ())

(** One round over a resident view: ship residency deltas and the
    per-node argument, gather and merge replies in node order.  The
    iterative kernels call this once per outer iteration; after the
    first round only changed segments re-ship. *)
let resident_round view ~arg ~merge ~init =
  Obs.span ~name:"skel.resident_round" (fun () ->
      Darray.run view ~arg ~merge ~init)
