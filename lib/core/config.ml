(** Deprecated global-configuration facade.

    Historically this module *was* the execution configuration: four
    independently mutable globals.  The configuration now lives in the
    immutable {!Exec.t} context; these entry points survive as thin
    shims over the ambient context so existing callers (tests, CLI,
    benches) keep working unchanged.  New code should pass [?ctx] or use
    {!Exec.with_context} directly. *)

let set_cluster c = Exec.set_ambient (Exec.of_cluster_config (Exec.current ()) c)

let get_cluster () = Exec.to_cluster_config (Exec.current ())

(** Run [f] under cluster configuration [c], restoring the previous one
    afterwards (exception-safe).  Shim over {!Exec.with_context}. *)
let with_cluster c f =
  Exec.with_context (Exec.of_cluster_config (Exec.current ()) c) f

let set_faults s = Exec.set_ambient { (Exec.current ()) with Exec.faults = s }

let get_faults () = (Exec.current ()).Exec.faults

(** Run [f] under fault plan [s], restoring the previous plan
    afterwards (exception-safe).  Shim over {!Exec.with_context}. *)
let with_faults s f =
  Exec.with_context { (Exec.current ()) with Exec.faults = Some s } f

let chunk_multiplier () = (Exec.current ()).Exec.chunk_multiplier

let grain_size () = (Exec.current ()).Exec.grain

let set_grain_size g = Exec.set_ambient { (Exec.current ()) with Exec.grain = g }
