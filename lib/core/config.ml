(** Global execution configuration for skeleton consumers.

    Users pick *what* parallelism to use with [par]/[localpar] hints;
    *where* it runs — how many simulated nodes, cores per node, and
    whether the distributed layer is two-level or flat — is ambient
    configuration, like the MPI launch geometry of a real deployment. *)

let cluster = ref Triolet_runtime.Cluster.default_config

let set_cluster c = cluster := c

let get_cluster () = !cluster

(** Run [f] under cluster configuration [c], restoring the previous one
    afterwards (exception-safe). *)
let with_cluster c f =
  let old = !cluster in
  cluster := c;
  Fun.protect ~finally:(fun () -> cluster := old) f

(** Ambient fault-injection plan for distributed skeletons.  [None]
    (the default) runs the original fault-free protocol; [Some spec]
    makes every [Cluster.run] issued by a skeleton consumer inject the
    plan's deterministic failures and recover from them — the CLI's
    [--faults] mode and the fault-matrix tests set this. *)
let faults : Triolet_runtime.Fault.spec option ref = ref None

let set_faults s = faults := s

let get_faults () = !faults

(** Run [f] under fault plan [s], restoring the previous plan
    afterwards (exception-safe). *)
let with_faults s f =
  let old = !faults in
  faults := Some s;
  Fun.protect ~finally:(fun () -> faults := old) f

(** Chunk over-decomposition multiplier for local loops that are
    *pre-partitioned* into explicit blocks (order-preserving chunked
    maps, 2-D block grids). *)
let chunk_multiplier = ref 4

(** Grain-size override for the adaptive lazy-splitting scheduler.
    [None] (the default) lets the pool derive a grain from the range
    length and worker count ({!Triolet_runtime.Partition.grain});
    [Some g] forces grain [g] — smaller grains rebalance finer-skewed
    work at more per-grain overhead. *)
let grain_size : int option ref = ref None
