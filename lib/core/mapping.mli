(** The checked-in auto-mapping file ([tune/MAPPINGS.json]).

    [autotune] (lib/tune + the CLI) searches candidate execution
    contexts per (kernel, size class) against the simulator and writes
    the winners here; {!Exec.for_kernel} consults the file so kernel
    [run_triolet] calls pick up tuned geometry without any call-site
    change.  The file is advisory: a missing, unparseable, or
    schema-mismatched file is ignored (with a one-shot warning on
    stderr for the latter two), never an error. *)

val schema_version : int
(** Current schema version; files with any other [version] are
    ignored by the runtime loader and rejected by [autotune --check]. *)

type entry = {
  kernel : string;  (** registry name, e.g. ["mri-q"] *)
  size : string;  (** size class, e.g. ["small"] *)
  nodes : int;
  cores_per_node : int;
  backend : string;  (** ["inprocess"] | ["flat"] | ["process"] *)
  grain : int option;
  chunk_multiplier : int;
  predicted_s : float;  (** host-projected predicted makespan, seconds *)
  cluster_s : float;  (** abstract-cluster simulated makespan, seconds *)
  seq_s : float;  (** measured sequential run used to calibrate costs *)
  measured_s : float option;  (** validation run at the tuned context *)
  delta : float option;
      (** |predicted - measured| / measured, when validated *)
}

type file = {
  version : int;
  objective : string;  (** ["host"] or ["cluster"] — the ranking axis *)
  host_cores : int;  (** cores of the machine the file was tuned on *)
  rates : (string * float) list;  (** reference-rate snapshot *)
  entries : entry list;
}

val to_json : file -> Triolet_obs.Json.t
val of_json : Triolet_obs.Json.t -> (file, string) result

val save : string -> file -> unit
(** Pretty-printed through {!Triolet_obs.Json}; creates parent dirs. *)

val load : string -> (file, string) result
(** [Error] covers unreadable, unparseable, and schema-mismatched
    files; the message says which. *)

val lookup : file -> kernel:string -> size:string -> entry option

val size_class_of_work : int -> string
(** Shared size taxonomy: the class of an instance doing [w] inner
    work units — ["tiny"] below [2^21], ["small"] below [2^28],
    ["paper"] above.  Kernels and the registry both classify through
    this so runtime lookups hit the tuned entries. *)

val default_path : unit -> string option
(** [TRIOLET_MAPPINGS] when set (empty string disables); otherwise the
    nearest [tune/MAPPINGS.json] walking up from the current
    directory. *)

val loaded : unit -> file option
(** Lazily loaded singleton from {!default_path}.  Load failures warn
    once on stderr and read as [None]. *)

val reload : unit -> unit
(** Drop the cached singleton (and the warn-once latch) so the next
    {!loaded} re-reads the environment — for tests. *)
