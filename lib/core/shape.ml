(** Index domains: the [Domain] type class of the paper (section 3.3).

    A shape describes an iteration space; its type parameter is the type
    of indices it contains (the paper's associated type [Index d]).
    One-dimensional [Seq] spaces index with [int]; [Dim2] and [Dim3]
    index with tuples, avoiding the division/modulus cost of simulating
    multidimensional loops over flattened indices. *)

type _ t =
  | Seq : int -> int t
  | Dim2 : int * int -> (int * int) t
  | Dim3 : int * int * int -> (int * int * int) t

let seq n =
  if n < 0 then invalid_arg "Shape.seq: negative length";
  Seq n

let dim2 h w =
  if h < 0 || w < 0 then invalid_arg "Shape.dim2: negative extent";
  Dim2 (h, w)

let dim3 d h w =
  if d < 0 || h < 0 || w < 0 then invalid_arg "Shape.dim3: negative extent";
  Dim3 (d, h, w)

let size : type i. i t -> int = function
  | Seq n -> n
  | Dim2 (h, w) -> h * w
  | Dim3 (d, h, w) -> d * h * w

(** Row-major linearization of an index. *)
let linear : type i. i t -> i -> int =
 fun shape idx ->
  match (shape, idx) with
  | Seq _, i -> i
  | Dim2 (_, w), (y, x) -> (y * w) + x
  | Dim3 (_, h, w), (z, y, x) -> (z * h * w) + (y * w) + x

(** Inverse of {!linear}. *)
let of_linear : type i. i t -> int -> i =
 fun shape k ->
  match shape with
  | Seq _ -> k
  | Dim2 (_, w) -> (k / w, k mod w)
  | Dim3 (_, h, w) -> (k / (h * w), k mod (h * w) / w, k mod w)

let mem : type i. i t -> i -> bool =
 fun shape idx ->
  match (shape, idx) with
  | Seq n, i -> i >= 0 && i < n
  | Dim2 (h, w), (y, x) -> y >= 0 && y < h && x >= 0 && x < w
  | Dim3 (d, h, w), (z, y, x) ->
      z >= 0 && z < d && y >= 0 && y < h && x >= 0 && x < w

(** Fold over all indices of the domain in row-major order: the
    [idxToFold] conversion overloaded per domain in the paper.

    Accumulators are threaded through tail recursion, not a [ref] cell:
    a mutable cell would force a write barrier per index and keep the
    accumulator boxed, defeating the fused loops built on top. *)
let fold : type i. i t -> ('a -> i -> 'a) -> 'a -> 'a =
 fun shape f init ->
  match shape with
  | Seq n ->
      let rec go acc i = if i >= n then acc else go (f acc i) (i + 1) in
      go init 0
  | Dim2 (h, w) ->
      let rec row acc y =
        if y >= h then acc
        else
          let rec col acc x =
            if x >= w then acc else col (f acc (y, x)) (x + 1)
          in
          row (col acc 0) (y + 1)
      in
      row init 0
  | Dim3 (d, h, w) ->
      let rec plane acc z =
        if z >= d then acc
        else
          let rec row acc y =
            if y >= h then acc
            else
              let rec col acc x =
                if x >= w then acc else col (f acc (z, y, x)) (x + 1)
              in
              row (col acc 0) (y + 1)
          in
          plane (row acc 0) (z + 1)
      in
      plane init 0

(* Dedicated loops rather than [fold] with a unit accumulator: [iter]
   is the consumer under every [collect]-routed kernel (histogram,
   scatter_add), so the per-index path must be one call to [f] and
   nothing else. *)
let iter : type i. i t -> (i -> unit) -> unit =
 fun shape f ->
  match shape with
  | Seq n ->
      for i = 0 to n - 1 do
        f i
      done
  | Dim2 (h, w) ->
      for y = 0 to h - 1 do
        for x = 0 to w - 1 do
          f (y, x)
        done
      done
  | Dim3 (d, h, w) ->
      for z = 0 to d - 1 do
        for y = 0 to h - 1 do
          for x = 0 to w - 1 do
            f (z, y, x)
          done
        done
      done

(** Pointwise intersection: the common sub-domain visited by [zipWith]
    when two domains disagree in extent. *)
let intersect : type i. i t -> i t -> i t =
 fun a b ->
  match (a, b) with
  | Seq n, Seq m -> Seq (min n m)
  | Dim2 (h, w), Dim2 (h', w') -> Dim2 (min h h', min w w')
  | Dim3 (d, h, w), Dim3 (d', h', w') ->
      Dim3 (min d d', min h h', min w w')

let equal : type i. i t -> i t -> bool =
 fun a b ->
  match (a, b) with
  | Seq n, Seq m -> n = m
  | Dim2 (h, w), Dim2 (h', w') -> h = h' && w = w'
  | Dim3 (d, h, w), Dim3 (d', h', w') -> d = d' && h = h' && w = w'

let to_string : type i. i t -> string = function
  | Seq n -> Printf.sprintf "Seq %d" n
  | Dim2 (h, w) -> Printf.sprintf "Dim2 %dx%d" h w
  | Dim3 (d, h, w) -> Printf.sprintf "Dim3 %dx%dx%d" d h w
