(* The checked-in auto-mapping file.  See mapping.mli for the contract;
   the schema lives entirely in to_json/of_json below, so the tuner
   (lib/tune), the runtime consultation (Exec.for_kernel) and the CI
   drift check all agree by construction. *)

module Json = Triolet_obs.Json

let schema_version = 1

type entry = {
  kernel : string;
  size : string;
  nodes : int;
  cores_per_node : int;
  backend : string;
  grain : int option;
  chunk_multiplier : int;
  predicted_s : float;
  cluster_s : float;
  seq_s : float;
  measured_s : float option;
  delta : float option;
}

type file = {
  version : int;
  objective : string;
  host_cores : int;
  rates : (string * float) list;
  entries : entry list;
}

(* ------------------------------------------------------------------ *)
(* JSON (de)serialization                                              *)

let num_opt = function None -> Json.Null | Some f -> Json.Num f
let int_opt = function None -> Json.Null | Some i -> Json.Num (float_of_int i)

let entry_to_json (e : entry) =
  Json.Obj
    [
      ("kernel", Json.Str e.kernel);
      ("size", Json.Str e.size);
      ("nodes", Json.Num (float_of_int e.nodes));
      ("cores_per_node", Json.Num (float_of_int e.cores_per_node));
      ("backend", Json.Str e.backend);
      ("grain", int_opt e.grain);
      ("chunk_multiplier", Json.Num (float_of_int e.chunk_multiplier));
      ("predicted_s", Json.Num e.predicted_s);
      ("cluster_s", Json.Num e.cluster_s);
      ("seq_s", Json.Num e.seq_s);
      ("measured_s", num_opt e.measured_s);
      ("delta", num_opt e.delta);
    ]

let to_json (f : file) =
  Json.Obj
    [
      ("version", Json.Num (float_of_int f.version));
      ("objective", Json.Str f.objective);
      ("host_cores", Json.Num (float_of_int f.host_cores));
      ("rates", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) f.rates));
      ("entries", Json.Arr (List.map entry_to_json f.entries));
    ]

(* Field accessors that report *which* field broke, so a hand-edited
   file fails with something actionable. *)

let field name j = Json.member name j

let get_num ctx name j =
  match Option.bind (field name j) Json.to_float_opt with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: missing or non-numeric %S" ctx name)

let get_int ctx name j = Result.map int_of_float (get_num ctx name j)

let get_str ctx name j =
  match Option.bind (field name j) Json.to_string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "%s: missing or non-string %S" ctx name)

let get_int_opt name j =
  match field name j with
  | None | Some Json.Null -> None
  | Some v -> Option.map int_of_float (Json.to_float_opt v)

let get_num_opt name j =
  match field name j with
  | None | Some Json.Null -> None
  | Some v -> Json.to_float_opt v

let ( let* ) = Result.bind

let entry_of_json i j =
  let ctx = Printf.sprintf "entries[%d]" i in
  let* kernel = get_str ctx "kernel" j in
  let* size = get_str ctx "size" j in
  let* nodes = get_int ctx "nodes" j in
  let* cores_per_node = get_int ctx "cores_per_node" j in
  let* backend = get_str ctx "backend" j in
  let* chunk_multiplier = get_int ctx "chunk_multiplier" j in
  let* predicted_s = get_num ctx "predicted_s" j in
  let* cluster_s = get_num ctx "cluster_s" j in
  let* seq_s = get_num ctx "seq_s" j in
  let non_positive =
    List.filter_map
      (fun (name, v) -> if v < 1 then Some name else None)
      [
        ("nodes", nodes);
        ("cores_per_node", cores_per_node);
        ("chunk_multiplier", chunk_multiplier);
      ]
  in
  if non_positive <> [] then
    Error
      (Printf.sprintf "%s: non-positive %s" ctx
         (String.concat ", " non_positive))
  else
    Ok
      {
        kernel;
        size;
        nodes;
        cores_per_node;
        backend;
        grain = get_int_opt "grain" j;
        chunk_multiplier;
        predicted_s;
        cluster_s;
        seq_s;
        measured_s = get_num_opt "measured_s" j;
        delta = get_num_opt "delta" j;
      }

let of_json j =
  let* version = get_int "mapping" "version" j in
  if version <> schema_version then
    Error
      (Printf.sprintf "schema version %d (this build reads %d)" version
         schema_version)
  else
    let* objective = get_str "mapping" "objective" j in
    let* host_cores = get_int "mapping" "host_cores" j in
    let rates =
      match field "rates" j with
      | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float_opt v))
            kvs
      | _ -> []
    in
    let entries = match field "entries" j with Some a -> Json.to_list a | None -> [] in
    let* entries =
      List.fold_left
        (fun acc (i, e) ->
          let* acc = acc in
          let* e = entry_of_json i e in
          Ok (e :: acc))
        (Ok [])
        (List.mapi (fun i e -> (i, e)) entries)
    in
    Ok { version; objective; host_cores; rates; entries = List.rev entries }

(* ------------------------------------------------------------------ *)
(* File I/O                                                            *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then (
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ())

let save path f =
  mkdir_p (Filename.dirname path);
  Json.to_file path (to_json f)

let load path =
  match Json.of_file path with
  | exception Sys_error m -> Error m
  | exception Json.Parse_error m -> Error (path ^ ": " ^ m)
  | j -> Result.map_error (fun m -> path ^ ": " ^ m) (of_json j)

let lookup f ~kernel ~size =
  List.find_opt (fun e -> e.kernel = kernel && e.size = size) f.entries

(* ------------------------------------------------------------------ *)
(* Size taxonomy                                                       *)

let size_class_of_work w =
  if w < 1 lsl 21 then "tiny" else if w < 1 lsl 28 then "small" else "paper"

(* ------------------------------------------------------------------ *)
(* Ambient singleton                                                   *)

let default_path () =
  match Sys.getenv_opt "TRIOLET_MAPPINGS" with
  | Some "" -> None
  | Some p -> Some p
  | None ->
      (* Walk up from the cwd (a few levels: dune sandboxes run tests in
         _build/default/test) looking for tune/MAPPINGS.json. *)
      let rec walk dir depth =
        if depth > 6 then None
        else
          let candidate = Filename.concat dir "tune/MAPPINGS.json" in
          if Sys.file_exists candidate then Some candidate
          else
            let parent = Filename.dirname dir in
            if parent = dir then None else walk parent (depth + 1)
      in
      walk (Sys.getcwd ()) 0

let warned = ref false

let warn msg =
  if not !warned then (
    warned := true;
    Printf.eprintf "triolet: ignoring mappings file: %s\n%!" msg)

let cache : file option option ref = ref None

let loaded () =
  match !cache with
  | Some f -> f
  | None ->
      let f =
        match default_path () with
        | None -> None
        | Some p -> (
            match load p with
            | Ok f -> Some f
            | Error m ->
                warn m;
                None)
      in
      cache := Some f;
      f

let reload () =
  cache := None;
  warned := false
