(** The fold encoding: a data structure represented by the function that
    folds over its elements (paper, section 3.1, "Folds").

    Folds fix the execution order completely — no zipping — but nested
    traversals fuse into clean nested loops, which is why hybrid
    iterators route nested reductions through them. *)

module Fcell = Triolet_base.Fcell

type 'a t = { fold : 'acc. ('acc -> 'a -> 'acc) -> 'acc -> 'acc }

let empty = { fold = (fun _ init -> init) }

let singleton x = { fold = (fun f init -> f init x) }

let of_list l = { fold = (fun f init -> List.fold_left f init l) }

let of_array a = { fold = (fun f init -> Array.fold_left f init a) }

let of_floatarray (a : floatarray) =
  { fold = (fun f init -> Float.Array.fold_left f init a) }

(* Thread the accumulator through tail recursion: a [ref] cell here
   would box every intermediate accumulator and pay a write barrier per
   iteration, defeating unboxing for the float reductions this fold
   feeds. *)
let range lo hi =
  {
    fold =
      (fun f init ->
        let rec go acc i = if i >= hi then acc else go (f acc i) (i + 1) in
        go init lo);
  }

let of_stepper st = { fold = (fun f init -> Stepper.fold f init st) }

let map g t = { fold = (fun f init -> t.fold (fun acc x -> f acc (g x)) init) }

let filter p t =
  { fold = (fun f init -> t.fold (fun acc x -> if p x then f acc x else acc) init) }

let filter_map g t =
  {
    fold =
      (fun f init ->
        t.fold
          (fun acc x -> match g x with Some y -> f acc y | None -> acc)
          init);
  }

(** The worker passed to the outer fold runs the inner fold: inlining
    this (conceptually) yields a nested loop, the property that makes
    folds the encoding of choice for nested traversal. *)
let concat_map g t =
  { fold = (fun f init -> t.fold (fun acc x -> (g x).fold f acc) init) }

let append a b = { fold = (fun f init -> b.fold f (a.fold f init)) }

let fold f init t = t.fold f init

let iter f t = t.fold (fun () x -> f x) ()

let length t = t.fold (fun n _ -> n + 1) 0

let to_list t = List.rev (t.fold (fun acc x -> x :: acc) [])

(* Float reductions accumulate through an {!Fcell}: its field is
   unboxed storage, so the running value never round trips through the
   heap the way a polymorphic fold accumulator does. *)
let sum_float t =
  let acc = Fcell.make 0.0 in
  t.fold (fun () x -> acc.Fcell.v <- acc.Fcell.v +. x) ();
  acc.Fcell.v

let sum_int t = t.fold ( + ) 0

let exists p t = t.fold (fun found x -> found || p x) false

let for_all p t = t.fold (fun ok x -> ok && p x) true

let min_float t =
  let m = Fcell.make Float.infinity in
  t.fold (fun () x -> if x < m.Fcell.v then m.Fcell.v <- x) ();
  m.Fcell.v

let max_float t =
  let m = Fcell.make Float.neg_infinity in
  t.fold (fun () x -> if x > m.Fcell.v then m.Fcell.v <- x) ();
  m.Fcell.v

(** Count elements satisfying a predicate in one pass. *)
let count_if p t = t.fold (fun n x -> if p x then n + 1 else n) 0
