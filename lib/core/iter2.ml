(** Two-dimensional iterators (paper, section 3.3).

    Only flat indexers generalize to multiple dimensions — removing
    arbitrary elements of a 2-D array does not yield a 2-D array — so a
    2-D iterator is always an [IdxFlat] over a [Dim2] domain, plus the
    slicing machinery for 2-D *block* decomposition: a block of the
    iteration space maps to the slice of input data (e.g. matrix rows)
    its tasks touch, which is how the paper's two-line sgemm ships each
    node only the rows it needs. *)

module Payload = Triolet_base.Payload
module Codec = Triolet_base.Codec
module Partition = Triolet_runtime.Partition
module Cluster = Triolet_runtime.Cluster

type 'a t = {
  hint : Iter.hint;
  rows : int;
  cols : int;
  local : int -> int -> int -> int -> int -> int -> 'a;
      (** [local r0 nr c0 nc i j] : element at block-relative (i, j) of
          block (r0, nr, c0, nc), reading input in place *)
  width : int;
  payload_of : int -> int -> int -> int -> Payload.t;
      (** data slice needed by block (r0, nr, c0, nc) *)
  rebuild : Payload.t -> 'a t;
      (** rebuild a block-sized iterator from a shipped slice *)
}

let row_count t = t.rows
let col_count t = t.cols
let hint t = t.hint
let width t = t.width

(* Plan-reification hook: expose the data slice a block would ship
   without running the consumer, so the static analyzer can inspect the
   payload of each remote task of a 2-D decomposition. *)
let payload_slice t ~r0 ~nr ~c0 ~nc = t.payload_of r0 nr c0 nc

let make ~rows ~cols ~local ~width ~payload_of ~rebuild =
  { hint = Iter.Sequential; rows; cols; local; width; payload_of; rebuild }

(** 2-D iterator from an explicit element function (e.g. the
    [arrayRange] comprehension of the paper's transpose example).  It
    has no serializable source, so it supports sequential and local
    execution only — like transposition, which "does too little work to
    parallelize profitably on distributed memory". *)
let init ~rows ~cols f =
  let rec t =
    {
      hint = Iter.Sequential;
      rows;
      cols;
      local = (fun r0 _ c0 _ i j -> f (r0 + i) (c0 + j));
      width = 0;
      payload_of =
        (fun _ _ _ _ ->
          invalid_arg "Iter2.init: no serializable source for distribution");
      rebuild = (fun _ -> t);
    }
  in
  t

let of_matrix m =
  init ~rows:(Matrix.rows m) ~cols:(Matrix.cols m) (Matrix.unsafe_get m)

(** The paper's [outerproduct]: pair every element of [a] with every
    element of [b].  Block (r0, nr, c0, nc) needs rows [r0, r0+nr) of
    [a]'s data and rows [c0, c0+nc) of [b]'s — exactly the slices the
    payload carries. *)
let rec outer_product (a : 'a Iter.t) (b : 'b Iter.t) =
  {
    hint =
      (match (Iter.hint a, Iter.hint b) with
      | Iter.Distributed, _ | _, Iter.Distributed -> Iter.Distributed
      | Iter.Local, _ | _, Iter.Local -> Iter.Local
      | Iter.Sequential, Iter.Sequential -> Iter.Sequential);
    rows = Iter.length a;
    cols = Iter.length b;
    local =
      (fun r0 nr c0 nc ->
        (* Outer elements are cheap views; materializing the block's
           row and column headers once avoids re-running the outer
           loops per element. *)
        let av = Array.of_list (Seq_iter.to_list (a.Iter.local r0 nr)) in
        let bv = Array.of_list (Seq_iter.to_list (b.Iter.local c0 nc)) in
        fun i j -> (av.(i), bv.(j)));
    width = a.Iter.width + b.Iter.width;
    payload_of =
      (fun r0 nr c0 nc -> a.Iter.payload_of r0 nr @ b.Iter.payload_of c0 nc);
    rebuild =
      (fun p ->
        let pa, pb = Iter.split_payload a.Iter.width p in
        outer_product (a.Iter.rebuild pa) (b.Iter.rebuild pb));
  }

let rec map f t =
  {
    hint = t.hint;
    rows = t.rows;
    cols = t.cols;
    local =
      (fun r0 nr c0 nc ->
        let get = t.local r0 nr c0 nc in
        fun i j -> f (get i j));
    width = t.width;
    payload_of = t.payload_of;
    rebuild = (fun p -> map f (t.rebuild p));
  }

let par t = { t with hint = Iter.Distributed }
let localpar t = { t with hint = Iter.Local }
let sequential t = { t with hint = Iter.Sequential }

(* ------------------------------------------------------------------ *)
(* Consumers                                                           *)

let fill_block (t : float t) (out : Matrix.t) ~r0 ~nr ~c0 ~nc ~out_r0 ~out_c0
    =
  let get = t.local r0 nr c0 nc in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      Matrix.unsafe_set out (out_r0 + i) (out_c0 + j) (get i j)
    done
  done

(** Materialize a 2-D float iterator as a matrix.

    - [Sequential]: one block covering everything.
    - [Local]: row-band parallelism on the work-stealing pool.
    - [Distributed]: a near-square grid of node blocks; each node
      receives only its block's input slice, computes the block with
      intra-node row parallelism, and ships the block back, where it is
      blitted into place. *)
let build ?ctx (t : float t) =
  let ctx = Exec.resolve ctx in
  let out = Matrix.create t.rows t.cols in
  (match t.hint with
  | Iter.Sequential ->
      fill_block t out ~r0:0 ~nr:t.rows ~c0:0 ~nc:t.cols ~out_r0:0 ~out_c0:0
  | Iter.Local ->
      (* Row bands are chosen by the adaptive scheduler: it hands out
         contiguous row ranges and splits them on demand, so rows whose
         pipelines cost unevenly still balance. *)
      let pool = Triolet_runtime.Pool.default () in
      Triolet_runtime.Pool.parallel_range pool ?grain:ctx.Exec.grain ~lo:0
        ~hi:t.rows
        ~f:(fun r0 nr ->
          fill_block t out ~r0 ~nr ~c0:0 ~nc:t.cols ~out_r0:r0 ~out_c0:0)
        ~merge:(fun () () -> ())
        ~init:() ()
  | Iter.Distributed ->
      let rp, cp = Partition.square_factors ctx.Exec.nodes in
      let blocks =
        Partition.grid ~row_parts:rp ~col_parts:cp ~rows:t.rows ~cols:t.cols
      in
      let grain = ctx.Exec.grain in
      let results =
        Skeletons.distributed_map_blocks ~ctx ~blocks
          ~payload_of:(fun (r0, nr, c0, nc) -> t.payload_of r0 nr c0 nc)
          ~node_work:(fun ~pool payload ->
            let sub = t.rebuild payload in
            let block = Matrix.create sub.rows sub.cols in
            Triolet_runtime.Pool.parallel_range pool ?grain ~lo:0
              ~hi:sub.rows
              ~f:(fun r0 nr ->
                fill_block sub block ~r0 ~nr ~c0:0 ~nc:sub.cols ~out_r0:r0
                  ~out_c0:0)
              ~merge:(fun () () -> ())
              ~init:() ();
            Matrix.data block)
          ~result_codec:Codec.floatarray ()
      in
      Array.iteri
        (fun k data ->
          let r0, nr, c0, nc = blocks.(k) in
          let src = Matrix.of_floatarray ~rows:nr ~cols:nc data in
          Matrix.blit_block ~src ~dst:out ~r0 ~c0)
        results);
  out

(* ------------------------------------------------------------------ *)
(* Matrix rows as a partitionable 1-D iterator                         *)

(** The paper's [rows]: reinterpret a matrix as a one-dimensional
    iterator over its rows.  Rows of a row-major matrix are contiguous,
    so the payload of a slice of rows is a single block copy. *)
let rows (m : Matrix.t) : Matrix.view Iter.t =
  let rec build m =
    Iter.make ~len:(Matrix.rows m)
      ~local:(fun off n ->
        Seq_iter.of_indexer
          (Indexer.init (Shape.seq n) (fun i -> Matrix.row m (off + i))))
      ~width:2
      ~payload_of:(fun off n ->
        [
          Payload.Ints [| n; Matrix.cols m |];
          Payload.Floats (Matrix.data (Matrix.copy_rows m off n));
        ])
      ~rebuild:(fun p ->
        match p with
        | [ hdr; fl ] ->
            let hdr = Payload.ints_exn hdr in
            let data = Payload.floats_exn fl in
            Iter.localpar
              (build (Matrix.of_floatarray ~rows:hdr.(0) ~cols:hdr.(1) data))
        | _ -> invalid_arg "Iter2.rows: bad payload")
  in
  build m

(** Per-node row-block segments of a matrix, for residency: block the
    rows one-per-cluster-worker (same decomposition {!rows} ships under
    [distributed_reduce]) and materialize each block in the same
    header-plus-data shape [rows]'s [payload_of] uses, so a resident
    child decodes segments with the exact code that decodes shipped
    slices. *)
let row_segments ?ctx (m : Matrix.t) =
  let it = rows m in
  Skeletons.resident_segments ?ctx ~len:(Matrix.rows m)
    ~payload_of:(fun off n -> it.Iter.payload_of off n)
    ()

(** Decode one {!row_segments} segment back to a matrix (child-side). *)
let matrix_of_segment (p : Payload.t) =
  match p with
  | [ hdr; fl ] ->
      let hdr = Payload.ints_exn hdr in
      Matrix.of_floatarray ~rows:hdr.(0) ~cols:hdr.(1) (Payload.floats_exn fl)
  | _ -> invalid_arg "Iter2.matrix_of_segment: bad segment payload"

(** Parallel matrix transposition through the 2-D iterator interface:
    [[A[x,y] for (y,x) in arrayRange((0,0),(h,w))]] from the paper. *)
let transpose_iter m =
  init ~rows:(Matrix.cols m) ~cols:(Matrix.rows m) (fun y x ->
      Matrix.unsafe_get m x y)

(* ------------------------------------------------------------------ *)
(* Reductions over 2-D iterators                                       *)

(** Fold a 2-D float iterator to a scalar.  Distribution follows the
    same block grid as {!build}: each node reduces its block locally
    (rows across cores), and per-node partials are merged. *)
let sum ?ctx (t : float t) =
  let ctx = Exec.resolve ctx in
  let block_sum r0 nr c0 nc =
    let get = t.local r0 nr c0 nc in
    let acc = ref 0.0 in
    for i = 0 to nr - 1 do
      for j = 0 to nc - 1 do
        acc := !acc +. get i j
      done
    done;
    !acc
  in
  match t.hint with
  | Iter.Sequential -> block_sum 0 t.rows 0 t.cols
  | Iter.Local ->
      Skeletons.local_reduce ~ctx ~len:t.rows
        ~chunk:(fun off n -> block_sum off n 0 t.cols)
        ~merge:( +. ) ~init:0.0 ()
  | Iter.Distributed ->
      let rp, cp = Partition.square_factors ctx.Exec.nodes in
      let blocks =
        Partition.grid ~row_parts:rp ~col_parts:cp ~rows:t.rows ~cols:t.cols
      in
      let parts =
        Skeletons.distributed_map_blocks ~ctx ~blocks
          ~payload_of:(fun (r0, nr, c0, nc) -> t.payload_of r0 nr c0 nc)
          ~node_work:(fun ~pool payload ->
            let sub = t.rebuild payload in
            Skeletons.local_reduce_with ~ctx pool ~len:sub.rows
              ~chunk:(fun off n ->
                let get = sub.local off n 0 sub.cols in
                let acc = ref 0.0 in
                for i = 0 to n - 1 do
                  for j = 0 to sub.cols - 1 do
                    acc := !acc +. get i j
                  done
                done;
                !acc)
              ~merge:( +. ) ~init:0.0)
          ~result_codec:Codec.float ()
      in
      Array.fold_left ( +. ) 0.0 parts

(** Pointwise combination of two 2-D iterators over the intersection of
    their extents. *)
let rec map2 f a b =
  let rows = min a.rows b.rows and cols = min a.cols b.cols in
  {
    hint =
      (match (a.hint, b.hint) with
      | Iter.Distributed, _ | _, Iter.Distributed -> Iter.Distributed
      | Iter.Local, _ | _, Iter.Local -> Iter.Local
      | Iter.Sequential, Iter.Sequential -> Iter.Sequential);
    rows;
    cols;
    local =
      (fun r0 nr c0 nc ->
        let ga = a.local r0 nr c0 nc and gb = b.local r0 nr c0 nc in
        fun i j -> f (ga i j) (gb i j));
    width = a.width + b.width;
    payload_of =
      (fun r0 nr c0 nc ->
        a.payload_of r0 nr c0 nc @ b.payload_of r0 nr c0 nc);
    rebuild =
      (fun p ->
        let pa, pb = Iter.split_payload a.width p in
        map2 f (a.rebuild pa) (b.rebuild pb));
  }
