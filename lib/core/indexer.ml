(** The indexer encoding: a domain plus a lookup function (paper,
    section 3.1, "Indexers", generalized over domains in section 3.3).

    Indexers are the only encoding that permits random access, which
    makes them the parallelizable layer of hybrid iterators: any
    sub-range of an indexer can be handed to a different task.  The cost
    is that variable-length producers ([filter], [concat_map]) cannot be
    expressed directly — hybrid iterators wrap their output in steppers
    instead. *)

type ('i, 'a) t = { shape : 'i Shape.t; get : 'i -> 'a }

let make shape get = { shape; get }

let shape t = t.shape

let size t = Shape.size t.shape

let get t i = t.get i

let init shape f = { shape; get = f }

let of_array a = { shape = Shape.seq (Array.length a); get = Array.get a }

let of_floatarray (a : floatarray) =
  { shape = Shape.seq (Float.Array.length a); get = Float.Array.get a }

(** Indexer over the integers [lo, hi) themselves. *)
let range lo hi =
  if hi < lo then invalid_arg "Indexer.range";
  { shape = Shape.seq (hi - lo); get = (fun i -> lo + i) }

(** Mapping composes lookup with [f]: [(n, g) -> (n, f . g)]. *)
let map f t = { shape = t.shape; get = (fun i -> f (t.get i)) }

(** [zipIdx]: random access lets corresponding iterations pair up
    without any buffering, preserving parallelism. *)
let zip_with f a b =
  {
    shape = Shape.intersect a.shape b.shape;
    get = (fun i -> f (a.get i) (b.get i));
  }

let zip a b = zip_with (fun x y -> (x, y)) a b

let enumerate t = { shape = t.shape; get = (fun i -> (i, t.get i)) }

(** 1-D sub-range view; indices are rebased to start at zero.  This is
    the work-distribution half of slicing — the data-distribution half
    lives with the iterator's payload (section 3.5). *)
let slice (t : (int, 'a) t) off len =
  match t.shape with
  | Shape.Seq n ->
      if off < 0 || len < 0 || off + len > n then invalid_arg "Indexer.slice";
      (* full-range slices (the sequential-execution path) add no
         rebasing closure to the per-element lookup chain *)
      if off = 0 && len = n then t
      else { shape = Shape.seq len; get = (fun i -> t.get (off + i)) }

(* Conversions down the control-flexibility order of Figure 1: an
   indexer can become a stepper, fold, or collector, never the other
   way around. *)

let to_stepper (t : (int, 'a) t) =
  let n = size t in
  let get = t.get in
  Stepper.make 0
    (fun i -> if i >= n then Stepper.Done else Stepper.Yield (get i, i + 1))
    {
      Stepper.push =
        (fun f init ->
          let rec go acc i =
            if i >= n then acc else go (f acc (get i)) (i + 1)
          in
          go init 0);
    }

let to_folder t =
  { Folder.fold = (fun f init -> Shape.fold t.shape (fun acc i -> f acc (t.get i)) init) }

let to_collector t =
  { Collector.run = (fun k -> Shape.iter t.shape (fun i -> k (t.get i))) }

(* The flat 1-D case — every hybrid iterator's hot leaf — gets its own
   loop so the per-element path is [f] and the lookup, with no
   index-adapter closure in between. *)
let fold : type i. ('b -> 'a -> 'b) -> 'b -> (i, 'a) t -> 'b =
 fun f init t ->
  match t.shape with
  | Shape.Seq n ->
      let get = t.get in
      let rec go acc i = if i >= n then acc else go (f acc (get i)) (i + 1) in
      go init 0
  | shape -> Shape.fold shape (fun acc i -> f acc (t.get i)) init

let iter : type i. ('a -> unit) -> (i, 'a) t -> unit =
 fun f t ->
  match t.shape with
  | Shape.Seq n ->
      let get = t.get in
      for i = 0 to n - 1 do
        f (get i)
      done
  | shape -> Shape.iter shape (fun i -> f (t.get i))

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let to_array dummy t =
  let n = size t in
  let a = Array.make n dummy in
  let k = ref 0 in
  Shape.iter t.shape (fun i ->
      a.(!k) <- t.get i;
      incr k);
  a
