(** Immutable execution contexts.

    Everything that used to be scattered across mutable globals in
    {!Config} — cluster geometry, transport backend, fault plan, grain
    policy — lives in one immutable record, threaded through skeleton
    consumers as [?ctx].  A context answers *where and how* a skeleton
    runs, the way an MPI launch configuration does for the paper's
    runtime; *what* runs stays in the iterator pipeline itself.

    There is still one ambient context (the default for consumers called
    without [?ctx], and what the deprecated {!Config} shims manipulate),
    but it is a stack of whole values, not a bag of independently
    mutable cells: {!with_context} swaps the entire record and restores
    it exception-safely, so no combination of nested overrides can leave
    a half-updated configuration behind. *)

module Cluster = Triolet_runtime.Cluster
module Fault = Triolet_runtime.Fault

type t = {
  nodes : int;  (** simulated cluster nodes *)
  cores_per_node : int;  (** cores (pool width) within each node *)
  backend : Cluster.backend;  (** transport realizing the geometry *)
  faults : Fault.spec option;  (** fault-injection plan, if any *)
  grain : int option;  (** scheduler grain override *)
  chunk_multiplier : int;  (** over-decomposition for pre-chunked loops *)
  deadline : float option;
      (** per-request compute budget in seconds for the long-lived
          service; [None] means no deadline *)
  queue_bound : int;  (** service admission-queue high-water mark *)
  poll_interval : float;
      (** process-backend drain / service event-loop poll, seconds *)
}

(* The backend can be selected from outside via TRIOLET_BACKEND
   ("inprocess" | "flat" | "process"), which is how `dune runtest` and
   the CLI exercise the whole iterator stack over the process transport
   without touching call sites.  Unknown values fall back to in-process
   rather than failing: the variable is an operator knob, not an API. *)
let env_backend () =
  match Sys.getenv_opt "TRIOLET_BACKEND" with
  | None -> Cluster.Inprocess
  | Some s -> (
      match Cluster.backend_of_string s with
      | Some b -> b
      | None -> Cluster.Inprocess)

let default () =
  {
    nodes = 4;
    cores_per_node = 2;
    backend = env_backend ();
    faults = None;
    grain = None;
    chunk_multiplier = 4;
    deadline = None;
    queue_bound = 64;
    poll_interval = 0.01;
  }

(* Created lazily so the environment is read at first use, after a CLI
   has had the chance to set it. *)
let ambient : t option ref = ref None

let current () =
  match !ambient with
  | Some c -> c
  | None ->
      let c = default () in
      ambient := Some c;
      c

let set_ambient c = ambient := Some c

let with_context c f =
  let old = !ambient in
  ambient := Some c;
  Fun.protect ~finally:(fun () -> ambient := old) f

let resolve = function Some c -> c | None -> current ()

let make ?nodes ?cores_per_node ?backend ?faults ?grain ?chunk_multiplier
    ?deadline ?queue_bound ?poll_interval () =
  let base = current () in
  (match queue_bound with
  | Some b when b < 1 -> invalid_arg "Exec.make: queue_bound < 1"
  | _ -> ());
  (match poll_interval with
  | Some p when p <= 0.0 -> invalid_arg "Exec.make: poll_interval <= 0"
  | _ -> ());
  {
    nodes = Option.value nodes ~default:base.nodes;
    cores_per_node = Option.value cores_per_node ~default:base.cores_per_node;
    backend = Option.value backend ~default:base.backend;
    faults = (match faults with Some f -> f | None -> base.faults);
    grain = (match grain with Some g -> g | None -> base.grain);
    chunk_multiplier =
      Option.value chunk_multiplier ~default:base.chunk_multiplier;
    deadline = (match deadline with Some d -> d | None -> base.deadline);
    queue_bound = Option.value queue_bound ~default:base.queue_bound;
    poll_interval = Option.value poll_interval ~default:base.poll_interval;
  }

let topology c =
  {
    Cluster.nodes = c.nodes;
    cores_per_node = c.cores_per_node;
    backend = c.backend;
  }

let worker_count c = Cluster.topology_workers (topology c)

(* Bridges for the deprecated Config API, which still speaks the legacy
   {nodes; cores_per_node; flat} record. *)

let of_cluster_config base (c : Cluster.config) =
  {
    base with
    nodes = c.Cluster.nodes;
    cores_per_node = c.Cluster.cores_per_node;
    backend =
      (if c.Cluster.flat then Cluster.Flat
       else
         (* [flat = false] means "the normal two-level view", not "the
            mailbox transport": keep the current non-flat backend (so an
            environment-selected process transport survives legacy
            [set_cluster] calls), falling back out of Flat to the
            environment default. *)
         match base.backend with
         | Cluster.Flat -> env_backend ()
         | b -> b);
  }

let to_cluster_config c =
  {
    Cluster.nodes = c.nodes;
    cores_per_node = c.cores_per_node;
    flat = (c.backend = Cluster.Flat);
  }
