(** Immutable execution contexts.

    Cluster geometry, transport backend, fault plan, grain policy —
    everything that answers *where and how* a skeleton runs lives in one
    immutable record, threaded through skeleton consumers as [?ctx], the
    way an MPI launch configuration does for the paper's runtime; *what*
    runs stays in the iterator pipeline itself.

    There is still one ambient context (the default for consumers called
    without [?ctx]), but it is a stack of whole values, not a bag of
    independently mutable cells: {!with_context} swaps the entire record
    and restores it exception-safely, so no combination of nested
    overrides can leave a half-updated configuration behind.

    Kernels resolve their context through {!for_kernel}, which layers in
    the checked-in auto-mapping file ({!Mapping}) when the caller has
    not pinned a context explicitly.  Precedence, strongest first:
    explicit [?ctx]; an explicitly installed ambient ({!set_ambient} /
    {!with_context}); the [TRIOLET_BACKEND] environment variable (for
    the backend field only); the mapping entry; {!default}. *)

module Cluster = Triolet_runtime.Cluster
module Fault = Triolet_runtime.Fault

type t = {
  nodes : int;  (** simulated cluster nodes *)
  cores_per_node : int;  (** cores (pool width) within each node *)
  backend : Cluster.backend;  (** transport realizing the geometry *)
  faults : Fault.spec option;  (** fault-injection plan, if any *)
  grain : int option;  (** scheduler grain override *)
  chunk_multiplier : int;  (** over-decomposition for pre-chunked loops *)
  deadline : float option;
      (** per-request compute budget in seconds for the long-lived
          service; [None] means no deadline *)
  queue_bound : int;  (** service admission-queue high-water mark *)
  poll_interval : float;
      (** process-backend drain / service event-loop poll, seconds *)
}

(* The backend can be selected from outside via TRIOLET_BACKEND
   ("inprocess" | "flat" | "process"), which is how `dune runtest` and
   the CLI exercise the whole iterator stack over the process transport
   without touching call sites.  A value that names no backend fails
   loudly: a typo ("proces") silently running everything in-process is
   exactly the kind of mapping bug this layer exists to prevent. *)
let env_backend () =
  match Sys.getenv_opt "TRIOLET_BACKEND" with
  | None | Some "" -> None
  | Some s -> (
      match Cluster.backend_of_string s with
      | Some b -> Some b
      | None ->
          invalid_arg
            (Printf.sprintf
               "TRIOLET_BACKEND=%S is not a known backend (valid values: \
                inprocess, flat, process)"
               s))

let default () =
  {
    nodes = 4;
    cores_per_node = 2;
    backend = Option.value (env_backend ()) ~default:Cluster.Inprocess;
    faults = None;
    grain = None;
    chunk_multiplier = 4;
    deadline = None;
    queue_bound = 64;
    poll_interval = 0.01;
  }

(* Created lazily so the environment is read at first use, after a CLI
   has had the chance to set it.  [ambient_explicit] distinguishes "the
   ambient is just the materialized default" from "someone deliberately
   installed a context": the mapping file only applies in the former
   case, so a test or CLI flag that pins geometry is never second-
   guessed by a checked-in file. *)
let ambient : t option ref = ref None
let ambient_explicit = ref false

let current () =
  match !ambient with
  | Some c -> c
  | None ->
      let c = default () in
      ambient := Some c;
      c

let set_ambient c =
  ambient := Some c;
  ambient_explicit := true

let with_context c f =
  let old = !ambient and old_explicit = !ambient_explicit in
  ambient := Some c;
  ambient_explicit := true;
  Fun.protect
    ~finally:(fun () ->
      ambient := old;
      ambient_explicit := old_explicit)
    f

let resolve = function Some c -> c | None -> current ()

let make ?nodes ?cores_per_node ?backend ?faults ?grain ?chunk_multiplier
    ?deadline ?queue_bound ?poll_interval () =
  let base = current () in
  (match queue_bound with
  | Some b when b < 1 -> invalid_arg "Exec.make: queue_bound < 1"
  | _ -> ());
  (match poll_interval with
  | Some p when p <= 0.0 -> invalid_arg "Exec.make: poll_interval <= 0"
  | _ -> ());
  {
    nodes = Option.value nodes ~default:base.nodes;
    cores_per_node = Option.value cores_per_node ~default:base.cores_per_node;
    backend = Option.value backend ~default:base.backend;
    faults = (match faults with Some f -> f | None -> base.faults);
    grain = (match grain with Some g -> g | None -> base.grain);
    chunk_multiplier =
      Option.value chunk_multiplier ~default:base.chunk_multiplier;
    deadline = (match deadline with Some d -> d | None -> base.deadline);
    queue_bound = Option.value queue_bound ~default:base.queue_bound;
    poll_interval = Option.value poll_interval ~default:base.poll_interval;
  }

let topology c =
  {
    Cluster.nodes = c.nodes;
    cores_per_node = c.cores_per_node;
    backend = c.backend;
  }

let worker_count c = Cluster.topology_workers (topology c)

(* Context for one kernel invocation: the auto-mapping hook.  Only
   consulted when nothing stronger pinned a context — see the module
   comment for the full precedence chain. *)
let for_kernel ?ctx ~kernel ~size () =
  match ctx with
  | Some c -> c
  | None when !ambient_explicit -> current ()
  | None -> (
      match Mapping.loaded () with
      | None -> current ()
      | Some file -> (
          match Mapping.lookup file ~kernel ~size with
          | None -> current ()
          | Some e ->
              let base = current () in
              let backend =
                match env_backend () with
                | Some b -> b
                | None -> (
                    match Cluster.backend_of_string e.Mapping.backend with
                    | Some b -> b
                    | None -> base.backend)
              in
              {
                base with
                nodes = max 1 e.Mapping.nodes;
                cores_per_node = max 1 e.Mapping.cores_per_node;
                backend;
                grain = e.Mapping.grain;
                chunk_multiplier = max 1 e.Mapping.chunk_multiplier;
              }))
