(** Deterministic fault injection for the cluster runtime.

    Every injected failure — message drop, duplication, corruption,
    delay, node crash, straggler — is drawn from a splitmix64 stream
    seeded by the plan.  The cluster protocol is single-threaded, so a
    fixed seed reproduces the exact fault schedule, and with it the
    runtime's recovery behaviour, run after run. *)

type crash_phase =
  | Before_work  (** node receives its payload but never computes *)
  | During_work  (** node computes but dies before replying *)
  | After_work  (** node computes; its reply is lost with it *)

type link =
  | To_node of int  (** scatter: main -> node [i] *)
  | From_node of int  (** gather: node [i] -> main *)

type link_faults = {
  drop : float;  (** P(message never delivered) *)
  duplicate : float;  (** P(message delivered twice) *)
  corrupt : float;  (** P(one byte flipped in transit) *)
  delay : float;  (** P(delivery held past the receiver's timeout) *)
}

val no_faults : link_faults

type spec = {
  seed : int;
  faults_of : link -> link_faults;
  crash : (int * crash_phase) option;
  stragglers : int list;  (** nodes whose first reply is delayed *)
  max_attempts : int;  (** per-worker cap on (re-)execution attempts *)
  base_timeout : float;  (** seconds; first receive timeout *)
  max_timeout : float;  (** backoff cap *)
  heartbeat_loss : float;  (** P(a child's pong is discarded in transit) *)
  crash_on_respawn : float;  (** P(a respawned child dies immediately) *)
}

val spec :
  ?drop:float ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?delay:float ->
  ?faults_of:(link -> link_faults) ->
  ?crash:int * crash_phase ->
  ?stragglers:int list ->
  ?max_attempts:int ->
  ?base_timeout:float ->
  ?max_timeout:float ->
  ?heartbeat_loss:float ->
  ?crash_on_respawn:float ->
  seed:int ->
  unit ->
  spec
(** Plan constructor.  [drop]/[duplicate]/[corrupt]/[delay] set a
    uniform per-link rate (all default 0); [faults_of] overrides the
    rates per link.  [heartbeat_loss] and [crash_on_respawn] (both
    default 0) target the service fabric's supervision path — see
    {!service_fault}.  Defaults: no crash, no stragglers, 8 attempts,
    5 ms base timeout capped at 100 ms.  Raises [Invalid_argument] on
    rates outside [0,1] or nonsensical limits. *)

type t
(** A live injector: the plan plus its seeded random stream, crash
    state, and fault counters. *)

val make : spec -> t

val plan : t -> spec

type counters = {
  drops : int;
  duplicates : int;
  corruptions : int;
  delays : int;
  crashes : int;
  heartbeat_losses : int;
  respawn_crashes : int;
}

val zero_counters : counters
val counters : t -> counters
val pp_counters : Format.formatter -> counters -> unit

val timeout_for : spec -> attempt:int -> float
(** Capped exponential backoff: the receive timeout to use on the given
    retry round (0-based). *)

val decide :
  t ->
  link:link ->
  Bytes.t ->
  [ `Drop | `Deliver of Bytes.t * bool * bool ]
(** Draw one message's fate from the seeded stream without touching any
    channel: [`Drop], or [`Deliver (bytes, delayed, duplicated)] where
    [bytes] may have one byte flipped.  Every transport backend routes
    its traffic through this single decision point, so a fault plan has
    the same meaning over mailboxes and over sockets. *)

val send : t -> link:link -> Mailbox.t -> Bytes.t -> unit
(** Deliver a message through a mailbox, applying the link's faults
    (drop / corrupt one byte / park as delayed / duplicate).
    Equivalent to acting on {!decide}. *)

val crash_now : t -> node:int -> phase:crash_phase -> bool
(** True exactly once, when execution of the planned crash node first
    reaches the planned phase; the node is then permanently dead. *)

val mark_crashed : t -> int -> bool
(** Record an *observed* (rather than planned) death of a node — the
    multi-process backend calls this on reading EOF from a child's
    channel, whether the child [_exit]ed on an injected crash or was
    killed externally.  True if the death was fresh. *)

val is_crashed : t -> int -> bool

type service_fault =
  | Heartbeat_loss
      (** a pong from a live child is discarded before the supervisor
          sees it; enough in a row trips the miss threshold *)
  | Crash_on_respawn
      (** a freshly respawned child dies before serving anything,
          forcing the supervisor's backoff to escalate *)

val inject : t -> service_fault -> node:int -> bool
(** Draw whether to fire a service-fabric fault against [node]'s
    supervision path, from the same seeded stream as link faults (the
    supervisor is the fabric's single protocol owner, so one stream is
    one schedule).  Zero-rate faults consume no randomness: plans
    written before these points existed keep their exact schedules.
    Counted in {!counters} and {!Stats}. *)
