(** Deterministic fault injection for the cluster runtime.

    A real MPI deployment loses links and ranks; the in-process runtime
    never does, so nothing exercised the recovery machinery the paper's
    runtime lacks.  This module injects those failures *on purpose and
    reproducibly*: every decision (drop this message?  flip which bit?)
    is drawn from a splitmix64 stream seeded by the plan, and the
    cluster protocol is single-threaded, so a given seed yields the
    exact same fault schedule — and therefore the same retries,
    redeliveries and recovery path — on every run.

    Faults are applied at the mailbox boundary, per *link* (main to a
    node, or a node back to main):

    - {b drop}: the message is never enqueued;
    - {b corrupt}: one byte is XORed with a nonzero mask before
      delivery, which the checksummed envelope must catch;
    - {b duplicate}: the message is enqueued twice, which at-most-once
      reply dedup must absorb;
    - {b delay}: the message is parked ({!Mailbox.send_delayed}) and
      becomes visible only after the receiver times out — a straggler
      whose reply crosses the retry on the wire.

    Node-level faults: one node may crash permanently (before, during
    or after its [work]), and designated straggler nodes have their
    first reply delayed. *)

module Rng = Triolet_base.Rng

type crash_phase = Before_work | During_work | After_work

type link =
  | To_node of int  (** scatter: main -> node [i] *)
  | From_node of int  (** gather: node [i] -> main *)

type link_faults = {
  drop : float;
  duplicate : float;
  corrupt : float;
  delay : float;
}

let no_faults = { drop = 0.0; duplicate = 0.0; corrupt = 0.0; delay = 0.0 }

let check_prob name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Fault: %s probability out of [0,1]" name)

type spec = {
  seed : int;
  faults_of : link -> link_faults;
      (** per-link fault rates; defaults to a uniform rate everywhere *)
  crash : (int * crash_phase) option;
      (** node that crashes permanently, and when *)
  stragglers : int list;  (** nodes whose first reply is delayed *)
  max_attempts : int;  (** per-worker cap on (re-)execution attempts *)
  base_timeout : float;  (** seconds; first gather/node receive timeout *)
  max_timeout : float;  (** cap for the exponential backoff *)
  heartbeat_loss : float;
      (** P(a child's pong never reaches the supervisor) — exercises
          the missed-heartbeat death verdict on live children *)
  crash_on_respawn : float;
      (** P(a respawned child dies immediately) — exercises the
          supervisor's backoff on flapping nodes *)
}

let spec ?(drop = 0.0) ?(duplicate = 0.0) ?(corrupt = 0.0) ?(delay = 0.0)
    ?faults_of ?crash ?(stragglers = []) ?(max_attempts = 8)
    ?(base_timeout = 0.005) ?(max_timeout = 0.1) ?(heartbeat_loss = 0.0)
    ?(crash_on_respawn = 0.0) ~seed () =
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "corrupt" corrupt;
  check_prob "delay" delay;
  check_prob "heartbeat_loss" heartbeat_loss;
  check_prob "crash_on_respawn" crash_on_respawn;
  if max_attempts < 1 then invalid_arg "Fault.spec: max_attempts < 1";
  if base_timeout <= 0.0 || max_timeout < base_timeout then
    invalid_arg "Fault.spec: bad timeouts";
  let uniform = { drop; duplicate; corrupt; delay } in
  let faults_of =
    match faults_of with Some f -> f | None -> fun _ -> uniform
  in
  { seed; faults_of; crash; stragglers; max_attempts; base_timeout;
    max_timeout; heartbeat_loss; crash_on_respawn }

type counters = {
  drops : int;
  duplicates : int;
  corruptions : int;
  delays : int;
  crashes : int;
  heartbeat_losses : int;
  respawn_crashes : int;
}

let zero_counters =
  { drops = 0; duplicates = 0; corruptions = 0; delays = 0; crashes = 0;
    heartbeat_losses = 0; respawn_crashes = 0 }

let pp_counters fmt c =
  Format.fprintf fmt
    "drops=%d duplicates=%d corruptions=%d delays=%d crashes=%d" c.drops
    c.duplicates c.corruptions c.delays c.crashes;
  if c.heartbeat_losses > 0 || c.respawn_crashes > 0 then
    Format.fprintf fmt " heartbeat_losses=%d respawn_crashes=%d"
      c.heartbeat_losses c.respawn_crashes

type t = {
  s : spec;
  rng : Rng.t;
  lock : Mutex.t;
  mutable crashed : bool array;  (* grown on demand; index = node *)
  mutable straggled : int list;  (* straggler delays already fired *)
  mutable counters : counters;
}

let make s = {
  s;
  rng = Rng.create s.seed;
  lock = Mutex.create ();
  crashed = [||];
  straggled = [];
  counters = zero_counters;
}

let plan t = t.s

let counters t =
  Mutex.lock t.lock;
  let c = t.counters in
  Mutex.unlock t.lock;
  c

(* Exponential backoff, capped: 1x, 2x, 4x ... the base timeout. *)
let timeout_for s ~attempt =
  let a = max 0 (min attempt 30) in
  Float.min s.max_timeout (s.base_timeout *. Float.of_int (1 lsl a))

let ensure_node t node =
  if node >= Array.length t.crashed then begin
    let n = Array.make (node + 1) false in
    Array.blit t.crashed 0 n 0 (Array.length t.crashed);
    t.crashed <- n
  end

let is_crashed t node =
  Mutex.lock t.lock;
  let v = node < Array.length t.crashed && t.crashed.(node) in
  Mutex.unlock t.lock;
  v

(** [crash_now t ~node ~phase] fires the planned crash the first time
    execution of [node] reaches [phase]; once fired the node stays dead
    ({!is_crashed}) and work for its slice must be re-executed on a
    surviving node. *)
let crash_now t ~node ~phase =
  match t.s.crash with
  | Some (n, p) when n = node && p = phase ->
      Mutex.lock t.lock;
      ensure_node t node;
      let fresh = not t.crashed.(node) in
      if fresh then begin
        t.crashed.(node) <- true;
        t.counters <- { t.counters with crashes = t.counters.crashes + 1 }
      end;
      Mutex.unlock t.lock;
      if fresh then begin
        Stats.record_crash ();
        Stats.record_fault ()
      end;
      fresh
  | _ -> false

(* One Bernoulli draw.  Zero-rate faults skip the draw; determinism is
   unaffected because the plan itself fixes which rates are zero. *)
let roll t p = p > 0.0 && Rng.float t.rng < p

let flip_byte t bytes =
  let len = Bytes.length bytes in
  if len = 0 then bytes
  else begin
    let b = Bytes.copy bytes in
    let pos = Rng.int t.rng len in
    let mask = 1 + Rng.int t.rng 255 in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
    b
  end

let bump t f =
  t.counters <- f t.counters;
  Stats.record_fault ()

(* A straggler node's first reply is forcibly delayed (consuming no
   randomness, so stragglers do not shift the fault schedule of other
   links). *)
let straggle_now t link =
  match link with
  | From_node n
    when List.mem n t.s.stragglers && not (List.mem n t.straggled) ->
      t.straggled <- n :: t.straggled;
      true
  | To_node _ | From_node _ -> false

(** [decide t ~link bytes] draws this message's fate from the seeded
    stream without touching any channel: [`Drop], or
    [`Deliver (bytes', delayed, duplicated)] where [bytes'] may have one
    byte flipped.  The draw order (drop, corrupt, delay, duplicate) is
    the wire contract every transport shares — both the mailbox and the
    socket backends route their traffic through this single function, so
    a fault plan means the same thing on either.  Counted in
    {!counters} and {!Stats}. *)
let decide t ~link bytes =
  Mutex.lock t.lock;
  let lf = t.s.faults_of link in
  let dropped = roll t lf.drop in
  let decision =
    if dropped then begin
      bump t (fun c -> { c with drops = c.drops + 1 });
      `Drop
    end
    else begin
      let bytes =
        if roll t lf.corrupt then begin
          bump t (fun c -> { c with corruptions = c.corruptions + 1 });
          flip_byte t bytes
        end
        else bytes
      in
      let delayed = straggle_now t link || roll t lf.delay in
      if delayed then
        bump t (fun c -> { c with delays = c.delays + 1 });
      let dup = roll t lf.duplicate in
      if dup then bump t (fun c -> { c with duplicates = c.duplicates + 1 });
      `Deliver (bytes, delayed, dup)
    end
  in
  Mutex.unlock t.lock;
  decision

(** [send t ~link mb bytes] delivers [bytes] through [mb], applying the
    link's faults: possibly dropping, corrupting, delaying or
    duplicating the message.  Counted in {!counters} and {!Stats}. *)
let send t ~link mb bytes =
  match decide t ~link bytes with
  | `Drop -> ()
  | `Deliver (bytes, delayed, dup) ->
      if delayed then Mailbox.send_delayed mb bytes else Mailbox.send mb bytes;
      if dup then Mailbox.send mb (Bytes.copy bytes)

(** [mark_crashed t node] records that [node] died for a reason outside
    the plan's crash schedule — the multi-process backend calls this
    when it reads EOF from a child's channel (the child [_exit]ed on an
    injected crash, or something external [kill]ed it).  Returns whether
    the death was fresh; the node stays dead for {!is_crashed} routing
    either way. *)
let mark_crashed t node =
  Mutex.lock t.lock;
  ensure_node t node;
  let fresh = not t.crashed.(node) in
  if fresh then begin
    t.crashed.(node) <- true;
    t.counters <- { t.counters with crashes = t.counters.crashes + 1 }
  end;
  Mutex.unlock t.lock;
  if fresh then begin
    Stats.record_crash ();
    Stats.record_fault ()
  end;
  fresh

(* Service-fabric fault points.  Decided supervisor-side from the same
   seeded stream as link faults: the supervisor is the fabric's single
   protocol owner, so one stream means one schedule.  A rate of zero
   consumes no randomness (see [roll]), so plans written before these
   points existed keep their exact fault schedules. *)

type service_fault =
  | Heartbeat_loss
      (** a pong from a live child is discarded before the supervisor
          sees it; enough in a row trips the miss threshold *)
  | Crash_on_respawn
      (** a freshly respawned child dies before serving anything,
          forcing the supervisor's backoff to escalate *)

(** [inject t fault ~node] draws whether to fire [fault] against
    [node]'s supervision path.  Seeded and deterministic; counted in
    {!counters} and {!Stats}.  The [node] argument is for tracing only —
    rates are uniform across nodes. *)
let inject t fault ~node =
  ignore node;
  Mutex.lock t.lock;
  let fire =
    match fault with
    | Heartbeat_loss ->
        let f = roll t t.s.heartbeat_loss in
        if f then
          bump t (fun c -> { c with heartbeat_losses = c.heartbeat_losses + 1 });
        f
    | Crash_on_respawn ->
        let f = roll t t.s.crash_on_respawn in
        if f then
          bump t (fun c -> { c with respawn_crashes = c.respawn_crashes + 1 });
        f
  in
  Mutex.unlock t.lock;
  fire
