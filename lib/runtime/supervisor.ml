(** Child supervision for the long-lived service fabric.

    A {!Service} keeps one forked worker per node warm across requests;
    this module owns the per-child health state machine that keeps that
    fabric true to its configured size:

    - {b heartbeats}: every [heartbeat_interval] seconds the supervisor
      sends a [Ping] frame down each live channel; a live child echoes
      the payload back as a [Pong].  [miss_threshold] consecutive
      unanswered pings are a death verdict — the child is SIGKILLed so
      its EOF surfaces through the one code path every kind of death
      already takes (crash, injected [_exit], external kill, hang).
    - {b respawn}: an EOF'd child is replaced by a fresh fork of the
      same serve closure after a backoff delay.  The delay starts at
      [backoff_base] and doubles (capped at [backoff_max]) while the
      node keeps dying young — a flapping child must not busy-loop the
      fork path — and resets to the base once a respawned child proves
      itself with a pong.

    Both paths are chaos-testable under the seeded {!Fault} injector:
    [Fault.Heartbeat_loss] discards a pong before the supervisor sees
    it, [Fault.Crash_on_respawn] makes a replacement child exit before
    serving anything.  Decisions are drawn supervisor-side from the
    injector's single stream, so a fixed seed fixes the schedule.

    The supervisor performs no I/O multiplexing of its own: the owner
    (the service dispatcher) runs the [select] loop, feeds pongs and
    EOFs in, and calls {!tick} from its idle edge.  All calls must come
    from that single owner thread. *)

module Obs = Triolet_obs.Obs

type child = {
  id : int;
  mutable last_pong : int;  (* monotonic ns; birth time until first pong *)
  mutable last_ping : int;  (* monotonic ns of the newest ping sent *)
  mutable outstanding : int;  (* pings sent since the last accepted pong *)
  mutable backoff : float;  (* next respawn delay, seconds *)
  mutable respawn_at : int option;  (* monotonic ns when a respawn is due *)
  mutable fresh_spawn : bool;  (* respawned but not yet pong-verified *)
}

type t = {
  fabric : Transport.Proc.t;
  serve : id:int -> Transport.Socket.t -> unit;
  hb_interval : float;
  miss_threshold : int;
  backoff_base : float;
  backoff_max : float;
  faults : Fault.t option;
  children : child array;
  trackers : Protocol.tracker array;
      (* one Parent-side conformance tracker per child slot: every real
         event on a child's channel replays through Protocol.spec *)
  mutable respawns : int;
  mutable heartbeat_misses : int;
}

let ns_of_s s = int_of_float (s *. 1e9)

let create ~fabric ~serve ?(hb_interval = 0.05) ?(miss_threshold = 3)
    ?(backoff_base = 0.01) ?(backoff_max = 1.0) ?faults () =
  if hb_interval <= 0.0 then invalid_arg "Supervisor: hb_interval <= 0";
  if miss_threshold < 1 then invalid_arg "Supervisor: miss_threshold < 1";
  if backoff_base <= 0.0 || backoff_max < backoff_base then
    invalid_arg "Supervisor: bad backoff";
  let now = Clock.monotonic_ns () in
  {
    fabric;
    serve;
    hb_interval;
    miss_threshold;
    backoff_base;
    backoff_max;
    faults;
    children =
      Array.init (Transport.Proc.size fabric) (fun id ->
          {
            id;
            last_pong = now;
            last_ping = now;
            outstanding = 0;
            backoff = backoff_base;
            respawn_at = None;
            fresh_spawn = false;
          });
    trackers =
      Array.init (Transport.Proc.size fabric) (fun id ->
          Protocol.make_tracker Protocol.Parent ~id:(string_of_int id));
    respawns = 0;
    heartbeat_misses = 0;
  }

let respawns t = t.respawns
let heartbeat_misses t = t.heartbeat_misses
let live_ids t = Transport.Proc.alive_ids t.fabric
let alive t i = Transport.Proc.is_alive t.fabric i
let protocol_state t i = Protocol.tracker_state t.trackers.(i)

(** A non-heartbeat frame ([Data]/[Err]/[Nack]) arrived from node [i]:
    the owner reports it here so the conformance tracker sees the same
    event stream the dispatcher does. *)
let note_frame t i kind = Protocol.step t.trackers.(i) (Protocol.Recv kind)

(** A pong arrived from node [i].  Subject to the seeded
    [Heartbeat_loss] injection: a dropped pong leaves the miss counter
    ticking exactly as real network silence would.  Returns whether the
    pong was accepted. *)
let note_pong t i ~now =
  let lost =
    match t.faults with
    | Some f -> Fault.inject f Fault.Heartbeat_loss ~node:i
    | None -> false
  in
  if lost then
    Obs.instant ~name:"service.heartbeat.lost"
      ~attrs:[ ("node", string_of_int i) ]
      ()
  else begin
    Protocol.step t.trackers.(i) (Protocol.Recv Protocol.Pong);
    let c = t.children.(i) in
    c.last_pong <- now;
    c.outstanding <- 0;
    if c.fresh_spawn then begin
      (* The replacement held long enough to answer a ping: stop
         escalating against this node. *)
      c.fresh_spawn <- false;
      c.backoff <- t.backoff_base
    end
  end;
  not lost

(** Node [i]'s channel hit EOF: every kind of death funnels through
    here.  Schedules the replacement fork after the node's current
    backoff and escalates the backoff for the next time.

    The delay actually slept is clamped {e before} it is scheduled, so
    no single wait can exceed [backoff_max] even if an escalated value
    leaked into [c.backoff]; the successor delay is then escalated from
    the clamped value.  A flapping node therefore sleeps exactly
    [base, 2·base, …, max, max, …] — the sequence a unit test pins. *)
let note_eof t i ~now =
  Protocol.step t.trackers.(i) Protocol.Eof;
  let c = t.children.(i) in
  if c.respawn_at = None then begin
    let delay = Float.min t.backoff_max c.backoff in
    Obs.instant ~name:"service.child.death"
      ~attrs:
        [ ("node", string_of_int i); ("backoff", Printf.sprintf "%.3f" delay) ]
      ();
    c.respawn_at <- Some (now + ns_of_s delay);
    c.backoff <- Float.min t.backoff_max (delay *. 2.0);
    c.outstanding <- 0
  end

(** Current respawn delay (seconds) node [i] would sleep if it died
    now, and the deadline of a scheduled respawn — introspection for
    tests pinning the backoff sequence. *)
let backoff_s t i = Float.min t.backoff_max t.children.(i).backoff
let respawn_due_at t i = t.children.(i).respawn_at

(** The delay sequence a node that keeps dying young sleeps, as pure
    data: [base, 2·base, …] clamped at [max].  [note_eof] follows this
    exactly; the unit test checks both against each other. *)
let backoff_sequence ~base ~max:max_s n =
  let rec go d k acc =
    if k = 0 then List.rev acc
    else
      let slept = Float.min max_s d in
      go (Float.min max_s (slept *. 2.0)) (k - 1) (slept :: acc)
  in
  go base n []

(* The replacement child: possibly sacrificed to the seeded
   [Crash_on_respawn] point (decided in the parent, before the fork, so
   the schedule never depends on child-side state).  A sacrificed child
   exits before serving anything — the parent sees a fresh EOF and the
   backoff escalates, exactly like a real flapping node. *)
let do_respawn t i =
  let crash_young =
    match t.faults with
    | Some f -> Fault.inject f Fault.Crash_on_respawn ~node:i
    | None -> false
  in
  let serve = t.serve in
  let child ~id chan =
    if crash_young then Transport.Socket.close chan else serve ~id chan
  in
  Protocol.step t.trackers.(i) Protocol.Backoff_elapsed;
  Transport.Proc.respawn t.fabric i ~child;
  t.respawns <- t.respawns + 1;
  Stats.record_respawn ();
  Obs.instant ~name:"service.respawn"
    ~attrs:[ ("node", string_of_int i); ("pid", string_of_int (Transport.Proc.pid t.fabric i)) ]
    ();
  let c = t.children.(i) in
  let now = Clock.monotonic_ns () in
  c.last_pong <- now;
  c.last_ping <- now;
  c.outstanding <- 0;
  c.respawn_at <- None;
  c.fresh_spawn <- true

(** Drive the state machine from the owner's idle edge: send due pings,
    convert [miss_threshold] unanswered pings into a SIGKILL (the EOF
    lands in the owner's [recv_any] and comes back via {!note_eof}),
    and perform respawns whose backoff has elapsed. *)
let tick t ~now =
  Array.iter
    (fun c ->
      if Transport.Proc.is_alive t.fabric c.id then begin
        if c.outstanding >= t.miss_threshold then begin
          (* Silent death (or a hung child): force the EOF. *)
          Protocol.step t.trackers.(c.id) Protocol.Miss_limit;
          t.heartbeat_misses <- t.heartbeat_misses + 1;
          Stats.record_heartbeat_miss ();
          Obs.instant ~name:"service.heartbeat.miss"
            ~attrs:[ ("node", string_of_int c.id) ]
            ();
          c.outstanding <- 0;
          Transport.Proc.kill t.fabric c.id
        end
        else if now - c.last_ping >= ns_of_s t.hb_interval then begin
          c.last_ping <- now;
          c.outstanding <- c.outstanding + 1;
          try
            Transport.Socket.send
              (Transport.Proc.node t.fabric c.id).Transport.Proc.chan
              ~kind:Transport.Ping Bytes.empty
          with Transport.Closed -> ()
        end
      end
      else
        match c.respawn_at with
        | Some at when now >= at -> do_respawn t c.id
        | _ -> ())
    t.children

(** Seconds until the next scheduled event (ping due or respawn due);
    the owner caps its select timeout with this so heartbeat cadence
    survives long idle stretches. *)
let next_event_in t ~now =
  Array.fold_left
    (fun acc c ->
      let candidate =
        if Transport.Proc.is_alive t.fabric c.id then
          Some (c.last_ping + ns_of_s t.hb_interval)
        else match c.respawn_at with Some at -> Some at | None -> None
      in
      match candidate with
      | None -> acc
      | Some at -> Float.min acc (Float.max 0.0 (float_of_int (at - now) /. 1e9)))
    t.hb_interval t.children
