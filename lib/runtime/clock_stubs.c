/* Per-thread CPU clock for worker busy-time accounting.
 *
 * CLOCK_THREAD_CPUTIME_ID charges a worker only for cycles it actually
 * executed, so busy times stay meaningful when workers timeshare fewer
 * physical cores than the pool has domains (each OCaml domain is one
 * OS thread).  Falls back to the monotonic wall clock where the
 * per-thread clock is missing. */

#include <time.h>
#include <caml/mlvalues.h>

CAMLprim value triolet_thread_cputime_ns(value unit)
{
  struct timespec ts;
#ifdef CLOCK_THREAD_CPUTIME_ID
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
#endif
    clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + ts.tv_nsec);
}

/* Monotonic clock for deadline arithmetic and duration measurement.
 * Unlike Unix.gettimeofday (the wall clock), CLOCK_MONOTONIC never
 * steps backwards or jumps under NTP adjustment, so timeouts computed
 * from it cannot spuriously expire (or never expire) and measured
 * durations are always non-negative. */
CAMLprim value triolet_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return Val_long((intnat)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
