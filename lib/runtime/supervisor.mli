(** Child supervision for the long-lived service fabric.

    Owns the per-child health state machine over a {!Transport.Proc}
    fabric: periodic [Ping] heartbeats, missed-heartbeat death verdicts
    (realized as SIGKILL so every death funnels through the one EOF
    path), and respawn of dead children with capped exponential backoff
    that resets once a replacement proves itself with a pong.

    The supervisor does no I/O multiplexing of its own.  Its owner (the
    service dispatcher) runs the [select] loop, reports pongs, frames
    and EOFs in, and calls {!tick} from its idle edge; {e all} calls
    must come from that single owner thread.  Each child slot carries a
    [Protocol.Parent] conformance tracker: every reported event is also
    replayed through {!Protocol.spec}, so a dispatcher that drifts from
    the reified protocol shows up in [Protocol.violations] (and raises
    in debug mode). *)

type t

val create :
  fabric:Transport.Proc.t ->
  serve:(id:int -> Transport.Socket.t -> unit) ->
  ?hb_interval:float ->
  ?miss_threshold:int ->
  ?backoff_base:float ->
  ?backoff_max:float ->
  ?faults:Fault.t ->
  unit ->
  t
(** [create ~fabric ~serve ()] supervises every node of [fabric];
    [serve] is the closure a respawned child runs (the same one the
    original fork ran).  [hb_interval] seconds between pings (default
    0.05); [miss_threshold] unanswered pings are a death verdict
    (default 3); respawn backoff starts at [backoff_base] (default
    0.01 s) and doubles per young death up to [backoff_max] (default
    1.0 s).  [faults] subjects pong delivery and respawn to the seeded
    chaos plan.  Raises [Invalid_argument] on nonsensical tunables. *)

(** {1 Counters and views} *)

val respawns : t -> int
(** Children replaced so far. *)

val heartbeat_misses : t -> int
(** Death verdicts issued for heartbeat silence. *)

val live_ids : t -> int list
val alive : t -> int -> bool

val protocol_state : t -> int -> string
(** Current {!Protocol.spec} parent-side state of node [i]'s tracker
    (["live"] or ["backoff"]). *)

val backoff_s : t -> int -> float
(** The respawn delay (seconds) node [i] would sleep if it died now —
    already clamped to [backoff_max]. *)

val respawn_due_at : t -> int -> int option
(** Monotonic-ns deadline of node [i]'s scheduled respawn, if one is
    pending. *)

val backoff_sequence : base:float -> max:float -> int -> float list
(** First [n] delays a node that keeps dying young sleeps:
    [base, 2·base, …] clamped at [max] {e before} each sleep.
    {!note_eof} follows this sequence exactly. *)

(** {1 Event reports from the owner} *)

val note_pong : t -> int -> now:int -> bool
(** A pong arrived from node [i] ([now] in monotonic ns).  Subject to
    seeded [Heartbeat_loss] injection; returns whether the pong was
    accepted. *)

val note_eof : t -> int -> now:int -> unit
(** Node [i]'s channel hit EOF — every kind of death funnels through
    here.  Schedules the respawn after the node's current backoff. *)

val note_frame : t -> int -> Protocol.kind -> unit
(** A non-heartbeat frame arrived from node [i]; conformance tracking
    only, no health-state effect. *)

(** {1 Driving} *)

val tick : t -> now:int -> unit
(** Send due pings, convert miss-threshold silences into SIGKILLs, and
    perform respawns whose backoff has elapsed.  Call from the owner's
    idle edge. *)

val next_event_in : t -> now:int -> float
(** Seconds until the next scheduled ping or respawn; the owner caps
    its select timeout with this. *)
