(** Global runtime counters: messages and bytes crossing node
    boundaries, chunks executed, work-stealing activity.  Atomic, so
    pool workers may bump them concurrently.

    Per-worker counters (indexed by pool worker id) make scheduler load
    imbalance observable: chunks executed, range splits, steals, failed
    steal sweeps, and busy time per worker. *)

type worker_snapshot = {
  w_chunks : int;  (** grain-sized chunks this worker executed *)
  w_splits : int;  (** range tasks this worker split for thieves *)
  w_steals : int;  (** range tasks this worker stole from peers *)
  w_failed_steals : int;  (** full sweeps of peers that found nothing *)
  w_busy_ns : int;  (** thread CPU time spent executing chunks *)
}

type snapshot = {
  messages : int;
  bytes_sent : int;
  chunks_run : int;
  steals : int;
  splits : int;
  failed_steals : int;
  tasks_spawned : int;
  faults_injected : int;  (** messages dropped/duplicated/corrupted/delayed *)
  retries : int;  (** gather timeouts that re-issued a node's task *)
  redeliveries : int;  (** duplicate or late replies discarded by dedup *)
  corrupt_drops : int;  (** messages rejected by checksum/decode *)
  crashed_nodes : int;  (** node crashes fired by the injector *)
  recovery_ns : int;  (** wall time spent in timeout/retry recovery *)
  respawns : int;  (** dead service children replaced by the supervisor *)
  heartbeat_misses : int;  (** heartbeat silences that tripped the threshold *)
  shed : int;  (** requests rejected [Overloaded] by admission control *)
  deadline_expired : int;  (** requests cancelled past their deadline *)
  per_worker : worker_snapshot array;
}

val ensure_workers : int -> unit
(** Registers [n] worker slots (grows, never shrinks).  Pools call this
    on creation so per-worker counters cover every worker id. *)

val record_message : bytes:int -> unit
val record_chunk : ?worker:int -> unit -> unit
val record_steal : ?worker:int -> unit -> unit
val record_split : ?worker:int -> unit -> unit
val record_failed_steal : ?worker:int -> unit -> unit

val record_busy : worker:int -> int -> unit
(** [record_busy ~worker ns] adds [ns] nanoseconds of busy time. *)

val record_task : unit -> unit

(** {1 Fault-tolerance counters}

    Bumped by the {!Fault} injector and the recovery paths in
    {!Cluster.run}; zero in fault-free runs. *)

(** {2 Encode accounting}

    Standalone counter (not part of {!snapshot}) for payload
    serializations performed by the scatter paths.  The retry loops
    encode each (node, slice) exactly once and replay cached bytes, so
    under injected drops [encode_count] equals the slice count — a
    regression test pins that contract. *)

val record_encode : unit -> unit
val encode_count : unit -> int
val reset_encode_count : unit -> unit

val record_fault : unit -> unit
val record_retry : unit -> unit
val record_redelivery : unit -> unit
val record_corrupt_drop : unit -> unit
val record_crash : unit -> unit
val record_recovery_ns : int -> unit

(** {1 Service-fabric counters}

    Bumped by the long-lived service's supervisor and admission
    control; zero outside {!Service} runs. *)

val record_respawn : unit -> unit
val record_heartbeat_miss : unit -> unit
val record_shed : unit -> unit
val record_deadline_expired : unit -> unit

(** {1 Snapshots and deltas}

    A snapshot reads each atomic independently: it is not a single
    consistent cut across counters, but every counter is monotone, so
    each field of a later-minus-earlier {!diff} is non-negative — and
    so is each field of {!snapshot} itself.  {!reset} captures a
    baseline that {!snapshot} subtracts rather than zeroing the live
    counters, so a reset concurrent with running workers can never
    produce torn half-zeroed state or negative deltas in an in-flight
    {!measure}. *)

val snapshot : unit -> snapshot
(** Counters accumulated since the last {!reset} (process start if
    none).  Every field non-negative. *)

val reset : unit -> unit
(** Re-baseline: subsequent {!snapshot}s count from here.  Safe to call
    while workers are recording (one atomic store). *)

val diff : snapshot -> snapshot -> snapshot
(** [diff a b] is the per-field difference [a - b]; worker slots absent
    in [b] delta against zero.  Non-negative whenever [a] was taken
    after [b]. *)

val zero : snapshot
(** The all-zero snapshot ([diff s s] without the array allocation). *)

val measure : (unit -> 'a) -> 'a * snapshot
(** [measure f] runs [f] and returns its result with the counter deltas
    incurred during the call, including per-worker deltas.  Unaffected
    by a concurrent {!reset} (it deltas raw counters, not baselined
    snapshots). *)

val imbalance : snapshot -> float
(** Max per-worker busy time over the mean (workers with zero busy time
    excluded): 1.0 is perfectly balanced, the active worker count means
    one worker did everything; [nan] if nothing was recorded. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
