(** Long-lived, supervised job service over the {!Transport.Proc}
    fork-per-node fabric.

    A service forks its workers once, keeps them warm across requests,
    and wires supervision (heartbeats + respawn via {!Supervisor}),
    retry of a dead child's in-flight slices, absolute-deadline
    propagation, and bounded-queue admission control end to end.

    Concurrency model: any number of client threads may call {!submit};
    a single dispatcher thread owns the fabric and runs the whole
    protocol, so every seeded fault decision happens on one stream in
    one order.  The parent process must never spawn a domain (respawn
    forks); intra-request parallelism lives in the children's pools. *)

type error =
  | Overloaded  (** rejected at admission: the queue is at its bound *)
  | Deadline_expired  (** the request's compute budget ran out *)
  | Draining  (** the service no longer accepts work *)
  | Failed of string  (** task code raised, or recovery gave up *)

val error_to_string : error -> string

type config = {
  nodes : int;
  cores_per_node : int;
  queue_bound : int;  (** admission-queue high-water mark *)
  heartbeat_interval : float;  (** seconds between pings per child *)
  miss_threshold : int;  (** unanswered pings before a death verdict *)
  respawn_backoff : float;  (** first respawn delay, seconds *)
  respawn_backoff_max : float;  (** backoff cap for flapping children *)
  request_timeout : float;  (** base per-slice retry timeout, seconds *)
  max_attempts : int;  (** per-slice cap on (re-)execution attempts *)
  poll_interval : float;  (** dispatcher select poll cap, seconds *)
  faults : Fault.spec option;  (** seeded chaos plan, if any *)
}

val default_config : config

type t

val create :
  ?cfg:config ->
  work:
    (node:int ->
    pool:Pool.t ->
    Triolet_base.Payload.t ->
    Triolet_base.Payload.t) ->
  unit ->
  t
(** Fork the fabric and start the dispatcher.  [work] crosses into the
    children by address-space inheritance at fork time and must be
    re-executable (a slice may run more than once under retries).
    Fails if any domain has ever been spawned in this process — the
    fabric forks, and OCaml forbids [fork] after a domain spawn. *)

val submit :
  ?deadline:float ->
  t ->
  Triolet_base.Payload.t array ->
  (Triolet_base.Payload.t array, error) result
(** Submit one request: [payloads.(i)] becomes slice [i], distributed
    over live nodes; the result array is in slice order.  Blocks the
    calling thread until the request completes or is rejected.
    [deadline] is a compute budget in seconds from now.  Thread-safe;
    admission control applies at the queue's high-water mark. *)

val drain : t -> unit
(** Stop accepting work ([Draining] to new submits) but let admitted
    requests finish; returns once the queue is empty and the
    dispatcher is idle. *)

val shutdown : ?grace:float -> t -> unit
(** Graceful shutdown: {!drain}, stop the dispatcher, tear the fabric
    down.  Idempotent. *)

(** {1 Introspection} *)

val live_nodes : t -> int list
val node_pids : t -> int array
val respawns : t -> int
val heartbeat_misses : t -> int

val fault_counters : t -> Fault.counters option
(** Counters of the seeded chaos plan, when one was configured. *)
