(** Global runtime counters.

    The evaluation attributes performance differences to communication
    volume and task behaviour, so the runtime counts everything it does:
    messages and bytes crossing node boundaries, chunks executed, and
    work-stealing activity.  Counters are atomic so pool workers can
    bump them concurrently.

    Besides the global aggregates, the scheduler keeps *per-worker*
    counters (chunks run, range splits, steals, failed steal sweeps,
    busy time) so load imbalance is directly observable: under static
    chunking a skewed workload shows one worker with most of the busy
    time; under adaptive lazy splitting the busy times even out and the
    split/steal counters show how the rebalancing happened. *)

type worker_snapshot = {
  w_chunks : int;  (** grain-sized chunks this worker executed *)
  w_splits : int;  (** range tasks this worker split for thieves *)
  w_steals : int;  (** range tasks this worker stole from peers *)
  w_failed_steals : int;  (** full sweeps of peers that found nothing *)
  w_busy_ns : int;  (** thread CPU time spent executing chunks *)
}

type snapshot = {
  messages : int;
  bytes_sent : int;
  chunks_run : int;
  steals : int;
  splits : int;
  failed_steals : int;
  tasks_spawned : int;
  faults_injected : int;  (** messages dropped/duplicated/corrupted/delayed *)
  retries : int;  (** gather timeouts that re-issued a node's task *)
  redeliveries : int;  (** duplicate or late replies discarded by dedup *)
  corrupt_drops : int;  (** messages rejected by checksum/decode *)
  crashed_nodes : int;  (** node crashes fired by the injector *)
  recovery_ns : int;  (** wall time spent in timeout/retry recovery *)
  respawns : int;  (** dead service children replaced by the supervisor *)
  heartbeat_misses : int;  (** heartbeat silences that tripped the threshold *)
  shed : int;  (** requests rejected [Overloaded] by admission control *)
  deadline_expired : int;  (** requests cancelled past their deadline *)
  per_worker : worker_snapshot array;
}

let messages = Atomic.make 0
let bytes_sent = Atomic.make 0
let chunks_run = Atomic.make 0
let steals = Atomic.make 0
let splits = Atomic.make 0
let failed_steals = Atomic.make 0
let tasks_spawned = Atomic.make 0
let faults_injected = Atomic.make 0
let retries = Atomic.make 0
let redeliveries = Atomic.make 0
let corrupt_drops = Atomic.make 0
let crashed_nodes = Atomic.make 0
let recovery_ns = Atomic.make 0
let respawns = Atomic.make 0
let heartbeat_misses = Atomic.make 0
let shed = Atomic.make 0
let deadline_expired = Atomic.make 0

(* Per-worker slots, indexed by pool worker id.  Each worker only ever
   bumps its own slot, so the fields are plain atomics with no
   contention; the array grows monotonically under a lock when a wider
   pool registers. *)
type worker_counters = {
  c_chunks : int Atomic.t;
  c_splits : int Atomic.t;
  c_steals : int Atomic.t;
  c_failed_steals : int Atomic.t;
  c_busy_ns : int Atomic.t;
}

let fresh_worker () =
  {
    c_chunks = Atomic.make 0;
    c_splits = Atomic.make 0;
    c_steals = Atomic.make 0;
    c_failed_steals = Atomic.make 0;
    c_busy_ns = Atomic.make 0;
  }

let workers : worker_counters array Atomic.t = Atomic.make [||]
let workers_lock = Mutex.create ()

let ensure_workers n =
  if n > Array.length (Atomic.get workers) then begin
    Mutex.lock workers_lock;
    let old = Atomic.get workers in
    if n > Array.length old then
      Atomic.set workers
        (Array.init n (fun i ->
             if i < Array.length old then old.(i) else fresh_worker ()));
    Mutex.unlock workers_lock
  end

let worker_slot id =
  let w = Atomic.get workers in
  if id >= 0 && id < Array.length w then Some w.(id) else None

let add c n = ignore (Atomic.fetch_and_add c n)

let bump_worker worker field =
  match worker with
  | None -> ()
  | Some id -> (
      match worker_slot id with
      | Some slot -> add (field slot) 1
      | None -> ())

let record_message ~bytes =
  add messages 1;
  add bytes_sent bytes

let record_chunk ?worker () =
  add chunks_run 1;
  bump_worker worker (fun s -> s.c_chunks)

let record_steal ?worker () =
  add steals 1;
  bump_worker worker (fun s -> s.c_steals)

let record_split ?worker () =
  add splits 1;
  bump_worker worker (fun s -> s.c_splits)

let record_failed_steal ?worker () =
  add failed_steals 1;
  bump_worker worker (fun s -> s.c_failed_steals)

let record_busy ~worker ns =
  match worker_slot worker with
  | Some slot -> add slot.c_busy_ns ns
  | None -> ()

let record_task () = add tasks_spawned 1

(* Payload serializations performed by the scatter paths.  A standalone
   counter (not part of {!snapshot}): tests assert encode-count ==
   slice-count under injected drops, pinning the encode-once contract
   of the retry loops. *)
let payload_encodes = Atomic.make 0
let record_encode () = Atomic.incr payload_encodes
let encode_count () = Atomic.get payload_encodes
let reset_encode_count () = Atomic.set payload_encodes 0

(* Fault-tolerance counters (bumped by {!Fault} and {!Cluster}). *)
let record_fault () = add faults_injected 1
let record_retry () = add retries 1
let record_redelivery () = add redeliveries 1
let record_corrupt_drop () = add corrupt_drops 1
let record_crash () = add crashed_nodes 1
let record_recovery_ns ns = add recovery_ns ns

(* Service-fabric counters (bumped by {!Supervisor} and {!Service}). *)
let record_respawn () = add respawns 1
let record_heartbeat_miss () = add heartbeat_misses 1
let record_shed () = add shed 1
let record_deadline_expired () = add deadline_expired 1

(* Coherence model.  A snapshot reads each atomic independently — there
   is no global lock, so it is not a single consistent cut: a snapshot
   taken while workers run may pair counter A's value from slightly
   before counter B's.  What IS guaranteed, and what every consumer
   relies on, is per-counter monotonicity: raw counters only ever grow,
   so for two snapshots s1-then-s2 every field of [diff s2 s1] is
   non-negative, and so is every field of [snapshot ()] itself.

   That guarantee is why [reset] does NOT zero the raw counters: a
   concurrent worker's fetch_and_add interleaving with a field-by-field
   zeroing sweep would produce exactly the torn state the model
   forbids (half the fields zeroed, cross-field totals absurd, and
   in-flight [measure] calls seeing *negative* deltas).  Instead,
   [reset] captures the current raw values as a baseline and [snapshot]
   subtracts that baseline — one atomic ref store, no window in which
   any counter moves backwards. *)

let raw_snapshot () =
  {
    messages = Atomic.get messages;
    bytes_sent = Atomic.get bytes_sent;
    chunks_run = Atomic.get chunks_run;
    steals = Atomic.get steals;
    splits = Atomic.get splits;
    failed_steals = Atomic.get failed_steals;
    tasks_spawned = Atomic.get tasks_spawned;
    faults_injected = Atomic.get faults_injected;
    retries = Atomic.get retries;
    redeliveries = Atomic.get redeliveries;
    corrupt_drops = Atomic.get corrupt_drops;
    crashed_nodes = Atomic.get crashed_nodes;
    recovery_ns = Atomic.get recovery_ns;
    respawns = Atomic.get respawns;
    heartbeat_misses = Atomic.get heartbeat_misses;
    shed = Atomic.get shed;
    deadline_expired = Atomic.get deadline_expired;
    per_worker =
      Array.map
        (fun c ->
          {
            w_chunks = Atomic.get c.c_chunks;
            w_splits = Atomic.get c.c_splits;
            w_steals = Atomic.get c.c_steals;
            w_failed_steals = Atomic.get c.c_failed_steals;
            w_busy_ns = Atomic.get c.c_busy_ns;
          })
        (Atomic.get workers);
  }

let worker_sub a b =
  {
    w_chunks = a.w_chunks - b.w_chunks;
    w_splits = a.w_splits - b.w_splits;
    w_steals = a.w_steals - b.w_steals;
    w_failed_steals = a.w_failed_steals - b.w_failed_steals;
    w_busy_ns = a.w_busy_ns - b.w_busy_ns;
  }

let zero_worker =
  { w_chunks = 0; w_splits = 0; w_steals = 0; w_failed_steals = 0; w_busy_ns = 0 }

(** [diff a b] is the per-field difference [a - b].  Worker slots
    present in [a] but not [b] (a wider pool registered in between)
    delta against zero. *)
let diff a b =
  {
    messages = a.messages - b.messages;
    bytes_sent = a.bytes_sent - b.bytes_sent;
    chunks_run = a.chunks_run - b.chunks_run;
    steals = a.steals - b.steals;
    splits = a.splits - b.splits;
    failed_steals = a.failed_steals - b.failed_steals;
    tasks_spawned = a.tasks_spawned - b.tasks_spawned;
    faults_injected = a.faults_injected - b.faults_injected;
    retries = a.retries - b.retries;
    redeliveries = a.redeliveries - b.redeliveries;
    corrupt_drops = a.corrupt_drops - b.corrupt_drops;
    crashed_nodes = a.crashed_nodes - b.crashed_nodes;
    recovery_ns = a.recovery_ns - b.recovery_ns;
    respawns = a.respawns - b.respawns;
    heartbeat_misses = a.heartbeat_misses - b.heartbeat_misses;
    shed = a.shed - b.shed;
    deadline_expired = a.deadline_expired - b.deadline_expired;
    per_worker =
      Array.mapi
        (fun i wa ->
          let wb =
            if i < Array.length b.per_worker then b.per_worker.(i)
            else zero_worker
          in
          worker_sub wa wb)
        a.per_worker;
  }

let zero =
  {
    messages = 0;
    bytes_sent = 0;
    chunks_run = 0;
    steals = 0;
    splits = 0;
    failed_steals = 0;
    tasks_spawned = 0;
    faults_injected = 0;
    retries = 0;
    redeliveries = 0;
    corrupt_drops = 0;
    crashed_nodes = 0;
    recovery_ns = 0;
    respawns = 0;
    heartbeat_misses = 0;
    shed = 0;
    deadline_expired = 0;
    per_worker = [||];
  }

let baseline = Atomic.make zero

let snapshot () = diff (raw_snapshot ()) (Atomic.get baseline)

let reset () = Atomic.set baseline (raw_snapshot ())

(** Counter deltas around running [f]. *)
let measure f =
  let before = raw_snapshot () in
  let v = f () in
  let after = raw_snapshot () in
  (v, diff after before)

(** Largest per-worker busy time divided by the mean: 1.0 is perfectly
    balanced; [workers] when one worker did everything.  [nan] when no
    busy time was recorded. *)
let imbalance s =
  let busy = Array.map (fun w -> float_of_int w.w_busy_ns) s.per_worker in
  let active = Array.to_list busy |> List.filter (fun b -> b > 0.0) in
  match active with
  | [] -> Float.nan
  | _ ->
      let total = List.fold_left ( +. ) 0.0 active in
      let mx = List.fold_left Float.max 0.0 active in
      mx /. (total /. float_of_int (List.length active))

let pp_worker fmt (i, w) =
  Format.fprintf fmt "w%d: chunks=%d splits=%d steals=%d failed=%d busy=%.3fms"
    i w.w_chunks w.w_splits w.w_steals w.w_failed_steals
    (float_of_int w.w_busy_ns /. 1e6)

let pp_snapshot fmt s =
  Format.fprintf fmt
    "messages=%d bytes=%d chunks=%d steals=%d splits=%d failed-steals=%d \
     tasks=%d"
    s.messages s.bytes_sent s.chunks_run s.steals s.splits s.failed_steals
    s.tasks_spawned;
  if
    s.faults_injected > 0 || s.retries > 0 || s.redeliveries > 0
    || s.corrupt_drops > 0 || s.crashed_nodes > 0
  then
    Format.fprintf fmt
      "@\n  faults=%d retries=%d redeliveries=%d corrupt-drops=%d crashes=%d \
       recovery=%.3fms"
      s.faults_injected s.retries s.redeliveries s.corrupt_drops
      s.crashed_nodes
      (float_of_int s.recovery_ns /. 1e6);
  if
    s.respawns > 0 || s.heartbeat_misses > 0 || s.shed > 0
    || s.deadline_expired > 0
  then
    Format.fprintf fmt
      "@\n  respawns=%d heartbeat-misses=%d shed=%d deadline-expired=%d"
      s.respawns s.heartbeat_misses s.shed s.deadline_expired;
  Array.iteri
    (fun i w ->
      if w.w_chunks > 0 || w.w_busy_ns > 0 then
        Format.fprintf fmt "@\n  %a" pp_worker (i, w))
    s.per_worker
