(** Pluggable cluster transports.

    The cluster runtime moves every payload as serialized bytes; this
    module abstracts *how* those bytes move.  A transport is a
    module-level interface ({!S}) over length-prefixed byte frames:
    [connect] yields a linked pair of endpoints, [send] ships one frame,
    [recv]/[recv_timeout] deliver whole frames in order, [close] tears
    an endpoint down and wakes any peer blocked on it.

    Two implementations:

    - {!Mailbox_chan}: the in-process backend.  Frames ride the existing
      {!Mailbox} FIFO queues (one per direction), so wire behaviour —
      FIFO order, poison-on-close, byte accounting per message — is
      exactly the mailbox runtime's.
    - {!Socket}: a real OS channel.  Frames are written to a
      [socketpair] as a 4-byte big-endian payload length, a 1-byte frame
      kind, and the payload; the endpoints may live in different
      processes, which is what the multi-process cluster backend uses.

    Frame *headers* (length + kind) are transport framing, not payload:
    byte accounting everywhere in the runtime counts payload bytes only,
    so the two backends report identical traffic for identical work.

    {!Proc} is the process fabric the multi-process backend builds on:
    it forks one child per node with a socket channel back to the
    parent, multiplexes replies with [select], and tears children down
    with an EOF-then-SIGKILL grace protocol.  Task *code* crosses the
    [fork] (the child inherits the closure by address-space copy); task
    *data* only ever crosses the socket as bytes.  OCaml cannot fork
    once any domain has been spawned, so the fabric must be created
    before the first domain — see DESIGN.md, Transports. *)

exception Closed
(** The endpoint (or its peer) is closed: no further frames will ever
    arrive.  Mirrors [Mailbox.Closed] and a socket EOF. *)

(** Frame kinds.  [Data] carries protocol payload; [Err] carries a
    remote failure report (an exception escaping task code); [Nack]
    signals that the receiver rejected a frame (e.g. a corrupt task
    envelope) without producing a result.  [Ping]/[Pong] are the
    heartbeat frames of the long-lived service fabric: a supervisor
    pings its children, a live child echoes the payload back as a pong,
    and a silence longer than the miss threshold is a death verdict
    even when the socket never delivers an EOF (a hung child keeps its
    end open forever).

    The type, its byte tags, and the frame header codec all live in
    {!Protocol} — the reified spec the analyzer and model checker also
    consume; this is a re-export so transport users keep a single
    constructor namespace.  A malformed header (unknown kind byte,
    absurd length field) raises [Protocol.Bad_frame], not
    [Invalid_argument]. *)
type kind = Protocol.kind =
  | Data
  | Err
  | Nack
  | Ping
  | Pong
  | Seg_put
  | Seg_reuse
  | Seg_free

let kind_to_byte = Protocol.kind_to_byte
let kind_of_byte = Protocol.kind_of_byte

(** The transport interface: length-prefixed byte frames over a
    connected pair of endpoints. *)
module type S = sig
  val name : string

  type t
  (** One endpoint of a connected channel. *)

  val connect : unit -> t * t
  (** A linked endpoint pair: frames sent on one arrive on the other,
      whole and in order. *)

  val send : t -> ?kind:kind -> Bytes.t -> unit
  (** Ship one frame ([kind] defaults to [Data]).  Raises {!Closed} if
      the channel is down. *)

  val recv : t -> kind * Bytes.t
  (** Blocking receive of the next whole frame.  Raises {!Closed} once
      the channel is closed and drained. *)

  val recv_timeout : t -> float -> [ `Msg of kind * Bytes.t | `Timeout | `Closed ]
  (** Receive with a timeout in seconds. *)

  val close : t -> unit
  (** Tear the endpoint down.  Peers blocked in [recv] wake with
      {!Closed}; pending frames already delivered may still be read by
      the peer where the underlying channel buffers them. *)
end

(* ------------------------------------------------------------------ *)
(* In-process backend: frames over a pair of mailboxes.                 *)

module Mailbox_chan : S = struct
  let name = "mailbox"

  (* One mailbox per direction; the kind byte is prepended to the
     payload so a mailbox message is exactly one frame.  (Mailbox
     messages preserve boundaries, so no length prefix is needed.) *)
  type t = { rx : Mailbox.t; tx : Mailbox.t }

  let connect () =
    let a = Mailbox.create () and b = Mailbox.create () in
    ({ rx = a; tx = b }, { rx = b; tx = a })

  let frame kind payload =
    let len = Bytes.length payload in
    let b = Bytes.create (len + 1) in
    Bytes.set b 0 (kind_to_byte kind);
    Bytes.blit payload 0 b 1 len;
    b

  let unframe b =
    if Bytes.length b = 0 then invalid_arg "Transport.Mailbox_chan: empty frame";
    (kind_of_byte (Bytes.get b 0), Bytes.sub b 1 (Bytes.length b - 1))

  let send t ?(kind = Data) payload =
    match Mailbox.send t.tx (frame kind payload) with
    | () -> ()
    | exception Mailbox.Closed -> raise Closed

  let recv t =
    match Mailbox.recv t.rx with
    | b -> unframe b
    | exception Mailbox.Closed -> raise Closed

  let recv_timeout t timeout =
    match Mailbox.recv_timeout t.rx timeout with
    | `Msg b -> `Msg (unframe b)
    | `Timeout -> `Timeout
    | `Closed -> `Closed

  (* Closing either side poisons both directions, like shutting down a
     socket: the peer's blocked [recv] wakes with [Closed]. *)
  let close t =
    Mailbox.close t.rx;
    Mailbox.close t.tx
end

(* ------------------------------------------------------------------ *)
(* Multi-process backend: frames over a socketpair.                     *)

(* A write to a socket whose reader died raises SIGPIPE, which would
   kill the whole run instead of surfacing as an error the recovery
   machinery can absorb.  Ignore it once, lazily, so merely linking this
   module does not change signal state. *)
let sigpipe_ignored = ref false

let ignore_sigpipe () =
  if not !sigpipe_ignored then begin
    sigpipe_ignored := true;
    if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  end

module Socket = struct
  let name = "socket"

  type t = { fd : Unix.file_descr; mutable closed : bool }

  let of_fd fd = { fd; closed = false }
  let fd t = t.fd

  let connect () =
    ignore_sigpipe ();
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (* Best effort: bigger kernel buffers reduce backpressure stalls
       when node payloads run to megabytes.  The kernel may clamp. *)
    List.iter
      (fun fd ->
        try
          Unix.setsockopt_int fd Unix.SO_SNDBUF (1 lsl 20);
          Unix.setsockopt_int fd Unix.SO_RCVBUF (1 lsl 20)
        with Unix.Unix_error _ -> ())
      [ a; b ];
    (of_fd a, of_fd b)

  let header_len = Protocol.header_len

  let write_all t buf =
    let len = Bytes.length buf in
    let pos = ref 0 in
    while !pos < len do
      match Unix.write t.fd buf !pos (len - !pos) with
      | n -> pos := !pos + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
        ->
          raise Closed
    done

  (* Read exactly [len] bytes; [None] on a clean EOF at a frame
     boundary (peer gone), [Closed] mid-frame or on a dead fd. *)
  let read_exactly t len =
    let buf = Bytes.create len in
    let pos = ref 0 in
    let eof = ref false in
    while (not !eof) && !pos < len do
      match Unix.read t.fd buf !pos (len - !pos) with
      | 0 -> if !pos = 0 then eof := true else raise Closed
      | n -> pos := !pos + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
          raise Closed
    done;
    if !eof then None else Some buf

  let send t ?(kind = Data) payload =
    if t.closed then raise Closed;
    write_all t (Protocol.encode_frame ~kind payload)

  let try_recv_header t =
    match read_exactly t header_len with
    | None -> None
    | Some hdr ->
        let len, kind = Protocol.decode_header hdr 0 in
        let payload =
          if len = 0 then Bytes.empty
          else
            match read_exactly t len with
            | Some b -> b
            | None -> raise Closed (* EOF mid-frame *)
        in
        Some (kind, payload)

  let recv t =
    if t.closed then raise Closed;
    match try_recv_header t with Some f -> f | None -> raise Closed

  let recv_timeout t timeout =
    if t.closed then `Closed
    else
      match Unix.select [ t.fd ] [] [] timeout with
      | [], _, _ -> `Timeout
      | _ -> (
          match try_recv_header t with
          | Some f -> `Msg f
          | None -> `Closed
          | exception Closed -> `Closed)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Timeout

  let close t =
    if not t.closed then begin
      t.closed <- true;
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    end
end

module Socket_s : S = Socket

(* ------------------------------------------------------------------ *)
(* Process fabric: one forked child per node, socket channels back to
   the parent.                                                          *)

module Proc = struct
  type node = {
    id : int;
    mutable pid : int;  (** current incarnation; replaced on respawn *)
    mutable chan : Socket.t;  (** parent-side endpoint *)
    mutable alive : bool;
        (** flipped to false when the parent sees EOF (child exited,
            crashed, or was killed) *)
    mutable reaped : bool;
        (** the current [pid] has been waited for; nothing left to
            collect until a respawn replaces it *)
  }

  (* [lock] serializes teardown state (close/reap/respawn flags) so
     [shutdown] is idempotent and safe to race against a child dying —
     a double-shutdown or an EPIPE mid-teardown must never escape into
     the caller's [~finally].  Frame I/O itself stays lock-free: the
     fabric has a single protocol owner (the run loop or the service
     dispatcher), and signals ([kill]) are async-safe anyway. *)
  type t = { nodes : node array; lock : Mutex.t; mutable shut : bool }

  let node t i = t.nodes.(i)
  let pid t i = t.nodes.(i).pid
  let is_alive t i = t.nodes.(i).alive
  let size t = Array.length t.nodes
  let alive_ids t =
    Array.to_list t.nodes
    |> List.filter_map (fun n -> if n.alive then Some n.id else None)

  (** Fork [n] children.  Each child closes every descriptor except its
      own channel, runs [child ~id chan], and [_exit]s — it never
      returns into the parent's control flow, never flushes the
      parent's buffered output, and never runs [at_exit] handlers.

      Must be called before any domain has been spawned in this
      process; the caller is responsible for checking (OCaml's runtime
      forbids [fork] afterwards). *)
  let fork ~n ~child =
    ignore_sigpipe ();
    (* Children inherit the parent's buffered channel state; anything
       pending at fork time would be written once per process.  Empty
       the buffers first so a child can never replay parent output. *)
    flush_all ();
    let pairs = Array.init n (fun _ -> Socket.connect ()) in
    let nodes =
      Array.init n (fun i ->
          let parent_end, child_end = pairs.(i) in
          match Unix.fork () with
          | 0 ->
              (* Child: keep only this node's child end.  Closing the
                 sibling descriptors matters for EOF detection — a
                 parent-side read returns EOF only once *every* process
                 holding the write end has closed it. *)
              Array.iteri
                (fun j (p, c) ->
                  Socket.close p;
                  if j <> i then Socket.close c)
                pairs;
              (try child ~id:i child_end
               with _ -> (try Socket.close child_end with _ -> ()));
              Unix._exit 0
          | pid ->
              { id = i; pid; chan = parent_end; alive = true; reaped = false })
    in
    (* Parent: the child ends belong to the children now. *)
    Array.iter (fun (_, child_end) -> Socket.close child_end) pairs;
    { nodes; lock = Mutex.create (); shut = false }

  (** Multiplexed receive: the next frame from any live child, that
      child's EOF, a timeout, or — when [wake] is given — [`Wake] once
      that descriptor becomes readable (a self-pipe poked by another
      thread; the caller drains it).  EOF marks the node dead and closes
      its channel. *)
  let recv_any ?wake t ~timeout =
    let live = Array.to_list t.nodes |> List.filter (fun n -> n.alive) in
    if live = [] && wake = None then `No_nodes
    else
      let fds = List.map (fun n -> Socket.fd n.chan) live in
      let fds = match wake with Some w -> w :: fds | None -> fds in
      match Unix.select fds [] [] timeout with
      | [], _, _ -> `Timeout
      | ready, _, _ -> (
          match wake with
          | Some w when List.mem w ready -> `Wake
          | _ -> (
              let fd = List.hd ready in
              let n = List.find (fun n -> Socket.fd n.chan = fd) live in
              match Socket.try_recv_header n.chan with
              | Some (kind, payload) -> `Msg (n.id, kind, payload)
              | None | (exception Closed) ->
                  n.alive <- false;
                  Socket.close n.chan;
                  `Eof n.id))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Timeout

  (* Reap one child: EOF-induced exit first (closing our end already
     told it to stop), then a grace window, then SIGKILL.  Idempotent:
     the [reaped] flag (set under [lock] by callers) ensures a pid is
     waited for exactly once, so a double-shutdown or a shutdown racing
     a concurrent reap can never wait on a recycled pid. *)
  let reap_node ?(grace = 1.0) n =
    let deadline = Clock.monotonic_ns () + int_of_float (grace *. 1e9) in
    let rec wait_nohang () =
      match Unix.waitpid [ Unix.WNOHANG ] n.pid with
      | 0, _ ->
          if Clock.monotonic_ns () >= deadline then begin
            (try Unix.kill n.pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (try Unix.waitpid [] n.pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
          end
          else begin
            Unix.sleepf 0.002;
            wait_nohang ()
          end
      | _ -> ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_nohang ()
    in
    wait_nohang ()

  (* Claim the right to reap [n]'s current pid; at most one caller wins. *)
  let claim_reap t n =
    Mutex.lock t.lock;
    let mine = not n.reaped in
    if mine then n.reaped <- true;
    Mutex.unlock t.lock;
    mine

  (** Reap node [i]: close the channel (EOF tells the child to exit),
      wait, escalate to SIGKILL after [grace].  Idempotent and safe to
      call concurrently with the child dying on its own. *)
  let reap ?grace t i =
    let n = t.nodes.(i) in
    n.alive <- false;
    Socket.close n.chan;
    if claim_reap t n then reap_node ?grace n

  (** SIGKILL node [i]'s current incarnation (no reap — the parent's
      next [recv_any] sees the EOF and marks the node dead, exactly as
      an externally injected crash would). *)
  let kill t i =
    let n = t.nodes.(i) in
    try Unix.kill n.pid Sys.sigkill with Unix.Unix_error _ -> ()

  (** Replace node [i] with a fresh child running [child ~id:i].  The
      old incarnation must already be dead (EOF seen / reaped); its pid
      is collected here if nobody has yet.  Must run on the fabric
      owner's thread, and — like [fork] — requires that no domain has
      ever been spawned in this process. *)
  let respawn t i ~child =
    let n = t.nodes.(i) in
    Socket.close n.chan;
    if claim_reap t n then reap_node ~grace:0.0 n;
    flush_all ();
    let parent_end, child_end = Socket.connect () in
    (match Unix.fork () with
    | 0 ->
        (* Child: drop every other node's parent-side descriptor so EOF
           detection on the siblings' channels keeps working, then run
           the same serve closure as the original incarnation. *)
        Socket.close parent_end;
        Array.iter
          (fun other -> if other.id <> i then try Socket.close other.chan with _ -> ())
          t.nodes;
        (try child ~id:i child_end
         with _ -> (try Socket.close child_end with _ -> ()));
        Unix._exit 0
    | pid ->
        Socket.close child_end;
        Mutex.lock t.lock;
        n.pid <- pid;
        n.chan <- parent_end;
        n.alive <- true;
        n.reaped <- false;
        Mutex.unlock t.lock)

  (** Close every channel (children read EOF and exit) and reap all
      children, escalating to SIGKILL after [grace] seconds each.
      Idempotent — a second call (or a call racing a child's death) is
      a no-op for already-reaped children and never raises, so it is
      safe inside a [~finally]. *)
  let shutdown ?grace t =
    Mutex.lock t.lock;
    let first = not t.shut in
    t.shut <- true;
    Mutex.unlock t.lock;
    ignore first;
    Array.iter
      (fun n ->
        n.alive <- false;
        try Socket.close n.chan with _ -> ())
      t.nodes;
    Array.iter
      (fun n -> if claim_reap t n then try reap_node ?grace n with _ -> ())
      t.nodes
end
