(** Chase–Lev work-stealing deque.

    One owner pushes and pops at the bottom; any number of thieves
    steal from the top.  This is the classic dynamic circular
    work-stealing deque (Chase & Lev, SPAA 2005), which is also what
    TBB-style runtimes — Triolet's intra-node substrate — build on.

    OCaml's [Atomic] operations are sequentially consistent, which is
    stronger than the fences the algorithm needs, so the implementation
    is a direct transcription.

    The adaptive scheduler stores *range tasks* [(lo, hi)] here: an
    owner keeps at most one pending range (the unstarted larger half of
    its current range) on the deque, so a thief always steals the
    biggest contiguous piece of unstarted work, and the owner probes
    {!size}/{!is_empty} between grains to decide whether to split
    again. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  mutable buf : 'a option array;  (* circular; length is a power of two *)
  mutable mask : int;
}

type 'a steal_result = Stolen of 'a | Empty | Retry

let create ?(capacity = 16) () =
  let cap = ref 2 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Array.make !cap None;
    mask = !cap - 1;
  }

let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

let is_empty q = size q = 0

let grow q b t =
  let old = q.buf and old_mask = q.mask in
  let cap = 2 * Array.length old in
  let buf = Array.make cap None in
  let mask = cap - 1 in
  for i = t to b - 1 do
    buf.(i land mask) <- old.(i land old_mask)
  done;
  q.buf <- buf;
  q.mask <- mask

(** Owner-only. *)
let push q v =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  if b - t > Array.length q.buf - 1 then grow q b t;
  q.buf.(b land q.mask) <- Some v;
  Atomic.set q.bottom (b + 1)

(** Owner-only. *)
let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* Deque was empty; restore the canonical empty state. *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let v = q.buf.(b land q.mask) in
    if b > t then begin
      q.buf.(b land q.mask) <- None;
      v
    end
    else begin
      (* Single element left: race against thieves for it. *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        q.buf.(b land q.mask) <- None;
        v
      end
      else None
    end
  end

(** Safe from any domain. *)
let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then Empty
  else
    let v = q.buf.(t land q.mask) in
    if Atomic.compare_and_set q.top t (t + 1) then
      match v with
      | Some x -> Stolen x
      | None -> Retry (* slot raced with a concurrent grow; try again *)
    else Retry
