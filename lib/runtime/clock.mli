(** Clocks for scheduler accounting and timeout arithmetic.

    Two distinct clocks for two distinct questions:

    - {!thread_cputime_ns}: how much work did *this thread* do?
      ([CLOCK_THREAD_CPUTIME_ID]; stops while descheduled.)
    - {!monotonic_ns}: how much real time elapsed?  ([CLOCK_MONOTONIC];
      immune to NTP steps, unlike the [gettimeofday] wall clock.)

    The wall clock is deliberately absent: every deadline and duration
    in the runtime must use {!monotonic_ns}, and the [triolet analyze]
    lint gate enforces it textually. *)

external thread_cputime_ns : unit -> int = "triolet_thread_cputime_ns"
  [@@noalloc]
(** Per-thread CPU time in nanoseconds (worker busy-time accounting). *)

external monotonic_ns : unit -> int = "triolet_monotonic_ns" [@@noalloc]
(** Monotonic time in nanoseconds; differences are always
    non-negative. *)

val duration : (unit -> 'a) -> 'a * float
(** [duration f] is [f ()] paired with the monotonic seconds it took. *)
