(** Work-stealing domain pool: Triolet's intra-node parallel substrate
    (paper, section 3.4).

    A pool owns [n - 1] helper domains plus the calling domain.
    Dynamically scheduled loops ({!parallel_range}, {!parallel_for},
    {!parallel_reduce}) use adaptive lazy binary splitting: each worker
    owns one contiguous range task on its Chase–Lev deque, executes a
    small grain off the bottom at a time, and splits the remainder —
    pushing the larger half for thieves — only when its deque runs
    empty.  Skewed per-element costs rebalance at grain granularity
    instead of stranding a static chunk on one worker.

    {!parallel_chunks} keeps the static-preload path for explicitly
    pre-partitioned work.  Parallel consumers called from *inside* a
    pool worker run inline (nested data parallelism is flattened). *)

type t

val create : ?workers:int -> unit -> t
(** Total worker count including the caller; defaults to
    [Domain.recommended_domain_count ()]. *)

val size : t -> int

val shutdown : t -> unit
(** Joins the helper domains.  The pool must be idle. *)

val parallel_range :
  t ->
  ?grain:int ->
  lo:int ->
  hi:int ->
  f:(int -> int -> 'a) ->
  merge:('a -> 'a -> 'a) ->
  init:'a ->
  unit ->
  'a
(** Adaptive reduction over [lo, hi): [f off len] computes the partial
    result for one grain-sized sub-range; each worker folds its grains
    locally with [merge] before the per-worker partials are combined.
    [merge] must be associative with identity [init]; combination order
    is unspecified.  [grain] defaults to {!Partition.grain}; ranges no
    longer than a grain are never split across workers.

    If [f] raises, remaining work is skipped, all workers rendezvous
    normally, and the first exception is re-raised on the caller. *)

val parallel_chunks :
  t ->
  chunks:(int * int) array ->
  f:(int -> int -> 'a) ->
  merge:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** Static-preload scheduler: executes every (offset, length) chunk
    exactly once across the pool, never subdividing a chunk.  For work
    partitioned along meaningful boundaries (2-D blocks, node slabs);
    exception behaviour as in {!parallel_range}. *)

val parallel_for : t -> ?grain:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** Parallel loop over [lo, hi) for side effects on disjoint state, with
    adaptive lazy splitting. *)

val parallel_reduce :
  t ->
  ?grain:int ->
  lo:int ->
  hi:int ->
  f:(int -> 'a) ->
  merge:('a -> 'a -> 'a) ->
  init:'a ->
  unit ->
  'a
(** Adaptive reduction of [f i] over [lo, hi). *)

(** {1 Default pool}

    Iterator consumers share one lazily created pool. *)

val set_default_width : int -> unit
(** Must be called before the first {!default} use to take effect. *)

val default : unit -> t
(** The shared pool, created on first use.  When the environment selects
    the multi-process cluster backend ([TRIOLET_BACKEND=process]) the
    width is clamped to 1 so the parent process never spawns a domain
    and stays fork-able; node-local parallelism then lives in the
    per-node child processes. *)

val domains_ever_spawned : unit -> bool
(** Whether any pool in this process has ever spawned a helper domain.
    Once true, [Unix.fork] is permanently unavailable (an OCaml runtime
    restriction), so the multi-process cluster backend cannot start. *)
