(** Two-level distributed runtime.

    The paper's runtime distributes large units of work to cluster nodes
    over MPI, then subdivides each unit across cores with work-stealing
    threads (section 3.4).  The sealed container has no MPI, so nodes
    here are in-process entities whose *only* data channel is a mailbox
    of serialized bytes: payloads are encoded, shipped, and decoded into
    structurally fresh buffers, so a task can never touch the sender's
    memory.  Work inside each node runs on the shared work-stealing
    {!Pool}.  Byte and message counts follow the same paths a real MPI
    deployment would, which is what the simulator consumes.

    Task *code* travels as an OCaml closure (we cannot serialize code
    without compiler support, which is precisely what the Triolet
    compiler adds); task *data* always travels as bytes.

    {2 Fault tolerance}

    The paper's MPI runtime assumes every rank answers; [run] does not
    have to.  With a {!Fault.spec} (deterministic, seeded injection of
    drops / duplicates / corruption / delays / crashes / stragglers),
    every message travels in a CRC-checksummed envelope tagged with the
    logical worker id and an attempt sequence number.  Recovery:

    - receives use {!Mailbox.recv_timeout} with capped exponential
      backoff instead of blocking forever;
    - a missing or corrupt reply re-issues the worker's task — to the
      same node, or re-scattered to a surviving node if the owner
      crashed;
    - replies are merged at most once per worker (late or duplicated
      replies are counted as redeliveries and discarded), so retries
      never double-count;
    - corrupted messages fail the checksum and are dropped loudly,
      triggering the retry path instead of decoding garbage.

    [work] may therefore execute more than once for the same slice and
    must be re-executable (pure in its payload), which every skeleton
    body is.  Without [?faults] the wire format, byte accounting and
    behaviour are exactly the fault-free originals. *)

let log_src = Logs.Src.create "triolet.cluster" ~doc:"Cluster runtime"

module Log = (val Logs.src_log log_src)
module Codec = Triolet_base.Codec
module Payload = Triolet_base.Payload
module Obs = Triolet_obs.Obs

(* Span taxonomy (DESIGN.md, Observability): every wall-clock phase of
   a distributed [run] is wrapped so a trace accounts for ~all of the
   call's time.  [cluster.serialize] covers payload construction and
   encoding on both sides; [cluster.send]/[cluster.recv] the mailbox
   transfers (the recv side includes decode and, under faults, the
   timeout wait); [cluster.compute] the node work; [cluster.merge] the
   final fold.  [cluster.retry]/[cluster.recovery] only appear on the
   fault path and overlap the others, so they are excluded from
   phase-sum coverage checks. *)
let node_attr node = [ ("node", string_of_int node) ]

(* Execution backends.  [Flat] folds what used to be a separate [flat]
   boolean into the backend variant: it is the in-process transport with
   Eden's flat process view (one logical worker per core, no intra-node
   pool).  [Process] is the real multi-process transport: one forked OS
   process per node, socketpair channels, a private pool per child. *)
type backend =
  | Inprocess  (** in-process nodes over mailbox channels *)
  | Flat  (** Eden-style: one in-process worker per core, no node pool *)
  | Process  (** one forked OS process per node, socket channels *)

let backend_to_string = function
  | Inprocess -> "inprocess"
  | Flat -> "flat"
  | Process -> "process"

let backend_of_string = function
  | "inprocess" -> Some Inprocess
  | "flat" -> Some Flat
  | "process" -> Some Process
  | _ -> None

type topology = { nodes : int; cores_per_node : int; backend : backend }

let default_topology = { nodes = 4; cores_per_node = 2; backend = Inprocess }

let topology_workers (t : topology) =
  match t.backend with
  | Flat -> t.nodes * t.cores_per_node
  | Inprocess | Process -> t.nodes

type config = {
  nodes : int;
  cores_per_node : int;
  flat : bool;
      (** [true] models Eden's flat process view: one single-threaded
          process per core and no shared memory within a node. *)
}

let default_config = { nodes = 4; cores_per_node = 2; flat = false }

let topology_of_config (c : config) =
  {
    nodes = c.nodes;
    cores_per_node = c.cores_per_node;
    backend = (if c.flat then Flat else Inprocess);
  }

let config_of_topology (t : topology) =
  {
    nodes = t.nodes;
    cores_per_node = t.cores_per_node;
    flat = (t.backend = Flat);
  }

type report = {
  scatter_bytes : int;  (** bytes shipped main -> nodes (retries included) *)
  gather_bytes : int;  (** bytes shipped nodes -> main (retries included) *)
  scatter_messages : int;
  gather_messages : int;
  max_message_bytes : int;  (** largest single message *)
  retries : int;  (** task re-issues after a timeout *)
  redeliveries : int;  (** duplicate/late replies discarded by dedup *)
  corrupt_drops : int;  (** messages rejected by checksum/decode *)
  crashed_nodes : int;  (** injected node crashes survived *)
  faults_injected : int;  (** total faults the injector fired *)
  recovery_ns : int;  (** wall time spent in timeout/retry recovery *)
}

let clean_report =
  {
    scatter_bytes = 0;
    gather_bytes = 0;
    scatter_messages = 0;
    gather_messages = 0;
    max_message_bytes = 0;
    retries = 0;
    redeliveries = 0;
    corrupt_drops = 0;
    crashed_nodes = 0;
    faults_injected = 0;
    recovery_ns = 0;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "scatter: %d msgs / %d B; gather: %d msgs / %d B; max msg %d B"
    r.scatter_messages r.scatter_bytes r.gather_messages r.gather_bytes
    r.max_message_bytes;
  if
    r.retries > 0 || r.redeliveries > 0 || r.corrupt_drops > 0
    || r.crashed_nodes > 0 || r.faults_injected > 0
  then
    Format.fprintf fmt
      "; faults %d: %d retries, %d redeliveries, %d corrupt drops, %d \
       crashed nodes, recovery %.3f ms"
      r.faults_injected r.retries r.redeliveries r.corrupt_drops
      r.crashed_nodes
      (float_of_int r.recovery_ns /. 1e6)

(* ------------------------------------------------------------------ *)
(* Fault-free path: byte-for-byte the original protocol.  Replies are
   accumulated per worker and folded in worker order; arrival order
   coincides with worker order here (the node loop is sequential and
   mailboxes are FIFO), so results and reports are unchanged — but the
   merge-order contract no longer depends on that coincidence. *)

let run_clean pool ~workers ~scatter ~work ~result_codec ~merge ~init =
  let mailboxes = Array.init workers (fun _ -> Mailbox.create ()) in
  let return_box = Mailbox.create () in
  let scatter_bytes = ref 0 and scatter_msgs = ref 0 in
  let gather_bytes = ref 0 and gather_msgs = ref 0 in
  let max_msg = ref 0 in
  (* Scatter: main serializes each node's slice and posts it. *)
  for node = 0 to workers - 1 do
    let bytes =
      Obs.span ~name:"cluster.serialize" ~attrs:(node_attr node) (fun () ->
          let payload = scatter node in
          Codec.to_bytes Payload.codec payload)
    in
    max_msg := max !max_msg (Bytes.length bytes);
    scatter_bytes := !scatter_bytes + Bytes.length bytes;
    incr scatter_msgs;
    Log.debug (fun m -> m "scatter: %d bytes to node %d" (Bytes.length bytes) node);
    Obs.span ~name:"cluster.send" ~attrs:(node_attr node) (fun () ->
        Mailbox.send mailboxes.(node) bytes)
  done;
  Stats.ensure_workers (Pool.size pool);
  let before_work = Stats.snapshot () in
  (* Node side: decode, compute, reply.  Nodes run in sequence in this
     process; the pool provides the intra-node parallelism. *)
  for node = 0 to workers - 1 do
    let payload =
      Obs.span ~name:"cluster.recv" ~attrs:(node_attr node) (fun () ->
          Codec.of_bytes Payload.codec (Mailbox.recv mailboxes.(node)))
    in
    let r =
      Obs.span ~name:"cluster.compute" ~attrs:(node_attr node) (fun () ->
          work ~node ~pool payload)
    in
    let reply =
      Obs.span ~name:"cluster.serialize" ~attrs:(node_attr node) (fun () ->
          Codec.to_bytes result_codec r)
    in
    Log.debug (fun m -> m "gather: %d bytes from node %d" (Bytes.length reply) node);
    max_msg := max !max_msg (Bytes.length reply);
    gather_bytes := !gather_bytes + Bytes.length reply;
    incr gather_msgs;
    Obs.span ~name:"cluster.send" ~attrs:(node_attr node) (fun () ->
        Mailbox.send return_box reply)
  done;
  (* Intra-node scheduling visibility: how evenly the pool's workers
     shared the nodes' work, and how much adaptive splitting/stealing
     the lazy scheduler needed to get there. *)
  Log.debug (fun m ->
      let after = Stats.snapshot () in
      let delta =
        after.Stats.chunks_run - before_work.Stats.chunks_run
      and splits = after.Stats.splits - before_work.Stats.splits
      and steals = after.Stats.steals - before_work.Stats.steals in
      m "intra-node: %d chunks, %d splits, %d steals, imbalance %.2f" delta
        splits steals (Stats.imbalance after));
  (* Gather: the i-th reply through the FIFO return box is worker i's
     (single sender, in-order sends), so indexing by receive position
     is the worker tag. *)
  let results = Array.make workers None in
  for w = 0 to workers - 1 do
    results.(w) <-
      Some
        (Obs.span ~name:"cluster.recv" ~attrs:(node_attr w) (fun () ->
             Codec.of_bytes result_codec (Mailbox.recv return_box)))
  done;
  let acc = ref init in
  Obs.span ~name:"cluster.merge" (fun () ->
      for w = 0 to workers - 1 do
        match results.(w) with
        | Some r -> acc := merge !acc r
        | None -> assert false
      done);
  ( !acc,
    {
      clean_report with
      scatter_bytes = !scatter_bytes;
      gather_bytes = !gather_bytes;
      scatter_messages = !scatter_msgs;
      gather_messages = !gather_msgs;
      max_message_bytes = !max_msg;
    } )

(* ------------------------------------------------------------------ *)
(* Fault-injected path. *)

exception Recovery_exhausted of { worker : int; attempts : int }

let () =
  Printexc.register_printer (function
    | Recovery_exhausted { worker; attempts } ->
        Some
          (Printf.sprintf
             "Cluster.Recovery_exhausted (worker %d still unresolved after %d \
              attempts)"
             worker attempts)
    | _ -> None)

let run_faulty pool ~workers spec ~scatter ~work ~result_codec ~merge ~init =
  let fault = Fault.make spec in
  let mailboxes = Array.init workers (fun _ -> Mailbox.create ()) in
  let return_box = Mailbox.create () in
  let scatter_bytes = ref 0 and scatter_msgs = ref 0 in
  let gather_bytes = ref 0 and gather_msgs = ref 0 in
  let max_msg = ref 0 in
  let retries = ref 0 and redeliveries = ref 0 and corrupt_drops = ref 0 in
  (* Envelopes: every message carries the logical worker id and the
     attempt sequence number under a CRC over the payload bytes. *)
  let scatter_codec =
    Codec.checksummed Codec.(triple int int Payload.codec)
  in
  let reply_codec = Codec.checksummed Codec.(triple int int result_codec) in
  (* Payloads are kept so a lost or crashed worker's slice can be
     re-scattered; [seq] numbers each (re-)issue of a worker's task. *)
  let payloads = Array.init workers scatter in
  let seq = Array.make workers 0 in
  let results = Array.make workers None in
  let attempts = Array.make workers 0 in
  let failed_exn = Array.make workers None in
  let corrupt_reject () =
    incr corrupt_drops;
    Stats.record_corrupt_drop ()
  in
  (* Each (worker, slice) is encoded exactly once; retries reuse the
     cached bytes (dedup keys on the worker id, not the seq), so
     scatter accounting reflects wire traffic, not re-encoding. *)
  let encoded = Array.make workers None in
  let encoded_slice wk =
    match encoded.(wk) with
    | Some bytes -> bytes
    | None ->
        seq.(wk) <- seq.(wk) + 1;
        let bytes =
          Obs.span ~name:"cluster.serialize" ~attrs:(node_attr wk) (fun () ->
              Stats.record_encode ();
              Codec.to_bytes scatter_codec (wk, seq.(wk), payloads.(wk)))
        in
        encoded.(wk) <- Some bytes;
        bytes
  in
  let send_scatter ~target wk =
    let bytes = encoded_slice wk in
    max_msg := max !max_msg (Bytes.length bytes);
    scatter_bytes := !scatter_bytes + Bytes.length bytes;
    incr scatter_msgs;
    attempts.(wk) <- attempts.(wk) + 1;
    Log.debug (fun m ->
        m "scatter: %d bytes for worker %d -> node %d (attempt %d)"
          (Bytes.length bytes) wk target attempts.(wk));
    Obs.span ~name:"cluster.send" ~attrs:(node_attr target) (fun () ->
        Fault.send fault ~link:(Fault.To_node target) mailboxes.(target) bytes)
  in
  (* Drive one node execution attempt: node [target] tries to pick up a
     task from its mailbox, compute, and reply.  Any failure (lost or
     corrupt input, crash, exception in [work]) simply produces no
     reply; the gather loop's timeout owns recovery. *)
  let run_attempt target =
    if not (Fault.is_crashed fault target) then
      match
        Obs.span ~name:"cluster.recv" ~attrs:(node_attr target) (fun () ->
            Mailbox.recv_timeout mailboxes.(target) spec.Fault.base_timeout)
      with
      | `Timeout | `Closed -> ()
      | `Msg bytes -> (
          match Codec.of_bytes scatter_codec bytes with
          | exception e ->
              Log.debug (fun m ->
                  m "node %d: corrupt task message (%s)" target
                    (Printexc.to_string e));
              corrupt_reject ()
          | wk, sq, payload ->
              if Fault.crash_now fault ~node:target ~phase:Fault.Before_work
              then Mailbox.close mailboxes.(target)
              else begin
                (* [work] sees the logical worker id whose slice this
                   is — stable across re-execution on another node. *)
                match
                  Obs.span ~name:"cluster.compute" ~attrs:(node_attr wk)
                    (fun () -> work ~node:wk ~pool payload)
                with
                | exception e ->
                    (* An exception inside [work] is a node failure for
                       this attempt; it is re-raised only once recovery
                       gives up on the worker. *)
                    Log.debug (fun m ->
                        m "node %d: work raised %s" target
                          (Printexc.to_string e));
                    failed_exn.(wk) <- Some e
                | r ->
                    if
                      Fault.crash_now fault ~node:target
                        ~phase:Fault.During_work
                    then Mailbox.close mailboxes.(target)
                    else begin
                      let crashed_after =
                        Fault.crash_now fault ~node:target
                          ~phase:Fault.After_work
                      in
                      if crashed_after then Mailbox.close mailboxes.(target)
                      else begin
                        let reply =
                          Obs.span ~name:"cluster.serialize"
                            ~attrs:(node_attr wk) (fun () ->
                              Codec.to_bytes reply_codec (wk, sq, r))
                        in
                        max_msg := max !max_msg (Bytes.length reply);
                        gather_bytes := !gather_bytes + Bytes.length reply;
                        incr gather_msgs;
                        Obs.span ~name:"cluster.send" ~attrs:(node_attr target)
                          (fun () ->
                            Fault.send fault ~link:(Fault.From_node target)
                              return_box reply)
                      end
                    end
              end)
  in
  let surviving_node ~for_worker =
    let rec find i =
      if i >= workers then None
      else if not (Fault.is_crashed fault i) then Some i
      else find (i + 1)
    in
    match find 0 with
    | Some n ->
        Log.debug (fun m ->
            m "worker %d: re-executing on surviving node %d" for_worker n);
        n
    | None -> raise (Recovery_exhausted { worker = for_worker; attempts = 0 })
  in
  (* Initial round: scatter everything, let every node attempt once. *)
  for w = 0 to workers - 1 do
    send_scatter ~target:w w
  done;
  Stats.ensure_workers (Pool.size pool);
  for node = 0 to workers - 1 do
    run_attempt node
  done;
  (* Gather with timeout-driven recovery: collect worker-tagged replies
     at most once each; a timeout re-issues every unresolved worker's
     task with capped exponential backoff. *)
  let outstanding = ref workers in
  let round = ref 0 in
  (* Monotonic timestamp: recovery time must be a duration, so it is
     measured on the monotonic clock — a wall-clock (gettimeofday)
     difference can come out negative or wildly large when NTP steps
     the clock mid-recovery, which is precisely when a real deployment
     is under stress. *)
  let recovery_started = ref None in
  while !outstanding > 0 do
    match
      Obs.span ~name:"cluster.recv" (fun () ->
          Mailbox.recv_timeout return_box
            (Fault.timeout_for spec ~attempt:!round))
    with
    | `Closed -> assert false (* the main side never closes its own box *)
    | `Msg bytes -> (
        match Codec.of_bytes reply_codec bytes with
        | exception e ->
            Log.debug (fun m ->
                m "gather: corrupt reply (%s)" (Printexc.to_string e));
            corrupt_reject ()
        | wk, sq, r ->
            if wk < 0 || wk >= workers then corrupt_reject ()
            else if results.(wk) <> None then begin
              (* At-most-once merge: a duplicate or a late reply from a
                 superseded attempt. *)
              Log.debug (fun m -> m "gather: redelivery for worker %d" wk);
              incr redeliveries;
              Stats.record_redelivery ()
            end
            else begin
              Log.debug (fun m ->
                  m "gather: accepted worker %d (seq %d)" wk sq);
              results.(wk) <- Some r;
              decr outstanding
            end)
    | `Timeout ->
        if !recovery_started = None then
          recovery_started := Some (Clock.monotonic_ns ());
        incr round;
        Obs.span ~name:"cluster.retry"
          ~attrs:[ ("round", string_of_int !round) ]
          (fun () ->
            for wk = 0 to workers - 1 do
              if results.(wk) = None then begin
                if attempts.(wk) >= spec.Fault.max_attempts then begin
                  match failed_exn.(wk) with
                  | Some e -> raise e
                  | None ->
                      raise
                        (Recovery_exhausted
                           { worker = wk; attempts = attempts.(wk) })
                end;
                incr retries;
                Stats.record_retry ();
                Obs.instant ~name:"cluster.retry.reissue"
                  ~attrs:(node_attr wk) ();
                let target =
                  if Fault.is_crashed fault wk then
                    surviving_node ~for_worker:wk
                  else wk
                in
                send_scatter ~target wk;
                run_attempt target
              end
            done)
  done;
  (* Drain replies that arrived after the last worker resolved — the
     duplicates and superseded-attempt replies the retry machinery
     produced — so redelivery accounting covers them. *)
  let rec drain () =
    match Mailbox.try_recv return_box with
    | None -> ()
    | Some bytes ->
        (match Codec.of_bytes reply_codec bytes with
        | exception _ -> corrupt_reject ()
        | wk, _, _ ->
            if wk >= 0 && wk < workers then begin
              incr redeliveries;
              Stats.record_redelivery ()
            end
            else corrupt_reject ());
        drain ()
  in
  drain ();
  let recovery_ns =
    match !recovery_started with
    | None -> 0
    | Some t0 ->
        (* Monotonic difference: non-negative by construction. *)
        let ns = Clock.monotonic_ns () - t0 in
        Stats.record_recovery_ns ns;
        ns
  in
  let acc = ref init in
  Obs.span ~name:"cluster.merge" (fun () ->
      for w = 0 to workers - 1 do
        match results.(w) with
        | Some r -> acc := merge !acc r
        | None -> assert false
      done);
  let c = Fault.counters fault in
  ( !acc,
    {
      scatter_bytes = !scatter_bytes;
      gather_bytes = !gather_bytes;
      scatter_messages = !scatter_msgs;
      gather_messages = !gather_msgs;
      max_message_bytes = !max_msg;
      retries = !retries;
      redeliveries = !redeliveries;
      corrupt_drops = !corrupt_drops;
      crashed_nodes = c.Fault.crashes;
      faults_injected =
        c.Fault.drops + c.Fault.duplicates + c.Fault.corruptions
        + c.Fault.delays + c.Fault.crashes;
      recovery_ns;
    } )

(* ------------------------------------------------------------------ *)
(* Multi-process backend: nodes are forked OS processes, channels are
   socketpairs, and the address-space isolation the in-process backends
   only assert by convention is enforced by the kernel.  Task code
   crosses the [fork] (the child inherits the closure); task data only
   ever crosses the socket as the same codec bytes the mailbox engines
   ship.  The frame header (length + kind) is transport framing and is
   excluded from byte accounting, so a clean run reports identical
   traffic under either backend. *)

(* In the children: the logical node id, for task code that needs to
   know where it physically runs (e.g. a test killing one node). *)
let current_node : int option ref = ref None
let on_node () = !current_node
let note_current_node id = current_node := Some id

let ensure_forkable () =
  if Pool.domains_ever_spawned () then
    failwith
      "Cluster: the process backend forks one OS process per node, and \
       OCaml cannot fork once any domain has been spawned.  Select the \
       backend before creating any multi-domain pool (e.g. run with \
       TRIOLET_BACKEND=process so the default pool stays single-domain)."

(* Remote failure report: the worker id whose task raised, plus the
   exception rendered as text (exceptions, like all code, never cross a
   socket). *)
let err_codec = Codec.(pair int string)

let run_proc_clean (topo : topology) ~workers ~scatter ~work ~result_codec ~merge ~init =
  ensure_forkable ();
  (* Child serve loop, inherited across the fork: read task frames until
     EOF, compute on a lazily created node-local pool, reply.  Runs in
     its own process — nothing it does (pool domains, Stats, GC) is
     visible to the parent except the reply bytes. *)
  let serve ~id chan =
    current_node := Some id;
    let trk = Protocol.make_tracker Protocol.Child ~id:(string_of_int id) in
    let pool = lazy (Pool.create ~workers:topo.cores_per_node ()) in
    let rec loop () =
      match Transport.Socket.recv chan with
      | exception Transport.Closed -> Protocol.step trk Protocol.Eof
      | (kind, _) as frame ->
          Protocol.step trk (Protocol.Recv kind);
          handle frame
    and handle = function
      | Transport.Ping, payload ->
          (* Heartbeat: echo the payload straight back.  A child that
             can run this loop is alive by definition. *)
          Transport.Socket.send chan ~kind:Transport.Pong payload;
          loop ()
      | (Transport.Err | Transport.Nack | Transport.Pong), _ -> loop ()
      | (Transport.Seg_put | Transport.Seg_reuse | Transport.Seg_free), _ ->
          (* Segment residency belongs to Darray sessions, not one-shot
             runs; ignore like other non-task traffic. *)
          loop ()
      | Transport.Data, bytes ->
          (match
             let payload = Codec.of_bytes Payload.codec bytes in
             work ~node:id ~pool:(Lazy.force pool) payload
           with
          | r -> Transport.Socket.send chan (Codec.to_bytes result_codec r)
          | exception e ->
              Transport.Socket.send chan ~kind:Transport.Err
                (Codec.to_bytes err_codec (id, Printexc.to_string e)));
          loop ()
    in
    loop ()
  in
  let fabric = Transport.Proc.fork ~n:workers ~child:serve in
  Fun.protect
    ~finally:(fun () -> Transport.Proc.shutdown fabric)
    (fun () ->
      let scatter_bytes = ref 0 and scatter_msgs = ref 0 in
      let gather_bytes = ref 0 and gather_msgs = ref 0 in
      let max_msg = ref 0 in
      for node = 0 to workers - 1 do
        let bytes =
          Obs.span ~name:"cluster.serialize" ~attrs:(node_attr node)
            (fun () -> Codec.to_bytes Payload.codec (scatter node))
        in
        max_msg := max !max_msg (Bytes.length bytes);
        scatter_bytes := !scatter_bytes + Bytes.length bytes;
        incr scatter_msgs;
        Stats.record_message ~bytes:(Bytes.length bytes);
        Log.debug (fun m ->
            m "scatter: %d bytes to process node %d" (Bytes.length bytes) node);
        Obs.span ~name:"cluster.send" ~attrs:(node_attr node) (fun () ->
            Transport.Socket.send (Transport.Proc.node fabric node).chan bytes)
      done;
      (* Gather: one blocking read per child, in worker order — the
         reply's provenance is its socket, so no tags are needed and
         the merge order contract is explicit. *)
      let results = Array.make workers None in
      for w = 0 to workers - 1 do
        let chan = (Transport.Proc.node fabric w).chan in
        match
          Obs.span ~name:"cluster.recv" ~attrs:(node_attr w) (fun () ->
              Transport.Socket.recv chan)
        with
        | exception Transport.Closed ->
            failwith
              (Printf.sprintf
                 "Cluster: process node %d died during a fault-free run \
                  (use ?faults for recovery)"
                 w)
        | Transport.Err, bytes ->
            let _, msg = Codec.of_bytes err_codec bytes in
            failwith (Printf.sprintf "Cluster: node %d raised: %s" w msg)
        | Transport.Nack, _ ->
            failwith (Printf.sprintf "Cluster: node %d rejected its task" w)
        | ( ( Transport.Ping | Transport.Pong | Transport.Seg_put
            | Transport.Seg_reuse | Transport.Seg_free ),
            _ ) ->
            (* Heartbeats belong to the service fabric and segment
               frames to Darray sessions, not a one-shot run; a stray
               one here is a protocol violation. *)
            failwith
              (Printf.sprintf "Cluster: unexpected control frame from node %d" w)
        | Transport.Data, reply ->
            max_msg := max !max_msg (Bytes.length reply);
            gather_bytes := !gather_bytes + Bytes.length reply;
            incr gather_msgs;
            Stats.record_message ~bytes:(Bytes.length reply);
            results.(w) <- Some (Codec.of_bytes result_codec reply)
      done;
      let acc = ref init in
      Obs.span ~name:"cluster.merge" (fun () ->
          for w = 0 to workers - 1 do
            match results.(w) with
            | Some r -> acc := merge !acc r
            | None -> assert false
          done);
      ( !acc,
        {
          clean_report with
          scatter_bytes = !scatter_bytes;
          gather_bytes = !gather_bytes;
          scatter_messages = !scatter_msgs;
          gather_messages = !gather_msgs;
          max_message_bytes = !max_msg;
        } ))

let run_proc_faulty (topo : topology) ~workers ~poll_interval spec ~scatter ~work
    ~result_codec ~merge ~init =
  ensure_forkable ();
  if poll_interval <= 0.0 then invalid_arg "Cluster: poll interval must be positive";
  (* The drain poll must never outwait the fault spec's base timeout —
     otherwise a retry round could fire while late traffic that would
     have satisfied it sits unread in a socket buffer. *)
  let drain_poll = Float.min poll_interval spec.Fault.base_timeout in
  assert (drain_poll <= spec.Fault.base_timeout);
  let fault = Fault.make spec in
  let scatter_codec = Codec.checksummed Codec.(triple int int Payload.codec) in
  let reply_codec = Codec.checksummed Codec.(triple int int result_codec) in
  (* Child serve loop under faults.  Link faults are injected on the
     parent side of the sockets (one seeded stream, one schedule); the
     child's share of the fault model is dying: a planned crash is a
     real [_exit], indistinguishable on the wire from a [kill]ed child,
     and both surface to the parent as EOF. *)
  let serve ~id chan =
    current_node := Some id;
    let trk = Protocol.make_tracker Protocol.Child ~id:(string_of_int id) in
    let pool = lazy (Pool.create ~workers:topo.cores_per_node ()) in
    let crash_here phase =
      match spec.Fault.crash with
      | Some (n, p) -> n = id && p = phase
      | None -> false
    in
    let rec loop () =
      match Transport.Socket.recv chan with
      | exception Transport.Closed -> Protocol.step trk Protocol.Eof
      | (kind, _) as frame ->
          Protocol.step trk (Protocol.Recv kind);
          handle frame
    and handle = function
      | Transport.Ping, payload ->
          Transport.Socket.send chan ~kind:Transport.Pong payload;
          loop ()
      | ( ( Transport.Err | Transport.Nack | Transport.Pong
          | Transport.Seg_put | Transport.Seg_reuse | Transport.Seg_free ),
          _ ) ->
          loop ()
      | Transport.Data, bytes ->
          (match Codec.of_bytes scatter_codec bytes with
          | exception _ ->
              (* Corrupt task envelope: reject loudly; the parent counts
                 the drop and the retry machinery re-issues. *)
              Transport.Socket.send chan ~kind:Transport.Nack Bytes.empty
          | wk, _sq, payload -> (
              if crash_here Fault.Before_work then Unix._exit 0;
              match work ~node:wk ~pool:(Lazy.force pool) payload with
              | exception e ->
                  Transport.Socket.send chan ~kind:Transport.Err
                    (Codec.to_bytes err_codec (wk, Printexc.to_string e))
              | r ->
                  if crash_here Fault.During_work then Unix._exit 0;
                  if crash_here Fault.After_work then Unix._exit 0;
                  Transport.Socket.send chan
                    (Codec.to_bytes reply_codec (wk, _sq, r))));
          loop ()
    in
    loop ()
  in
  (* Keep every worker's payload so a crashed node's slice can be
     re-scattered; computed before the fork only for the parent's use
     (tasks reach children as bytes, never by inheritance). *)
  let payloads = Array.init workers scatter in
  let fabric = Transport.Proc.fork ~n:workers ~child:serve in
  Fun.protect
    ~finally:(fun () -> Transport.Proc.shutdown fabric)
    (fun () ->
      let scatter_bytes = ref 0 and scatter_msgs = ref 0 in
      let gather_bytes = ref 0 and gather_msgs = ref 0 in
      let max_msg = ref 0 in
      let retries = ref 0 and redeliveries = ref 0 and corrupt_drops = ref 0 in
      let seq = Array.make workers 0 in
      let results = Array.make workers None in
      let attempts = Array.make workers 0 in
      let failed_exn = Array.make workers None in
      let corrupt_reject () =
        incr corrupt_drops;
        Stats.record_corrupt_drop ()
      in
      (* Parent-side analogue of [Mailbox.send_delayed]: a delayed frame
         is parked here and only hits the wire (scatter) or the protocol
         (gather) once the gather loop times out. *)
      let delayed_out : (int * Bytes.t) Queue.t = Queue.create () in
      let delayed_in : Bytes.t Queue.t = Queue.create () in
      let pending_in : Bytes.t Queue.t = Queue.create () in
      let node_alive target =
        Transport.Proc.is_alive fabric target
        && not (Fault.is_crashed fault target)
      in
      let write_frame target bytes =
        if Transport.Proc.is_alive fabric target then begin
          Stats.record_message ~bytes:(Bytes.length bytes);
          try
            Transport.Socket.send (Transport.Proc.node fabric target).chan
              bytes
          with Transport.Closed ->
            (* The child died under our feet; its EOF will surface via
               the gather select and mark it crashed. *)
            ()
        end
      in
      (* Each (worker, slice) is encoded exactly once; retries reuse the
         cached bytes, so scatter accounting reflects wire traffic and
         recovery never pays serialization again.  The envelope's seq
         field is therefore the first attempt's — dedup keys on the
         worker id alone, so replayed frames stay distinguishable
         without re-encoding. *)
      let encoded = Array.make workers None in
      let encoded_slice wk =
        match encoded.(wk) with
        | Some bytes -> bytes
        | None ->
            seq.(wk) <- seq.(wk) + 1;
            let bytes =
              Obs.span ~name:"cluster.serialize" ~attrs:(node_attr wk)
                (fun () ->
                  Stats.record_encode ();
                  Codec.to_bytes scatter_codec (wk, seq.(wk), payloads.(wk)))
            in
            encoded.(wk) <- Some bytes;
            bytes
      in
      let send_scatter ~target wk =
        let bytes = encoded_slice wk in
        max_msg := max !max_msg (Bytes.length bytes);
        scatter_bytes := !scatter_bytes + Bytes.length bytes;
        incr scatter_msgs;
        attempts.(wk) <- attempts.(wk) + 1;
        Log.debug (fun m ->
            m "scatter: %d bytes for worker %d -> process node %d (attempt %d)"
              (Bytes.length bytes) wk target attempts.(wk));
        Obs.span ~name:"cluster.send" ~attrs:(node_attr target) (fun () ->
            match Fault.decide fault ~link:(Fault.To_node target) bytes with
            | `Drop -> ()
            | `Deliver (bytes, delayed, dup) ->
                if delayed then Queue.push (target, bytes) delayed_out
                else write_frame target bytes;
                if dup then write_frame target (Bytes.copy bytes))
      in
      let surviving_node ~for_worker =
        let rec find i =
          if i >= workers then None
          else if node_alive i then Some i
          else find (i + 1)
        in
        match find 0 with
        | Some n ->
            Log.debug (fun m ->
                m "worker %d: re-executing on surviving node %d" for_worker n);
            n
        | None ->
            raise (Recovery_exhausted { worker = for_worker; attempts = 0 })
      in
      let outstanding = ref workers in
      let process_reply bytes =
        match Codec.of_bytes reply_codec bytes with
        | exception e ->
            Log.debug (fun m ->
                m "gather: corrupt reply (%s)" (Printexc.to_string e));
            corrupt_reject ()
        | wk, sq, r ->
            if wk < 0 || wk >= workers then corrupt_reject ()
            else if results.(wk) <> None then begin
              Log.debug (fun m -> m "gather: redelivery for worker %d" wk);
              incr redeliveries;
              Stats.record_redelivery ()
            end
            else begin
              Log.debug (fun m ->
                  m "gather: accepted worker %d (seq %d)" wk sq);
              results.(wk) <- Some r;
              decr outstanding
            end
      in
      (* Initial round: scatter everything. *)
      for w = 0 to workers - 1 do
        send_scatter ~target:w w
      done;
      let round = ref 0 in
      let recovery_started = ref None in
      while !outstanding > 0 do
        if not (Queue.is_empty pending_in) then
          process_reply (Queue.pop pending_in)
        else
          match
            Obs.span ~name:"cluster.recv" (fun () ->
                Transport.Proc.recv_any fabric
                  ~timeout:(Fault.timeout_for spec ~attempt:!round))
          with
          | `Msg (node, Transport.Data, bytes) -> (
              (* Counted on arrival at the parent's edge of the link,
                 before the gather-side fault roll — mirroring the
                 mailbox engine, which counts a reply when the node
                 serializes it, before [Fault.send] may drop it. *)
              max_msg := max !max_msg (Bytes.length bytes);
              gather_bytes := !gather_bytes + Bytes.length bytes;
              incr gather_msgs;
              Stats.record_message ~bytes:(Bytes.length bytes);
              match Fault.decide fault ~link:(Fault.From_node node) bytes with
              | `Drop -> ()
              | `Deliver (bytes, delayed, dup) ->
                  (* A duplicate is always delivered immediately even
                     when the original is delayed, exactly like the
                     mailbox path ([send_delayed] then [send]). *)
                  if dup then Queue.push (Bytes.copy bytes) pending_in;
                  if delayed then Queue.push bytes delayed_in
                  else process_reply bytes)
          | `Msg (_, Transport.Err, bytes) -> (
              match Codec.of_bytes err_codec bytes with
              | exception _ -> corrupt_reject ()
              | wk, msg ->
                  (* An exception inside [work] is a node failure for
                     this attempt; re-raised only once recovery gives up
                     on the worker (as text: exceptions do not cross
                     process boundaries). *)
                  Log.debug (fun m -> m "worker %d: work raised %s" wk msg);
                  if wk >= 0 && wk < workers then
                    failed_exn.(wk) <-
                      Some (Failure (Printf.sprintf "node work raised: %s" msg)))
          | `Msg
              ( _,
                ( Transport.Ping | Transport.Pong | Transport.Seg_put
                | Transport.Seg_reuse | Transport.Seg_free ),
                _ ) ->
              (* One-shot runs exchange no heartbeats or segment
                 frames; ignore strays. *)
              ()
          | `Wake ->
              (* No wake descriptor is registered on this path. *)
              ()
          | `Msg (_, Transport.Nack, _) -> corrupt_reject ()
          | `Eof node ->
              if Fault.mark_crashed fault node then
                Log.debug (fun m -> m "node %d: process died (EOF)" node)
          | `Timeout | `No_nodes ->
              (* The mailbox engine's timed-out [recv_timeout] promotes
                 parked delayed messages; do the same before retrying. *)
              Queue.transfer delayed_in pending_in;
              Queue.iter (fun (target, bytes) -> write_frame target bytes)
                delayed_out;
              Queue.clear delayed_out;
              if !recovery_started = None then
                recovery_started := Some (Clock.monotonic_ns ());
              incr round;
              Obs.span ~name:"cluster.retry"
                ~attrs:[ ("round", string_of_int !round) ]
                (fun () ->
                  for wk = 0 to workers - 1 do
                    if results.(wk) = None then begin
                      if attempts.(wk) >= spec.Fault.max_attempts then begin
                        match failed_exn.(wk) with
                        | Some e -> raise e
                        | None ->
                            raise
                              (Recovery_exhausted
                                 { worker = wk; attempts = attempts.(wk) })
                      end;
                      incr retries;
                      Stats.record_retry ();
                      Obs.instant ~name:"cluster.retry.reissue"
                        ~attrs:(node_attr wk) ();
                      let target =
                        if node_alive wk then wk
                        else surviving_node ~for_worker:wk
                      in
                      send_scatter ~target wk
                    end
                  done)
      done;
      (* Drain late traffic so redelivery accounting covers the replies
         the retry machinery made superfluous, and so an injected
         crash's EOF is observed even when every reply beat it in. *)
      let drain_frame bytes =
        match Codec.of_bytes reply_codec bytes with
        | exception _ -> corrupt_reject ()
        | wk, _, _ ->
            if wk >= 0 && wk < workers then begin
              incr redeliveries;
              Stats.record_redelivery ()
            end
            else corrupt_reject ()
      in
      Queue.iter drain_frame pending_in;
      Queue.clear pending_in;
      Queue.iter drain_frame delayed_in;
      Queue.clear delayed_in;
      Queue.clear delayed_out;
      let rec drain () =
        match Transport.Proc.recv_any fabric ~timeout:drain_poll with
        | `Msg (_, Transport.Data, bytes) ->
            max_msg := max !max_msg (Bytes.length bytes);
            gather_bytes := !gather_bytes + Bytes.length bytes;
            incr gather_msgs;
            Stats.record_message ~bytes:(Bytes.length bytes);
            drain_frame bytes;
            drain ()
        | `Msg
            ( _,
              ( Transport.Err | Transport.Nack | Transport.Ping
              | Transport.Pong | Transport.Seg_put | Transport.Seg_reuse
              | Transport.Seg_free ),
              _ ) ->
            drain ()
        | `Wake -> drain ()
        | `Eof node ->
            ignore (Fault.mark_crashed fault node);
            drain ()
        | `Timeout | `No_nodes -> ()
      in
      drain ();
      let recovery_ns =
        match !recovery_started with
        | None -> 0
        | Some t0 ->
            let ns = Clock.monotonic_ns () - t0 in
            Stats.record_recovery_ns ns;
            ns
      in
      let acc = ref init in
      Obs.span ~name:"cluster.merge" (fun () ->
          for w = 0 to workers - 1 do
            match results.(w) with
            | Some r -> acc := merge !acc r
            | None -> assert false
          done);
      let c = Fault.counters fault in
      ( !acc,
        {
          scatter_bytes = !scatter_bytes;
          gather_bytes = !gather_bytes;
          scatter_messages = !scatter_msgs;
          gather_messages = !gather_msgs;
          max_message_bytes = !max_msg;
          retries = !retries;
          redeliveries = !redeliveries;
          corrupt_drops = !corrupt_drops;
          crashed_nodes = c.Fault.crashes;
          faults_injected =
            c.Fault.drops + c.Fault.duplicates + c.Fault.corruptions
            + c.Fault.delays + c.Fault.crashes;
          recovery_ns;
        } ))

(* ------------------------------------------------------------------ *)

let run_topology ?pool ?faults ?(poll_interval = 0.01) (topo : topology) ~scatter ~work
    ~result_codec ~merge ~init =
  if topo.nodes <= 0 || topo.cores_per_node <= 0 then
    invalid_arg "Cluster.run: bad config";
  let workers = topology_workers topo in
  match topo.backend with
  | Inprocess | Flat -> (
      (* Nodes share the default pool, capped at the configured core
         count; a fresh per-call pool would cost a domain spawn per
         operation. *)
      let pool = match pool with Some p -> p | None -> Pool.default () in
      match faults with
      | None -> run_clean pool ~workers ~scatter ~work ~result_codec ~merge ~init
      | Some spec ->
          run_faulty pool ~workers spec ~scatter ~work ~result_codec ~merge
            ~init)
  | Process -> (
      (* The parent does no task work under this backend: each child
         builds its own pool after the fork, so a caller-supplied pool
         is irrelevant (and would break forkability if multi-domain). *)
      ignore pool;
      match faults with
      | None -> run_proc_clean topo ~workers ~scatter ~work ~result_codec ~merge ~init
      | Some spec ->
          run_proc_faulty topo ~workers ~poll_interval spec ~scatter ~work
            ~result_codec ~merge ~init)

let run ?pool ?faults cfg ~scatter ~work ~result_codec ~merge ~init =
  run_topology ?pool ?faults (topology_of_config cfg) ~scatter ~work
    ~result_codec ~merge ~init
