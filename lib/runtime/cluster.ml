(** Two-level distributed runtime.

    The paper's runtime distributes large units of work to cluster nodes
    over MPI, then subdivides each unit across cores with work-stealing
    threads (section 3.4).  The sealed container has no MPI, so nodes
    here are in-process entities whose *only* data channel is a mailbox
    of serialized bytes: payloads are encoded, shipped, and decoded into
    structurally fresh buffers, so a task can never touch the sender's
    memory.  Work inside each node runs on the shared work-stealing
    {!Pool}.  Byte and message counts follow the same paths a real MPI
    deployment would, which is what the simulator consumes.

    Task *code* travels as an OCaml closure (we cannot serialize code
    without compiler support, which is precisely what the Triolet
    compiler adds); task *data* always travels as bytes. *)

let log_src = Logs.Src.create "triolet.cluster" ~doc:"Cluster runtime"

module Log = (val Logs.src_log log_src)

type config = {
  nodes : int;
  cores_per_node : int;
  flat : bool;
      (** [true] models Eden's flat process view: one single-threaded
          process per core and no shared memory within a node. *)
}

let default_config = { nodes = 4; cores_per_node = 2; flat = false }

type report = {
  scatter_bytes : int;  (** bytes shipped main -> nodes *)
  gather_bytes : int;  (** bytes shipped nodes -> main *)
  scatter_messages : int;
  gather_messages : int;
  max_message_bytes : int;  (** largest single message *)
}

let pp_report fmt r =
  Format.fprintf fmt
    "scatter: %d msgs / %d B; gather: %d msgs / %d B; max msg %d B"
    r.scatter_messages r.scatter_bytes r.gather_messages r.gather_bytes
    r.max_message_bytes

(** [run cfg ~scatter ~work ~result_codec ~merge ~init] executes a
    distributed parallel operation:

    - [scatter node] produces the payload (sliced input data) for each
      node; it is serialized and sent through the node's mailbox.
    - [work ~node ~pool payload] runs on the receiving side against the
      decoded payload, using [pool] for intra-node parallelism.
    - each node's result is serialized with [result_codec], shipped
      back, decoded, and folded with [merge] in node order.

    When [cfg.flat] is set there are [nodes * cores_per_node] worker
    processes, each receiving its own scatter payload and running
    single-threaded — Eden's execution model. *)
let run ?pool cfg ~scatter ~work ~result_codec ~merge ~init =
  if cfg.nodes <= 0 || cfg.cores_per_node <= 0 then
    invalid_arg "Cluster.run: bad config";
  let workers = if cfg.flat then cfg.nodes * cfg.cores_per_node else cfg.nodes in
  let mailboxes = Array.init workers (fun _ -> Mailbox.create ()) in
  let return_box = Mailbox.create () in
  let scatter_bytes = ref 0 and scatter_msgs = ref 0 in
  let gather_bytes = ref 0 and gather_msgs = ref 0 in
  let max_msg = ref 0 in
  (* Scatter: main serializes each node's slice and posts it. *)
  for node = 0 to workers - 1 do
    let payload = scatter node in
    let bytes = Triolet_base.Codec.to_bytes Triolet_base.Payload.codec payload in
    max_msg := max !max_msg (Bytes.length bytes);
    scatter_bytes := !scatter_bytes + Bytes.length bytes;
    incr scatter_msgs;
    Log.debug (fun m -> m "scatter: %d bytes to node %d" (Bytes.length bytes) node);
    Mailbox.send mailboxes.(node) bytes
  done;
  (* Node side: decode, compute, reply.  Nodes run in sequence in this
     process; the pool provides the intra-node parallelism.  A fresh
     per-call pool would cost a domain spawn per operation, so nodes
     share the default pool, capped at the configured core count. *)
  let pool = match pool with Some p -> p | None -> Pool.default () in
  Stats.ensure_workers (Pool.size pool);
  let before_work = Stats.snapshot () in
  for node = 0 to workers - 1 do
    let bytes = Mailbox.recv mailboxes.(node) in
    let payload =
      Triolet_base.Codec.of_bytes Triolet_base.Payload.codec bytes
    in
    let r = work ~node ~pool payload in
    let reply = Triolet_base.Codec.to_bytes result_codec r in
    Log.debug (fun m -> m "gather: %d bytes from node %d" (Bytes.length reply) node);
    max_msg := max !max_msg (Bytes.length reply);
    gather_bytes := !gather_bytes + Bytes.length reply;
    incr gather_msgs;
    Mailbox.send return_box reply
  done;
  (* Intra-node scheduling visibility: how evenly the pool's workers
     shared the nodes' work, and how much adaptive splitting/stealing
     the lazy scheduler needed to get there. *)
  Log.debug (fun m ->
      let after = Stats.snapshot () in
      let delta =
        after.Stats.chunks_run - before_work.Stats.chunks_run
      and splits = after.Stats.splits - before_work.Stats.splits
      and steals = after.Stats.steals - before_work.Stats.steals in
      m "intra-node: %d chunks, %d splits, %d steals, imbalance %.2f" delta
        splits steals (Stats.imbalance after));
  (* Gather: main decodes replies in arrival order and merges. *)
  let acc = ref init in
  for _ = 0 to workers - 1 do
    let reply = Mailbox.recv return_box in
    let r = Triolet_base.Codec.of_bytes result_codec reply in
    acc := merge !acc r
  done;
  ( !acc,
    {
      scatter_bytes = !scatter_bytes;
      gather_bytes = !gather_bytes;
      scatter_messages = !scatter_msgs;
      gather_messages = !gather_msgs;
      max_message_bytes = !max_msg;
    } )
