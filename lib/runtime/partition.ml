(** Block partitioning of iteration spaces.

    Triolet separates data distribution from work distribution: these
    functions only decide index ranges; extracting the matching data
    slice is the iterator's job (paper, sections 2 and 3.5). *)

(** [blocks ~parts n] splits [0, n) into at most [parts] contiguous
    (offset, length) blocks of near-equal size.  Empty blocks are
    omitted, so fewer than [parts] blocks are returned when [n < parts]. *)
let blocks ~parts n =
  if parts <= 0 then invalid_arg "Partition.blocks: parts must be positive";
  if n < 0 then invalid_arg "Partition.blocks: negative length";
  let parts = min parts (max n 1) in
  let base = n / parts and extra = n mod parts in
  let rec build k off acc =
    if k = parts then List.rev acc
    else
      let len = base + (if k < extra then 1 else 0) in
      if len = 0 then List.rev acc
      else build (k + 1) (off + len) ((off, len) :: acc)
  in
  Array.of_list (build 0 0 [])

(** Owner of index [i] under [blocks ~parts n]. *)
let owner ~parts n i =
  if i < 0 || i >= n then invalid_arg "Partition.owner";
  let parts = min parts (max n 1) in
  let base = n / parts and extra = n mod parts in
  let boundary = (base + 1) * extra in
  if i < boundary then i / (base + 1) else extra + ((i - boundary) / base)

(** 2-D block grid over an [rows] x [cols] space: the cross product of a
    row partition and a column partition, as used by sgemm's 2-D block
    decomposition.  Returns (row0, nrows, col0, ncols) blocks in
    row-major block order.

    Degenerate inputs degrade rather than corrupt the decomposition: an
    empty space ([rows = 0] or [cols = 0]) yields no blocks at all, and
    more parts than cells along either axis caps at one cell per block
    — the grid never contains an empty or overlapping block. *)
let grid ~row_parts ~col_parts ~rows ~cols =
  if row_parts <= 0 || col_parts <= 0 then
    invalid_arg "Partition.grid: parts must be positive";
  if rows < 0 || cols < 0 then invalid_arg "Partition.grid: negative extent";
  if rows = 0 || cols = 0 then [||]
  else
    let rblocks = blocks ~parts:row_parts rows in
    let cblocks = blocks ~parts:col_parts cols in
    Array.concat
      (Array.to_list
         (Array.map
            (fun (r0, nr) ->
              Array.map (fun (c0, nc) -> (r0, nr, c0, nc)) cblocks)
            rblocks))

(** Near-square factorization of [parts] used to choose a block grid
    shape: returns (row_parts, col_parts) with row_parts * col_parts =
    parts, row_parts <= col_parts, and the factors as close as
    possible.  The float sqrt seed is clamped to [\[1, parts\]] so
    rounding on huge inputs can neither divide by zero nor overshoot
    past the trivial factorization. *)
let square_factors parts =
  if parts <= 0 then invalid_arg "Partition.square_factors";
  let r = ref (max 1 (min parts (int_of_float (sqrt (float_of_int parts))))) in
  while parts mod !r <> 0 do
    decr r
  done;
  let r = !r and c = parts / !r in
  if r <= c then (r, c) else (c, r)

(** Number of chunks to cut a loop of [n] iterations into for a pool of
    [workers] workers.  Over-decomposition by [multiplier] gives the
    work-stealing scheduler room to balance irregular iterations. *)
let chunk_count ?(multiplier = 4) ~workers n =
  if workers <= 0 then invalid_arg "Partition.chunk_count";
  max 1 (min n (workers * multiplier))

(** Grain size for the adaptive lazy-splitting scheduler: the number of
    iterations a worker peels off the bottom of its range between
    deque-empty checks, and the length below which a range is no longer
    split for thieves.

    The auto policy targets ~32 grains per worker — enough slack for
    thieves to rebalance heavily skewed iteration costs — but caps the
    grain at [max_grain] so very long uniform loops still amortize the
    per-grain bookkeeping (one atomic decrement and one deque probe)
    without ever becoming unstealable, and floors it at 1 so short loops
    keep full splitting freedom. *)
let grain ?(max_grain = 8192) ~workers n =
  if workers <= 0 then invalid_arg "Partition.grain";
  if n <= 0 then 1 else max 1 (min max_grain (n / (workers * 32)))
