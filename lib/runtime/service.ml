(** Long-lived, supervised job service over the {!Transport.Proc}
    fork-per-node fabric.

    Every skeleton call so far built a cluster, ran one scatter/gather,
    and tore the cluster down; a resident deployment cannot afford a
    fork per call, and a fabric that stays up must survive its own
    children.  A service forks its workers once, keeps them warm across
    requests, and wires four robustness mechanisms end to end:

    - {b supervision} ({!Supervisor}): periodic [Ping]/[Pong]
      heartbeats, missed-heartbeat death verdicts, and respawn of dead
      children with capped exponential backoff;
    - {b retry}: in-flight slices of a dead child are re-issued to
      survivors under the same checksummed-envelope protocol as
      [Cluster.run] — a SIGKILL mid-request costs latency, never
      correctness;
    - {b deadlines}: a request may carry a compute budget, propagated
      to workers as an absolute [CLOCK_MONOTONIC] timestamp (valid
      across processes on one host); a slice that reaches a worker past
      its deadline is cancelled, not computed, and the request fails
      with [Deadline_expired];
    - {b admission control}: a bounded queue with a high-water mark.
      When [queue_bound] requests are already waiting, new submissions
      are rejected with [Overloaded] immediately — shedding load at the
      edge instead of collapsing under it.  {!drain} flips the service
      into refusing all new work ([Draining]) while admitted requests
      finish.

    Concurrency model: any number of client threads may call {!submit};
    a single dispatcher thread owns the fabric and runs the whole
    protocol (select loop, retries, heartbeats, respawns), so every
    seeded fault decision happens on one stream in one order.  Clients
    block on a condition variable until their request completes.  The
    parent process must never spawn a domain — respawning forks — so
    intra-request parallelism lives in the children's pools, and client
    concurrency uses systhreads. *)

module Codec = Triolet_base.Codec
module Payload = Triolet_base.Payload
module Obs = Triolet_obs.Obs

type error =
  | Overloaded  (** rejected at admission: the queue is at its bound *)
  | Deadline_expired  (** the request's compute budget ran out *)
  | Draining  (** the service no longer accepts work *)
  | Failed of string  (** task code raised, or recovery gave up *)

let error_to_string = function
  | Overloaded -> "overloaded"
  | Deadline_expired -> "deadline expired"
  | Draining -> "draining"
  | Failed msg -> "failed: " ^ msg

type config = {
  nodes : int;
  cores_per_node : int;
  queue_bound : int;  (** admission-queue high-water mark *)
  heartbeat_interval : float;  (** seconds between pings per child *)
  miss_threshold : int;  (** unanswered pings before a death verdict *)
  respawn_backoff : float;  (** first respawn delay, seconds *)
  respawn_backoff_max : float;  (** backoff cap for flapping children *)
  request_timeout : float;  (** base per-slice retry timeout, seconds *)
  max_attempts : int;  (** per-slice cap on (re-)execution attempts *)
  poll_interval : float;  (** dispatcher select poll cap, seconds *)
  faults : Fault.spec option;  (** seeded chaos plan, if any *)
}

let default_config =
  {
    nodes = 4;
    cores_per_node = 2;
    queue_bound = 64;
    heartbeat_interval = 0.05;
    miss_threshold = 3;
    respawn_backoff = 0.01;
    respawn_backoff_max = 1.0;
    request_timeout = 0.05;
    max_attempts = 8;
    poll_interval = 0.01;
    faults = None;
  }

(* Wire format.  One request is split into one slice per payload;
   slices are tagged (request, slice, seq) so late or duplicated
   replies from a previous attempt — or a previous request — are
   recognizably stale.  The deadline crosses as absolute monotonic
   nanoseconds (0 = none).  A [None] reply payload is the worker saying
   "already past deadline, not computed". *)
let task_codec =
  Codec.checksummed
    Codec.(pair (triple int int int) (pair int Payload.codec))

let reply_codec =
  Codec.checksummed
    Codec.(pair (triple int int int) (option Payload.codec))

let err_codec = Codec.checksummed Codec.(pair (pair int int) string)

(* One admitted request, owned by the dispatcher; the submitting client
   blocks on [cond] until [done_] flips. *)
type request = {
  req_id : int;
  payloads : Payload.t array;
  deadline_ns : int;  (* absolute monotonic ns; 0 = none *)
  mutable outcome : (Payload.t array, error) result option;
}

type t = {
  cfg : config;
  fabric : Transport.Proc.t;
  sup : Supervisor.t;
  fault : Fault.t option;
  (* Client-facing state, under [lock]. *)
  lock : Mutex.t;
  cond : Condition.t;
  queue : request Queue.t;
  mutable queued : int;
  mutable inflight : bool;  (* dispatcher is executing a dequeued request *)
  mutable draining : bool;
  mutable stopped : bool;
  mutable next_req : int;
  (* Dispatcher plumbing. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable dispatcher : Thread.t option;
}

let live_nodes t = Transport.Proc.alive_ids t.fabric
let node_pids t = Array.init t.cfg.nodes (Transport.Proc.pid t.fabric)
let respawns t = Supervisor.respawns t.sup
let heartbeat_misses t = Supervisor.heartbeat_misses t.sup

let poke t =
  (* Wake the dispatcher out of its select; a full pipe already wakes. *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ()

let drain_wake t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Child side.                                                         *)

let serve_loop ~cores_per_node ~work ~id chan =
  Cluster.note_current_node id;
  let trk = Protocol.make_tracker Protocol.Child ~id:(string_of_int id) in
  let pool = lazy (Pool.create ~workers:cores_per_node ()) in
  let rec loop () =
    match Transport.Socket.recv chan with
    | exception Transport.Closed -> Protocol.step trk Protocol.Eof
    | kind, _ as frame ->
        Protocol.step trk (Protocol.Recv kind);
        handle frame
  and handle = function
    | Transport.Ping, payload ->
        Transport.Socket.send chan ~kind:Transport.Pong payload;
        loop ()
    | (Transport.Err | Transport.Nack | Transport.Pong), _ -> loop ()
    | (Transport.Seg_put | Transport.Seg_reuse | Transport.Seg_free), _ ->
        (* Segment residency lives in Darray sessions; a request/reply
           service child holds no segment table, so reject loudly
           rather than silently accept a put. *)
        Transport.Socket.send chan ~kind:Transport.Nack Bytes.empty;
        loop ()
    | Transport.Data, bytes ->
        (match Codec.of_bytes task_codec bytes with
        | exception _ ->
            Transport.Socket.send chan ~kind:Transport.Nack Bytes.empty
        | (req, slice, seq), (deadline_ns, payload) -> (
            if deadline_ns > 0 && Clock.monotonic_ns () > deadline_ns then
              (* Past deadline: cancelled, not computed. *)
              Transport.Socket.send chan
                (Codec.to_bytes reply_codec ((req, slice, seq), None))
            else
              match work ~node:id ~pool:(Lazy.force pool) payload with
              | r ->
                  Transport.Socket.send chan
                    (Codec.to_bytes reply_codec ((req, slice, seq), Some r))
              | exception e ->
                  Transport.Socket.send chan ~kind:Transport.Err
                    (Codec.to_bytes err_codec
                       ((req, slice), Printexc.to_string e))));
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Dispatcher side.                                                    *)

(* Per-slice in-flight bookkeeping for the request being executed. *)
type slice_state = {
  mutable target : int;  (* node currently owning this slice *)
  mutable attempts : int;
  mutable sent_at : int;  (* monotonic ns of the newest send *)
  mutable result : Payload.t option;
  mutable expired : bool;  (* worker reported past-deadline *)
}

exception Request_failed of error

let ns_of_timeout s = int_of_float (s *. 1e9)

let send_slice t req slices i =
  let st = slices.(i) in
  st.attempts <- st.attempts + 1;
  st.sent_at <- Clock.monotonic_ns ();
  let bytes =
    Codec.to_bytes task_codec
      ((req.req_id, i, st.attempts), (req.deadline_ns, req.payloads.(i)))
  in
  Stats.record_message ~bytes:(Bytes.length bytes);
  try
    Transport.Socket.send
      (Transport.Proc.node t.fabric st.target).Transport.Proc.chan bytes
  with Transport.Closed ->
    (* Child died under our feet; the EOF surfaces in the select loop
       and re-targets this slice. *)
    ()

(* Pick a live target, preferring an even spread by slice index. *)
let pick_target t i =
  match live_nodes t with
  | [] -> None
  | live -> Some (List.nth live (i mod List.length live))

let slice_timeout t ~attempt =
  let base = t.cfg.request_timeout in
  let a = max 0 (min (attempt - 1) 30) in
  Float.min 2.0 (base *. Float.of_int (1 lsl a))

(* Run one admitted request to completion.  The select loop interleaves
   reply handling with supervision (heartbeats, death verdicts,
   respawns), so a request outlives any individual child. *)
let execute t req =
  Obs.span ~name:"service.request"
    ~attrs:[ ("req", string_of_int req.req_id) ]
    (fun () ->
      let n = Array.length req.payloads in
      let slices =
        Array.init n (fun _ ->
            { target = -1; attempts = 0; sent_at = 0; result = None; expired = false })
      in
      let outstanding = ref n in
      let finished () = !outstanding = 0 in
      let issue i =
        match pick_target t i with
        | None ->
            (* Nobody alive right now: leave the slice pending; the
               next respawn makes a target available and the timeout
               path re-issues. *)
            ()
        | Some target ->
            slices.(i).target <- target;
            if slices.(i).attempts >= t.cfg.max_attempts then
              raise
                (Request_failed
                   (Failed
                      (Printf.sprintf "slice %d exhausted %d attempts" i
                         slices.(i).attempts)));
            send_slice t req slices i
      in
      let check_deadline () =
        if req.deadline_ns > 0 && Clock.monotonic_ns () > req.deadline_ns then begin
          Stats.record_deadline_expired ();
          Obs.instant ~name:"service.deadline.expired"
            ~attrs:[ ("req", string_of_int req.req_id) ]
            ();
          raise (Request_failed Deadline_expired)
        end
      in
      check_deadline ();
      for i = 0 to n - 1 do
        issue i
      done;
      while not (finished ()) do
        check_deadline ();
        let now = Clock.monotonic_ns () in
        Supervisor.tick t.sup ~now;
        let timeout =
          Float.min t.cfg.poll_interval (Supervisor.next_event_in t.sup ~now)
        in
        (match Transport.Proc.recv_any t.fabric ~wake:t.wake_r ~timeout with
        | `Wake -> drain_wake t
        | `No_nodes ->
            (* All children dead at once; wait for respawns. *)
            Unix.sleepf (Float.min timeout 0.005)
        | `Timeout ->
            (* Re-issue slices whose attempt timed out (capped
               exponential backoff per slice). *)
            let now = Clock.monotonic_ns () in
            Array.iteri
              (fun i st ->
                if st.result = None && (not st.expired) && st.attempts > 0 then begin
                  let budget = ns_of_timeout (slice_timeout t ~attempt:st.attempts) in
                  if now - st.sent_at > budget then begin
                    Stats.record_retry ();
                    Obs.instant ~name:"service.retry"
                      ~attrs:
                        [ ("req", string_of_int req.req_id);
                          ("slice", string_of_int i) ]
                      ();
                    issue i
                  end
                end
                else if st.result = None && st.attempts = 0 then issue i)
              slices
        | `Eof node ->
            (match t.fault with
            | Some f -> ignore (Fault.mark_crashed f node)
            | None -> Stats.record_crash ());
            Supervisor.note_eof t.sup node ~now:(Clock.monotonic_ns ());
            (* Re-issue the dead child's in-flight slices to survivors
               immediately; no need to wait out their timeouts. *)
            Array.iteri
              (fun i st ->
                if st.result = None && st.target = node then issue i)
              slices
        | `Msg (node, Transport.Pong, _) ->
            ignore (Supervisor.note_pong t.sup node ~now:(Clock.monotonic_ns ()))
        | `Msg
            ( node,
              ( ( Transport.Ping | Transport.Seg_put | Transport.Seg_reuse
                | Transport.Seg_free ) as k ),
              _ ) ->
            (* Parent-only kinds echoed back are noise; track and drop. *)
            Supervisor.note_frame t.sup node k
        | `Msg (node, Transport.Nack, _) ->
            Supervisor.note_frame t.sup node Transport.Nack;
            Stats.record_corrupt_drop ()
            (* The owning slice re-issues via its timeout. *)
        | `Msg (node, Transport.Err, bytes) -> (
            Supervisor.note_frame t.sup node Transport.Err;
            match Codec.of_bytes err_codec bytes with
            | exception _ -> Stats.record_corrupt_drop ()
            | (req', slice), msg ->
                if req' = req.req_id && slice >= 0 && slice < n then
                  raise
                    (Request_failed
                       (Failed (Printf.sprintf "slice %d raised: %s" slice msg))))
        | `Msg (node, Transport.Data, bytes) -> (
            Supervisor.note_frame t.sup node Transport.Data;
            Stats.record_message ~bytes:(Bytes.length bytes);
            match Codec.of_bytes reply_codec bytes with
            | exception _ -> Stats.record_corrupt_drop ()
            | (req', slice, _seq), reply ->
                if req' <> req.req_id || slice < 0 || slice >= n then
                  Stats.record_redelivery ()
                else
                  let st = slices.(slice) in
                  if st.result <> None || st.expired then Stats.record_redelivery ()
                  else (
                    match reply with
                    | Some r ->
                        st.result <- Some r;
                        decr outstanding
                    | None ->
                        (* Worker refused: past deadline. *)
                        st.expired <- true;
                        Stats.record_deadline_expired ();
                        raise (Request_failed Deadline_expired))))
      done;
      Ok (Array.map
            (fun st ->
              match st.result with Some r -> r | None -> assert false)
            slices))

let dispatcher_loop t =
  let rec next_request () =
    Mutex.lock t.lock;
    let rec await () =
      if t.stopped && Queue.is_empty t.queue then begin
        Mutex.unlock t.lock;
        None
      end
      else
        match Queue.take_opt t.queue with
        | Some req ->
            t.queued <- t.queued - 1;
            t.inflight <- true;
            Mutex.unlock t.lock;
            Some req
        | None ->
            Mutex.unlock t.lock;
            (* Idle edge: keep heartbeats and respawns flowing while
               the queue is empty. *)
            let now = Clock.monotonic_ns () in
            Supervisor.tick t.sup ~now;
            let timeout =
              Float.min t.cfg.poll_interval
                (Supervisor.next_event_in t.sup ~now)
            in
            (match Transport.Proc.recv_any t.fabric ~wake:t.wake_r ~timeout with
            | `Wake -> drain_wake t
            | `Msg (node, Transport.Pong, _) ->
                ignore
                  (Supervisor.note_pong t.sup node ~now:(Clock.monotonic_ns ()))
            | `Eof node ->
                (match t.fault with
                | Some f -> ignore (Fault.mark_crashed f node)
                | None -> Stats.record_crash ());
                Supervisor.note_eof t.sup node ~now:(Clock.monotonic_ns ())
            | `Msg (node, ((Transport.Data | Transport.Err | Transport.Nack) as k), _)
              ->
                (* Stale traffic from a finished request. *)
                Supervisor.note_frame t.sup node k;
                Stats.record_redelivery ()
            | `Msg
                ( node,
                  ( ( Transport.Ping | Transport.Seg_put
                    | Transport.Seg_reuse | Transport.Seg_free ) as k ),
                  _ ) ->
                Supervisor.note_frame t.sup node k
            | `Timeout -> ()
            | `No_nodes -> Unix.sleepf 0.001);
            Mutex.lock t.lock;
            await ()
    in
    match await () with
    | None -> ()
    | Some req ->
        let outcome =
          match execute t req with
          | ok -> ok
          | exception Request_failed e -> Error e
          | exception e -> Error (Failed (Printexc.to_string e))
        in
        Mutex.lock t.lock;
        req.outcome <- Some outcome;
        t.inflight <- false;
        Condition.broadcast t.cond;
        Mutex.unlock t.lock;
        next_request ()
  in
  next_request ()

(* ------------------------------------------------------------------ *)
(* Client API.                                                         *)

(** Fork the fabric and start the dispatcher.  [work] crosses into the
    children by address-space inheritance at fork time, exactly like
    [Cluster.run_topology]'s process backend; it must be re-executable
    (a slice may run more than once under retries).  The parent must
    never have spawned a domain ([fork] would be forbidden) — and must
    not spawn one afterwards, or respawns will fail. *)
let create ?(cfg = default_config) ~work () =
  if cfg.nodes < 1 then invalid_arg "Service: nodes < 1";
  if cfg.queue_bound < 1 then invalid_arg "Service: queue_bound < 1";
  if Pool.domains_ever_spawned () then
    failwith
      "Service: the service fabric forks (and re-forks, on respawn) one \
       process per node, and OCaml cannot fork once any domain has been \
       spawned.  Create the service before any multi-domain pool.";
  let serve = serve_loop ~cores_per_node:cfg.cores_per_node ~work in
  let fabric = Transport.Proc.fork ~n:cfg.nodes ~child:serve in
  let fault = Option.map Fault.make cfg.faults in
  let sup =
    Supervisor.create ~fabric ~serve ~hb_interval:cfg.heartbeat_interval
      ~miss_threshold:cfg.miss_threshold ~backoff_base:cfg.respawn_backoff
      ~backoff_max:cfg.respawn_backoff_max ?faults:fault ()
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      cfg;
      fabric;
      sup;
      fault;
      lock = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      queued = 0;
      inflight = false;
      draining = false;
      stopped = false;
      next_req = 0;
      wake_r;
      wake_w;
      dispatcher = None;
    }
  in
  t.dispatcher <- Some (Thread.create dispatcher_loop t);
  t

(** Submit one request: [payloads.(i)] becomes slice [i], distributed
    over live nodes; the result array is in slice order.  Blocks the
    calling thread until the request completes or is rejected.
    [?deadline] is a compute budget in seconds from now.  Thread-safe;
    admission control applies at the queue's high-water mark. *)
let submit ?deadline t payloads =
  if Array.length payloads = 0 then invalid_arg "Service.submit: no payloads";
  let deadline_ns =
    match deadline with
    | None -> 0
    | Some d ->
        if d <= 0.0 then invalid_arg "Service.submit: deadline <= 0";
        Clock.monotonic_ns () + int_of_float (d *. 1e9)
  in
  Mutex.lock t.lock;
  if t.draining || t.stopped then begin
    Mutex.unlock t.lock;
    Error Draining
  end
  else if t.queued >= t.cfg.queue_bound then begin
    Mutex.unlock t.lock;
    Stats.record_shed ();
    Obs.instant ~name:"service.shed" ();
    Error Overloaded
  end
  else begin
    let req =
      { req_id = t.next_req; payloads; deadline_ns; outcome = None }
    in
    t.next_req <- t.next_req + 1;
    Queue.push req t.queue;
    t.queued <- t.queued + 1;
    poke t;
    let rec wait () =
      match req.outcome with
      | Some o ->
          Mutex.unlock t.lock;
          o
      | None ->
          Condition.wait t.cond t.lock;
          wait ()
    in
    wait ()
  end

(** Stop accepting work ([Draining] to new submits) but let admitted
    requests finish.  Returns once the queue is empty and the
    dispatcher is idle. *)
let drain t =
  Mutex.lock t.lock;
  t.draining <- true;
  Mutex.unlock t.lock;
  poke t;
  let rec wait () =
    Mutex.lock t.lock;
    let busy = t.queued > 0 || t.inflight in
    Mutex.unlock t.lock;
    if busy then begin
      Thread.yield ();
      Unix.sleepf 0.002;
      wait ()
    end
  in
  wait ()

(** Graceful shutdown: {!drain}, stop the dispatcher, tear the fabric
    down (idempotent, like [Transport.Proc.shutdown]). *)
let shutdown ?grace t =
  drain t;
  Mutex.lock t.lock;
  let first = not t.stopped in
  t.stopped <- true;
  Mutex.unlock t.lock;
  poke t;
  if first then begin
    (match t.dispatcher with Some th -> Thread.join th | None -> ());
    t.dispatcher <- None;
    Transport.Proc.shutdown ?grace t.fabric;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
  end

(** Fault counters of the chaos plan, when one was configured. *)
let fault_counters t = Option.map Fault.counters t.fault
