(** Persistent distributed arrays: segments resident across calls.

    Where {!Cluster.run} re-ships every slice on every call, a
    [Darray]'s segments are installed once in warm per-node children
    (real forked processes under the [Process] backend, parent-held
    tables otherwise) and stay resident; later runs ship only key-sized
    {!Protocol.Seg_reuse} envelopes for unchanged segments plus the
    per-round argument, so iterative kernels' per-round scatter bytes
    collapse to near zero.  Segments are versioned: {!update} bumps a
    version and exactly the changed segments re-ship ({!Protocol.Seg_put}).
    A child refuses a reuse (or a task) naming a version it does not
    hold, and a respawned child's segments are replayed from
    parent-retained encoded bytes before its slice is re-issued. *)

module Codec = Triolet_base.Codec
module Payload = Triolet_base.Payload

(** {1 Sessions} *)

type work = node:int -> resident:Payload.t -> arg:Payload.t -> Payload.t
(** A node's compute: [resident] is the concatenation of the node's
    resident segments in plan order (per array of the view, each owned
    primary segment then its ghost); [arg] is the per-round payload.
    Must be pure in its inputs (it re-executes on retry) and must not
    mutate [resident] (it persists across calls). *)

type session
(** Warm compute context: the work closure, the topology, and — under
    the [Process] backend — one forked child per node with its segment
    table, supervised with heartbeats and backoff respawn.  Fork
    happens at creation, so create process-mode sessions before any
    domain is spawned. *)

val create_session :
  ?topology:Cluster.topology ->
  ?hb_interval:float ->
  ?miss_threshold:int ->
  ?backoff_base:float ->
  ?backoff_max:float ->
  work:work ->
  unit ->
  session
(** [create_session ~work ()] builds the resident fabric for
    [topology] (default {!Cluster.default_topology}).  The supervisor
    tunables apply to process mode only; defaults are looser than
    {!Service}'s ([hb_interval] 0.5 s, [miss_threshold] 4) because a
    node computing a long slice cannot answer pings meanwhile. *)

val session_nodes : session -> int

val proc_pids : session -> int list
(** Live child pids (process mode; [[]] otherwise) — lets chaos tests
    SIGKILL a child mid-iteration from outside. *)

val session_respawns : session -> int
(** Children replaced by the session's supervisor so far. *)

val close_session : session -> unit
(** Tear the fabric down (EOF then SIGKILL after grace, like
    {!Transport.Proc.shutdown}).  Idempotent. *)

(** {1 Arrays} *)

type t

val create : session -> segments:Payload.t array -> t
(** [create s ~segments] distributes [segments]: segment [i] is owned
    by node [i mod nodes].  Nothing ships until the first {!run}. *)

val nsegs : t -> int
val owner : t -> int -> int
val segment_version : t -> int -> int

val update : t -> int -> Payload.t -> unit
(** Replace segment [i]'s contents and bump its version; exactly this
    segment re-ships (as a [Seg_put]) on the next run that needs it. *)

val free : t -> unit
(** Evict the array's segments everywhere ([Seg_free] per node) and
    refuse further use.  Idempotent. *)

(** {1 Halo exchange} *)

val set_ghost : t -> int -> Payload.t -> bool
(** Install or refresh the ghost region riding with primary segment
    [i] (wire index [nsegs + i], same owner node).  Returns whether
    the content changed — an unchanged ghost keeps its version and
    ships as a key-only reuse. *)

val ghost_version : t -> int -> int option

val exchange_halo : t -> compute:(int -> Payload.t) -> int
(** Recompute every ghost with [compute i] (typically boundary planes
    of neighbouring segments, assembled parent-side) and install the
    changed ones; returns how many actually changed. *)

(** {1 Views, zip, and running} *)

type view

val view : t -> view

val zip : view -> t -> view
(** Co-distributed zip: appends an array to the view.  Asserts matching
    geometry — same session, same segment count, same per-segment
    element count — and raises [Invalid_argument] otherwise. *)

val zip2 : t -> t -> view

val run :
  view ->
  arg:(int -> Payload.t) ->
  merge:('a -> Payload.t -> 'a) ->
  init:'a ->
  'a * Cluster.report
(** One round over the resident view: per node, ship residency deltas
    (puts for changed or lost segments, key-only reuses otherwise),
    ship [arg n] in the task frame, and gather replies; results merge
    in node order.  The report's [scatter_bytes] counts puts + reuses +
    task frames, so a warm run over an unchanged view ships orders of
    magnitude fewer bytes than the first.  Under the process backend a
    child that dies mid-round is respawned (supervisor backoff), its
    segments are replayed from parent-retained encoded bytes, and its
    slice re-issued, up to a bounded attempt budget
    ({!Cluster.Recovery_exhausted} beyond it). *)

val run1 :
  t ->
  arg:(int -> Payload.t) ->
  merge:('a -> Payload.t -> 'a) ->
  init:'a ->
  'a * Cluster.report
(** [run1 d] is [run (view d)]. *)

(** {1 Wire codecs}

    Exposed for tests (qcheck roundtrip/fuzz through
    {!Protocol.Decoder}) and the simulator's segment-protocol model. *)

val key_codec : (int * int * int) Codec.t
(** [(darray id, wire segment index, version)]. *)

val put_codec : ((int * int * int) * Payload.t) Codec.t
val reuse_codec : (int * int * int) Codec.t
val free_codec : int Codec.t
val task_codec : (int * (int * int * int) list * Payload.t) Codec.t
val reply_codec : (int * Payload.t) Codec.t
