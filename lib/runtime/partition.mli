(** Block partitioning of iteration spaces.

    Work distribution only: extracting the data slice that matches an
    index range is the iterator's job (paper, sections 2 and 3.5). *)

val blocks : parts:int -> int -> (int * int) array
(** [blocks ~parts n] splits [0, n) into at most [parts] contiguous
    (offset, length) blocks whose sizes differ by at most one.  Empty
    blocks are omitted. *)

val owner : parts:int -> int -> int -> int
(** [owner ~parts n i] is the index of the block of [blocks ~parts n]
    containing [i]. *)

val grid :
  row_parts:int -> col_parts:int -> rows:int -> cols:int ->
  (int * int * int * int) array
(** 2-D block grid: (row0, nrows, col0, ncols) blocks in row-major block
    order, covering the space exactly once.  An empty space yields no
    blocks; more parts than cells along an axis caps at one cell per
    block — never an empty or overlapping block. *)

val square_factors : int -> int * int
(** [square_factors p] = (r, c) with [r * c = p] and the factors as
    close as possible ([r <= c]); the grid shape used for 2-D block
    decompositions. *)

val chunk_count : ?multiplier:int -> workers:int -> int -> int
(** Number of chunks to cut a loop of [n] iterations into for a pool of
    [workers]: over-decomposition (default 4x) gives work stealing room
    to balance irregular iterations.  Used for *pre-partitioned* work
    (explicit blocks); dynamically scheduled loops use {!grain}. *)

val grain : ?max_grain:int -> workers:int -> int -> int
(** [grain ~workers n] is the auto grain size for the lazy-splitting
    scheduler on a loop of [n] iterations: roughly [n / (workers * 32)],
    clamped to [\[1, max_grain\]] (default 8192).  A worker executes one
    grain at a time off the bottom of its range and ranges at most one
    grain long are no longer split. *)
