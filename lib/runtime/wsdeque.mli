(** Chase–Lev work-stealing deque (SPAA 2005).

    One owner pushes and pops at the bottom; any number of thieves steal
    from the top.  The adaptive scheduler stores range tasks [(lo, hi)]
    here; thieves steal whole unstarted ranges, which the new owner
    lazily re-splits. *)

type 'a t

type 'a steal_result =
  | Stolen of 'a
  | Empty  (** nothing to steal *)
  | Retry  (** lost a race; try again *)

val create : ?capacity:int -> unit -> 'a t

val size : 'a t -> int
(** Approximate under concurrency. *)

val is_empty : 'a t -> bool
(** [size q = 0]; approximate under concurrency.  The owner's
    split-on-demand probe: exact for the owner when no thief
    intervenes, and a stale [false] merely delays one split. *)

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only; takes the most recently pushed element. *)

val steal : 'a t -> 'a steal_result
(** Any domain; takes the oldest element. *)
