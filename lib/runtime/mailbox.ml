(** Node mailboxes: FIFO queues of serialized messages.

    All inter-node traffic in the cluster runtime flows through
    mailboxes as opaque byte buffers — data crosses a node boundary only
    in serialized form, as on a real network.  Every send is counted in
    {!Stats}.

    Two extensions support the fault-tolerant runtime: a mailbox can be
    {!close}d (a poison state that wakes blocked receivers instead of
    leaving them stuck on a dead peer), and messages can be parked as
    *delayed* ({!send_delayed}) — invisible to receivers until a
    {!recv_timeout} expires, which models a straggling link whose
    message arrives only after the receiver has already given up
    waiting.  Both recovery paths (timeout-driven retry and late
    duplicate delivery) are therefore deterministic: delivery order
    depends only on the sequence of sends and timeouts, not on wall
    clocks. *)

exception Closed

type t = {
  q : Bytes.t Queue.t;
  delayed : Bytes.t Queue.t;
      (* in-flight messages promoted to [q] when a receiver times out *)
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable total_bytes : int;
  mutable total_messages : int;
}

let create () =
  {
    q = Queue.create ();
    delayed = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
    total_bytes = 0;
    total_messages = 0;
  }

let count_send t msg =
  t.total_bytes <- t.total_bytes + Bytes.length msg;
  t.total_messages <- t.total_messages + 1

let send t msg =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    raise Closed
  end;
  Queue.push msg t.q;
  count_send t msg;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock;
  Stats.record_message ~bytes:(Bytes.length msg)

(** Park a message in flight: receivers cannot see it until one of them
    times out ({!recv_timeout} returning [`Timeout] promotes every
    delayed message to the live queue). *)
let send_delayed t msg =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    raise Closed
  end;
  Queue.push msg t.delayed;
  count_send t msg;
  Mutex.unlock t.lock;
  Stats.record_message ~bytes:(Bytes.length msg)

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

(** Blocking receive.  Pending messages are drained even after a close;
    raises {!Closed} once the mailbox is closed and empty. *)
let recv t =
  Mutex.lock t.lock;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.q then begin
    Mutex.unlock t.lock;
    raise Closed
  end;
  let msg = Queue.pop t.q in
  Mutex.unlock t.lock;
  msg

(* The stdlib [Condition] has no timed wait, so the timeout path polls
   with a short sleep.  The poll interval only affects latency, never
   delivery order, so fault-injected runs stay deterministic. *)
let poll_interval = 0.0002

(* Deadline arithmetic uses the monotonic clock, never the wall clock:
   an NTP step forward would spuriously expire a gettimeofday-based
   deadline (firing the retry machinery for no reason), and a step
   backward would leave a receiver polling long past its timeout.
   CLOCK_MONOTONIC cannot step, so the deadline means what it says. *)
let recv_timeout t timeout =
  let deadline =
    Clock.monotonic_ns () + int_of_float (timeout *. 1e9)
  in
  let rec loop () =
    Mutex.lock t.lock;
    if not (Queue.is_empty t.q) then begin
      let msg = Queue.pop t.q in
      Mutex.unlock t.lock;
      `Msg msg
    end
    else if t.closed then begin
      Mutex.unlock t.lock;
      `Closed
    end
    else if Clock.monotonic_ns () >= deadline then begin
      (* The receiver has given up: any delayed messages now "arrive",
         visible to the *next* receive — a late reply crossing a retry
         on the wire. *)
      Queue.transfer t.delayed t.q;
      Mutex.unlock t.lock;
      `Timeout
    end
    else begin
      Mutex.unlock t.lock;
      Unix.sleepf poll_interval;
      loop ()
    end
  in
  loop ()

let try_recv t =
  Mutex.lock t.lock;
  let msg = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
  Mutex.unlock t.lock;
  msg

let pending t =
  Mutex.lock t.lock;
  let n = Queue.length t.q in
  Mutex.unlock t.lock;
  n

let delayed_pending t =
  Mutex.lock t.lock;
  let n = Queue.length t.delayed in
  Mutex.unlock t.lock;
  n

let totals t = (t.total_messages, t.total_bytes)
