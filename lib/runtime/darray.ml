(** Persistent distributed arrays: segments resident across calls.

    {!Cluster.run} re-ships every slice on every call, so an iterative
    kernel (multi-round tpacf, repeated sgemm) pays full scatter
    traffic each round even when most of its input never changes.  A
    [Darray] separates data distribution from work distribution (paper,
    section 3.5): the array's segments are installed {e once} in warm
    children and stay resident there, and a later run ships only

    - a {!Protocol.Seg_reuse} key — [(darray, segment, version)], a few
      bytes — for every segment the child already holds at the current
      version,
    - a {!Protocol.Seg_put} frame — key plus payload bytes — only for
      segments that changed (or that a respawned child lost), and
    - the per-round argument payload inside the task frame.

    Per-iteration scatter traffic therefore collapses to the argument
    plus key-sized envelopes once the array is warm; the per-run
    {!Cluster.report} makes the collapse measurable.

    {2 Sessions and modes}

    Residency needs somewhere to reside.  A {!session} pins the compute
    closure and the topology at creation time:

    - [Inprocess]/[Flat] backends: per-node segment tables held in the
      parent process.  Put frames are still encoded and size-accounted
      (and the stored copy is the {e decoded} image of those bytes, so
      a node can never alias the parent's buffers), making byte
      accounting identical to the process mode.
    - [Process] backend: one forked child per node over
      {!Transport.Proc} socket channels, each holding its segment table
      in its own address space, supervised by a {!Supervisor}
      (heartbeats, SIGKILL verdicts, backoff respawn).  Like every fork
      in the runtime, the session must be created before any domain is
      spawned.

    {2 Versioning and refusal}

    Segments are keyed [(darray_id, segment, version)].  {!update}
    bumps the version; the parent tracks, per node, which version it
    believes resident and ships a put exactly when belief and truth
    disagree.  A child {e refuses} a reuse naming a version it does not
    hold (a [Nack] carrying the offending key): the parent reacts by
    dropping every belief about that node and replaying puts, so a
    mistaken belief costs one round trip, never a wrong answer.  Task
    frames carry the full expected key list and the child re-checks it
    before computing — version skew is refused at both edges.

    {2 Halo exchange}

    A stencil kernel (cutcp) needs a boundary region of its neighbours'
    segments.  Each primary segment [i] may carry a {e ghost} segment
    (wire index [nsegs + i], same owner) with its own version:
    {!exchange_halo} recomputes the ghosts parent-side and bumps a
    ghost's version only when its content actually changed, so a
    converged boundary ships keys only.

    {2 Crash replay}

    A respawned child has an empty table.  The parent retains every
    segment's encoded put frame (encoded once per version — see
    {!Stats.record_encode}); on a child's EOF it forgets that node's
    believed residency, and the next issue replays the owning segments
    from the retained bytes through the same checksummed envelope the
    first install used, then re-issues the task.  First-round results
    are byte-identical to the non-resident path because the child
    computes from decoded copies either way. *)

module Codec = Triolet_base.Codec
module Payload = Triolet_base.Payload
module Obs = Triolet_obs.Obs

let log_src = Logs.Src.create "triolet.darray" ~doc:"Distributed arrays"

module Log = (val Logs.src_log log_src)

(* ------------------------------------------------------------------ *)
(* Wire codecs.  Every frame that crosses a channel travels in a
   checksummed envelope, like the cluster fault path: corruption is
   refused by CRC before any decoder runs.                             *)

(* (darray id, wire segment index, version) *)
let key_codec = Codec.(triple int int int)
let put_codec = Codec.checksummed Codec.(pair key_codec Payload.codec)
let reuse_codec = Codec.checksummed key_codec
let free_codec = Codec.checksummed Codec.int

(* (seq, expected resident keys in concatenation order, argument) *)
let task_codec =
  Codec.checksummed Codec.(triple int (list key_codec) Payload.codec)

(* (seq, result) *)
let reply_codec = Codec.checksummed Codec.(pair int Payload.codec)
let err_codec = Codec.checksummed Codec.(pair int string)

(* A Nack names the refused key; task-level rejects use this sentinel. *)
let nack_codec = Codec.checksummed key_codec
let nack_task = (-1, -1, -1)

let max_attempts = 8

(* ------------------------------------------------------------------ *)
(* Session.                                                            *)

type work = node:int -> resident:Payload.t -> arg:Payload.t -> Payload.t

type proc_state = { fabric : Transport.Proc.t; sup : Supervisor.t }

type mode =
  | Local of (int * int, int * Payload.t) Hashtbl.t array
      (* per-node segment tables, (did, wire seg) -> (version, payload) *)
  | Proc of proc_state

type session = {
  nodes : int;
  work : work;
  mode : mode;
  believed : (int * int, int) Hashtbl.t array;
      (* per node: (did, wire seg) -> version the parent believes
         resident there; cleared wholesale on that node's death *)
  mutable next_did : int;
  mutable seq : int;  (* task sequence, shared across the session *)
  mutable closed : bool;
}

(* Child serve loop (process mode).  Inherited across the fork; the
   segment table lives here, in the child's own address space.  A
   respawned incarnation starts with an empty table — exactly the state
   the parent's cleared beliefs assume. *)
let serve ~work ~id chan =
  Cluster.note_current_node id;
  let trk =
    Protocol.make_tracker Protocol.Child ~id:("darray-" ^ string_of_int id)
  in
  let table : (int * int, int * Payload.t) Hashtbl.t = Hashtbl.create 16 in
  let nack key =
    Transport.Socket.send chan ~kind:Transport.Nack
      (Codec.to_bytes nack_codec key)
  in
  let rec loop () =
    match Transport.Socket.recv chan with
    | exception Transport.Closed -> Protocol.step trk Protocol.Eof
    | (kind, _) as frame ->
        Protocol.step trk (Protocol.Recv kind);
        handle frame
  and handle = function
    | Transport.Ping, payload ->
        Transport.Socket.send chan ~kind:Transport.Pong payload;
        loop ()
    | (Transport.Err | Transport.Nack | Transport.Pong), _ -> loop ()
    | Transport.Seg_put, bytes ->
        (match Codec.of_bytes put_codec bytes with
        | exception _ -> nack nack_task
        | (did, seg, ver), payload -> Hashtbl.replace table (did, seg) (ver, payload));
        loop ()
    | Transport.Seg_reuse, bytes ->
        (match Codec.of_bytes reuse_codec bytes with
        | exception _ -> nack nack_task
        | (did, seg, ver) as key -> (
            match Hashtbl.find_opt table (did, seg) with
            | Some (v, _) when v = ver -> ()
            | _ ->
                (* Not resident, or resident at another version: refuse
                   loudly so the parent replays the put. *)
                nack key));
        loop ()
    | Transport.Seg_free, bytes ->
        (match Codec.of_bytes free_codec bytes with
        | exception _ -> ()
        | did ->
            Hashtbl.filter_map_inplace
              (fun (d, _) v -> if d = did then None else Some v)
              table);
        loop ()
    | Transport.Data, bytes ->
        (match Codec.of_bytes task_codec bytes with
        | exception _ -> nack nack_task
        | seq, keys, arg -> (
            (* Re-check every expected key before computing: a task that
               names a version this table does not hold must be refused,
               never computed against stale bytes. *)
            let rec collect acc = function
              | [] -> Ok (List.concat (List.rev acc))
              | (did, seg, ver) :: rest -> (
                  match Hashtbl.find_opt table (did, seg) with
                  | Some (v, payload) when v = ver -> collect (payload :: acc) rest
                  | _ -> Error (did, seg, ver))
            in
            match collect [] keys with
            | Error key -> nack key
            | Ok resident -> (
                match work ~node:id ~resident ~arg with
                | r ->
                    Transport.Socket.send chan
                      (Codec.to_bytes reply_codec (seq, r))
                | exception e ->
                    Transport.Socket.send chan ~kind:Transport.Err
                      (Codec.to_bytes err_codec (seq, Printexc.to_string e)))));
        loop ()
  in
  loop ()

let create_session ?(topology = Cluster.default_topology) ?hb_interval
    ?miss_threshold ?backoff_base ?backoff_max ~work () =
  let nodes = topology.Cluster.nodes in
  if nodes < 1 then invalid_arg "Darray: topology needs at least one node";
  let mode =
    match topology.Cluster.backend with
    | Cluster.Inprocess | Cluster.Flat ->
        Local (Array.init nodes (fun _ -> Hashtbl.create 16))
    | Cluster.Process ->
        if Pool.domains_ever_spawned () then
          failwith
            "Darray: a process-mode session forks one child per node, and \
             OCaml cannot fork once any domain has been spawned.  Create \
             the session before any multi-domain pool.";
        let fabric = Transport.Proc.fork ~n:nodes ~child:(serve ~work) in
        let sup =
          Supervisor.create ~fabric ~serve:(serve ~work)
            ?hb_interval:(Some (Option.value hb_interval ~default:0.5))
            ?miss_threshold:(Some (Option.value miss_threshold ~default:4))
            ?backoff_base ?backoff_max ()
        in
        Proc { fabric; sup }
  in
  {
    nodes;
    work;
    mode;
    believed = Array.init nodes (fun _ -> Hashtbl.create 16);
    next_did = 0;
    seq = 0;
    closed = false;
  }

let session_nodes s = s.nodes

let proc_pids s =
  match s.mode with
  | Local _ -> []
  | Proc { fabric; _ } ->
      List.map (Transport.Proc.pid fabric) (Transport.Proc.alive_ids fabric)

let session_respawns s =
  match s.mode with Local _ -> 0 | Proc { sup; _ } -> Supervisor.respawns sup

let close_session s =
  if not s.closed then begin
    s.closed <- true;
    match s.mode with
    | Local tables -> Array.iter Hashtbl.reset tables
    | Proc { fabric; _ } -> Transport.Proc.shutdown fabric
  end

(* ------------------------------------------------------------------ *)
(* Arrays, views, geometry.                                            *)

type segment = {
  mutable version : int;
  mutable payload : Payload.t;
  mutable encoded : Bytes.t option;
      (* the retained put frame for this version — encoded at most once
         per version, replayed verbatim on retries and crash recovery *)
}

type t = {
  session : session;
  did : int;
  segs : segment array;
  ghosts : segment option array;  (* ghost of seg i rides wire index nsegs+i *)
  mutable freed : bool;
}

let buf_elems = function
  | Payload.Floats a -> Float.Array.length a
  | Payload.Ints a -> Array.length a
  | Payload.Raw s -> String.length s

let payload_elems p = List.fold_left (fun acc b -> acc + buf_elems b) 0 p

let create session ~segments =
  if session.closed then invalid_arg "Darray.create: session closed";
  if Array.length segments = 0 then invalid_arg "Darray.create: no segments";
  let did = session.next_did in
  session.next_did <- did + 1;
  {
    session;
    did;
    segs =
      Array.map
        (fun payload -> { version = 1; payload; encoded = None })
        segments;
    ghosts = Array.make (Array.length segments) None;
    freed = false;
  }

let nsegs d = Array.length d.segs
let owner d i = i mod d.session.nodes
let segment_version d i = d.segs.(i).version
let ghost_version d i = Option.map (fun g -> g.version) d.ghosts.(i)

let update d i payload =
  if d.freed then invalid_arg "Darray.update: freed array";
  let seg = d.segs.(i) in
  seg.version <- seg.version + 1;
  seg.payload <- payload;
  seg.encoded <- None

(* Install or refresh the ghost of primary segment [i].  Content
   equality (structural, on the decoded payload) gates the version
   bump: an unchanged ghost keeps its version and so keeps shipping as
   a key-only reuse. *)
let set_ghost d i payload =
  if d.freed then invalid_arg "Darray.set_ghost: freed array";
  match d.ghosts.(i) with
  | Some g when g.payload = payload -> false
  | Some g ->
      g.version <- g.version + 1;
      g.payload <- payload;
      g.encoded <- None;
      true
  | None ->
      d.ghosts.(i) <- Some { version = 1; payload; encoded = None };
      true

let exchange_halo d ~compute =
  let changed = ref 0 in
  for i = 0 to nsegs d - 1 do
    if set_ghost d i (compute i) then incr changed
  done;
  Obs.instant ~name:"darray.halo"
    ~attrs:
      [ ("darray", string_of_int d.did); ("changed", string_of_int !changed) ]
    ();
  !changed

type view = { arrays : t list }

let view d = { arrays = [ d ] }

let zip v d =
  match v.arrays with
  | [] -> { arrays = [ d ] }
  | first :: _ ->
      if d.session != first.session then
        invalid_arg "Darray.zip: arrays from different sessions";
      if nsegs d <> nsegs first then
        invalid_arg
          (Printf.sprintf "Darray.zip: segment count mismatch (%d vs %d)"
             (nsegs first) (nsegs d));
      Array.iteri
        (fun i seg ->
          let a = payload_elems first.segs.(i).payload
          and b = payload_elems seg.payload in
          if a <> b then
            invalid_arg
              (Printf.sprintf
                 "Darray.zip: segment %d geometry mismatch (%d vs %d elements)"
                 i a b))
        d.segs;
      { arrays = v.arrays @ [ d ] }

let zip2 a b = zip (view a) b

(* ------------------------------------------------------------------ *)
(* Residency bookkeeping (shared by both modes).                       *)

(* The segments node [n] must hold to compute its slice of [v]:
   per array in view order, each primary segment owned by [n] (index
   order) followed by its ghost.  Concatenation order at the child is
   exactly this order. *)
let plan_for_node v n =
  List.concat_map
    (fun d ->
      if d.freed then invalid_arg "Darray.run: freed array";
      let out = ref [] in
      Array.iteri
        (fun i seg ->
          if owner d i = n then begin
            out := (d, i, seg) :: !out;
            match d.ghosts.(i) with
            | Some g -> out := (d, nsegs d + i, g) :: !out
            | None -> ()
          end)
        d.segs;
      List.rev !out)
    v.arrays

let key_of (d, w, seg) = (d.did, w, seg.version)

(* Encoded put frame for one segment — encoded at most once per
   version; retries and crash replay reuse the retained bytes. *)
let encoded_put (d, w, seg) =
  match seg.encoded with
  | Some b -> b
  | None ->
      let b =
        Obs.span ~name:"darray.serialize"
          ~attrs:[ ("darray", string_of_int d.did); ("seg", string_of_int w) ]
          (fun () ->
            Stats.record_encode ();
            Codec.to_bytes put_codec ((d.did, w, seg.version), seg.payload))
      in
      seg.encoded <- Some b;
      b

(* Ship residency for node [n]: a put for every segment whose believed
   version disagrees with truth, a key-only reuse for the rest.
   [put]/[reuse] perform the mode-specific delivery; returns the bytes
   shipped.  This one decision rule covers cold start, dirty updates
   and crash replay identically — a dead node's beliefs were cleared,
   so everything it owned ships as a put again. *)
let ensure_residency s n plan ~put ~reuse =
  let shipped = ref 0 in
  List.iter
    (fun ((d, w, seg) as item) ->
      let key = (d.did, w) in
      match Hashtbl.find_opt s.believed.(n) key with
      | Some v when v = seg.version ->
          let bytes = Codec.to_bytes reuse_codec (key_of item) in
          reuse item bytes;
          shipped := !shipped + Bytes.length bytes;
          Stats.record_message ~bytes:(Bytes.length bytes)
      | _ ->
          let bytes = encoded_put item in
          put item bytes;
          Hashtbl.replace s.believed.(n) key seg.version;
          shipped := !shipped + Bytes.length bytes;
          Stats.record_message ~bytes:(Bytes.length bytes))
    plan;
  !shipped

let empty_report =
  {
    Cluster.scatter_bytes = 0;
    gather_bytes = 0;
    scatter_messages = 0;
    gather_messages = 0;
    max_message_bytes = 0;
    retries = 0;
    redeliveries = 0;
    corrupt_drops = 0;
    crashed_nodes = 0;
    faults_injected = 0;
    recovery_ns = 0;
  }

(* ------------------------------------------------------------------ *)
(* Running a view: local mode.                                         *)

let run_local s tables v ~arg ~merge ~init =
  let scatter_bytes = ref 0 and scatter_msgs = ref 0 in
  let gather_bytes = ref 0 and gather_msgs = ref 0 in
  let max_msg = ref 0 in
  let acc = ref init in
  for n = 0 to s.nodes - 1 do
    let plan = plan_for_node v n in
    let count bytes =
      max_msg := max !max_msg (Bytes.length bytes);
      incr scatter_msgs
    in
    (* Residency: a put installs the *decoded* image of the encoded
       bytes, so node tables never alias parent buffers — the same
       fresh-copy guarantee the socket gives the process mode. *)
    let put (d, w, _) bytes =
      count bytes;
      let (_, _, ver), payload = Codec.of_bytes put_codec bytes in
      Hashtbl.replace tables.(n) (d.did, w) (ver, payload)
    in
    let reuse _ bytes = count bytes in
    scatter_bytes := !scatter_bytes + ensure_residency s n plan ~put ~reuse;
    (* Task: the argument crosses a simulated wire (encode + decode),
       exactly like a cluster scatter. *)
    s.seq <- s.seq + 1;
    let keys = List.map key_of plan in
    let task = Codec.to_bytes task_codec (s.seq, keys, arg n) in
    max_msg := max !max_msg (Bytes.length task);
    scatter_bytes := !scatter_bytes + Bytes.length task;
    incr scatter_msgs;
    Stats.record_message ~bytes:(Bytes.length task);
    let _, _, arg_fresh = Codec.of_bytes task_codec task in
    let resident =
      List.concat_map
        (fun (d, w, _) ->
          match Hashtbl.find_opt tables.(n) (d.did, w) with
          | Some (_, payload) -> payload
          | None -> assert false)
        plan
    in
    let r =
      Obs.span ~name:"darray.compute" ~attrs:[ ("node", string_of_int n) ]
        (fun () -> s.work ~node:n ~resident ~arg:arg_fresh)
    in
    let reply = Codec.to_bytes reply_codec (s.seq, r) in
    max_msg := max !max_msg (Bytes.length reply);
    gather_bytes := !gather_bytes + Bytes.length reply;
    incr gather_msgs;
    Stats.record_message ~bytes:(Bytes.length reply);
    let _, r_fresh = Codec.of_bytes reply_codec reply in
    acc := merge !acc r_fresh
  done;
  ( !acc,
    {
      empty_report with
      Cluster.scatter_bytes = !scatter_bytes;
      gather_bytes = !gather_bytes;
      scatter_messages = !scatter_msgs;
      gather_messages = !gather_msgs;
      max_message_bytes = !max_msg;
    } )

(* ------------------------------------------------------------------ *)
(* Running a view: process mode.                                       *)

let run_proc s { fabric; sup } v ~arg ~merge ~init =
  let scatter_bytes = ref 0 and scatter_msgs = ref 0 in
  let gather_bytes = ref 0 and gather_msgs = ref 0 in
  let max_msg = ref 0 in
  let retries = ref 0 and redeliveries = ref 0 and corrupt_drops = ref 0 in
  let crashed = ref 0 in
  let recovery_started = ref None in
  let results = Array.make s.nodes None in
  let expected_seq = Array.make s.nodes 0 in
  let attempts = Array.make s.nodes 0 in
  let pending = Array.make s.nodes false in
  let outstanding = ref s.nodes in
  let send_frame n ~kind bytes =
    max_msg := max !max_msg (Bytes.length bytes);
    try Transport.Socket.send (Transport.Proc.node fabric n).chan ~kind bytes
    with Transport.Closed ->
      (* Died under our feet; the EOF surfaces via recv_any. *)
      ()
  in
  let issue n =
    if attempts.(n) >= max_attempts then
      raise (Cluster.Recovery_exhausted { worker = n; attempts = attempts.(n) });
    attempts.(n) <- attempts.(n) + 1;
    if attempts.(n) > 1 then begin
      incr retries;
      Stats.record_retry ()
    end;
    let plan = plan_for_node v n in
    let put _ bytes = send_frame n ~kind:Transport.Seg_put bytes in
    let reuse _ bytes = send_frame n ~kind:Transport.Seg_reuse bytes in
    scatter_bytes := !scatter_bytes + ensure_residency s n plan ~put ~reuse;
    scatter_msgs := !scatter_msgs + List.length plan;
    s.seq <- s.seq + 1;
    expected_seq.(n) <- s.seq;
    let task = Codec.to_bytes task_codec (s.seq, List.map key_of plan, arg n) in
    scatter_bytes := !scatter_bytes + Bytes.length task;
    incr scatter_msgs;
    Stats.record_message ~bytes:(Bytes.length task);
    Obs.span ~name:"darray.send" ~attrs:[ ("node", string_of_int n) ]
      (fun () -> send_frame n ~kind:Transport.Data task);
    pending.(n) <- false
  in
  for n = 0 to s.nodes - 1 do
    issue n
  done;
  while !outstanding > 0 do
    let now = Clock.monotonic_ns () in
    Supervisor.tick sup ~now;
    (* A node whose child died re-issues as soon as the supervisor has
       respawned it; its beliefs were cleared, so the issue replays the
       owning segments from the retained encoded bytes first. *)
    for n = 0 to s.nodes - 1 do
      if pending.(n) && Transport.Proc.is_alive fabric n then issue n
    done;
    let timeout = Float.min 0.05 (Supervisor.next_event_in sup ~now) in
    match Transport.Proc.recv_any fabric ~timeout with
    | `Timeout -> ()
    | `Wake -> ()
    | `No_nodes -> Unix.sleepf 0.002
    | `Eof node ->
        Stats.record_crash ();
        incr crashed;
        if !recovery_started = None then
          recovery_started := Some (Clock.monotonic_ns ());
        Supervisor.note_eof sup node ~now:(Clock.monotonic_ns ());
        (* Everything believed resident there died with the child. *)
        Hashtbl.reset s.believed.(node);
        if results.(node) = None then pending.(node) <- true
    | `Msg (node, Transport.Pong, _) ->
        ignore (Supervisor.note_pong sup node ~now:(Clock.monotonic_ns ()))
    | `Msg
        ( node,
          ( ( Transport.Ping | Transport.Seg_put | Transport.Seg_reuse
            | Transport.Seg_free ) as k ),
          _ ) ->
        Supervisor.note_frame sup node k
    | `Msg (node, Transport.Nack, bytes) ->
        Supervisor.note_frame sup node Transport.Nack;
        (match Codec.of_bytes nack_codec bytes with
        | exception _ -> incr corrupt_drops
        | did, seg, ver ->
            Log.debug (fun m ->
                m "node %d refused (did %d, seg %d, version %d)" node did seg
                  ver));
        (* Whatever the child refused, our beliefs about it were wrong:
           drop them all and replay. *)
        Hashtbl.reset s.believed.(node);
        if results.(node) = None then issue node
    | `Msg (node, Transport.Err, bytes) -> (
        Supervisor.note_frame sup node Transport.Err;
        match Codec.of_bytes err_codec bytes with
        | exception _ ->
            incr corrupt_drops;
            Stats.record_corrupt_drop ()
        | _seq, msg ->
            failwith (Printf.sprintf "Darray: node %d raised: %s" node msg))
    | `Msg (node, Transport.Data, bytes) -> (
        Supervisor.note_frame sup node Transport.Data;
        max_msg := max !max_msg (Bytes.length bytes);
        gather_bytes := !gather_bytes + Bytes.length bytes;
        incr gather_msgs;
        Stats.record_message ~bytes:(Bytes.length bytes);
        match Codec.of_bytes reply_codec bytes with
        | exception _ ->
            incr corrupt_drops;
            Stats.record_corrupt_drop ()
        | seq, r ->
            if seq <> expected_seq.(node) || results.(node) <> None then begin
              incr redeliveries;
              Stats.record_redelivery ()
            end
            else begin
              results.(node) <- Some r;
              decr outstanding
            end)
  done;
  let recovery_ns =
    match !recovery_started with
    | None -> 0
    | Some t0 -> Clock.monotonic_ns () - t0
  in
  if recovery_ns > 0 then Stats.record_recovery_ns recovery_ns;
  let acc = ref init in
  for n = 0 to s.nodes - 1 do
    match results.(n) with
    | Some r -> acc := merge !acc r
    | None -> assert false
  done;
  ( !acc,
    {
      Cluster.scatter_bytes = !scatter_bytes;
      gather_bytes = !gather_bytes;
      scatter_messages = !scatter_msgs;
      gather_messages = !gather_msgs;
      max_message_bytes = !max_msg;
      retries = !retries;
      redeliveries = !redeliveries;
      corrupt_drops = !corrupt_drops;
      crashed_nodes = !crashed;
      faults_injected = 0;
      recovery_ns;
    } )

let run v ~arg ~merge ~init =
  match v.arrays with
  | [] -> invalid_arg "Darray.run: empty view"
  | first :: _ -> (
      let s = first.session in
      if s.closed then invalid_arg "Darray.run: session closed";
      Obs.span ~name:"darray.run" (fun () ->
          match s.mode with
          | Local tables -> run_local s tables v ~arg ~merge ~init
          | Proc st -> run_proc s st v ~arg ~merge ~init))

let run1 d = run (view d)

(* ------------------------------------------------------------------ *)
(* Release.                                                            *)

let free d =
  if not d.freed then begin
    d.freed <- true;
    let s = d.session in
    if not s.closed then begin
      let bytes = Codec.to_bytes free_codec d.did in
      for n = 0 to s.nodes - 1 do
        (match s.mode with
        | Local tables ->
            Hashtbl.filter_map_inplace
              (fun (did, _) v -> if did = d.did then None else Some v)
              tables.(n)
        | Proc { fabric; _ } -> (
            if Transport.Proc.is_alive fabric n then
              try
                Transport.Socket.send
                  (Transport.Proc.node fabric n).chan
                  ~kind:Transport.Seg_free bytes
              with Transport.Closed -> ()));
        Hashtbl.filter_map_inplace
          (fun (did, _) v -> if did = d.did then None else Some v)
          s.believed.(n)
      done
    end
  end
