(** The runtime's wire protocol, reified as data.

    One source of truth for the frame kinds, the length-prefixed
    framing, and the supervisor/child state machine.  {!Transport}
    encodes and decodes through it; {!Supervisor}, {!Service} and the
    cluster child loops replay their real events through {!tracker}s;
    [Protocol_models.Heartbeat_model] generates its transition relation
    from {!action_for}; and [triolet analyze --protocol] gates on
    {!check} returning no holes. *)

(** {1 Frame kinds and framing} *)

type kind = Data | Err | Nack | Ping | Pong | Seg_put | Seg_reuse | Seg_free
(** [Seg_put] installs a distributed-array segment's bytes in a child's
    resident table; [Seg_reuse] names an already-resident
    [(darray, segment, version)] key so an unchanged segment ships no
    bytes; [Seg_free] evicts a darray's segments.  All three are
    parent-sent only. *)

exception Bad_frame of string
(** Typed rejection for anything that cannot be a frame: unknown kind
    byte, negative or absurd payload length.  Replaces the old
    [Invalid_argument] from the transport's kind parser. *)

val all_kinds : kind list
val kind_name : kind -> string

val kind_to_byte : kind -> char

val kind_of_byte : char -> kind
(** Raises {!Bad_frame} on an unknown byte. *)

val header_len : int
(** Bytes of frame header: 4-byte big-endian payload length + 1 kind
    byte. *)

val max_frame_payload : int
(** Upper bound on a sane payload length; longer claims are treated as
    stream corruption ({!Bad_frame}), not allocation requests. *)

val encode_frame : ?kind:kind -> Bytes.t -> Bytes.t
(** [encode_frame ?kind payload] is the full wire frame
    (header + payload).  [kind] defaults to [Data]. *)

val decode_header : Bytes.t -> int -> int * kind
(** [decode_header buf off] decodes the header at [off], returning
    [(payload_len, kind)].  Raises {!Bad_frame} on a malformed header
    and [Invalid_argument] if [buf] does not hold {!header_len} bytes
    at [off]. *)

(** Pure incremental frame decoder: feed byte chunks cut at arbitrary
    boundaries, pop whole frames.  Exists so the framing contract can
    be fuzzed without sockets. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> unit

  val pop : t -> (kind * Bytes.t) option
  (** Next complete frame, or [None] if more bytes are needed.  Raises
      {!Bad_frame} as soon as a buffered header is malformed. *)

  val buffered : t -> int
  (** Bytes fed but not yet popped as part of a whole frame. *)

  val consumed : t -> int
  (** Total bytes returned as whole frames so far. *)
end

(** {1 The state machine, as data} *)

type role = Parent | Child

val role_name : role -> string
val peer : role -> role

type event =
  | Recv of kind  (** a frame of this kind arrived *)
  | Eof  (** channel end-of-file: the peer process is gone *)
  | Miss_limit  (** heartbeat misses reached the threshold *)
  | Backoff_elapsed  (** the respawn backoff timer fired *)

val event_name : event -> string

(** [Goto s] moves to state [s]; [Stay] consumes the event in place;
    [Drop] discards it as harmless noise.  No rule at all is a
    conformance violation. *)
type action = Goto of string | Stay | Drop

type rule = { role : role; state : string; event : event; action : action }

type spec = {
  name : string;
  parent_states : string list;
  child_states : string list;
  parent_initial : string;
  child_initial : string;
  rules : rule list;
  sends : (role * string * kind list) list;
}

val spec : spec
(** The fabric's actual protocol: parent states ["live"]/["backoff"],
    child states ["serving"]/["stopped"], heartbeat + respawn
    lifecycle. *)

val states : spec -> role -> string list
val initial : spec -> role -> string
val action_for : spec -> role:role -> state:string -> event -> action option

val sendable : spec -> role -> kind -> bool
(** May [role] ever put a frame of this kind on the wire? *)

(** {1 Spec audit} *)

type issue = {
  issue_role : role;
  issue_state : string;
  issue_kind : kind option;  (** the unhandled kind, when that's the hole *)
  issue_msg : string;
}

val issue_to_string : issue -> string

val check : spec -> issue list
(** Audit the spec: initial states declared, rules and [Goto] targets
    on declared states, no duplicate (role, state, event) rules, and —
    the drift check — every kind any role can send has a [Recv] rule
    in {e every} state of the peer.  [[]] means the spec is closed. *)

(** {1 Runtime conformance} *)

exception Violation of string

val violations : unit -> int
(** Process-wide count of events stepped with no matching rule. *)

val reset_violations : unit -> unit

val set_debug : bool -> unit
(** In debug mode a missing rule raises {!Violation} instead of only
    counting.  Initialized from [TRIOLET_PROTOCOL_DEBUG=1]. *)

val debug : unit -> bool

type tracker
(** One endpoint's live position in the state machine. *)

val make_tracker : ?spec:spec -> role -> id:string -> tracker
val tracker_state : tracker -> string

val step : tracker -> event -> unit
(** Replay one real event.  Counts (and, under {!debug}, raises) on a
    missing rule; otherwise follows the spec. *)
