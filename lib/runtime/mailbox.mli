(** Node mailboxes: FIFO queues of serialized messages.

    All inter-node traffic flows through mailboxes as opaque byte
    buffers; every send is counted in {!Stats}.  For the fault-tolerant
    runtime a mailbox can be closed (poison waking blocked receivers)
    and messages can be parked as *delayed*, becoming visible only after
    a receiver's timeout expires — the deterministic model of a
    straggling link. *)

type t

exception Closed
(** Raised by {!send}/{!send_delayed} on a closed mailbox, and by
    {!recv} once a closed mailbox has drained. *)

val create : unit -> t

val send : t -> Bytes.t -> unit

val send_delayed : t -> Bytes.t -> unit
(** Parks the message in flight: invisible to receivers until a
    {!recv_timeout} expires, which promotes all delayed messages to the
    live queue (they "arrive late", after the receiver gave up). *)

val close : t -> unit
(** Poisons the mailbox: blocked receivers wake, pending messages can
    still be drained, further sends raise {!Closed}.  Idempotent. *)

val recv : t -> Bytes.t
(** Blocking receive; raises {!Closed} once the mailbox is closed and
    empty. *)

val recv_timeout : t -> float -> [ `Msg of Bytes.t | `Timeout | `Closed ]
(** [recv_timeout t seconds] waits up to [seconds] for a message.
    [`Timeout] also promotes any delayed messages, so the next receive
    observes them; [`Closed] once the mailbox is closed and empty. *)

val try_recv : t -> Bytes.t option

val pending : t -> int

val delayed_pending : t -> int
(** Messages parked by {!send_delayed} not yet promoted. *)

val totals : t -> int * int
(** (messages, bytes) ever sent to this mailbox (delayed included). *)
