(** Two-level distributed runtime (paper, section 3.4).

    Nodes are in-process entities whose only data channel is a mailbox
    of serialized bytes: payloads are encoded, shipped, and decoded into
    structurally fresh buffers, so a task can never touch the sender's
    memory.  Task *code* travels as an OCaml closure (serializing code
    is what the Triolet compiler adds); task *data* always travels as
    bytes, and every byte is counted.

    Unlike the paper's MPI runtime, [run] can survive injected node and
    link failures: see {!Fault} and the [?faults] argument below. *)

type config = {
  nodes : int;
  cores_per_node : int;
  flat : bool;
      (** [true] models Eden's flat process view: one single-threaded
          process per core and no shared memory within a node *)
}

val default_config : config

type report = {
  scatter_bytes : int;
  gather_bytes : int;
  scatter_messages : int;
  gather_messages : int;
  max_message_bytes : int;
  retries : int;  (** task re-issues after a receive timeout *)
  redeliveries : int;  (** duplicate/late replies discarded by dedup *)
  corrupt_drops : int;  (** messages rejected by checksum/decode *)
  crashed_nodes : int;  (** injected node crashes survived *)
  faults_injected : int;  (** total faults the injector fired *)
  recovery_ns : int;  (** wall time spent in timeout/retry recovery *)
}
(** Fault-free runs leave the last six fields zero, and the first five
    are computed exactly as before. *)

val pp_report : Format.formatter -> report -> unit
(** Prints the byte/message accounting; fault statistics are appended
    only when any are nonzero, so fault-free output is unchanged. *)

exception Recovery_exhausted of { worker : int; attempts : int }
(** A worker's result could never be obtained within the fault plan's
    attempt budget (or no surviving node remains). *)

val run :
  ?pool:Pool.t ->
  ?faults:Fault.spec ->
  config ->
  scatter:(int -> Triolet_base.Payload.t) ->
  work:(node:int -> pool:Pool.t -> Triolet_base.Payload.t -> 'r) ->
  result_codec:'r Triolet_base.Codec.t ->
  merge:('a -> 'r -> 'a) ->
  init:'a ->
  'a * report
(** [run cfg ~scatter ~work ~result_codec ~merge ~init]:

    - [scatter w] builds worker [w]'s input payload; it is serialized
      and delivered through the worker's mailbox;
    - [work ~node ~pool payload] runs against the decoded payload,
      using [pool] for intra-node parallelism (a 1-wide pool in flat
      mode);
    - each worker's result is serialized with [result_codec], shipped
      back and decoded; replies are stored per worker id and folded
      with [merge] strictly in worker order (worker 0 first), never in
      arrival order, so [merge] need not be commutative.

    In flat mode there are [nodes * cores_per_node] single-threaded
    workers; otherwise one worker per node.

    With [?faults] (a deterministic, seeded fault plan) every message
    travels in a CRC-checksummed envelope tagged with the worker id and
    an attempt sequence number; lost, corrupt or late replies are
    recovered by capped-exponential-backoff retry, re-executing a
    crashed node's slice on a surviving node, and merging at most once
    per worker.  [work] must then be re-executable (pure in its
    payload); its [~node] argument is always the logical worker id
    whose slice it computes, even when recovery runs that slice on a
    different surviving node.  Raises {!Recovery_exhausted} if a worker stays
    unresolved after [max_attempts] tries, and re-raises the [work]
    exception if that is what kept failing.  Without [?faults],
    results, wire bytes and the report are identical to the fault-free
    runtime. *)
