(** Two-level distributed runtime (paper, section 3.4).

    Nodes exchange *only* serialized bytes: payloads are encoded,
    shipped over a transport, and decoded into structurally fresh
    buffers, so a task can never touch the sender's memory.  Task *code*
    travels as an OCaml closure (serializing code is what the Triolet
    compiler adds); task *data* always travels as bytes, and every byte
    is counted.

    Which transport carries the bytes is the {!backend} of the
    {!topology}: in-process mailbox channels (the simulation the paper's
    MPI ranks reduce to in one address space), Eden-style flat workers
    over the same channels, or genuinely separate OS processes over
    socketpairs ({!Process}), where the no-shared-memory guarantee is
    enforced by the kernel rather than asserted by convention.

    Unlike the paper's MPI runtime, a run can survive injected node and
    link failures: see {!Fault} and the [?faults] argument below.  Under
    the process backend a child killed from outside is recovered through
    the same retry path as an injected crash. *)

(** Where and how nodes execute and exchange bytes. *)
type backend =
  | Inprocess  (** in-process nodes over mailbox channels *)
  | Flat
      (** Eden's flat process view over mailbox channels: one
          single-threaded worker per core, no shared memory within a
          node *)
  | Process
      (** one forked OS process per node over socketpair framed
          channels; each child runs its slice on a private
          [cores_per_node]-wide pool.  The fork happens inside the run,
          so it must be called before any domain has ever been spawned
          in this process (an OCaml runtime restriction); keep the
          parent single-domain, e.g. via [TRIOLET_BACKEND=process]. *)

val backend_to_string : backend -> string

val backend_of_string : string -> backend option
(** ["inprocess"], ["flat"], ["process"]. *)

type topology = { nodes : int; cores_per_node : int; backend : backend }
(** The cluster geometry plus the transport that realizes it. *)

val default_topology : topology
(** 4 nodes, 2 cores each, in-process. *)

val topology_workers : topology -> int
(** Logical workers a run fans out to: [nodes * cores_per_node] under
    {!Flat}, [nodes] otherwise. *)

type config = {
  nodes : int;
  cores_per_node : int;
  flat : bool;
      (** [true] models Eden's flat process view: one single-threaded
          process per core and no shared memory within a node *)
}
(** Legacy shape, kept for existing callers; the [flat] boolean is
    subsumed by {!backend}. *)

val default_config : config

val topology_of_config : config -> topology
(** [flat = true] maps to {!Flat}, otherwise {!Inprocess} — never
    {!Process}, so legacy entry points stay deterministic regardless of
    environment. *)

val config_of_topology : topology -> config
(** Forgets the transport: [flat] is [backend = Flat]. *)

type report = {
  scatter_bytes : int;
  gather_bytes : int;
  scatter_messages : int;
  gather_messages : int;
  max_message_bytes : int;
  retries : int;  (** task re-issues after a receive timeout *)
  redeliveries : int;  (** duplicate/late replies discarded by dedup *)
  corrupt_drops : int;  (** messages rejected by checksum/decode *)
  crashed_nodes : int;  (** injected node crashes survived *)
  faults_injected : int;  (** total faults the injector fired *)
  recovery_ns : int;  (** wall time spent in timeout/retry recovery *)
}
(** Fault-free runs leave the last six fields zero, and the first five
    are computed exactly as before. *)

val pp_report : Format.formatter -> report -> unit
(** Prints the byte/message accounting; fault statistics are appended
    only when any are nonzero, so fault-free output is unchanged. *)

exception Recovery_exhausted of { worker : int; attempts : int }
(** A worker's result could never be obtained within the fault plan's
    attempt budget (or no surviving node remains). *)

val run_topology :
  ?pool:Pool.t ->
  ?faults:Fault.spec ->
  ?poll_interval:float ->
  topology ->
  scatter:(int -> Triolet_base.Payload.t) ->
  work:(node:int -> pool:Pool.t -> Triolet_base.Payload.t -> 'r) ->
  result_codec:'r Triolet_base.Codec.t ->
  merge:('a -> 'r -> 'a) ->
  init:'a ->
  'a * report
(** Like {!run}, but the transport comes from the topology instead of
    being hard-coded.  Semantics per backend:

    - {!Inprocess} / {!Flat}: exactly the historical behaviour —
      in-process nodes over mailboxes, [?pool] (default {!Pool.default})
      providing intra-node parallelism.
    - {!Process}: forks one OS process per node before doing anything
      else, ships each [scatter w] as bytes over a socketpair, and
      gathers replies per-child in worker order.  The task closure
      crosses the [fork] by address-space inheritance; data crosses only
      the socket.  [?pool] is ignored — each child lazily builds its own
      [cores_per_node]-wide pool.  Fails fast (with an explanatory
      [Failure]) if a domain was ever spawned in this process, since
      OCaml then forbids [fork].  On the fault path the envelope /
      retry / recovery protocol is the mailbox one, with link faults
      injected parent-side from the same seeded stream and crashes
      realized as real child exits; a child killed externally (EOF on
      its channel) is recovered exactly like an injected crash.  On the
      clean path, byte and message accounting (payload bytes; frame
      headers excluded) matches the in-process backend exactly.

    [?poll_interval] (default [0.01] s, must be positive) is the
    process backend's late-traffic drain poll; it is clamped to the
    fault spec's [base_timeout] so the drain can never outwait a retry
    round.  Sourced from {!Exec.t}[.poll_interval] by the skeleton
    layer. *)

val on_node : unit -> int option
(** Inside a process-backend child: the id of the node this process
    is.  [None] in the parent and under in-process backends (where
    task code can instead trust [work]'s [~node] argument). *)

val note_current_node : int -> unit
(** Record this process's node id for {!on_node} — called by child
    serve loops ({!Service} forks its own, outside this module). *)

val run :
  ?pool:Pool.t ->
  ?faults:Fault.spec ->
  config ->
  scatter:(int -> Triolet_base.Payload.t) ->
  work:(node:int -> pool:Pool.t -> Triolet_base.Payload.t -> 'r) ->
  result_codec:'r Triolet_base.Codec.t ->
  merge:('a -> 'r -> 'a) ->
  init:'a ->
  'a * report
(** [run cfg ~scatter ~work ~result_codec ~merge ~init]:

    - [scatter w] builds worker [w]'s input payload; it is serialized
      and delivered through the worker's mailbox;
    - [work ~node ~pool payload] runs against the decoded payload,
      using [pool] for intra-node parallelism (a 1-wide pool in flat
      mode);
    - each worker's result is serialized with [result_codec], shipped
      back and decoded; replies are stored per worker id and folded
      with [merge] strictly in worker order (worker 0 first), never in
      arrival order, so [merge] need not be commutative.

    In flat mode there are [nodes * cores_per_node] single-threaded
    workers; otherwise one worker per node.

    With [?faults] (a deterministic, seeded fault plan) every message
    travels in a CRC-checksummed envelope tagged with the worker id and
    an attempt sequence number; lost, corrupt or late replies are
    recovered by capped-exponential-backoff retry, re-executing a
    crashed node's slice on a surviving node, and merging at most once
    per worker.  [work] must then be re-executable (pure in its
    payload); its [~node] argument is always the logical worker id
    whose slice it computes, even when recovery runs that slice on a
    different surviving node.  Raises {!Recovery_exhausted} if a worker stays
    unresolved after [max_attempts] tries, and re-raises the [work]
    exception if that is what kept failing.  Without [?faults],
    results, wire bytes and the report are identical to the fault-free
    runtime. *)
