(** Clocks for scheduler accounting. *)

external thread_cputime_ns : unit -> int = "triolet_thread_cputime_ns"
  [@@noalloc]
(** CPU time consumed by the calling thread, in nanoseconds.  Unlike a
    wall clock this does not advance while the thread is descheduled,
    so per-worker busy times computed from it reflect work actually
    done even when the pool's domains timeshare fewer physical cores —
    the situation on this repo's 1-core reference host (DESIGN.md,
    Substitutions). *)
