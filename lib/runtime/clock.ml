(** Clocks for scheduler accounting and timeout arithmetic. *)

external thread_cputime_ns : unit -> int = "triolet_thread_cputime_ns"
  [@@noalloc]
(** CPU time consumed by the calling thread, in nanoseconds.  Unlike a
    wall clock this does not advance while the thread is descheduled,
    so per-worker busy times computed from it reflect work actually
    done even when the pool's domains timeshare fewer physical cores —
    the situation on this repo's 1-core reference host (DESIGN.md,
    Substitutions). *)

external monotonic_ns : unit -> int = "triolet_monotonic_ns" [@@noalloc]
(** [CLOCK_MONOTONIC] in nanoseconds.  The only clock allowed in
    timeout-deadline arithmetic and duration measurement: the wall
    clock ([gettimeofday]) can step under NTP adjustment, which would
    spuriously expire (or indefinitely extend) deadlines and report
    negative durations.  The [triolet analyze] lint gate rejects
    wall-clock calls in timing paths for exactly this reason. *)

(** [duration f] runs [f] and returns its result with the monotonic
    wall-clock seconds it took (always non-negative). *)
let duration f =
  let t0 = monotonic_ns () in
  let r = f () in
  (r, float_of_int (monotonic_ns () - t0) /. 1e9)
