(** The runtime's wire protocol, reified as data.

    Everything the fabric puts on a socket — frame kinds, the
    length-prefixed framing, and the supervisor/child heartbeat and
    request lifecycle — used to live implicitly in {!Transport},
    {!Service} and {!Supervisor} as pattern matches that could silently
    drift apart.  This module is the single source all of them (and the
    analyzer, and the model checker) consume:

    - {b frame kinds and framing}: {!kind}, the byte tags, and the
      5-byte header codec {!Transport.Socket} writes and reads.  A
      malformed header is the typed {!Bad_frame}, never a crash or a
      mis-split — the incremental {!Decoder} exists so the property can
      be fuzzed without a socket.
    - {b the state machine} ({!spec}): per-role states and the rule
      table saying, for every state and every event (frame arrival,
      EOF, heartbeat-miss verdict, respawn-backoff expiry), what the
      protocol does.  {!check} audits a spec for completeness — every
      frame kind a role can send must have a handler in {b every} state
      of the peer — which is what [triolet analyze --protocol] gates.
    - {b conformance} ({!tracker}): the runtime replays its real events
      through the spec.  A step the spec has no rule for increments
      {!violations} (and raises {!Violation} when {!set_debug}[ true],
      as the test suite runs), so the shipped code cannot quietly
      diverge from the checked machine.
    - {b model generation}: {!action_for} is the lookup
      {!Protocol_models.Heartbeat_model} builds its transition relation
      from, so the exhaustively checked model and the running code read
      the same table. *)

(* ------------------------------------------------------------------ *)
(* Frame kinds.                                                        *)

(** [Data] carries protocol payload; [Err] a remote failure report;
    [Nack] a rejected frame (e.g. a corrupt envelope); [Ping]/[Pong]
    are the supervision heartbeat.  [Seg_put] installs a distributed
    array segment's bytes in a child's resident table; [Seg_reuse]
    names an already-resident [(darray, segment, version)] so an
    unchanged segment ships only its key; [Seg_free] evicts a
    darray's segments when the array is released. *)
type kind = Data | Err | Nack | Ping | Pong | Seg_put | Seg_reuse | Seg_free

(* New kinds append at the end: generators index this list. *)
let all_kinds = [ Data; Err; Nack; Ping; Pong; Seg_put; Seg_reuse; Seg_free ]

let kind_name = function
  | Data -> "Data"
  | Err -> "Err"
  | Nack -> "Nack"
  | Ping -> "Ping"
  | Pong -> "Pong"
  | Seg_put -> "Seg_put"
  | Seg_reuse -> "Seg_reuse"
  | Seg_free -> "Seg_free"

exception Bad_frame of string
(** A frame that cannot be on the wire: unknown kind byte or a
    negative payload length.  The typed rejection every decoder in the
    runtime raises — callers absorb it like a corrupt envelope, they
    never see [Invalid_argument]. *)

let () =
  Printexc.register_printer (function
    | Bad_frame msg -> Some (Printf.sprintf "Protocol.Bad_frame(%s)" msg)
    | _ -> None)

let kind_to_byte = function
  | Data -> '\000'
  | Err -> '\001'
  | Nack -> '\002'
  | Ping -> '\003'
  | Pong -> '\004'
  | Seg_put -> '\005'
  | Seg_reuse -> '\006'
  | Seg_free -> '\007'

let kind_of_byte = function
  | '\000' -> Data
  | '\001' -> Err
  | '\002' -> Nack
  | '\003' -> Ping
  | '\004' -> Pong
  | '\005' -> Seg_put
  | '\006' -> Seg_reuse
  | '\007' -> Seg_free
  | c -> raise (Bad_frame (Printf.sprintf "unknown kind byte %d" (Char.code c)))

(* ------------------------------------------------------------------ *)
(* Framing: 4-byte big-endian payload length, 1 kind byte, payload.    *)

let header_len = 5
let max_frame_payload = 1 lsl 30

let encode_frame ?(kind = Data) payload =
  let len = Bytes.length payload in
  let frame = Bytes.create (header_len + len) in
  Bytes.set_int32_be frame 0 (Int32.of_int len);
  Bytes.set frame 4 (kind_to_byte kind);
  Bytes.blit payload 0 frame header_len len;
  frame

(** [decode_header buf off] reads one header at [off]; the payload
    occupies the next [len] bytes.  Raises {!Bad_frame} on an unknown
    kind byte or a length outside [0, max_frame_payload] — a negative
    32-bit field or an absurd length means the stream is not framed
    data, and treating it as a count would over-read. *)
let decode_header buf off =
  if off < 0 || off + header_len > Bytes.length buf then
    invalid_arg "Protocol.decode_header: out of bounds";
  let len = Int32.to_int (Bytes.get_int32_be buf off) in
  if len < 0 || len > max_frame_payload then
    raise (Bad_frame (Printf.sprintf "bad payload length %d" len));
  let kind = kind_of_byte (Bytes.get buf (off + 4)) in
  (len, kind)

(** Incremental frame decoder over an arbitrary byte stream: feed
    chunks cut at any boundary, pop whole frames.  Pure — no fd, no
    blocking — so the framing contract (decode exactly the frames that
    were encoded, or raise {!Bad_frame}; never crash, over-read, or
    mis-split) is directly fuzzable. *)
module Decoder = struct
  type t = {
    mutable buf : Bytes.t;  (* pending undecoded bytes *)
    mutable len : int;  (* live prefix of [buf] *)
    mutable consumed : int;  (* bytes already popped as whole frames *)
  }

  let create () = { buf = Bytes.create 64; len = 0; consumed = 0 }
  let buffered t = t.len
  let consumed t = t.consumed

  let feed t chunk =
    let n = Bytes.length chunk in
    if t.len + n > Bytes.length t.buf then begin
      let cap = max (t.len + n) (2 * Bytes.length t.buf) in
      let b = Bytes.create cap in
      Bytes.blit t.buf 0 b 0 t.len;
      t.buf <- b
    end;
    Bytes.blit chunk 0 t.buf t.len n;
    t.len <- t.len + n

  (** Next whole frame, if the buffer holds one.  Raises {!Bad_frame}
      as soon as a complete header is malformed — before waiting for
      any payload bytes that "length" would imply. *)
  let pop t =
    if t.len < header_len then None
    else
      let len, kind = decode_header t.buf 0 in
      let total = header_len + len in
      if t.len < total then None
      else begin
        let payload = Bytes.sub t.buf header_len len in
        Bytes.blit t.buf total t.buf 0 (t.len - total);
        t.len <- t.len - total;
        t.consumed <- t.consumed + total;
        Some (kind, payload)
      end
end

(* ------------------------------------------------------------------ *)
(* The supervision/request state machine, as data.                     *)

(** [Parent] is the supervisor's view of one child connection; [Child]
    is a forked worker's view of its channel to the parent. *)
type role = Parent | Child

let role_name = function Parent -> "parent" | Child -> "child"
let peer = function Parent -> Child | Child -> Parent

type event =
  | Recv of kind  (** a frame of this kind arrived *)
  | Eof  (** the channel reached end-of-file (peer process gone) *)
  | Miss_limit  (** heartbeat misses hit the threshold: death verdict *)
  | Backoff_elapsed  (** the respawn backoff timer fired *)

let event_name = function
  | Recv k -> "recv " ^ kind_name k
  | Eof -> "eof"
  | Miss_limit -> "miss-limit"
  | Backoff_elapsed -> "backoff-elapsed"

(** What a rule does: move to another state, stay (the frame was
    consumed by the protocol), or drop the input as harmless noise
    (stale traffic from a dead incarnation, a kind this role only
    sends).  An event with {e no} rule is a conformance violation. *)
type action = Goto of string | Stay | Drop

type rule = { role : role; state : string; event : event; action : action }

type spec = {
  name : string;
  parent_states : string list;
  child_states : string list;
  parent_initial : string;
  child_initial : string;
  rules : rule list;
  sends : (role * string * kind list) list;
      (** which kinds a role may put on the wire in which state *)
}

let states spec = function
  | Parent -> spec.parent_states
  | Child -> spec.child_states

let initial spec = function
  | Parent -> spec.parent_initial
  | Child -> spec.child_initial

let action_for spec ~role ~state event =
  List.find_map
    (fun r ->
      if r.role = role && r.state = state && r.event = event then
        Some r.action
      else None)
    spec.rules

(** The fabric's actual protocol.

    Parent-side states (per child): ["live"] — the child's socket is
    open and pings are being answered; ["backoff"] — the child is dead
    (EOF seen) and a respawn is scheduled.  [Miss_limit] in ["live"]
    does not change state by itself: the verdict is realized as a
    SIGKILL whose EOF comes back through the one death path.

    Child-side states: ["serving"] — echo pings, compute data frames;
    ["stopped"] — channel closed, nothing further.  A child drops
    [Err]/[Nack]/[Pong] (kinds only it sends); a parent drops [Ping]
    and the parent-only [Seg_*] kinds likewise, and drops everything in
    ["backoff"] (stale frames of a dead incarnation).

    The segment kinds ride the same channel as everything else: a
    serving child consumes [Seg_put] (install bytes), [Seg_reuse]
    (assert residency of a version) and [Seg_free] (evict) in place;
    it answers with plain [Data]/[Nack] frames, so no new child-side
    send kinds appear. *)
let spec =
  let parent_rules =
    List.map
      (fun k -> { role = Parent; state = "live"; event = Recv k; action = Stay })
      [ Data; Err; Nack; Pong ]
    @ List.map
        (fun k ->
          { role = Parent; state = "live"; event = Recv k; action = Drop })
        [ Ping; Seg_put; Seg_reuse; Seg_free ]
    @ [
        { role = Parent; state = "live"; event = Eof; action = Goto "backoff" };
        { role = Parent; state = "live"; event = Miss_limit; action = Stay };
        { role = Parent; state = "backoff"; event = Eof; action = Drop };
        {
          role = Parent;
          state = "backoff";
          event = Backoff_elapsed;
          action = Goto "live";
        };
      ]
    @ List.map
        (fun k ->
          { role = Parent; state = "backoff"; event = Recv k; action = Drop })
        all_kinds
  in
  let child_rules =
    List.map
      (fun k ->
        { role = Child; state = "serving"; event = Recv k; action = Stay })
      [ Ping; Data; Seg_put; Seg_reuse; Seg_free ]
    @ [
        { role = Child; state = "serving"; event = Eof; action = Goto "stopped" };
      ]
    @ List.map
        (fun k ->
          { role = Child; state = "serving"; event = Recv k; action = Drop })
        [ Err; Nack; Pong ]
    @ List.map
        (fun k ->
          { role = Child; state = "stopped"; event = Recv k; action = Drop })
        all_kinds
  in
  {
    name = "fabric";
    parent_states = [ "live"; "backoff" ];
    child_states = [ "serving"; "stopped" ];
    parent_initial = "live";
    child_initial = "serving";
    rules = parent_rules @ child_rules;
    sends =
      [
        (Parent, "live", [ Ping; Data; Seg_put; Seg_reuse; Seg_free ]);
        (Child, "serving", [ Pong; Data; Err; Nack ]);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Spec audit.                                                         *)

type issue = {
  issue_role : role;  (** whose state machine is incomplete *)
  issue_state : string;
  issue_kind : kind option;  (** the unhandled kind, when that's the hole *)
  issue_msg : string;
}

let issue_to_string i =
  Printf.sprintf "protocol %s/%s: %s" (role_name i.issue_role) i.issue_state
    i.issue_msg

(** Audit [spec] as data: every frame kind any state of a role can
    send must have a [Recv] rule in {e every} state of the peer (a
    frame can arrive whenever the socket is open, whatever the
    receiver thinks is going on); every rule must name declared
    states; no (role, state, event) may have two rules.  Returns the
    holes — the empty list is what the [analyze] gate requires. *)
let check spec =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let declared role st = List.mem st (states spec role) in
  (* initial states exist *)
  List.iter
    (fun role ->
      if not (declared role (initial spec role)) then
        add
          {
            issue_role = role;
            issue_state = initial spec role;
            issue_kind = None;
            issue_msg = "initial state not declared";
          })
    [ Parent; Child ];
  (* rules name declared states, gotos land on declared states *)
  List.iter
    (fun r ->
      if not (declared r.role r.state) then
        add
          {
            issue_role = r.role;
            issue_state = r.state;
            issue_kind = None;
            issue_msg =
              Printf.sprintf "rule on undeclared state (event %s)"
                (event_name r.event);
          };
      match r.action with
      | Goto st when not (declared r.role st) ->
          add
            {
              issue_role = r.role;
              issue_state = r.state;
              issue_kind = None;
              issue_msg =
                Printf.sprintf "rule for %s goes to undeclared state %s"
                  (event_name r.event) st;
            }
      | _ -> ())
    spec.rules;
  (* determinism *)
  let rec dup_scan = function
    | [] -> ()
    | r :: rest ->
        if
          List.exists
            (fun r' ->
              r'.role = r.role && r'.state = r.state && r'.event = r.event)
            rest
        then
          add
            {
              issue_role = r.role;
              issue_state = r.state;
              issue_kind = None;
              issue_msg =
                Printf.sprintf "duplicate rule for %s" (event_name r.event);
            };
        dup_scan rest
  in
  dup_scan spec.rules;
  (* completeness: peer handles every sendable kind in every state *)
  List.iter
    (fun (sender, _, kinds) ->
      let receiver = peer sender in
      List.iter
        (fun k ->
          List.iter
            (fun st ->
              match action_for spec ~role:receiver ~state:st (Recv k) with
              | Some _ -> ()
              | None ->
                  add
                    {
                      issue_role = receiver;
                      issue_state = st;
                      issue_kind = Some k;
                      issue_msg =
                        Printf.sprintf
                          "no handler for frame kind %s (sendable by %s)"
                          (kind_name k) (role_name sender);
                    })
            (states spec receiver))
        kinds)
    spec.sends;
  List.rev !issues

(** [sendable spec role k]: may [role] ever put a [k] frame on the
    wire?  The analyzer's drift check compares this against the kinds
    the runtime source actually sends. *)
let sendable spec role k =
  List.exists (fun (r, _, ks) -> r = role && List.mem k ks) spec.sends

(* ------------------------------------------------------------------ *)
(* Runtime conformance.                                                *)

exception Violation of string

let violation_count = Atomic.make 0

(** Events stepped through a tracker that the spec had no rule for,
    process-wide.  Always counted, raised only in debug mode — the
    release runtime absorbs a conformance bug like any other fault. *)
let violations () = Atomic.get violation_count

let reset_violations () = Atomic.set violation_count 0

let debug_flag =
  ref
    (match Sys.getenv_opt "TRIOLET_PROTOCOL_DEBUG" with
    | Some ("1" | "true" | "yes") -> true
    | _ -> false)

let set_debug b = debug_flag := b
let debug () = !debug_flag

(** One endpoint's live position in the state machine.  The runtime
    owns one per real connection end (the supervisor: one [Parent]
    tracker per child slot; a forked worker: one [Child] tracker). *)
type tracker = {
  t_role : role;
  t_id : string;
  t_spec : spec;
  mutable t_state : string;
}

let make_tracker ?(spec = spec) role ~id =
  { t_role = role; t_id = id; t_spec = spec; t_state = initial spec role }

let tracker_state t = t.t_state

(** Replay one real event through the spec.  [Goto]/[Stay]/[Drop] are
    conformance; a missing rule is counted in {!violations} and raised
    as {!Violation} under {!debug}. *)
let step t event =
  match action_for t.t_spec ~role:t.t_role ~state:t.t_state event with
  | Some (Goto st) -> t.t_state <- st
  | Some (Stay | Drop) -> ()
  | None ->
      Atomic.incr violation_count;
      if !debug_flag then
        raise
          (Violation
             (Printf.sprintf "%s[%s] in state %s: no rule for %s"
                (role_name t.t_role) t.t_id t.t_state (event_name event)))
