(** Work-stealing domain pool: Triolet's intra-node parallel substrate.

    A pool owns [n - 1] helper domains plus the calling domain.  This
    mirrors the paper's two-level architecture, where shared-memory
    thread parallelism with work stealing runs inside each cluster node
    (section 3.4).

    Dynamically scheduled loops use *adaptive lazy binary splitting*
    ({!parallel_range}): each worker owns one contiguous range task
    [(lo, hi)] on its Chase–Lev deque and executes a small grain off the
    bottom at a time.  While its deque holds stealable work the worker
    just runs grains; the moment the deque is empty (either freshly
    seeded or because a thief took the pending half) and the remaining
    range is longer than a grain, the worker splits it and pushes the
    larger half back for thieves.  Splitting therefore happens exactly
    as often as demand requires: a uniform loop splits O(workers) times,
    while a loop whose cost concentrates in one region keeps
    sub-splitting that region until every worker is fed.  This is the
    lazy-splitting strategy of indexed-stream runtimes, replacing the
    old static preload of [workers * multiplier] equal chunks that left
    workers idle when per-element cost was skewed.

    {!parallel_chunks} retains the static-preload path for work that
    arrives pre-partitioned (sgemm's 2-D blocks, explicit block maps) —
    and doubles as the baseline the bench harness compares the adaptive
    scheduler against. *)

let log_src = Logs.Src.create "triolet.pool" ~doc:"Work-stealing pool"

module Log = (val Logs.src_log log_src)
module Obs = Triolet_obs.Obs

(* Scheduler span taxonomy: [pool.chunk] wraps each grain-sized chunk
   execution (so a trace shows which worker ran what, when); splits and
   steals are instants ([pool.split]/[pool.steal]) since they have no
   meaningful duration.  All are no-ops when tracing is disabled. *)
let worker_attr id = [ ("worker", string_of_int id) ]

type t = {
  n : int;  (** worker count, including the submitting domain *)
  lock : Mutex.t;
  have_job : Condition.t;
  job_done : Condition.t;
  mutable generation : int;
  mutable job : (int -> unit) option;
  mutable running : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.n

(* Worker busy times are thread CPU time, not wall time, so they stay
   meaningful when domains timeshare fewer physical cores. *)
let now_ns = Clock.thread_cputime_ns

(* Back off after [failures] consecutive fruitless steal sweeps.  Brief
   spinning catches work the instant it appears; past that, sleeping
   releases the processor so the workers that do hold work can run —
   essential when the pool is oversubscribed (more workers than cores),
   where pure spinning burns whole scheduler quanta stealing nothing.
   The cap bounds steal latency: a dozing thief is never more than
   200 µs from noticing freshly split work. *)
let steal_backoff failures =
  if failures < 8 then Domain.cpu_relax ()
  else Unix.sleepf (Float.min 2e-4 (1e-5 *. float_of_int (failures - 7)))

let worker_loop t =
  let gen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.lock;
    while (not t.stop) && t.generation = !gen do
      Condition.wait t.have_job t.lock
    done;
    if t.stop then begin
      Mutex.unlock t.lock;
      continue_ := false
    end
    else begin
      gen := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.lock;
      (* Worker ids are assigned per-job inside [run_job]; the closure
         dispatches on an atomic ticket so ids never collide.  Job
         closures are exception-safe (the schedulers capture user
         exceptions themselves); the guard here keeps a worker domain
         alive no matter what, so the rendezvous below always happens. *)
      (try job (-1) with _ -> ());
      Mutex.lock t.lock;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.job_done;
      Mutex.unlock t.lock
    end
  done

(* OCaml's runtime refuses [Unix.fork] forever once any domain has been
   spawned in the process, so the multi-process cluster backend needs to
   know whether that door is already shut.  Set before spawning so a
   racing fork can never observe domains without the flag. *)
let spawned_domains_ever = Atomic.make false
let domains_ever_spawned () = Atomic.get spawned_domains_ever

let create ?workers () =
  let n =
    match workers with
    | Some w ->
        if w <= 0 then invalid_arg "Pool.create: workers must be positive";
        w
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  if n > 1 then Atomic.set spawned_domains_ever true;
  Stats.ensure_workers n;
  let t =
    {
      n;
      lock = Mutex.create ();
      have_job = Condition.create ();
      job_done = Condition.create ();
      generation = 0;
      job = None;
      running = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.have_job;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Nested parallelism: a parallel consumer called from inside a pool
   worker (e.g. a localpar histogram inside a distributed reduction)
   must not re-enter the job machinery — the other workers are busy
   with the outer job and the rendezvous state is not reentrant.  The
   inner job runs inline on the calling worker instead, which is the
   usual flattening of nested data parallelism. *)
let inside_job : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Runs [job] on every worker (the caller acts as one of them) and
   returns once all have finished.  [job] receives a distinct worker id
   in [0, n). *)
let run_job t job =
  let ticket = Atomic.make 1 in
  let dispatch hint =
    let id = if hint = 0 then 0 else Atomic.fetch_and_add ticket 1 in
    Domain.DLS.set inside_job true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set inside_job false)
      (fun () -> job id)
  in
  if t.n = 1 || Domain.DLS.get inside_job then job 0
  else begin
    Mutex.lock t.lock;
    t.job <- Some dispatch;
    t.running <- t.n - 1;
    t.generation <- t.generation + 1;
    Condition.broadcast t.have_job;
    Mutex.unlock t.lock;
    let main_exn = (try dispatch 0; None with e -> Some e) in
    Mutex.lock t.lock;
    while t.running > 0 do
      Condition.wait t.job_done t.lock
    done;
    t.job <- None;
    Mutex.unlock t.lock;
    match main_exn with Some e -> raise e | None -> ()
  end

(* Merge the per-worker partial results (worker order; [merge] must be
   associative with identity [init], so order is unobservable). *)
let combine_results ~merge ~init results =
  Array.fold_left
    (fun a r ->
      match (a, r) with
      | None, x | x, None -> x
      | Some a, Some b -> Some (merge a b))
    None results
  |> function
  | None -> init
  | Some v -> merge init v

(** Core adaptive primitive: reduce [f off len] grains over [lo, hi)
    with lazy binary splitting (see the module header), folding each
    worker's grain results locally with [merge] and combining the
    per-worker partials at the end — the result-aggregation strategy
    described for dot product in section 2. *)
let parallel_range t ?grain ~lo ~hi ~f ~merge ~init () =
  let total = hi - lo in
  if total <= 0 then init
  else begin
    let grain =
      match grain with
      | Some g -> if g <= 0 then invalid_arg "Pool.parallel_range: grain" else g
      | None -> Partition.grain ~workers:t.n total
    in
    Log.debug (fun m ->
        m "parallel_range: [%d,%d) grain %d on %d workers" lo hi grain t.n);
    Stats.ensure_workers t.n;
    let deques = Array.init t.n (fun _ -> Wsdeque.create ()) in
    (* Seed one contiguous range per worker; everything further is
       demand-driven splitting. *)
    Array.iteri
      (fun i (off, len) -> Wsdeque.push deques.(i) (lo + off, lo + off + len))
      (Partition.blocks ~parts:t.n total);
    let remaining = Atomic.make total in
    let results = Array.make t.n None in
    (* First user exception wins; remaining ranges are drained without
       running user code so every worker's hunt loop terminates. *)
    let failure = Atomic.make None in
    let job id =
      let dq = deques.(id) in
      let acc = ref None in
      (* Busy time counts only chunk execution, not steal hunting, so
         per-worker busy times expose load imbalance: under a perfectly
         balanced schedule they are equal, and their max approximates
         the makespan this job would have on dedicated cores. *)
      let busy = ref 0 in
      let exec off len =
        (match Atomic.get failure with
        | Some _ -> ()
        | None -> (
            Stats.record_chunk ~worker:id ();
            let t0 = now_ns () in
            (try
               let v =
                 Obs.span ~name:"pool.chunk" ~attrs:(worker_attr id)
                   (fun () -> f off len)
               in
               acc :=
                 (match !acc with
                 | None -> Some v
                 | Some a -> Some (merge a v))
             with e -> ignore (Atomic.compare_and_set failure None (Some e)));
            busy := !busy + (now_ns () - t0)));
        ignore (Atomic.fetch_and_add remaining (-len))
      in
      (* Run a range: peel one grain at a time off the bottom; when the
         deque has gone empty and more than a grain remains, split and
         push the larger half for thieves. *)
      let rec work rlo rhi =
        if rlo < rhi then begin
          let len = rhi - rlo in
          if len > grain && Wsdeque.is_empty dq then begin
            let mid = rlo + (len / 2) in
            Wsdeque.push dq (mid, rhi);
            Stats.record_split ~worker:id ();
            Obs.instant ~name:"pool.split" ~attrs:(worker_attr id) ();
            work rlo mid
          end
          else begin
            let step = min grain len in
            exec rlo step;
            work (rlo + step) rhi
          end
        end
      in
      let rec drain () =
        match Wsdeque.pop dq with
        | Some (rlo, rhi) ->
            work rlo rhi;
            drain ()
        | None -> hunt 0
      and hunt failures =
        if Atomic.get remaining > 0 then begin
          let stolen = ref false in
          for k = 1 to t.n - 1 do
            if not !stolen then
              match Wsdeque.steal deques.((id + k) mod t.n) with
              | Wsdeque.Stolen (rlo, rhi) ->
                  Stats.record_steal ~worker:id ();
                  Obs.instant ~name:"pool.steal" ~attrs:(worker_attr id) ();
                  stolen := true;
                  work rlo rhi
              | Wsdeque.Empty | Wsdeque.Retry -> ()
          done;
          if !stolen then drain ()
          else begin
            Stats.record_failed_steal ~worker:id ();
            steal_backoff failures;
            hunt (failures + 1)
          end
        end
      in
      drain ();
      Stats.record_busy ~worker:id !busy;
      results.(id) <- !acc
    in
    run_job t job;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    combine_results ~merge ~init results
  end

(** Static-preload primitive: execute every (off, len) chunk exactly
    once across the pool.  Chunks are never subdivided, so use this for
    work that is already partitioned along meaningful boundaries (2-D
    blocks, per-node slabs); dynamically splittable loops should use
    {!parallel_range}. *)
let parallel_chunks t ~chunks ~f ~merge ~init =
  let nchunks = Array.length chunks in
  Log.debug (fun m -> m "parallel_chunks: %d chunks on %d workers" nchunks t.n);
  if nchunks = 0 then init
  else begin
    Stats.ensure_workers t.n;
    let deques = Array.init t.n (fun _ -> Wsdeque.create ()) in
    (* Blocked preload keeps adjacent chunks on the same worker for
       locality; stealing rebalances irregular ones. *)
    Array.iteri
      (fun i c -> Wsdeque.push deques.(i * t.n / nchunks) c)
      chunks;
    let remaining = Atomic.make nchunks in
    let results = Array.make t.n None in
    let failure = Atomic.make None in
    let job id =
      let busy = ref 0 in
      let acc = ref None in
      let execute (off, len) =
        (match Atomic.get failure with
        | Some _ -> ()
        | None -> (
            Stats.record_chunk ~worker:id ();
            let t0 = now_ns () in
            (try
               let v =
                 Obs.span ~name:"pool.chunk" ~attrs:(worker_attr id)
                   (fun () -> f off len)
               in
               acc :=
                 (match !acc with
                 | None -> Some v
                 | Some a -> Some (merge a v))
             with e -> ignore (Atomic.compare_and_set failure None (Some e)));
            busy := !busy + (now_ns () - t0)));
        ignore (Atomic.fetch_and_add remaining (-1))
      in
      let rec drain () =
        match Wsdeque.pop deques.(id) with
        | Some c -> execute c; drain ()
        | None -> hunt 0
      and hunt failures =
        if Atomic.get remaining > 0 then begin
          let stolen = ref false in
          for k = 1 to t.n - 1 do
            if not !stolen then
              match Wsdeque.steal deques.((id + k) mod t.n) with
              | Wsdeque.Stolen c ->
                  Stats.record_steal ~worker:id ();
                  Obs.instant ~name:"pool.steal" ~attrs:(worker_attr id) ();
                  stolen := true;
                  execute c
              | Wsdeque.Empty | Wsdeque.Retry -> ()
          done;
          if !stolen then drain ()
          else begin
            Stats.record_failed_steal ~worker:id ();
            steal_backoff failures;
            hunt (failures + 1)
          end
        end
      in
      drain ();
      Stats.record_busy ~worker:id !busy;
      results.(id) <- !acc
    in
    run_job t job;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    combine_results ~merge ~init results
  end

(** Parallel loop over [lo, hi) for side effects on disjoint state. *)
let parallel_for t ?grain ~lo ~hi f =
  if hi > lo then
    parallel_range t ?grain ~lo ~hi
      ~f:(fun off len ->
        for i = off to off + len - 1 do
          f i
        done)
      ~merge:(fun () () -> ())
      ~init:() ()

(** Parallel reduction of [f i] over [lo, hi). *)
let parallel_reduce t ?grain ~lo ~hi ~f ~merge ~init () =
  parallel_range t ?grain ~lo ~hi
    ~f:(fun off len ->
      let acc = ref (f off) in
      for i = off + 1 to off + len - 1 do
        acc := merge !acc (f i)
      done;
      !acc)
    ~merge ~init ()

(* A lazily created default pool shared by iterator consumers.  Its
   width can be forced before first use (tests use small widths). *)
let default_width = ref None
let default_pool : t option ref = ref None

let set_default_width w = default_width := Some w

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      (* Under the multi-process cluster backend the parent must stay
         fork-able: node-local parallelism lives in the children, so the
         parent's default pool is clamped to a single worker (zero
         domains spawned).  Checked at call time so a CLI can select the
         backend after startup via the environment. *)
      let workers =
        match Sys.getenv_opt "TRIOLET_BACKEND" with
        | Some "process" -> Some 1
        | _ -> !default_width
      in
      let p = create ?workers () in
      default_pool := Some p;
      p
