(** Growable arrays, used by collectors to pack variable-length skeleton
    output into a contiguous array (paper, section 3.1, "Collectors"). *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 8) dummy =
  { data = Array.make (max 1 capacity) dummy; len = 0; dummy }

let length v = v.len

let grow v =
  let data = Array.make (2 * Array.length v.data) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let to_array v = Array.sub v.data 0 v.len

let to_list v = Array.to_list (to_array v)

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let fold_left f acc v =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) v;
  !acc

let clear v = v.len <- 0

(* ------------------------------------------------------------------ *)
(* Audited unchecked floatarray access for kernel hot loops.

   Kernels index flat [floatarray]s from loop bounds that already
   guarantee validity; raw [Float.Array.unsafe_get] there is fast but
   unauditable.  These wrappers assert the bound, so debug builds (the
   default dune profile) catch a bad index at the faulting site, while
   release builds compiled with [-noassert] keep the unchecked fast
   path.  The static analyzer's unsafe-access pass whitelists exactly
   these two definitions; kernels must go through them rather than
   calling the raw accessors. *)

let fget (a : floatarray) i =
  assert (i >= 0 && i < Float.Array.length a);
  Float.Array.unsafe_get a i

let fset (a : floatarray) i x =
  assert (i >= 0 && i < Float.Array.length a);
  Float.Array.unsafe_set a i x
