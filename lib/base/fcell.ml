(** Unboxed float accumulator cell.

    A polymorphic ['a ref] stores its contents as a pointer, so a
    [float ref] accumulator allocates a fresh box and pays a write
    barrier on every [:=] — exactly the per-element cost the fused
    iterator core exists to avoid.  A record whose fields are all
    [float] gets the flat float representation instead: reading and
    writing [v] is a plain unboxed load/store, no allocation, no
    barrier.  Every float reduction on the fused path accumulates
    through one of these. *)

type t = { mutable v : float }

let make v = { v }
