(** Low-level byte-buffer reader/writer.

    All multi-byte quantities are little-endian.  The writer grows its
    backing buffer geometrically; the reader walks a [Bytes.t] with a
    mutable cursor and raises {!Underflow} when data runs out. *)

exception Underflow

type writer = {
  mutable buf : Bytes.t;
  mutable len : int;
}

type reader = {
  data : Bytes.t;
  mutable pos : int;
  limit : int;
}

let create_writer ?(capacity = 256) () =
  { buf = Bytes.create (max 1 capacity); len = 0 }

let writer_length w = w.len

let ensure w extra =
  let needed = w.len + extra in
  if needed > Bytes.length w.buf then begin
    let cap = ref (Bytes.length w.buf * 2) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let buf = Bytes.create !cap in
    Bytes.blit w.buf 0 buf 0 w.len;
    w.buf <- buf
  end

let write_u8 w v =
  ensure w 1;
  Bytes.unsafe_set w.buf w.len (Char.unsafe_chr (v land 0xff));
  w.len <- w.len + 1

let write_i64 w v =
  ensure w 8;
  Bytes.set_int64_le w.buf w.len v;
  w.len <- w.len + 8

let write_int w v = write_i64 w (Int64.of_int v)

let write_f64 w v = write_i64 w (Int64.bits_of_float v)

let write_bytes w b off len =
  ensure w len;
  Bytes.blit b off w.buf w.len len;
  w.len <- w.len + len

let write_string w s =
  write_int w (String.length s);
  ensure w (String.length s);
  Bytes.blit_string s 0 w.buf w.len (String.length s);
  w.len <- w.len + String.length s

(* Pointer-free float arrays are written as one contiguous block of
   8-byte words, mirroring Triolet's block-copy serialization of unboxed
   arrays (paper, section 3.4). *)
let write_floatarray w (a : floatarray) off len =
  write_int w len;
  ensure w (8 * len);
  for i = 0 to len - 1 do
    Bytes.set_int64_le w.buf (w.len + (8 * i))
      (Int64.bits_of_float (Float.Array.unsafe_get a (off + i)))
  done;
  w.len <- w.len + (8 * len)

let contents w = Bytes.sub w.buf 0 w.len

(* Serialization sized by [Codec.size] fills its buffer exactly, so the
   common case hands the backing buffer over without the final copy. *)
let detach w = if w.len = Bytes.length w.buf then w.buf else contents w

let reader_of_bytes b = { data = b; pos = 0; limit = Bytes.length b }

(* Zero copy: the reader aliases the writer's backing buffer, bounded by
   the bytes written so far.  Writes to [w] after this call may be
   observed by (or invisible to, after a growth reallocation) the
   reader, so treat the writer as frozen while the reader is live. *)
let reader_of_writer w = { data = w.buf; pos = 0; limit = w.len }

let remaining r = r.limit - r.pos

let check r n = if r.pos + n > r.limit then raise Underflow

let read_u8 r =
  check r 1;
  let v = Char.code (Bytes.unsafe_get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let read_i64 r =
  check r 8;
  let v = Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let read_int r = Int64.to_int (read_i64 r)

let read_f64 r = Int64.float_of_bits (read_i64 r)

let read_string r =
  let n = read_int r in
  if n < 0 then raise Underflow;
  check r n;
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_floatarray r =
  let n = read_int r in
  if n < 0 then raise Underflow;
  check r (8 * n);
  let a = Float.Array.create n in
  for i = 0 to n - 1 do
    Float.Array.unsafe_set a i
      (Int64.float_of_bits (Bytes.get_int64_le r.data (r.pos + (8 * i))))
  done;
  r.pos <- r.pos + (8 * n);
  a
