(** Low-level byte-buffer reader/writer.

    All multi-byte quantities are little-endian.  The writer grows its
    backing buffer geometrically; the reader walks a [Bytes.t] with a
    mutable cursor and raises {!Underflow} when data runs out. *)

exception Underflow

type writer = {
  mutable buf : Bytes.t;
  mutable len : int;
}

type reader = {
  data : Bytes.t;
  mutable pos : int;
  limit : int;
}

let create_writer ?(capacity = 256) () =
  { buf = Bytes.create (max 1 capacity); len = 0 }

let writer_length w = w.len

let ensure w extra =
  let needed = w.len + extra in
  if needed > Bytes.length w.buf then begin
    let cap = ref (Bytes.length w.buf * 2) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let buf = Bytes.create !cap in
    Bytes.blit w.buf 0 buf 0 w.len;
    w.buf <- buf
  end

let write_u8 w v =
  ensure w 1;
  Bytes.unsafe_set w.buf w.len (Char.unsafe_chr (v land 0xff));
  w.len <- w.len + 1

let write_i64 w v =
  ensure w 8;
  Bytes.set_int64_le w.buf w.len v;
  w.len <- w.len + 8

let write_int w v = write_i64 w (Int64.of_int v)

let write_f64 w v = write_i64 w (Int64.bits_of_float v)

let write_bytes w b off len =
  ensure w len;
  Bytes.blit b off w.buf w.len len;
  w.len <- w.len + len

let write_string w s =
  write_int w (String.length s);
  ensure w (String.length s);
  Bytes.blit_string s 0 w.buf w.len (String.length s);
  w.len <- w.len + String.length s

(* Pointer-free float arrays are written as one contiguous block of
   8-byte words, mirroring Triolet's block-copy serialization of unboxed
   arrays (paper, section 3.4). *)
let write_floatarray w (a : floatarray) off len =
  write_int w len;
  ensure w (8 * len);
  for i = 0 to len - 1 do
    Bytes.set_int64_le w.buf (w.len + (8 * i))
      (Int64.bits_of_float (Float.Array.unsafe_get a (off + i)))
  done;
  w.len <- w.len + (8 * len)

let write_u32 w v =
  ensure w 4;
  Bytes.set_int32_le w.buf w.len v;
  w.len <- w.len + 4

(* Back-patch a 32-bit slot reserved earlier (e.g. a checksum computed
   only after the payload it covers has been written). *)
let patch_u32 w ~pos v =
  if pos < 0 || pos + 4 > w.len then invalid_arg "Rw.patch_u32";
  Bytes.set_int32_le w.buf pos v

(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum of
   zlib and Ethernet frames.  Table-driven, one table for the library. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Rw.crc32";
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = off to off + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.unsafe_get b i)))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let crc32_range w ~pos ~len =
  if pos < 0 || len < 0 || pos + len > w.len then invalid_arg "Rw.crc32_range";
  crc32 w.buf pos len

let contents w = Bytes.sub w.buf 0 w.len

(* Serialization sized by [Codec.size] fills its buffer exactly, so the
   common case hands the backing buffer over without the final copy. *)
let detach w = if w.len = Bytes.length w.buf then w.buf else contents w

let reader_of_bytes b = { data = b; pos = 0; limit = Bytes.length b }

(* Zero copy: the reader aliases the writer's backing buffer, bounded by
   the bytes written so far.  Writes to [w] after this call may be
   observed by (or invisible to, after a growth reallocation) the
   reader, so treat the writer as frozen while the reader is live. *)
let reader_of_writer w = { data = w.buf; pos = 0; limit = w.len }

let remaining r = r.limit - r.pos

let reader_pos r = r.pos

let check r n = if r.pos + n > r.limit then raise Underflow

(* Checksum of the next [len] unread bytes, without advancing. *)
let crc32_next r len =
  if len < 0 then raise Underflow;
  check r len;
  crc32 r.data r.pos len

let read_u8 r =
  check r 1;
  let v = Char.code (Bytes.unsafe_get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let read_u32 r =
  check r 4;
  let v = Bytes.get_int32_le r.data r.pos in
  r.pos <- r.pos + 4;
  v

let read_i64 r =
  check r 8;
  let v = Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let read_int r = Int64.to_int (read_i64 r)

let read_f64 r = Int64.float_of_bits (read_i64 r)

let read_string r =
  let n = read_int r in
  if n < 0 then raise Underflow;
  check r n;
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_floatarray r =
  let n = read_int r in
  if n < 0 then raise Underflow;
  check r (8 * n);
  let a = Float.Array.create n in
  for i = 0 to n - 1 do
    Float.Array.unsafe_set a i
      (Int64.float_of_bits (Bytes.get_int64_le r.data (r.pos + (8 * i))))
  done;
  r.pos <- r.pos + (8 * n);
  a
