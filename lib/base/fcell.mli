(** Unboxed float accumulator cell: unlike a [float ref] (whose
    polymorphic contents field is a pointer to a boxed float), a record
    with only float fields has flat representation, so updates neither
    allocate nor pay a write barrier.  Use for accumulators on fused
    hot paths. *)

type t = { mutable v : float }

val make : float -> t
