(** Composable serialization codecs.

    Triolet's compiler generates serialization code from algebraic data
    type definitions (paper, section 3.4).  OCaml has no such hook, so we
    provide the equivalent as combinators: a ['a t] couples an encoder
    and a decoder, and [size] reports the exact wire size without
    encoding — the cluster runtime and the simulator both use it for
    byte accounting. *)

type 'a t = {
  encode : Rw.writer -> 'a -> unit;
  decode : Rw.reader -> 'a;
  size : 'a -> int;
}

let make ~encode ~decode ~size = { encode; decode; size }

let unit =
  { encode = (fun _ () -> ()); decode = (fun _ -> ()); size = (fun () -> 0) }

let int =
  { encode = Rw.write_int; decode = Rw.read_int; size = (fun _ -> 8) }

let float =
  { encode = Rw.write_f64; decode = Rw.read_f64; size = (fun _ -> 8) }

let bool =
  {
    encode = (fun w b -> Rw.write_u8 w (if b then 1 else 0));
    decode = (fun r -> Rw.read_u8 r <> 0);
    size = (fun _ -> 1);
  }

let string =
  {
    encode = Rw.write_string;
    decode = Rw.read_string;
    size = (fun s -> 8 + String.length s);
  }

let floatarray =
  {
    encode = (fun w a -> Rw.write_floatarray w a 0 (Float.Array.length a));
    decode = Rw.read_floatarray;
    size = (fun a -> 8 + (8 * Float.Array.length a));
  }

let pair a b =
  {
    encode = (fun w (x, y) -> a.encode w x; b.encode w y);
    decode = (fun r -> let x = a.decode r in let y = b.decode r in (x, y));
    size = (fun (x, y) -> a.size x + b.size y);
  }

let triple a b c =
  {
    encode = (fun w (x, y, z) -> a.encode w x; b.encode w y; c.encode w z);
    decode =
      (fun r ->
        let x = a.decode r in
        let y = b.decode r in
        let z = c.decode r in
        (x, y, z));
    size = (fun (x, y, z) -> a.size x + b.size y + c.size z);
  }

let option a =
  {
    encode =
      (fun w v ->
        match v with
        | None -> Rw.write_u8 w 0
        | Some x -> Rw.write_u8 w 1; a.encode w x);
    decode =
      (fun r -> if Rw.read_u8 r = 0 then None else Some (a.decode r));
    size = (fun v -> match v with None -> 1 | Some x -> 1 + a.size x);
  }

(* Boxed arrays pay a length header plus a per-element encode; contrast
   with [floatarray]'s flat block of words.  The bench harness uses the
   difference to quantify the paper's block-copy claim. *)
let array a =
  {
    encode =
      (fun w v ->
        Rw.write_int w (Array.length v);
        Array.iter (a.encode w) v);
    decode =
      (fun r ->
        let n = Rw.read_int r in
        if n < 0 then raise Rw.Underflow;
        Array.init n (fun _ -> a.decode r));
    size =
      (fun v -> Array.fold_left (fun acc x -> acc + a.size x) 8 v);
  }

let list a =
  {
    encode =
      (fun w v ->
        Rw.write_int w (List.length v);
        List.iter (a.encode w) v);
    decode =
      (fun r ->
        let n = Rw.read_int r in
        if n < 0 then raise Rw.Underflow;
        List.init n (fun _ -> a.decode r));
    size = (fun v -> List.fold_left (fun acc x -> acc + a.size x) 8 v);
  }

let int_array =
  {
    encode =
      (fun w v ->
        Rw.write_int w (Array.length v);
        Array.iter (Rw.write_int w) v);
    decode =
      (fun r ->
        let n = Rw.read_int r in
        if n < 0 then raise Rw.Underflow;
        Array.init n (fun _ -> Rw.read_int r));
    size = (fun v -> 8 + (8 * Array.length v));
  }

let map ~inj ~proj a =
  {
    encode = (fun w v -> a.encode w (proj v));
    decode = (fun r -> inj (a.decode r));
    size = (fun v -> a.size (proj v));
  }

(* The writer is preallocated at the exact wire size, so [Rw.detach]
   hands its buffer over without the final copy — the cluster mailbox
   hot path serializes every scatter/gather message through here. *)
let to_bytes c v =
  let w = Rw.create_writer ~capacity:(max 1 (c.size v)) () in
  c.encode w v;
  Rw.detach w

let of_bytes c b = c.decode (Rw.reader_of_bytes b)

(** [roundtrip c v] encodes then decodes [v]; used by tests and by the
    cluster runtime to force a genuine copy across a node boundary.  The
    decoder reads straight over the writer's buffer ({!Rw.reader_of_writer}),
    so the value is copied once (encode) rather than twice. *)
let roundtrip c v =
  let w = Rw.create_writer ~capacity:(max 1 (c.size v)) () in
  c.encode w v;
  c.decode (Rw.reader_of_writer w)

exception Version_mismatch of { expected : int; got : int }
(** Raised when decoding a {!versioned} value whose tag disagrees. *)

(** Wrap a codec in a versioned envelope: a magic byte plus a version
    tag is written before the value and validated on decode, so stale
    or foreign byte streams fail loudly instead of decoding garbage. *)
let versioned ~version inner =
  if version < 0 || version > 0xFF then invalid_arg "Codec.versioned";
  let magic = 0xB7 in
  {
    encode =
      (fun w v ->
        Rw.write_u8 w magic;
        Rw.write_u8 w version;
        inner.encode w v);
    decode =
      (fun r ->
        let m = Rw.read_u8 r in
        if m <> magic then raise Rw.Underflow;
        let got = Rw.read_u8 r in
        if got <> version then raise (Version_mismatch { expected = version; got });
        inner.decode r);
    size = (fun v -> 2 + inner.size v);
  }
