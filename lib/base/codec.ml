(** Composable serialization codecs.

    Triolet's compiler generates serialization code from algebraic data
    type definitions (paper, section 3.4).  OCaml has no such hook, so we
    provide the equivalent as combinators: a ['a t] couples an encoder
    and a decoder, and [size] reports the exact wire size without
    encoding — the cluster runtime and the simulator both use it for
    byte accounting. *)

type 'a t = {
  encode : Rw.writer -> 'a -> unit;
  decode : Rw.reader -> 'a;
  size : 'a -> int;
}

let make ~encode ~decode ~size = { encode; decode; size }

let unit =
  { encode = (fun _ () -> ()); decode = (fun _ -> ()); size = (fun () -> 0) }

let int =
  { encode = Rw.write_int; decode = Rw.read_int; size = (fun _ -> 8) }

let float =
  { encode = Rw.write_f64; decode = Rw.read_f64; size = (fun _ -> 8) }

let bool =
  {
    encode = (fun w b -> Rw.write_u8 w (if b then 1 else 0));
    decode = (fun r -> Rw.read_u8 r <> 0);
    size = (fun _ -> 1);
  }

let string =
  {
    encode = Rw.write_string;
    decode = Rw.read_string;
    size = (fun s -> 8 + String.length s);
  }

let floatarray =
  {
    encode = (fun w a -> Rw.write_floatarray w a 0 (Float.Array.length a));
    decode = Rw.read_floatarray;
    size = (fun a -> 8 + (8 * Float.Array.length a));
  }

let pair a b =
  {
    encode = (fun w (x, y) -> a.encode w x; b.encode w y);
    decode = (fun r -> let x = a.decode r in let y = b.decode r in (x, y));
    size = (fun (x, y) -> a.size x + b.size y);
  }

let triple a b c =
  {
    encode = (fun w (x, y, z) -> a.encode w x; b.encode w y; c.encode w z);
    decode =
      (fun r ->
        let x = a.decode r in
        let y = b.decode r in
        let z = c.decode r in
        (x, y, z));
    size = (fun (x, y, z) -> a.size x + b.size y + c.size z);
  }

let option a =
  {
    encode =
      (fun w v ->
        match v with
        | None -> Rw.write_u8 w 0
        | Some x -> Rw.write_u8 w 1; a.encode w x);
    decode =
      (fun r -> if Rw.read_u8 r = 0 then None else Some (a.decode r));
    size = (fun v -> match v with None -> 1 | Some x -> 1 + a.size x);
  }

(* Boxed arrays pay a length header plus a per-element encode; contrast
   with [floatarray]'s flat block of words.  The bench harness uses the
   difference to quantify the paper's block-copy claim. *)
let array a =
  {
    encode =
      (fun w v ->
        Rw.write_int w (Array.length v);
        Array.iter (a.encode w) v);
    decode =
      (fun r ->
        let n = Rw.read_int r in
        if n < 0 then raise Rw.Underflow;
        Array.init n (fun _ -> a.decode r));
    size =
      (fun v -> Array.fold_left (fun acc x -> acc + a.size x) 8 v);
  }

let list a =
  {
    encode =
      (fun w v ->
        Rw.write_int w (List.length v);
        List.iter (a.encode w) v);
    decode =
      (fun r ->
        let n = Rw.read_int r in
        if n < 0 then raise Rw.Underflow;
        List.init n (fun _ -> a.decode r));
    size = (fun v -> List.fold_left (fun acc x -> acc + a.size x) 8 v);
  }

let int_array =
  {
    encode =
      (fun w v ->
        Rw.write_int w (Array.length v);
        Array.iter (Rw.write_int w) v);
    decode =
      (fun r ->
        let n = Rw.read_int r in
        if n < 0 then raise Rw.Underflow;
        Array.init n (fun _ -> Rw.read_int r));
    size = (fun v -> 8 + (8 * Array.length v));
  }

let map ~inj ~proj a =
  {
    encode = (fun w v -> a.encode w (proj v));
    decode = (fun r -> inj (a.decode r));
    size = (fun v -> a.size (proj v));
  }

(* The writer is preallocated at the exact wire size, so [Rw.detach]
   hands its buffer over without the final copy — the cluster mailbox
   hot path serializes every scatter/gather message through here. *)
let to_bytes c v =
  let w = Rw.create_writer ~capacity:(max 1 (c.size v)) () in
  c.encode w v;
  Rw.detach w

exception Trailing_bytes of int
(** Raised by {!of_bytes} when decoding leaves unconsumed bytes. *)

(* A decode that stops short of the buffer's end means the bytes were
   not produced by this codec (truncated copy of a larger message,
   corrupted length field, wrong codec): fail loudly rather than return
   a value reconstructed from a prefix. *)
let of_bytes c b =
  let r = Rw.reader_of_bytes b in
  let v = c.decode r in
  (match Rw.remaining r with 0 -> () | n -> raise (Trailing_bytes n));
  v

(** [roundtrip c v] encodes then decodes [v]; used by tests and by the
    cluster runtime to force a genuine copy across a node boundary.  The
    decoder reads straight over the writer's buffer ({!Rw.reader_of_writer}),
    so the value is copied once (encode) rather than twice. *)
let roundtrip c v =
  let w = Rw.create_writer ~capacity:(max 1 (c.size v)) () in
  c.encode w v;
  c.decode (Rw.reader_of_writer w)

exception Version_mismatch of { expected : int; got : int }
(** Raised when decoding a {!versioned} value whose tag disagrees. *)

(** Wrap a codec in a versioned envelope: a magic byte plus a version
    tag is written before the value and validated on decode, so stale
    or foreign byte streams fail loudly instead of decoding garbage. *)
exception Checksum_mismatch of { expected : int32; got : int32 }
(** Raised when a {!checksummed} envelope's CRC disagrees with its
    payload — the bytes were damaged in transit. *)

(** Wrap a codec in an integrity envelope: an 8-byte payload length and
    a CRC-32 over the encoded payload precede the value.  The decoder
    verifies the checksum *before* handing bytes to the inner decoder
    (corruption fails with {!Checksum_mismatch} instead of decoding
    garbage), and verifies afterwards that the inner decoder consumed
    exactly the declared payload ({!Trailing_bytes} otherwise).  The
    cluster runtime uses this for every message when fault injection is
    on, so a corrupted link triggers redelivery rather than a wrong
    result. *)
let checksummed inner =
  {
    encode =
      (fun w v ->
        Rw.write_int w (inner.size v);
        let crc_pos = Rw.writer_length w in
        Rw.write_u32 w 0l;
        let start = Rw.writer_length w in
        inner.encode w v;
        let len = Rw.writer_length w - start in
        Rw.patch_u32 w ~pos:crc_pos (Rw.crc32_range w ~pos:start ~len));
    decode =
      (fun r ->
        let len = Rw.read_int r in
        if len < 0 then raise Rw.Underflow;
        let expected = Rw.read_u32 r in
        let got = Rw.crc32_next r len in
        if got <> expected then raise (Checksum_mismatch { expected; got });
        let start = Rw.reader_pos r in
        let v = inner.decode r in
        let used = Rw.reader_pos r - start in
        if used <> len then raise (Trailing_bytes (len - used));
        v);
    size = (fun v -> 12 + inner.size v);
  }

let versioned ~version inner =
  if version < 0 || version > 0xFF then invalid_arg "Codec.versioned";
  let magic = 0xB7 in
  {
    encode =
      (fun w v ->
        Rw.write_u8 w magic;
        Rw.write_u8 w version;
        inner.encode w v);
    decode =
      (fun r ->
        let m = Rw.read_u8 r in
        if m <> magic then raise Rw.Underflow;
        let got = Rw.read_u8 r in
        if got <> version then raise (Version_mismatch { expected = version; got });
        inner.decode r);
    size = (fun v -> 2 + inner.size v);
  }
