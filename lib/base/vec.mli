(** Growable arrays, used by collectors to pack variable-length skeleton
    output into contiguous storage (paper, section 3.1, "Collectors"). *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create dummy] makes an empty vector; [dummy] fills unused slots. *)

val length : 'a t -> int

val push : 'a t -> 'a -> unit
(** Amortized O(1) append. *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b

val clear : 'a t -> unit
(** Resets the length to zero without shrinking storage. *)

(** {1 Audited unchecked floatarray access}

    Bounds-asserting wrappers around [Float.Array.unsafe_get]/[set] for
    kernel hot loops: debug builds (the default profile) assert the
    index, release builds with [-noassert] keep the unchecked fast
    path.  The analyzer's unsafe-access pass whitelists only these
    definitions — kernels use them instead of the raw accessors. *)

val fget : floatarray -> int -> float
val fset : floatarray -> int -> float -> unit
