(** Composable serialization codecs.

    Triolet's compiler generates serialization code from algebraic data
    type definitions (paper, section 3.4); this module provides the
    equivalent as combinators.  A ['a t] couples an encoder, a decoder,
    and an exact wire-size function used for byte accounting by the
    cluster runtime and the simulator. *)

type 'a t = {
  encode : Rw.writer -> 'a -> unit;
  decode : Rw.reader -> 'a;
  size : 'a -> int;  (** exact encoded size, without encoding *)
}

val make :
  encode:(Rw.writer -> 'a -> unit) ->
  decode:(Rw.reader -> 'a) ->
  size:('a -> int) ->
  'a t

(** {1 Primitive codecs} *)

val unit : unit t
val int : int t
val float : float t
val bool : bool t
val string : string t

val floatarray : floatarray t
(** Flat block of 8-byte words: the compact wire format of pointer-free
    arrays. *)

val int_array : int array t

(** {1 Combinators} *)

val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val option : 'a t -> 'a option t

val array : 'a t -> 'a array t
(** Length header plus per-element encoding (boxed representation —
    contrast with {!floatarray}). *)

val list : 'a t -> 'a list t

val map : inj:('a -> 'b) -> proj:('b -> 'a) -> 'a t -> 'b t
(** Codec for an isomorphic type. *)

(** {1 Whole-value helpers} *)

exception Trailing_bytes of int
(** Raised by {!of_bytes} (and the {!checksummed} envelope) when a
    decode leaves the given number of bytes unconsumed: the buffer was
    not produced by this codec. *)

val to_bytes : 'a t -> 'a -> Bytes.t

val of_bytes : 'a t -> Bytes.t -> 'a
(** Decodes the whole buffer; raises {!Trailing_bytes} if the codec
    stops short of the end instead of silently ignoring the excess. *)

val roundtrip : 'a t -> 'a -> 'a
(** [roundtrip c v] encodes then decodes [v], producing a structurally
    fresh value; used by tests and to force genuine copies across node
    boundaries. *)

exception Checksum_mismatch of { expected : int32; got : int32 }

val checksummed : 'a t -> 'a t
(** Integrity envelope: payload length plus a CRC-32 over the encoded
    payload, verified on decode *before* the inner decoder runs.
    Corrupted bytes raise {!Checksum_mismatch} (or {!Trailing_bytes} /
    [Rw.Underflow] for damaged framing) instead of decoding garbage;
    the fault-tolerant cluster path wraps every message in this. *)

exception Version_mismatch of { expected : int; got : int }

val versioned : version:int -> 'a t -> 'a t
(** Envelope with a magic byte and a version tag, validated on decode:
    stale or foreign byte streams fail loudly ([Rw.Underflow] on bad
    magic, {!Version_mismatch} on a version change) instead of decoding
    garbage. *)
