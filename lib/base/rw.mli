(** Low-level byte-buffer reader/writer.

    All multi-byte quantities are little-endian.  The writer grows its
    backing buffer geometrically; the reader walks a [Bytes.t] with a
    mutable cursor. *)

exception Underflow
(** Raised when a read runs past the end of the buffer. *)

type writer
(** Growable output buffer. *)

type reader
(** Input cursor over immutable bytes. *)

val create_writer : ?capacity:int -> unit -> writer

val writer_length : writer -> int
(** Bytes written so far. *)

val write_u8 : writer -> int -> unit
(** Writes the low 8 bits of the argument. *)

val write_i64 : writer -> int64 -> unit
val write_int : writer -> int -> unit
val write_f64 : writer -> float -> unit

val write_u32 : writer -> int32 -> unit
(** Little-endian 32-bit word (checksum slots). *)

val patch_u32 : writer -> pos:int -> int32 -> unit
(** Overwrites the 4 bytes at [pos] (already written) with a 32-bit
    word — back-fills a checksum slot reserved before its payload. *)

val write_bytes : writer -> Bytes.t -> int -> int -> unit
(** [write_bytes w b off len] appends [len] raw bytes of [b] from
    [off]. *)

val write_string : writer -> string -> unit
(** Length-prefixed string. *)

val write_floatarray : writer -> floatarray -> int -> int -> unit
(** [write_floatarray w a off len]: length prefix followed by one
    contiguous block of 8-byte words — the block-copy serialization of
    pointer-free arrays (paper, section 3.4). *)

val contents : writer -> Bytes.t
(** Copy of the bytes written so far. *)

val detach : writer -> Bytes.t
(** The bytes written so far, handing over the backing buffer without a
    copy when it is exactly full (the case for exactly-sized writers,
    e.g. those preallocated from [Codec.size]).  The writer must not be
    written to afterwards. *)

val reader_of_bytes : Bytes.t -> reader

val reader_of_writer : writer -> reader
(** Zero-copy reader over the writer's backing buffer, bounded by the
    bytes written so far.  The writer must be treated as frozen while
    the reader is in use: further writes may be observed by the reader
    or lost to it entirely when the buffer grows. *)

val remaining : reader -> int
(** Bytes left to read. *)

val reader_pos : reader -> int
(** Bytes consumed so far. *)

(** {1 Integrity}

    CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges; the
    checksummed codec envelope uses these to detect corrupted
    messages. *)

val crc32 : Bytes.t -> int -> int -> int32
(** [crc32 b off len] checksums [len] bytes of [b] from [off]. *)

val crc32_range : writer -> pos:int -> len:int -> int32
(** Checksum over a range already written to the writer. *)

val crc32_next : reader -> int -> int32
(** Checksum of the next [n] unread bytes without advancing the cursor;
    raises {!Underflow} if fewer than [n] remain. *)

val read_u8 : reader -> int
val read_u32 : reader -> int32
val read_i64 : reader -> int64
val read_int : reader -> int
val read_f64 : reader -> float
val read_string : reader -> string

val read_floatarray : reader -> floatarray
(** Inverse of {!write_floatarray}; allocates a fresh array. *)
