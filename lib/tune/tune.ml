(* Cost-model-driven auto-mapper.  See tune.mli for the contract.

   The search itself is deliberately free of wall-clock and randomness:
   measurement happens only in [measure] / [tune_instance], so [search]
   and [check] are pure functions of (model, lattice) — which is what
   makes `autotune --check` meaningful in CI and the determinism test
   possible at all. *)

module Cluster = Triolet_runtime.Cluster
module App = Triolet_sim.App_model
module Sim = Triolet_sim.Sched_sim
module Profile = Triolet_sim.Profile
module Netmodel = Triolet_sim.Netmodel
module Kernel = Triolet_kernels.Kernel
module Models = Triolet_kernels.Models
module Mapping = Triolet.Mapping
module Exec = Triolet.Exec

type candidate = {
  nodes : int;
  cores_per_node : int;
  grain : int option;
  chunk_multiplier : int;
  backend : Cluster.backend;
}

type score = {
  cand : candidate;
  cluster_s : float;
  host_s : float;
  scatter_bytes : int;
  gather_bytes : int;
}

(* The constructor [Cluster] lives in the constructor namespace, so it
   does not clash with the [Cluster] module alias above. *)
type objective = Host | Cluster

let objective_to_string = function Host -> "host" | Cluster -> "cluster"

let objective_of_string = function
  | "host" -> Some Host
  | "cluster" -> Some Cluster
  | _ -> None

let default_host_cores () = Domain.recommended_domain_count ()

let default_lattice () =
  List.concat_map
    (fun nodes ->
      List.concat_map
        (fun cores_per_node ->
          List.concat_map
            (fun chunk_multiplier ->
              List.concat_map
                (fun grain ->
                  List.map
                    (fun backend ->
                      { nodes; cores_per_node; grain; chunk_multiplier; backend })
                    [ Cluster.Inprocess; Cluster.Flat; Cluster.Process ])
                [ None; Some 64; Some 256 ])
            [ 1; 2; 4; 8 ])
        [ 1; 2; 4 ])
    [ 1; 2; 4; 8 ]

let calibrate (app : App.t) ~measured_seq =
  let model_seq = App.sequential_time app in
  if model_seq <= 0.0 || measured_seq <= 0.0 then app
  else
    let f = measured_seq /. model_seq in
    {
      app with
      App.task_cost = (fun i -> app.App.task_cost i *. f);
      seq_setup_time = app.App.seq_setup_time *. f;
    }

(* ------------------------------------------------------------------ *)
(* Scoring                                                             *)

(* Per-backend communication constants for the host projection.  The
   in-process and flat transports are memory queues plus the explicit
   payload encode/decode every distributed consumer performs; the
   process backend adds real pipes and a fork per node. *)
let ser_bytes_per_sec = 2e9

let per_message_s = function
  | Cluster.Process -> 2e-4
  | Cluster.Inprocess | Cluster.Flat -> 1e-5

let spawn_s cand =
  match cand.backend with
  | Cluster.Process -> 0.012 *. float_of_int cand.nodes
  | Cluster.Inprocess | Cluster.Flat ->
      2e-5 *. float_of_int (cand.nodes * cand.cores_per_node)

(* Workers the runtime actually fans out to (mirrors
   Cluster.topology_workers). *)
let workers_of cand =
  match cand.backend with
  | Cluster.Flat -> cand.nodes * cand.cores_per_node
  | Cluster.Inprocess | Cluster.Process -> cand.nodes

(* Total concurrent lanes the candidate asks the host for. *)
let lanes_of cand = cand.nodes * cand.cores_per_node

let profile_of cand =
  let p = Profile.triolet ~efficiency:(fun _ -> 1.0) () in
  let net =
    match cand.backend with
    | Cluster.Process -> Netmodel.make ~latency:2e-4 ~bytes_per_sec:8e8 ()
    | Cluster.Inprocess | Cluster.Flat ->
        Netmodel.make ~latency:1e-5 ~bytes_per_sec:ser_bytes_per_sec ()
  in
  {
    p with
    Profile.node_scheduling =
      (if cand.chunk_multiplier <= 1 then Profile.Static_blocks
       else Profile.Overdecomposed cand.chunk_multiplier);
    net;
  }

let machine_of cand =
  match cand.backend with
  | Cluster.Flat ->
      { Sim.nodes = cand.nodes * cand.cores_per_node; cores_per_node = 1 }
  | Cluster.Inprocess | Cluster.Process ->
      { Sim.nodes = cand.nodes; cores_per_node = cand.cores_per_node }

(* Local chunks a node's pool dispatches: the explicit grain, or the
   auto formula (Partition.grain targets ~32 chunks per worker). *)
let local_chunks app cand =
  let units = max 1 app.App.tasks in
  match cand.grain with
  | Some g -> (units + (max 1 g - 1)) / max 1 g
  | None -> min units (lanes_of cand * 32)

(* Project a candidate's makespan onto the machine actually running:
   bounded parallel compute with an oversubscription penalty, plus the
   serialization, message, spawn and dispatch costs the abstract
   cluster simulation attributes to free parallel hardware. *)
let host_project ~host_cores app cand (b : Sim.breakdown) =
  let seq = App.sequential_time app in
  let setup = app.App.seq_setup_time in
  let lanes = lanes_of cand in
  let par = float_of_int (max 1 (min host_cores lanes)) in
  let compute = ((seq -. setup) /. par) +. setup in
  let oversub = float_of_int lanes /. float_of_int (max 1 host_cores) in
  let compute =
    if oversub > 1.0 then
      compute *. (1.0 +. (0.04 *. (log oversub /. log 2.0)))
    else compute
  in
  let comm =
    float_of_int (b.Sim.bytes_scattered + b.Sim.bytes_gathered)
    /. ser_bytes_per_sec
  in
  let messages = 2 * workers_of cand in
  let dispatch =
    float_of_int (local_chunks app cand) *. 2e-6
    +. float_of_int (min app.App.tasks (cand.nodes * cand.chunk_multiplier))
       *. 1e-5
  in
  compute +. comm
  +. (float_of_int messages *. per_message_s cand.backend)
  +. spawn_s cand +. dispatch

let score ?host_cores ~app cand =
  let host_cores =
    match host_cores with Some c -> c | None -> default_host_cores ()
  in
  match Sim.run app (profile_of cand) (machine_of cand) with
  | Sim.Failed _ ->
      {
        cand;
        cluster_s = infinity;
        host_s = infinity;
        scatter_bytes = 0;
        gather_bytes = 0;
      }
  | Sim.Completed b ->
      {
        cand;
        cluster_s = b.Sim.total;
        host_s = host_project ~host_cores app cand b;
        scatter_bytes = b.Sim.bytes_scattered;
        gather_bytes = b.Sim.bytes_gathered;
      }

let backend_rank = function
  | Cluster.Inprocess -> 0
  | Cluster.Flat -> 1
  | Cluster.Process -> 2

(* Total deterministic order: objective value, then preference for the
   cheapest-to-realize candidate among ties. *)
let compare_scores objective a b =
  let key s = match objective with Host -> s.host_s | Cluster -> s.cluster_s in
  let c = compare (key a) (key b) in
  if c <> 0 then c
  else
    let tie s =
      ( lanes_of s.cand,
        s.cand.nodes,
        s.cand.cores_per_node,
        s.cand.chunk_multiplier,
        (match s.cand.grain with None -> 0 | Some g -> g),
        backend_rank s.cand.backend )
    in
    compare (tie a) (tie b)

let search ?(objective = Host) ?lattice ?host_cores ~app () =
  let lattice =
    match lattice with Some l -> l | None -> default_lattice ()
  in
  let scored = List.map (score ?host_cores ~app) lattice in
  List.stable_sort (compare_scores objective) scored

let ctx_of_candidate cand =
  Exec.make ~nodes:cand.nodes ~cores_per_node:cand.cores_per_node
    ~backend:cand.backend ~grain:cand.grain
    ~chunk_multiplier:cand.chunk_multiplier ()

(* ------------------------------------------------------------------ *)
(* Measurement and per-instance tuning                                 *)

let measure ?(reps = 3) f =
  let best = ref infinity in
  for _ = 1 to max 1 reps do
    let (), t = Triolet_runtime.Clock.duration f in
    if t < !best then best := t
  done;
  !best

let rates_to_assoc (r : Models.rates) =
  [
    ("mriq_pair_s", r.Models.mriq_pair_s);
    ("sgemm_mac_s", r.Models.sgemm_mac_s);
    ("tpacf_pair_s", r.Models.tpacf_pair_s);
    ("cutcp_point_s", r.Models.cutcp_point_s);
  ]

let rates_of_assoc kvs =
  let get k default =
    match List.assoc_opt k kvs with Some v -> v | None -> default
  in
  {
    Models.mriq_pair_s = get "mriq_pair_s" Models.default_rates.Models.mriq_pair_s;
    sgemm_mac_s = get "sgemm_mac_s" Models.default_rates.Models.sgemm_mac_s;
    tpacf_pair_s = get "tpacf_pair_s" Models.default_rates.Models.tpacf_pair_s;
    cutcp_point_s =
      get "cutcp_point_s" Models.default_rates.Models.cutcp_point_s;
  }

let entry_of_score ~kernel ~size ~seq_s ?measured_s (s : score) =
  let delta =
    match measured_s with
    | Some m when m > 0.0 -> Some (Float.abs (s.host_s -. m) /. m)
    | _ -> None
  in
  {
    Mapping.kernel;
    size;
    nodes = s.cand.nodes;
    cores_per_node = s.cand.cores_per_node;
    backend = Cluster.backend_to_string s.cand.backend;
    grain = s.cand.grain;
    chunk_multiplier = s.cand.chunk_multiplier;
    predicted_s = s.host_s;
    cluster_s = s.cluster_s;
    seq_s;
    measured_s;
    delta;
  }

let tune_instance ?(objective = Host) ?lattice ?host_cores ?reps
    ?(validate = true) ~rates (inst : Kernel.instance) =
  let app0 = inst.Kernel.model ~rates () in
  (* One warm-up so dataset construction and code paths are paged in
     before anything is timed. *)
  inst.Kernel.run_seq ();
  let seq_s = measure ?reps inst.Kernel.run_seq in
  let app = calibrate app0 ~measured_seq:seq_s in
  let ranked = search ~objective ?lattice ?host_cores ~app () in
  let best =
    match ranked with
    | best :: _ -> best
    | [] -> invalid_arg "Tune.tune_instance: empty lattice"
  in
  let measured_s =
    if not validate then None
    else
      let ctx = ctx_of_candidate best.cand in
      let run () = inst.Kernel.run_triolet ~ctx () in
      run ();
      Some (measure ?reps run)
  in
  ( entry_of_score ~kernel:inst.Kernel.kernel ~size:inst.Kernel.size ~seq_s
      ?measured_s best,
    ranked )

(* ------------------------------------------------------------------ *)
(* Drift checking                                                      *)

type check_outcome = Check_ok | Check_drift of string list

(* An entry re-scores against the current registry + simulator using
   only data recorded in the file (rates snapshot, measured sequential
   time), so no re-measurement happens here. *)
let check_entry ~objective ~host_cores ~rates (e : Mapping.entry) =
  match Kernel.find e.Mapping.kernel with
  | None -> [ Printf.sprintf "entry %s: kernel not registered" e.Mapping.kernel ]
  | Some (module K) ->
      if not (List.mem e.Mapping.size K.size_classes) then
        [
          Printf.sprintf "entry %s/%s: not a size class of %s (valid: %s)"
            e.Mapping.kernel e.Mapping.size K.name
            (String.concat ", " K.size_classes);
        ]
      else if Cluster.backend_of_string e.Mapping.backend = None then
        [
          Printf.sprintf "entry %s/%s: unknown backend %S" e.Mapping.kernel
            e.Mapping.size e.Mapping.backend;
        ]
      else
        let inst = K.instance ~size:e.Mapping.size () in
        let app =
          calibrate (inst.Kernel.model ~rates ()) ~measured_seq:e.Mapping.seq_s
        in
        let ranked = search ~objective ~host_cores ~app () in
        let key s =
          match objective with Host -> s.host_s | Cluster -> s.cluster_s
        in
        let recorded =
          List.find_opt
            (fun s ->
              s.cand.nodes = e.Mapping.nodes
              && s.cand.cores_per_node = e.Mapping.cores_per_node
              && s.cand.grain = e.Mapping.grain
              && s.cand.chunk_multiplier = e.Mapping.chunk_multiplier
              && Cluster.backend_to_string s.cand.backend = e.Mapping.backend)
            ranked
        in
        let ctx = Printf.sprintf "entry %s/%s" e.Mapping.kernel e.Mapping.size in
        match (recorded, ranked) with
        | None, _ ->
            [ ctx ^ ": recorded context is no longer in the search lattice" ]
        | Some _, [] -> [ ctx ^ ": empty lattice" ]
        | Some r, best :: _ ->
            let issues = ref [] in
            let rel a b = Float.abs (a -. b) /. Float.max 1e-9 b in
            if rel (key r) e.Mapping.predicted_s > 0.10 then
              issues :=
                Printf.sprintf
                  "%s: cost model moved — re-scored %.4fs vs recorded %.4fs" ctx
                  (key r) e.Mapping.predicted_s
                :: !issues;
            if key r > 1.10 *. key best then
              issues :=
                Printf.sprintf
                  "%s: recorded context no longer near-optimal (%.4fs vs best \
                   %.4fs)"
                  ctx (key r) (key best)
                :: !issues;
            List.rev !issues

let check (file : Mapping.file) =
  let objective =
    match objective_of_string file.Mapping.objective with
    | Some o -> Some o
    | None -> None
  in
  match objective with
  | None ->
      Check_drift
        [ Printf.sprintf "unknown objective %S" file.Mapping.objective ]
  | Some objective ->
      let host_cores = max 1 file.Mapping.host_cores in
      let rates = rates_of_assoc file.Mapping.rates in
      let coverage =
        List.filter_map
          (fun (module K : Kernel.S) ->
            if
              List.exists
                (fun (e : Mapping.entry) ->
                  e.Mapping.kernel = K.name
                  && e.Mapping.size = K.default_size)
                file.Mapping.entries
            then None
            else
              Some
                (Printf.sprintf "kernel %s has no entry at size %s" K.name
                   K.default_size))
          (Kernel.all ())
      in
      let entry_issues =
        List.concat_map
          (check_entry ~objective ~host_cores ~rates)
          file.Mapping.entries
      in
      match coverage @ entry_issues with
      | [] -> Check_ok
      | issues -> Check_drift issues
