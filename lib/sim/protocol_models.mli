(** Operational models of the runtime's concurrency protocols — the
    work-stealing deque's owner/thief discipline, the mailbox's
    send/recv/close discipline, and the service fabric's supervisor
    heartbeat / request lifecycle — exhaustively checked with
    {!Modelcheck}.  The [bug] parameters inject classic races so the
    test suite can prove the checker catches them. *)

module Wsdeque_model : sig
  type bug =
    | Steal_no_remove  (** thief copies the top task without removing
                           it → duplication *)
    | Lose_pop_race  (** owner's last-element pop skips the race CAS →
                         the task is lost *)

  type op = Push | Pop

  type state = {
    script : op list;
    steals : int;
    next : int;
    deque : int list;
    taken : int list;
    stolen : int list;
  }

  val check : ?bug:bug -> ?max_ops:int -> unit -> Modelcheck.report
  (** Explore every owner script over [{Push, Pop}] up to [max_ops]
      (default 6) long, with one thief steal attempt per push, under
      every interleaving.  Invariant: every pushed task is held by
      exactly one party — never lost, never duplicated. *)
end

module Mailbox_model : sig
  type bug =
    | No_close_wakeup  (** close does not wake a blocked receiver →
                           deadlock at the bound *)
    | Drop_delayed  (** in-flight delayed messages are discarded →
                        message lost *)

  type sop = Send | Send_delayed | Close
  type rop = Recv | Recv_timeout

  type state = {
    sends : sop list;
    recvs : rop list;
    next : int;
    q : int list;
    delayed : int list;
    closed : bool;
    received : int list;
    closed_seen : int;
    timeouts : int;
  }

  val check :
    ?bug:bug -> ?max_sends:int -> ?max_recvs:int -> unit -> Modelcheck.report
  (** Explore every sender script of up to [max_sends] (default 2)
      sends/delayed-sends with [Close] inserted at every position, against
      every receiver script of up to [max_recvs] (default 3)
      recv/recv_timeout operations, under every interleaving.
      Invariants: no accepted message lost or duplicated; a terminal
      state with receiver operations pending is a wakeup failure. *)
end

module Heartbeat_model : sig
  type bug =
    | Forget_inflight
        (** EOF does not re-issue the dead child's in-flight slices →
            a slice is lost *)
    | No_stale_filter
        (** a reply for an already-completed slice is applied again →
            a slice double-completes *)

  type slice =
    | Pending of int  (** not assigned; attempts consumed so far *)
    | Inflight of int * int  (** (node, attempt) of the newest send *)
    | Done of int  (** completions recorded — must stay 1 *)

  type child = {
    alive : bool;
    cstate : string;  (** parent-side [Protocol.spec] state *)
    misses : int;
    tasks : (int * int) list;
    outbox : (int * int) list;
  }

  type state = {
    slices : slice list;
    children : child list;
    kills : int;
    losses : int;
    spurious : int;
    bad : string option;
  }

  val check :
    ?bug:bug ->
    ?kills:int ->
    ?losses:int ->
    ?spurious:int ->
    ?n_slices:int ->
    unit ->
    Modelcheck.report
  (** Exhaustively explore [n_slices] slices (default 2) over two
      supervised children under a budget of [kills] direct SIGKILLs
      (default 1), [losses] lost pongs (default 2, with miss threshold
      2 — enough for one miss-verdict kill), and [spurious] timeout
      re-issues (default 1).  Every protocol decision — frame
      handling per parent state, EOF, miss verdict, respawn — is
      looked up in [Protocol.spec] via [Protocol.action_for], so the
      model cannot drift from the running dispatcher's rule table.
      Invariants: no slice double-completes; at the bound every slice
      completed exactly once and every child is back live. *)
end

module Segment_model : sig
  type bug =
    | Stale_reuse
        (** the parent sends a key-only reuse naming the version the
            child holds instead of the current one after an update —
            the child's check passes and the compute runs on stale
            data *)
    | Skip_version_check
        (** the child accepts reuses and task keys without checking
            its table — computes against lost or stale segments after
            a crash the parent forgot *)

  type frame =
    | Put of int * int  (** segment, version *)
    | Reuse of int * int
    | Task of (int * int) list

  type state = {
    truth : int list;
    believed : int option list;
    child : int option list;
    wire : frame list;
    inflight : bool;
    rounds : int;
    updates : int;
    crashes : int;
    done_rounds : int;
    bad : string option;
  }

  val check :
    ?bug:bug ->
    ?n_segs:int ->
    ?rounds:int ->
    ?updates:int ->
    ?crashes:int ->
    unit ->
    Modelcheck.report
  (** The Darray residency protocol over [n_segs] versioned segments
      (default 2): [rounds] compute rounds (default 2) under a budget
      of [updates] parent-side version bumps (default 2) and [crashes]
      child wipes (default 1).  A correct parent ships a [Seg_put] for
      every segment whose believed version disagrees with truth and a
      key-only [Seg_reuse] otherwise; a correct child refuses a reuse
      or task key naming a version it does not hold (Nack → the
      parent forgets its belief and re-ships).  Invariant: every
      compute runs against exactly the parent's current versions;
      terminal states must have completed all rounds. *)
end
