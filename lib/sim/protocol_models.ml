(** Operational models of the runtime's concurrency primitives, checked
    with {!Modelcheck}.

    These are small-state semantics of the *protocols* — who may take
    which task, when a receiver may block — not of the lock-free
    implementations.  The checker proves the protocol itself safe under
    every interleaving within the bound; the [bug] parameters inject
    the classic races the real implementations must avoid, and the test
    suite asserts the checker catches each one. *)

(* ------------------------------------------------------------------ *)
(* Work-stealing deque: one owner (push/pop at the bottom), one thief
   (steal at the top).  Safety: every pushed task ends up with exactly
   one party — never lost, never duplicated.                           *)

module Wsdeque_model = struct
  type bug = Steal_no_remove | Lose_pop_race

  type op = Push | Pop

  type state = {
    script : op list;  (** remaining owner operations *)
    steals : int;  (** remaining thief steal attempts *)
    next : int;  (** next task id to push *)
    deque : int list;  (** front = bottom (owner end), rear = top *)
    taken : int list;  (** ids the owner popped *)
    stolen : int list;  (** ids the thief stole *)
  }

  let make_model ?bug ~max_ops () =
    (module struct
      type nonrec state = state

      let name = "wsdeque"

      (* Every owner script over {Push, Pop} up to [max_ops] long; the
         thief gets one steal attempt per push in the script. *)
      let scenarios =
        let rec scripts k =
          if k = 0 then [ [] ]
          else
            let shorter = scripts (k - 1) in
            let full =
              List.concat_map
                (fun s -> [ Push :: s; Pop :: s ])
                (List.filter (fun s -> List.length s = k - 1) shorter)
            in
            shorter @ full
        in
        List.map
          (fun script ->
            {
              script;
              steals =
                List.length (List.filter (fun o -> o = Push) script);
              next = 0;
              deque = [];
              taken = [];
              stolen = [];
            })
          (scripts max_ops)

      let transitions st =
        let owner =
          match st.script with
          | [] -> []
          | Push :: rest ->
              [
                ( Printf.sprintf "push %d" st.next,
                  {
                    st with
                    script = rest;
                    deque = st.next :: st.deque;
                    next = st.next + 1;
                  } );
              ]
          | Pop :: rest -> (
              match st.deque with
              | [] -> [ ("pop empty", { st with script = rest }) ]
              | [ x ] when bug = Some Lose_pop_race && st.steals > 0 ->
                  (* the last-element race: owner pops but the CAS
                     against the thief is skipped, dropping the task *)
                  [
                    ( Printf.sprintf "pop %d (racy)" x,
                      { st with script = rest; deque = [] } );
                  ]
              | x :: deque ->
                  [
                    ( Printf.sprintf "pop %d" x,
                      { st with script = rest; deque; taken = x :: st.taken }
                    );
                  ])
        in
        let thief =
          if st.steals = 0 then []
          else
            match List.rev st.deque with
            | [] -> [ ("steal empty", { st with steals = st.steals - 1 }) ]
            | top :: rest_rev ->
                let deque =
                  if bug = Some Steal_no_remove then st.deque
                  else List.rev rest_rev
                in
                [
                  ( Printf.sprintf "steal %d" top,
                    {
                      st with
                      steals = st.steals - 1;
                      deque;
                      stolen = top :: st.stolen;
                    } );
                ]
        in
        owner @ thief

      (* Conservation + uniqueness: ids [0, next) are each in exactly
         one of deque / taken / stolen. *)
      let invariant st =
        let all = st.deque @ st.taken @ st.stolen in
        let seen = Array.make (max st.next 1) 0 in
        let bad = ref None in
        List.iter
          (fun id ->
            if id < 0 || id >= st.next then
              bad := Some (Printf.sprintf "unknown task id %d" id)
            else begin
              seen.(id) <- seen.(id) + 1;
              if seen.(id) > 1 then
                bad :=
                  Some
                    (Printf.sprintf "task %d duplicated (owner and thief)"
                       id)
            end)
          all;
        (match !bad with
        | None ->
            for id = 0 to st.next - 1 do
              if seen.(id) = 0 && !bad = None then
                bad := Some (Printf.sprintf "task %d lost" id)
            done
        | Some _ -> ());
        !bad

      let terminal_ok _ = None
    end : Modelcheck.MODEL
      with type state = state)

  let check ?bug ?(max_ops = 6) () =
    Modelcheck.explore (make_model ?bug ~max_ops ())
end

(* ------------------------------------------------------------------ *)
(* Mailbox: one sender (send / send_delayed / close), one receiver
   (recv / recv_timeout).  Safety: no message lost or duplicated;
   liveness at the bound: close wakes a blocked receiver.             *)

module Mailbox_model = struct
  type bug = No_close_wakeup | Drop_delayed

  type sop = Send | Send_delayed | Close
  type rop = Recv | Recv_timeout

  type state = {
    sends : sop list;  (** remaining sender operations *)
    recvs : rop list;  (** remaining receiver operations *)
    next : int;
    q : int list;  (** delivered queue, front first *)
    delayed : int list;  (** in flight, not yet delivered *)
    closed : bool;
    received : int list;
    closed_seen : int;  (** receiver ops that observed the close *)
    timeouts : int;
  }

  let make_model ?bug ~max_sends ~max_recvs () =
    (module struct
      type nonrec state = state

      let name = "mailbox"

      (* Sender scripts: every {Send, Send_delayed} sequence up to
         [max_sends] long with Close inserted at every position — the
         mailbox is always eventually closed, as the cluster runtime
         does.  Receiver scripts: every {Recv, Recv_timeout} sequence
         up to [max_recvs] long. *)
      let scenarios =
        let rec seqs alts k =
          if k = 0 then [ [] ]
          else
            let shorter = seqs alts (k - 1) in
            shorter
            @ List.concat_map
                (fun s -> List.map (fun a -> a :: s) alts)
                (List.filter (fun s -> List.length s = k - 1) shorter)
        in
        let rec insertions x = function
          | [] -> [ [ x ] ]
          | y :: rest ->
              (x :: y :: rest)
              :: List.map (fun s -> y :: s) (insertions x rest)
        in
        let sender_scripts =
          List.concat_map (insertions Close) (seqs [ Send; Send_delayed ] max_sends)
        in
        let recv_scripts = seqs [ Recv; Recv_timeout ] max_recvs in
        List.concat_map
          (fun sends ->
            List.map
              (fun recvs ->
                {
                  sends;
                  recvs;
                  next = 0;
                  q = [];
                  delayed = [];
                  closed = false;
                  received = [];
                  closed_seen = 0;
                  timeouts = 0;
                })
              recv_scripts)
          sender_scripts

      let transitions st =
        let sender =
          match st.sends with
          | [] -> []
          | Send :: rest ->
              if st.closed then [ ("send rejected", { st with sends = rest }) ]
              else
                [
                  ( Printf.sprintf "send %d" st.next,
                    {
                      st with
                      sends = rest;
                      q = st.q @ [ st.next ];
                      next = st.next + 1;
                    } );
                ]
          | Send_delayed :: rest ->
              if st.closed then [ ("send rejected", { st with sends = rest }) ]
              else
                [
                  ( Printf.sprintf "send_delayed %d" st.next,
                    {
                      st with
                      sends = rest;
                      delayed = st.delayed @ [ st.next ];
                      next = st.next + 1;
                    } );
                ]
          | Close :: rest -> [ ("close", { st with sends = rest; closed = true }) ]
        in
        let receiver =
          match st.recvs with
          | [] -> []
          | Recv :: rest -> (
              match st.q with
              | x :: q ->
                  [
                    ( Printf.sprintf "recv %d" x,
                      { st with recvs = rest; q; received = x :: st.received }
                    );
                  ]
              | [] ->
                  if st.closed && bug <> Some No_close_wakeup then
                    [
                      ( "recv closed",
                        {
                          st with
                          recvs = rest;
                          closed_seen = st.closed_seen + 1;
                        } );
                    ]
                  else [] (* blocked: no message and not (visibly) closed *))
          | Recv_timeout :: rest -> (
              match st.q with
              | x :: q ->
                  [
                    ( Printf.sprintf "recv_timeout %d" x,
                      { st with recvs = rest; q; received = x :: st.received }
                    );
                  ]
              | [] ->
                  if st.closed then
                    [
                      ( "recv_timeout closed",
                        {
                          st with
                          recvs = rest;
                          closed_seen = st.closed_seen + 1;
                        } );
                    ]
                  else
                    (* Timed out waiting; the wait is when in-flight
                       (delayed) messages land in the queue. *)
                    [
                      ( "recv_timeout expired",
                        {
                          st with
                          recvs = rest;
                          timeouts = st.timeouts + 1;
                          q =
                            (if bug = Some Drop_delayed then st.q
                             else st.q @ st.delayed);
                          delayed = [];
                        } );
                    ])
        in
        sender @ receiver

      (* Conservation + uniqueness: accepted messages [0, next) are
         each in exactly one of q / delayed / received. *)
      let invariant st =
        let all = st.q @ st.delayed @ st.received in
        let seen = Array.make (max st.next 1) 0 in
        let bad = ref None in
        List.iter
          (fun id ->
            if id < 0 || id >= st.next then
              bad := Some (Printf.sprintf "unknown message id %d" id)
            else begin
              seen.(id) <- seen.(id) + 1;
              if seen.(id) > 1 then
                bad := Some (Printf.sprintf "message %d duplicated" id)
            end)
          all;
        (match !bad with
        | None ->
            for id = 0 to st.next - 1 do
              if seen.(id) = 0 && !bad = None then
                bad := Some (Printf.sprintf "message %d lost" id)
            done
        | Some _ -> ());
        !bad

      (* A terminal state with receiver operations left means the
         receiver is blocked with no sender step coming: the close
         failed to wake it. *)
      let terminal_ok st =
        if st.recvs <> [] then
          Some
            (Printf.sprintf
               "receiver blocked with %d operation(s) pending after \
                close: close must wake blocked receivers"
               (List.length st.recvs))
        else None
    end : Modelcheck.MODEL
      with type state = state)

  let check ?bug ?(max_sends = 2) ?(max_recvs = 3) () =
    Modelcheck.explore (make_model ?bug ~max_sends ~max_recvs ())
end
