(** Operational models of the runtime's concurrency primitives, checked
    with {!Modelcheck}.

    These are small-state semantics of the *protocols* — who may take
    which task, when a receiver may block — not of the lock-free
    implementations.  The checker proves the protocol itself safe under
    every interleaving within the bound; the [bug] parameters inject
    the classic races the real implementations must avoid, and the test
    suite asserts the checker catches each one. *)

(* ------------------------------------------------------------------ *)
(* Work-stealing deque: one owner (push/pop at the bottom), one thief
   (steal at the top).  Safety: every pushed task ends up with exactly
   one party — never lost, never duplicated.                           *)

module Wsdeque_model = struct
  type bug = Steal_no_remove | Lose_pop_race

  type op = Push | Pop

  type state = {
    script : op list;  (** remaining owner operations *)
    steals : int;  (** remaining thief steal attempts *)
    next : int;  (** next task id to push *)
    deque : int list;  (** front = bottom (owner end), rear = top *)
    taken : int list;  (** ids the owner popped *)
    stolen : int list;  (** ids the thief stole *)
  }

  let make_model ?bug ~max_ops () =
    (module struct
      type nonrec state = state

      let name = "wsdeque"

      (* Every owner script over {Push, Pop} up to [max_ops] long; the
         thief gets one steal attempt per push in the script. *)
      let scenarios =
        let rec scripts k =
          if k = 0 then [ [] ]
          else
            let shorter = scripts (k - 1) in
            let full =
              List.concat_map
                (fun s -> [ Push :: s; Pop :: s ])
                (List.filter (fun s -> List.length s = k - 1) shorter)
            in
            shorter @ full
        in
        List.map
          (fun script ->
            {
              script;
              steals =
                List.length (List.filter (fun o -> o = Push) script);
              next = 0;
              deque = [];
              taken = [];
              stolen = [];
            })
          (scripts max_ops)

      let transitions st =
        let owner =
          match st.script with
          | [] -> []
          | Push :: rest ->
              [
                ( Printf.sprintf "push %d" st.next,
                  {
                    st with
                    script = rest;
                    deque = st.next :: st.deque;
                    next = st.next + 1;
                  } );
              ]
          | Pop :: rest -> (
              match st.deque with
              | [] -> [ ("pop empty", { st with script = rest }) ]
              | [ x ] when bug = Some Lose_pop_race && st.steals > 0 ->
                  (* the last-element race: owner pops but the CAS
                     against the thief is skipped, dropping the task *)
                  [
                    ( Printf.sprintf "pop %d (racy)" x,
                      { st with script = rest; deque = [] } );
                  ]
              | x :: deque ->
                  [
                    ( Printf.sprintf "pop %d" x,
                      { st with script = rest; deque; taken = x :: st.taken }
                    );
                  ])
        in
        let thief =
          if st.steals = 0 then []
          else
            match List.rev st.deque with
            | [] -> [ ("steal empty", { st with steals = st.steals - 1 }) ]
            | top :: rest_rev ->
                let deque =
                  if bug = Some Steal_no_remove then st.deque
                  else List.rev rest_rev
                in
                [
                  ( Printf.sprintf "steal %d" top,
                    {
                      st with
                      steals = st.steals - 1;
                      deque;
                      stolen = top :: st.stolen;
                    } );
                ]
        in
        owner @ thief

      (* Conservation + uniqueness: ids [0, next) are each in exactly
         one of deque / taken / stolen. *)
      let invariant st =
        let all = st.deque @ st.taken @ st.stolen in
        let seen = Array.make (max st.next 1) 0 in
        let bad = ref None in
        List.iter
          (fun id ->
            if id < 0 || id >= st.next then
              bad := Some (Printf.sprintf "unknown task id %d" id)
            else begin
              seen.(id) <- seen.(id) + 1;
              if seen.(id) > 1 then
                bad :=
                  Some
                    (Printf.sprintf "task %d duplicated (owner and thief)"
                       id)
            end)
          all;
        (match !bad with
        | None ->
            for id = 0 to st.next - 1 do
              if seen.(id) = 0 && !bad = None then
                bad := Some (Printf.sprintf "task %d lost" id)
            done
        | Some _ -> ());
        !bad

      let terminal_ok _ = None
    end : Modelcheck.MODEL
      with type state = state)

  let check ?bug ?(max_ops = 6) () =
    Modelcheck.explore (make_model ?bug ~max_ops ())
end

(* ------------------------------------------------------------------ *)
(* Mailbox: one sender (send / send_delayed / close), one receiver
   (recv / recv_timeout).  Safety: no message lost or duplicated;
   liveness at the bound: close wakes a blocked receiver.             *)

module Mailbox_model = struct
  type bug = No_close_wakeup | Drop_delayed

  type sop = Send | Send_delayed | Close
  type rop = Recv | Recv_timeout

  type state = {
    sends : sop list;  (** remaining sender operations *)
    recvs : rop list;  (** remaining receiver operations *)
    next : int;
    q : int list;  (** delivered queue, front first *)
    delayed : int list;  (** in flight, not yet delivered *)
    closed : bool;
    received : int list;
    closed_seen : int;  (** receiver ops that observed the close *)
    timeouts : int;
  }

  let make_model ?bug ~max_sends ~max_recvs () =
    (module struct
      type nonrec state = state

      let name = "mailbox"

      (* Sender scripts: every {Send, Send_delayed} sequence up to
         [max_sends] long with Close inserted at every position — the
         mailbox is always eventually closed, as the cluster runtime
         does.  Receiver scripts: every {Recv, Recv_timeout} sequence
         up to [max_recvs] long. *)
      let scenarios =
        let rec seqs alts k =
          if k = 0 then [ [] ]
          else
            let shorter = seqs alts (k - 1) in
            shorter
            @ List.concat_map
                (fun s -> List.map (fun a -> a :: s) alts)
                (List.filter (fun s -> List.length s = k - 1) shorter)
        in
        let rec insertions x = function
          | [] -> [ [ x ] ]
          | y :: rest ->
              (x :: y :: rest)
              :: List.map (fun s -> y :: s) (insertions x rest)
        in
        let sender_scripts =
          List.concat_map (insertions Close) (seqs [ Send; Send_delayed ] max_sends)
        in
        let recv_scripts = seqs [ Recv; Recv_timeout ] max_recvs in
        List.concat_map
          (fun sends ->
            List.map
              (fun recvs ->
                {
                  sends;
                  recvs;
                  next = 0;
                  q = [];
                  delayed = [];
                  closed = false;
                  received = [];
                  closed_seen = 0;
                  timeouts = 0;
                })
              recv_scripts)
          sender_scripts

      let transitions st =
        let sender =
          match st.sends with
          | [] -> []
          | Send :: rest ->
              if st.closed then [ ("send rejected", { st with sends = rest }) ]
              else
                [
                  ( Printf.sprintf "send %d" st.next,
                    {
                      st with
                      sends = rest;
                      q = st.q @ [ st.next ];
                      next = st.next + 1;
                    } );
                ]
          | Send_delayed :: rest ->
              if st.closed then [ ("send rejected", { st with sends = rest }) ]
              else
                [
                  ( Printf.sprintf "send_delayed %d" st.next,
                    {
                      st with
                      sends = rest;
                      delayed = st.delayed @ [ st.next ];
                      next = st.next + 1;
                    } );
                ]
          | Close :: rest -> [ ("close", { st with sends = rest; closed = true }) ]
        in
        let receiver =
          match st.recvs with
          | [] -> []
          | Recv :: rest -> (
              match st.q with
              | x :: q ->
                  [
                    ( Printf.sprintf "recv %d" x,
                      { st with recvs = rest; q; received = x :: st.received }
                    );
                  ]
              | [] ->
                  if st.closed && bug <> Some No_close_wakeup then
                    [
                      ( "recv closed",
                        {
                          st with
                          recvs = rest;
                          closed_seen = st.closed_seen + 1;
                        } );
                    ]
                  else [] (* blocked: no message and not (visibly) closed *))
          | Recv_timeout :: rest -> (
              match st.q with
              | x :: q ->
                  [
                    ( Printf.sprintf "recv_timeout %d" x,
                      { st with recvs = rest; q; received = x :: st.received }
                    );
                  ]
              | [] ->
                  if st.closed then
                    [
                      ( "recv_timeout closed",
                        {
                          st with
                          recvs = rest;
                          closed_seen = st.closed_seen + 1;
                        } );
                    ]
                  else
                    (* Timed out waiting; the wait is when in-flight
                       (delayed) messages land in the queue. *)
                    [
                      ( "recv_timeout expired",
                        {
                          st with
                          recvs = rest;
                          timeouts = st.timeouts + 1;
                          q =
                            (if bug = Some Drop_delayed then st.q
                             else st.q @ st.delayed);
                          delayed = [];
                        } );
                    ])
        in
        sender @ receiver

      (* Conservation + uniqueness: accepted messages [0, next) are
         each in exactly one of q / delayed / received. *)
      let invariant st =
        let all = st.q @ st.delayed @ st.received in
        let seen = Array.make (max st.next 1) 0 in
        let bad = ref None in
        List.iter
          (fun id ->
            if id < 0 || id >= st.next then
              bad := Some (Printf.sprintf "unknown message id %d" id)
            else begin
              seen.(id) <- seen.(id) + 1;
              if seen.(id) > 1 then
                bad := Some (Printf.sprintf "message %d duplicated" id)
            end)
          all;
        (match !bad with
        | None ->
            for id = 0 to st.next - 1 do
              if seen.(id) = 0 && !bad = None then
                bad := Some (Printf.sprintf "message %d lost" id)
            done
        | Some _ -> ());
        !bad

      (* A terminal state with receiver operations left means the
         receiver is blocked with no sender step coming: the close
         failed to wake it. *)
      let terminal_ok st =
        if st.recvs <> [] then
          Some
            (Printf.sprintf
               "receiver blocked with %d operation(s) pending after \
                close: close must wake blocked receivers"
               (List.length st.recvs))
        else None
    end : Modelcheck.MODEL
      with type state = state)

  let check ?bug ?(max_sends = 2) ?(max_recvs = 3) () =
    Modelcheck.explore (make_model ?bug ~max_sends ~max_recvs ())
end

(* ------------------------------------------------------------------ *)
(* Supervisor heartbeat / request lifecycle, generated from the reified
   wire-protocol spec.  Unlike the hand-maintained models above, every
   protocol decision here — what a Data frame does in each parent
   state, what EOF does, what the miss verdict and the respawn timer do
   — is looked up in [Protocol.spec] via [Protocol.action_for], so the
   model checked below and the running dispatcher read the same rule
   table and cannot silently drift.  Safety: no slice is lost (every
   admitted slice completes) and none double-completes, under child
   kills, lost pongs with miss-verdict SIGKILLs, spurious timeout
   re-issues, and respawn — within the budgets.                        *)

module Heartbeat_model = struct
  module Protocol = Triolet_runtime.Protocol

  type bug =
    | Forget_inflight
        (** EOF does not re-issue the dead child's in-flight slices *)
    | No_stale_filter
        (** a reply for an already-completed slice is applied again
            instead of being counted as a redelivery *)

  type slice =
    | Pending of int  (** not assigned; attempts consumed so far *)
    | Inflight of int * int  (** (node, attempt) of the newest send *)
    | Done of int  (** completions recorded — must stay 1 *)

  type child = {
    alive : bool;  (** the OS process exists *)
    cstate : string;  (** parent-side [Protocol.spec] state *)
    misses : int;  (** heartbeat misses charged so far *)
    tasks : (int * int) list;  (** received (slice, attempt), uncomputed *)
    outbox : (int * int) list;  (** computed replies buffered in the socket *)
  }

  type state = {
    slices : slice list;
    children : child list;
    kills : int;  (** remaining direct SIGKILL budget *)
    losses : int;  (** remaining lost-pong budget *)
    spurious : int;  (** remaining spurious timeout re-issue budget *)
    bad : string option;  (** a spec lookup came back unexpected *)
  }

  let miss_threshold = 2
  let max_attempts = 4

  (* [Protocol.spec] lookups.  The model never hard-codes a protocol
     decision: a missing or unexpected rule poisons the state ([bad])
     and fails the invariant, so spec and model cannot drift apart. *)
  let parent_action st cstate ev =
    match Protocol.(action_for spec ~role:Parent ~state:cstate ev) with
    | Some a -> Ok a
    | None ->
        Error
          { st with bad = Some ("no parent rule for " ^ Protocol.event_name ev) }

  let expect_goto st cstate ev =
    match parent_action st cstate ev with
    | Error s -> Error s
    | Ok (Protocol.Goto s) -> Ok s
    | Ok _ ->
        Error
          { st with bad = Some (Protocol.event_name ev ^ ": expected Goto") }

  let nth_set l i v = List.mapi (fun j x -> if j = i then v else x) l
  let child_ok c = c.alive && c.cstate = "live"

  (* The dispatcher's target pick, varied by attempt so a re-issue can
     move to another node. *)
  let pick_target st i a =
    let live =
      List.filteri (fun _ c -> child_ok c) st.children
      |> fun _ ->
      List.mapi (fun j c -> (j, c)) st.children
      |> List.filter_map (fun (j, c) -> if child_ok c then Some j else None)
    in
    match live with
    | [] -> None
    | _ -> Some (List.nth live ((i + a) mod List.length live))

  let make_model ?bug ~kills ~losses ~spurious ~n_slices () =
    (module struct
      type nonrec state = state

      let name = "heartbeat"

      let scenarios =
        [
          {
            slices = List.init n_slices (fun _ -> Pending 0);
            children =
              List.init 2 (fun _ ->
                  {
                    alive = true;
                    cstate = Protocol.(initial spec Parent);
                    misses = 0;
                    tasks = [];
                    outbox = [];
                  });
            kills;
            losses;
            spurious;
            bad = None;
          };
        ]

      let transitions st =
        if st.bad <> None then []
        else
          let send_to st i a j =
            let c = List.nth st.children j in
            {
              st with
              slices = nth_set st.slices i (Inflight (j, a));
              children =
                nth_set st.children j { c with tasks = c.tasks @ [ (i, a) ] };
            }
          in
          (* Assign / re-issue a pending slice to a live child. *)
          let assigns =
            List.concat
              (List.mapi
                 (fun i s ->
                   match s with
                   | Pending a when a < max_attempts -> (
                       match pick_target st i a with
                       | None -> []
                       | Some j ->
                           [
                             ( Printf.sprintf "assign s%d att%d @n%d" i
                                 (a + 1) j,
                               send_to st i (a + 1) j );
                           ])
                   | _ -> [])
                 st.slices)
          in
          (* Spurious timeout: the dispatcher re-issues a slice whose
             reply is merely late; the old target still owes one. *)
          let timeouts =
            if st.spurious = 0 then []
            else
              List.concat
                (List.mapi
                   (fun i s ->
                     match s with
                     | Inflight (_, a) when a < max_attempts -> (
                         match pick_target st i a with
                         | None -> []
                         | Some j ->
                             [
                               ( Printf.sprintf
                                   "timeout s%d reissue att%d @n%d" i (a + 1)
                                   j,
                                 send_to
                                   { st with spurious = st.spurious - 1 }
                                   i (a + 1) j );
                             ])
                     | _ -> [])
                   st.slices)
          in
          let per_child =
            List.concat
              (List.mapi
                 (fun j c ->
                   let set c' = nth_set st.children j c' in
                   (* Child computes its next received task. *)
                   let compute =
                     match c.tasks with
                     | t :: rest when c.alive ->
                         [
                           ( Printf.sprintf "n%d compute s%d" j (fst t),
                             {
                               st with
                               children =
                                 set
                                   {
                                     c with
                                     tasks = rest;
                                     outbox = c.outbox @ [ t ];
                                   };
                             } );
                         ]
                     | _ -> []
                   in
                   (* Parent reads the next buffered reply.  Socket
                      buffers outlive a SIGKILL, so delivery is legal
                      from a dead-but-not-yet-EOF child. *)
                   let deliver =
                     match c.outbox with
                     | (i, a) :: rest ->
                         let st' =
                           { st with children = set { c with outbox = rest } }
                         in
                         let next =
                           match
                             parent_action st' c.cstate
                               Protocol.(Recv Data)
                           with
                           | Error s -> s
                           | Ok Protocol.Drop -> st'
                           | Ok (Protocol.Stay | Protocol.Goto _) -> (
                               match List.nth st'.slices i with
                               | Done n ->
                                   if bug = Some No_stale_filter then
                                     {
                                       st' with
                                       slices =
                                         nth_set st'.slices i (Done (n + 1));
                                     }
                                   else st' (* redelivery: dropped *)
                               | Pending _ | Inflight _ ->
                                   {
                                     st' with
                                     slices = nth_set st'.slices i (Done 1);
                                   })
                         in
                         [ (Printf.sprintf "deliver s%d att%d from n%d" i a j, next) ]
                     | [] -> []
                   in
                   (* Direct kill (chaos): process gone, unread socket
                      data survives, unreceived tasks do not. *)
                   let kill =
                     if st.kills > 0 && c.alive then
                       [
                         ( Printf.sprintf "kill n%d" j,
                           {
                             st with
                             kills = st.kills - 1;
                             children = set { c with alive = false; tasks = [] };
                           } );
                       ]
                     else []
                   in
                   (* A pong is lost in flight: one miss charged. *)
                   let lose_pong =
                     if st.losses > 0 && child_ok c then
                       [
                         ( Printf.sprintf "n%d pong lost" j,
                           {
                             st with
                             losses = st.losses - 1;
                             children = set { c with misses = c.misses + 1 };
                           } );
                       ]
                     else []
                   in
                   (* A pong gets through: the miss counter resets. *)
                   let pong =
                     if c.alive && c.misses > 0 then
                       match parent_action st c.cstate Protocol.(Recv Pong) with
                       | Error s -> [ (Printf.sprintf "n%d pong (bad)" j, s) ]
                       | Ok _ ->
                           [
                             ( Printf.sprintf "n%d pong" j,
                               { st with children = set { c with misses = 0 } }
                             );
                           ]
                     else []
                   in
                   (* Miss verdict: SIGKILL, death funnels to EOF. *)
                   let miss_kill =
                     if c.alive && c.misses >= miss_threshold then
                       match parent_action st c.cstate Protocol.Miss_limit with
                       | Error s -> [ (Printf.sprintf "n%d verdict (bad)" j, s) ]
                       | Ok _ ->
                           [
                             ( Printf.sprintf "n%d miss verdict" j,
                               {
                                 st with
                                 children =
                                   set
                                     {
                                       c with
                                       alive = false;
                                       tasks = [];
                                       misses = 0;
                                     };
                               } );
                           ]
                     else []
                   in
                   (* EOF: strictly after buffered replies (socket
                      FIFO).  The spec moves the parent to backoff; the
                      dispatcher re-issues the dead child's in-flight
                      slices — unless the seeded bug forgets them. *)
                   let eof =
                     if (not c.alive) && c.cstate = "live" && c.outbox = []
                     then
                       match expect_goto st c.cstate Protocol.Eof with
                       | Error s -> [ (Printf.sprintf "n%d eof (bad)" j, s) ]
                       | Ok target ->
                           let slices =
                             if bug = Some Forget_inflight then st.slices
                             else
                               List.map
                                 (fun s ->
                                   match s with
                                   | Inflight (n, a) when n = j -> Pending a
                                   | s -> s)
                                 st.slices
                           in
                           [
                             ( Printf.sprintf "n%d eof" j,
                               {
                                 st with
                                 slices;
                                 children = set { c with cstate = target };
                               } );
                           ]
                     else []
                   in
                   (* Respawn after backoff: fresh incarnation. *)
                   let respawn =
                     if c.cstate = "backoff" then
                       match expect_goto st c.cstate Protocol.Backoff_elapsed with
                       | Error s -> [ (Printf.sprintf "n%d respawn (bad)" j, s) ]
                       | Ok target ->
                           [
                             ( Printf.sprintf "n%d respawn" j,
                               {
                                 st with
                                 children =
                                   set
                                     {
                                       alive = true;
                                       cstate = target;
                                       misses = 0;
                                       tasks = [];
                                       outbox = [];
                                     };
                               } );
                           ]
                     else []
                   in
                   compute @ deliver @ kill @ lose_pong @ pong @ miss_kill
                   @ eof @ respawn)
                 st.children)
          in
          assigns @ timeouts @ per_child

      (* Safety at every state: the spec always had a rule, and no
         slice ever completes twice. *)
      let invariant st =
        match st.bad with
        | Some msg -> Some msg
        | None ->
            List.find_map
              (fun s ->
                match s with
                | Done n when n > 1 ->
                    Some (Printf.sprintf "slice double-completed (%d)" n)
                | _ -> None)
              st.slices

      (* At the bound: every slice completed exactly once and every
         child came back live (no heartbeat/respawn livelock). *)
      let terminal_ok st =
        let lost =
          List.find_map
            (fun s ->
              match s with
              | Done 1 -> None
              | Done n -> Some (Printf.sprintf "slice completed %d times" n)
              | Pending _ | Inflight _ -> Some "slice lost: never completed")
            st.slices
        in
        match lost with
        | Some _ -> lost
        | None ->
            if List.for_all child_ok st.children then None
            else Some "child never returned to live (respawn livelock)"
    end : Modelcheck.MODEL
      with type state = state)

  let check ?bug ?(kills = 1) ?(losses = 2) ?(spurious = 1) ?(n_slices = 2) ()
      =
    Modelcheck.explore (make_model ?bug ~kills ~losses ~spurious ~n_slices ())
end

(* ------------------------------------------------------------------ *)
(* Darray segment-version protocol: one parent, one resident child,
   versioned segments shipped as Seg_put and revalidated as key-only
   Seg_reuse.  Safety: a task only ever computes against exactly the
   segment versions the parent believes current — a stale resident copy
   must be refused (child-side version check) or re-shipped
   (parent-side delta tracking), never silently used.                  *)

module Segment_model = struct
  type bug =
    | Stale_reuse
        (** the parent treats "child holds {e some} version" as "child
            holds the {e current} version" and sends a key-only reuse
            naming the stale version after an update — the child's
            check passes (it does hold that version) and the compute
            runs on stale data *)
    | Skip_version_check
        (** the child accepts any [Seg_reuse]/task key without
            checking its table — a parent that forgot a crash wiped
            the child then computes against a lost or stale segment *)

  type frame =
    | Put of int * int  (** segment, version *)
    | Reuse of int * int
    | Task of (int * int) list  (** keys the round claims to run on *)

  type state = {
    truth : int list;  (** parent-side current version per segment *)
    believed : int option list;  (** what the parent thinks the child holds *)
    child : int option list;  (** the child's resident table *)
    wire : frame list;  (** in-flight frames, FIFO *)
    inflight : bool;  (** a round is issued and not yet computed *)
    rounds : int;  (** rounds still to complete *)
    updates : int;  (** remaining update budget *)
    crashes : int;  (** remaining crash budget *)
    done_rounds : int;
    bad : string option;  (** a compute saw a wrong version *)
  }

  let nth_set l i v = List.mapi (fun j x -> if j = i then v else x) l

  let make_model ?bug ~n_segs ~rounds ~updates ~crashes () =
    (module struct
      type nonrec state = state

      let name = "segment"

      let scenarios =
        [
          {
            truth = List.init n_segs (fun _ -> 1);
            believed = List.init n_segs (fun _ -> None);
            child = List.init n_segs (fun _ -> None);
            wire = [];
            inflight = false;
            rounds;
            updates;
            crashes;
            done_rounds = 0;
            bad = None;
          };
        ]

      let transitions st =
        if st.bad <> None then []
        else
          (* Parent updates a segment between rounds: version bump;
             the believed map is untouched (that is the point — the
             next issue must notice the divergence). *)
          let update =
            if st.updates = 0 || st.inflight then []
            else
              List.init (List.length st.truth) (fun i ->
                  ( Printf.sprintf "update seg%d -> v%d" i
                      (List.nth st.truth i + 1),
                    {
                      st with
                      updates = st.updates - 1;
                      truth = nth_set st.truth i (List.nth st.truth i + 1);
                    } ))
          in
          (* Issue a round: per segment, a put if the believed version
             disagrees with truth, a key-only reuse otherwise.  The
             Stale_reuse bug reuses whenever the child holds anything. *)
          let issue =
            if st.inflight || st.rounds = 0 then []
            else
              let frames, believed, keys =
                List.fold_left
                  (fun (fs, bel, ks) i ->
                    let v = List.nth st.truth i in
                    let b = List.nth st.believed i in
                    let matches =
                      match (bug, b) with
                      | Some Stale_reuse, Some bv -> Some bv
                      | _, Some bv when bv = v -> Some bv
                      | _ -> None
                    in
                    match matches with
                    | Some bv ->
                        (fs @ [ Reuse (i, bv) ], bel, ks @ [ (i, bv) ])
                    | None ->
                        ( fs @ [ Put (i, v) ],
                          nth_set bel i (Some v),
                          ks @ [ (i, v) ] ))
                  ([], st.believed, [])
                  (List.init (List.length st.truth) Fun.id)
              in
              [
                ( "issue round",
                  {
                    st with
                    wire = st.wire @ frames @ [ Task keys ];
                    believed;
                    inflight = true;
                  } );
              ]
          in
          (* Child processes the next frame.  A version check failure
             is a Nack: the wire drains and the parent forgets its
             belief in the offending segment, so the next issue ships
             a put — the protocol self-heals instead of computing. *)
          let child_step =
            match st.wire with
            | [] -> []
            | f :: wire -> (
                let nack i =
                  ( Printf.sprintf "nack seg%d" i,
                    {
                      st with
                      wire = [];
                      inflight = false;
                      believed = nth_set st.believed i None;
                    } )
                in
                match f with
                | Put (i, v) ->
                    [
                      ( Printf.sprintf "put seg%d v%d" i v,
                        { st with wire; child = nth_set st.child i (Some v) }
                      );
                    ]
                | Reuse (i, v) ->
                    if
                      bug = Some Skip_version_check
                      || List.nth st.child i = Some v
                    then
                      [ (Printf.sprintf "reuse seg%d v%d" i v, { st with wire }) ]
                    else [ nack i ]
                | Task keys -> (
                    let mismatch =
                      if bug = Some Skip_version_check then None
                      else
                        List.find_opt
                          (fun (i, v) -> List.nth st.child i <> Some v)
                          keys
                    in
                    match mismatch with
                    | Some (i, _) -> [ nack i ]
                    | None ->
                        (* Compute.  Safety: the versions the child
                           actually holds are the parent's current
                           truth for every key of the round. *)
                        let stale =
                          List.find_opt
                            (fun (i, _) ->
                              List.nth st.child i
                              <> Some (List.nth st.truth i))
                            keys
                        in
                        let st' =
                          {
                            st with
                            wire;
                            inflight = false;
                            rounds = st.rounds - 1;
                            done_rounds = st.done_rounds + 1;
                          }
                        in
                        [
                          ( "compute",
                            match stale with
                            | Some (i, _) ->
                                {
                                  st' with
                                  bad =
                                    Some
                                      (Printf.sprintf
                                         "computed with stale seg%d: child \
                                          holds %s, truth v%d"
                                         i
                                         (match List.nth st.child i with
                                         | Some v -> Printf.sprintf "v%d" v
                                         | None -> "nothing")
                                         (List.nth st.truth i));
                                }
                            | None -> st' );
                        ]))
          in
          (* Crash: the child's table is gone; EOF makes the parent
             drop the round and its residency beliefs (the real
             implementation resets the believed map on EOF).  The
             Skip_version_check bug pairs the disabled child check
             with a parent that forgets the reset — the exact failure
             the check is the defense-in-depth against. *)
          let crash =
            if st.crashes = 0 then []
            else
              [
                ( "crash+respawn",
                  {
                    st with
                    crashes = st.crashes - 1;
                    child = List.map (fun _ -> None) st.child;
                    wire = [];
                    inflight = false;
                    believed =
                      (if bug = Some Skip_version_check then st.believed
                       else List.map (fun _ -> None) st.believed);
                  } );
              ]
          in
          update @ issue @ child_step @ crash

      let invariant st = st.bad

      (* At the bound every requested round computed. *)
      let terminal_ok st =
        if st.rounds > 0 then
          Some
            (Printf.sprintf "%d round(s) never computed (residency livelock)"
               st.rounds)
        else None
    end : Modelcheck.MODEL
      with type state = state)

  let check ?bug ?(n_segs = 2) ?(rounds = 2) ?(updates = 2) ?(crashes = 1) ()
      =
    Modelcheck.explore (make_model ?bug ~n_segs ~rounds ~updates ~crashes ())
end
