(** Bounded exhaustive interleaving explorer.

    A {!MODEL} is an operational semantics for a small concurrent
    protocol: scenario initial states, labeled transitions (each the
    atomic step of one worker), a safety invariant checked at *every*
    reachable state, and a terminal-state check (deadlock / liveness at
    the bound).  [explore] enumerates every reachable state of every
    scenario by memoized breadth-first search — interleavings that
    converge to the same state are explored once, a partial-order
    reduction by state canonicalization — and reports the exact number
    of distinct interleavings via path counting over the acyclic state
    graph (every transition consumes a script operation, so the graph
    is a DAG).

    The first invariant or terminal violation aborts exploration and is
    reported with its scenario index and a {e minimal} witness: states
    are expanded in breadth-first order and each records the edge that
    first discovered it, so the reported trace is a shortest event
    sequence from the initial state to the bad one — the
    counterexample a human actually wants to read. *)

module type MODEL = sig
  type state

  val name : string

  val scenarios : state list
  (** Initial states, one per scenario (script combination) to check. *)

  val transitions : state -> (string * state) list
  (** Enabled atomic steps, labeled for traces.  A state with no
      transitions is terminal. *)

  val invariant : state -> string option
  (** [Some msg] iff the state violates safety. *)

  val terminal_ok : state -> string option
  (** [Some msg] iff a terminal state is wrong (e.g. a receiver still
      blocked that should have been woken). *)
end

type violation = {
  scenario : int;  (** index into [scenarios] *)
  message : string;
  trace : string list;  (** transition labels from the initial state *)
}

type report = {
  model : string;
  scenarios : int;
  states : int;  (** distinct states explored, summed over scenarios *)
  interleavings : int;  (** exact count of distinct maximal executions *)
  violation : violation option;
}

exception Found of violation

let explore (type s) (module M : MODEL with type state = s) : report =
  let states = ref 0 and interleavings = ref 0 in
  let violation = ref None in
  (try
     List.iteri
       (fun si init ->
         (* BFS with parent pointers: the first edge to discover a
            state is on a shortest path to it, so reconstructing
            through [parent] yields a minimal witness trace. *)
         let visited : (s, unit) Hashtbl.t = Hashtbl.create 256 in
         let parent : (s, (s * string) option) Hashtbl.t =
           Hashtbl.create 256
         in
         let trace_to st =
           let rec go st acc =
             match Hashtbl.find parent st with
             | None -> acc
             | Some (p, lbl) -> go p (lbl :: acc)
           in
           go st []
         in
         let fail st message = raise (Found { scenario = si; message; trace = trace_to st }) in
         let q = Queue.create () in
         Hashtbl.add visited init ();
         Hashtbl.add parent init None;
         Queue.push init q;
         while not (Queue.is_empty q) do
           let st = Queue.pop q in
           (match M.invariant st with
           | Some message -> fail st message
           | None -> ());
           match M.transitions st with
           | [] -> (
               match M.terminal_ok st with
               | Some message -> fail st message
               | None -> ())
           | ts ->
               List.iter
                 (fun (lbl, st') ->
                   if not (Hashtbl.mem visited st') then begin
                     Hashtbl.add visited st' ();
                     Hashtbl.add parent st' (Some (st, lbl));
                     Queue.push st' q
                   end)
                 ts
         done;
         (* Exact interleaving count: path-count DP over the DAG of
            states (memoized on canonical states, so shared suffixes
            are counted once but multiplied by their multiplicity). *)
         let paths : (s, int) Hashtbl.t = Hashtbl.create 256 in
         let rec count st =
           match Hashtbl.find_opt paths st with
           | Some n -> n
           | None ->
               let n =
                 match M.transitions st with
                 | [] -> 1
                 | ts ->
                     List.fold_left
                       (fun acc (_, st') -> acc + count st')
                       0 ts
               in
               Hashtbl.add paths st n;
               n
         in
         states := !states + Hashtbl.length visited;
         interleavings := !interleavings + count init)
       M.scenarios
   with Found v -> violation := Some v);
  {
    model = M.name;
    scenarios = List.length M.scenarios;
    states = !states;
    interleavings = !interleavings;
    violation = !violation;
  }

let report_to_string r =
  match r.violation with
  | None ->
      Printf.sprintf
        "model %-10s ok: %d scenarios, %d states, %d interleavings" r.model
        r.scenarios r.states r.interleavings
  | Some v ->
      Printf.sprintf
        "model %-10s VIOLATION in scenario %d: %s\n  trace: %s" r.model
        v.scenario v.message
        (match v.trace with [] -> "(initial state)" | t -> String.concat " -> " t)
