(** Bounded exhaustive interleaving explorer for small concurrent
    protocol models.  Memoized BFS over canonical states (a light
    partial-order reduction: interleavings converging to the same state
    are explored once), invariant checked at every reachable state,
    exact interleaving counts by path-counting over the acyclic state
    graph.  On violation the reported trace is a {e minimal} witness:
    a shortest event sequence from the initial state to the bad
    state. *)

module type MODEL = sig
  type state

  val name : string

  val scenarios : state list
  (** Initial states, one per scenario to check. *)

  val transitions : state -> (string * state) list
  (** Enabled atomic steps, labeled for traces; [] means terminal.
      Every transition must consume script work so the state graph is
      acyclic. *)

  val invariant : state -> string option
  (** [Some msg] iff the state violates safety. *)

  val terminal_ok : state -> string option
  (** [Some msg] iff a terminal state is wrong (deadlock etc.). *)
end

type violation = {
  scenario : int;  (** index into [scenarios] *)
  message : string;
  trace : string list;
      (** minimal witness: transition labels of a shortest path from
          the initial state to the violating state *)
}

type report = {
  model : string;
  scenarios : int;
  states : int;  (** distinct states explored, summed over scenarios *)
  interleavings : int;  (** exact count of distinct maximal executions *)
  violation : violation option;  (** first violation, if any *)
}

val explore : (module MODEL with type state = 's) -> report
(** Exhaustively explore every scenario; stops at the first
    violation. *)

val report_to_string : report -> string
