examples/comprehensions.ml: Array Config Iter List Printf Seq_iter Triolet Triolet_runtime
