examples/potential_grid.ml: Config Cutcp Dataset Float Iter Printf Triolet Triolet_kernels Triolet_runtime
