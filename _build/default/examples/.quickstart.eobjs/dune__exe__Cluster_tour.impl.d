examples/cluster_tour.ml: Config Float Iter List Printf Triolet Triolet_runtime
