examples/quickstart.mli:
