examples/cluster_tour.mli:
