examples/matmul_block.ml: Config Iter2 Matrix Printf Triolet Triolet_base Triolet_runtime
