examples/correlation.mli:
