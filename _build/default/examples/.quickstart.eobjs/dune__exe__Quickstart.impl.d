examples/quickstart.ml: Array Config Float Iter Printf Seq_iter Triolet Triolet_runtime
