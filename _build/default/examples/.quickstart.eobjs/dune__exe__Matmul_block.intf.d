examples/matmul_block.mli:
