examples/correlation.ml: Array Config Dataset Printf Tpacf Triolet Triolet_kernels Triolet_runtime
