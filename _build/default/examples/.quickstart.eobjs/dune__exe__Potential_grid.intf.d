examples/potential_grid.mli:
