examples/comprehensions.mli:
