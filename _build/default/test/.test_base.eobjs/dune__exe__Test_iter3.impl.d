test/test_iter3.ml: Alcotest Array Config Float Grid3 Iter Iter3 List QCheck2 QCheck_alcotest Triolet Triolet_kernels Triolet_runtime
