test/test_baselines.ml: Alcotest Bytes Float Fun List QCheck2 QCheck_alcotest Triolet_base Triolet_baselines
