test/test_seq_iter.ml: Alcotest Array Collector Float Indexer List Option QCheck2 QCheck_alcotest Seq_iter Shape Stepper Triolet Triolet_runtime
