test/test_sim.ml: Alcotest App_model Heap List Netmodel Printf Profile QCheck2 QCheck_alcotest Sched_sim Simclock Speedup Triolet_sim
