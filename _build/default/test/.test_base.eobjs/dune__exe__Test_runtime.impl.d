test/test_runtime.ml: Alcotest Array Bytes Cluster Domain Float Fun Int64 List Mailbox Partition Pool QCheck2 QCheck_alcotest Stats Triolet_base Triolet_runtime Wsdeque
