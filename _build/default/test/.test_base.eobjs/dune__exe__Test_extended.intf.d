test/test_extended.mli:
