test/test_extended.ml: Alcotest Array Bytes Collector Config Float Folder Fun Iter List QCheck2 QCheck_alcotest Seq Seq_iter Stepper Triolet Triolet_base Triolet_runtime
