test/test_iter2.mli:
