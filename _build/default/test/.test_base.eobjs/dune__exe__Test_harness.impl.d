test/test_harness.ml: Alcotest List Triolet_harness Triolet_kernels Triolet_sim
