test/test_iter.ml: Alcotest Array Config Float Fun Iter List QCheck2 QCheck_alcotest Seq_iter Triolet Triolet_base Triolet_runtime
