test/test_iter2.ml: Alcotest Array Config Float Iter Iter2 List Matrix QCheck2 QCheck_alcotest Triolet Triolet_base Triolet_runtime
