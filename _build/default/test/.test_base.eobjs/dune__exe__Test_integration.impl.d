test/test_integration.ml: Alcotest Array Config Cutcp Dataset Float Iter List Mriq Printf QCheck2 QCheck_alcotest Seq_iter Sgemm Tpacf Triolet Triolet_base Triolet_kernels Triolet_runtime
