test/test_kernels.ml: Alcotest Array Config Cutcp Dataset Float Iter Iter2 List Matrix Models Mriq QCheck2 QCheck_alcotest Sgemm Tpacf Triolet Triolet_base Triolet_kernels Triolet_runtime Triolet_sim
