test/test_iter3.mli:
