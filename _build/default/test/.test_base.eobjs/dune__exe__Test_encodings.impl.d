test/test_encodings.ml: Alcotest Array Collector Float Folder Fun Indexer List QCheck2 QCheck_alcotest Shape Stepper Triolet Triolet_base Triolet_runtime
