test/test_seq_iter.mli:
