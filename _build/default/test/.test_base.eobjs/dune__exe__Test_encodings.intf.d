test/test_encodings.mli:
