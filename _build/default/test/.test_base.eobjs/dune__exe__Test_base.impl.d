test/test_base.ml: Alcotest Array Bytes Codec Float List Payload QCheck2 QCheck_alcotest Rng Rw Triolet_base Vec
