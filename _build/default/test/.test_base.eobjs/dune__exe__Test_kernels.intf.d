test/test_kernels.mli:
