(* Tests for the Eden-model baseline: list skeleton semantics, chunking,
   and the serializing process farm (whole-structure serialization with
   byte accounting). *)

module E = Triolet_baselines.Eden_list
module Codec = Triolet_base.Codec

let check_int = Alcotest.(check int)
let check_il = Alcotest.(check (list int))

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Skeleton semantics                                                  *)

let test_skeletons () =
  check_il "map" [ 2; 4 ] (E.map (( * ) 2) [ 1; 2 ]);
  check_il "filter" [ 2 ] (E.filter (fun x -> x mod 2 = 0) [ 1; 2; 3 ]);
  check_il "concat_map" [ 0; 0; 1 ] (E.concat_map (fun n -> List.init n Fun.id) [ 1; 2 ]);
  Alcotest.(check (list (pair int string)))
    "zip" [ (1, "a") ] (E.zip [ 1 ] [ "a" ]);
  check_int "fold" 6 (E.fold ( + ) 0 [ 1; 2; 3 ]);
  Alcotest.(check (float 0.0)) "sum_float" 6.0 (E.sum_float [ 1.0; 2.0; 3.0 ])

let test_zip3 () =
  Alcotest.(check (list (triple int int int)))
    "zip3"
    [ (1, 10, 100); (2, 20, 200) ]
    (E.zip3 [ 1; 2 ] [ 10; 20 ] [ 100; 200 ])

let test_histograms () =
  Alcotest.(check (array int)) "histogram" [| 2; 1 |]
    (E.histogram ~bins:2 [ 0; 1; 0; 7; -3 ]);
  let wh = E.weighted_histogram ~bins:2 [ (0, 1.5); (1, 2.0); (0, 0.5) ] in
  Alcotest.(check (float 1e-12)) "weighted" 2.0 (Float.Array.get wh 0)

(* ------------------------------------------------------------------ *)
(* Chunking                                                            *)

let test_chunk_shapes () =
  Alcotest.(check (list (list int)))
    "even" [ [ 1; 2 ]; [ 3; 4 ] ]
    (E.chunk ~parts:2 [ 1; 2; 3; 4 ]);
  Alcotest.(check (list (list int)))
    "uneven" [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (E.chunk ~parts:3 [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list (list int)))
    "more parts than items" [ [ 1 ]; [ 2 ] ]
    (E.chunk ~parts:5 [ 1; 2 ]);
  Alcotest.(check (list (list int))) "empty" [] (E.chunk ~parts:3 [])

let prop_chunk_concat =
  qtest "chunks concatenate to the input"
    QCheck2.Gen.(pair (list_size (int_bound 50) int) (int_range 1 9))
    (fun (l, parts) -> List.concat (E.chunk ~parts l) = l)

let prop_chunk_balanced =
  qtest "chunk sizes differ by at most 1"
    QCheck2.Gen.(pair (list_size (int_bound 60) int) (int_range 1 9))
    (fun (l, parts) ->
      match E.chunk ~parts l with
      | [] -> l = []
      | chunks ->
          let sizes = List.map List.length chunks in
          let mn = List.fold_left min max_int sizes in
          let mx = List.fold_left max 0 sizes in
          mx - mn <= 1)

(* ------------------------------------------------------------------ *)
(* Farm: whole-structure serialization                                 *)

let test_farm_results_in_order () =
  let results, bytes =
    E.farm ~processes:3 ~codec:Codec.int
      ~f:(fun chunk -> List.fold_left ( + ) 0 chunk)
      (List.init 10 Fun.id)
  in
  check_il "per-process sums" [ 0 + 1 + 2 + 3; 4 + 5 + 6; 7 + 8 + 9 ] results;
  (* 10 ints at 8 bytes plus one list header per chunk *)
  check_int "bytes counted" ((10 * 8) + (3 * 8)) bytes

let test_farm_reduce () =
  let total, _ =
    E.farm_reduce ~processes:4 ~codec:Codec.int
      ~f:(fun chunk -> List.length chunk)
      ~merge:( + ) ~init:0
      (List.init 13 Fun.id)
  in
  check_int "total" 13 total

let test_farm_isolation () =
  (* The farm decodes fresh structure: mutating what the worker received
     cannot affect the caller's data. *)
  let data = [ Bytes.of_string "abc" ] in
  let codec =
    Codec.map ~inj:Bytes.of_string ~proj:Bytes.to_string Codec.string
  in
  let _, _ =
    E.farm ~processes:1 ~codec
      ~f:(fun chunk ->
        List.iter (fun b -> Bytes.set b 0 'X') chunk;
        ())
      data
  in
  Alcotest.(check string) "caller's data untouched" "abc"
    (Bytes.to_string (List.hd data))

let test_farm_bytes_scale_with_whole_structure () =
  (* Every element is serialized exactly once regardless of process
     count (chunks partition the list), but the *whole* structure always
     moves — there is no slicing to what each worker uses. *)
  let l = List.init 100 float_of_int in
  let bytes_for p =
    snd (E.farm ~processes:p ~codec:Codec.float ~f:(fun _ -> ()) l)
  in
  let b2 = bytes_for 2 and b5 = bytes_for 5 in
  check_int "2 processes" ((100 * 8) + (2 * 8)) b2;
  check_int "5 processes" ((100 * 8) + (5 * 8)) b5

let prop_farm_equals_direct =
  qtest "farm-reduce = direct fold"
    QCheck2.Gen.(pair (list_size (int_bound 40) (int_range 0 100)) (int_range 1 6))
    (fun (l, p) ->
      let direct = List.fold_left ( + ) 0 l in
      let farmed, _ =
        E.farm_reduce ~processes:p ~codec:Codec.int
          ~f:(List.fold_left ( + ) 0)
          ~merge:( + ) ~init:0 l
      in
      farmed = direct)

let () =
  Alcotest.run "baselines"
    [
      ( "skeletons",
        [
          Alcotest.test_case "basics" `Quick test_skeletons;
          Alcotest.test_case "zip3" `Quick test_zip3;
          Alcotest.test_case "histograms" `Quick test_histograms;
        ] );
      ( "chunk",
        [
          Alcotest.test_case "shapes" `Quick test_chunk_shapes;
          prop_chunk_concat;
          prop_chunk_balanced;
        ] );
      ( "farm",
        [
          Alcotest.test_case "results in order" `Quick
            test_farm_results_in_order;
          Alcotest.test_case "farm_reduce" `Quick test_farm_reduce;
          Alcotest.test_case "isolation" `Quick test_farm_isolation;
          Alcotest.test_case "whole-structure bytes" `Quick
            test_farm_bytes_scale_with_whole_structure;
          prop_farm_equals_direct;
        ] );
    ]
