(* Tests for the discrete-event simulator: heap, clock, network model,
   scheduling policies, and the qualitative laws the paper's figures
   rest on (more cores -> not slower; communication-bound apps
   saturate; Eden's buffer limit fails sgemm; GC overhead shows up). *)

open Triolet_sim

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k (int_of_float k)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_heap_duplicates_and_peek () =
  let h = Heap.create () in
  Heap.push h 1.0 "a";
  Heap.push h 1.0 "b";
  Alcotest.(check (option (float 0.0))) "peek" (Some 1.0) (Heap.peek_key h);
  check_int "len" 2 (Heap.length h);
  ignore (Heap.pop h);
  ignore (Heap.pop h);
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let prop_heap_sorts =
  qtest "heap = sort" QCheck2.Gen.(list (float_bound_inclusive 1000.0))
    (fun l ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h k k) l;
      let rec drain acc =
        match Heap.pop h with
        | Some (k, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort compare l)

(* ------------------------------------------------------------------ *)
(* Simclock                                                            *)

let test_clock_event_order () =
  let c = Simclock.create () in
  let log = ref [] in
  Simclock.schedule c 2.0 (fun _ -> log := 2 :: !log);
  Simclock.schedule c 1.0 (fun clk ->
      log := 1 :: !log;
      (* events may schedule further events *)
      Simclock.schedule_in clk 0.5 (fun _ -> log := 15 :: !log));
  Simclock.run c;
  Alcotest.(check (list int)) "order" [ 1; 15; 2 ] (List.rev !log);
  check_float "final time" 2.0 (Simclock.now c);
  check_int "processed" 3 (Simclock.events_processed c)

let test_clock_rejects_past () =
  let c = Simclock.create () in
  Simclock.schedule c 5.0 (fun clk ->
      Alcotest.check_raises "past"
        (Invalid_argument "Simclock.schedule: time in the past") (fun () ->
          Simclock.schedule clk 1.0 (fun _ -> ())));
  Simclock.run c

(* ------------------------------------------------------------------ *)
(* Netmodel                                                            *)

let test_net_transfer_time () =
  let net = Netmodel.make ~latency:1e-3 ~bytes_per_sec:1e6 () in
  check_float "latency only" 1e-3 (Netmodel.transfer_time net 0);
  check_float "with bytes" (1e-3 +. 0.5) (Netmodel.transfer_time net 500_000)

let test_net_message_limit () =
  let net = Netmodel.make ~max_message_bytes:100 () in
  check_float "under limit ok" (Netmodel.transfer_time net 100)
    (Netmodel.transfer_time net 100);
  Alcotest.(check bool) "over limit raises" true
    (try
       ignore (Netmodel.transfer_time net 101);
       false
     with Netmodel.Message_too_large { bytes = 101; limit = 100 } -> true)

(* ------------------------------------------------------------------ *)
(* Sched_sim on synthetic apps                                         *)

let uniform_app ?(tasks = 1024) ?(cost = 1e-3) ?(in_bytes = 0) ?(out_bytes = 0)
    ?(node_out = 0) ?(setup = 0.0) () =
  App_model.make ~name:"synthetic" ~tasks
    ~task_cost:(fun _ -> cost)
    ~task_in_bytes:(fun _ -> in_bytes)
    ~whole_in_bytes:(tasks * in_bytes)
    ~task_out_bytes:(fun _ -> out_bytes)
    ~node_out_bytes:node_out ~seq_setup_time:setup ()

let ideal_profile =
  (* No communication costs at all: pure compute scaling. *)
  {
    (Profile.cmpi ()) with
    Profile.task_overhead = 0.0;
    serialize_bytes_per_sec = infinity;
    net = Netmodel.make ~latency:0.0 ~bytes_per_sec:infinity ();
  }

let run_ok app profile machine =
  match Sched_sim.run app profile machine with
  | Sched_sim.Completed b -> b
  | Sched_sim.Failed m -> Alcotest.failf "unexpected failure: %s" m

let test_ideal_linear_scaling () =
  let app = uniform_app () in
  let seq = App_model.sequential_time app in
  let b =
    run_ok app ideal_profile { Sched_sim.nodes = 4; cores_per_node = 4 }
  in
  let speedup = seq /. b.Sched_sim.total in
  Alcotest.(check bool) "nearly linear" true (speedup > 15.2 && speedup <= 16.0001)

let test_single_core_matches_sequential () =
  let app = uniform_app () in
  let b = run_ok app ideal_profile { Sched_sim.nodes = 1; cores_per_node = 1 } in
  Alcotest.(check (float 1e-6)) "1 core = seq time"
    (App_model.sequential_time app)
    b.Sched_sim.total

let test_efficiency_scales_time () =
  let app = uniform_app () in
  let half =
    { ideal_profile with Profile.seq_efficiency = (fun _ -> 0.5) }
  in
  let b1 = run_ok app ideal_profile { Sched_sim.nodes = 1; cores_per_node = 1 } in
  let b2 = run_ok app half { Sched_sim.nodes = 1; cores_per_node = 1 } in
  Alcotest.(check (float 1e-6)) "half efficiency = double time"
    (2.0 *. b1.Sched_sim.total) b2.Sched_sim.total

let test_more_cores_not_slower () =
  let app = uniform_app ~in_bytes:800 ~out_bytes:80 () in
  List.iter
    (fun p ->
      let t n =
        (run_ok app p { Sched_sim.nodes = n; cores_per_node = 16 }).Sched_sim.total
      in
      let rec mono n prev =
        if n > 8 then ()
        else begin
          let t' = t n in
          Alcotest.(check bool)
            (Printf.sprintf "%s %d nodes not slower" p.Profile.name n)
            true
            (t' <= prev *. 1.05);
          mono (n + 1) t'
        end
      in
      mono 2 (t 1))
    [ Profile.cmpi (); Profile.triolet () ]

let test_communication_bound_saturates () =
  (* Huge per-node output: adding nodes cannot keep scaling because the
     main process merges results sequentially. *)
  let app =
    uniform_app ~tasks:4096 ~cost:1e-4 ~node_out:(32 * 1024 * 1024) ()
  in
  let p = Profile.triolet () in
  let seq = App_model.sequential_time app in
  let s n =
    seq /. (run_ok app p { Sched_sim.nodes = n; cores_per_node = 16 }).Sched_sim.total
  in
  let s1 = s 1 and s8 = s 8 in
  Alcotest.(check bool) "saturation: 8 nodes < 3x of 1 node" true
    (s8 < 3.0 *. s1)

let test_setup_limits_scaling () =
  (* Amdahl: with a sequential setup of half the work, speedup < 2 even
     on 128 cores for a profile without shared-memory setup. *)
  let app = uniform_app ~setup:(1024.0 *. 1e-3) () in
  let eden_like = { (Profile.eden ()) with Profile.seq_efficiency = (fun _ -> 1.0) } in
  let seq = App_model.sequential_time app in
  let b = run_ok app eden_like { Sched_sim.nodes = 8; cores_per_node = 16 } in
  Alcotest.(check bool) "Amdahl bound" true (seq /. b.Sched_sim.total < 2.0);
  (* Shared-memory runtimes parallelize the setup over one node. *)
  let b2 = run_ok app (Profile.cmpi ()) { Sched_sim.nodes = 8; cores_per_node = 16 } in
  Alcotest.(check bool) "localpar setup helps" true
    (b2.Sched_sim.total < b.Sched_sim.total)

let test_message_limit_fails () =
  let app = uniform_app ~tasks:1024 ~in_bytes:(1024 * 1024) () in
  (* Eden ships the whole input to every process: 1 GiB messages. *)
  let p = Profile.eden () in
  match Sched_sim.run app p { Sched_sim.nodes = 2; cores_per_node = 16 } with
  | Sched_sim.Failed _ -> ()
  | Sched_sim.Completed _ -> Alcotest.fail "expected message-buffer failure"

let test_gc_overhead_counted () =
  let app =
    App_model.make ~name:"alloc" ~tasks:64
      ~task_cost:(fun _ -> 1e-3)
      ~task_alloc_bytes:(fun _ -> 10_000_000)
      ()
  in
  let p = Profile.triolet () in
  let b = run_ok app p { Sched_sim.nodes = 1; cores_per_node = 4 } in
  Alcotest.(check bool) "gc time positive" true (b.Sched_sim.gc_time > 0.0);
  let nogc = { p with Profile.gc_sec_per_byte = 0.0 } in
  let b2 = run_ok app nogc { Sched_sim.nodes = 1; cores_per_node = 4 } in
  Alcotest.(check bool) "gc slows the run" true
    (b.Sched_sim.total > b2.Sched_sim.total)

let test_overdecomposition_balances_irregular () =
  (* Irregular unit costs, statically blocked: the expensive block
     straggles. Over-decomposed round-robin spreads it. *)
  let app =
    App_model.make ~name:"skewed" ~tasks:256
      ~task_cost:(fun i -> if i < 32 then 16e-3 else 1e-3)
      ()
  in
  let machine = { Sched_sim.nodes = 8; cores_per_node = 1 } in
  let static =
    { ideal_profile with Profile.node_scheduling = Profile.Static_blocks }
  in
  let over =
    { ideal_profile with Profile.node_scheduling = Profile.Overdecomposed 8 }
  in
  let ts = (run_ok app static machine).Sched_sim.total in
  let to_ = (run_ok app over machine).Sched_sim.total in
  Alcotest.(check bool) "overdecomposition wins" true (to_ < ts)

let test_sliced_vs_whole_input_volume () =
  let app = uniform_app ~tasks:1024 ~in_bytes:1000 () in
  let m = { Sched_sim.nodes = 4; cores_per_node = 4 } in
  let sliced = run_ok app (Profile.cmpi ()) m in
  let whole =
    run_ok app { (Profile.cmpi ()) with Profile.slices_input = false } m
  in
  check_int "sliced volume = input size" (1024 * 1000)
    sliced.Sched_sim.bytes_scattered;
  check_int "whole volume = nodes x input" (4 * 1024 * 1000)
    whole.Sched_sim.bytes_scattered

let test_jitter_slows_eden () =
  let app = uniform_app ~tasks:512 () in
  let eden = { (Profile.eden ()) with Profile.seq_efficiency = (fun _ -> 1.0) } in
  let nojit = { eden with Profile.jitter_period = 0 } in
  let m = { Sched_sim.nodes = 4; cores_per_node = 16 } in
  let tj = (run_ok app eden m).Sched_sim.total in
  let tn = (run_ok app nojit m).Sched_sim.total in
  Alcotest.(check bool) "jitter costs time" true (tj > tn)

let test_tree_gather_helps_output_bound () =
  let app =
    uniform_app ~tasks:2048 ~cost:1e-4 ~node_out:(64 * 1024 * 1024) ()
  in
  let base = Profile.cmpi () in
  let tree = { base with Profile.tree_gather = true } in
  let m = { Sched_sim.nodes = 8; cores_per_node = 16 } in
  let t0 = (run_ok app base m).Sched_sim.total in
  let t1 = (run_ok app tree m).Sched_sim.total in
  Alcotest.(check bool) "tree gather faster" true (t1 < t0)

let test_tree_gather_single_node_noop () =
  let app = uniform_app ~tasks:64 ~node_out:1024 () in
  let base = Profile.cmpi () in
  let tree = { base with Profile.tree_gather = true } in
  let m = { Sched_sim.nodes = 1; cores_per_node = 4 } in
  Alcotest.(check (float 1e-9)) "same at 1 node"
    (run_ok app base m).Sched_sim.total
    (run_ok app tree m).Sched_sim.total

let test_single_node_pays_no_network () =
  (* At one node, data never crosses a network: a draconian message
     limit cannot fail the run, and shared-memory runtimes pay no
     serialization either. *)
  let app = uniform_app ~tasks:256 ~in_bytes:(1024 * 1024) () in
  let strangled =
    { (Profile.cmpi ()) with
      Profile.net = Netmodel.make ~max_message_bytes:1 () }
  in
  (match Sched_sim.run app strangled { Sched_sim.nodes = 1; cores_per_node = 8 } with
  | Sched_sim.Completed _ -> ()
  | Sched_sim.Failed m -> Alcotest.failf "should not fail locally: %s" m);
  match Sched_sim.run app strangled { Sched_sim.nodes = 2; cores_per_node = 8 } with
  | Sched_sim.Failed _ -> ()
  | Sched_sim.Completed _ -> Alcotest.fail "2 nodes must hit the limit"

let test_static_threads_hurt_irregular () =
  (* Ramped unit costs within a node: static per-core blocks straggle
     behind work stealing. *)
  let app =
    App_model.make ~name:"ramp" ~tasks:256
      ~task_cost:(fun i -> 1e-4 *. (1.0 +. float_of_int (i mod 64)))
      ()
  in
  let ws = { ideal_profile with Profile.intra_node_scheduling = Profile.Work_stealing } in
  let st = { ideal_profile with Profile.intra_node_scheduling = Profile.Static_threads } in
  let m = { Sched_sim.nodes = 1; cores_per_node = 16 } in
  let tw = (run_ok app ws m).Sched_sim.total in
  let ts = (run_ok app st m).Sched_sim.total in
  Alcotest.(check bool) "work stealing wins" true (tw < ts)

(* ------------------------------------------------------------------ *)
(* Speedup sweeps                                                      *)

let test_speedup_sweep_shape () =
  let app = uniform_app ~tasks:2048 ~cost:1e-3 ~in_bytes:100 () in
  let series = Speedup.sweep app (Profile.cmpi ()) (Speedup.default_machines ()) in
  check_int "9 points" 9 (List.length series.Speedup.points);
  (match series.Speedup.points with
  | { Speedup.cores = 1; speedup = Some s } :: _ ->
      Alcotest.(check bool) "first point ~1" true (s > 0.9 && s <= 1.01)
  | _ -> Alcotest.fail "first point must be 1 core");
  Alcotest.(check bool) "max speedup > 32" true (Speedup.max_speedup series > 32.0)

let test_compare_systems_ranking () =
  let app = uniform_app ~tasks:4096 ~cost:1e-3 ~in_bytes:100 ~out_bytes:8 () in
  match Speedup.compare_systems app with
  | [ c; t; e ] ->
      Alcotest.(check string) "order" "C+MPI+OpenMP" c.Speedup.profile_name;
      let sc = Speedup.max_speedup c
      and st = Speedup.max_speedup t
      and se = Speedup.max_speedup e in
      Alcotest.(check bool) "C >= Triolet" true (sc >= st *. 0.99);
      Alcotest.(check bool) "Triolet > Eden" true (st > se)
  | _ -> Alcotest.fail "three systems"

let prop_speedup_positive =
  qtest "completed speedups are positive and bounded by cores+1"
    QCheck2.Gen.(pair (int_range 1 64) (int_range 1 8))
    (fun (tasks, nodes) ->
      let app = uniform_app ~tasks ~cost:1e-3 () in
      let seq = App_model.sequential_time app in
      match
        Sched_sim.run app (Profile.cmpi ())
          { Sched_sim.nodes; cores_per_node = 4 }
      with
      | Sched_sim.Completed b ->
          let s = seq /. b.Sched_sim.total in
          s > 0.0 && s <= float_of_int (nodes * 4) +. 1.0
      | Sched_sim.Failed _ -> false)

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "duplicates/peek" `Quick
            test_heap_duplicates_and_peek;
          prop_heap_sorts;
        ] );
      ( "clock",
        [
          Alcotest.test_case "event order" `Quick test_clock_event_order;
          Alcotest.test_case "rejects past" `Quick test_clock_rejects_past;
        ] );
      ( "net",
        [
          Alcotest.test_case "transfer time" `Quick test_net_transfer_time;
          Alcotest.test_case "message limit" `Quick test_net_message_limit;
        ] );
      ( "sched",
        [
          Alcotest.test_case "ideal linear scaling" `Quick
            test_ideal_linear_scaling;
          Alcotest.test_case "1 core = sequential" `Quick
            test_single_core_matches_sequential;
          Alcotest.test_case "efficiency scales time" `Quick
            test_efficiency_scales_time;
          Alcotest.test_case "more cores not slower" `Quick
            test_more_cores_not_slower;
          Alcotest.test_case "comm-bound saturates" `Quick
            test_communication_bound_saturates;
          Alcotest.test_case "Amdahl setup" `Quick test_setup_limits_scaling;
          Alcotest.test_case "message limit fails" `Quick
            test_message_limit_fails;
          Alcotest.test_case "gc overhead" `Quick test_gc_overhead_counted;
          Alcotest.test_case "overdecomposition balances" `Quick
            test_overdecomposition_balances_irregular;
          Alcotest.test_case "sliced vs whole volume" `Quick
            test_sliced_vs_whole_input_volume;
          Alcotest.test_case "jitter" `Quick test_jitter_slows_eden;
          Alcotest.test_case "tree gather helps" `Quick
            test_tree_gather_helps_output_bound;
          Alcotest.test_case "tree gather 1-node noop" `Quick
            test_tree_gather_single_node_noop;
          Alcotest.test_case "1 node pays no network" `Quick
            test_single_node_pays_no_network;
          Alcotest.test_case "static threads straggle" `Quick
            test_static_threads_hurt_irregular;
        ] );
      ( "speedup",
        [
          Alcotest.test_case "sweep shape" `Quick test_speedup_sweep_shape;
          Alcotest.test_case "system ranking" `Quick test_compare_systems_ranking;
          prop_speedup_positive;
        ] );
    ]
