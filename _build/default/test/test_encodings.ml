(* Tests for the four fusible virtual data-structure encodings of the
   paper's Figure 1 (indexers, steppers, folds, collectors), the Shape
   domains of section 3.3, and the conversions between encodings. *)

open Triolet

let check_int = Alcotest.(check int)
let check_il = Alcotest.(check (list int))
let check_float = Alcotest.(check (float 1e-9))

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Shape                                                               *)

let test_shape_sizes () =
  check_int "seq" 5 (Shape.size (Shape.seq 5));
  check_int "dim2" 12 (Shape.size (Shape.dim2 3 4));
  check_int "dim3" 24 (Shape.size (Shape.dim3 2 3 4));
  check_int "empty" 0 (Shape.size (Shape.seq 0))

let test_shape_linearization () =
  let s2 = Shape.dim2 3 4 in
  check_int "linear 2d" 7 (Shape.linear s2 (1, 3));
  Alcotest.(check (pair int int)) "of_linear 2d" (1, 3) (Shape.of_linear s2 7);
  let s3 = Shape.dim3 2 3 4 in
  for k = 0 to Shape.size s3 - 1 do
    check_int "roundtrip 3d" k (Shape.linear s3 (Shape.of_linear s3 k))
  done

let test_shape_mem () =
  let s = Shape.dim2 2 3 in
  Alcotest.(check bool) "in" true (Shape.mem s (1, 2));
  Alcotest.(check bool) "row out" false (Shape.mem s (2, 0));
  Alcotest.(check bool) "col out" false (Shape.mem s (0, 3));
  Alcotest.(check bool) "negative" false (Shape.mem s (-1, 0))

let test_shape_fold_row_major () =
  let s = Shape.dim2 2 2 in
  let order = List.rev (Shape.fold s (fun acc ij -> ij :: acc) []) in
  Alcotest.(check (list (pair int int)))
    "row major"
    [ (0, 0); (0, 1); (1, 0); (1, 1) ]
    order

let test_shape_intersect () =
  (match Shape.intersect (Shape.seq 3) (Shape.seq 7) with
  | Shape.Seq n -> check_int "seq" 3 n);
  match Shape.intersect (Shape.dim2 3 9) (Shape.dim2 5 4) with
  | Shape.Dim2 (h, w) ->
      check_int "h" 3 h;
      check_int "w" 4 w

let test_shape_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Shape.seq: negative length")
    (fun () -> ignore (Shape.seq (-1)))

(* ------------------------------------------------------------------ *)
(* Stepper                                                             *)

let slist st = Stepper.to_list st

let test_stepper_sources () =
  check_il "range" [ 2; 3; 4 ] (slist (Stepper.range 2 5));
  check_il "of_list" [ 1; 2 ] (slist (Stepper.of_list [ 1; 2 ]));
  check_il "of_array" [ 9 ] (slist (Stepper.of_array [| 9 |]));
  check_il "empty" [] (slist Stepper.empty);
  check_il "singleton" [ 7 ] (slist (Stepper.singleton 7))

let test_stepper_map_filter () =
  let s = Stepper.range 0 10 in
  check_il "map" [ 0; 2; 4 ] (slist (Stepper.map (( * ) 2) (Stepper.range 0 3)));
  check_il "filter" [ 0; 2; 4; 6; 8 ]
    (slist (Stepper.filter (fun x -> x mod 2 = 0) s));
  check_il "filter_map" [ 0; 4; 16; 36; 64 ]
    (slist
       (Stepper.filter_map
          (fun x -> if x mod 2 = 0 then Some (x * x) else None)
          (Stepper.range 0 10)))

let test_stepper_zip () =
  let a = Stepper.range 0 3 and b = Stepper.of_list [ "x"; "y"; "z"; "w" ] in
  Alcotest.(check (list (pair int string)))
    "zip truncates"
    [ (0, "x"); (1, "y"); (2, "z") ]
    (slist (Stepper.zip a b))

let test_stepper_zip_skips () =
  (* Zip must skip over filtered-out elements on either side. *)
  let evens = Stepper.filter (fun x -> x mod 2 = 0) (Stepper.range 0 10) in
  let odds = Stepper.filter (fun x -> x mod 2 = 1) (Stepper.range 0 10) in
  Alcotest.(check (list (pair int int)))
    "zip of filters"
    [ (0, 1); (2, 3); (4, 5); (6, 7); (8, 9) ]
    (slist (Stepper.zip evens odds))

let test_stepper_concat_map () =
  let s = Stepper.range 1 4 in
  check_il "triangle" [ 0; 0; 1; 0; 1; 2 ]
    (slist (Stepper.concat_map (fun n -> Stepper.range 0 n) s));
  check_il "with empties" [ 1; 3 ]
    (slist
       (Stepper.concat_map
          (fun n -> if n mod 2 = 0 then Stepper.empty else Stepper.singleton n)
          (Stepper.range 0 5)))

let test_stepper_take_drop_append () =
  check_il "take" [ 0; 1 ] (slist (Stepper.take 2 (Stepper.range 0 9)));
  check_il "take past end" [ 0; 1 ] (slist (Stepper.take 5 (Stepper.range 0 2)));
  check_il "drop" [ 2; 3 ] (slist (Stepper.drop 2 (Stepper.range 0 4)));
  check_il "append" [ 1; 2; 3 ]
    (slist (Stepper.append (Stepper.singleton 1) (Stepper.of_list [ 2; 3 ])))

let test_stepper_enumerate_fold () =
  Alcotest.(check (list (pair int string)))
    "enumerate"
    [ (0, "a"); (1, "b") ]
    (slist (Stepper.enumerate (Stepper.of_list [ "a"; "b" ])));
  check_int "fold" 10 (Stepper.fold ( + ) 0 (Stepper.range 0 5));
  check_int "length skips" 5
    (Stepper.length (Stepper.filter (fun x -> x < 5) (Stepper.range 0 100)));
  check_float "sum_float" 6.0
    (Stepper.sum_float (Stepper.of_list [ 1.0; 2.0; 3.0 ]))

(* ------------------------------------------------------------------ *)
(* Folder                                                              *)

let flist f = Folder.to_list f

let test_folder_sources () =
  check_il "range" [ 0; 1; 2 ] (flist (Folder.range 0 3));
  check_il "of_list" [ 5; 6 ] (flist (Folder.of_list [ 5; 6 ]));
  check_il "of_array" [ 7 ] (flist (Folder.of_array [| 7 |]));
  check_il "empty" [] (flist Folder.empty)

let test_folder_ops () =
  check_il "map" [ 1; 4; 9 ]
    (flist (Folder.map (fun x -> x * x) (Folder.of_list [ 1; 2; 3 ])));
  check_il "filter" [ 2 ]
    (flist (Folder.filter (fun x -> x mod 2 = 0) (Folder.of_list [ 1; 2; 3 ])));
  check_il "concat_map nested loop" [ 0; 0; 1 ]
    (flist (Folder.concat_map (fun n -> Folder.range 0 n) (Folder.range 1 3)));
  check_il "append" [ 1; 2 ]
    (flist (Folder.append (Folder.singleton 1) (Folder.singleton 2)));
  check_int "sum_int" 6 (Folder.sum_int (Folder.of_list [ 1; 2; 3 ]));
  check_int "length" 3 (Folder.length (Folder.range 0 3))

let test_folder_of_stepper () =
  check_il "conversion" [ 0; 2; 4 ]
    (flist
       (Folder.of_stepper
          (Stepper.filter (fun x -> x mod 2 = 0) (Stepper.range 0 6))))

(* ------------------------------------------------------------------ *)
(* Collector                                                           *)

let clist c = Collector.to_list c

let test_collector_sources () =
  check_il "range" [ 0; 1 ] (clist (Collector.range 0 2));
  check_il "of_list" [ 3 ] (clist (Collector.of_list [ 3 ]));
  check_il "of_stepper" [ 1; 3 ]
    (clist
       (Collector.of_stepper
          (Stepper.filter (fun x -> x mod 2 = 1) (Stepper.range 0 5))));
  check_il "of_folder" [ 0; 1 ] (clist (Collector.of_folder (Folder.range 0 2)))

let test_collector_ops () =
  check_il "map" [ 2; 4 ]
    (clist (Collector.map (( * ) 2) (Collector.of_list [ 1; 2 ])));
  check_il "filter" [ 1 ]
    (clist (Collector.filter (fun x -> x < 2) (Collector.of_list [ 1; 2 ])));
  check_il "concat_map" [ 0; 0; 1 ]
    (clist (Collector.concat_map (fun n -> Collector.range 0 n) (Collector.range 1 3)));
  check_int "length" 4 (Collector.length (Collector.range 0 4))

let test_collector_mutation () =
  (* The defining collector feature (Figure 1): output by mutation. *)
  let h = Collector.histogram ~bins:4 (Collector.of_list [ 0; 1; 1; 3; 3; 3 ]) in
  Alcotest.(check (array int)) "histogram" [| 1; 2; 0; 3 |] h;
  let h2 = Collector.histogram ~bins:2 (Collector.of_list [ -1; 0; 5 ]) in
  Alcotest.(check (array int)) "out of range ignored" [| 1; 0 |] h2

let test_collector_weighted_histogram () =
  let wh =
    Collector.weighted_histogram ~bins:3
      (Collector.of_list [ (0, 1.5); (2, 2.0); (0, 0.5); (7, 9.9) ])
  in
  check_float "bin0" 2.0 (Float.Array.get wh 0);
  check_float "bin1" 0.0 (Float.Array.get wh 1);
  check_float "bin2" 2.0 (Float.Array.get wh 2)

let test_collector_pack () =
  let v =
    Collector.to_vec 0
      (Collector.filter (fun x -> x mod 3 = 0) (Collector.range 0 10))
  in
  Alcotest.(check (array int)) "packed" [| 0; 3; 6; 9 |]
    (Triolet_base.Vec.to_array v);
  let fa = Collector.to_floatarray (Collector.map float_of_int (Collector.range 0 3)) in
  check_float "floats" 1.0 (Float.Array.get fa 1)

(* ------------------------------------------------------------------ *)
(* Indexer                                                             *)

let test_indexer_basics () =
  let ix = Indexer.of_array [| 10; 20; 30 |] in
  check_int "size" 3 (Indexer.size ix);
  check_int "get" 20 (Indexer.get ix 1);
  check_il "to_list" [ 10; 20; 30 ] (Indexer.to_list ix)

let test_indexer_map_fuses_lookup () =
  (* map composes with the lookup function: (n, g) -> (n, f . g). *)
  let ix = Indexer.map (( * ) 2) (Indexer.range 0 4) in
  check_il "mapped" [ 0; 2; 4; 6 ] (Indexer.to_list ix)

let test_indexer_zip () =
  let a = Indexer.range 0 3 and b = Indexer.range 10 20 in
  let z = Indexer.zip a b in
  check_int "intersected size" 3 (Indexer.size z);
  Alcotest.(check (pair int int)) "random access" (2, 12) (Indexer.get z 2)

let test_indexer_slice () =
  let ix = Indexer.of_array [| 0; 1; 2; 3; 4; 5 |] in
  let s = Indexer.slice ix 2 3 in
  check_il "slice" [ 2; 3; 4 ] (Indexer.to_list s);
  check_int "rebased" 2 (Indexer.get s 0);
  let ss = Indexer.slice s 1 1 in
  check_il "slice of slice" [ 3 ] (Indexer.to_list ss);
  Alcotest.check_raises "oob" (Invalid_argument "Indexer.slice") (fun () ->
      ignore (Indexer.slice ix 4 3))

let test_indexer_random_access_parallel_order () =
  (* Indexers permit arbitrary evaluation order (Figure 1: Parallel=yes). *)
  let ix = Indexer.map (( * ) 3) (Indexer.range 0 8) in
  let backwards = List.init 8 (fun i -> Indexer.get ix (7 - i)) in
  check_il "reverse order" [ 21; 18; 15; 12; 9; 6; 3; 0 ] backwards

let test_indexer_2d () =
  let ix = Indexer.init (Shape.dim2 2 3) (fun (i, j) -> (10 * i) + j) in
  check_int "size" 6 (Indexer.size ix);
  check_il "row major fold" [ 0; 1; 2; 10; 11; 12 ] (Indexer.to_list ix);
  Alcotest.(check (array int))
    "to_array" [| 0; 1; 2; 10; 11; 12 |]
    (Indexer.to_array 0 ix)

let test_indexer_conversions () =
  let ix = Indexer.range 0 5 in
  check_il "to_stepper" [ 0; 1; 2; 3; 4 ] (slist (Indexer.to_stepper ix));
  check_il "to_folder" [ 0; 1; 2; 3; 4 ] (flist (Indexer.to_folder ix));
  check_il "to_collector" [ 0; 1; 2; 3; 4 ] (clist (Indexer.to_collector ix))

let test_indexer_enumerate () =
  let ix = Indexer.enumerate (Indexer.of_array [| "a"; "b" |]) in
  Alcotest.(check (pair int string)) "enum" (1, "b") (Indexer.get ix 1)

(* ------------------------------------------------------------------ *)
(* Figure 1 capability matrix, as executable checks                    *)

let test_fig1_stepper_not_random_access () =
  (* Steppers only expose the "next" element; getting element k costs a
     sequential walk of k steps. We verify the only access is ordered. *)
  let trace = ref [] in
  let st =
    Stepper.map
      (fun x ->
        trace := x :: !trace;
        x)
      (Stepper.range 0 4)
  in
  ignore (Stepper.to_list st);
  check_il "strictly in order" [ 0; 1; 2; 3 ] (List.rev !trace)

let test_fig1_fold_no_zip () =
  (* Folds fix execution order completely: there is no zip over folds in
     the API; zipping requires converting through a stepper. *)
  let f = Folder.of_list [ 1; 2; 3 ] in
  let as_stepper =
    Stepper.unfold (Folder.to_list f) (function
      | [] -> Stepper.Done
      | x :: rest -> Stepper.Yield (x, rest))
  in
  Alcotest.(check (list (pair int int)))
    "fold zips only via conversion + materialization"
    [ (1, 10); (2, 11); (3, 12) ]
    (slist (Stepper.zip as_stepper (Stepper.range 10 20)))

let test_fig1_indexer_filter_needs_nesting () =
  (* An indexer cannot encode filter's variable-length output directly:
     the hybrid representation wraps each element in a 0/1-length
     stepper instead (tested in test_seq_iter). Here: the indexer of a
     filtered structure must produce element *candidates*, one per input
     index. *)
  let input = [| 1; -2; 3 |] in
  let candidates =
    Indexer.map
      (fun x -> if x > 0 then Some x else None)
      (Indexer.of_array input)
  in
  check_int "one candidate per input" 3 (Indexer.size candidates)

let test_fig1_idx_to_coll_loses_parallelism () =
  (* idxToColl: converting an indexer to a collector yields a sequential
     side-effecting traversal (the conversion in section 3.1). *)
  let seen = ref [] in
  let coll = Indexer.to_collector (Indexer.range 0 4) in
  Collector.iter (fun x -> seen := x :: !seen) coll;
  check_il "sequential order" [ 0; 1; 2; 3 ] (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let gen_small_list = QCheck2.Gen.(list_size (int_bound 40) (int_bound 100))

let prop_stepper_map_fusion =
  qtest "stepper: map f . map g = map (f.g)" gen_small_list (fun l ->
      let f x = x + 1 and g x = x * 2 in
      slist (Stepper.map f (Stepper.map g (Stepper.of_list l)))
      = slist (Stepper.map (fun x -> f (g x)) (Stepper.of_list l)))

let prop_stepper_filter_fusion =
  qtest "stepper: filter p . filter q = filter (p&&q)" gen_small_list
    (fun l ->
      let p x = x mod 2 = 0 and q x = x > 10 in
      slist (Stepper.filter p (Stepper.filter q (Stepper.of_list l)))
      = slist (Stepper.filter (fun x -> q x && p x) (Stepper.of_list l)))

let prop_folder_sum_matches_list =
  qtest "folder: sum = List sum" gen_small_list (fun l ->
      Folder.sum_int (Folder.of_list l) = List.fold_left ( + ) 0 l)

let prop_collector_filter_matches_list =
  qtest "collector: filter = List.filter" gen_small_list (fun l ->
      let p x = x mod 3 <> 0 in
      clist (Collector.filter p (Collector.of_list l)) = List.filter p l)

let prop_indexer_slice_concat =
  qtest "indexer: slices concatenate to whole"
    QCheck2.Gen.(pair (int_range 1 50) (int_range 1 8))
    (fun (n, k) ->
      let ix = Indexer.map (fun i -> (i * 7) mod 13) (Indexer.range 0 n) in
      let parts = Triolet_runtime.Partition.blocks ~parts:k n in
      let glued =
        Array.to_list parts
        |> List.concat_map (fun (off, len) ->
               Indexer.to_list (Indexer.slice ix off len))
      in
      glued = Indexer.to_list ix)

let prop_conversions_agree =
  qtest "stepper/folder/collector agree on contents" gen_small_list (fun l ->
      let st = Stepper.of_list l in
      slist st = flist (Folder.of_stepper (Stepper.of_list l))
      && slist (Stepper.of_list l)
         = clist (Collector.of_stepper (Stepper.of_list l)))

let prop_concat_map_matches_list =
  qtest "stepper: concat_map = List.concat_map"
    QCheck2.Gen.(list_size (int_bound 20) (int_bound 6))
    (fun l ->
      slist
        (Stepper.concat_map (fun n -> Stepper.range 0 n) (Stepper.of_list l))
      = List.concat_map (fun n -> List.init n Fun.id) l)

let () =
  Alcotest.run "encodings"
    [
      ( "shape",
        [
          Alcotest.test_case "sizes" `Quick test_shape_sizes;
          Alcotest.test_case "linearization" `Quick test_shape_linearization;
          Alcotest.test_case "mem" `Quick test_shape_mem;
          Alcotest.test_case "fold row-major" `Quick test_shape_fold_row_major;
          Alcotest.test_case "intersect" `Quick test_shape_intersect;
          Alcotest.test_case "invalid" `Quick test_shape_invalid;
        ] );
      ( "stepper",
        [
          Alcotest.test_case "sources" `Quick test_stepper_sources;
          Alcotest.test_case "map/filter" `Quick test_stepper_map_filter;
          Alcotest.test_case "zip" `Quick test_stepper_zip;
          Alcotest.test_case "zip skips" `Quick test_stepper_zip_skips;
          Alcotest.test_case "concat_map" `Quick test_stepper_concat_map;
          Alcotest.test_case "take/drop/append" `Quick
            test_stepper_take_drop_append;
          Alcotest.test_case "enumerate/fold" `Quick test_stepper_enumerate_fold;
          prop_stepper_map_fusion;
          prop_stepper_filter_fusion;
          prop_concat_map_matches_list;
        ] );
      ( "folder",
        [
          Alcotest.test_case "sources" `Quick test_folder_sources;
          Alcotest.test_case "ops" `Quick test_folder_ops;
          Alcotest.test_case "of_stepper" `Quick test_folder_of_stepper;
          prop_folder_sum_matches_list;
        ] );
      ( "collector",
        [
          Alcotest.test_case "sources" `Quick test_collector_sources;
          Alcotest.test_case "ops" `Quick test_collector_ops;
          Alcotest.test_case "mutation (histogram)" `Quick
            test_collector_mutation;
          Alcotest.test_case "weighted histogram" `Quick
            test_collector_weighted_histogram;
          Alcotest.test_case "pack variable-length" `Quick test_collector_pack;
          prop_collector_filter_matches_list;
        ] );
      ( "indexer",
        [
          Alcotest.test_case "basics" `Quick test_indexer_basics;
          Alcotest.test_case "map fuses lookup" `Quick
            test_indexer_map_fuses_lookup;
          Alcotest.test_case "zip" `Quick test_indexer_zip;
          Alcotest.test_case "slice" `Quick test_indexer_slice;
          Alcotest.test_case "random access order" `Quick
            test_indexer_random_access_parallel_order;
          Alcotest.test_case "2d" `Quick test_indexer_2d;
          Alcotest.test_case "conversions" `Quick test_indexer_conversions;
          Alcotest.test_case "enumerate" `Quick test_indexer_enumerate;
          prop_indexer_slice_concat;
          prop_conversions_agree;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "stepper is sequential" `Quick
            test_fig1_stepper_not_random_access;
          Alcotest.test_case "fold cannot zip" `Quick test_fig1_fold_no_zip;
          Alcotest.test_case "indexer filter needs nesting" `Quick
            test_fig1_indexer_filter_needs_nesting;
          Alcotest.test_case "idxToColl is sequential" `Quick
            test_fig1_idx_to_coll_loses_parallelism;
        ] );
    ]
