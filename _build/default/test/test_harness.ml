(* Tests for the figure harness: table rendering, calibration
   efficiency clamping, TSV export, and the figure context plumbing. *)

module Table = Triolet_harness.Table
module Calibrate = Triolet_harness.Calibrate
module Figures = Triolet_harness.Figures
module Speedup = Triolet_sim.Speedup

let check_s = Alcotest.(check string)

let test_table_render () =
  check_s "alignment"
    "a   | bb\n----+---\nxxx | y " 
    (Table.render [ [ "a"; "bb" ]; [ "xxx"; "y" ] ]);
  check_s "empty" "" (Table.render [])

let test_table_formats () =
  check_s "f1" "3.1" (Table.f1 3.14159);
  check_s "f2" "3.14" (Table.f2 3.14159);
  check_s "seconds ms" "12.0 ms" (Table.seconds 0.012);
  check_s "seconds us" "900.0 us" (Table.seconds 0.0009);
  check_s "seconds s" "2.5 s" (Table.seconds 2.5);
  check_s "seconds big" "120 s" (Table.seconds 120.4);
  check_s "bytes" "117 B" (Table.bytes 117);
  check_s "KiB" "1.5 KiB" (Table.bytes 1536);
  check_s "MiB" "2.00 MiB" (Table.bytes (2 * 1024 * 1024))

let test_efficiencies_clamped () =
  let times =
    [
      {
        Calibrate.kernel = "k";
        c_time = 1.0;
        triolet_time = 1e9 (* pathologically slow measurement *);
        eden_time = 1e-9 (* pathologically fast *);
      };
    ]
  in
  let eff = Calibrate.efficiencies times in
  Alcotest.(check (float 1e-9)) "floor" 0.02 (eff "Triolet" "k");
  Alcotest.(check (float 1e-9)) "ceiling" 1.5 (eff "Eden" "k");
  Alcotest.(check (float 1e-9)) "unknown kernel" 1.0 (eff "Triolet" "nope");
  Alcotest.(check (float 1e-9)) "unknown system" 1.0 (eff "Rust" "k")

let test_series_to_tsv () =
  let series =
    [
      {
        Speedup.profile_name = "A";
        points =
          [
            { Speedup.cores = 1; speedup = Some 1.0 };
            { Speedup.cores = 16; speedup = None };
          ];
      };
      {
        Speedup.profile_name = "B";
        points =
          [
            { Speedup.cores = 1; speedup = Some 0.5 };
            { Speedup.cores = 16; speedup = Some 8.25 };
          ];
      };
    ]
  in
  check_s "tsv"
    "cores\tlinear\tA\tB\n1\t1\t1.000\t0.500\n16\t16\tnan\t8.250\n"
    (Figures.series_to_tsv series)

let test_model_of_rejects_unknown () =
  (* A context without measurement: build via the default rates by
     constructing the model directly. *)
  Alcotest.check_raises "unknown"
    (Invalid_argument "Figures.model_of: unknown kernel nope") (fun () ->
      let fake =
        {
          Figures.times = [];
          rates = Triolet_kernels.Models.default_rates;
          efficiency = (fun _ _ -> 1.0);
          measured_efficiency = false;
        }
      in
      ignore (Figures.model_of fake "nope"))

let test_models_kernel_names_align () =
  (* The models' names must match what the profiles' efficiency tables
     key on, or calibration silently falls back to defaults. *)
  List.iter
    (fun app ->
      let name = app.Triolet_sim.App_model.name in
      Alcotest.(check bool)
        (name ^ " has a non-default Triolet efficiency")
        true
        ((Triolet_sim.Profile.triolet ()).Triolet_sim.Profile.seq_efficiency
           name
        <> 0.9
        ||
        name = "sgemm" (* sgemm's table entry happens to equal 0.9 *)))
    (Triolet_kernels.Models.all ())

let () =
  Alcotest.run "harness"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ( "calibrate",
        [ Alcotest.test_case "clamping" `Quick test_efficiencies_clamped ] );
      ( "figures",
        [
          Alcotest.test_case "tsv" `Quick test_series_to_tsv;
          Alcotest.test_case "unknown kernel" `Quick
            test_model_of_rejects_unknown;
          Alcotest.test_case "model names align" `Quick
            test_models_kernel_names_align;
        ] );
    ]
