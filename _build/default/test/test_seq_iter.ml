(* Tests for the hybrid iterator representation (paper, section 3.2 and
   Figure 2). Each group checks one Figure 2 function across all four
   constructors, plus the structural claims the paper makes: filter and
   concat_map on flat indexers preserve a random-access outer loop. *)

open Triolet

let check_int = Alcotest.(check int)
let check_il = Alcotest.(check (list int))
let check_float = Alcotest.(check (float 1e-9))

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

let ilist it = Seq_iter.to_list it

(* Builders producing each of the four constructors with the same
   element contents, so every equation can be checked on every loop
   structure. *)
let idx_flat l = Seq_iter.of_array (Array.of_list l)
let step_flat l = Seq_iter.of_stepper (Stepper.of_list l)

let idx_nest l =
  (* nest: [ [x]; [x]; ... ] under a random-access outer loop *)
  Seq_iter.concat_map (fun x -> Seq_iter.singleton x) (idx_flat l)

let step_nest l =
  Seq_iter.concat_map (fun x -> Seq_iter.singleton x) (step_flat l)

let constructors = [ ("idx_flat", idx_flat); ("step_flat", step_flat);
                     ("idx_nest", idx_nest); ("step_nest", step_nest) ]

let is_idx_outer = function
  | Seq_iter.Idx_flat _ | Seq_iter.Idx_nest _ -> true
  | Seq_iter.Step_flat _ | Seq_iter.Step_nest _ -> false

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)

let test_constructor_shapes () =
  Alcotest.(check bool) "of_array is IdxFlat" true
    (match idx_flat [ 1 ] with Seq_iter.Idx_flat _ -> true | _ -> false);
  Alcotest.(check bool) "of_stepper is StepFlat" true
    (match step_flat [ 1 ] with Seq_iter.Step_flat _ -> true | _ -> false);
  Alcotest.(check bool) "concat_map of IdxFlat is IdxNest" true
    (match idx_nest [ 1 ] with Seq_iter.Idx_nest _ -> true | _ -> false);
  Alcotest.(check bool) "concat_map of StepFlat is StepNest" true
    (match step_nest [ 1 ] with Seq_iter.Step_nest _ -> true | _ -> false)

let test_filter_keeps_outer_random_access () =
  (* The central representational claim: filtering a flat indexer yields
     an Idx_nest — irregularity is pushed into inner steppers while the
     outer loop remains partitionable. *)
  let it = Seq_iter.filter (fun x -> x > 0) (idx_flat [ 1; -2; 3 ]) in
  Alcotest.(check bool) "IdxNest" true (is_idx_outer it);
  check_int "outer length = input length" 3
    (Option.get (Seq_iter.outer_length it));
  check_il "contents" [ 1; 3 ] (ilist it)

let test_concat_map_keeps_outer_random_access () =
  let it =
    Seq_iter.concat_map (fun n -> Seq_iter.range 0 n) (idx_flat [ 2; 0; 3 ])
  in
  Alcotest.(check bool) "IdxNest" true (is_idx_outer it);
  check_int "outer length" 3 (Option.get (Seq_iter.outer_length it));
  check_il "contents" [ 0; 1; 0; 1; 2 ] (ilist it)

let test_outer_length_none_for_steppers () =
  Alcotest.(check (option int)) "step_flat" None
    (Seq_iter.outer_length (step_flat [ 1; 2 ]));
  Alcotest.(check (option int)) "step_nest" None
    (Seq_iter.outer_length (step_nest [ 1; 2 ]))

let test_slice_outer () =
  let it = Seq_iter.filter (fun x -> x mod 2 = 0) (Seq_iter.range 0 10) in
  (* slicing the outer loop of the filtered iterator partitions the
     *inputs*, not the outputs: slice [0,5) sees inputs 0..4. *)
  check_il "first half inputs" [ 0; 2; 4 ] (ilist (Seq_iter.slice_outer it 0 5));
  check_il "second half inputs" [ 6; 8 ] (ilist (Seq_iter.slice_outer it 5 5));
  Alcotest.check_raises "stepper cannot slice"
    (Invalid_argument "Seq_iter.slice_outer: outer loop is not random-access")
    (fun () -> ignore (Seq_iter.slice_outer (step_flat [ 1 ]) 0 1))

(* ------------------------------------------------------------------ *)
(* Figure 2 equations: semantics across all constructors               *)

let test_map_all_constructors () =
  List.iter
    (fun (name, mk) ->
      check_il name [ 2; 4; 6 ] (ilist (Seq_iter.map (( * ) 2) (mk [ 1; 2; 3 ]))))
    constructors

let test_filter_all_constructors () =
  List.iter
    (fun (name, mk) ->
      check_il name [ 2; 4 ]
        (ilist (Seq_iter.filter (fun x -> x mod 2 = 0) (mk [ 1; 2; 3; 4 ]))))
    constructors

let test_concat_map_all_constructors () =
  List.iter
    (fun (name, mk) ->
      check_il name [ 0; 0; 1; 0; 1; 2 ]
        (ilist (Seq_iter.concat_map (fun n -> Seq_iter.range 0 n) (mk [ 1; 2; 3 ]))))
    constructors

let test_zip_all_pairs () =
  List.iter
    (fun (na, mka) ->
      List.iter
        (fun (nb, mkb) ->
          Alcotest.(check (list (pair int int)))
            (na ^ "/" ^ nb)
            [ (1, 7); (2, 8) ]
            (Seq_iter.to_list (Seq_iter.zip (mka [ 1; 2 ]) (mkb [ 7; 8; 9 ]))))
        constructors)
    constructors

let test_zip_idx_idx_stays_indexed () =
  (* zip (IdxFlat, IdxFlat) = IdxFlat (zipIdx ...): parallelism survives. *)
  match Seq_iter.zip (idx_flat [ 1 ]) (idx_flat [ 2 ]) with
  | Seq_iter.Idx_flat _ -> ()
  | _ -> Alcotest.fail "zip of two flat indexers must stay a flat indexer"

let test_collect_all_constructors () =
  List.iter
    (fun (name, mk) ->
      check_il name [ 5; 6 ] (Collector.to_list (Seq_iter.collect (mk [ 5; 6 ]))))
    constructors

let test_sum_fold_all_constructors () =
  List.iter
    (fun (name, mk) ->
      check_int name 6 (Seq_iter.sum_int (mk [ 1; 2; 3 ]));
      check_int (name ^ " fold") 6
        (Seq_iter.fold (fun a x -> a + x) 0 (mk [ 1; 2; 3 ])))
    constructors

let test_to_stepper_all_constructors () =
  List.iter
    (fun (name, mk) ->
      check_il name [ 9; 8; 7 ] (Stepper.to_list (Seq_iter.to_stepper (mk [ 9; 8; 7 ]))))
    constructors

(* ------------------------------------------------------------------ *)
(* The paper's worked example: sum of filter                           *)

let test_sum_of_filter_example () =
  (* Section 3.2: xs = [1; -2; -4; 1; 3; 4], filter (> 0), sum = 9. *)
  let xs = idx_flat [ 1; -2; -4; 1; 3; 4 ] in
  let filtered = Seq_iter.filter (fun x -> x > 0) xs in
  Alcotest.(check bool) "indexer of steppers" true (is_idx_outer filtered);
  check_int "sum" 9 (Seq_iter.sum_int filtered);
  (* Partition the *inputs* across two tasks, as in the paper: the
     nested list [[1];[];[];[1];[3];[4]] splits into halves summing to
     1 and 8. *)
  check_int "first half" 1 (Seq_iter.sum_int (Seq_iter.slice_outer filtered 0 3));
  check_int "second half" 8 (Seq_iter.sum_int (Seq_iter.slice_outer filtered 3 3))

let test_fusion_no_materialization () =
  (* Pipelines run in one pass: a counting source proves each element is
     produced exactly once even through filter + map + concat_map. *)
  let produced = ref 0 in
  let src =
    Seq_iter.of_indexer
      (Indexer.init (Shape.seq 100) (fun i -> incr produced; i))
  in
  let result =
    src
    |> Seq_iter.filter (fun x -> x mod 2 = 0)
    |> Seq_iter.map (fun x -> x / 2)
    |> Seq_iter.concat_map (fun x -> if x mod 5 = 0 then Seq_iter.singleton x else Seq_iter.empty)
    |> Seq_iter.sum_int
  in
  check_int "result" (0 + 5 + 10 + 15 + 20 + 25 + 30 + 35 + 40 + 45) result;
  check_int "each input touched once" 100 !produced

let test_deep_nesting () =
  (* Three levels of concat_map: the inner loops compose. *)
  let it =
    Seq_iter.range 1 4
    |> Seq_iter.concat_map (fun a -> Seq_iter.range 0 a)
    |> Seq_iter.concat_map (fun b -> Seq_iter.range 0 b)
  in
  (* range 1 4 -> [0],[0;1],[0;1;2] -> inner ranges of each *)
  check_il "contents" [ 0; 0; 0; 1 ] (ilist it);
  check_int "length" 4 (Seq_iter.length it)

let test_empty_cases () =
  check_il "empty" [] (ilist Seq_iter.empty);
  check_il "filter all out" []
    (ilist (Seq_iter.filter (fun _ -> false) (Seq_iter.range 0 10)));
  check_il "concat_map to empties" []
    (ilist (Seq_iter.concat_map (fun _ -> Seq_iter.empty) (Seq_iter.range 0 5)));
  check_int "sum of empty" 0 (Seq_iter.sum_int Seq_iter.empty);
  Alcotest.(check (option int)) "reduce empty" None
    (Seq_iter.reduce ( + ) (Seq_iter.empty : int Seq_iter.t))

let test_reduce_and_to_array () =
  Alcotest.(check (option int)) "reduce" (Some 10)
    (Seq_iter.reduce ( + ) (Seq_iter.range 0 5));
  Alcotest.(check (array int)) "to_array" [| 0; 1; 2 |]
    (Seq_iter.to_array (-1) (Seq_iter.range 0 3));
  let fa = Seq_iter.to_floatarray (Seq_iter.map float_of_int (Seq_iter.range 0 4)) in
  check_float "to_floatarray" 3.0 (Float.Array.get fa 3)

(* ------------------------------------------------------------------ *)
(* Properties: Figure 2 equations against list semantics               *)

let gen_ops =
  (* A random pipeline: encode operations as ints and apply them both to
     a Seq_iter and to a plain list; results must agree. *)
  QCheck2.Gen.(pair (list_size (int_bound 30) (int_range (-20) 20))
                 (list_size (int_bound 6) (int_bound 3)))

let apply_op_list op l =
  match op with
  | 0 -> List.filter (fun x -> x mod 2 = 0) l
  | 1 -> List.map (fun x -> x + 3) l
  | 2 -> List.concat_map (fun x -> List.init (abs x mod 3) (fun k -> x + k)) l
  | _ -> List.filter (fun x -> x > 0) l

let apply_op_iter op it =
  match op with
  | 0 -> Seq_iter.filter (fun x -> x mod 2 = 0) it
  | 1 -> Seq_iter.map (fun x -> x + 3) it
  | 2 ->
      Seq_iter.concat_map
        (fun x ->
          Seq_iter.of_indexer
            (Indexer.init (Shape.seq (abs x mod 3)) (fun k -> x + k)))
        it
  | _ -> Seq_iter.filter (fun x -> x > 0) it

let prop_pipeline_matches_list =
  qtest "random pipelines match list semantics" gen_ops (fun (l, ops) ->
      let it = List.fold_left (fun it op -> apply_op_iter op it) (idx_flat l) ops in
      let ll = List.fold_left (fun l op -> apply_op_list op l) l ops in
      ilist it = ll)

let prop_pipeline_outer_sliceable =
  qtest "pipelines over indexers stay outer-sliceable" gen_ops
    (fun (l, ops) ->
      let it = List.fold_left (fun it op -> apply_op_iter op it) (idx_flat l) ops in
      match Seq_iter.outer_length it with
      | None -> false (* must remain random-access outer *)
      | Some n ->
          n = List.length l
          &&
          let mid = n / 2 in
          ilist (Seq_iter.slice_outer it 0 mid)
          @ ilist (Seq_iter.slice_outer it mid (n - mid))
          = ilist it)

let prop_zip_matches_combine =
  qtest "zip = List.combine (truncated)"
    QCheck2.Gen.(pair (list_size (int_bound 20) int) (list_size (int_bound 20) int))
    (fun (a, b) ->
      let n = min (List.length a) (List.length b) in
      let trunc l = List.filteri (fun i _ -> i < n) l in
      Seq_iter.to_list (Seq_iter.zip (idx_flat a) (step_flat b))
      = List.combine (trunc a) (trunc b))

let prop_sum_float_assoc =
  qtest "sum over slices = total sum"
    QCheck2.Gen.(pair (list_size (int_bound 40) (int_range 0 1000)) (int_range 1 6))
    (fun (l, k) ->
      let n = List.length l in
      if n = 0 then true
      else begin
        let it = idx_flat l in
        let parts = Triolet_runtime.Partition.blocks ~parts:k n in
        let total =
          Array.fold_left
            (fun acc (off, len) ->
              acc + Seq_iter.sum_int (Seq_iter.slice_outer it off len))
            0 parts
        in
        total = Seq_iter.sum_int it
      end)

let () =
  Alcotest.run "seq_iter"
    [
      ( "structure",
        [
          Alcotest.test_case "constructor shapes" `Quick test_constructor_shapes;
          Alcotest.test_case "filter keeps outer indexer" `Quick
            test_filter_keeps_outer_random_access;
          Alcotest.test_case "concat_map keeps outer indexer" `Quick
            test_concat_map_keeps_outer_random_access;
          Alcotest.test_case "steppers have no outer length" `Quick
            test_outer_length_none_for_steppers;
          Alcotest.test_case "slice_outer" `Quick test_slice_outer;
        ] );
      ( "figure2",
        [
          Alcotest.test_case "map" `Quick test_map_all_constructors;
          Alcotest.test_case "filter" `Quick test_filter_all_constructors;
          Alcotest.test_case "concat_map" `Quick test_concat_map_all_constructors;
          Alcotest.test_case "zip (all 16 pairs)" `Quick test_zip_all_pairs;
          Alcotest.test_case "zip idx/idx stays indexed" `Quick
            test_zip_idx_idx_stays_indexed;
          Alcotest.test_case "collect" `Quick test_collect_all_constructors;
          Alcotest.test_case "sum/fold" `Quick test_sum_fold_all_constructors;
          Alcotest.test_case "to_stepper" `Quick test_to_stepper_all_constructors;
        ] );
      ( "describe",
        [
          Alcotest.test_case "structures" `Quick (fun () ->
              Alcotest.(check string) "flat" "IdxFlat[3]"
                (Seq_iter.describe (idx_flat [ 1; 2; 3 ]));
              Alcotest.(check string) "step" "StepFlat"
                (Seq_iter.describe (step_flat [ 1 ]));
              Alcotest.(check string) "filter nest" "IdxNest[4](StepFlat)"
                (Seq_iter.describe
                   (Seq_iter.filter (fun x -> x > 0) (idx_flat [ 1; -2; 3; 4 ])));
              Alcotest.(check string) "double nest" "IdxNest[2](IdxNest[2](StepFlat))"
                (Seq_iter.describe
                   (Seq_iter.filter
                      (fun x -> x > 0)
                      (Seq_iter.concat_map
                         (fun x -> idx_flat [ x; x ])
                         (idx_flat [ 1; 2 ]))));
              Alcotest.(check string) "empty nest" "IdxNest[0](empty)"
                (Seq_iter.describe
                   (Seq_iter.concat_map Seq_iter.singleton (idx_flat []))));
        ] );
      ( "examples",
        [
          Alcotest.test_case "sum-of-filter (paper 3.2)" `Quick
            test_sum_of_filter_example;
          Alcotest.test_case "fusion: single pass" `Quick
            test_fusion_no_materialization;
          Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
          Alcotest.test_case "empty cases" `Quick test_empty_cases;
          Alcotest.test_case "reduce / to_array" `Quick test_reduce_and_to_array;
        ] );
      ( "properties",
        [
          prop_pipeline_matches_list;
          prop_pipeline_outer_sliceable;
          prop_zip_matches_combine;
          prop_sum_float_assoc;
        ] );
    ]
