(* Benchmark harness: micro-benchmarks (Bechamel) for the paper's
   per-mechanism claims, then the full figure harness (Figure 3
   measured; Figures 4, 5, 7, 8 simulated from calibrated costs).

   Run with:  dune exec bench/main.exe            (full: a few minutes)
              dune exec bench/main.exe -- quick   (reduced calibration)  *)

open Bechamel
open Toolkit
open Triolet
module Kern = Triolet_kernels
module E = Triolet_baselines.Eden_list
module Codec = Triolet_base.Codec

let () = Triolet_runtime.Pool.set_default_width 2

let () =
  Config.set_cluster
    { Triolet_runtime.Cluster.nodes = 4; cores_per_node = 2; flat = false }

(* ------------------------------------------------------------------ *)
(* Micro-benchmark definitions                                         *)

let n_dot = 50_000

let xs = Float.Array.init n_dot (fun i -> float_of_int (i mod 91) /. 91.0)
let ys = Float.Array.init n_dot (fun i -> float_of_int (i mod 53) /. 53.0)

(* Section 2's dot product: the fused iterator pipeline vs materializing
   every intermediate vs the hand-written loop. *)
let bench_dot =
  let fused () =
    Iter.sum
      (Iter.map (fun (x, y) -> x *. y)
         (Iter.zip (Iter.of_floatarray xs) (Iter.of_floatarray ys)))
  in
  let materialized () =
    (* what zip/map would cost if each skeleton produced an array *)
    let zipped =
      Array.init n_dot (fun i -> (Float.Array.get xs i, Float.Array.get ys i))
    in
    let products = Array.map (fun (x, y) -> x *. y) zipped in
    Array.fold_left ( +. ) 0.0 products
  in
  let imperative () =
    let acc = ref 0.0 in
    for i = 0 to n_dot - 1 do
      acc := !acc +. (Float.Array.unsafe_get xs i *. Float.Array.unsafe_get ys i)
    done;
    !acc
  in
  Test.make_grouped ~name:"dot"
    [
      Test.make ~name:"iterators-fused" (Staged.stage fused);
      Test.make ~name:"materialized" (Staged.stage materialized);
      Test.make ~name:"imperative" (Staged.stage imperative);
    ]

(* Figure 1's "slow" cell: nested traversal through steppers vs folds vs
   a plain loop nest. *)
let bench_nested =
  let n = 300 in
  let stepper () =
    Stepper.sum_int
      (Stepper.concat_map (fun k -> Stepper.range 0 k) (Stepper.range 0 n))
  in
  let folder () =
    Folder.sum_int
      (Folder.concat_map (fun k -> Folder.range 0 k) (Folder.range 0 n))
  in
  let loop () =
    let acc = ref 0 in
    for k = 0 to n - 1 do
      for i = 0 to k - 1 do
        acc := !acc + i
      done
    done;
    !acc
  in
  Test.make_grouped ~name:"nested-traversal"
    [
      Test.make ~name:"stepper" (Staged.stage stepper);
      Test.make ~name:"fold" (Staged.stage folder);
      Test.make ~name:"loop" (Staged.stage loop);
    ]

(* Section 3.4's block-copy serialization of pointer-free arrays vs
   per-element encoding of boxed structures. *)
let bench_serialize =
  let fa = Float.Array.make 8192 3.14 in
  let boxed = Array.init 8192 (fun i -> (i, 3.14)) in
  let block () = Codec.to_bytes Codec.floatarray fa in
  let element () =
    Codec.to_bytes (Codec.array (Codec.pair Codec.int Codec.float)) boxed
  in
  Test.make_grouped ~name:"serialize-64KiB"
    [
      Test.make ~name:"floatarray-block" (Staged.stage block);
      Test.make ~name:"boxed-elementwise" (Staged.stage element);
    ]

(* Histogramming through a collector (per-task private mutation) vs a
   boxed list pipeline. *)
let bench_histogram =
  let n = 20_000 in
  let coll () =
    Iter.histogram ~bins:64 (Iter.map (fun i -> i * 7 mod 64) (Iter.range 0 n))
  in
  let list () =
    E.histogram ~bins:64 (E.map (fun i -> i * 7 mod 64) (List.init n Fun.id))
  in
  Test.make_grouped ~name:"histogram"
    [
      Test.make ~name:"iter-collector" (Staged.stage coll);
      Test.make ~name:"eden-list" (Staged.stage list);
    ]

(* Figure 3 in micro form: the three styles of each kernel on small
   instances (the measured full-size table is printed below). *)
let bench_kernels =
  let mriq_d = Kern.Dataset.mriq ~seed:5 ~samples:96 ~voxels:128 in
  let a, b = Kern.Dataset.sgemm_matrices ~seed:6 ~m:48 ~k:48 ~n:48 in
  let tp = Kern.Dataset.tpacf ~seed:7 ~points:96 ~random_sets:1 in
  let cc =
    Kern.Dataset.cutcp ~seed:8 ~atoms:96 ~nx:16 ~ny:16 ~nz:16 ~spacing:0.5
      ~cutoff:2.0
  in
  Test.make_grouped ~name:"kernels"
    [
      Test.make_grouped ~name:"mri-q"
        [
          Test.make ~name:"c" (Staged.stage (fun () -> Kern.Mriq.run_c mriq_d));
          Test.make ~name:"triolet"
            (Staged.stage (fun () ->
                 Kern.Mriq.run_triolet ~hint:Iter.sequential mriq_d));
          Test.make ~name:"eden"
            (Staged.stage (fun () -> Kern.Mriq.run_eden mriq_d));
        ];
      Test.make_grouped ~name:"sgemm"
        [
          Test.make ~name:"c" (Staged.stage (fun () -> Kern.Sgemm.run_c a b));
          Test.make ~name:"triolet"
            (Staged.stage (fun () ->
                 Kern.Sgemm.run_triolet ~hint:Iter2.sequential a b));
          Test.make ~name:"eden"
            (Staged.stage (fun () -> Kern.Sgemm.run_eden a b));
        ];
      Test.make_grouped ~name:"tpacf"
        [
          Test.make ~name:"c"
            (Staged.stage (fun () -> Kern.Tpacf.run_c ~bins:16 tp));
          Test.make ~name:"triolet"
            (Staged.stage (fun () ->
                 Config.with_cluster
                   { Triolet_runtime.Cluster.nodes = 1; cores_per_node = 1;
                     flat = false }
                   (fun () -> Kern.Tpacf.run_triolet ~bins:16 tp)));
          Test.make ~name:"eden"
            (Staged.stage (fun () -> Kern.Tpacf.run_eden ~bins:16 tp));
        ];
      Test.make_grouped ~name:"cutcp"
        [
          Test.make ~name:"c" (Staged.stage (fun () -> Kern.Cutcp.run_c cc));
          Test.make ~name:"triolet"
            (Staged.stage (fun () ->
                 Kern.Cutcp.run_triolet ~hint:Iter.sequential cc));
          Test.make ~name:"eden"
            (Staged.stage (fun () -> Kern.Cutcp.run_eden cc));
        ];
    ]

(* Zip fusion: the zip3 pipeline against hand-zipped loops. *)
let bench_zip =
  let n = 20_000 in
  let a = Float.Array.init n (fun i -> float_of_int i) in
  let b = Float.Array.init n (fun i -> float_of_int (i * 2)) in
  let c = Float.Array.init n (fun i -> float_of_int (i * 3)) in
  let fused () =
    Iter.sum
      (Iter.map
         (fun (x, y, z) -> x +. (y *. z))
         (Iter.zip3 (Iter.of_floatarray a) (Iter.of_floatarray b)
            (Iter.of_floatarray c)))
  in
  let manual () =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc :=
        !acc
        +. Float.Array.unsafe_get a i
        +. (Float.Array.unsafe_get b i *. Float.Array.unsafe_get c i)
    done;
    !acc
  in
  Test.make_grouped ~name:"zip3"
    [
      Test.make ~name:"iterators" (Staged.stage fused);
      Test.make ~name:"manual-loop" (Staged.stage manual);
    ]

(* cutcp formulated as scatter (paper's CPU code) vs gather (the
   GPU-style Dim3 variant). *)
let bench_cutcp_direction =
  let box =
    Kern.Dataset.cutcp ~seed:9 ~atoms:64 ~nx:12 ~ny:12 ~nz:12 ~spacing:0.5
      ~cutoff:1.8
  in
  Test.make_grouped ~name:"cutcp-direction"
    [
      Test.make ~name:"scatter"
        (Staged.stage (fun () ->
             Kern.Cutcp.run_triolet ~hint:Iter.sequential box));
      Test.make ~name:"gather-3d"
        (Staged.stage (fun () ->
             Kern.Cutcp.run_gather ~hint:Iter3.sequential box));
      Test.make ~name:"scatter-c" (Staged.stage (fun () -> Kern.Cutcp.run_c box));
    ]

(* Payload shipping: the end-to-end cost of moving a slice across a
   node boundary (serialize + copy + decode). *)
let bench_payload =
  let small = [ Triolet_base.Payload.Floats (Float.Array.make 512 1.0) ] in
  let large = [ Triolet_base.Payload.Floats (Float.Array.make 65536 1.0) ] in
  Test.make_grouped ~name:"payload-ship"
    [
      Test.make ~name:"4KiB"
        (Staged.stage (fun () -> Triolet_base.Payload.ship small));
      Test.make ~name:"512KiB"
        (Staged.stage (fun () -> Triolet_base.Payload.ship large));
    ]

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)

let run_group test =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name o acc ->
        let ns =
          match Analyze.OLS.estimates o with Some (x :: _) -> x | _ -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square o) in
        (name, ns, r2) :: acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, ns, r2) ->
      Printf.printf "  %-36s %14.1f ns/run   (r2 %.3f)\n" name ns r2)
    rows

let () =
  let quick = Array.exists (fun a -> a = "quick") Sys.argv in
  print_endline "== Micro-benchmarks (Bechamel, monotonic clock) ==";
  print_endline "\n-- loop fusion: dot product (paper section 2) --";
  run_group bench_dot;
  print_endline "\n-- nested traversal encodings (Figure 1 'slow' cell) --";
  run_group bench_nested;
  print_endline "\n-- serialization: block copy vs element-wise (section 3.4) --";
  run_group bench_serialize;
  print_endline "\n-- histogramming: collector vs boxed list --";
  run_group bench_histogram;
  print_endline "\n-- zip fusion --";
  run_group bench_zip;
  print_endline "\n-- cutcp scatter vs gather (Dim3) --";
  run_group bench_cutcp_direction;
  print_endline "\n-- payload shipping (serialize + copy + decode) --";
  run_group bench_payload;
  print_endline "\n-- kernel styles on micro instances (Figure 3 in miniature) --";
  run_group bench_kernels;
  print_endline "\n== Figures (Figure 3 measured; 4, 5, 7, 8 simulated) ==";
  let scale = if quick then 0.25 else 1.0 in
  ignore (Triolet_harness.Figures.all ~scale ())
