(** Global runtime counters: messages and bytes crossing node
    boundaries, chunks executed, work-stealing activity.  Atomic, so
    pool workers may bump them concurrently. *)

type snapshot = {
  messages : int;
  bytes_sent : int;
  chunks_run : int;
  steals : int;
  tasks_spawned : int;
}

val record_message : bytes:int -> unit
val record_chunk : unit -> unit
val record_steal : unit -> unit
val record_task : unit -> unit

val snapshot : unit -> snapshot
val reset : unit -> unit

val measure : (unit -> 'a) -> 'a * snapshot
(** [measure f] runs [f] and returns its result with the counter deltas
    incurred during the call. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
