lib/runtime/mailbox.mli: Bytes
