lib/runtime/wsdeque.mli:
