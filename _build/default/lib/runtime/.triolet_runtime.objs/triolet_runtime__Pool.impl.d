lib/runtime/pool.ml: Array Atomic Condition Domain Fun List Logs Mutex Option Partition Stats Wsdeque
