lib/runtime/stats.ml: Atomic Format
