lib/runtime/wsdeque.ml: Array Atomic
