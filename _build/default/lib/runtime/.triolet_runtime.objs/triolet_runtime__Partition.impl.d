lib/runtime/partition.ml: Array List
