lib/runtime/partition.mli:
