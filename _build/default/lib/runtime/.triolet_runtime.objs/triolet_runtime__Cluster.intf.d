lib/runtime/cluster.mli: Format Pool Triolet_base
