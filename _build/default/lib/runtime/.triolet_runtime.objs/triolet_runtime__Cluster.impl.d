lib/runtime/cluster.ml: Array Bytes Format Logs Mailbox Pool Triolet_base
