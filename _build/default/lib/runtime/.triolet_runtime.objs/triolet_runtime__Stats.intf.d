lib/runtime/stats.mli: Format
