lib/runtime/mailbox.ml: Bytes Condition Mutex Queue Stats
