lib/runtime/pool.mli:
