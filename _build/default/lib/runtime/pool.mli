(** Work-stealing domain pool: Triolet's intra-node parallel substrate
    (paper, section 3.4).

    A pool owns [n - 1] helper domains plus the calling domain.  Jobs
    preload per-worker Chase–Lev deques with chunks; workers drain their
    own deque and steal from peers.  Parallel consumers called from
    *inside* a pool worker run inline (nested data parallelism is
    flattened). *)

type t

val create : ?workers:int -> unit -> t
(** Total worker count including the caller; defaults to
    [Domain.recommended_domain_count ()]. *)

val size : t -> int

val shutdown : t -> unit
(** Joins the helper domains.  The pool must be idle. *)

val parallel_chunks :
  t ->
  chunks:(int * int) array ->
  f:(int -> int -> 'a) ->
  merge:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** Executes every (offset, length) chunk exactly once across the pool,
    folding each worker's chunk results locally before combining the
    per-worker partials.  [merge] must be associative with identity
    [init]; combination order is unspecified.

    If [f] raises, remaining chunks are skipped, all workers rendezvous
    normally, and the first exception is re-raised on the caller. *)

val parallel_for : t -> ?chunks:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** Parallel loop over [lo, hi) for side effects on disjoint state. *)

val parallel_reduce :
  t ->
  ?chunks:int ->
  lo:int ->
  hi:int ->
  f:(int -> 'a) ->
  merge:('a -> 'a -> 'a) ->
  init:'a ->
  unit ->
  'a

(** {1 Default pool}

    Iterator consumers share one lazily created pool. *)

val set_default_width : int -> unit
(** Must be called before the first {!default} use to take effect. *)

val default : unit -> t
