(** Node mailboxes: FIFO queues of serialized messages.

    All inter-node traffic flows through mailboxes as opaque byte
    buffers; every send is counted in {!Stats}. *)

type t

val create : unit -> t

val send : t -> Bytes.t -> unit

val recv : t -> Bytes.t
(** Blocking receive. *)

val try_recv : t -> Bytes.t option

val pending : t -> int

val totals : t -> int * int
(** (messages, bytes) ever sent to this mailbox. *)
