(** Chase–Lev work-stealing deque (SPAA 2005).

    One owner pushes and pops at the bottom; any number of thieves steal
    from the top. *)

type 'a t

type 'a steal_result =
  | Stolen of 'a
  | Empty  (** nothing to steal *)
  | Retry  (** lost a race; try again *)

val create : ?capacity:int -> unit -> 'a t

val size : 'a t -> int
(** Approximate under concurrency. *)

val push : 'a t -> 'a -> unit
(** Owner only. *)

val pop : 'a t -> 'a option
(** Owner only; takes the most recently pushed element. *)

val steal : 'a t -> 'a steal_result
(** Any domain; takes the oldest element. *)
