(** Node mailboxes: FIFO queues of serialized messages.

    All inter-node traffic in the cluster runtime flows through
    mailboxes as opaque byte buffers — data crosses a node boundary only
    in serialized form, as on a real network.  Every send is counted in
    {!Stats}. *)

type t = {
  q : Bytes.t Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable total_bytes : int;
  mutable total_messages : int;
}

let create () =
  {
    q = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    total_bytes = 0;
    total_messages = 0;
  }

let send t msg =
  Mutex.lock t.lock;
  Queue.push msg t.q;
  t.total_bytes <- t.total_bytes + Bytes.length msg;
  t.total_messages <- t.total_messages + 1;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock;
  Stats.record_message ~bytes:(Bytes.length msg)

(** Blocking receive. *)
let recv t =
  Mutex.lock t.lock;
  while Queue.is_empty t.q do
    Condition.wait t.nonempty t.lock
  done;
  let msg = Queue.pop t.q in
  Mutex.unlock t.lock;
  msg

let try_recv t =
  Mutex.lock t.lock;
  let msg = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
  Mutex.unlock t.lock;
  msg

let pending t =
  Mutex.lock t.lock;
  let n = Queue.length t.q in
  Mutex.unlock t.lock;
  n

let totals t = (t.total_messages, t.total_bytes)
