(** Global runtime counters.

    The evaluation attributes performance differences to communication
    volume and task behaviour, so the runtime counts everything it does:
    messages and bytes crossing node boundaries, chunks executed, and
    work-stealing activity.  Counters are atomic so pool workers can
    bump them concurrently. *)

type snapshot = {
  messages : int;
  bytes_sent : int;
  chunks_run : int;
  steals : int;
  tasks_spawned : int;
}

let messages = Atomic.make 0
let bytes_sent = Atomic.make 0
let chunks_run = Atomic.make 0
let steals = Atomic.make 0
let tasks_spawned = Atomic.make 0

let add c n = ignore (Atomic.fetch_and_add c n)

let record_message ~bytes =
  add messages 1;
  add bytes_sent bytes

let record_chunk () = add chunks_run 1
let record_steal () = add steals 1
let record_task () = add tasks_spawned 1

let snapshot () =
  {
    messages = Atomic.get messages;
    bytes_sent = Atomic.get bytes_sent;
    chunks_run = Atomic.get chunks_run;
    steals = Atomic.get steals;
    tasks_spawned = Atomic.get tasks_spawned;
  }

let reset () =
  Atomic.set messages 0;
  Atomic.set bytes_sent 0;
  Atomic.set chunks_run 0;
  Atomic.set steals 0;
  Atomic.set tasks_spawned 0

(** Counter deltas around running [f]. *)
let measure f =
  let before = snapshot () in
  let v = f () in
  let after = snapshot () in
  ( v,
    {
      messages = after.messages - before.messages;
      bytes_sent = after.bytes_sent - before.bytes_sent;
      chunks_run = after.chunks_run - before.chunks_run;
      steals = after.steals - before.steals;
      tasks_spawned = after.tasks_spawned - before.tasks_spawned;
    } )

let pp_snapshot fmt s =
  Format.fprintf fmt "messages=%d bytes=%d chunks=%d steals=%d tasks=%d"
    s.messages s.bytes_sent s.chunks_run s.steals s.tasks_spawned
