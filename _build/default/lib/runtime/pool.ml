(** Work-stealing domain pool: Triolet's intra-node parallel substrate.

    A pool owns [n - 1] helper domains plus the calling domain.  A job
    preloads per-worker Chase–Lev deques with chunks; each worker drains
    its own deque and steals from peers until a global remaining-chunk
    counter hits zero.  This mirrors the paper's two-level architecture,
    where shared-memory thread parallelism with work stealing runs
    inside each cluster node (section 3.4). *)

let log_src = Logs.Src.create "triolet.pool" ~doc:"Work-stealing pool"

module Log = (val Logs.src_log log_src)

type t = {
  n : int;  (** worker count, including the submitting domain *)
  lock : Mutex.t;
  have_job : Condition.t;
  job_done : Condition.t;
  mutable generation : int;
  mutable job : (int -> unit) option;
  mutable running : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.n

let worker_loop t =
  let gen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.lock;
    while (not t.stop) && t.generation = !gen do
      Condition.wait t.have_job t.lock
    done;
    if t.stop then begin
      Mutex.unlock t.lock;
      continue_ := false
    end
    else begin
      gen := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.lock;
      (* Worker ids are assigned per-job inside [run_job]; the closure
         dispatches on an atomic ticket so ids never collide.  Job
         closures are exception-safe (parallel_chunks captures user
         exceptions itself); the guard here keeps a worker domain alive
         no matter what, so the rendezvous below always happens. *)
      (try job (-1) with _ -> ());
      Mutex.lock t.lock;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.broadcast t.job_done;
      Mutex.unlock t.lock
    end
  done

let create ?workers () =
  let n =
    match workers with
    | Some w ->
        if w <= 0 then invalid_arg "Pool.create: workers must be positive";
        w
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      n;
      lock = Mutex.create ();
      have_job = Condition.create ();
      job_done = Condition.create ();
      generation = 0;
      job = None;
      running = 0;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.have_job;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Nested parallelism: a parallel consumer called from inside a pool
   worker (e.g. a localpar histogram inside a distributed reduction)
   must not re-enter the job machinery — the other workers are busy
   with the outer job and the rendezvous state is not reentrant.  The
   inner job runs inline on the calling worker instead, which is the
   usual flattening of nested data parallelism. *)
let inside_job : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Runs [job] on every worker (the caller acts as one of them) and
   returns once all have finished.  [job] receives a distinct worker id
   in [0, n). *)
let run_job t job =
  let ticket = Atomic.make 1 in
  let dispatch hint =
    let id = if hint = 0 then 0 else Atomic.fetch_and_add ticket 1 in
    Domain.DLS.set inside_job true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set inside_job false)
      (fun () -> job id)
  in
  if t.n = 1 || Domain.DLS.get inside_job then job 0
  else begin
    Mutex.lock t.lock;
    t.job <- Some dispatch;
    t.running <- t.n - 1;
    t.generation <- t.generation + 1;
    Condition.broadcast t.have_job;
    Mutex.unlock t.lock;
    let main_exn = (try dispatch 0; None with e -> Some e) in
    Mutex.lock t.lock;
    while t.running > 0 do
      Condition.wait t.job_done t.lock
    done;
    t.job <- None;
    Mutex.unlock t.lock;
    match main_exn with Some e -> raise e | None -> ()
  end

(** Core primitive: execute every (off, len) chunk exactly once across
    the pool, folding each worker's chunk results locally with [merge]
    and combining the per-worker partials at the end.  Local
    accumulation before any cross-worker combining is exactly the
    result-aggregation strategy described for dot product in section 2. *)
let parallel_chunks t ~chunks ~f ~merge ~init =
  let nchunks = Array.length chunks in
  Log.debug (fun m -> m "parallel_chunks: %d chunks on %d workers" nchunks t.n);
  if nchunks = 0 then init
  else begin
    let deques = Array.init t.n (fun _ -> Wsdeque.create ()) in
    (* Blocked preload keeps adjacent chunks on the same worker for
       locality; stealing rebalances irregular ones. *)
    Array.iteri
      (fun i c -> Wsdeque.push deques.(i * t.n / nchunks) c)
      chunks;
    let remaining = Atomic.make nchunks in
    let results = Array.make t.n None in
    (* First user exception wins; remaining chunks are drained without
       running user code so every worker's hunt loop terminates. *)
    let failure = Atomic.make None in
    let job id =
      let acc = ref None in
      let execute (off, len) =
        (match Atomic.get failure with
        | Some _ -> ()
        | None -> (
            Stats.record_chunk ();
            try
              let v = f off len in
              acc :=
                (match !acc with
                | None -> Some v
                | Some a -> Some (merge a v))
            with e -> ignore (Atomic.compare_and_set failure None (Some e))));
        ignore (Atomic.fetch_and_add remaining (-1))
      in
      let rec drain () =
        match Wsdeque.pop deques.(id) with
        | Some c -> execute c; drain ()
        | None -> hunt ()
      and hunt () =
        if Atomic.get remaining > 0 then begin
          let stolen = ref false in
          for k = 1 to t.n - 1 do
            if not !stolen then
              match Wsdeque.steal deques.((id + k) mod t.n) with
              | Wsdeque.Stolen c ->
                  Stats.record_steal ();
                  stolen := true;
                  execute c
              | Wsdeque.Empty | Wsdeque.Retry -> ()
          done;
          if !stolen then drain ()
          else begin
            Domain.cpu_relax ();
            hunt ()
          end
        end
      in
      drain ();
      results.(id) <- !acc
    in
    run_job t job;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.fold_left
      (fun a r ->
        match (a, r) with
        | None, x | x, None -> x
        | Some a, Some b -> Some (merge a b))
      None results
    |> function
    | None -> init
    | Some v -> merge init v
  end

(** Parallel loop over [lo, hi) for side effects on disjoint state. *)
let parallel_for t ?chunks ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then begin
    let parts =
      match chunks with
      | Some c -> c
      | None -> Partition.chunk_count ~workers:t.n n
    in
    let chunks =
      Array.map (fun (o, l) -> (lo + o, l)) (Partition.blocks ~parts n)
    in
    parallel_chunks t ~chunks
      ~f:(fun off len ->
        for i = off to off + len - 1 do
          f i
        done)
      ~merge:(fun () () -> ())
      ~init:()
  end

(** Parallel reduction of [f i] over [lo, hi). *)
let parallel_reduce t ?chunks ~lo ~hi ~f ~merge ~init () =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    let parts =
      match chunks with
      | Some c -> c
      | None -> Partition.chunk_count ~workers:t.n n
    in
    let blocks =
      Array.map (fun (o, l) -> (lo + o, l)) (Partition.blocks ~parts n)
    in
    parallel_chunks t ~chunks:blocks
      ~f:(fun off len ->
        let acc = ref (f off) in
        for i = off + 1 to off + len - 1 do
          acc := merge !acc (f i)
        done;
        !acc)
      ~merge ~init
  end

(* A lazily created default pool shared by iterator consumers.  Its
   width can be forced before first use (tests use small widths). *)
let default_width = ref None
let default_pool : t option ref = ref None

let set_default_width w = default_width := Some w

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create ?workers:!default_width () in
      default_pool := Some p;
      p
