(** Two-level distributed runtime (paper, section 3.4).

    Nodes are in-process entities whose only data channel is a mailbox
    of serialized bytes: payloads are encoded, shipped, and decoded into
    structurally fresh buffers, so a task can never touch the sender's
    memory.  Task *code* travels as an OCaml closure (serializing code
    is what the Triolet compiler adds); task *data* always travels as
    bytes, and every byte is counted. *)

type config = {
  nodes : int;
  cores_per_node : int;
  flat : bool;
      (** [true] models Eden's flat process view: one single-threaded
          process per core and no shared memory within a node *)
}

val default_config : config

type report = {
  scatter_bytes : int;
  gather_bytes : int;
  scatter_messages : int;
  gather_messages : int;
  max_message_bytes : int;
}

val pp_report : Format.formatter -> report -> unit

val run :
  ?pool:Pool.t ->
  config ->
  scatter:(int -> Triolet_base.Payload.t) ->
  work:(node:int -> pool:Pool.t -> Triolet_base.Payload.t -> 'r) ->
  result_codec:'r Triolet_base.Codec.t ->
  merge:('a -> 'r -> 'a) ->
  init:'a ->
  'a * report
(** [run cfg ~scatter ~work ~result_codec ~merge ~init]:

    - [scatter w] builds worker [w]'s input payload; it is serialized
      and delivered through the worker's mailbox;
    - [work ~node ~pool payload] runs against the decoded payload,
      using [pool] for intra-node parallelism (a 1-wide pool in flat
      mode);
    - each worker's result is serialized with [result_codec], shipped
      back, decoded, and folded with [merge] in worker order.

    In flat mode there are [nodes * cores_per_node] single-threaded
    workers; otherwise one worker per node. *)
