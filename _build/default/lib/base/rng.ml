(** Deterministic splitmix64 random-number generator.

    Workload generators must be reproducible across runs and independent
    of OCaml's [Random] state, so every synthetic dataset in the
    reproduction is derived from an explicit seed through this module. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** Uniform float in [lo, hi). *)
let float_range t lo hi = lo +. ((hi -. lo) *. float t)

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Fresh independent generator derived from this one. *)
let split t = { state = next_int64 t }

let floatarray t n f =
  Float.Array.init n (fun _ -> f t)
