(** Deterministic splitmix64 random-number generator.

    All synthetic datasets derive from explicit seeds through this
    module, so workloads are reproducible across runs and independent of
    OCaml's global [Random] state. *)

type t

val create : int -> t

val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi]: uniform in [lo, hi). *)

val int : t -> int -> int
(** [int t bound]: uniform in [0, bound); [bound] must be positive. *)

val bool : t -> bool

val split : t -> t
(** Fresh generator with an independent stream. *)

val floatarray : t -> int -> (t -> float) -> floatarray
(** [floatarray t n f] draws [n] values with [f]. *)
