(** Heterogeneous data payloads shipped between cluster nodes.

    A payload is the serializable image of an iterator slice's data
    source (paper, section 3.5): the list of buffers a remote task
    needs, extracted by slicing and rebuilt on the receiving side. *)

type buf =
  | Floats of floatarray  (** pointer-free array: block-copied *)
  | Ints of int array
  | Raw of string  (** opaque pre-encoded bytes *)

type t = buf list

val codec : t Codec.t

val size : t -> int
(** Exact serialized size in bytes. *)

val empty : t

(** {1 Layout accessors}

    Rebuild functions state the layout they expect; a mismatch raises
    [Invalid_argument] and indicates a slicing bug. *)

val floats_exn : buf -> floatarray
val ints_exn : buf -> int array
val raw_exn : buf -> string

val ship : t -> t * int
(** [ship p] forces [p] through the wire format and returns the decoded
    copy together with its size in bytes — equivalent to a send plus
    receive on a real network, including the fresh-buffer guarantee. *)
