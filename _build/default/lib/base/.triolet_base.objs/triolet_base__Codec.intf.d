lib/base/codec.mli: Bytes Rw
