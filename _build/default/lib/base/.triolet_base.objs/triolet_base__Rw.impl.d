lib/base/rw.ml: Bytes Char Float Int64 String
