lib/base/vec.ml: Array
