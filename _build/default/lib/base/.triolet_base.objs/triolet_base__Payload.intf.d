lib/base/payload.mli: Codec
