lib/base/payload.ml: Bytes Codec Rw
