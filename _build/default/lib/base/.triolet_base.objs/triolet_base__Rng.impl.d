lib/base/rng.ml: Float Int64
