lib/base/rw.mli: Bytes
