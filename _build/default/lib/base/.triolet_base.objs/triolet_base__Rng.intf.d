lib/base/rng.mli:
