lib/base/codec.ml: Array Float List Rw String
