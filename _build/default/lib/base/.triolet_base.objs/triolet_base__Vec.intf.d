lib/base/vec.mli:
