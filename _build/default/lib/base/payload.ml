(** Heterogeneous data payloads shipped between cluster nodes.

    A payload is the serializable image of an iterator slice's data
    source (paper, section 3.5).  Slicing an iterator produces a payload
    holding exactly the subarrays a remote task needs; the cluster
    runtime serializes it, ships the bytes, and the task rebuilds its
    data from the decoded payload on the remote side. *)

type buf =
  | Floats of floatarray      (** pointer-free array: block-copied *)
  | Ints of int array
  | Raw of string             (** opaque pre-encoded bytes *)

type t = buf list

let buf_codec : buf Codec.t =
  let encode w = function
    | Floats a -> Rw.write_u8 w 0; Codec.floatarray.Codec.encode w a
    | Ints a -> Rw.write_u8 w 1; Codec.int_array.Codec.encode w a
    | Raw s -> Rw.write_u8 w 2; Rw.write_string w s
  in
  let decode r =
    match Rw.read_u8 r with
    | 0 -> Floats (Codec.floatarray.Codec.decode r)
    | 1 -> Ints (Codec.int_array.Codec.decode r)
    | 2 -> Raw (Rw.read_string r)
    | _ -> raise Rw.Underflow
  in
  let size = function
    | Floats a -> 1 + Codec.floatarray.Codec.size a
    | Ints a -> 1 + Codec.int_array.Codec.size a
    | Raw s -> 1 + Codec.string.Codec.size s
  in
  Codec.make ~encode ~decode ~size

let codec : t Codec.t = Codec.list buf_codec

let size (p : t) = codec.Codec.size p

let empty : t = []

(* Accessors used by rebuild functions: they state the expected layout
   and fail loudly on a mismatch, which would indicate a slicing bug. *)

let floats_exn = function
  | Floats a -> a
  | Ints _ | Raw _ -> invalid_arg "Payload.floats_exn: expected Floats"

let ints_exn = function
  | Ints a -> a
  | Floats _ | Raw _ -> invalid_arg "Payload.ints_exn: expected Ints"

let raw_exn = function
  | Raw s -> s
  | Floats _ | Ints _ -> invalid_arg "Payload.raw_exn: expected Raw"

(** Force a payload through the wire format, producing structurally
    fresh buffers.  Equivalent to a send + receive on a real network. *)
let ship (p : t) : t * int =
  let bytes = Codec.to_bytes codec p in
  (Codec.of_bytes codec bytes, Bytes.length bytes)
