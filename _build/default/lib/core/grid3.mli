(** Dense 3-D float grids over unboxed float arrays, stored x-fastest.
    Z-slabs are contiguous, so the slab decomposition used by {!Iter3}
    moves data with block copies. *)

type t

val create : int -> int -> int -> t
(** [create nx ny nz]: zero-filled. *)

val init : int -> int -> int -> (int -> int -> int -> float) -> t
(** [init nx ny nz f] with [f x y z]. *)

val of_floatarray : nx:int -> ny:int -> nz:int -> floatarray -> t
val dims : t -> int * int * int
val data : t -> floatarray
val points : t -> int

val linear : t -> int -> int -> int -> int
(** Linear index of (x, y, z). *)

val get : t -> int -> int -> int -> float
val set : t -> int -> int -> int -> float -> unit
val unsafe_get : t -> int -> int -> int -> float
val unsafe_set : t -> int -> int -> int -> float -> unit

val copy_slab : t -> int -> int -> t
(** [copy_slab g z0 n]: fresh grid holding planes [z0, z0+n) — one
    blit. *)

val blit_slab : src:t -> dst:t -> z0:int -> unit

val add : t -> t -> t
(** Elementwise sum into a fresh grid. *)

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
val total : t -> float
val equal_eps : eps:float -> t -> t -> bool
