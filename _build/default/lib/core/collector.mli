(** The collector encoding: an imperative fold whose worker updates its
    output by side effect (paper, section 3.1, "Collectors").

    The only encoding supporting mutation (Figure 1) — histogramming,
    packing variable-length output — at the price of parallelism:
    hybrid iterators use collectors only for the sequential leaves of a
    parallel loop, with private state merged afterwards. *)

type 'a t = { run : ('a -> unit) -> unit }

val empty : 'a t
val singleton : 'a -> 'a t
val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t
val of_floatarray : floatarray -> float t
val of_stepper : 'a Stepper.t -> 'a t
val of_folder : 'a Folder.t -> 'a t
val range : int -> int -> int t

val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val filter_map : ('a -> 'b option) -> 'a t -> 'b t
val concat_map : ('a -> 'b t) -> 'a t -> 'b t
val append : 'a t -> 'a t -> 'a t

val iter : ('a -> unit) -> 'a t -> unit
val length : 'a t -> int

val to_vec : 'a -> 'a t -> 'a Triolet_base.Vec.t
(** Pack variable-length output into contiguous storage. *)

val to_floatarray : float t -> floatarray
val to_list : 'a t -> 'a list

val histogram : bins:int -> int t -> int array
(** Counts occurrences of each bin index in [0, bins); out-of-range
    indices are ignored. *)

val weighted_histogram : bins:int -> (int * float) t -> floatarray
(** Floating-point histogram over (bin, weight) pairs — the cutcp
    pattern. *)

val sum_float : float t -> float

(** {1 Extended operations} *)

val take : int -> 'a t -> 'a t
(** At most the first [n] elements (the traversal itself still runs to
    completion — collectors cannot stop their producer). *)

val reduce_by_key :
  size:int -> merge:('acc -> 'a -> 'acc) -> init:'acc -> (int * 'a) t ->
  'acc array
(** Keyed reduction into a dense table: the generalization of
    {!histogram} to arbitrary per-key accumulation. *)

val min_float : float t -> float
val max_float : float t -> float
