(** Index domains: the [Domain] type class of the paper (section 3.3).

    A shape describes an iteration space; its type parameter is the type
    of indices it contains (the paper's associated type [Index d]). *)

type _ t =
  | Seq : int -> int t  (** 1-D space of the given length *)
  | Dim2 : int * int -> (int * int) t  (** height x width *)
  | Dim3 : int * int * int -> (int * int * int) t  (** depth x height x width *)

val seq : int -> int t
val dim2 : int -> int -> (int * int) t
val dim3 : int -> int -> int -> (int * int * int) t

val size : _ t -> int
(** Number of indices in the domain. *)

val linear : 'i t -> 'i -> int
(** Row-major linearization. *)

val of_linear : 'i t -> int -> 'i
(** Inverse of {!linear}. *)

val mem : 'i t -> 'i -> bool

val fold : 'i t -> ('a -> 'i -> 'a) -> 'a -> 'a
(** Fold over all indices in row-major order — the [idxToFold]
    conversion, overloaded per domain. *)

val iter : 'i t -> ('i -> unit) -> unit

val intersect : 'i t -> 'i t -> 'i t
(** Pointwise minimum of extents: the common sub-domain visited by
    [zipWith]. *)

val equal : 'i t -> 'i t -> bool
val to_string : _ t -> string
