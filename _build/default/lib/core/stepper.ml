(** The stepper encoding: a fusible coroutine yielding one element per
    resumption (paper, section 3.1, "Steppers").

    This is stream fusion in the style of Coutts, Leshchinskiy and
    Stewart: a suspended loop state plus a step function returning
    [Yield]/[Skip]/[Done].  [Skip] lets [filter] drop an element without
    recursion, which is what keeps the encoding fusible.  Steppers are
    inherently sequential — only the "next" element is reachable — so
    they sit inside the parallel outer layers of hybrid iterators. *)

type ('a, 's) step = Yield of 'a * 's | Skip of 's | Done

type 'a t = Stepper : 's * ('s -> ('a, 's) step) -> 'a t

let empty = Stepper ((), fun () -> Done)

(** One-element stepper: [unitStep] in the paper's filter equation. *)
let singleton x =
  Stepper (false, function false -> Yield (x, true) | true -> Done)

let unfold seed next = Stepper (seed, next)

let range lo hi =
  Stepper (lo, fun i -> if i >= hi then Done else Yield (i, i + 1))

let of_array a =
  Stepper
    ( 0,
      fun i ->
        if i >= Array.length a then Done else Yield (Array.unsafe_get a i, i + 1)
    )

let of_floatarray (a : floatarray) =
  Stepper
    ( 0,
      fun i ->
        if i >= Float.Array.length a then Done
        else Yield (Float.Array.unsafe_get a i, i + 1) )

let of_list l =
  Stepper (l, function [] -> Done | x :: rest -> Yield (x, rest))

let map f (Stepper (s0, next)) =
  let step s =
    match next s with
    | Yield (x, s') -> Yield (f x, s')
    | Skip s' -> Skip s'
    | Done -> Done
  in
  Stepper (s0, step)

(** [filterStep] of the paper: dropped elements become [Skip]s, so the
    consumer's loop continues without producing a value. *)
let filter p (Stepper (s0, next)) =
  let step s =
    match next s with
    | Yield (x, s') -> if p x then Yield (x, s') else Skip s'
    | Skip s' -> Skip s'
    | Done -> Done
  in
  Stepper (s0, step)

let filter_map f (Stepper (s0, next)) =
  let step s =
    match next s with
    | Yield (x, s') -> (
        match f x with Some y -> Yield (y, s') | None -> Skip s')
    | Skip s' -> Skip s'
    | Done -> Done
  in
  Stepper (s0, step)

(** Zip proceeds by holding at most one pending element from the left
    stream while the right stream catches up. *)
let zip (Stepper (sa0, na)) (Stepper (sb0, nb)) =
  let step (sa, sb, pending) =
    match pending with
    | None -> (
        match na sa with
        | Yield (a, sa') -> Skip (sa', sb, Some a)
        | Skip sa' -> Skip (sa', sb, None)
        | Done -> Done)
    | Some a -> (
        match nb sb with
        | Yield (b, sb') -> Yield ((a, b), (sa, sb', None))
        | Skip sb' -> Skip (sa, sb', Some a)
        | Done -> Done)
  in
  Stepper ((sa0, sb0, None), step)

let zip_with f a b = map (fun (x, y) -> f x y) (zip a b)

let enumerate (Stepper (s0, next)) =
  let step (i, s) =
    match next s with
    | Yield (x, s') -> Yield ((i, x), (i + 1, s'))
    | Skip s' -> Skip (i, s')
    | Done -> Done
  in
  Stepper ((0, s0), step)

let append (Stepper (sa0, na)) (Stepper (sb0, nb)) =
  let step = function
    | `Left (sa, sb) -> (
        match na sa with
        | Yield (x, sa') -> Yield (x, `Left (sa', sb))
        | Skip sa' -> Skip (`Left (sa', sb))
        | Done -> Skip (`Right sb))
    | `Right sb -> (
        match nb sb with
        | Yield (x, sb') -> Yield (x, `Right sb')
        | Skip sb' -> Skip (`Right sb')
        | Done -> Done)
  in
  Stepper (`Left (sa0, sb0), step)

(** Nested traversal: run an inner stepper to exhaustion per outer
    element.  The state carries the suspended inner stepper, so the
    whole nest remains a single non-allocating-per-element loop. *)
let concat_map f (Stepper (s0, next)) =
  let step (s, inner) =
    match inner with
    | Some (Stepper (is, inext)) -> (
        match inext is with
        | Yield (x, is') -> Yield (x, (s, Some (Stepper (is', inext))))
        | Skip is' -> Skip (s, Some (Stepper (is', inext)))
        | Done -> Skip (s, None))
    | None -> (
        match next s with
        | Yield (x, s') -> Skip (s', Some (f x))
        | Skip s' -> Skip (s', None)
        | Done -> Done)
  in
  Stepper ((s0, None), step)

let concat ss = concat_map (fun s -> s) ss

let take n (Stepper (s0, next)) =
  let step (k, s) =
    if k >= n then Done
    else
      match next s with
      | Yield (x, s') -> Yield (x, (k + 1, s'))
      | Skip s' -> Skip (k, s')
      | Done -> Done
  in
  Stepper ((0, s0), step)

let drop n (Stepper (s0, next)) =
  let step (k, s) =
    match next s with
    | Yield (x, s') -> if k < n then Skip (k + 1, s') else Yield (x, (k, s'))
    | Skip s' -> Skip (k, s')
    | Done -> Done
  in
  Stepper ((0, s0), step)

let fold f init (Stepper (s0, next)) =
  let rec loop acc s =
    match next s with
    | Yield (x, s') -> loop (f acc x) s'
    | Skip s' -> loop acc s'
    | Done -> acc
  in
  loop init s0

let iter f st = fold (fun () x -> f x) () st

let length st = fold (fun n _ -> n + 1) 0 st

let to_list st = List.rev (fold (fun acc x -> x :: acc) [] st)

let to_vec dummy st =
  let v = Triolet_base.Vec.create dummy in
  iter (Triolet_base.Vec.push v) st;
  v

let sum_float st = fold (fun acc x -> acc +. x) 0.0 st

let sum_int st = fold (fun acc x -> acc + x) 0 st

let take_while p (Stepper (s0, next)) =
  let step s =
    match next s with
    | Yield (x, s') -> if p x then Yield (x, s') else Done
    | Skip s' -> Skip s'
    | Done -> Done
  in
  Stepper (s0, step)

let drop_while p (Stepper (s0, next)) =
  let step (dropping, s) =
    match next s with
    | Yield (x, s') ->
        if dropping && p x then Skip (true, s') else Yield (x, (false, s'))
    | Skip s' -> Skip (dropping, s')
    | Done -> Done
  in
  Stepper ((true, s0), step)

(** Prefix sums: yields the running accumulator after each element. *)
let scan f init (Stepper (s0, next)) =
  let step (acc, s) =
    match next s with
    | Yield (x, s') ->
        let acc' = f acc x in
        Yield (acc', (acc', s'))
    | Skip s' -> Skip (acc, s')
    | Done -> Done
  in
  Stepper ((init, s0), step)

let exists p st = fold (fun found x -> found || p x) false st

let for_all p st = fold (fun ok x -> ok && p x) true st

let find p (Stepper (s0, next)) =
  let rec loop s =
    match next s with
    | Yield (x, s') -> if p x then Some x else loop s'
    | Skip s' -> loop s'
    | Done -> None
  in
  loop s0

let min_float st =
  fold (fun m x -> Float.min m x) Float.infinity st

let max_float st =
  fold (fun m x -> Float.max m x) Float.neg_infinity st

let equal eq a b =
  let rec loop (Stepper (sa, na)) (Stepper (sb, nb)) =
    let rec advance s next =
      match next s with
      | Yield (x, s') -> Some (x, Stepper (s', next))
      | Skip s' -> advance s' next
      | Done -> None
    in
    match (advance sa na, advance sb nb) with
    | None, None -> true
    | Some (x, a'), Some (y, b') -> eq x y && loop a' b'
    | None, Some _ | Some _, None -> false
  in
  loop a b

(** Interop with the standard library's [Seq]: a stepper steps an
    on-demand [Seq.t] node by node. *)
let of_seq (seq : 'a Seq.t) =
  Stepper
    ( seq,
      fun s ->
        match s () with Seq.Nil -> Done | Seq.Cons (x, rest) -> Yield (x, rest)
    )

let to_seq (Stepper (s0, next)) =
  let rec walk s () =
    match next s with
    | Yield (x, s') -> Seq.Cons (x, walk s')
    | Skip s' -> walk s' ()
    | Done -> Seq.Nil
  in
  walk s0
