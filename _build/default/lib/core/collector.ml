(** The collector encoding: an imperative fold whose worker updates its
    output by side effect (paper, section 3.1, "Collectors").

    Collectors support mutation — histogramming, packing variable-length
    output into arrays — at the price of parallelism: a collector runs
    its whole traversal sequentially.  Hybrid iterators therefore use
    collectors only for the per-task sequential leaves of a parallel
    loop, giving each task private mutable state that is merged
    afterwards. *)

type 'a t = { run : ('a -> unit) -> unit }

let empty = { run = (fun _ -> ()) }

let singleton x = { run = (fun k -> k x) }

let of_list l = { run = (fun k -> List.iter k l) }

let of_array a = { run = (fun k -> Array.iter k a) }

let of_floatarray (a : floatarray) = { run = (fun k -> Float.Array.iter k a) }

let of_stepper st = { run = (fun k -> Stepper.iter k st) }

let of_folder fl = { run = (fun k -> Folder.iter k fl) }

let range lo hi =
  {
    run =
      (fun k ->
        for i = lo to hi - 1 do
          k i
        done);
  }

let map f t = { run = (fun k -> t.run (fun x -> k (f x))) }

let filter p t = { run = (fun k -> t.run (fun x -> if p x then k x)) }

let filter_map f t =
  {
    run =
      (fun k ->
        t.run (fun x -> match f x with Some y -> k y | None -> ()));
  }

let concat_map f t = { run = (fun k -> t.run (fun x -> (f x).run k)) }

let append a b =
  {
    run =
      (fun k ->
        a.run k;
        b.run k);
  }

let iter f t = t.run f

let length t =
  let n = ref 0 in
  t.run (fun _ -> incr n);
  !n

(** Pack a variable-length output stream into a contiguous array — the
    paper's use of collectors for variable-length-output skeletons. *)
let to_vec dummy t =
  let v = Triolet_base.Vec.create dummy in
  t.run (Triolet_base.Vec.push v);
  v

let to_floatarray (t : float t) =
  let v = to_vec 0.0 t in
  Float.Array.init (Triolet_base.Vec.length v) (Triolet_base.Vec.get v)

let to_list t =
  let acc = ref [] in
  t.run (fun x -> acc := x :: !acc);
  List.rev !acc

(** Integer histogram: counts occurrences of each bin index in [0, bins).
    Out-of-range indices are ignored, matching a guarded scatter. *)
let histogram ~bins (t : int t) =
  let h = Array.make bins 0 in
  t.run (fun i -> if i >= 0 && i < bins then h.(i) <- h.(i) + 1);
  h

(** Weighted histogram over (bin, weight) pairs. *)
let weighted_histogram ~bins (t : (int * float) t) =
  let h = Float.Array.make bins 0.0 in
  t.run (fun (i, w) ->
      if i >= 0 && i < bins then
        Float.Array.set h i (Float.Array.get h i +. w));
  h

let sum_float (t : float t) =
  let acc = ref 0.0 in
  t.run (fun x -> acc := !acc +. x);
  !acc

let take n t =
  {
    run =
      (fun k ->
        let seen = ref 0 in
        t.run (fun x ->
            if !seen < n then begin
              incr seen;
              k x
            end));
  }

(** Keyed reduction into a dense table: the generalization of histogram
    to arbitrary per-key accumulation. *)
let reduce_by_key ~size ~merge ~init (t : (int * 'a) t) =
  let table = Array.make size init in
  t.run (fun (key, v) ->
      if key >= 0 && key < size then table.(key) <- merge table.(key) v);
  table

let min_float (t : float t) =
  let m = ref Float.infinity in
  t.run (fun x -> if x < !m then m := x);
  !m

let max_float (t : float t) =
  let m = ref Float.neg_infinity in
  t.run (fun x -> if x > !m then m := x);
  !m
