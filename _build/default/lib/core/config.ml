(** Global execution configuration for skeleton consumers.

    Users pick *what* parallelism to use with [par]/[localpar] hints;
    *where* it runs — how many simulated nodes, cores per node, and
    whether the distributed layer is two-level or flat — is ambient
    configuration, like the MPI launch geometry of a real deployment. *)

let cluster = ref Triolet_runtime.Cluster.default_config

let set_cluster c = cluster := c

let get_cluster () = !cluster

(** Run [f] under cluster configuration [c], restoring the previous one
    afterwards (exception-safe). *)
let with_cluster c f =
  let old = !cluster in
  cluster := c;
  Fun.protect ~finally:(fun () -> cluster := old) f

(** Chunk over-decomposition multiplier for local (work-stealing)
    parallel loops. *)
let chunk_multiplier = ref 4
