(** Dense 3-D float grids over unboxed float arrays.

    Storage is x-fastest ([((z * ny) + y) * nx + x]), matching cutcp's
    potential grid.  A *z-slab* — the natural distribution unit — is a
    contiguous run of the backing array, so extracting or merging one is
    a block copy. *)

type t = { nx : int; ny : int; nz : int; data : floatarray }

let create nx ny nz =
  if nx < 0 || ny < 0 || nz < 0 then invalid_arg "Grid3.create";
  { nx; ny; nz; data = Float.Array.make (nx * ny * nz) 0.0 }

let dims g = (g.nx, g.ny, g.nz)
let data g = g.data
let points g = g.nx * g.ny * g.nz

let of_floatarray ~nx ~ny ~nz data =
  if Float.Array.length data <> nx * ny * nz then
    invalid_arg "Grid3.of_floatarray: size mismatch";
  { nx; ny; nz; data }

let linear g x y z = (((z * g.ny) + y) * g.nx) + x

let get g x y z =
  if
    x < 0 || x >= g.nx || y < 0 || y >= g.ny || z < 0 || z >= g.nz
  then invalid_arg "Grid3.get";
  Float.Array.unsafe_get g.data (linear g x y z)

let set g x y z v =
  if
    x < 0 || x >= g.nx || y < 0 || y >= g.ny || z < 0 || z >= g.nz
  then invalid_arg "Grid3.set";
  Float.Array.unsafe_set g.data (linear g x y z) v

let unsafe_get g x y z = Float.Array.unsafe_get g.data (linear g x y z)
let unsafe_set g x y z v = Float.Array.unsafe_set g.data (linear g x y z) v

let init nx ny nz f =
  let g = create nx ny nz in
  for z = 0 to nz - 1 do
    for y = 0 to ny - 1 do
      for x = 0 to nx - 1 do
        unsafe_set g x y z (f x y z)
      done
    done
  done;
  g

(** Contiguous copy of slab [z0, z0+n): one blit. *)
let copy_slab g z0 n =
  if z0 < 0 || n < 0 || z0 + n > g.nz then invalid_arg "Grid3.copy_slab";
  let plane = g.nx * g.ny in
  let out = Float.Array.make (n * plane) 0.0 in
  Float.Array.blit g.data (z0 * plane) out 0 (n * plane);
  { g with nz = n; data = out }

(** Write slab [src] into [dst] starting at plane [z0]. *)
let blit_slab ~src ~dst ~z0 =
  if src.nx <> dst.nx || src.ny <> dst.ny || z0 + src.nz > dst.nz then
    invalid_arg "Grid3.blit_slab";
  let plane = dst.nx * dst.ny in
  Float.Array.blit src.data 0 dst.data (z0 * plane) (src.nz * plane)

(** Elementwise sum into a fresh grid; the merge operation of
    distributed scatter-style computations. *)
let add a b =
  if dims a <> dims b then invalid_arg "Grid3.add";
  {
    a with
    data =
      Float.Array.mapi (fun i v -> v +. Float.Array.get b.data i) a.data;
  }

let fold f init g = Float.Array.fold_left f init g.data

let total g = fold ( +. ) 0.0 g

let equal_eps ~eps a b =
  dims a = dims b
  &&
  let ok = ref true in
  for i = 0 to Float.Array.length a.data - 1 do
    let x = Float.Array.get a.data i and y = Float.Array.get b.data i in
    let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
    if Float.abs (x -. y) > eps *. scale then ok := false
  done;
  !ok
