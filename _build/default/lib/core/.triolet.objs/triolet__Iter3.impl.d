lib/core/iter3.ml: Array Config Grid3 Iter Skeletons Triolet_base Triolet_runtime
