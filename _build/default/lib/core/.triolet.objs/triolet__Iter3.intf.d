lib/core/iter3.mli: Grid3 Iter Triolet_base
