lib/core/folder.mli: Stepper
