lib/core/collector.ml: Array Float Folder List Stepper Triolet_base
