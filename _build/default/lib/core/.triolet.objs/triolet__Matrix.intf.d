lib/core/matrix.mli: Triolet_base Triolet_runtime
