lib/core/matrix.ml: Float Triolet_base Triolet_runtime
