lib/core/iter2.ml: Array Config Indexer Iter Matrix Seq_iter Shape Skeletons Triolet_base Triolet_runtime
