lib/core/iter2.mli: Iter Matrix Triolet_base
