lib/core/grid3.mli:
