lib/core/seq_iter.ml: Collector Float Indexer List Printf Stepper Triolet_base
