lib/core/config.ml: Fun Triolet_runtime
