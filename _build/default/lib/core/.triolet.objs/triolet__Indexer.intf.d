lib/core/indexer.mli: Collector Folder Shape Stepper
