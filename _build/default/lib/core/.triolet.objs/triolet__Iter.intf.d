lib/core/iter.mli: Seq_iter Triolet_base
