lib/core/seq_iter.mli: Collector Indexer Seq Stepper Triolet_base
