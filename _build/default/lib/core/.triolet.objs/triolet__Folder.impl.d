lib/core/folder.ml: Array Float List Stepper
