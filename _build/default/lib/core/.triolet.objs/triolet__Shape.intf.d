lib/core/shape.mli:
