lib/core/stepper.ml: Array Float List Seq Triolet_base
