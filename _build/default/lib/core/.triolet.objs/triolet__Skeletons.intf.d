lib/core/skeletons.mli: Triolet_base Triolet_runtime
