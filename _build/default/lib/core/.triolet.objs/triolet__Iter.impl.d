lib/core/iter.ml: Array Bytes Collector Config Float Indexer Printf Seq_iter Skeletons Triolet_base Triolet_runtime
