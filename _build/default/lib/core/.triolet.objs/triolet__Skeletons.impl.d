lib/core/skeletons.ml: Array Config List Option Triolet_base Triolet_runtime
