lib/core/stepper.mli: Seq Triolet_base
