lib/core/config.mli: Triolet_runtime
