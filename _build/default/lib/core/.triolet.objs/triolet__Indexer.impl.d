lib/core/indexer.ml: Array Collector Float Folder List Shape Stepper
