lib/core/shape.ml: Printf
