lib/core/collector.mli: Folder Stepper Triolet_base
