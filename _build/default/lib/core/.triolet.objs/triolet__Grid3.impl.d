lib/core/grid3.ml: Float
