(** The indexer encoding: a domain plus a lookup function (paper,
    section 3.1, generalized over domains in 3.3).

    The only random-access — hence parallelizable — encoding: any
    sub-range can be handed to a different task.  Variable-length
    producers cannot be expressed directly; hybrid iterators nest
    steppers inside indexers instead. *)

type ('i, 'a) t = { shape : 'i Shape.t; get : 'i -> 'a }

val make : 'i Shape.t -> ('i -> 'a) -> ('i, 'a) t
val init : 'i Shape.t -> ('i -> 'a) -> ('i, 'a) t
val shape : ('i, 'a) t -> 'i Shape.t
val size : ('i, 'a) t -> int
val get : ('i, 'a) t -> 'i -> 'a

val of_array : 'a array -> (int, 'a) t
val of_floatarray : floatarray -> (int, float) t
val range : int -> int -> (int, int) t

val map : ('a -> 'b) -> ('i, 'a) t -> ('i, 'b) t
(** Composes with the lookup: [(n, g)] becomes [(n, f . g)]. *)

val zip_with : ('a -> 'b -> 'c) -> ('i, 'a) t -> ('i, 'b) t -> ('i, 'c) t
(** Random access pairs corresponding iterations without buffering
    ([zipIdx]); the domain is the intersection. *)

val zip : ('i, 'a) t -> ('i, 'b) t -> ('i, 'a * 'b) t
val enumerate : ('i, 'a) t -> ('i, 'i * 'a) t

val slice : (int, 'a) t -> int -> int -> (int, 'a) t
(** [slice t off len]: 1-D sub-range view with indices rebased to zero —
    the work-distribution half of partitioning (section 3.5). *)

(** {1 Conversions down Figure 1's control-flexibility order} *)

val to_stepper : (int, 'a) t -> 'a Stepper.t
val to_folder : ('i, 'a) t -> 'a Folder.t
val to_collector : ('i, 'a) t -> 'a Collector.t

val fold : ('b -> 'a -> 'b) -> 'b -> ('i, 'a) t -> 'b
val iter : ('a -> unit) -> ('i, 'a) t -> unit
val to_list : ('i, 'a) t -> 'a list
val to_array : 'a -> ('i, 'a) t -> 'a array
