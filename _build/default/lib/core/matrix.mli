(** Dense row-major matrices over unboxed float arrays.

    Rows are contiguous runs of the backing [floatarray], so extracting
    a block of rows — the payload of a sliced row iterator — is one
    block copy. *)

type t

type view
(** Lightweight window into a row (or any contiguous run); reads go
    straight to the backing array. *)

val create : int -> int -> t
(** [create rows cols]: zero-filled. *)

val init : int -> int -> (int -> int -> float) -> t
val of_floatarray : rows:int -> cols:int -> floatarray -> t
val rows : t -> int
val cols : t -> int
val data : t -> floatarray

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val unsafe_get : t -> int -> int -> float
val unsafe_set : t -> int -> int -> float -> unit

val row : t -> int -> view
val view_get : view -> int -> float
val view_len : view -> int
val view_unsafe_get : view -> int -> float

val view_dot : view -> view -> float
(** Dot product of two views: sgemm's sequential inner kernel. *)

val copy_rows : t -> int -> int -> t
(** [copy_rows m r0 nr]: fresh matrix holding rows [r0, r0+nr) — one
    blit, the block-copy serialization unit of section 3.4. *)

val blit_block : src:t -> dst:t -> r0:int -> c0:int -> unit
(** Writes [src] into [dst] at (r0, c0). *)

val transpose : t -> t

val transpose_par : Triolet_runtime.Pool.t -> t -> t
(** Transpose parallelized over shared memory; the paper uses [localpar]
    for sgemm's transposition because it does too little work to
    distribute (section 4.3). *)

val equal_eps : eps:float -> t -> t -> bool
(** Elementwise comparison with relative tolerance. *)

val mul_ref : alpha:float -> t -> t -> t
(** [mul_ref ~alpha a bt]: reference product [alpha * a * bt^T] (note:
    takes the *transposed* right operand). *)

val random : Triolet_base.Rng.t -> int -> int -> float -> float -> t
