(** The stepper encoding: a fusible coroutine yielding one element per
    resumption — stream fusion in the style of Coutts et al. (paper,
    section 3.1, "Steppers").

    Steppers are inherently sequential: only the "next" element is
    reachable, so they cannot be partitioned (Figure 1: Parallel = no),
    but [Skip] makes variable-length producers like [filter] fusible. *)

type ('a, 's) step =
  | Yield of 'a * 's  (** an element and the next state *)
  | Skip of 's  (** no element this step (a filtered-out iteration) *)
  | Done

type 'a t = Stepper : 's * ('s -> ('a, 's) step) -> 'a t
(** A suspended loop state plus a step function. *)

(** {1 Construction} *)

val empty : 'a t
val singleton : 'a -> 'a t
(** One element: [unitStep] in the paper's filter equation. *)

val unfold : 's -> ('s -> ('a, 's) step) -> 'a t
val range : int -> int -> int t
(** [range lo hi] yields [lo], ..., [hi - 1]. *)

val of_array : 'a array -> 'a t
val of_floatarray : floatarray -> float t
val of_list : 'a list -> 'a t

(** {1 Fusible transformations} *)

val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val filter_map : ('a -> 'b option) -> 'a t -> 'b t

val zip : 'a t -> 'b t -> ('a * 'b) t
(** Holds at most one pending left element while the right stream
    catches up; skips compose. *)

val zip_with : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val enumerate : 'a t -> (int * 'a) t
val append : 'a t -> 'a t -> 'a t

val concat_map : ('a -> 'b t) -> 'a t -> 'b t
(** Nested traversal; the state carries the suspended inner stepper.
    Fusible but not reliably loop-shaped — Figure 1's "slow" cell,
    quantified in the bench harness. *)

val concat : 'a t t -> 'a t
val take : int -> 'a t -> 'a t
val drop : int -> 'a t -> 'a t

(** {1 Consumers} *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val iter : ('a -> unit) -> 'a t -> unit
val length : 'a t -> int
val to_list : 'a t -> 'a list
val to_vec : 'a -> 'a t -> 'a Triolet_base.Vec.t
val sum_float : float t -> float
val sum_int : int t -> int

(** {1 Extended operations} *)

val take_while : ('a -> bool) -> 'a t -> 'a t
val drop_while : ('a -> bool) -> 'a t -> 'a t

val scan : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b t
(** Prefix accumulation: yields the running accumulator after each
    element (a fusible sequential scan). *)

val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool

val find : ('a -> bool) -> 'a t -> 'a option
(** First matching element; stops stepping early. *)

val min_float : float t -> float
(** [infinity] on empty input. *)

val max_float : float t -> float

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** Elementwise comparison of the yielded sequences. *)

val of_seq : 'a Seq.t -> 'a t
(** Interop with the standard library's on-demand sequences. *)

val to_seq : 'a t -> 'a Seq.t
