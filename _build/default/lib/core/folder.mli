(** The fold encoding: a data structure represented by the function that
    folds over its elements (paper, section 3.1, "Folds").

    Folds fix execution order completely — no zip, no parallelism
    (Figure 1) — but nested traversals fuse into clean nested loops. *)

type 'a t = { fold : 'acc. ('acc -> 'a -> 'acc) -> 'acc -> 'acc }

val empty : 'a t
val singleton : 'a -> 'a t
val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t
val of_floatarray : floatarray -> float t
val range : int -> int -> int t
val of_stepper : 'a Stepper.t -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val filter_map : ('a -> 'b option) -> 'a t -> 'b t

val concat_map : ('a -> 'b t) -> 'a t -> 'b t
(** The outer fold's worker runs the inner fold: a nested loop. *)

val append : 'a t -> 'a t -> 'a t

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val iter : ('a -> unit) -> 'a t -> unit
val length : 'a t -> int
val to_list : 'a t -> 'a list
val sum_float : float t -> float
val sum_int : int t -> int

(** {1 Extended operations} *)

val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val min_float : float t -> float
val max_float : float t -> float
val count_if : ('a -> bool) -> 'a t -> int
