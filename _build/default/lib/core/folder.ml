(** The fold encoding: a data structure represented by the function that
    folds over its elements (paper, section 3.1, "Folds").

    Folds fix the execution order completely — no zipping — but nested
    traversals fuse into clean nested loops, which is why hybrid
    iterators route nested reductions through them. *)

type 'a t = { fold : 'acc. ('acc -> 'a -> 'acc) -> 'acc -> 'acc }

let empty = { fold = (fun _ init -> init) }

let singleton x = { fold = (fun f init -> f init x) }

let of_list l = { fold = (fun f init -> List.fold_left f init l) }

let of_array a = { fold = (fun f init -> Array.fold_left f init a) }

let of_floatarray (a : floatarray) =
  { fold = (fun f init -> Float.Array.fold_left f init a) }

let range lo hi =
  {
    fold =
      (fun f init ->
        let acc = ref init in
        for i = lo to hi - 1 do
          acc := f !acc i
        done;
        !acc);
  }

let of_stepper st = { fold = (fun f init -> Stepper.fold f init st) }

let map g t = { fold = (fun f init -> t.fold (fun acc x -> f acc (g x)) init) }

let filter p t =
  { fold = (fun f init -> t.fold (fun acc x -> if p x then f acc x else acc) init) }

let filter_map g t =
  {
    fold =
      (fun f init ->
        t.fold
          (fun acc x -> match g x with Some y -> f acc y | None -> acc)
          init);
  }

(** The worker passed to the outer fold runs the inner fold: inlining
    this (conceptually) yields a nested loop, the property that makes
    folds the encoding of choice for nested traversal. *)
let concat_map g t =
  { fold = (fun f init -> t.fold (fun acc x -> (g x).fold f acc) init) }

let append a b = { fold = (fun f init -> b.fold f (a.fold f init)) }

let fold f init t = t.fold f init

let iter f t = t.fold (fun () x -> f x) ()

let length t = t.fold (fun n _ -> n + 1) 0

let to_list t = List.rev (t.fold (fun acc x -> x :: acc) [])

let sum_float t = t.fold ( +. ) 0.0

let sum_int t = t.fold ( + ) 0

let exists p t = t.fold (fun found x -> found || p x) false

let for_all p t = t.fold (fun ok x -> ok && p x) true

let min_float t = t.fold Float.min Float.infinity

let max_float t = t.fold Float.max Float.neg_infinity

(** Count elements satisfying a predicate in one pass. *)
let count_if p t = t.fold (fun n x -> if p x then n + 1 else n) 0
