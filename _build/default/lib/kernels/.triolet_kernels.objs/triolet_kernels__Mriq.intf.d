lib/kernels/mriq.mli: Dataset Triolet
