lib/kernels/models.mli: Triolet_sim
