lib/kernels/tpacf.mli: Dataset
