lib/kernels/tpacf.ml: Array Dataset Float Iter List Seq_iter Triolet Triolet_base Triolet_baselines
