lib/kernels/dataset.mli: Triolet Triolet_base
