lib/kernels/sgemm.ml: Array Float Iter2 List Matrix Triolet Triolet_baselines Triolet_runtime
