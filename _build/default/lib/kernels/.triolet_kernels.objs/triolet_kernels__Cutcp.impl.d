lib/kernels/cutcp.ml: Dataset Float Iter List Seq_iter Triolet Triolet_baselines
