lib/kernels/sgemm.mli: Triolet
