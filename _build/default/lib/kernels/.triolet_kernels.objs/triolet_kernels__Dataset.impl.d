lib/kernels/dataset.ml: Array Float Triolet Triolet_base
