lib/kernels/cutcp.mli: Dataset Triolet
