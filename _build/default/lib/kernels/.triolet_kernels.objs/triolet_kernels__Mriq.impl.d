lib/kernels/mriq.ml: Dataset Float Iter List Triolet Triolet_baselines
