lib/kernels/models.ml: Cutcp Dataset Mriq Sgemm Tpacf Triolet_runtime Triolet_sim Unix
