(** tpacf: two-point angular correlation function (paper, section 4.4):
    DD, DR and RR histograms over angular separations of point pairs,
    binned uniformly in cos(angle). *)

type result = { dd : int array; dr : int array; rr : int array }

val bin_of_dot : bins:int -> float -> int
(** Bin of a pair with the given dot product; clamps to the valid
    range. *)

val run_c : bins:int -> Dataset.tpacf -> result
(** Imperative nested loops with direct histogram updates. *)

val run_triolet : bins:int -> Dataset.tpacf -> result
(** Follows the paper's Figure 6: a shared [correlation] over a pair
    iterator; a triangular nested comprehension for self-correlation;
    [par] over random sets with [localpar] pair loops inside. *)

val run_eden : bins:int -> Dataset.tpacf -> result

val agrees : result -> result -> bool
