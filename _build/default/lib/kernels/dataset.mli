(** Deterministic synthetic datasets with the Parboil benchmarks'
    shapes (the paper's inputs are not redistributable; see DESIGN.md,
    Substitutions). *)

(** {1 mri-q} *)

type mriq = {
  kx : floatarray;
  ky : floatarray;
  kz : floatarray;
  phi_r : floatarray;
  phi_i : floatarray;  (** K samples *)
  x : floatarray;
  y : floatarray;
  z : floatarray;  (** N voxels *)
}

val mriq : seed:int -> samples:int -> voxels:int -> mriq

(** {1 sgemm} *)

val sgemm_matrices :
  seed:int -> m:int -> k:int -> n:int -> Triolet.Matrix.t * Triolet.Matrix.t

(** {1 tpacf} *)

type catalog = { cx : floatarray; cy : floatarray; cz : floatarray }
(** Unit vectors on the sphere. *)

val catalog_size : catalog -> int
val catalog : Triolet_base.Rng.t -> int -> catalog

type tpacf = { observed : catalog; randoms : catalog array }

val tpacf : seed:int -> points:int -> random_sets:int -> tpacf

(** {1 cutcp} *)

type cutcp = {
  ax : floatarray;
  ay : floatarray;
  az : floatarray;
  aq : floatarray;  (** atom positions and charges *)
  nx : int;
  ny : int;
  nz : int;
  spacing : float;
  cutoff : float;
}

val cutcp :
  seed:int ->
  atoms:int ->
  nx:int ->
  ny:int ->
  nz:int ->
  spacing:float ->
  cutoff:float ->
  cutcp

val grid_points : cutcp -> int
