(** Deterministic synthetic datasets with the Parboil benchmarks'
    shapes.

    The paper evaluates on Parboil inputs that are not redistributable;
    these generators produce inputs with the same structure (sample
    arrays, matrices, point catalogs, atom boxes) from explicit seeds,
    so every run of the reproduction sees identical data (see DESIGN.md,
    Substitutions). *)

module Rng = Triolet_base.Rng

(* ------------------------------------------------------------------ *)
(* mri-q: K-space samples and image-space voxel coordinates            *)

type mriq = {
  kx : floatarray;
  ky : floatarray;
  kz : floatarray;
  phi_r : floatarray;
  phi_i : floatarray;  (** K samples *)
  x : floatarray;
  y : floatarray;
  z : floatarray;  (** N voxels *)
}

let mriq ~seed ~samples ~voxels =
  let rng = Rng.create seed in
  let coord () = Rng.float_range rng (-1.0) 1.0 in
  {
    kx = Rng.floatarray rng samples (fun r -> Rng.float_range r (-0.5) 0.5);
    ky = Rng.floatarray rng samples (fun r -> Rng.float_range r (-0.5) 0.5);
    kz = Rng.floatarray rng samples (fun r -> Rng.float_range r (-0.5) 0.5);
    phi_r = Rng.floatarray rng samples (fun r -> Rng.float_range r (-1.0) 1.0);
    phi_i = Rng.floatarray rng samples (fun r -> Rng.float_range r (-1.0) 1.0);
    x = Float.Array.init voxels (fun _ -> coord ());
    y = Float.Array.init voxels (fun _ -> coord ());
    z = Float.Array.init voxels (fun _ -> coord ());
  }

(* ------------------------------------------------------------------ *)
(* sgemm: dense matrices                                               *)

let sgemm_matrices ~seed ~m ~k ~n =
  let rng = Rng.create seed in
  let a = Triolet.Matrix.random rng m k (-1.0) 1.0 in
  let b = Triolet.Matrix.random rng k n (-1.0) 1.0 in
  (a, b)

(* ------------------------------------------------------------------ *)
(* tpacf: catalogs of points on the unit sphere                        *)

type catalog = { cx : floatarray; cy : floatarray; cz : floatarray }

let catalog_size c = Float.Array.length c.cx

(** Uniform points on the sphere via normalized Gaussian-ish rejection
    (a Box–Muller-free variant good enough for a workload generator). *)
let catalog rng n =
  let cx = Float.Array.create n
  and cy = Float.Array.create n
  and cz = Float.Array.create n in
  for i = 0 to n - 1 do
    let rec pick () =
      let x = Rng.float_range rng (-1.0) 1.0 in
      let y = Rng.float_range rng (-1.0) 1.0 in
      let z = Rng.float_range rng (-1.0) 1.0 in
      let r2 = (x *. x) +. (y *. y) +. (z *. z) in
      if r2 > 1e-6 && r2 <= 1.0 then begin
        let r = sqrt r2 in
        (x /. r, y /. r, z /. r)
      end
      else pick ()
    in
    let x, y, z = pick () in
    Float.Array.set cx i x;
    Float.Array.set cy i y;
    Float.Array.set cz i z
  done;
  { cx; cy; cz }

type tpacf = { observed : catalog; randoms : catalog array }

let tpacf ~seed ~points ~random_sets =
  let rng = Rng.create seed in
  {
    observed = catalog rng points;
    randoms = Array.init random_sets (fun _ -> catalog (Rng.split rng) points);
  }

(* ------------------------------------------------------------------ *)
(* cutcp: charged atoms in a periodic box over a potential grid        *)

type cutcp = {
  ax : floatarray;
  ay : floatarray;
  az : floatarray;
  aq : floatarray;  (** atom positions and charges *)
  nx : int;
  ny : int;
  nz : int;  (** grid extents *)
  spacing : float;
  cutoff : float;
}

let cutcp ~seed ~atoms ~nx ~ny ~nz ~spacing ~cutoff =
  let rng = Rng.create seed in
  let lx = float_of_int (nx - 1) *. spacing in
  let ly = float_of_int (ny - 1) *. spacing in
  let lz = float_of_int (nz - 1) *. spacing in
  {
    ax = Rng.floatarray rng atoms (fun r -> Rng.float_range r 0.0 lx);
    ay = Rng.floatarray rng atoms (fun r -> Rng.float_range r 0.0 ly);
    az = Rng.floatarray rng atoms (fun r -> Rng.float_range r 0.0 lz);
    aq = Rng.floatarray rng atoms (fun r -> Rng.float_range r (-1.0) 1.0);
    nx;
    ny;
    nz;
    spacing;
    cutoff;
  }

let grid_points c = c.nx * c.ny * c.nz
