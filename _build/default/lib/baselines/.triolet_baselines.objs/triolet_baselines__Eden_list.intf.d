lib/baselines/eden_list.mli: Triolet_base
