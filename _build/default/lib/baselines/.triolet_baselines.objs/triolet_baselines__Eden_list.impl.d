lib/baselines/eden_list.ml: Array Bytes Float List Triolet_base
