(** Eden-model skeletons over boxed lists.

    Eden programs manipulate ordinary Haskell data structures; its
    skeletons ([map], [reduce], farms) traverse linked lists of boxed
    values, and distribution serializes *everything a task references*.
    This module reproduces that cost model faithfully in OCaml:

    - all aggregates are singly-linked lists of boxed floats/tuples, so
      sequential traversal pays pointer-chasing and allocation the way
      idiomatic non-array Eden code does (the paper's naive baseline in
      section 1);
    - [farm] chunks a list across simulated processes and forces every
      chunk through the wire codec, so whole-structure serialization
      costs are real, not estimated.

    The sequential-efficiency ratios measured against these functions
    calibrate the simulator's Eden profile (see DESIGN.md). *)

module Codec = Triolet_base.Codec

let map = List.map

let filter = List.filter

let concat_map = List.concat_map

let zip = List.combine

let zip3 a b c = List.map2 (fun x (y, z) -> (x, y, z)) a (List.combine b c)

let fold = List.fold_left

let sum_float l = List.fold_left ( +. ) 0.0 l

(** Reduce with an explicit binary combiner, Eden's [reduce] skeleton. *)
let reduce merge init l = List.fold_left merge init l

(** Counting histogram over a list of bin indices. *)
let histogram ~bins l =
  let h = Array.make bins 0 in
  List.iter (fun i -> if i >= 0 && i < bins then h.(i) <- h.(i) + 1) l;
  h

(** Floating-point histogram over (bin, weight) pairs. *)
let weighted_histogram ~bins l =
  let h = Float.Array.make bins 0.0 in
  List.iter
    (fun (i, w) ->
      if i >= 0 && i < bins then Float.Array.set h i (Float.Array.get h i +. w))
    l;
  h

(** Split a list into [parts] near-equal contiguous chunks. *)
let chunk ~parts l =
  let n = List.length l in
  if parts <= 0 then invalid_arg "Eden_list.chunk";
  let parts = min parts (max n 1) in
  let base = n / parts and extra = n mod parts in
  let rec take k l =
    if k = 0 then ([], l)
    else
      match l with
      | [] -> ([], [])
      | x :: rest ->
          let a, b = take (k - 1) rest in
          (x :: a, b)
  in
  let rec go p l =
    if p = parts then []
    else begin
      let len = base + if p < extra then 1 else 0 in
      let c, rest = take len l in
      c :: go (p + 1) rest
    end
  in
  List.filter (fun c -> c <> []) (go 0 l)

(** Eden's process farm: distribute chunks of the input to simulated
    processes.  Each chunk is serialized with [codec], "sent" (bytes are
    counted), decoded into fresh structure, and only then processed —
    whole-structure serialization, as Eden's runtime does.  Returns the
    results in order together with the total bytes moved. *)
let farm ~processes ~codec ~f l =
  let chunks = chunk ~parts:processes l in
  let bytes = ref 0 in
  let results =
    List.map
      (fun c ->
        let wire = Codec.to_bytes (Codec.list codec) c in
        bytes := !bytes + Bytes.length wire;
        let received = Codec.of_bytes (Codec.list codec) wire in
        let r = f received in
        r)
      chunks
  in
  (results, !bytes)

(** mapReduce farm: farm out chunks, reduce the per-process results. *)
let farm_reduce ~processes ~codec ~f ~merge ~init l =
  let results, bytes = farm ~processes ~codec ~f l in
  (List.fold_left merge init results, bytes)
