(** Eden-model skeletons over boxed lists.

    Reproduces the cost model of idiomatic Eden code: aggregates are
    singly-linked lists of boxed values, and distribution serializes
    everything a task references.  Measurements against these functions
    calibrate the simulator's Eden profile. *)

val map : ('a -> 'b) -> 'a list -> 'b list
val filter : ('a -> bool) -> 'a list -> 'a list
val concat_map : ('a -> 'b list) -> 'a list -> 'b list
val zip : 'a list -> 'b list -> ('a * 'b) list
val zip3 : 'a list -> 'b list -> 'c list -> ('a * 'b * 'c) list
val fold : ('b -> 'a -> 'b) -> 'b -> 'a list -> 'b
val sum_float : float list -> float
val reduce : ('b -> 'a -> 'b) -> 'b -> 'a list -> 'b

val histogram : bins:int -> int list -> int array
val weighted_histogram : bins:int -> (int * float) list -> floatarray

val chunk : parts:int -> 'a list -> 'a list list
(** Near-equal contiguous chunks; empty chunks omitted. *)

val farm :
  processes:int ->
  codec:'a Triolet_base.Codec.t ->
  f:('a list -> 'r) ->
  'a list ->
  'r list * int
(** Eden's process farm: each chunk is serialized, "sent" (bytes
    counted), decoded fresh, and only then processed — whole-structure
    serialization, as Eden's runtime does.  Returns per-process results
    in order and total bytes moved. *)

val farm_reduce :
  processes:int ->
  codec:'a Triolet_base.Codec.t ->
  f:('a list -> 'r) ->
  merge:('acc -> 'r -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc * int
