(** Plain-text table and series rendering for the figure harness. *)

let hrule widths =
  String.concat "-+-" (List.map (fun w -> String.make w '-') widths)

let pad w s =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

(** Render [rows] (first row = header) with auto-sized columns. *)
let render rows =
  match rows with
  | [] -> ""
  | header :: _ ->
      let cols = List.length header in
      let widths =
        List.init cols (fun c ->
            List.fold_left
              (fun acc row ->
                match List.nth_opt row c with
                | Some s -> max acc (String.length s)
                | None -> acc)
              0 rows)
      in
      let line row =
        String.concat " | " (List.map2 pad widths row)
      in
      let body =
        match rows with
        | h :: rest ->
            line h :: hrule widths :: List.map line rest
        | [] -> []
      in
      String.concat "\n" body

let print rows = print_endline (render rows)

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v

let seconds v =
  if v >= 100.0 then Printf.sprintf "%.0f s" v
  else if v >= 1.0 then Printf.sprintf "%.1f s" v
  else if v >= 1e-3 then Printf.sprintf "%.1f ms" (v *. 1e3)
  else Printf.sprintf "%.1f us" (v *. 1e6)

let bytes v =
  let fv = float_of_int v in
  if v >= 1 lsl 30 then Printf.sprintf "%.2f GiB" (fv /. 1073741824.0)
  else if v >= 1 lsl 20 then Printf.sprintf "%.2f MiB" (fv /. 1048576.0)
  else if v >= 1 lsl 10 then Printf.sprintf "%.1f KiB" (fv /. 1024.0)
  else Printf.sprintf "%d B" v

let heading title =
  let bar = String.make (String.length title) '=' in
  Printf.printf "\n%s\n%s\n" title bar
