(** Calibration runs: real measured timings that anchor the simulator
    (see DESIGN.md, Substitutions). *)

type style_times = {
  kernel : string;
  c_time : float;
  triolet_time : float;
  eden_time : float;
}

val run_fig3 : ?scale:float -> unit -> style_times list
(** Measures the three implementation styles of each kernel on
    scaled-down instances, checking that they agree; the data behind
    Figure 3.  Raises [Failure] if any style disagrees with the
    reference. *)

val efficiencies : style_times list -> string -> string -> float
(** [efficiencies times system kernel]: fraction of C-style speed the
    given system reaches on the given kernel, clamped away from zero. *)
