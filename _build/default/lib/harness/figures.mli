(** Regeneration of every table and figure in the paper's evaluation.
    Figure 3 is measured; Figures 4, 5, 7, 8 are simulated from
    calibrated costs.  Generators print their tables and return the
    data. *)

type context = {
  times : Calibrate.style_times list;
  rates : Triolet_kernels.Models.rates;
  efficiency : string -> string -> float;
  measured_efficiency : bool;
      (** feed measured style ratios (instead of the paper's reported
          ones) into the simulator profiles; see EXPERIMENTS.md *)
}

val make_context : ?scale:float -> ?measured_efficiency:bool -> unit -> context

val model_of : context -> string -> Triolet_sim.App_model.t
val profiles : context -> Triolet_sim.Profile.t list

val fig1 : unit -> unit
(** The encoding feature matrix. *)

val fig3 : context -> Calibrate.style_times list
(** Measured sequential times of the three styles per kernel. *)

val scalability : context -> string -> Triolet_sim.Speedup.series list
val fig4 : context -> Triolet_sim.Speedup.series list
val fig5 : context -> Triolet_sim.Speedup.series list
val fig7 : context -> Triolet_sim.Speedup.series list
val fig8 : context -> Triolet_sim.Speedup.series list

val series_to_tsv : Triolet_sim.Speedup.series list -> string
(** Plot-ready TSV of a scalability sweep (failed points are "nan"). *)

val summary :
  context -> (string * string * string * string * float option) list
(** Headline claims: Triolet vs C+MPI+OpenMP and vs sequential C at 128
    cores. *)

val ablation_gc : context -> float
(** GC share of Triolet's sgemm overhead at 8 nodes; returns the share
    in percent. *)

val ablation_slicing : context -> unit
val ablation_twolevel : context -> unit
val ablation_scheduling : context -> unit

val ablation_gather : context -> unit
(** Extension: binary-tree gather vs sequential main-process gather on
    the output-bound cutcp. *)

val all : ?scale:float -> ?measured_efficiency:bool -> unit -> context
