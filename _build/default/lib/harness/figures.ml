(** Regeneration of every table and figure in the paper's evaluation.

    Figure 3 is *measured* (three real implementation styles per
    kernel); Figures 4, 5, 7 and 8 are *simulated* at the paper's
    problem sizes, with task costs and sequential efficiencies
    calibrated from the measurements (see DESIGN.md, Substitutions).
    Each generator prints the series and returns the data so tests and
    EXPERIMENTS.md tooling can inspect it. *)

open Triolet_kernels
module App = Triolet_sim.App_model
module Profile = Triolet_sim.Profile
module Sched = Triolet_sim.Sched_sim
module Speedup = Triolet_sim.Speedup

type context = {
  times : Calibrate.style_times list;
  rates : Models.rates;
  efficiency : string -> string -> float;  (** system -> kernel -> eff *)
  measured_efficiency : bool;
      (** feed the *measured* style ratios into the simulator profiles
          instead of the paper's reported ones.  Off by default: this
          library realizes fusion by representation but lacks the
          Triolet compiler's closure elimination, so measured ratios
          answer "how fast is this OCaml library" rather than "how fast
          was Triolet"; both are reported (see EXPERIMENTS.md). *)
}

(** Build the calibration context: one Figure 3 measurement pass plus
    the per-operation rate measurement.  [scale] shrinks the measured
    instances (1.0 takes a few minutes of CPU). *)
let make_context ?(scale = 1.0) ?(measured_efficiency = false) () =
  let times = Calibrate.run_fig3 ~scale () in
  let rates = Models.measure_rates () in
  {
    times;
    rates;
    efficiency = Calibrate.efficiencies times;
    measured_efficiency;
  }

let model_of ctx = function
  | "mri-q" -> Models.mriq_model ~rates:ctx.rates ()
  | "sgemm" -> Models.sgemm_model ~rates:ctx.rates ()
  | "tpacf" -> Models.tpacf_model ~rates:ctx.rates ()
  | "cutcp" -> Models.cutcp_model ~rates:ctx.rates ()
  | k -> invalid_arg ("Figures.model_of: unknown kernel " ^ k)

let profiles ctx =
  if ctx.measured_efficiency then
    [
      Profile.cmpi ();
      Profile.triolet ~efficiency:(ctx.efficiency "Triolet") ();
      Profile.eden ~efficiency:(ctx.efficiency "Eden") ();
    ]
  else [ Profile.cmpi (); Profile.triolet (); Profile.eden () ]

(* ------------------------------------------------------------------ *)
(* Figure 1: encoding feature matrix                                   *)

let fig1 () =
  Table.heading "Figure 1: features of fusible virtual data structure encodings";
  print_endline
    "(each cell is asserted by an executable test in test_encodings.ml /\n\
     test_seq_iter.ml; 'slow' = nested stepper traversals, measured in the\n\
     stepper-vs-loop micro bench)";
  Table.print
    [
      [ "encoding"; "Parallel"; "Zip"; "Filter"; "Nested traversal"; "Mutation" ];
      [ "Indexer"; "yes"; "yes"; "no"; "no"; "no" ];
      [ "Stepper"; "no"; "yes"; "yes"; "slow"; "no" ];
      [ "Fold"; "no"; "no"; "yes"; "yes"; "no" ];
      [ "Collector"; "no"; "no"; "yes"; "yes"; "yes" ];
      [ "Hybrid Iter"; "yes"; "yes"; "yes"; "yes"; "per-task" ];
    ]

(* ------------------------------------------------------------------ *)
(* Figure 3: sequential execution time per style                       *)

let fig3 ctx =
  Table.heading "Figure 3: sequential execution time of benchmarks (measured)";
  print_endline
    "(scaled-down instances; the paper reports full-size absolute seconds —\n\
     the comparison point is the per-kernel ratio between styles)";
  Table.print
    ([ "benchmark"; "CPU (C-style)"; "Eden (lists)"; "Triolet (iterators)";
       "Eden/C"; "Triolet/C" ]
    :: List.map
         (fun t ->
           [
             t.Calibrate.kernel;
             Table.seconds t.Calibrate.c_time;
             Table.seconds t.Calibrate.eden_time;
             Table.seconds t.Calibrate.triolet_time;
             Table.f2 (t.Calibrate.eden_time /. t.Calibrate.c_time);
             Table.f2 (t.Calibrate.triolet_time /. t.Calibrate.c_time);
           ])
         ctx.times);
  print_endline
    "paper's shape: Triolet within a small factor of C on all four kernels;\n\
     Eden substantially slower (e.g. ~1.5x on mri-q from a missed\n\
     floating-point optimization, worse where list manipulation dominates).";
  ctx.times

(* ------------------------------------------------------------------ *)
(* Figures 4, 5, 7, 8: scalability                                     *)

let scalability ctx kernel =
  let app = model_of ctx kernel in
  let seq = App.sequential_time app in
  let series =
    List.map (fun p -> Speedup.sweep app p (Speedup.default_machines ())) (profiles ctx)
  in
  Printf.printf "\n(sequential C reference time at paper scale: %s)\n"
    (Table.seconds seq);
  let cores_list =
    match series with
    | s :: _ -> List.map (fun pt -> pt.Speedup.cores) s.Speedup.points
    | [] -> []
  in
  let cell s cores =
    match
      List.find_opt (fun pt -> pt.Speedup.cores = cores) s.Speedup.points
    with
    | Some { Speedup.speedup = Some v; _ } -> Table.f1 v
    | Some { Speedup.speedup = None; _ } -> "FAIL"
    | None -> "-"
  in
  Table.print
    (([ "cores"; "linear" ] @ List.map (fun s -> s.Speedup.profile_name) series)
    :: List.map
         (fun cores ->
           [ string_of_int cores; string_of_int cores ]
           @ List.map (fun s -> cell s cores) series)
         cores_list);
  (* Phase breakdown at the full 8x16 machine: what each system's time
     goes to, in the style of the paper's per-benchmark discussion. *)
  print_endline "\nbreakdown at 8 nodes x 16 cores:";
  let m = { Sched.nodes = 8; cores_per_node = 16 } in
  Table.print
    ([ "system"; "total"; "setup"; "inputs delivered"; "compute done";
       "scattered"; "gathered"; "gc time" ]
    :: List.map
         (fun p ->
           match Sched.run app p m with
           | Sched.Failed msg ->
               [ p.Profile.name; "FAIL: " ^ msg; "-"; "-"; "-"; "-"; "-"; "-" ]
           | Sched.Completed b ->
               [
                 p.Profile.name;
                 Table.seconds b.Sched.total;
                 Table.seconds b.Sched.setup_time;
                 Table.seconds b.Sched.scatter_done;
                 Table.seconds b.Sched.compute_done;
                 Table.bytes b.Sched.bytes_scattered;
                 Table.bytes b.Sched.bytes_gathered;
                 Table.seconds b.Sched.gc_time;
               ])
         (profiles ctx));
  series

let fig4 ctx =
  Table.heading "Figure 4: scalability and performance of mri-q (simulated)";
  let s = scalability ctx "mri-q" in
  print_endline
    "paper's shape: Triolet nearly matches C+MPI+OpenMP across the range;\n\
     Eden starts lower (sequential gap) and scales with visible jitter.";
  s

let fig5 ctx =
  Table.heading "Figure 5: scalability and performance of sgemm (simulated)";
  let s = scalability ctx "sgemm" in
  print_endline
    "paper's shape: all versions saturate (transpose + communication);\n\
     C and Triolet track each other with Triolet slightly behind at 8\n\
     nodes (GC on message construction); Eden FAILs from 2 nodes on —\n\
     its runtime cannot buffer the array messages — and its 1-node run\n\
     is throttled by the sequential transpose.";
  s

let fig7 ctx =
  Table.heading "Figure 7: scalability and performance of tpacf (simulated)";
  let s = scalability ctx "tpacf" in
  print_endline
    "paper's shape: Triolet and C scale similarly, with Triolet slightly\n\
     ahead from a more even distribution of the irregular\n\
     self-correlation work; Eden lags on sequential performance and\n\
     communication overhead.";
  s

let fig8 ctx =
  Table.heading "Figure 8: scalability and performance of cutcp (simulated)";
  let s = scalability ctx "cutcp" in
  print_endline
    "paper's shape: performance saturates quickly for all systems —\n\
     summing the large output grids dominates; Triolet additionally pays\n\
     allocation overhead (~60% of its time at 8 nodes).";
  s

(** Plot-ready TSV of a scalability sweep: one row per core count,
    one column per system; failed points print as "nan". *)
let series_to_tsv (series : Speedup.series list) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "cores\tlinear";
  List.iter
    (fun s -> Buffer.add_string buf ("\t" ^ s.Speedup.profile_name))
    series;
  Buffer.add_char buf '\n';
  let cores_list =
    match series with
    | s :: _ -> List.map (fun pt -> pt.Speedup.cores) s.Speedup.points
    | [] -> []
  in
  List.iter
    (fun cores ->
      Buffer.add_string buf (Printf.sprintf "%d\t%d" cores cores);
      List.iter
        (fun s ->
          let v =
            match
              List.find_opt (fun pt -> pt.Speedup.cores = cores) s.Speedup.points
            with
            | Some { Speedup.speedup = Some v; _ } -> Printf.sprintf "%.3f" v
            | _ -> "nan"
          in
          Buffer.add_string buf ("\t" ^ v))
        series;
      Buffer.add_char buf '\n')
    cores_list;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Headline numbers (sections 1 and 6)                                 *)

let summary ctx =
  Table.heading
    "Headline claims: Triolet vs C+MPI+OpenMP and vs sequential C at 128 cores";
  let rows =
    List.map
      (fun kernel ->
        let app = model_of ctx kernel in
        let series =
          List.map
            (fun p -> Speedup.sweep app p (Speedup.default_machines ()))
            (profiles ctx)
        in
        let at name =
          match List.find_opt (fun s -> s.Speedup.profile_name = name) series with
          | Some s -> Speedup.speedup_at s 128
          | None -> None
        in
        let c = at "C+MPI+OpenMP" and t = at "Triolet" in
        let ratio =
          match (c, t) with
          | Some c, Some t -> Printf.sprintf "%.0f%%" (100.0 *. t /. c)
          | _ -> "-"
        in
        let show = function Some v -> Table.f1 v | None -> "FAIL" in
        (kernel, show t, show c, ratio, t))
      [ "mri-q"; "sgemm"; "tpacf"; "cutcp" ]
  in
  Table.print
    ([ "benchmark"; "Triolet x128"; "C+MPI+OpenMP x128"; "Triolet/C" ]
    :: List.map (fun (k, t, c, r, _) -> [ k; t; c; r ]) rows);
  let speedups = List.filter_map (fun (_, _, _, _, t) -> t) rows in
  (match (speedups, speedups) with
  | s :: _, _ ->
      ignore s;
      let mn = List.fold_left Float.min infinity speedups in
      let mx = List.fold_left Float.max 0.0 speedups in
      Printf.printf
        "\nTriolet speedup over sequential C at 128 cores: %.1fx - %.1fx\n\
         (paper: 9.6x - 99x; Triolet reaches 23-100%% of C+MPI+OpenMP)\n"
        mn mx
  | _ -> ());
  rows

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

(** GC attribution for sgemm at 8 nodes (section 4.3: "40% of Triolet's
    overhead relative to C+MPI+OpenMP is attributable to the garbage
    collector"). *)
let ablation_gc ctx =
  Table.heading "Ablation: GC share of Triolet's sgemm overhead at 8 nodes";
  let app = model_of ctx "sgemm" in
  let m = { Sched.nodes = 8; cores_per_node = 16 } in
  let run p =
    match Sched.run app p m with
    | Sched.Completed b -> b
    | Sched.Failed msg -> failwith msg
  in
  let triolet =
    if ctx.measured_efficiency then
      Profile.triolet ~efficiency:(ctx.efficiency "Triolet") ()
    else Profile.triolet ()
  in
  let no_gc = { triolet with Profile.gc_sec_per_byte = 0.0 } in
  let c = run (Profile.cmpi ()) in
  let t = run triolet in
  let t0 = run no_gc in
  let overhead = t.Sched.total -. c.Sched.total in
  let gc_part = t.Sched.total -. t0.Sched.total in
  Table.print
    [
      [ "configuration"; "time"; "" ];
      [ "C+MPI+OpenMP"; Table.seconds c.Sched.total; "" ];
      [ "Triolet"; Table.seconds t.Sched.total; "" ];
      [ "Triolet, GC cost removed"; Table.seconds t0.Sched.total; "" ];
    ];
  let share = if overhead > 0.0 then 100.0 *. gc_part /. overhead else 0.0 in
  Printf.printf
    "\nGC accounts for %.0f%% of Triolet's overhead vs C (paper: ~40%%)\n"
    share;
  share

(** Eden's default whole-structure serialization vs the hand-sliced
    decomposition the paper's Eden code uses. *)
let ablation_slicing ctx =
  Table.heading "Ablation: sliced payloads vs whole-structure serialization";
  let app = model_of ctx "mri-q" in
  let m = { Sched.nodes = 8; cores_per_node = 16 } in
  let eden =
    if ctx.measured_efficiency then
      Profile.eden ~efficiency:(ctx.efficiency "Eden") ()
    else Profile.eden ()
  in
  let naive =
    { eden with Profile.slices_input = false;
      net = Triolet_sim.Netmodel.make () }
  in
  let show p =
    match Sched.run app p m with
    | Sched.Completed b ->
        (Table.seconds b.Sched.total, Table.bytes b.Sched.bytes_scattered)
    | Sched.Failed msg -> ("FAIL: " ^ msg, "-")
  in
  let st, sb = show eden and nt, nb = show naive in
  Table.print
    [
      [ "distribution"; "time"; "scattered" ];
      [ "hand-sliced chunks (paper's Eden code)"; st; sb ];
      [ "whole-structure (Eden default)"; nt; nb ];
    ];
  ()

(** Two-level vs flat distribution for the real runtime: message counts
    from the in-process cluster, and simulated time at 8 nodes. *)
let ablation_twolevel ctx =
  Table.heading "Ablation: two-level vs flat work distribution";
  let app = model_of ctx "tpacf" in
  let m = { Sched.nodes = 8; cores_per_node = 16 } in
  let triolet = Profile.triolet () in
  let flat = { triolet with Profile.shared_memory = false } in
  let t p =
    match Sched.run app p m with
    | Sched.Completed b -> Table.seconds b.Sched.total
    | Sched.Failed msg -> "FAIL: " ^ msg
  in
  Table.print
    [
      [ "policy"; "simulated time (tpacf, 8x16)" ];
      [ "two-level (shared memory in node)"; t triolet ];
      [ "flat (process per core)"; t flat ];
    ];
  ()

(** Scheduling of the irregular tpacf units: work stealing and
    over-decomposition (Triolet) vs the static distributions of
    hand-written MPI+OpenMP code — the mechanism behind "Triolet is
    slightly faster due to a more even distribution of computation
    time" (section 4.4). *)
let ablation_scheduling ctx =
  Table.heading "Ablation: scheduling of irregular work (tpacf, 8x16)";
  let app = model_of ctx "tpacf" in
  let m = { Sched.nodes = 8; cores_per_node = 16 } in
  let triolet = Profile.triolet () in
  let static_nodes =
    { triolet with Profile.node_scheduling = Profile.Static_blocks }
  in
  let static_threads =
    {
      triolet with
      Profile.node_scheduling = Profile.Static_blocks;
      intra_node_scheduling = Profile.Static_threads;
    }
  in
  let t p =
    match Sched.run app p m with
    | Sched.Completed b -> b.Sched.total
    | Sched.Failed msg -> failwith msg
  in
  let t0 = t triolet and t1 = t static_nodes and t2 = t static_threads in
  Table.print
    [
      [ "scheduling"; "simulated time" ];
      [ "work stealing + over-decomposed nodes (Triolet)"; Table.seconds t0 ];
      [ "work stealing + static node blocks"; Table.seconds t1 ];
      [ "static threads + static node blocks (C style)"; Table.seconds t2 ];
    ];
  Printf.printf "\nimbalance cost of fully static scheduling: %+.1f%%\n"
    (100.0 *. ((t2 /. t0) -. 1.0))

(** Extension ablation: gathering cutcp's large output grids through a
    binary combining tree (MPI_Reduce style) instead of sequentially
    through the main process — the kind of collective the paper notes
    mattered for mri-q's communication (section 4.2). *)
let ablation_gather ctx =
  Table.heading
    "Ablation (extension): tree gather vs main-process gather (cutcp, 8x16)";
  let app = model_of ctx "cutcp" in
  let m = { Sched.nodes = 8; cores_per_node = 16 } in
  let base = Profile.cmpi () in
  let tree = { base with Profile.tree_gather = true } in
  let t p =
    match Sched.run app p m with
    | Sched.Completed b -> b.Sched.total
    | Sched.Failed msg -> failwith msg
  in
  let t0 = t base and t1 = t tree in
  Table.print
    [
      [ "gather topology"; "simulated time" ];
      [ "sequential through main (paper's runtimes)"; Table.seconds t0 ];
      [ "binary combining tree (MPI_Reduce style)"; Table.seconds t1 ];
    ];
  Printf.printf "\ntree gather speedup on the output-bound kernel: %.2fx\n"
    (t0 /. t1)

let all ?scale ?measured_efficiency () =
  let ctx = make_context ?scale ?measured_efficiency () in
  fig1 ();
  ignore (fig3 ctx);
  ignore (fig4 ctx);
  ignore (fig5 ctx);
  ignore (fig7 ctx);
  ignore (fig8 ctx);
  ignore (summary ctx);
  ignore (ablation_gc ctx);
  ablation_slicing ctx;
  ablation_twolevel ctx;
  ablation_scheduling ctx;
  ablation_gather ctx;
  ctx
