lib/harness/figures.ml: Buffer Calibrate Float List Models Printf Table Triolet_kernels Triolet_sim
