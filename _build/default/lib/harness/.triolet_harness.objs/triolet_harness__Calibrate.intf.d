lib/harness/calibrate.mli:
