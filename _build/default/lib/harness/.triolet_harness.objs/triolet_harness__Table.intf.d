lib/harness/table.mli:
