lib/harness/figures.mli: Calibrate Triolet_kernels Triolet_sim
