lib/harness/table.ml: List Printf String
