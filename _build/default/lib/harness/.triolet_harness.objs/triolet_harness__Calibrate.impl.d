lib/harness/calibrate.ml: Cutcp Dataset Float List Mriq Sgemm Tpacf Triolet Triolet_kernels Triolet_runtime Unix
