(** Plain-text table and series rendering for the figure harness. *)

val render : string list list -> string
(** First row is the header; columns are auto-sized. *)

val print : string list list -> unit

val f1 : float -> string
val f2 : float -> string
val f3 : float -> string

val seconds : float -> string
(** Human-readable duration. *)

val bytes : int -> string
(** Human-readable byte count. *)

val heading : string -> unit
(** Prints an underlined section title. *)
