(** Discrete-event simulation engine: a priority queue of timestamped
    actions, each of which may schedule further events.

    The host has a single CPU core, so the paper's 128-core figures are
    simulated rather than re-measured (see DESIGN.md, Substitutions);
    this module is the time base. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time in seconds. *)

val events_processed : t -> int

val schedule : t -> float -> (t -> unit) -> unit
(** Schedule at an absolute time; raises [Invalid_argument] for times in
    the past. *)

val schedule_in : t -> float -> (t -> unit) -> unit
(** Schedule after a non-negative delay. *)

val run : t -> unit
(** Process events in timestamp order until the queue drains. *)
