(** Scheduler/communication simulation of one application run.

    Replays an {!App_model} under a {!Profile} on an abstract
    [nodes x cores] machine and returns the completion time with a phase
    breakdown.  The policies simulated are the ones the paper describes:

    - two-level distribution (main -> nodes -> threads) with shared
      memory inside a node, for Triolet and C+MPI+OpenMP;
    - hierarchical message forwarding for Eden (main -> one process per
      node -> per-core processes), where each hop re-serializes because
      processes share nothing;
    - sliced vs whole-structure input payloads;
    - static vs over-decomposed node scheduling;
    - greedy earliest-free-core dispatch inside a node (the idealized
      behaviour of a work-stealing pool);
    - sequential message construction on the main process, with GC cost
      proportional to allocated message bytes. *)

type machine = { nodes : int; cores_per_node : int }

type breakdown = {
  total : float;
  setup_time : float;
  scatter_done : float;  (** when the last worker has its input *)
  compute_done : float;  (** when the last worker finishes computing *)
  bytes_scattered : int;
  bytes_gathered : int;
  gc_time : float;  (** total time attributed to allocation/GC *)
}

type result = Completed of breakdown | Failed of string

let total_cores m = m.nodes * m.cores_per_node

(* Contiguous near-equal blocks; local copy to keep the sim library
   independent of the runtime library. *)
let blocks ~parts n =
  let parts = max 1 (min parts (max n 1)) in
  let base = n / parts and extra = n mod parts in
  List.init parts (fun k ->
      let len = base + if k < extra then 1 else 0 in
      let off = (k * base) + min k extra in
      (off, len))
  |> List.filter (fun (_, l) -> l > 0)

(* Unit indices assigned to each of [parts] workers under a policy. *)
let assign policy ~parts n =
  match policy with
  | Profile.Static_blocks ->
      let bs = blocks ~parts n in
      Array.init parts (fun w ->
          match List.nth_opt bs w with
          | Some (off, len) -> List.init len (fun i -> off + i)
          | None -> [])
  | Profile.Overdecomposed k ->
      let chunks = blocks ~parts:(parts * k) n in
      let out = Array.make parts [] in
      List.iteri
        (fun j (off, len) ->
          let w = j mod parts in
          out.(w) <- out.(w) @ List.init len (fun i -> off + i))
        chunks;
      out

let jittered (p : Profile.t) global_index cost =
  if p.jitter_period > 0 && (global_index + 1) mod p.jitter_period = 0 then
    cost *. p.jitter_factor
  else cost

(* Greedy earliest-free-core dispatch of a task list on [cores] cores
   starting at [t0]; returns the makespan end time.  This is the
   idealized behaviour of a work-stealing pool. *)
let simulate_cores ~cores ~t0 task_times =
  if task_times = [] then t0
  else begin
    let free = Heap.create () in
    for _ = 1 to cores do
      Heap.push free t0 ()
    done;
    let finish = ref t0 in
    List.iter
      (fun dt ->
        match Heap.pop free with
        | None -> assert false
        | Some (t, ()) ->
            let t' = t +. dt in
            finish := max !finish t';
            Heap.push free t' ())
      task_times;
    !finish
  end

(* Static (OpenMP-style) thread scheduling: contiguous near-equal
   blocks of the unit list per core; the makespan is the heaviest
   block.  Irregular unit costs go unbalanced. *)
let simulate_cores_static ~cores ~t0 task_times =
  let arr = Array.of_list task_times in
  let n = Array.length arr in
  if n = 0 then t0
  else begin
    let makespan = ref 0.0 in
    List.iter
      (fun (off, len) ->
        let s = ref 0.0 in
        for i = off to off + len - 1 do
          s := !s +. arr.(i)
        done;
        makespan := max !makespan !s)
      (blocks ~parts:cores n);
    t0 +. !makespan
  end

let run_cores (p : Profile.t) ~cores ~t0 task_times =
  match p.intra_node_scheduling with
  | Profile.Work_stealing -> simulate_cores ~cores ~t0 task_times
  | Profile.Static_threads -> simulate_cores_static ~cores ~t0 task_times

let run (app : App_model.t) (p : Profile.t) (m : machine) : result =
  try
    let eff = p.seq_efficiency app.name in
    if eff <= 0.0 then invalid_arg "Sched_sim.run: nonpositive efficiency";
    let gc_total = ref 0.0 in
    let gc bytes =
      let t = p.gc_sec_per_byte *. float_of_int bytes in
      gc_total := !gc_total +. t;
      t
    in
    let ser bytes = float_of_int bytes /. p.serialize_bytes_per_sec in
    let task_time i =
      jittered p i (app.task_cost i /. eff)
      +. p.task_overhead
      +. gc (app.task_alloc_bytes i)
    in
    (* Setup phase (e.g. transposition) runs before distribution. *)
    let setup_time =
      if app.seq_setup_time = 0.0 then 0.0
      else begin
        let t = app.seq_setup_time /. eff in
        if app.setup_shared_mem_ok && p.shared_memory then
          t /. float_of_int m.cores_per_node
        else t
      end
    in
    let node_units = assign p.node_scheduling ~parts:m.nodes app.tasks in
    let node_extra = app.node_extra_in_bytes m.nodes in
    (* With a single node, "distribution" stays on the machine: no
       network hop, no MPI buffer limit, and — for shared-memory
       runtimes — no serialization at all, since main and the node
       share a heap.  Eden's per-core processes still serialize locally
       through the leader (handled below). *)
    let local_only = m.nodes = 1 in
    let net_time bytes = if local_only then 0.0 else Netmodel.transfer_time p.net bytes in
    let main_ser bytes =
      if local_only && p.shared_memory then 0.0 else ser bytes
    in
    let main_gc bytes = if local_only && p.shared_memory then 0.0 else gc bytes in
    let units_in_bytes units =
      if p.slices_input then
        app.broadcast_bytes + node_extra
        + List.fold_left (fun a i -> a + app.task_in_bytes i) 0 units
      else app.broadcast_bytes + app.whole_in_bytes
    in
    let units_out_bytes per_process_grids units =
      (per_process_grids * app.node_out_bytes)
      + List.fold_left (fun a i -> a + app.task_out_bytes i) 0 units
    in
    let scattered = ref 0 and gathered = ref 0 in
    (* Main serializes node messages one after another. *)
    let main_t = ref setup_time in
    let node_results = ref [] in
    let scatter_done = ref setup_time and compute_done = ref setup_time in
    Array.iteri
      (fun _node units ->
        if units <> [] then begin
          let in_bytes = units_in_bytes units in
          scattered := !scattered + in_bytes;
          (* The main process's serializer and NIC are occupied for the
             whole send: later nodes wait behind earlier messages. *)
          main_t := !main_t +. main_ser in_bytes +. main_gc in_bytes
                    +. net_time in_bytes;
          let arrival = !main_t +. main_ser in_bytes in
          scatter_done := max !scatter_done arrival;
          let node_end, out_bytes =
            if p.shared_memory then begin
              (* One process per node; threads share the heap: no
                 intra-node copying, one result per node. *)
              let times = List.map task_time units in
              let fin = run_cores p ~cores:m.cores_per_node ~t0:arrival times in
              (fin, units_out_bytes 1 units)
            end
            else begin
              (* Eden model: a leader process forwards each core's share
                 through local (re-serialized) messages; each core is a
                 full process producing its own copy of reduction
                 results, merged pairwise by the leader. *)
              let shares =
                assign Profile.Static_blocks ~parts:m.cores_per_node
                  (List.length units)
              in
              let units_arr = Array.of_list units in
              let leader_t = ref arrival in
              let fin = ref arrival in
              let merge_bytes = ref 0 in
              Array.iter
                (fun share ->
                  if share <> [] then begin
                    let share_units =
                      List.map (fun k -> units_arr.(k)) share
                    in
                    let in_b = units_in_bytes share_units in
                    leader_t := !leader_t +. ser in_b;
                    let core_end =
                      simulate_cores ~cores:1 ~t0:!leader_t
                        (List.map task_time share_units)
                    in
                    let out_b = units_out_bytes 1 share_units in
                    merge_bytes := !merge_bytes + out_b;
                    fin := max !fin (core_end +. ser out_b)
                  end)
                shares;
              (* Leader merges the per-core results. *)
              let fin = !fin +. ser !merge_bytes +. gc !merge_bytes in
              (fin, units_out_bytes 1 units)
            end
          in
          compute_done := max !compute_done node_end;
          gathered := !gathered + out_bytes;
          let reply_arrival = node_end +. main_ser out_bytes +. net_time out_bytes in
          node_results := (reply_arrival, out_bytes) :: !node_results
        end)
      node_units;
    let replies = List.sort compare !node_results in
    let main_free = ref !main_t in
    (if p.tree_gather then begin
       (* Binary combining tree: log2(n) rounds of pairwise
          send + merge among the nodes, then one reply reaches main. *)
       match replies with
       | [] -> ()
       | _ ->
           let n = List.length replies in
           let depth =
             if n <= 1 then 0
             else int_of_float (ceil (log (float_of_int n) /. log 2.0))
           in
           let last_arrival =
             List.fold_left (fun a (t, _) -> max a t) 0.0 replies
           in
           let bytes = List.fold_left (fun a (_, b) -> max a b) 0 replies in
           let round = ser bytes +. net_time bytes +. ser bytes in
           let root_done = last_arrival +. (float_of_int depth *. round) in
           main_free :=
             max !main_free root_done
             +. net_time bytes +. main_ser bytes +. main_gc bytes
     end
     else
       (* Main receives replies in arrival order and merges
          sequentially: receiving occupies main's NIC and deserializer,
          then the result is merged (touching and, in a GC'd runtime,
          allocating the merged bytes). *)
       List.iter
         (fun (arrival, bytes) ->
           let start = max arrival !main_free in
           main_free :=
             start +. net_time bytes +. main_ser bytes +. main_gc bytes)
         replies);
    let total = max !main_free !compute_done in
    Completed
      {
        total;
        setup_time;
        scatter_done = !scatter_done;
        compute_done = !compute_done;
        bytes_scattered = !scattered;
        bytes_gathered = !gathered;
        gc_time = !gc_total;
      }
  with Netmodel.Message_too_large { bytes; limit } ->
    Failed
      (Printf.sprintf "message of %d bytes exceeds runtime buffer limit %d"
         bytes limit)
