(** Scheduler/communication simulation of one application run: replays
    an {!App_model} under a {!Profile} on an abstract [nodes x cores]
    machine.

    Simulated policies (all from the paper): two-level distribution
    with shared memory per node vs per-core processes with hierarchical
    re-serializing forwarding; sliced vs whole inputs; static vs
    over-decomposed node scheduling; static threads vs work stealing
    inside a node; sequential message construction on main with GC cost
    on large allocations; main's NIC as an occupied resource.  Single-
    node runs pay no network and, for shared-memory runtimes, no
    serialization. *)

type machine = { nodes : int; cores_per_node : int }

type breakdown = {
  total : float;
  setup_time : float;
  scatter_done : float;  (** when the last worker has its input *)
  compute_done : float;
  bytes_scattered : int;
  bytes_gathered : int;
  gc_time : float;  (** time attributed to allocation/GC *)
}

type result =
  | Completed of breakdown
  | Failed of string  (** e.g. Eden's message-buffer overflow *)

val total_cores : machine -> int

val run : App_model.t -> Profile.t -> machine -> result
