(** Language/runtime profiles for the three systems the paper compares.

    Each profile sets the policy knobs the paper identifies as the
    causes of the performance differences; every knob cites where the
    paper establishes it (section numbers refer to the paper).

    The sequential-efficiency table can be overridden with *measured*
    ratios from this reproduction's own Figure 3 run (imperative vs
    iterator vs boxed-list styles), which is what the bench harness
    does; the defaults below are the ratios reported by the paper. *)

type scheduling = Static_blocks | Overdecomposed of int

type intra_node = Static_threads | Work_stealing

type t = {
  name : string;
  seq_efficiency : string -> float;
      (** fraction of sequential-C speed the system reaches on one core
          of the given kernel (Figure 3) *)
  shared_memory : bool;
      (** intra-node shared memory: one process per node with threads
          (Triolet / C+MPI+OpenMP) vs one process per core (Eden) *)
  slices_input : bool;
      (** per-task input slicing (section 3.5) vs whole-structure
          serialization of everything a task references *)
  node_scheduling : scheduling;
      (** how outer units map to nodes: static equal blocks (MPI style)
          or over-decomposed round-robin (Triolet, giving the smoother
          balance the paper credits for tpacf, section 4.4) *)
  intra_node_scheduling : intra_node;
      (** how a node's units map to its cores: contiguous static blocks
          (the hand-written OpenMP pattern) or greedy work stealing
          (Triolet's TBB-based pool) — the source of Triolet's "more
          even distribution of computation time" on tpacf (4.4) *)
  task_overhead : float;  (** per-task launch/bookkeeping seconds *)
  serialize_bytes_per_sec : float;
      (** pack/unpack rate for message construction; block copies run at
          memcpy speed, boxed structures much slower *)
  net : Netmodel.t;
  gc_sec_per_byte : float;
      (** GC/allocator cost per heap byte allocated for large objects —
          the paper measures 40% of Triolet's sgemm overhead (4.3) and
          ~60% of cutcp time (4.5) as allocation overhead *)
  jitter_period : int;
      (** every [jitter_period]-th task runs [jitter_factor] x slower;
          0 disables.  Models Eden's "tasks occasionally run
          significantly slower than normal" (section 4.2) *)
  jitter_factor : float;
  tree_gather : bool;
      (** gather results through a binary combining tree (MPI_Reduce
          style) instead of sequentially through the main process.
          Off for all three systems by default — the paper's runtimes
          send per-node results back to the main thread (section 3.4) —
          and exposed as an extension ablation. *)
}

let default_efficiency table fallback kernel =
  match List.assoc_opt kernel table with Some e -> e | None -> fallback

(** Triolet: fused loops over unboxed arrays get close to C sequentially
    (Figure 3); two-level runtime with work stealing; sliced payloads;
    garbage-collected runtime pays for tens-of-MB allocations. *)
let triolet ?efficiency () =
  let eff =
    match efficiency with
    | Some f -> f
    | None ->
        default_efficiency
          [ ("mri-q", 0.95); ("sgemm", 0.90); ("tpacf", 0.92); ("cutcp", 0.85) ]
          0.9
  in
  {
    name = "Triolet";
    seq_efficiency = eff;
    shared_memory = true;
    slices_input = true;
    node_scheduling = Overdecomposed 4;
    intra_node_scheduling = Work_stealing;
    task_overhead = 2e-5;
    serialize_bytes_per_sec = 4.0e9;
    net = Netmodel.ten_gbe;
    gc_sec_per_byte = 2.5e-10;
    jitter_period = 0;
    jitter_factor = 1.0;
    tree_gather = false;
  }

(** Eden: GHC-compiled tasks over boxed/chunked structures (Figure 3
    shows the sequential gap, e.g. the missed sinf/cosf optimization
    costing ~50% on mri-q); process-per-core model without shared
    memory, so intra-node distribution and result merging re-serialize;
    message-buffer size limit that kills sgemm's large array messages at
    2 nodes (4.3); occasional slow tasks (4.2).  [slices_input] is true
    because the paper's Eden versions hand-wrote chunked/sliced
    decompositions (at the cost of ~120 lines for sgemm) — Eden's
    *default* whole-structure serialization is exercised separately by
    the naive-Eden ablation. *)
let eden ?efficiency () =
  let eff =
    match efficiency with
    | Some f -> f
    | None ->
        default_efficiency
          [ ("mri-q", 0.65); ("sgemm", 0.55); ("tpacf", 0.70); ("cutcp", 0.45) ]
          0.6
  in
  {
    name = "Eden";
    seq_efficiency = eff;
    shared_memory = false;
    slices_input = true;
    node_scheduling = Static_blocks;
    intra_node_scheduling = Static_threads;
    task_overhead = 1e-4;
    serialize_bytes_per_sec = 0.8e9;
    net = Netmodel.make ~max_message_bytes:(64 * 1024 * 1024) ();
    gc_sec_per_byte = 2.5e-10;
    jitter_period = 23;
    jitter_factor = 3.0;
    tree_gather = false;
  }

(** C+MPI+OpenMP: the low-level reference.  Sequential efficiency 1 by
    definition; static block distribution (the hand-written pattern of
    the paper's benchmarks); no GC; memcpy-speed packing. *)
let cmpi ?efficiency () =
  let eff = match efficiency with Some f -> f | None -> fun _ -> 1.0 in
  {
    name = "C+MPI+OpenMP";
    seq_efficiency = eff;
    shared_memory = true;
    slices_input = true;
    node_scheduling = Static_blocks;
    intra_node_scheduling = Static_threads;
    task_overhead = 5e-6;
    serialize_bytes_per_sec = 6.0e9;
    net = Netmodel.ten_gbe;
    gc_sec_per_byte = 0.0;
    jitter_period = 0;
    jitter_factor = 1.0;
    tree_gather = false;
  }
