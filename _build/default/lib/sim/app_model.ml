(** Abstract application model consumed by the scheduler simulator.

    An application is a bag of outer work units plus the byte volumes
    that moving its data costs.  Instances for the four Parboil kernels
    are built in [Triolet_kernels.Models] from *measured* per-unit
    compute rates and *measured* serialized sizes, so the simulation
    replays real costs under modeled policies. *)

type t = {
  name : string;
  tasks : int;  (** outer work units (parallel grain) *)
  task_cost : int -> float;
      (** seconds of compute for unit [i] on one core of the reference
          (sequential C) implementation *)
  task_in_bytes : int -> int;
      (** input bytes needed by unit [i] alone, under sliced (per-task)
          data distribution *)
  broadcast_bytes : int;
      (** input bytes every worker needs regardless of its units (e.g.
          mri-q's sample array, replicated to all nodes) *)
  whole_in_bytes : int;
      (** total input bytes, shipped to *every* worker when the runtime
          cannot slice (whole-structure serialization) *)
  task_out_bytes : int -> int;
      (** result bytes produced by unit [i] *)
  node_out_bytes : int;
      (** result bytes per node for reduction-shaped results whose size
          is independent of the number of units (e.g. a histogram or the
          cutcp grid); added to the per-unit output volume *)
  task_alloc_bytes : int -> int;
      (** heap bytes allocated while computing unit [i] (drives the GC
          overhead term of allocation-heavy kernels) *)
  node_extra_in_bytes : int -> int;
      (** [node_extra_in_bytes nodes]: input bytes each node needs
          *in addition to* its units' slices, as a function of the node
          count — e.g. sgemm's B^T band, whose size depends on the block
          grid.  Only charged under sliced distribution. *)
  seq_setup_time : float;
      (** unparallelizable-over-the-cluster setup, e.g. sgemm's
          transposition, in reference-core seconds *)
  setup_shared_mem_ok : bool;
      (** whether the setup can use single-node shared-memory
          parallelism (Triolet's localpar and OpenMP can; Eden cannot) *)
}

let make ~name ~tasks ~task_cost ?(task_in_bytes = fun _ -> 0)
    ?(broadcast_bytes = 0) ?(whole_in_bytes = 0)
    ?(task_out_bytes = fun _ -> 0) ?(node_out_bytes = 0)
    ?(task_alloc_bytes = fun _ -> 0) ?(node_extra_in_bytes = fun _ -> 0)
    ?(seq_setup_time = 0.0) ?(setup_shared_mem_ok = true) () =
  if tasks < 0 then invalid_arg "App_model.make: negative tasks";
  {
    name;
    tasks;
    task_cost;
    task_in_bytes;
    broadcast_bytes;
    whole_in_bytes;
    task_out_bytes;
    node_out_bytes;
    task_alloc_bytes;
    node_extra_in_bytes;
    seq_setup_time;
    setup_shared_mem_ok;
  }

(** Total sequential-reference time: setup plus all unit costs.  This is
    the denominator of every speedup figure. *)
let sequential_time t =
  let acc = ref t.seq_setup_time in
  for i = 0 to t.tasks - 1 do
    acc := !acc +. t.task_cost i
  done;
  !acc

let total_in_bytes t =
  let acc = ref t.broadcast_bytes in
  for i = 0 to t.tasks - 1 do
    acc := !acc + t.task_in_bytes i
  done;
  !acc
