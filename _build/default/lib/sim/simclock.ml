(** Discrete-event simulation engine.

    The host for this reproduction has a single CPU core, so the paper's
    128-core scalability figures cannot be re-measured physically.  They
    are instead *simulated*: real measured per-task compute costs and
    real serialized byte counts are replayed under each system's
    scheduling and communication policy (see DESIGN.md, Substitutions).
    This module is the time base: a priority queue of timestamped
    events, each an action that may schedule further events. *)

type t = {
  events : (t -> unit) Heap.t;
  mutable now : float;
  mutable processed : int;
}

let create () = { events = Heap.create (); now = 0.0; processed = 0 }

let now t = t.now

let events_processed t = t.processed

(** Schedule [f] at absolute time [time] (must not be in the past). *)
let schedule t time f =
  if time < t.now -. 1e-12 then
    invalid_arg "Simclock.schedule: time in the past";
  Heap.push t.events (max time t.now) f

(** Schedule [f] after a delay of [dt] seconds. *)
let schedule_in t dt f =
  if dt < 0.0 then invalid_arg "Simclock.schedule_in: negative delay";
  schedule t (t.now +. dt) f

(** Run events in timestamp order until the queue drains.  Ties are
    broken by insertion order (heap order is stable enough for our use:
    all handlers are commutative at equal timestamps). *)
let run t =
  let rec loop () =
    match Heap.pop t.events with
    | None -> ()
    | Some (time, f) ->
        t.now <- time;
        t.processed <- t.processed + 1;
        f t;
        loop ()
  in
  loop ()
