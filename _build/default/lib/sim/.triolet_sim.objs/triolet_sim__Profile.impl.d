lib/sim/profile.ml: List Netmodel
