lib/sim/app_model.ml:
