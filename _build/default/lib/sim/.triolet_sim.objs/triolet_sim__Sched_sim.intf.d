lib/sim/sched_sim.mli: App_model Profile
