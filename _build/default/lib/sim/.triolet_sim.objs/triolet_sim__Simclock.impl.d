lib/sim/simclock.ml: Heap
