lib/sim/netmodel.mli:
