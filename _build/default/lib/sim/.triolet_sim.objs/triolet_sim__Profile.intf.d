lib/sim/profile.mli: Netmodel
