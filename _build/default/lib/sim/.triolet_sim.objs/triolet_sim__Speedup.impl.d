lib/sim/speedup.ml: App_model List Profile Sched_sim
