lib/sim/heap.ml: Array Option
