lib/sim/sched_sim.ml: App_model Array Heap List Netmodel Printf Profile
