lib/sim/simclock.mli:
