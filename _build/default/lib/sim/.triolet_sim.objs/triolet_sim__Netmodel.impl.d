lib/sim/netmodel.ml:
