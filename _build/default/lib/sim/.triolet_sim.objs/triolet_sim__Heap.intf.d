lib/sim/heap.mli:
