lib/sim/app_model.mli:
