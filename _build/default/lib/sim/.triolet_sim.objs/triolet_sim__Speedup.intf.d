lib/sim/speedup.mli: App_model Profile Sched_sim
