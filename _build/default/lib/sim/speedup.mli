(** Core-count sweeps producing the speedup-vs-cores series of Figures
    4, 5, 7 and 8, normalized against sequential C as in the paper. *)

type point = {
  cores : int;
  speedup : float option;  (** [None] marks a failed configuration *)
}

type series = { profile_name : string; points : point list }

val default_machines :
  ?cores_per_node:int -> ?max_nodes:int -> unit -> Sched_sim.machine list
(** The evaluation platform's shapes: a 1-core point plus 1..8 full
    16-core nodes. *)

val sweep : App_model.t -> Profile.t -> Sched_sim.machine list -> series

val compare_systems :
  ?efficiency_for:(string -> string -> float) -> App_model.t -> series list
(** C+MPI+OpenMP, Triolet and Eden over the default machines;
    [efficiency_for system kernel] overrides profile efficiencies. *)

val max_speedup : series -> float
val speedup_at : series -> int -> float option
