(** Language/runtime profiles for the three systems the paper compares.
    Each knob corresponds to a cause of performance difference the paper
    identifies (section references in the field docs). *)

type scheduling =
  | Static_blocks  (** contiguous equal unit blocks per node (MPI style) *)
  | Overdecomposed of int
      (** round-robin of [k]-times-overdecomposed chunks (Triolet) *)

type intra_node =
  | Static_threads  (** contiguous per-core blocks (OpenMP-style) *)
  | Work_stealing  (** greedy earliest-free-core dispatch (TBB-style) *)

type t = {
  name : string;
  seq_efficiency : string -> float;
      (** kernel -> fraction of sequential-C speed on one core (Fig. 3) *)
  shared_memory : bool;
      (** threads share a heap within a node vs one process per core *)
  slices_input : bool;
      (** per-task slicing (3.5) vs whole-structure serialization *)
  node_scheduling : scheduling;
  intra_node_scheduling : intra_node;
  task_overhead : float;  (** per-task launch seconds *)
  serialize_bytes_per_sec : float;
  net : Netmodel.t;
  gc_sec_per_byte : float;
      (** allocator/GC cost per heap byte for large objects (4.3, 4.5) *)
  jitter_period : int;
      (** every n-th task runs [jitter_factor] slower; 0 disables (4.2) *)
  jitter_factor : float;
  tree_gather : bool;
      (** gather through a binary combining tree (MPI_Reduce style)
          instead of sequentially through main; an extension ablation,
          off by default for all three systems *)
}

val triolet : ?efficiency:(string -> float) -> unit -> t
val eden : ?efficiency:(string -> float) -> unit -> t
val cmpi : ?efficiency:(string -> float) -> unit -> t
