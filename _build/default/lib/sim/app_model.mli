(** Abstract application model consumed by the scheduler simulator: a
    bag of outer work units plus the byte volumes moving its data
    costs.  Kernel instances are built from *measured* per-unit rates
    and the same slice-size formulas the real iterator runtime uses. *)

type t = {
  name : string;
  tasks : int;
  task_cost : int -> float;
      (** seconds for unit [i] on one reference (sequential C) core *)
  task_in_bytes : int -> int;
      (** input bytes unit [i] needs alone, under sliced distribution *)
  broadcast_bytes : int;
      (** input bytes every worker needs regardless of its units *)
  whole_in_bytes : int;
      (** total input, shipped to every worker when the runtime cannot
          slice *)
  task_out_bytes : int -> int;
  node_out_bytes : int;
      (** per-worker result bytes independent of unit count (histograms,
          the cutcp grid) *)
  task_alloc_bytes : int -> int;
      (** heap bytes allocated computing unit [i]: drives GC overhead *)
  node_extra_in_bytes : int -> int;
      (** machine-dependent per-node input (e.g. sgemm's B^T band, a
          function of the node count); only charged under slicing *)
  seq_setup_time : float;
      (** unparallelizable-over-the-cluster setup (sgemm's transpose) *)
  setup_shared_mem_ok : bool;
      (** whether the setup can use single-node shared-memory parallelism *)
}

val make :
  name:string ->
  tasks:int ->
  task_cost:(int -> float) ->
  ?task_in_bytes:(int -> int) ->
  ?broadcast_bytes:int ->
  ?whole_in_bytes:int ->
  ?task_out_bytes:(int -> int) ->
  ?node_out_bytes:int ->
  ?task_alloc_bytes:(int -> int) ->
  ?node_extra_in_bytes:(int -> int) ->
  ?seq_setup_time:float ->
  ?setup_shared_mem_ok:bool ->
  unit ->
  t

val sequential_time : t -> float
(** Setup plus all unit costs: the denominator of every speedup
    figure. *)

val total_in_bytes : t -> int
