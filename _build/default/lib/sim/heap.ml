(** Binary min-heap keyed by float priority; the event queue of the
    discrete-event simulator. *)

type 'a t = {
  mutable keys : float array;
  mutable vals : 'a option array;
  mutable len : int;
}

let create () = { keys = Array.make 16 0.0; vals = Array.make 16 None; len = 0 }

let length h = h.len

let is_empty h = h.len = 0

let grow h =
  let cap = 2 * Array.length h.keys in
  let keys = Array.make cap 0.0 and vals = Array.make cap None in
  Array.blit h.keys 0 keys 0 h.len;
  Array.blit h.vals 0 vals 0 h.len;
  h.keys <- keys;
  h.vals <- vals

let swap h i j =
  let k = h.keys.(i) and v = h.vals.(i) in
  h.keys.(i) <- h.keys.(j);
  h.vals.(i) <- h.vals.(j);
  h.keys.(j) <- k;
  h.vals.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if h.keys.(p) > h.keys.(i) then begin
      swap h i p;
      sift_up h p
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.keys.(l) < h.keys.(!smallest) then smallest := l;
  if r < h.len && h.keys.(r) < h.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h key v =
  if h.len = Array.length h.keys then grow h;
  h.keys.(h.len) <- key;
  h.vals.(h.len) <- Some v;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek_key h = if h.len = 0 then None else Some h.keys.(0)

let pop h =
  if h.len = 0 then None
  else begin
    let key = h.keys.(0) and v = Option.get h.vals.(0) in
    h.len <- h.len - 1;
    h.keys.(0) <- h.keys.(h.len);
    h.vals.(0) <- h.vals.(h.len);
    h.vals.(h.len) <- None;
    if h.len > 0 then sift_down h 0;
    Some (key, v)
  end
