(** Binary min-heap keyed by float priority; the event queue of the
    discrete-event simulator. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> float -> 'a -> unit

val peek_key : 'a t -> float option
(** Smallest key, if any. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-key entry. *)
