(** Network cost model: per-message latency plus bandwidth-limited
    transfer, with an optional runtime message-size limit.

    Defaults approximate the paper's platform (EC2 cluster-compute,
    10-gigabit Ethernet).  The size limit models Eden's message-passing
    runtime, which failed to buffer sgemm's array messages at 2 nodes
    (paper, section 4.3). *)

type t = {
  latency : float;  (** seconds per message *)
  bytes_per_sec : float;
  max_message_bytes : int option;
}

exception Message_too_large of { bytes : int; limit : int }

val make :
  ?latency:float -> ?bytes_per_sec:float -> ?max_message_bytes:int -> unit -> t

val ten_gbe : t
(** The default EC2-like network. *)

val check_size : t -> int -> unit
(** Raises {!Message_too_large} when over the limit. *)

val transfer_time : t -> int -> float
(** Wire time of one message; raises {!Message_too_large}. *)
