(** Network cost model: per-message latency plus bandwidth-limited
    transfer, with an optional runtime message-size limit.

    Defaults approximate the evaluation platform of the paper — Amazon
    EC2 cluster-compute instances with 10-gigabit Ethernet and MPI-level
    latencies in the tens of microseconds.  The message-size limit
    models Eden's message-passing runtime, whose buffering failed on
    sgemm's large array messages at 2 nodes (paper, section 4.3). *)

type t = {
  latency : float;  (** seconds per message *)
  bytes_per_sec : float;
  max_message_bytes : int option;
}

exception Message_too_large of { bytes : int; limit : int }

let make ?(latency = 5e-5) ?(bytes_per_sec = 7.0e8) ?max_message_bytes () =
  if latency < 0.0 || bytes_per_sec <= 0.0 then invalid_arg "Netmodel.make";
  { latency; bytes_per_sec; max_message_bytes }

let ten_gbe = make ()

let check_size t bytes =
  match t.max_message_bytes with
  | Some limit when bytes > limit -> raise (Message_too_large { bytes; limit })
  | _ -> ()

(** Wire time of one message of [bytes] bytes. *)
let transfer_time t bytes =
  if bytes < 0 then invalid_arg "Netmodel.transfer_time";
  check_size t bytes;
  t.latency +. (float_of_int bytes /. t.bytes_per_sec)
