(** Core-count sweeps producing the speedup-vs-cores series of the
    paper's Figures 4, 5, 7 and 8.

    Speedup is normalized against the *sequential C* time of the same
    application (the reference implementation's measured cost), exactly
    as in the paper. *)

type point = { cores : int; speedup : float option }
(** [speedup = None] marks a failed configuration (Eden's sgemm runs
    out of message buffer at >= 2 nodes). *)

type series = { profile_name : string; points : point list }

(** Machines matching the evaluation platform: full 16-core nodes are
    added one at a time, 1..8 nodes (16..128 cores), plus the 1-core
    point. *)
let default_machines ?(cores_per_node = 16) ?(max_nodes = 8) () =
  { Sched_sim.nodes = 1; cores_per_node = 1 }
  :: List.init max_nodes (fun k ->
         { Sched_sim.nodes = k + 1; cores_per_node })

let sweep app profile machines =
  let seq_time = App_model.sequential_time app in
  let points =
    List.map
      (fun m ->
        let cores = Sched_sim.total_cores m in
        match Sched_sim.run app profile m with
        | Sched_sim.Completed b ->
            { cores; speedup = Some (seq_time /. b.Sched_sim.total) }
        | Sched_sim.Failed _ -> { cores; speedup = None })
      machines
  in
  { profile_name = profile.Profile.name; points }

(** Sweep all three systems over the default machines. *)
let compare_systems ?efficiency_for app =
  let eff name =
    match efficiency_for with None -> None | Some f -> Some (f name)
  in
  let profiles =
    [
      Profile.cmpi ?efficiency:(eff "C+MPI+OpenMP") ();
      Profile.triolet ?efficiency:(eff "Triolet") ();
      Profile.eden ?efficiency:(eff "Eden") ();
    ]
  in
  List.map (fun p -> sweep app p (default_machines ())) profiles

let max_speedup series =
  List.fold_left
    (fun acc pt -> match pt.speedup with Some s -> max acc s | None -> acc)
    0.0 series.points

let speedup_at series cores =
  List.find_map
    (fun pt -> if pt.cores = cores then pt.speedup else None)
    series.points
