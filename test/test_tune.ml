(* Auto-mapper tests: MAPPINGS.json round-tripping through the Json
   printer/parser, schema-version mismatch handling (warn-and-ignore,
   never an error), runtime lookup precedence in Exec.for_kernel, loud
   rejection of unknown TRIOLET_BACKEND values, search determinism,
   and registry/mapping drift detection (`autotune --check`). *)

module Mapping = Triolet.Mapping
module Exec = Triolet.Exec
module Cluster = Triolet_runtime.Cluster
module Json = Triolet_obs.Json
module Kernel = Triolet_kernels.Kernel
module Models = Triolet_kernels.Models
module App = Triolet_sim.App_model
module Tune = Triolet_tune.Tune

(* A stray backend or mapping file in the environment would perturb
   every precedence test below; start from a clean slate. *)
let () = Unix.putenv "TRIOLET_BACKEND" ""
let () = Unix.putenv "TRIOLET_MAPPINGS" ""
let () = Mapping.reload ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_env var value f =
  let old = try Some (Sys.getenv var) with Not_found -> None in
  Unix.putenv var value;
  Mapping.reload ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv var (match old with Some v -> v | None -> "");
      Mapping.reload ())
    f

let sample_entry =
  {
    Mapping.kernel = "mri-q";
    size = "tiny";
    nodes = 3;
    cores_per_node = 2;
    backend = "flat";
    grain = Some 64;
    chunk_multiplier = 4;
    predicted_s = 0.125;
    cluster_s = 0.0625;
    seq_s = 0.5;
    measured_s = Some 0.13;
    delta = Some 0.04;
  }

let sample_file =
  {
    Mapping.version = Mapping.schema_version;
    objective = "host";
    host_cores = 4;
    rates = [ ("mriq_pair_s", 1e-8); ("sgemm_mac_s", 2e-9) ];
    entries =
      [
        sample_entry;
        { sample_entry with Mapping.kernel = "sgemm"; grain = None;
          measured_s = None; delta = None };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Mapping file round-trip                                             *)

let test_json_round_trip () =
  match Mapping.of_json (Json.of_string (Json.to_string (Mapping.to_json sample_file))) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok f ->
      check_bool "identical after print/parse round trip" true
        (f = sample_file)

let test_save_load_round_trip () =
  let path = Filename.temp_file "triolet_mappings" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mapping.save path sample_file;
      match Mapping.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok f -> check_bool "identical after save/load" true (f = sample_file))

let test_lookup () =
  check_bool "hit" true
    (Mapping.lookup sample_file ~kernel:"mri-q" ~size:"tiny" = Some sample_entry);
  check_bool "size miss" true
    (Mapping.lookup sample_file ~kernel:"mri-q" ~size:"paper" = None);
  check_bool "kernel miss" true
    (Mapping.lookup sample_file ~kernel:"cutcp" ~size:"tiny" = None)

let test_schema_mismatch_is_error () =
  let bad = { sample_file with Mapping.version = Mapping.schema_version + 7 } in
  (match Mapping.of_json (Mapping.to_json bad) with
  | Ok _ -> Alcotest.fail "schema mismatch must not parse"
  | Error msg ->
      check_bool "message names the schema version" true
        (let re = Str.regexp_string "schema version" in
         try ignore (Str.search_forward re msg 0); true
         with Not_found -> false));
  (* Malformed entries are rejected with the offending field named. *)
  match
    Mapping.of_json
      (Mapping.to_json
         { sample_file with
           Mapping.entries = [ { sample_entry with Mapping.nodes = 0 } ] })
  with
  | Ok _ -> Alcotest.fail "non-positive nodes must not parse"
  | Error msg ->
      check_bool "message names the field" true
        (let re = Str.regexp_string "nodes" in
         try ignore (Str.search_forward re msg 0); true
         with Not_found -> false)

(* A stale (schema-mismatched) checked-in file must degrade to "no
   mapping" — a warning, never an exception. *)
let test_stale_file_ignored () =
  let path = Filename.temp_file "triolet_mappings" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Json.to_file path
        (Mapping.to_json
           { sample_file with Mapping.version = Mapping.schema_version + 1 });
      with_env "TRIOLET_MAPPINGS" path (fun () ->
          check_bool "stale file reads as absent" true (Mapping.loaded () = None));
      (* Unparseable likewise. *)
      let oc = open_out path in
      output_string oc "{ not json";
      close_out oc;
      with_env "TRIOLET_MAPPINGS" path (fun () ->
          check_bool "garbage file reads as absent" true (Mapping.loaded () = None)))

let test_empty_env_disables () =
  with_env "TRIOLET_MAPPINGS" "" (fun () ->
      check_bool "empty TRIOLET_MAPPINGS disables lookup" true
        (Mapping.default_path () = None))

(* ------------------------------------------------------------------ *)
(* Runtime precedence: ?ctx > explicit ambient > env > mapping > default *)

let test_for_kernel_precedence () =
  let path = Filename.temp_file "triolet_mappings" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mapping.save path sample_file;
      with_env "TRIOLET_MAPPINGS" path (fun () ->
          (* Mapping entry applies when nothing else is installed. *)
          let c = Exec.for_kernel ~kernel:"mri-q" ~size:"tiny" () in
          check_int "mapping nodes" 3 c.Exec.nodes;
          check_int "mapping cores" 2 c.Exec.cores_per_node;
          check_bool "mapping backend" true (c.Exec.backend = Cluster.Flat);
          check_bool "mapping grain" true (c.Exec.grain = Some 64);
          check_int "mapping chunk multiplier" 4 c.Exec.chunk_multiplier;
          (* No entry for this (kernel, size): current context. *)
          let d = Exec.for_kernel ~kernel:"mri-q" ~size:"paper" () in
          check_int "miss falls back to current" (Exec.current ()).Exec.nodes
            d.Exec.nodes;
          (* ?ctx beats the mapping. *)
          let e =
            Exec.for_kernel ~ctx:(Exec.make ~nodes:9 ()) ~kernel:"mri-q"
              ~size:"tiny" ()
          in
          check_int "?ctx wins" 9 e.Exec.nodes;
          (* An explicitly installed ambient context beats the mapping. *)
          Exec.with_context (Exec.make ~nodes:7 ~cores_per_node:1 ())
            (fun () ->
              let f = Exec.for_kernel ~kernel:"mri-q" ~size:"tiny" () in
              check_int "explicit ambient wins" 7 f.Exec.nodes);
          (* TRIOLET_BACKEND beats the mapping's backend field but not
             its geometry. *)
          Unix.putenv "TRIOLET_BACKEND" "inprocess";
          Fun.protect
            ~finally:(fun () -> Unix.putenv "TRIOLET_BACKEND" "")
            (fun () ->
              let g = Exec.for_kernel ~kernel:"mri-q" ~size:"tiny" () in
              check_int "env keeps mapping geometry" 3 g.Exec.nodes;
              check_bool "env overrides mapping backend" true
                (g.Exec.backend = Cluster.Inprocess))))

let test_unknown_backend_rejected () =
  Unix.putenv "TRIOLET_BACKEND" "opencl";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "TRIOLET_BACKEND" "")
    (fun () ->
      match Exec.default () with
      | _ -> Alcotest.fail "unknown TRIOLET_BACKEND must raise"
      | exception Invalid_argument msg ->
          check_string "error lists the valid values"
            "TRIOLET_BACKEND=\"opencl\" is not a known backend (valid \
             values: inprocess, flat, process)"
            msg)

(* ------------------------------------------------------------------ *)
(* Search                                                              *)

let default_rates_assoc = Tune.rates_to_assoc Models.default_rates

let cand_key (s : Tune.score) =
  ( s.Tune.cand.Tune.nodes,
    s.Tune.cand.Tune.cores_per_node,
    s.Tune.cand.Tune.grain,
    s.Tune.cand.Tune.chunk_multiplier,
    Cluster.backend_to_string s.Tune.cand.Tune.backend )

let test_search_deterministic () =
  let app = Models.mriq_model_sized ~voxels:4096 ~samples:1024 () in
  let r1 = Tune.search ~objective:Tune.Host ~host_cores:4 ~app () in
  let r2 = Tune.search ~objective:Tune.Host ~host_cores:4 ~app () in
  check_int "full lattice scored"
    (List.length (Tune.default_lattice ()))
    (List.length r1);
  check_bool "identical ranking and scores" true
    (List.map (fun s -> (cand_key s, s.Tune.host_s, s.Tune.cluster_s)) r1
    = List.map (fun s -> (cand_key s, s.Tune.host_s, s.Tune.cluster_s)) r2);
  (* Ranking is actually sorted by the objective. *)
  let rec sorted = function
    | a :: (b :: _ as tl) -> a.Tune.host_s <= b.Tune.host_s && sorted tl
    | _ -> true
  in
  check_bool "best-first" true (sorted r1)

let test_score_finite_on_host_lattice () =
  let app = Models.sgemm_model_sized ~m:256 ~k:256 ~n:256 () in
  List.iter
    (fun c ->
      let s = Tune.score ~host_cores:4 ~app c in
      check_bool "host projection is finite" true (Float.is_finite s.Tune.host_s))
    (Tune.default_lattice ())

(* ------------------------------------------------------------------ *)
(* Drift checking                                                      *)

(* A consistent file built the same way `autotune` builds one, except
   the "measured" sequential time is taken from the uncalibrated model
   so nothing here depends on wall clocks. *)
let synthetic_file () =
  let host_cores = Tune.default_host_cores () in
  let rates = Models.default_rates in
  let entries =
    List.map
      (fun (module K : Kernel.S) ->
        let inst = K.instance ~size:K.default_size () in
        let app0 = inst.Kernel.model ~rates () in
        let seq_s = App.sequential_time app0 in
        let app = Tune.calibrate app0 ~measured_seq:seq_s in
        match Tune.search ~objective:Tune.Host ~host_cores ~app () with
        | [] -> Alcotest.fail "empty lattice"
        | best :: _ ->
            {
              Mapping.kernel = K.name;
              size = K.default_size;
              nodes = best.Tune.cand.Tune.nodes;
              cores_per_node = best.Tune.cand.Tune.cores_per_node;
              backend =
                Cluster.backend_to_string best.Tune.cand.Tune.backend;
              grain = best.Tune.cand.Tune.grain;
              chunk_multiplier = best.Tune.cand.Tune.chunk_multiplier;
              predicted_s = best.Tune.host_s;
              cluster_s = best.Tune.cluster_s;
              seq_s;
              measured_s = None;
              delta = None;
            })
      (Kernel.all ())
  in
  {
    Mapping.version = Mapping.schema_version;
    objective = "host";
    host_cores;
    rates = default_rates_assoc;
    entries;
  }

let drift_mentions needle = function
  | Tune.Check_ok -> false
  | Tune.Check_drift issues ->
      List.exists
        (fun i ->
          try
            ignore (Str.search_forward (Str.regexp_string needle) i 0);
            true
          with Not_found -> false)
        issues

let test_check_ok () =
  match Tune.check (synthetic_file ()) with
  | Tune.Check_ok -> ()
  | Tune.Check_drift issues ->
      Alcotest.failf "expected ok, got drift:\n%s" (String.concat "\n" issues)

let test_check_detects_drift () =
  let file = synthetic_file () in
  (* Unregistered kernel in an entry. *)
  let bad_kernel =
    { file with
      Mapping.entries =
        List.map
          (fun e ->
            if e.Mapping.kernel = "sgemm" then
              { e with Mapping.kernel = "spmv" }
            else e)
          file.Mapping.entries }
  in
  check_bool "unknown kernel is drift" true
    (drift_mentions "not registered" (Tune.check bad_kernel));
  check_bool "unknown kernel also breaks coverage" true
    (drift_mentions "no entry" (Tune.check bad_kernel));
  (* Recorded context that left the lattice. *)
  let off_lattice =
    { file with
      Mapping.entries =
        List.map
          (fun e ->
            if e.Mapping.kernel = "mri-q" then { e with Mapping.nodes = 5 }
            else e)
          file.Mapping.entries }
  in
  check_bool "off-lattice context is drift" true
    (drift_mentions "no longer in the search lattice" (Tune.check off_lattice));
  (* Prediction that no longer matches the model. *)
  let moved =
    { file with
      Mapping.entries =
        List.map
          (fun e ->
            if e.Mapping.kernel = "cutcp" then
              { e with Mapping.predicted_s = e.Mapping.predicted_s *. 3.0 }
            else e)
          file.Mapping.entries }
  in
  check_bool "re-score mismatch is drift" true
    (drift_mentions "cost model moved" (Tune.check moved));
  (* Missing kernel coverage. *)
  let uncovered =
    { file with
      Mapping.entries =
        List.filter
          (fun e -> e.Mapping.kernel <> "tpacf")
          file.Mapping.entries }
  in
  check_bool "missing kernel is drift" true
    (drift_mentions "tpacf has no entry" (Tune.check uncovered));
  (* Unknown objective string. *)
  check_bool "unknown objective is drift" true
    (drift_mentions "unknown objective"
       (Tune.check { file with Mapping.objective = "gpu" }))

(* ------------------------------------------------------------------ *)
(* Registry consistency                                                *)

(* Runtime lookup classifies by work units; it only hits the tuned
   entries if every instance's work_units maps back to the size class
   it was built from. *)
let test_size_taxonomy_agrees () =
  List.iter
    (fun (module K : Kernel.S) ->
      List.iter
        (fun size ->
          let inst = K.instance ~size () in
          check_string
            (Printf.sprintf "%s/%s work units classify back" K.name size)
            size
            (Mapping.size_class_of_work inst.Kernel.work_units))
        K.size_classes)
    (Kernel.all ())

let test_registry_names () =
  check_bool "all four paper kernels registered" true
    (List.sort compare (Kernel.names ())
    = [ "cutcp"; "mri-q"; "sgemm"; "tpacf" ]);
  check_bool "find hits" true (Kernel.find "tpacf" <> None);
  check_bool "find misses" true (Kernel.find "spmv" = None)

let () =
  Alcotest.run "tune"
    [
      ( "mapping",
        [
          Alcotest.test_case "json round trip" `Quick test_json_round_trip;
          Alcotest.test_case "save/load round trip" `Quick
            test_save_load_round_trip;
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "schema mismatch is an error" `Quick
            test_schema_mismatch_is_error;
          Alcotest.test_case "stale file warn-and-ignore" `Quick
            test_stale_file_ignored;
          Alcotest.test_case "empty env disables" `Quick
            test_empty_env_disables;
        ] );
      ( "precedence",
        [
          Alcotest.test_case "ctx > ambient > env > mapping" `Quick
            test_for_kernel_precedence;
          Alcotest.test_case "unknown TRIOLET_BACKEND fails loudly" `Quick
            test_unknown_backend_rejected;
        ] );
      ( "search",
        [
          Alcotest.test_case "deterministic ranking" `Quick
            test_search_deterministic;
          Alcotest.test_case "finite host scores" `Quick
            test_score_finite_on_host_lattice;
        ] );
      ( "check",
        [
          Alcotest.test_case "consistent file passes" `Quick test_check_ok;
          Alcotest.test_case "drift detected" `Quick test_check_detects_drift;
        ] );
      ( "registry",
        [
          Alcotest.test_case "size taxonomy agrees" `Quick
            test_size_taxonomy_agrees;
          Alcotest.test_case "names" `Quick test_registry_names;
        ] );
    ]
