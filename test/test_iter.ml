(* Tests for the user-facing iterator API: fused pipelines, par/localpar
   hints, and all three execution paths (sequential, shared-memory
   pool, distributed cluster with sliced payloads). *)

open Triolet
module Cluster = Triolet_runtime.Cluster
module Codec = Triolet_base.Codec
module Stats = Triolet_runtime.Stats

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

(* Keep pools tiny on the 1-core box; the default pool is created once. *)
let () = Triolet_runtime.Pool.set_default_width 2

let () =
  Exec.set_ambient (Exec.make ~nodes:(3) ~cores_per_node:(2) ())

let on_cluster ~nodes ~cores_per_node ~flat f =
  Exec.with_context
    (Exec.make ~nodes ~cores_per_node
       ~backend:(if flat then Cluster.Flat else (Exec.default ()).Exec.backend)
       ())
    f

let fa_of_list l = Float.Array.of_list l

let with_hint h it =
  match h with
  | Iter.Sequential -> Iter.sequential it
  | Iter.Local -> Iter.localpar it
  | Iter.Distributed -> Iter.par it

let each_hint f =
  List.iter
    (fun (name, h) -> f name h)
    [ ("seq", Iter.Sequential); ("localpar", Iter.Local);
      ("par", Iter.Distributed) ]

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)

let test_of_floatarray () =
  let it = Iter.of_floatarray (fa_of_list [ 1.0; 2.0; 3.0 ]) in
  check_int "len" 3 (Iter.length it);
  Alcotest.(check (list (float 0.0))) "to_list" [ 1.0; 2.0; 3.0 ] (Iter.to_list it)

let test_range_and_indices () =
  Alcotest.(check (list int)) "range" [ 5; 6; 7 ] (Iter.to_list (Iter.range 5 8));
  let it = Iter.of_floatarray (fa_of_list [ 9.0; 9.0 ]) in
  Alcotest.(check (list int)) "indices" [ 0; 1 ] (Iter.to_list (Iter.indices it))

let test_of_int_array_and_array () =
  Alcotest.(check (list int)) "ints" [ 4; 5 ]
    (Iter.to_list (Iter.of_int_array [| 4; 5 |]));
  Alcotest.(check (list string)) "boxed" [ "a"; "b" ]
    (Iter.to_list (Iter.of_array [| "a"; "b" |]))

(* ------------------------------------------------------------------ *)
(* The dot product of section 2, on every execution path               *)

let dot xs ys =
  Iter.sum (Iter.map (fun (x, y) -> x *. y) (Iter.zip xs ys))

let test_dot_all_hints () =
  let xs = Float.Array.init 1000 (fun i -> float_of_int i) in
  let ys = Float.Array.init 1000 (fun i -> float_of_int (i mod 7)) in
  let expected = ref 0.0 in
  for i = 0 to 999 do
    expected := !expected +. (Float.Array.get xs i *. Float.Array.get ys i)
  done;
  each_hint (fun name h ->
      let d = dot (with_hint h (Iter.of_floatarray xs)) (Iter.of_floatarray ys) in
      Alcotest.(check (float 1e-6)) ("dot " ^ name) !expected d)

let test_dot_distributed_ships_slices () =
  (* Distributed dot must ship both arrays, sliced: the scatter volume
     is close to the raw data size, not nodes x data size. *)
  let n = 3000 in
  let xs = Float.Array.make n 1.0 and ys = Float.Array.make n 2.0 in
  Stats.reset ();
  let _, delta =
    Stats.measure (fun () ->
        dot (Iter.par (Iter.of_floatarray xs)) (Iter.of_floatarray ys))
  in
  let raw = 2 * 8 * n in
  Alcotest.(check bool) "scatter ~ raw size" true
    (delta.Stats.bytes_sent > raw && delta.Stats.bytes_sent < raw + 4096)

(* ------------------------------------------------------------------ *)
(* Transformations                                                     *)

let test_filter_sum_all_hints () =
  each_hint (fun name h ->
      let s =
        Iter.range 0 1000
        |> with_hint h
        |> Iter.filter (fun x -> x mod 2 = 0)
        |> Iter.map float_of_int
        |> Iter.sum
      in
      Alcotest.(check (float 0.0)) ("filter+sum " ^ name) 249500.0 s)

let test_concat_map_all_hints () =
  each_hint (fun name h ->
      let s =
        Iter.range 0 100
        |> with_hint h
        |> Iter.concat_map (fun n -> Seq_iter.range 0 (n mod 5))
        |> Iter.sum_int
      in
      (* per n: sum 0..(n mod 5 - 1); 20 full cycles of (0+0+1+3+6)=10 *)
      check_int ("concat_map " ^ name) 200 s)

let test_zip3_and_enumerate () =
  let a = Iter.of_floatarray (fa_of_list [ 1.0; 2.0 ]) in
  let b = Iter.of_floatarray (fa_of_list [ 10.0; 20.0 ]) in
  let c = Iter.of_floatarray (fa_of_list [ 100.0; 200.0 ]) in
  let sums =
    Iter.to_list (Iter.map (fun (x, y, z) -> x +. y +. z) (Iter.zip3 a b c))
  in
  Alcotest.(check (list (float 0.0))) "zip3" [ 111.0; 222.0 ] sums;
  let e = Iter.to_list (Iter.enumerate (Iter.of_int_array [| 7; 8 |])) in
  Alcotest.(check (list (pair int int))) "enumerate" [ (0, 7); (1, 8) ] e

let test_zip_truncates () =
  let a = Iter.range 0 5 and b = Iter.range 0 3 in
  check_int "len" 3 (Iter.length (Iter.zip a b))

let test_zip_hint_propagates () =
  let a = Iter.par (Iter.range 0 5) and b = Iter.range 0 5 in
  Alcotest.(check bool) "distributed wins" true
    (Iter.hint (Iter.zip a b) = Iter.Distributed);
  let c = Iter.localpar (Iter.range 0 5) in
  Alcotest.(check bool) "local wins over seq" true
    (Iter.hint (Iter.zip c (Iter.range 0 5)) = Iter.Local)

(* ------------------------------------------------------------------ *)
(* Consumers                                                           *)

let test_reduce_max () =
  let a = Iter.of_floatarray (fa_of_list [ 3.0; 9.0; 1.0; 7.0 ]) in
  each_hint (fun name h ->
      check_float ("max " ^ name) 9.0
        (Iter.reduce ~codec:Codec.float ~merge:Float.max ~init:Float.neg_infinity
           (with_hint h a)))

let test_count () =
  each_hint (fun name h ->
      check_int ("count " ^ name) 34
        (Iter.count (Iter.filter (fun x -> x mod 3 = 0) (with_hint h (Iter.range 0 100)))))

let test_histogram_all_hints () =
  let bins = 8 in
  let reference = Array.make bins 0 in
  for i = 0 to 999 do
    let b = i * i mod bins in
    reference.(b) <- reference.(b) + 1
  done;
  each_hint (fun name h ->
      let hist =
        Iter.histogram ~bins (Iter.map (fun i -> i * i mod bins) (with_hint h (Iter.range 0 1000)))
      in
      Alcotest.(check (array int)) ("histogram " ^ name) reference hist)

let test_scatter_add_all_hints () =
  let size = 16 in
  let reference = Float.Array.make size 0.0 in
  for i = 0 to 499 do
    let b = i mod size in
    Float.Array.set reference b (Float.Array.get reference b +. (0.5 *. float_of_int i))
  done;
  each_hint (fun name h ->
      let grid =
        Iter.scatter_add ~size
          (Iter.map (fun i -> (i mod size, 0.5 *. float_of_int i)) (with_hint h (Iter.range 0 500)))
      in
      for b = 0 to size - 1 do
        Alcotest.(check (float 1e-6)) (name ^ " bin") (Float.Array.get reference b)
          (Float.Array.get grid b)
      done)

let test_collect_floats_order () =
  each_hint (fun name h ->
      let fa =
        Iter.collect_floats
          (Iter.map (fun i -> float_of_int (i * 3)) (with_hint h (Iter.range 0 101)))
      in
      check_int (name ^ " len") 101 (Float.Array.length fa);
      for i = 0 to 100 do
        Alcotest.(check (float 0.0)) (name ^ " order") (float_of_int (i * 3))
          (Float.Array.get fa i)
      done)

let test_collect_floats_irregular () =
  (* Variable-length output: order must still follow the input order. *)
  let expected =
    List.concat_map (fun i -> List.init (i mod 3) (fun k -> float_of_int ((10 * i) + k)))
      (List.init 50 Fun.id)
  in
  each_hint (fun name h ->
      let fa =
        Iter.collect_floats
          (Iter.concat_map
             (fun i ->
               Seq_iter.map
                 (fun k -> float_of_int ((10 * i) + k))
                 (Seq_iter.range 0 (i mod 3)))
             (with_hint h (Iter.range 0 50)))
      in
      Alcotest.(check (list (float 0.0))) (name ^ " irregular pack") expected
        (List.init (Float.Array.length fa) (Float.Array.get fa)))

let test_empty_iterators () =
  each_hint (fun name h ->
      check_float (name ^ " sum") 0.0 (Iter.sum (with_hint h (Iter.of_floatarray (Float.Array.create 0))));
      check_int (name ^ " count") 0 (Iter.count (with_hint h (Iter.range 0 0))))

(* ------------------------------------------------------------------ *)
(* Distributed execution details                                        *)

let test_flat_mode_matches () =
  let xs = Float.Array.init 500 float_of_int in
  let tw =
    Exec.with_context (Exec.make ~nodes:(2) ~cores_per_node:(2) ())
      (fun () -> Iter.sum (Iter.par (Iter.of_floatarray xs)))
  in
  let fl =
    Exec.with_context (Exec.make ~nodes:(2) ~cores_per_node:(2) ~backend:Cluster.Flat ())
      (fun () -> Iter.sum (Iter.par (Iter.of_floatarray xs)))
  in
  check_float "two-level = flat result" tw fl

let test_flat_mode_sends_more_messages () =
  let xs = Float.Array.init 512 float_of_int in
  let count flat =
    Stats.reset ();
    let _, d =
      Stats.measure (fun () ->
          on_cluster ~nodes:4 ~cores_per_node:4 ~flat
            (fun () -> Iter.sum (Iter.par (Iter.of_floatarray xs))))
    in
    d.Stats.messages
  in
  let flat_msgs = count true and two_msgs = count false in
  Alcotest.(check bool) "flat needs more messages" true (flat_msgs > two_msgs)

let test_single_node_cluster () =
  Exec.with_context (Exec.make ~nodes:(1) ~cores_per_node:(2) ())
    (fun () ->
      check_float "sum" 4950.0
        (Iter.sum (Iter.par (Iter.map float_of_int (Iter.range 0 100)))))

let test_more_nodes_than_elements () =
  Exec.with_context (Exec.make ~nodes:(3) ~cores_per_node:(2) ())
    (fun () ->
      check_int "tiny input" 1
        (Iter.sum_int (Iter.par (Iter.of_int_array [| 1 |]))))

let test_of_array_distributed_needs_codec () =
  let it = Iter.par (Iter.of_array [| 1; 2; 3 |]) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Iter.reduce ~codec:Codec.int ~merge:( + ) ~init:0 it);
       false
     with Invalid_argument _ -> true)

let test_of_array_distributed_with_codec () =
  let it = Iter.par (Iter.of_array ~codec:Codec.int [| 1; 2; 3; 4 |]) in
  check_int "sum" 10 (Iter.reduce ~codec:Codec.int ~merge:( + ) ~init:0 it)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let gen_floats =
  QCheck2.Gen.(list_size (int_bound 60) (float_bound_inclusive 100.0))

let prop_sum_hint_invariance =
  qtest "sum independent of hint" gen_floats (fun l ->
      let fa = fa_of_list l in
      let s0 = Iter.sum (Iter.sequential (Iter.of_floatarray fa)) in
      let s1 = Iter.sum (Iter.localpar (Iter.of_floatarray fa)) in
      let s2 = Iter.sum (Iter.par (Iter.of_floatarray fa)) in
      Float.abs (s0 -. s1) <= 1e-6 *. (1.0 +. Float.abs s0)
      && Float.abs (s0 -. s2) <= 1e-6 *. (1.0 +. Float.abs s0))

let prop_histogram_hint_invariance =
  qtest "histogram independent of hint"
    QCheck2.Gen.(list_size (int_bound 80) (int_bound 9))
    (fun l ->
      let a = Array.of_list l in
      let h0 = Iter.histogram ~bins:10 (Iter.sequential (Iter.of_int_array a)) in
      let h1 = Iter.histogram ~bins:10 (Iter.localpar (Iter.of_int_array a)) in
      let h2 = Iter.histogram ~bins:10 (Iter.par (Iter.of_int_array a)) in
      h0 = h1 && h0 = h2)

let prop_pipeline_matches_list =
  qtest "fused pipeline = list pipeline"
    QCheck2.Gen.(list_size (int_bound 50) (int_range (-30) 30))
    (fun l ->
      let it =
        Iter.of_int_array (Array.of_list l)
        |> Iter.filter (fun x -> x mod 2 = 0)
        |> Iter.map (fun x -> x * x)
      in
      let ll = l |> List.filter (fun x -> x mod 2 = 0) |> List.map (fun x -> x * x) in
      Iter.to_list it = ll
      && Iter.sum_int (Iter.localpar it) = List.fold_left ( + ) 0 ll)

let () =
  Alcotest.run "iter"
    [
      ( "sources",
        [
          Alcotest.test_case "of_floatarray" `Quick test_of_floatarray;
          Alcotest.test_case "range/indices" `Quick test_range_and_indices;
          Alcotest.test_case "int/boxed arrays" `Quick test_of_int_array_and_array;
        ] );
      ( "dot",
        [
          Alcotest.test_case "all hints" `Quick test_dot_all_hints;
          Alcotest.test_case "distributed ships slices" `Quick
            test_dot_distributed_ships_slices;
        ] );
      ( "transform",
        [
          Alcotest.test_case "filter+sum" `Quick test_filter_sum_all_hints;
          Alcotest.test_case "concat_map" `Quick test_concat_map_all_hints;
          Alcotest.test_case "zip3/enumerate" `Quick test_zip3_and_enumerate;
          Alcotest.test_case "zip truncates" `Quick test_zip_truncates;
          Alcotest.test_case "zip hint propagation" `Quick test_zip_hint_propagates;
        ] );
      ( "consumers",
        [
          Alcotest.test_case "reduce max" `Quick test_reduce_max;
          Alcotest.test_case "count" `Quick test_count;
          Alcotest.test_case "histogram" `Quick test_histogram_all_hints;
          Alcotest.test_case "scatter_add" `Quick test_scatter_add_all_hints;
          Alcotest.test_case "collect_floats order" `Quick
            test_collect_floats_order;
          Alcotest.test_case "collect irregular" `Quick
            test_collect_floats_irregular;
          Alcotest.test_case "empty" `Quick test_empty_iterators;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "flat = two-level result" `Quick test_flat_mode_matches;
          Alcotest.test_case "flat sends more messages" `Quick
            test_flat_mode_sends_more_messages;
          Alcotest.test_case "single node" `Quick test_single_node_cluster;
          Alcotest.test_case "more nodes than work" `Quick
            test_more_nodes_than_elements;
          Alcotest.test_case "boxed array needs codec" `Quick
            test_of_array_distributed_needs_codec;
          Alcotest.test_case "boxed array with codec" `Quick
            test_of_array_distributed_with_codec;
        ] );
      ( "properties",
        [
          prop_sum_hint_invariance;
          prop_histogram_hint_invariance;
          prop_pipeline_matches_list;
        ] );
    ]
