(* Tests for the four Parboil kernels: the Triolet-iterator and
   Eden-list implementations must agree with the imperative C-style
   reference on small instances, across execution hints and cluster
   configurations; plus tests for the calibrated simulator models. *)

open Triolet
open Triolet_kernels
module Cluster = Triolet_runtime.Cluster

let () = Triolet_runtime.Pool.set_default_width 2

let () =
  Exec.set_ambient (Exec.make ~nodes:(3) ~cores_per_node:(2) ())

let qtest name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen prop)

(* ------------------------------------------------------------------ *)
(* mri-q                                                               *)

let test_mriq_triolet_matches_c () =
  let d = Dataset.mriq ~seed:11 ~samples:64 ~voxels:200 in
  let c = Mriq.run_c d in
  Alcotest.(check bool) "par" true
    (Mriq.agrees ~eps:1e-9 c (Mriq.run_triolet ~hint:Iter.par d));
  Alcotest.(check bool) "localpar" true
    (Mriq.agrees ~eps:1e-9 c (Mriq.run_triolet ~hint:Iter.localpar d));
  Alcotest.(check bool) "seq" true
    (Mriq.agrees ~eps:1e-9 c (Mriq.run_triolet ~hint:Iter.sequential d))

let test_mriq_eden_matches_c () =
  let d = Dataset.mriq ~seed:12 ~samples:32 ~voxels:100 in
  Alcotest.(check bool) "eden" true
    (Mriq.agrees ~eps:1e-9 (Mriq.run_c d) (Mriq.run_eden d))

let test_mriq_single_voxel_sample () =
  let d = Dataset.mriq ~seed:13 ~samples:1 ~voxels:1 in
  Alcotest.(check bool) "degenerate" true
    (Mriq.agrees (Mriq.run_c d) (Mriq.run_triolet d))

let prop_mriq_agreement =
  qtest "mriq triolet = C on random sizes"
    QCheck2.Gen.(pair (int_range 1 40) (int_range 1 60))
    (fun (samples, voxels) ->
      let d = Dataset.mriq ~seed:(samples + (100 * voxels)) ~samples ~voxels in
      Mriq.agrees ~eps:1e-9 (Mriq.run_c d) (Mriq.run_triolet d))

(* ------------------------------------------------------------------ *)
(* sgemm                                                               *)

let test_sgemm_triolet_matches_c () =
  let a, b = Dataset.sgemm_matrices ~seed:21 ~m:17 ~k:13 ~n:19 in
  let c = Sgemm.run_c a b in
  Alcotest.(check bool) "par" true
    (Sgemm.agrees c (Sgemm.run_triolet ~hint:Iter2.par a b));
  Alcotest.(check bool) "localpar" true
    (Sgemm.agrees c (Sgemm.run_triolet ~hint:Iter2.localpar a b))

let test_sgemm_eden_matches_c () =
  let a, b = Dataset.sgemm_matrices ~seed:22 ~m:8 ~k:6 ~n:7 in
  Alcotest.(check bool) "eden" true
    (Sgemm.agrees (Sgemm.run_c a b) (Sgemm.run_eden a b))

let test_sgemm_alpha_scaling () =
  let a, b = Dataset.sgemm_matrices ~seed:23 ~m:5 ~k:5 ~n:5 in
  let c1 = Sgemm.run_c ~alpha:3.0 a b in
  let c2 = Sgemm.run_triolet ~alpha:3.0 a b in
  Alcotest.(check bool) "alpha" true (Sgemm.agrees c1 c2)

let test_sgemm_identity () =
  let n = 6 in
  let id = Matrix.init n n (fun i j -> if i = j then 1.0 else 0.0) in
  let rng = Triolet_base.Rng.create 24 in
  let a = Matrix.random rng n n (-1.0) 1.0 in
  Alcotest.(check bool) "A * I = A" true
    (Sgemm.agrees a (Sgemm.run_triolet a id))

let prop_sgemm_agreement =
  qtest "sgemm triolet = C on random shapes"
    QCheck2.Gen.(triple (int_range 1 12) (int_range 1 12) (int_range 1 12))
    (fun (m, k, n) ->
      let a, b = Dataset.sgemm_matrices ~seed:(m + (13 * k) + (169 * n)) ~m ~k ~n in
      Sgemm.agrees (Sgemm.run_c a b) (Sgemm.run_triolet a b))

(* ------------------------------------------------------------------ *)
(* tpacf                                                               *)

let test_tpacf_triolet_matches_c () =
  let d = Dataset.tpacf ~seed:31 ~points:40 ~random_sets:3 in
  let c = Tpacf.run_c ~bins:16 d in
  Alcotest.(check bool) "triolet" true
    (Tpacf.agrees c (Tpacf.run_triolet ~bins:16 d))

let test_tpacf_eden_matches_c () =
  let d = Dataset.tpacf ~seed:32 ~points:30 ~random_sets:2 in
  Alcotest.(check bool) "eden" true
    (Tpacf.agrees (Tpacf.run_c ~bins:8 d) (Tpacf.run_eden ~bins:8 d))

let test_tpacf_pair_counts () =
  (* Histogram totals are determined by the pair counts: DD = n(n-1)/2,
     DR = R * n^2, RR = R * n(n-1)/2. *)
  let n = 25 and r = 4 in
  let d = Dataset.tpacf ~seed:33 ~points:n ~random_sets:r in
  let res = Tpacf.run_triolet ~bins:12 d in
  let total a = Array.fold_left ( + ) 0 a in
  Alcotest.(check int) "DD pairs" (n * (n - 1) / 2) (total res.Tpacf.dd);
  Alcotest.(check int) "DR pairs" (r * n * n) (total res.Tpacf.dr);
  Alcotest.(check int) "RR pairs" (r * n * (n - 1) / 2) (total res.Tpacf.rr)

let test_tpacf_bin_function () =
  Alcotest.(check int) "identical points -> top bin" 15
    (Tpacf.bin_of_dot ~bins:16 1.0);
  Alcotest.(check int) "antipodal -> bin 0" 0 (Tpacf.bin_of_dot ~bins:16 (-1.0));
  Alcotest.(check int) "orthogonal -> middle" 8 (Tpacf.bin_of_dot ~bins:16 0.0);
  (* out-of-range dots from rounding are clamped *)
  Alcotest.(check int) "clamp high" 15 (Tpacf.bin_of_dot ~bins:16 1.0000001);
  Alcotest.(check int) "clamp low" 0 (Tpacf.bin_of_dot ~bins:16 (-1.0000001))

let test_tpacf_flat_cluster () =
  let d = Dataset.tpacf ~seed:34 ~points:20 ~random_sets:2 in
  let c = Tpacf.run_c ~bins:8 d in
  Exec.with_context (Exec.make ~nodes:(2) ~cores_per_node:(2) ~backend:Cluster.Flat ())
    (fun () ->
      Alcotest.(check bool) "flat mode agrees" true
        (Tpacf.agrees c (Tpacf.run_triolet ~bins:8 d)))

let prop_tpacf_agreement =
  qtest "tpacf triolet = C on random sizes"
    QCheck2.Gen.(pair (int_range 2 30) (int_range 1 4))
    (fun (points, sets) ->
      let d = Dataset.tpacf ~seed:(points + (31 * sets)) ~points ~random_sets:sets in
      Tpacf.agrees (Tpacf.run_c ~bins:10 d) (Tpacf.run_triolet ~bins:10 d))

(* ------------------------------------------------------------------ *)
(* cutcp                                                               *)

let small_cutcp seed =
  Dataset.cutcp ~seed ~atoms:30 ~nx:12 ~ny:10 ~nz:8 ~spacing:0.5 ~cutoff:1.6

let test_cutcp_triolet_matches_c () =
  let c = small_cutcp 41 in
  let g = Cutcp.run_c c in
  Alcotest.(check bool) "par" true
    (Cutcp.agrees ~eps:1e-9 g (Cutcp.run_triolet ~hint:Iter.par c));
  Alcotest.(check bool) "localpar" true
    (Cutcp.agrees ~eps:1e-9 g (Cutcp.run_triolet ~hint:Iter.localpar c))

let test_cutcp_eden_matches_c () =
  let c = small_cutcp 42 in
  Alcotest.(check bool) "eden" true
    (Cutcp.agrees ~eps:1e-9 (Cutcp.run_c c) (Cutcp.run_eden c))

let test_cutcp_cutoff_respected () =
  (* With a cutoff smaller than the spacing, only points essentially on
     top of an atom get contributions; far grid corners stay zero. *)
  let c =
    Dataset.cutcp ~seed:43 ~atoms:3 ~nx:20 ~ny:20 ~nz:20 ~spacing:1.0
      ~cutoff:1.5
  in
  let g = Cutcp.run_triolet c in
  let nonzero = ref 0 in
  Float.Array.iter (fun v -> if v <> 0.0 then incr nonzero) g;
  Alcotest.(check bool) "sparse updates" true
    (!nonzero > 0 && !nonzero < Dataset.grid_points c / 10)

let test_cutcp_positive_charge_positive_potential () =
  let c =
    {
      (small_cutcp 44) with
      Dataset.aq = Float.Array.make 30 1.0 (* all positive charges *);
    }
  in
  let g = Cutcp.run_c c in
  Float.Array.iter
    (fun v -> Alcotest.(check bool) "nonnegative" true (v >= 0.0))
    g

let prop_cutcp_agreement =
  qtest "cutcp triolet = C on random boxes"
    QCheck2.Gen.(pair (int_range 1 25) (int_range 4 12))
    (fun (atoms, nx) ->
      let c =
        Dataset.cutcp ~seed:(atoms + (100 * nx)) ~atoms ~nx ~ny:nx ~nz:nx
          ~spacing:0.5 ~cutoff:1.4
      in
      Cutcp.agrees ~eps:1e-9 (Cutcp.run_c c) (Cutcp.run_triolet c))

(* ------------------------------------------------------------------ *)
(* Dataset generators                                                  *)

let test_dataset_determinism () =
  let d1 = Dataset.mriq ~seed:7 ~samples:16 ~voxels:16 in
  let d2 = Dataset.mriq ~seed:7 ~samples:16 ~voxels:16 in
  Alcotest.(check bool) "same seed same data" true
    (Float.Array.for_all (fun _ -> true) d1.Dataset.kx
    && d1.Dataset.kx = d2.Dataset.kx
    && d1.Dataset.phi_i = d2.Dataset.phi_i)

let test_dataset_catalog_on_sphere () =
  let rng = Triolet_base.Rng.create 9 in
  let c = Dataset.catalog rng 200 in
  for i = 0 to 199 do
    let x = Float.Array.get c.Dataset.cx i
    and y = Float.Array.get c.Dataset.cy i
    and z = Float.Array.get c.Dataset.cz i in
    let r = sqrt ((x *. x) +. (y *. y) +. (z *. z)) in
    Alcotest.(check (float 1e-9)) "unit norm" 1.0 r
  done

let test_dataset_cutcp_in_box () =
  let c = small_cutcp 45 in
  let lx = float_of_int (c.Dataset.nx - 1) *. c.Dataset.spacing in
  Float.Array.iter
    (fun x -> Alcotest.(check bool) "in box" true (x >= 0.0 && x <= lx))
    c.Dataset.ax

(* ------------------------------------------------------------------ *)
(* Simulator models                                                    *)

let test_models_sequential_times_in_paper_window () =
  (* The paper selects inputs with sequential C times of 20-200 s; the
     calibrated models (at default rates) must land in that window. *)
  List.iter
    (fun app ->
      let t = Triolet_sim.App_model.sequential_time app in
      Alcotest.(check bool)
        (app.Triolet_sim.App_model.name ^ " in window")
        true
        (t > 20.0 && t < 200.0))
    (Models.all ())

let test_models_measure_rates_sane () =
  let r = Models.measure_rates () in
  let positive x = x > 1e-12 && x < 1e-3 in
  Alcotest.(check bool) "mriq" true (positive r.Models.mriq_pair_s);
  Alcotest.(check bool) "sgemm" true (positive r.Models.sgemm_mac_s);
  Alcotest.(check bool) "tpacf" true (positive r.Models.tpacf_pair_s);
  Alcotest.(check bool) "cutcp" true (positive r.Models.cutcp_point_s)

let test_models_task_structure () =
  let m = Models.tpacf_model () in
  (* DD tasks (group 0) are self-correlations: cheaper than DR. *)
  let dd = m.Triolet_sim.App_model.task_cost 0 in
  let dr = m.Triolet_sim.App_model.task_cost 16 in
  Alcotest.(check bool) "self < cross cost" true (dd < dr);
  let s = Models.sgemm_model () in
  Alcotest.(check bool) "sgemm has setup" true
    (s.Triolet_sim.App_model.seq_setup_time > 0.0);
  let c = Models.cutcp_model () in
  Alcotest.(check bool) "cutcp node output is the grid" true
    (c.Triolet_sim.App_model.node_out_bytes = 8 * 192 * 192 * 192)

let test_mriq_pair_packing_order () =
  (* collect_float_pairs must keep voxel order under distribution. *)
  let d = Dataset.mriq ~seed:14 ~samples:8 ~voxels:37 in
  let seq = Mriq.run_triolet ~hint:Iter.sequential d in
  let dist = Mriq.run_triolet ~hint:Iter.par d in
  Alcotest.(check bool) "order preserved" true (Mriq.agrees ~eps:0.0 seq dist)

let test_sgemm_three_node_grid () =
  (* 3 nodes force a degenerate 1x3 block grid. *)
  Exec.with_context (Exec.make ~nodes:(3) ~cores_per_node:(1) ())
    (fun () ->
      let a, b = Dataset.sgemm_matrices ~seed:25 ~m:10 ~k:6 ~n:9 in
      Alcotest.(check bool) "1x3 grid" true
        (Sgemm.agrees (Sgemm.run_c a b) (Sgemm.run_triolet a b)))

let test_cutcp_flat_cluster () =
  let c = small_cutcp 46 in
  Exec.with_context (Exec.make ~nodes:(2) ~cores_per_node:(3) ~backend:Cluster.Flat ())
    (fun () ->
      Alcotest.(check bool) "flat mode" true
        (Cutcp.agrees ~eps:1e-9 (Cutcp.run_c c) (Cutcp.run_triolet c)))

let test_tpacf_single_random_set () =
  let d = Dataset.tpacf ~seed:35 ~points:15 ~random_sets:1 in
  Alcotest.(check bool) "one set" true
    (Tpacf.agrees (Tpacf.run_c ~bins:6 d) (Tpacf.run_triolet ~bins:6 d))

let test_cutcp_no_atoms () =
  let c =
    { (small_cutcp 47) with
      Dataset.ax = Float.Array.create 0;
      ay = Float.Array.create 0;
      az = Float.Array.create 0;
      aq = Float.Array.create 0 }
  in
  let g = Cutcp.run_triolet c in
  Alcotest.(check bool) "all zeros" true
    (Float.Array.for_all (fun v -> v = 0.0) g)

let test_mriq_rate_independence () =
  (* The magnitude precomputation must not change results vs inlining:
     |phi|^2 computed once per sample. *)
  let d = Dataset.mriq ~seed:15 ~samples:5 ~voxels:5 in
  let r1 = Mriq.run_c d in
  let r2 = Mriq.run_c d in
  Alcotest.(check bool) "deterministic" true (Mriq.agrees ~eps:0.0 r1 r2)

let () =
  Alcotest.run "kernels"
    [
      ( "edge-cases",
        [
          Alcotest.test_case "mriq pair packing order" `Quick
            test_mriq_pair_packing_order;
          Alcotest.test_case "sgemm 1x3 grid" `Quick test_sgemm_three_node_grid;
          Alcotest.test_case "cutcp flat cluster" `Quick test_cutcp_flat_cluster;
          Alcotest.test_case "tpacf one set" `Quick test_tpacf_single_random_set;
          Alcotest.test_case "cutcp no atoms" `Quick test_cutcp_no_atoms;
          Alcotest.test_case "mriq deterministic" `Quick
            test_mriq_rate_independence;
        ] );
      ( "mriq",
        [
          Alcotest.test_case "triolet = C" `Quick test_mriq_triolet_matches_c;
          Alcotest.test_case "eden = C" `Quick test_mriq_eden_matches_c;
          Alcotest.test_case "degenerate" `Quick test_mriq_single_voxel_sample;
          prop_mriq_agreement;
        ] );
      ( "sgemm",
        [
          Alcotest.test_case "triolet = C" `Quick test_sgemm_triolet_matches_c;
          Alcotest.test_case "eden = C" `Quick test_sgemm_eden_matches_c;
          Alcotest.test_case "alpha" `Quick test_sgemm_alpha_scaling;
          Alcotest.test_case "identity" `Quick test_sgemm_identity;
          prop_sgemm_agreement;
        ] );
      ( "tpacf",
        [
          Alcotest.test_case "triolet = C" `Quick test_tpacf_triolet_matches_c;
          Alcotest.test_case "eden = C" `Quick test_tpacf_eden_matches_c;
          Alcotest.test_case "pair counts" `Quick test_tpacf_pair_counts;
          Alcotest.test_case "bin function" `Quick test_tpacf_bin_function;
          Alcotest.test_case "flat cluster" `Quick test_tpacf_flat_cluster;
          prop_tpacf_agreement;
        ] );
      ( "cutcp",
        [
          Alcotest.test_case "triolet = C" `Quick test_cutcp_triolet_matches_c;
          Alcotest.test_case "eden = C" `Quick test_cutcp_eden_matches_c;
          Alcotest.test_case "cutoff respected" `Quick
            test_cutcp_cutoff_respected;
          Alcotest.test_case "positive charges" `Quick
            test_cutcp_positive_charge_positive_potential;
          prop_cutcp_agreement;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "determinism" `Quick test_dataset_determinism;
          Alcotest.test_case "catalog on sphere" `Quick
            test_dataset_catalog_on_sphere;
          Alcotest.test_case "atoms in box" `Quick test_dataset_cutcp_in_box;
        ] );
      ( "models",
        [
          Alcotest.test_case "paper time window" `Quick
            test_models_sequential_times_in_paper_window;
          Alcotest.test_case "measured rates sane" `Quick
            test_models_measure_rates_sane;
          Alcotest.test_case "task structure" `Quick test_models_task_structure;
        ] );
    ]
