(* Equivalence suite for the push-based stream-fusion rewrite: random
   pipelines are interpreted twice — once against the production
   [Triolet.Seq_iter] (push faces, [Fcell] accumulators, direct leaf
   loops) and once against [Seq_iter_ref] (the old pull-only value
   encoding kept as an executable specification) — and must produce
   exactly the same elements in exactly the same order, and agree on
   every consumer, including order-sensitive folds. *)

open Triolet

let qtest ?(count = 500) name gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen prop)

(* ------------------------------------------------------------------ *)
(* Pipeline description: a source plus a list of combinator applications,
   small ints steering each combinator's function so failures shrink to
   readable cases. *)

type src =
  | S_list of int list  (* Step_flat head *)
  | S_array of int list (* Idx_flat head *)
  | S_range of int * int

type op =
  | Map of int
  | Filter of int
  | Filter_map of int
  | Concat_map of int
  | Zip_range of int
  | Append_tail of int

let string_of_src = function
  | S_list l ->
      "list [" ^ String.concat ";" (List.map string_of_int l) ^ "]"
  | S_array l ->
      "array [" ^ String.concat ";" (List.map string_of_int l) ^ "]"
  | S_range (lo, len) -> Printf.sprintf "range %d..%d" lo (lo + len)

let string_of_op = function
  | Map k -> Printf.sprintf "map(*7+%d)" k
  | Filter k -> Printf.sprintf "filter(mod %d)" (abs k + 2)
  | Filter_map k -> Printf.sprintf "filter_map(even,+%d)" k
  | Concat_map k -> Printf.sprintf "concat_map(dup+%d)" k
  | Zip_range k -> Printf.sprintf "zip_range(*%d)" k
  | Append_tail k -> Printf.sprintf "append[%d;%d]" k (k + 1)

let string_of_pipe (s, ops) =
  string_of_src s ^ " |> " ^ String.concat " |> " (List.map string_of_op ops)

(* The two interpreters share these closures so both encodings see
   byte-identical functions. *)
let f_map k x = (x * 7) + k
let f_filter k x = x mod (abs k + 2) <> 0
let f_fmap k x = if x land 1 = 0 then Some (x + k) else None
let dup k x = [ x; x + k ]
let f_zip k a b = a + (b * k)

let build_new (s, ops) =
  let src =
    match s with
    | S_list l -> Seq_iter.of_list l
    | S_array l -> Seq_iter.of_array (Array.of_list l)
    | S_range (lo, len) -> Seq_iter.range lo (lo + len)
  in
  List.fold_left
    (fun it op ->
      match op with
      | Map k -> Seq_iter.map (f_map k) it
      | Filter k -> Seq_iter.filter (f_filter k) it
      | Filter_map k -> Seq_iter.filter_map (f_fmap k) it
      | Concat_map k ->
          Seq_iter.concat_map
            (fun x ->
              if x mod 3 = 0 then Seq_iter.empty
              else Seq_iter.of_list (dup k x))
            it
      | Zip_range k -> Seq_iter.zip_with (f_zip k) it (Seq_iter.range 0 1000)
      | Append_tail k -> Seq_iter.append it (Seq_iter.of_list [ k; k + 1 ]))
    src ops

let build_ref (s, ops) =
  let module R = Seq_iter_ref in
  let src =
    match s with
    | S_list l -> R.of_list l
    | S_array l -> R.of_array (Array.of_list l)
    | S_range (lo, len) -> R.range lo (lo + len)
  in
  List.fold_left
    (fun it op ->
      match op with
      | Map k -> R.map (f_map k) it
      | Filter k -> R.filter (f_filter k) it
      | Filter_map k -> R.filter_map (f_fmap k) it
      | Concat_map k ->
          R.concat_map
            (fun x -> if x mod 3 = 0 then R.empty else R.of_list (dup k x))
            it
      | Zip_range k -> R.zip_with (f_zip k) it (R.range 0 1000)
      | Append_tail k -> R.append it (R.of_list [ k; k + 1 ]))
    src ops

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let src_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun l -> S_list l) (list_size (int_bound 20) (int_range (-50) 50));
        map (fun l -> S_array l) (list_size (int_bound 20) (int_range (-50) 50));
        map
          (fun (lo, len) -> S_range (lo, len))
          (pair (int_range (-20) 20) (int_bound 25));
      ])

let op_gen =
  QCheck2.Gen.(
    let k = int_range (-9) 9 in
    oneof
      [
        map (fun k -> Map k) k;
        map (fun k -> Filter k) k;
        map (fun k -> Filter_map k) k;
        map (fun k -> Concat_map k) k;
        map (fun k -> Zip_range k) k;
        map (fun k -> Append_tail k) k;
      ])

let pipe_gen = QCheck2.Gen.(pair src_gen (list_size (int_bound 5) op_gen))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

(* Element and order identity: the strongest property — everything else
   (sums, folds) follows from it, but the direct consumer checks below
   also exercise each consumer's own loop structure. *)
let prop_elements pipe =
  Seq_iter.to_list (build_new pipe) = Seq_iter_ref.to_list (build_ref pipe)

let prop_consumers pipe =
  let a = build_new pipe and b = build_ref pipe in
  Seq_iter.length a = Seq_iter_ref.length b
  && Seq_iter.sum_int a = Seq_iter_ref.sum_int b
  && Seq_iter.exists (fun x -> x mod 5 = 0) a
     = Seq_iter_ref.exists (fun x -> x mod 5 = 0) b
  && Seq_iter.for_all (fun x -> x < 40) a
     = Seq_iter_ref.for_all (fun x -> x < 40) b
  && Seq_iter.find (fun x -> x mod 7 = 0) a
     = Seq_iter_ref.find (fun x -> x mod 7 = 0) b

(* An order-sensitive, non-commutative fold: catches any reordering a
   commutative sum would forgive. *)
let prop_fold_order pipe =
  Seq_iter.fold (fun acc x -> (acc * 31) + x) 7 (build_new pipe)
  = Seq_iter_ref.fold (fun acc x -> (acc * 31) + x) 7 (build_ref pipe)

(* Float reductions run through [Fcell] accumulators in the new
   encoding; with identical element order the results must be
   bit-identical to the reference's boxed fold. *)
let prop_float_reductions pipe =
  let fa = Seq_iter.map float_of_int (build_new pipe) in
  let fb = Seq_iter_ref.map float_of_int (build_ref pipe) in
  Seq_iter.sum_float fa = Seq_iter_ref.sum_float fb
  && Seq_iter.min_float fa = Seq_iter_ref.min_float fb
  && Seq_iter.max_float fa = Seq_iter_ref.max_float fb

(* Push and pull faces of the same production stream must agree:
   [to_list] consumes the push face, [to_seq] steps the pull face. *)
let prop_faces_agree pipe =
  let it = build_new pipe in
  List.of_seq (Seq_iter.to_seq it) = Seq_iter.to_list it

(* Repeated consumption: push faces that carry internal state must
   allocate it per invocation, so consuming twice yields the same
   answer. *)
let prop_restartable pipe =
  let it = build_new pipe in
  Seq_iter.to_list it = Seq_iter.to_list it

let () =
  Alcotest.run "fusion_equiv"
    [
      ( "new-vs-reference",
        [
          qtest "elements and order" pipe_gen string_of_pipe prop_elements;
          qtest "consumers agree" pipe_gen string_of_pipe prop_consumers;
          qtest "order-sensitive fold" pipe_gen string_of_pipe prop_fold_order;
          qtest "float reductions bit-identical" pipe_gen string_of_pipe
            prop_float_reductions;
        ] );
      ( "faces",
        [
          qtest "push face = pull face" pipe_gen string_of_pipe
            prop_faces_agree;
          qtest "restartable" pipe_gen string_of_pipe prop_restartable;
        ] );
    ]
